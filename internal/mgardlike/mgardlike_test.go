package mgardlike

import (
	"math"
	"testing"
	"testing/quick"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func roundtrip(t *testing.T, g *grid.Grid, eb float64) *grid.Grid {
	t.Helper()
	c := Compressor{}
	data, err := c.Compress(g, eb)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rows != g.Rows || dec.Cols != g.Cols {
		t.Fatalf("shape changed")
	}
	maxErr, err := g.MaxAbsDiff(dec)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > eb*(1+1e-12) {
		t.Fatalf("bound violated: maxErr %v > eb %v", maxErr, eb)
	}
	return dec
}

func TestName(t *testing.T) {
	if (Compressor{}).Name() != "mgard-like" {
		t.Fatal("name changed")
	}
}

func TestNumLevels(t *testing.T) {
	cases := []struct{ rows, cols, want int }{
		{1, 1, 0},
		{2, 2, 0},
		{3, 3, 1},
		{4, 4, 1},
		{5, 5, 2},
		{64, 64, 5},
		{64, 128, 6},
	}
	for _, c := range cases {
		if got := numLevels(c.rows, c.cols); got != c.want {
			t.Fatalf("numLevels(%d,%d)=%d want %d", c.rows, c.cols, got, c.want)
		}
	}
}

func TestForEachLevelNodePartition(t *testing.T) {
	// across all levels plus the coarsest lattice, every node must be
	// visited exactly once
	rows, cols := 13, 21
	L := numLevels(rows, cols)
	seen := grid.New(rows, cols)
	sTop := 1 << uint(L)
	for r := 0; r < rows; r += sTop {
		for c := 0; c < cols; c += sTop {
			seen.Set(r, c, seen.At(r, c)+1)
		}
	}
	for l := L - 1; l >= 0; l-- {
		s := 1 << uint(l)
		forEachLevelNode(rows, cols, s, func(r, c int) {
			seen.Set(r, c, seen.At(r, c)+1)
		})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if seen.At(r, c) != 1 {
				t.Fatalf("node (%d,%d) visited %v times", r, c, seen.At(r, c))
			}
		}
	}
}

func TestInterpolateExactOnBilinear(t *testing.T) {
	// a bilinear field is reproduced exactly by the interior stencil
	g := grid.FromFunc(17, 17, func(r, c int) float64 {
		return 2 + 0.5*float64(r) + 0.25*float64(c)
	})
	for _, s := range []int{1, 2, 4} {
		forEachLevelNode(17, 17, s, func(r, c int) {
			got := interpolate(g, r, c, s)
			if math.Abs(got-g.At(r, c)) > 1e-12 {
				t.Fatalf("stride %d node (%d,%d): %v want %v", s, r, c, got, g.At(r, c))
			}
		})
	}
}

func TestRoundtripSmooth(t *testing.T) {
	g := grid.FromFunc(40, 56, func(r, c int) float64 {
		return math.Sin(float64(r)/8) * math.Cos(float64(c)/6)
	})
	for _, eb := range []float64{1e-5, 1e-3, 1e-1} {
		roundtrip(t, g, eb)
	}
}

func TestRoundtripNoise(t *testing.T) {
	rng := xrand.New(9)
	g := grid.FromFunc(27, 35, func(r, c int) float64 { return rng.NormFloat64() * 20 })
	roundtrip(t, g, 1e-4)
}

func TestOddSizes(t *testing.T) {
	rng := xrand.New(10)
	for _, sz := range [][2]int{{1, 1}, {1, 17}, {17, 1}, {2, 2}, {3, 5}, {16, 16}, {17, 33}} {
		g := grid.FromFunc(sz[0], sz[1], func(r, c int) float64 { return rng.NormFloat64() })
		roundtrip(t, g, 1e-3)
	}
}

func TestExtremeValues(t *testing.T) {
	g, _ := grid.FromData(2, 4, []float64{1e300, -1e300, 1e-300, 0, 5, -5, 1e18, -1e-18})
	roundtrip(t, g, 1e-6)
}

func TestEmptyAndBadBound(t *testing.T) {
	c := Compressor{}
	if _, err := c.Compress(grid.New(0, 0), 1e-3); err == nil {
		t.Fatal("empty field must error")
	}
	if _, err := c.Compress(grid.New(4, 4), 0); err == nil {
		t.Fatal("eb=0 must error")
	}
}

func TestSmoothBeatsNoise(t *testing.T) {
	c := Compressor{}
	smooth, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 16, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(12)
	noise := grid.FromFunc(64, 64, func(r, cc int) float64 { return rng.NormFloat64() })
	ds, err := c.Compress(smooth, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := c.Compress(noise, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) >= len(dn) {
		t.Fatalf("smooth (%d B) not smaller than noise (%d B)", len(ds), len(dn))
	}
}

func TestRatioIncreasesWithBound(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	c := Compressor{}
	var sizes []int
	for _, eb := range []float64{1e-6, 1e-4, 1e-2} {
		d, err := c.Compress(f, eb)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(d))
	}
	if !(sizes[0] > sizes[1] && sizes[1] > sizes[2]) {
		t.Fatalf("sizes not decreasing: %v", sizes)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	c := Compressor{}
	if _, err := c.Decompress([]byte{3, 1, 4}); err == nil {
		t.Fatal("garbage must error")
	}
	data, err := c.Compress(grid.FromFunc(9, 9, func(r, cc int) float64 { return float64(r * cc) }), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(data[:len(data)/2]); err == nil {
		t.Fatal("truncated stream must error")
	}
}

func TestQuickBoundProperty(t *testing.T) {
	c := Compressor{}
	f := func(seed uint64, ebExp uint8, rough bool) bool {
		eb := math.Pow(10, -1-float64(ebExp%6))
		rng := xrand.New(seed)
		rows := 1 + rng.Intn(34)
		cols := 1 + rng.Intn(34)
		var g *grid.Grid
		if rough {
			g = grid.FromFunc(rows, cols, func(r, cc int) float64 { return rng.NormFloat64() * 10 })
		} else {
			fr := 1 + rng.Float64()*10
			g = grid.FromFunc(rows, cols, func(r, cc int) float64 {
				return math.Sin(float64(r)/fr) + math.Cos(float64(cc)/fr)
			})
		}
		data, err := c.Compress(g, eb)
		if err != nil {
			return false
		}
		dec, err := c.Decompress(data)
		if err != nil {
			return false
		}
		maxErr, err := g.MaxAbsDiff(dec)
		return err == nil && maxErr <= eb*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
