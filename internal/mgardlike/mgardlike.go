// Package mgardlike implements an MGARD-style multilevel error-bounded
// lossy compressor (Ainsworth et al., SIAM J. Sci. Comput. 2019) in
// pure Go. Like MGARD it decomposes the field into multilevel
// coefficients over recursively nested dyadic lattices — corrections of
// fine nodes against interpolation from the next-coarser lattice — then
// quantizes the corrections with a per-level error budget whose sum
// honors the absolute bound, and entropy codes them (canonical Huffman
// + DEFLATE, standing in for MGARD's Zlib/Zstd stage).
//
// Because coarse lattice nodes influence the entire domain, the
// decomposition captures global, multi-scale correlation structure that
// the block-local SZ-like and ZFP-like compressors cannot — the
// property behind MGARD's flatter CR-versus-variogram-range curves in
// the paper (Figures 3 and 4).
package mgardlike

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"lossycorr/internal/compress"
	"lossycorr/internal/grid"
	"lossycorr/internal/huffman"
	"lossycorr/internal/lossless"
	"lossycorr/internal/quant"
)

// symbolPool recycles the quantized-coefficient stream between
// Compress calls — one field's worth of uint16 per call otherwise.
var symbolPool = sync.Pool{New: func() any { return new([]uint16) }}

var magic = [4]byte{'M', 'G', 'L', '1'}

// Compressor is the MGARD-like codec. The zero value is ready to use.
type Compressor struct{}

var _ compress.Compressor = Compressor{}

// Name implements compress.Compressor.
func (Compressor) Name() string { return "mgard-like" }

// numLevels picks the number of dyadic refinement levels: the coarsest
// lattice has stride 2^L and still at least two nodes along the longer
// dimension.
func numLevels(rows, cols int) int {
	longer := rows
	if cols > longer {
		longer = cols
	}
	l := 0
	for (1 << uint(l+1)) < longer {
		l++
	}
	return l
}

// onLattice reports whether index i belongs to the stride-s lattice.
func onLattice(i, s int) bool { return i%s == 0 }

// interpolate predicts the value at (r, c) on the stride-s lattice from
// the stride-2s lattice of recon. Nodes fall into three classes: on a
// coarse row (horizontal neighbors), on a coarse column (vertical
// neighbors), or interior (four diagonal neighbors); one-sided copies
// handle clipped boundaries.
func interpolate(recon *grid.Grid, r, c, s int) float64 {
	// Flat addressing: each neighbor is one add away from a precomputed
	// row offset instead of a full r*Cols+c multiply per At call — this
	// is the innermost read of every level sweep.
	data, cols := recon.Data, recon.Cols
	row := r * cols
	s2 := 2 * s
	coarseR := onLattice(r, s2)
	coarseC := onLattice(c, s2)
	switch {
	case coarseR && !coarseC:
		if c+s < cols {
			return 0.5 * (data[row+c-s] + data[row+c+s])
		}
		return data[row+c-s]
	case !coarseR && coarseC:
		if r+s < recon.Rows {
			return 0.5 * (data[row-s*cols+c] + data[row+s*cols+c])
		}
		return data[row-s*cols+c]
	default: // interior of a coarse cell: average available diagonals
		upRow, dnRow := row-s*cols, row+s*cols
		l, rgt := c-s, c+s
		sum := data[upRow+l]
		n := 1.0
		if rgt < cols {
			sum += data[upRow+rgt]
			n++
		}
		if r+s < recon.Rows {
			sum += data[dnRow+l]
			n++
			if rgt < cols {
				sum += data[dnRow+rgt]
				n++
			}
		}
		return sum / n
	}
}

// forEachLevelNode visits, for the given stride s, every grid node that
// is on the stride-s lattice but not on the stride-2s lattice, in a
// fixed deterministic order shared by compressor and decompressor.
func forEachLevelNode(rows, cols, s int, fn func(r, c int)) {
	s2 := 2 * s
	for r := 0; r < rows; r += s {
		for c := 0; c < cols; c += s {
			if onLattice(r, s2) && onLattice(c, s2) {
				continue
			}
			fn(r, c)
		}
	}
}

// Compress implements compress.Compressor.
func (Compressor) Compress(g *grid.Grid, absErr float64) ([]byte, error) {
	if absErr <= 0 {
		return nil, fmt.Errorf("mgardlike: non-positive error bound %v", absErr)
	}
	if g.Len() == 0 {
		return nil, errors.New("mgardlike: empty field")
	}
	L := numLevels(g.Rows, g.Cols)
	// The decomposition is open-loop, like MGARD's: multilevel
	// coefficients are corrections of original values against
	// interpolation of original coarser values. On reconstruction the
	// interpolation instead reads reconstructed coarser values, so
	// per-node error accumulates down the level hierarchy:
	// err(level l) <= q + err(level l+1) <= (L+1-l)·q, which stays
	// within the bound with a uniform per-level budget q = eb/(L+1).
	q := quant.New(absErr / float64(L+1))

	sp := symbolPool.Get().(*[]uint16)
	defer symbolPool.Put(sp)
	symbols := (*sp)[:0]
	var exact []float64

	// coarsest lattice: coefficients are the raw values (zero
	// predictor); large values escape to exact storage, and the coarse
	// lattice is a vanishing fraction of nodes
	sTop := 1 << uint(L)
	for r := 0; r < g.Rows; r += sTop {
		for c := 0; c < g.Cols; c += sTop {
			v := g.At(r, c)
			sym, _, ok := q.Encode(v)
			if !ok {
				symbols = append(symbols, quant.Escape)
				exact = append(exact, v)
				continue
			}
			symbols = append(symbols, sym)
		}
	}
	// finer levels: corrections against interpolation of the original
	// coarser lattice
	for l := L - 1; l >= 0; l-- {
		s := 1 << uint(l)
		forEachLevelNode(g.Rows, g.Cols, s, func(r, c int) {
			v := g.Data[r*g.Cols+c]
			pred := interpolate(g, r, c, s)
			sym, _, ok := q.Encode(v - pred)
			if !ok {
				symbols = append(symbols, quant.Escape)
				exact = append(exact, v)
				return
			}
			symbols = append(symbols, sym)
		})
	}

	huff := huffman.Encode(symbols)
	*sp = symbols // retain grown capacity for reuse
	var buf []byte
	buf = append(buf, magic[:]...)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(g.Rows))
	binary.LittleEndian.PutUint32(tmp[4:], uint32(g.Cols))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(absErr))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(exact)))
	buf = append(buf, tmp[:4]...)
	for _, v := range exact {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		buf = append(buf, tmp[:]...)
	}
	buf = append(buf, huff...)
	return lossless.Compress(buf)
}

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("mgardlike: corrupt stream")

// Decompress implements compress.Compressor.
func (Compressor) Decompress(data []byte) (*grid.Grid, error) {
	raw, err := lossless.Decompress(data)
	if err != nil {
		return nil, fmt.Errorf("mgardlike: %w", err)
	}
	if len(raw) < 24 || raw[0] != magic[0] || raw[1] != magic[1] || raw[2] != magic[2] || raw[3] != magic[3] {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint32(raw[4:]))
	cols := int(binary.LittleEndian.Uint32(raw[8:]))
	absErr := math.Float64frombits(binary.LittleEndian.Uint64(raw[12:]))
	if rows <= 0 || cols <= 0 || absErr <= 0 || rows*cols > 1<<30 {
		return nil, ErrCorrupt
	}
	pos := 20
	nExact := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if nExact < 0 || len(raw) < pos+8*nExact {
		return nil, ErrCorrupt
	}
	exact := make([]float64, nExact)
	for i := range exact {
		exact[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:]))
		pos += 8
	}
	symbols, err := huffman.Decode(raw[pos:])
	if err != nil {
		return nil, fmt.Errorf("mgardlike: %w", err)
	}

	L := numLevels(rows, cols)
	q := quant.New(absErr / float64(L+1))
	recon := grid.New(rows, cols)
	si, ei := 0, 0
	next := func() (uint16, error) {
		if si >= len(symbols) {
			return 0, ErrCorrupt
		}
		s := symbols[si]
		si++
		return s, nil
	}
	var decodeErr error
	takeExact := func() float64 {
		if ei >= len(exact) {
			decodeErr = ErrCorrupt
			return 0
		}
		v := exact[ei]
		ei++
		return v
	}

	sTop := 1 << uint(L)
	for r := 0; r < rows && decodeErr == nil; r += sTop {
		for c := 0; c < cols; c += sTop {
			sym, err := next()
			if err != nil {
				return nil, err
			}
			if sym == quant.Escape {
				recon.Set(r, c, takeExact())
				continue
			}
			recon.Set(r, c, q.Decode(sym))
		}
	}
	for l := L - 1; l >= 0 && decodeErr == nil; l-- {
		s := 1 << uint(l)
		var innerErr error
		forEachLevelNode(rows, cols, s, func(r, c int) {
			if innerErr != nil || decodeErr != nil {
				return
			}
			sym, err := next()
			if err != nil {
				innerErr = err
				return
			}
			if sym == quant.Escape {
				recon.Set(r, c, takeExact())
				return
			}
			recon.Set(r, c, interpolate(recon, r, c, s)+q.Decode(sym))
		})
		if innerErr != nil {
			return nil, innerErr
		}
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	if si != len(symbols) || ei != len(exact) {
		return nil, ErrCorrupt
	}
	return recon, nil
}
