// Package service turns the analysis library into
// analysis-as-a-service: a long-running HTTP server (corrcompd) that
// exposes analyze / measure / predict over fields uploaded in the
// binary formats the field package auto-detects, or referenced from a
// server-side dataset directory.
//
// Three mechanisms make the server safe to share:
//
//   - an async job queue with bounded admission (submissions beyond
//     the queue capacity are rejected with 429 instead of piling
//     goroutines on the global worker-pool token budget), a fixed
//     executor fan-out, job-status polling, and per-job cancellation;
//
//   - a content-addressed result cache keyed by SHA-256 over the kind,
//     the canonicalized options, and the raw field bytes — the worker
//     count is deliberately not part of the key because every pipeline
//     result is bit-identical at any worker count — with singleflight
//     deduplication so N concurrent identical requests run the
//     pipeline once;
//
//   - context.Context threaded from the HTTP request (or the job's
//     cancel handle) through core into the variogram / SVD / sampling
//     parallel loops, so a disconnected client or a DELETEd job stops
//     computing within one unit of work and returns its pool tokens.
package service

import (
	"fmt"
	"os"
	"strconv"
	"time"
)

// Config is corrcompd's knob set. Every field has an environment
// variable (read by FromEnv) so the server configures the same way in
// a shell, a unit file, or a container.
type Config struct {
	// Addr is the listen address. Env CORRCOMPD_ADDR; default ":8080".
	Addr string
	// MaxBodyBytes caps uploaded request bodies and server-side dataset
	// files; it also derives the element budget handed to the field
	// reader, so a hostile header can never allocate more than the body
	// cap. Env CORRCOMPD_MAX_BODY_BYTES; default 256 MiB.
	MaxBodyBytes int64
	// MaxQueue bounds admission: at most this many jobs wait for an
	// executor; further submissions get 429. Env CORRCOMPD_MAX_QUEUE;
	// default 64.
	MaxQueue int
	// MemBudget caps the summed predicted transform peak (the
	// Π FastLen(dimₖ+L) plane formula, per lane) of admitted async jobs:
	// a submission whose prediction does not fit in the remaining budget
	// is rejected with 429 and the prediction in the response body, so a
	// client can shrink maxlag or split the field instead of OOMing the
	// server. 0 disables the check. Env CORRCOMPD_MEM_BUDGET (bytes).
	MemBudget int64
	// StreamBudget turns on out-of-core analysis: analyze requests
	// whose payload exceeds this many bytes run through the
	// tile-streaming reader with the transform pool capped at the
	// budget instead of slurping the field into RAM. Dataset references
	// larger than MaxBodyBytes are admitted on this path (uploads stay
	// bounded by the body cap, which is a transport limit). 0 disables
	// streaming. Env CORRCOMPD_STREAM_BUDGET (bytes).
	StreamBudget int64
	// Executors is the number of concurrent job runners. Each runner
	// drives one pipeline whose inner parallelism draws from the global
	// worker-pool token budget, so a small executor count keeps the
	// budget from being split too thin. Env CORRCOMPD_EXECUTORS;
	// default 2.
	Executors int
	// CacheEntries bounds the content-addressed result cache (LRU by
	// entry count; entries are results and trained predictors, both
	// small next to the fields they summarize).
	// Env CORRCOMPD_CACHE_ENTRIES; default 128.
	CacheEntries int
	// RetainedJobs bounds the finished-job history kept for polling.
	// Env CORRCOMPD_RETAINED_JOBS; default 256.
	RetainedJobs int
	// DataDir is the server-side dataset directory for ?dataset=name
	// references; empty disables the feature. Env CORRCOMPD_DATA_DIR.
	DataDir string
	// ModelDir is a directory of persisted predictor models
	// (lossycorr-model/v1 JSON, written by corrcomp predict -save or
	// core.SavePredictor). Every *.json file is loaded at boot and
	// served by /v1/predict without training, so a fleet can answer
	// predictions in microseconds from a shared model artifact. Files
	// that fail to load are reported in GET /v1/models (the server
	// still boots). Empty disables the feature.
	// Env CORRCOMPD_MODEL_DIR.
	ModelDir string
	// StatsPeriod is the interval of the periodic stats log line in
	// Run; 0 disables it. Env CORRCOMPD_STATS_PERIOD (Go duration);
	// default 1m.
	StatsPeriod time.Duration
	// Workers sizes the per-pipeline worker pools (0 = GOMAXPROCS).
	// Not part of any cache key: results are bit-identical at every
	// worker count. Env CORRCOMPD_WORKERS.
	Workers int
	// TrainFields / TrainEdge2D / TrainEdge3D size the synthetic
	// Gaussian training set behind /v1/predict (one predictor per
	// (rank, error bound), trained lazily and cached). Envs
	// CORRCOMPD_TRAIN_FIELDS, CORRCOMPD_TRAIN_EDGE2D,
	// CORRCOMPD_TRAIN_EDGE3D; defaults 6, 128, 24 — the corrcomp
	// predict subcommand's defaults.
	TrainFields int
	TrainEdge2D int
	TrainEdge3D int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.RetainedJobs <= 0 {
		c.RetainedJobs = 256
	}
	if c.StatsPeriod < 0 {
		c.StatsPeriod = 0
	}
	if c.TrainFields <= 0 {
		c.TrainFields = 6
	}
	if c.TrainEdge2D <= 0 {
		c.TrainEdge2D = 128
	}
	if c.TrainEdge3D <= 0 {
		c.TrainEdge3D = 24
	}
	return c
}

// FromEnv builds a Config from CORRCOMPD_* variables looked up through
// getenv (missing or empty values keep the defaults). A value that is
// present but unparsable is an error rather than a silent fallback.
func FromEnv(getenv func(string) string) (Config, error) {
	var c Config
	c.Addr = getenv("CORRCOMPD_ADDR")
	c.DataDir = getenv("CORRCOMPD_DATA_DIR")
	c.ModelDir = getenv("CORRCOMPD_MODEL_DIR")
	for _, v := range []struct {
		name string
		dst  *int
	}{
		{"CORRCOMPD_MAX_QUEUE", &c.MaxQueue},
		{"CORRCOMPD_EXECUTORS", &c.Executors},
		{"CORRCOMPD_CACHE_ENTRIES", &c.CacheEntries},
		{"CORRCOMPD_RETAINED_JOBS", &c.RetainedJobs},
		{"CORRCOMPD_WORKERS", &c.Workers},
		{"CORRCOMPD_TRAIN_FIELDS", &c.TrainFields},
		{"CORRCOMPD_TRAIN_EDGE2D", &c.TrainEdge2D},
		{"CORRCOMPD_TRAIN_EDGE3D", &c.TrainEdge3D},
	} {
		s := getenv(v.name)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return c, fmt.Errorf("service: %s=%q: %v", v.name, s, err)
		}
		*v.dst = n
	}
	if s := getenv("CORRCOMPD_MAX_BODY_BYTES"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return c, fmt.Errorf("service: CORRCOMPD_MAX_BODY_BYTES=%q: %v", s, err)
		}
		c.MaxBodyBytes = n
	}
	if s := getenv("CORRCOMPD_MEM_BUDGET"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return c, fmt.Errorf("service: CORRCOMPD_MEM_BUDGET=%q: %v", s, err)
		}
		c.MemBudget = n
	}
	if s := getenv("CORRCOMPD_STREAM_BUDGET"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return c, fmt.Errorf("service: CORRCOMPD_STREAM_BUDGET=%q: %v", s, err)
		}
		c.StreamBudget = n
	}
	if s := getenv("CORRCOMPD_STATS_PERIOD"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return c, fmt.Errorf("service: CORRCOMPD_STATS_PERIOD=%q: %v", s, err)
		}
		c.StatsPeriod = d
	}
	return c, nil
}

// ConfigFromEnv is FromEnv over the process environment.
func ConfigFromEnv() (Config, error) { return FromEnv(os.Getenv) }
