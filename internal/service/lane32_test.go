package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"lossycorr/internal/field"
	"lossycorr/internal/gaussian"
)

func mustJSON(t testing.TB, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decoding %q: %v", data, err)
	}
}

// gaussBody32 serializes the same synthetic Gaussian field as
// gaussBody, narrowed to the float32 wire format.
func gaussBody32(t testing.TB, edge int, rang float64, seed uint64) []byte {
	t.Helper()
	g, err := gaussian.Generate(gaussian.Params{Rows: edge, Cols: edge, Range: rang, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := field.FromGrid(g).Narrow().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAnalyzeFloat32Upload pins the lane dispatch end to end: a
// float32 upload is analyzed on its own lane, and with the direct scan
// the statistics are bitwise the float64 pipeline's on the widened
// bytes — so the two lanes are distinct cache entries with identical
// content.
func TestAnalyzeFloat32Upload(t *testing.T) {
	s, hs := testServer(t, Config{})
	narrow := gaussBody32(t, 48, 8, 3)

	code, data := postBin(t, hs.URL+"/v1/analyze", narrow)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var got analyzeResult
	decodeEnvelope(t, data, &got)
	if len(got.Shape) != 2 || got.Shape[0] != 48 {
		t.Fatalf("shape %v", got.Shape)
	}

	// The widened field through the float64 lane: bitwise-equal stats.
	f32, err := field.ReadBinary32(bytes.NewReader(narrow))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f32.Widen().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	code, data = postBin(t, hs.URL+"/v1/analyze", buf.Bytes())
	if code != http.StatusOK {
		t.Fatalf("widened status %d: %s", code, data)
	}
	var ex analyzeResult
	decodeEnvelope(t, data, &ex)
	if !got.Stats.Equal(ex.Stats) {
		t.Fatalf("lane stats diverge:\n got %+v\nwant %+v", got.Stats, ex.Stats)
	}
	if s.Stats().AnalyzeRuns != 2 {
		t.Fatalf("expected 2 distinct cache entries (one per lane), stats %+v", s.Stats())
	}
}

// TestMeasureFloat32Upload pins the measurement lane: results report
// float32 original bytes and every codec holds its bound.
func TestMeasureFloat32Upload(t *testing.T) {
	_, hs := testServer(t, Config{})
	code, data := postBin(t, hs.URL+"/v1/measure?eb=1e-3&skiplocal=true", gaussBody32(t, 40, 8, 5))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var res measureResult
	decodeEnvelope(t, data, &res)
	if len(res.Results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range res.Results {
		if !r.BoundOK {
			t.Fatalf("%s violated bound: %+v", r.Compressor, r)
		}
		if r.OriginalSize != 40*40*4 {
			t.Fatalf("%s original size %d, want float32 bytes %d", r.Compressor, r.OriginalSize, 40*40*4)
		}
	}
}

// TestMemBudgetAdmission pins the predicted-peak admission contract:
// with a budget that fits the float32 working set but not the float64
// one, the wide upload is rejected with 429 and the prediction in the
// body, the narrow upload is admitted, and the reservation drains back
// to zero when the job finishes.
func TestMemBudgetAdmission(t *testing.T) {
	const edge = 32
	// Non-FFT prediction degenerates to field bytes: 8 KiB f64, 4 KiB f32.
	s, hs := testServer(t, Config{MemBudget: 5 << 10, Executors: 1})

	code, data := postBin(t, hs.URL+"/v1/jobs/analyze?skiplocal=true", gaussBody(t, edge, 6, 7))
	if code != http.StatusTooManyRequests {
		t.Fatalf("f64 job: status %d, want 429: %s", code, data)
	}
	var rej struct {
		Error              string `json:"error"`
		PredictedPeakBytes int64  `json:"predictedPeakBytes"`
		MemBudgetBytes     int64  `json:"memBudgetBytes"`
	}
	mustJSON(t, data, &rej)
	if rej.PredictedPeakBytes != edge*edge*8 || rej.MemBudgetBytes != 5<<10 || rej.Error == "" {
		t.Fatalf("rejection body %+v", rej)
	}
	if s.Stats().JobsRejected != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}

	code, data = postBin(t, hs.URL+"/v1/jobs/analyze?skiplocal=true", gaussBody32(t, edge, 6, 7))
	if code != http.StatusAccepted {
		t.Fatalf("f32 job: status %d, want 202: %s", code, data)
	}
	var info JobInfo
	mustJSON(t, data, &info)
	if info.PredictedPeakBytes != edge*edge*4 {
		t.Fatalf("admitted job charged %d bytes, want %d", info.PredictedPeakBytes, edge*edge*4)
	}
	done := waitJobTerminal(t, hs.URL, info.ID)
	if done.State != JobDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	waitFor(t, 5*time.Second, "reservation drain", func() bool { return s.Stats().MemReservedBytes == 0 })

	// With the reservation back, the same float32 job is admitted again.
	if code, data = postBin(t, hs.URL+"/v1/jobs/analyze?skiplocal=true", gaussBody32(t, edge, 6, 7)); code != http.StatusAccepted {
		t.Fatalf("post-drain resubmit: status %d: %s", code, data)
	}
}

// TestMemBudgetFFTPrediction pins the transform plane formula: with
// vfft the prediction is 4·Π FastLen(dim+L) planes at the lane width —
// far above the raw field bytes — so a budget sized to the field alone
// rejects the FFT job while still admitting the direct-scan one.
func TestMemBudgetFFTPrediction(t *testing.T) {
	const edge = 32
	_, hs := testServer(t, Config{MemBudget: edge * edge * 8, Executors: 1})
	body := gaussBody(t, edge, 6, 9)

	if code, data := postBin(t, hs.URL+"/v1/jobs/analyze?skiplocal=true", body); code != http.StatusAccepted {
		t.Fatalf("direct-scan job: status %d: %s", code, data)
	}
	code, data := postBin(t, hs.URL+"/v1/jobs/analyze?skiplocal=true&vfft=true&maxlag=16", body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("FFT job: status %d, want 429: %s", code, data)
	}
	var rej struct {
		PredictedPeakBytes int64 `json:"predictedPeakBytes"`
	}
	mustJSON(t, data, &rej)
	// Each padded extent is at least edge+16, so the four-plane formula
	// predicts at least 4·48²·8 bytes.
	if min := int64(4 * 48 * 48 * 8); rej.PredictedPeakBytes < min {
		t.Fatalf("FFT prediction %d < plane-formula floor %d", rej.PredictedPeakBytes, min)
	}
}

// TestMemBudgetEnv pins the CORRCOMPD_MEM_BUDGET wiring.
func TestMemBudgetEnv(t *testing.T) {
	env := map[string]string{"CORRCOMPD_MEM_BUDGET": "1073741824"}
	c, err := FromEnv(func(k string) string { return env[k] })
	if err != nil {
		t.Fatal(err)
	}
	if c.MemBudget != 1<<30 {
		t.Fatalf("MemBudget %d", c.MemBudget)
	}
	env["CORRCOMPD_MEM_BUDGET"] = "lots"
	if _, err := FromEnv(func(k string) string { return env[k] }); err == nil {
		t.Fatal("unparsable budget accepted")
	}
}
