package service

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentIdenticalSubmissionsSingleflight pins the dedup
// contract under -race: N clients POSTing byte-identical bodies at
// once get N identical 200s while the pipeline runs exactly once —
// the leader computes, concurrent followers join its flight, and
// stragglers hit the cache the flight populated before tearing down.
func TestConcurrentIdenticalSubmissionsSingleflight(t *testing.T) {
	s, hs := testServer(t, Config{})
	body := gaussBody(t, 128, 12, 21)

	const n = 12
	results := make([]analyzeResult, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, data := postBin(t, hs.URL+"/v1/analyze", body)
			if code != http.StatusOK {
				errs <- &apiError{status: code, msg: string(data)}
				return
			}
			decodeEnvelope(t, data, &results[i])
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.AnalyzeRuns != 1 {
		t.Fatalf("pipeline ran %d times for %d identical submissions, want exactly 1", st.AnalyzeRuns, n)
	}
	if st.FlightsJoined+st.CacheHits != n-1 {
		t.Fatalf("joined=%d hits=%d, want them to cover the %d non-leaders", st.FlightsJoined, st.CacheHits, n-1)
	}
	for i := 1; i < n; i++ {
		if !results[i].Stats.Equal(results[0].Stats) {
			t.Fatalf("response %d differs: %+v vs %+v", i, results[i], results[0])
		}
	}
}

// TestConcurrentJobMix hammers the job table and cache from many
// goroutines: three distinct contents, four async submissions each,
// all polled to completion. Under -race this covers the job state
// machine, the queue, and the flight group concurrently.
func TestConcurrentJobMix(t *testing.T) {
	s, hs := testServer(t, Config{Executors: 4, MaxQueue: 32})
	bodies := [][]byte{
		gaussBody(t, 48, 6, 31),
		gaussBody(t, 48, 12, 32),
		gaussBody(t, 48, 24, 33),
	}

	const perBody = 4
	ids := make([]string, 0, len(bodies)*perBody)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range bodies {
		for k := 0; k < perBody; k++ {
			wg.Add(1)
			go func(b []byte) {
				defer wg.Done()
				code, data := postBin(t, hs.URL+"/v1/jobs/analyze", b)
				if code != http.StatusAccepted {
					t.Errorf("submit: %d %s", code, data)
					return
				}
				var info JobInfo
				if err := json.Unmarshal(data, &info); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				ids = append(ids, info.ID)
				mu.Unlock()
			}(b)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for _, id := range ids {
		if final := waitJobTerminal(t, hs.URL, id); final.State != JobDone {
			t.Fatalf("job %s ended %s: %s", id, final.State, final.Error)
		}
	}
	st := s.Stats()
	if st.AnalyzeRuns != int64(len(bodies)) {
		t.Fatalf("pipeline ran %d times for %d distinct contents", st.AnalyzeRuns, len(bodies))
	}
	if st.JobsCompleted != int64(len(ids)) {
		t.Fatalf("completed %d of %d jobs", st.JobsCompleted, len(ids))
	}
}
