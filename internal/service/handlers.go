package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"lossycorr/internal/compress"
	"lossycorr/internal/core"
	"lossycorr/internal/fft"
	"lossycorr/internal/field"
	"lossycorr/internal/gaussian"
	"lossycorr/internal/stat"
	"lossycorr/internal/svdstat"
)

// runSpec is one executable request: the pipeline kind, its content
// address, the closure that computes the result under a context, and
// the predicted transform peak used by memory-budget admission.
// Sync endpoints run specs on the request goroutine with the request's
// context; async jobs run them on an executor with the job's context.
// cleanup, when set, owns resources the run closure borrows (an open
// tile reader, a spooled temp file); the holder calls release exactly
// once after the spec can never run again.
type runSpec struct {
	kind      string
	key       string
	peakBytes int64
	run       func(ctx context.Context) (any, error)
	cleanup   func()
}

// release runs the spec's cleanup at most once.
func (sp *runSpec) release() {
	if sp.cleanup != nil {
		sp.cleanup()
		sp.cleanup = nil
	}
}

// apiError carries an HTTP status through the handler plumbing.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func apiErrorf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// writeJSON marshals to a buffer before touching the ResponseWriter,
// so a serialization failure surfaces as a 500 instead of a truncated
// body behind an already-committed success header.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = io.WriteString(w, `{"error":"encoding response failed"}`+"\n")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(buf, '\n'))
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		status = ae.status
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// Handler returns the corrcompd route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/analyze", s.syncHandler("analyze"))
	mux.HandleFunc("POST /v1/measure", s.syncHandler("measure"))
	mux.HandleFunc("POST /v1/predict", s.syncHandler("predict"))
	mux.HandleFunc("POST /v1/jobs/{kind}", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	return mux
}

// ---- field intake ------------------------------------------------

func (s *Server) maxElements() int { return int(s.cfg.MaxBodyBytes / 8) }

// uploadField is the lane-dispatched result of a field upload: exactly
// one of the two lanes is set, per the wire format's element tag. Both
// lanes flow through the same option validation and cache addressing
// (the lane is part of the raw bytes, so the content address already
// distinguishes them); the spec builders pick the pipeline.
type uploadField struct {
	wide   *field.Field
	narrow *field.Field32
}

func (u uploadField) shape() []int {
	if u.narrow != nil {
		return u.narrow.Shape
	}
	return u.wide.Shape
}

func (u uploadField) ndim() int { return len(u.shape()) }

func (u uploadField) minDim() int {
	if u.narrow != nil {
		return u.narrow.MinDim()
	}
	return u.wide.MinDim()
}

// elemBytes is the lane's element width — the factor the float32 lane
// halves in every transform plane and pooled buffer.
func (u uploadField) elemBytes() int64 {
	if u.narrow != nil {
		return 4
	}
	return 8
}

// spoolMemLimit is the largest upload kept wholly in memory while
// spooling; bigger bodies spill to a temp file as they are hashed, so
// the server never holds both the raw bytes and the parsed field.
const spoolMemLimit = 1 << 20

// fieldSource is a request's resolved field payload. digest is the
// SHA-256 of the payload bytes — computed while the body spools, so
// the content address never requires the whole payload in memory.
// Exactly one representation is live: the parsed in-RAM lanes (u), or
// a backing file path for out-of-core streaming.
type fieldSource struct {
	digest []byte
	size   int64
	u      uploadField
	path   string // backing file for streaming ("" when parsed in RAM)
	temp   bool   // path is a spooled temp file to delete after the run
}

func (src fieldSource) streaming() bool { return src.path != "" }

// resolveField resolves the field of a request: the raw body (bounded
// by MaxBodyBytes) or a ?dataset=name reference into the server's data
// directory. With streamOK (an analyze request on a server with a
// StreamBudget), payloads over the budget stay on disk — the spooled
// temp file or the dataset file itself — for out-of-core analysis;
// everything else parses in RAM, with the byte budget enforced before
// the parse and the parse validating the header's shape before
// allocating, so a hostile request cannot make the server reserve more
// memory than the configured caps. (The element budget is derived from
// the float64 width for both lanes, so the guarantee holds regardless
// of which lane the header claims.)
func (s *Server) resolveField(w http.ResponseWriter, r *http.Request, streamOK bool) (fieldSource, error) {
	if name := r.URL.Query().Get("dataset"); name != "" {
		return s.datasetSource(name, streamOK)
	}
	return s.spoolBody(w, r, streamOK)
}

// datasetSource resolves ?dataset=name. Streaming datasets are hashed
// in place (one sequential read, no allocation) and may exceed
// MaxBodyBytes — the whole point of out-of-core analysis; in-RAM use
// keeps the cap.
func (s *Server) datasetSource(name string, streamOK bool) (fieldSource, error) {
	if s.cfg.DataDir == "" {
		return fieldSource{}, apiErrorf(http.StatusNotFound, "no dataset directory configured")
	}
	if name != filepath.Base(name) || name == "." || name == ".." {
		return fieldSource{}, apiErrorf(http.StatusBadRequest, "invalid dataset name %q", name)
	}
	p := filepath.Join(s.cfg.DataDir, name)
	st, err := os.Stat(p)
	if err != nil || st.IsDir() {
		return fieldSource{}, apiErrorf(http.StatusNotFound, "unknown dataset %q", name)
	}
	stream := streamOK && st.Size() > s.cfg.StreamBudget
	if !stream && st.Size() > s.cfg.MaxBodyBytes {
		return fieldSource{}, apiErrorf(http.StatusRequestEntityTooLarge,
			"dataset %q is %d bytes, over the %d-byte cap", name, st.Size(), s.cfg.MaxBodyBytes)
	}
	f, err := os.Open(p)
	if err != nil {
		return fieldSource{}, apiErrorf(http.StatusInternalServerError, "reading dataset %q: %v", name, err)
	}
	defer f.Close()
	h := sha256.New()
	if stream {
		if _, err := io.Copy(h, f); err != nil {
			return fieldSource{}, apiErrorf(http.StatusInternalServerError, "hashing dataset %q: %v", name, err)
		}
		return fieldSource{digest: h.Sum(nil), size: st.Size(), path: p}, nil
	}
	raw, err := io.ReadAll(io.TeeReader(f, h))
	if err != nil {
		return fieldSource{}, apiErrorf(http.StatusInternalServerError, "reading dataset %q: %v", name, err)
	}
	return s.parseSource(fieldSource{digest: h.Sum(nil), size: int64(len(raw))}, raw)
}

// spoolBody drains the request body through the content hasher into a
// memory buffer, spilling to a temp file past the spool limit (or past
// the stream budget, so anything that will stream lands on disk). The
// temp file of a non-streaming body is deleted as soon as the field is
// parsed; a streaming body's spool lives until the spec's cleanup.
func (s *Server) spoolBody(w http.ResponseWriter, r *http.Request, streamOK bool) (fieldSource, error) {
	badBody := func(err error) error {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return apiErrorf(http.StatusRequestEntityTooLarge,
				"body exceeds %d bytes", s.cfg.MaxBodyBytes)
		}
		return apiErrorf(http.StatusBadRequest, "reading body: %v", err)
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	spillAt := int64(spoolMemLimit)
	if streamOK && s.cfg.StreamBudget < spillAt {
		spillAt = s.cfg.StreamBudget
	}
	h := sha256.New()
	var buf bytes.Buffer
	n, err := io.Copy(io.MultiWriter(&buf, h), io.LimitReader(body, spillAt))
	if err != nil {
		return fieldSource{}, badBody(err)
	}
	if n < spillAt {
		if n == 0 {
			return fieldSource{}, apiErrorf(http.StatusBadRequest,
				"empty field payload: POST a binary field or pass ?dataset=name")
		}
		return s.parseSource(fieldSource{digest: h.Sum(nil), size: n}, buf.Bytes())
	}
	tmp, err := os.CreateTemp("", "corrcompd-spool-*")
	if err != nil {
		return fieldSource{}, apiErrorf(http.StatusInternalServerError, "spooling body: %v", err)
	}
	drop := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		drop()
		return fieldSource{}, apiErrorf(http.StatusInternalServerError, "spooling body: %v", err)
	}
	m, err := io.Copy(io.MultiWriter(tmp, h), body)
	if err != nil {
		drop()
		return fieldSource{}, badBody(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fieldSource{}, apiErrorf(http.StatusInternalServerError, "spooling body: %v", err)
	}
	src := fieldSource{digest: h.Sum(nil), size: n + m, path: tmp.Name(), temp: true}
	if streamOK && src.size > s.cfg.StreamBudget {
		return src, nil
	}
	raw, err := os.ReadFile(src.path)
	os.Remove(src.path)
	src.path, src.temp = "", false
	if err != nil {
		return fieldSource{}, apiErrorf(http.StatusInternalServerError, "reading spooled body: %v", err)
	}
	return s.parseSource(src, raw)
}

// parseSource finishes an in-RAM source: the payload parses onto its
// stored lane and the raw bytes are dropped.
func (s *Server) parseSource(src fieldSource, raw []byte) (fieldSource, error) {
	wide, narrow, err := field.ReadAnyLimit(bytes.NewReader(raw), s.maxElements())
	if err != nil {
		return fieldSource{}, apiErrorf(http.StatusBadRequest, "bad field payload: %v", err)
	}
	src.u = uploadField{wide: wide, narrow: narrow}
	return src, nil
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name  string `json:"name"`
		Bytes int64  `json:"bytes"`
	}
	out := []entry{}
	if s.cfg.DataDir != "" {
		des, err := os.ReadDir(s.cfg.DataDir)
		if err != nil {
			s.writeError(w, apiErrorf(http.StatusInternalServerError, "listing datasets: %v", err))
			return
		}
		for _, de := range des {
			if de.Type().IsRegular() {
				if info, err := de.Info(); err == nil {
					out = append(out, entry{Name: de.Name(), Bytes: info.Size()})
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// ---- option parsing ----------------------------------------------

func queryInt(q url.Values, name string, def int) (int, error) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, apiErrorf(http.StatusBadRequest, "bad %s=%q: %v", name, s, err)
	}
	return n, nil
}

func queryFloat(q url.Values, name string, def float64) (float64, error) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, apiErrorf(http.StatusBadRequest, "bad %s=%q: %v", name, s, err)
	}
	return v, nil
}

func queryBool(q url.Values, name string, def bool) (bool, error) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return false, apiErrorf(http.StatusBadRequest, "bad %s=%q: %v", name, s, err)
	}
	return v, nil
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// analysisParams is the service surface over core.AnalysisOptions.
// Its canonical string is part of the cache key, so two requests that
// spell the same options differently (e.g. ?vfft=1 vs ?vfft=true)
// still address the same cache entry.
type analysisParams struct {
	window    int
	maxLag    int
	frac      float64
	vfft      bool
	skipLocal bool
	gram      bool
	// stats is the kernel selection (?stats=variogram,svd), validated
	// against the registry at parse time and normalized (sorted,
	// deduplicated) so spelling order never splits the cache. Empty
	// means every registered kernel.
	stats []string
}

// parseStatsSelection validates and normalizes a ?stats= value. The
// run order is fixed by the registry regardless of spelling, so the
// canonical form is the sorted, deduplicated name set.
func parseStatsSelection(v string) ([]string, error) {
	if v == "" {
		return nil, nil
	}
	seen := map[string]bool{}
	names := make([]string, 0, 4)
	for _, part := range strings.Split(v, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if _, ok := stat.Lookup(name); !ok {
			return nil, apiErrorf(http.StatusBadRequest,
				"unknown statistic %q (registered: %s)", name, strings.Join(stat.Names(), ", "))
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, apiErrorf(http.StatusBadRequest, "empty stats selection")
	}
	sort.Strings(names)
	return names, nil
}

func parseAnalysisParams(q url.Values) (analysisParams, error) {
	p := analysisParams{window: core.DefaultWindow, frac: svdstat.DefaultVarianceFraction, gram: true}
	var err error
	if p.window, err = queryInt(q, "window", p.window); err != nil {
		return p, err
	}
	if p.stats, err = parseStatsSelection(q.Get("stats")); err != nil {
		return p, err
	}
	if p.maxLag, err = queryInt(q, "maxlag", 0); err != nil {
		return p, err
	}
	if p.frac, err = queryFloat(q, "frac", p.frac); err != nil {
		return p, err
	}
	if p.vfft, err = queryBool(q, "vfft", false); err != nil {
		return p, err
	}
	if p.skipLocal, err = queryBool(q, "skiplocal", false); err != nil {
		return p, err
	}
	if p.gram, err = queryBool(q, "gram", true); err != nil {
		return p, err
	}
	if p.window < 2 {
		return p, apiErrorf(http.StatusBadRequest, "window must be >= 2, got %d", p.window)
	}
	if p.maxLag < 0 {
		return p, apiErrorf(http.StatusBadRequest, "maxlag must be >= 0, got %d", p.maxLag)
	}
	return p, nil
}

// validateMaxLag bounds the lag cutoff by the field's own shape. The
// direct scan enumerates O((2·maxlag+1)^ndim) lattice offsets and the
// FFT path pads every axis by maxlag before transforming, so an
// unbounded query parameter would let a tiny upload demand unbounded
// CPU and memory regardless of the body-size cap. The ceiling is half
// the smallest extent — the same value the engine substitutes for
// maxlag=0 — so no request can cost more than the default already does.
func validateMaxLag(maxLag, minDim int) error {
	ceil := minDim / 2
	if ceil < 1 {
		ceil = 1
	}
	if maxLag > ceil {
		return apiErrorf(http.StatusBadRequest,
			"maxlag %d exceeds the cap %d for this field (half its smallest extent)", maxLag, ceil)
	}
	return nil
}

// predictedPeakBytes estimates the transform working set of one
// pipeline run on u before it is admitted: the FFT exact engine holds
// at most four padded planes of Π_k FastLen(dim_k + L) elements at the
// lane's width (the float64 engine peaks at 2 real + 2 half-spectrum
// planes; the float32 engine at one fewer, so four is an upper bound
// for both). Without the FFT engine the working set is the windowed
// extraction's, bounded by the field itself — which the body cap
// already limits — so the prediction degenerates to the field bytes.
func predictedPeakBytes(u uploadField, p analysisParams) int64 {
	dims := u.shape()
	lag := p.maxLag
	if lag == 0 {
		// The engine's substitute for maxlag=0: half the smallest extent.
		if lag = u.minDim() / 2; lag < 1 {
			lag = 1
		}
	}
	if !p.vfft {
		total := u.elemBytes()
		for _, d := range dims {
			total *= int64(d)
		}
		return total
	}
	plane := u.elemBytes()
	for _, d := range dims {
		plane *= int64(fft.FastLen(d + lag))
	}
	return 4 * plane
}

func (p analysisParams) canon() string {
	c := fmt.Sprintf("w=%d|lag=%d|frac=%s|vfft=%t|skip=%t|gram=%t",
		p.window, p.maxLag, fmtFloat(p.frac), p.vfft, p.skipLocal, p.gram)
	// The selection joins the canon only when present, so every cache
	// key minted before the stats option existed stays valid.
	if len(p.stats) > 0 {
		c += "|stats=" + strings.Join(p.stats, ",")
	}
	return c
}

func (p analysisParams) options(workers int) core.AnalysisOptions {
	o := core.AnalysisOptions{
		Window:           p.window,
		VarianceFraction: p.frac,
		SkipLocal:        p.skipLocal,
		VariogramFFT:     p.vfft,
		Workers:          workers,
	}
	o.VariogramOpts.MaxLag = p.maxLag
	o.Stats = p.stats
	if !p.gram {
		o.SVDGram = svdstat.GramOff
	}
	return o
}

func parseErrorBounds(s string) ([]float64, error) {
	if s == "" {
		return compress.PaperErrorBounds, nil
	}
	parts := strings.Split(s, ",")
	ebs := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, apiErrorf(http.StatusBadRequest, "bad error bound %q", p)
		}
		ebs = append(ebs, v)
	}
	return ebs, nil
}

func canonFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmtFloat(v)
	}
	return strings.Join(parts, ",")
}

// ---- spec builders -----------------------------------------------

type analyzeResult struct {
	Shape []int           `json:"shape"`
	Stats core.Statistics `json:"stats"`
}

type measureResult struct {
	Shape   []int             `json:"shape"`
	Stats   core.Statistics   `json:"stats"`
	Results []compress.Result `json:"results"`
}

type predictResult struct {
	// Shape is the uploaded field's shape; empty on the stats-only
	// (?stat=) path, which never sees a field.
	Shape          []int           `json:"shape,omitempty"`
	Stats          core.Statistics `json:"stats"`
	ErrorBound     float64         `json:"errorBound"`
	Compressor     string          `json:"compressor"`
	PredictedRatio float64         `json:"predictedRatio"`
	// Lo and Hi bracket PredictedRatio with the model's t-based
	// prediction interval at Level when ?interval=1 was requested.
	Lo    *float64 `json:"lo,omitempty"`
	Hi    *float64 `json:"hi,omitempty"`
	Level float64  `json:"level,omitempty"`
	// ModelKey is the content address of the predictor that answered:
	// the model file's hash for boot-loaded models, the training canon's
	// hash for lazily trained ones.
	ModelKey string `json:"modelKey,omitempty"`
	// Selected is true when the server chose the compressor (no
	// ?codec= was given) rather than scoring a requested one.
	Selected bool `json:"selected"`
}

// parsePredictParams validates the option set shared by the field and
// stats-only predict paths. A requested codec is checked against
// whatever will serve the request: the boot-loaded model's own fit set
// when one covers (rank, eb) — model files may carry codec names the
// built-in registry has never heard of — or the registry the lazy
// trainer draws from otherwise.
func (s *Server) parsePredictParams(q url.Values, rank int) (eb float64, codec string, interval bool, err error) {
	if eb, err = queryFloat(q, "eb", 1e-3); err != nil {
		return
	}
	if eb <= 0 {
		err = apiErrorf(http.StatusBadRequest, "eb must be > 0, got %g", eb)
		return
	}
	codec = q.Get("codec")
	if codec != "" {
		if pred, _, ok := s.models.lookup(rank, eb); ok {
			if _, has := pred.Fit(codec, eb); !has {
				err = apiErrorf(http.StatusBadRequest,
					"serving model has no codec %q at eb=%g (have %v)", codec, eb, pred.Models())
				return
			}
		} else if _, cerr := core.DefaultRegistry().GetFor(codec, rank); cerr != nil {
			err = apiErrorf(http.StatusBadRequest, "%v", cerr)
			return
		}
	}
	interval, err = queryBool(q, "interval", false)
	return
}

// modelCanon is the serving-model component of a predict cache key:
// the boot-loaded model's content address when one serves (rank, eb),
// the training canon otherwise. The boot registry is immutable after
// New, so the choice is stable for the process lifetime and cached
// predict responses can never alias across serving models.
func (s *Server) modelCanon(rank int, eb float64) string {
	if _, key, ok := s.models.lookup(rank, eb); ok {
		return "model=" + key
	}
	return s.trainCanon(rank, eb)
}

// predictOutcome scores (or selects) a compressor from
// already-computed statistics — the shared tail of both predict paths.
func predictOutcome(pred *core.Predictor, modelKey string, eb float64, codec string, interval bool, stats core.Statistics) (predictResult, error) {
	res := predictResult{Stats: stats, ErrorBound: eb, ModelKey: modelKey}
	if codec == "" {
		sel, err := pred.SelectCompressor(eb, stats)
		if err != nil {
			return predictResult{}, err
		}
		res.Compressor, res.PredictedRatio, res.Selected = sel.Compressor, sel.Predicted, true
	} else {
		ratio, err := pred.PredictRatio(codec, eb, stats)
		if err != nil {
			return predictResult{}, err
		}
		res.Compressor, res.PredictedRatio = codec, ratio
	}
	if interval {
		p, err := pred.PredictRatioInterval(res.Compressor, eb, stats, 0)
		if err != nil {
			return predictResult{}, err
		}
		lo, hi := p.Lo, p.Hi
		res.Lo, res.Hi, res.Level = &lo, &hi, p.Level
	}
	return res, nil
}

// buildStatPredictSpec builds the body-less predict spec: the client
// supplies the selected statistic directly (?stat=, already computed
// by an earlier analyze or offline) and the server only evaluates the
// fitted model — microseconds against a boot-loaded predictor, no
// field upload, no analysis pipeline.
func (s *Server) buildStatPredictSpec(q url.Values) (runSpec, error) {
	stat, err := queryFloat(q, "stat", 0)
	if err != nil {
		return runSpec{}, err
	}
	if stat <= 0 {
		return runSpec{}, apiErrorf(http.StatusBadRequest,
			"stat must be > 0 (the log model is undefined at %g)", stat)
	}
	rank, err := queryInt(q, "ndim", 2)
	if err != nil {
		return runSpec{}, err
	}
	if rank != 2 && rank != 3 {
		return runSpec{}, apiErrorf(http.StatusBadRequest,
			"prediction supports ndim 2 and 3, got %d", rank)
	}
	eb, codec, interval, err := s.parsePredictParams(q, rank)
	if err != nil {
		return runSpec{}, err
	}
	canon := fmt.Sprintf("stat=%s|rank=%d|eb=%s|codec=%s|interval=%t|%s",
		fmtFloat(stat), rank, fmtFloat(eb), codec, interval, s.modelCanon(rank, eb))
	return runSpec{
		kind: "predict",
		key:  cacheKey("predict", canon, nil),
		run: func(ctx context.Context) (any, error) {
			pred, modelKey, err := s.predictor(ctx, rank, eb)
			if err != nil {
				return nil, err
			}
			stats := pred.Selector().WithValue(stat)
			return predictOutcome(pred, modelKey, eb, codec, interval, stats)
		},
	}, nil
}

// buildSpec validates a request completely — options, field payload,
// codec names — before any pipeline work, so every 4xx happens at
// submit time and an admitted job can only fail on compute errors.
func (s *Server) buildSpec(kind string, w http.ResponseWriter, r *http.Request) (runSpec, error) {
	if kind == "predict" && r.URL.Query().Get("stat") != "" {
		// Stats-only prediction: no field payload to resolve — the body,
		// if any, is ignored.
		return s.buildStatPredictSpec(r.URL.Query())
	}
	streamOK := kind == "analyze" && s.cfg.StreamBudget > 0
	src, err := s.resolveField(w, r, streamOK)
	if err != nil {
		return runSpec{}, err
	}
	q := r.URL.Query()
	p, err := parseAnalysisParams(q)
	if err != nil {
		if src.temp {
			os.Remove(src.path)
		}
		return runSpec{}, err
	}
	if src.streaming() {
		return s.buildStreamSpec(src, p)
	}
	u := src.u
	if err := validateMaxLag(p.maxLag, u.minDim()); err != nil {
		return runSpec{}, err
	}
	workers := s.cfg.Workers
	shape := u.shape()

	// analyzeLane runs the analysis stage of any kind on the upload's
	// own lane: float32 uploads keep their half-bandwidth pipeline end
	// to end instead of being silently widened at the door.
	analyzeLane := func(ctx context.Context, aOpts core.AnalysisOptions) (core.Statistics, error) {
		if u.narrow != nil {
			return core.AnalyzeField32Ctx(ctx, u.narrow, aOpts)
		}
		return core.AnalyzeFieldCtx(ctx, u.wide, aOpts)
	}

	switch kind {
	case "analyze":
		aOpts := p.options(workers)
		return runSpec{
			kind:      kind,
			key:       cacheKey(kind, p.canon(), src.digest),
			peakBytes: predictedPeakBytes(u, p),
			run: func(ctx context.Context) (any, error) {
				stats, err := analyzeLane(ctx, aOpts)
				if err != nil {
					return nil, err
				}
				return analyzeResult{Shape: shape, Stats: stats}, nil
			},
		}, nil

	case "measure":
		ebs, err := parseErrorBounds(q.Get("eb"))
		if err != nil {
			return runSpec{}, err
		}
		codec := q.Get("codec")
		reg := core.DefaultRegistry()
		if codec != "" {
			c, err := reg.GetFor(codec, u.ndim())
			if err != nil {
				return runSpec{}, apiErrorf(http.StatusBadRequest, "%v", err)
			}
			sub := compress.NewRegistry()
			if err := sub.RegisterField(c); err != nil {
				return runSpec{}, err
			}
			reg = sub
		}
		canon := p.canon() + "|ebs=" + canonFloats(ebs) + "|codec=" + codec
		mOpts := core.MeasureOptions{Analysis: p.options(workers), ErrorBounds: ebs, Workers: workers}
		return runSpec{
			kind:      kind,
			key:       cacheKey(kind, canon, src.digest),
			peakBytes: predictedPeakBytes(u, p),
			run: func(ctx context.Context) (any, error) {
				var ms []core.Measurement
				var err error
				if u.narrow != nil {
					ms, err = core.MeasureFieldSet32Ctx(ctx, "request", []*field.Field32{u.narrow}, nil, reg, mOpts)
				} else {
					ms, err = core.MeasureFieldSetCtx(ctx, "request", []*field.Field{u.wide}, nil, reg, mOpts)
				}
				if err != nil {
					return nil, err
				}
				return measureResult{Shape: shape, Stats: ms[0].Stats, Results: ms[0].Results}, nil
			},
		}, nil

	case "predict":
		rank := u.ndim()
		if rank != 2 && rank != 3 {
			return runSpec{}, apiErrorf(http.StatusBadRequest,
				"prediction supports rank 2 and 3 fields, got rank %d", rank)
		}
		eb, codec, interval, err := s.parsePredictParams(q, rank)
		if err != nil {
			return runSpec{}, err
		}
		// The predictor regresses on the global range, so the target's
		// local statistics are never needed — and any client-side stats
		// selection is overridden; the model decides what it reads.
		p.skipLocal = true
		p.stats = nil
		aOpts := p.options(workers)
		canon := fmt.Sprintf("%s|eb=%s|codec=%s|interval=%t|%s",
			p.canon(), fmtFloat(eb), codec, interval, s.modelCanon(rank, eb))
		return runSpec{
			kind:      kind,
			key:       cacheKey(kind, canon, src.digest),
			peakBytes: predictedPeakBytes(u, p),
			run: func(ctx context.Context) (any, error) {
				pred, modelKey, err := s.predictor(ctx, rank, eb)
				if err != nil {
					return nil, err
				}
				stats, err := analyzeLane(ctx, aOpts)
				if err != nil {
					return nil, err
				}
				res, err := predictOutcome(pred, modelKey, eb, codec, interval, stats)
				if err != nil {
					return nil, err
				}
				res.Shape = shape
				return res, nil
			},
		}, nil
	}
	return runSpec{}, apiErrorf(http.StatusNotFound, "unknown job kind %q (want analyze, measure, or predict)", kind)
}

// buildStreamSpec builds the out-of-core analyze spec: the field stays
// on disk behind a tile reader and the pipeline streams budget-sized
// tiles, with the transform pool capped at Config.StreamBudget. The
// windowed statistics are bit-identical to the in-RAM pipeline; the
// spectral global variogram is tolerance-equivalent (exact pair
// counts), so the stream budget joins the canonical option string to
// keep streamed and slurped spectral results at distinct content
// addresses. Admission charges the budget itself — the streaming
// pipeline's transform peak is bounded by it.
func (s *Server) buildStreamSpec(src fieldSource, p analysisParams) (runSpec, error) {
	dropTemp := func() {
		if src.temp {
			os.Remove(src.path)
		}
	}
	// The element budget only guards header arithmetic here: the reader
	// rejects any header claiming more bytes than the file holds, so the
	// file's own size is the real bound.
	tr, err := field.OpenTileReaderMapped(src.path, int(src.size/4)+16)
	if err != nil {
		dropTemp()
		return runSpec{}, apiErrorf(http.StatusBadRequest, "bad field payload: %v", err)
	}
	if err := validateMaxLag(p.maxLag, tr.MinDim()); err != nil {
		tr.Close()
		dropTemp()
		return runSpec{}, err
	}
	budget := s.cfg.StreamBudget
	aOpts := p.options(s.cfg.Workers)
	aOpts.MemBudget = budget
	shape := tr.Shape()
	canon := p.canon() + "|stream=" + strconv.FormatInt(budget, 10)
	return runSpec{
		kind:      "analyze",
		key:       cacheKey("analyze", canon, src.digest),
		peakBytes: budget,
		cleanup: func() {
			tr.Close()
			dropTemp()
		},
		run: func(ctx context.Context) (any, error) {
			stats, err := core.AnalyzeReaderCtx(ctx, tr, aOpts)
			if err != nil {
				return nil, err
			}
			return analyzeResult{Shape: shape, Stats: stats}, nil
		},
	}, nil
}

// ---- predictor training ------------------------------------------

// trainSeed fixes the synthetic training set, so the trained models —
// and through them /v1/predict responses — are reproducible across
// server restarts.
const trainSeed = 1

func (s *Server) trainCanon(rank int, eb float64) string {
	edge := s.cfg.TrainEdge2D
	if rank == 3 {
		edge = s.cfg.TrainEdge3D
	}
	return fmt.Sprintf("train=%d|edge=%d|rank=%d|teb=%s", s.cfg.TrainFields, edge, rank, fmtFloat(eb))
}

// predictor returns the predictor serving (rank, eb) plus its content
// address. A boot-loaded model from Config.ModelDir answers first —
// that path never trains, so a fleet shipped a model artifact serves
// predictions in microseconds. Otherwise the model is trained lazily
// through the same cache + singleflight layer as results, so
// concurrent first predictions train once and the model is reused
// until evicted; completed trainings register in the /v1/models
// listing (but never in the boot lookup table, which stays immutable).
func (s *Server) predictor(ctx context.Context, rank int, eb float64) (*core.Predictor, string, error) {
	if pred, key, ok := s.models.lookup(rank, eb); ok {
		return pred, key, nil
	}
	key := cacheKey("train", s.trainCanon(rank, eb), nil)
	spec := runSpec{
		kind: "train",
		key:  key,
		run: func(ctx context.Context) (any, error) {
			return s.trainModel(ctx, rank, eb)
		},
	}
	v, _, err := s.runCached(ctx, spec)
	if err != nil {
		return nil, "", err
	}
	pred := v.(*core.Predictor)
	s.models.registerTrained(key, rank, pred)
	return pred, key, nil
}

// trainModel fits one log-regression per codec at the requested bound
// on synthetic Gaussian fields spanning a range ladder — the corrcomp
// predict subcommand's recipe, server-side.
func (s *Server) trainModel(ctx context.Context, rank int, eb float64) (*core.Predictor, error) {
	n := s.cfg.TrainFields
	fields := make([]*field.Field, 0, n)
	labels := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if rank == 2 {
			edge := s.cfg.TrainEdge2D
			rang := float64(edge) / 64 * float64(int(2)<<uint(i%6))
			g, err := gaussian.Generate(gaussian.Params{
				Rows: edge, Cols: edge, Range: rang, Seed: trainSeed + uint64(i),
			})
			if err != nil {
				return nil, err
			}
			fields = append(fields, field.FromGrid(g))
			labels = append(labels, rang)
		} else {
			edge := s.cfg.TrainEdge3D
			rang := float64(edge) / 16 * float64(int(1)<<uint(i%3))
			v, err := gaussian.Generate3D(gaussian.Params3D{
				Nz: edge, Ny: edge, Nx: edge, Range: rang, Seed: trainSeed + uint64(i),
			})
			if err != nil {
				return nil, err
			}
			fields = append(fields, field.FromVolume(v))
			labels = append(labels, rang)
		}
	}
	ms, err := core.MeasureFieldSetCtx(ctx, "train", fields, labels, core.DefaultRegistry(),
		core.MeasureOptions{
			Analysis:    core.AnalysisOptions{SkipLocal: true},
			ErrorBounds: []float64{eb},
			Workers:     s.cfg.Workers,
		})
	if err != nil {
		return nil, err
	}
	pred, err := core.TrainPredictor(ms, core.XGlobalRange)
	if err != nil {
		return nil, err
	}
	edge := s.cfg.TrainEdge2D
	if rank == 3 {
		edge = s.cfg.TrainEdge3D
	}
	pred.SetProvenance(core.ModelProvenance{
		Source: "train", Rank: rank, TrainFields: n, TrainEdge: edge,
		Seed: trainSeed, Measurements: len(ms),
	})
	return pred, nil
}

// ---- sync + async handlers ---------------------------------------

// envelope wraps a sync response with per-request execution metadata;
// async jobs report the same metadata through their JobInfo instead.
type envelope struct {
	Cached        bool    `json:"cached"`
	ElapsedMs     float64 `json:"elapsedMs"`
	PoolPeakBytes int64   `json:"poolPeakBytes"`
	Result        any     `json:"result"`
}

func (s *Server) syncHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		spec, err := s.buildSpec(kind, w, r)
		if err != nil {
			s.writeError(w, err)
			return
		}
		defer spec.release()
		start := time.Now()
		val, cached, peak, err := s.execute(r.Context(), spec)
		if err != nil {
			if r.Context().Err() != nil {
				return // client is gone; nothing to write
			}
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, envelope{
			Cached:        cached,
			ElapsedMs:     float64(time.Since(start).Microseconds()) / 1e3,
			PoolPeakBytes: peak,
			Result:        val,
		})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := s.buildSpec(r.PathValue("kind"), w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	j, err := s.submitJob(spec)
	if err != nil {
		spec.release() // the spec will never run; drop its resources
	}
	if errors.Is(err, errQueueFull) {
		s.writeError(w, apiErrorf(http.StatusTooManyRequests,
			"job queue full (%d waiting); retry later", s.cfg.MaxQueue))
		return
	}
	var mbe *memBudgetError
	if errors.As(err, &mbe) {
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":              mbe.Error(),
			"predictedPeakBytes": mbe.predicted,
			"memReservedBytes":   mbe.reserved,
			"memBudgetBytes":     mbe.budget,
		})
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.jobMu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.jobMu.Unlock()
	infos := make([]JobInfo, len(jobs))
	for i, j := range jobs {
		infos[i] = j.snapshot()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": infos})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.writeError(w, apiErrorf(http.StatusNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.writeError(w, apiErrorf(http.StatusNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	info, result := j.info, j.result
	j.mu.Unlock()
	switch info.State {
	case JobDone:
		writeJSON(w, http.StatusOK, envelope{
			Cached:        info.Cached,
			ElapsedMs:     info.ElapsedMs,
			PoolPeakBytes: info.PoolPeakBytes,
			Result:        result,
		})
	case JobQueued, JobRunning:
		writeJSON(w, http.StatusAccepted, info) // not ready; poll again
	case JobCancelled:
		writeJSON(w, http.StatusConflict, info)
	default: // JobFailed
		s.writeError(w, apiErrorf(http.StatusInternalServerError, "job failed: %s", info.Error))
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.writeError(w, apiErrorf(http.StatusNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	if j.info.State == JobQueued {
		// Never reached an executor; finalize here. runJob skips
		// anything no longer queued. The job still occupies its queue
		// slot until an executor drains it (near-instantly, since the
		// early return does no work), so under heavy backlog admission
		// capacity briefly counts cancelled-but-undrained jobs — a
		// deliberate trade-off to keep admission a single channel send.
		j.info.State = JobCancelled
		j.info.Error = "cancelled before start"
		j.info.FinishedAt = time.Now()
		s.ctrCancelled.Add(1)
	}
	j.mu.Unlock()
	j.cancel() // a running job unwinds cooperatively via its context
	writeJSON(w, http.StatusAccepted, j.snapshot())
}
