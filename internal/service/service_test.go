package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lossycorr/internal/field"
	"lossycorr/internal/gaussian"
)

// testServer spins up a Server behind a real httptest listener so the
// suite exercises the full HTTP path (routing, body limits, request
// contexts), not just the handlers.
func testServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// gaussBody serializes a synthetic Gaussian field in the legacy binary
// layout — realistic correlation structure so every statistic fits.
func gaussBody(t testing.TB, edge int, rang float64, seed uint64) []byte {
	t.Helper()
	g, err := gaussian.Generate(gaussian.Params{Rows: edge, Cols: edge, Range: rang, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := field.FromGrid(g).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postBin(t testing.TB, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getJSON(t testing.TB, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && (resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted) {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

func decodeEnvelope(t testing.TB, data []byte, result any) envelope {
	t.Helper()
	var env struct {
		Cached        bool            `json:"cached"`
		ElapsedMs     float64         `json:"elapsedMs"`
		PoolPeakBytes int64           `json:"poolPeakBytes"`
		Result        json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding envelope %q: %v", data, err)
	}
	if result != nil {
		if err := json.Unmarshal(env.Result, result); err != nil {
			t.Fatalf("decoding result %q: %v", env.Result, err)
		}
	}
	return envelope{Cached: env.Cached, ElapsedMs: env.ElapsedMs, PoolPeakBytes: env.PoolPeakBytes}
}

func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

func waitJobTerminal(t testing.TB, base, id string) JobInfo {
	t.Helper()
	var info JobInfo
	waitFor(t, 30*time.Second, "job "+id+" to finish", func() bool {
		if code := getJSON(t, base+"/v1/jobs/"+id, &info); code != http.StatusOK {
			t.Fatalf("job status: %d", code)
		}
		return info.State == JobDone || info.State == JobFailed || info.State == JobCancelled
	})
	return info
}

func TestHealthStatsDatasets(t *testing.T) {
	_, hs := testServer(t, Config{})
	var health map[string]string
	if code := getJSON(t, hs.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}
	var st StatsSnapshot
	if code := getJSON(t, hs.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var ds struct {
		Datasets []any `json:"datasets"`
	}
	if code := getJSON(t, hs.URL+"/v1/datasets", &ds); code != http.StatusOK || len(ds.Datasets) != 0 {
		t.Fatalf("datasets: %d %v", code, ds)
	}
}

// TestAnalyzeSyncCacheHit is the cache-correctness probe: a
// byte-identical resubmission must be served from the content cache —
// the pipeline-run counter proves the pipeline ran exactly once — and
// changing any option must miss.
func TestAnalyzeSyncCacheHit(t *testing.T) {
	s, hs := testServer(t, Config{})
	body := gaussBody(t, 64, 8, 1)

	var res analyzeResult
	code, data := postBin(t, hs.URL+"/v1/analyze", body)
	if code != http.StatusOK {
		t.Fatalf("analyze: %d %s", code, data)
	}
	env := decodeEnvelope(t, data, &res)
	if env.Cached {
		t.Fatal("first submission reported cached")
	}
	if len(res.Shape) != 2 || res.Shape[0] != 64 || res.Shape[1] != 64 {
		t.Fatalf("shape = %v", res.Shape)
	}
	if res.Stats.GlobalRange() <= 0 || res.Stats.LocalRangeStd() < 0 {
		t.Fatalf("implausible stats: %+v", res.Stats)
	}

	var res2 analyzeResult
	code, data = postBin(t, hs.URL+"/v1/analyze", body)
	if code != http.StatusOK {
		t.Fatalf("resubmit: %d %s", code, data)
	}
	if env := decodeEnvelope(t, data, &res2); !env.Cached {
		t.Fatal("byte-identical resubmission missed the cache")
	}
	if !res2.Stats.Equal(res.Stats) {
		t.Fatalf("cached result differs: %+v vs %+v", res2, res)
	}
	if st := s.Stats(); st.AnalyzeRuns != 1 || st.CacheHits != 1 {
		t.Fatalf("want exactly 1 pipeline run and 1 hit, got runs=%d hits=%d", st.AnalyzeRuns, st.CacheHits)
	}

	// A different option canonicalizes to a different content address.
	code, data = postBin(t, hs.URL+"/v1/analyze?window=16", body)
	if code != http.StatusOK {
		t.Fatalf("analyze window=16: %d %s", code, data)
	}
	if env := decodeEnvelope(t, data, nil); env.Cached {
		t.Fatal("different options must not hit the cache")
	}
	if st := s.Stats(); st.AnalyzeRuns != 2 {
		t.Fatalf("want 2 pipeline runs after option change, got %d", st.AnalyzeRuns)
	}

	// Spelling the same option differently still hits: ?window=16 vs
	// explicit default-equal params share one canonical form.
	code, data = postBin(t, hs.URL+"/v1/analyze?window=16&vfft=0", body)
	if code != http.StatusOK {
		t.Fatalf("analyze respelled: %d %s", code, data)
	}
	if env := decodeEnvelope(t, data, nil); !env.Cached {
		t.Fatal("equivalent option spelling missed the cache")
	}
}

func TestJobSubmitPollResult(t *testing.T) {
	s, hs := testServer(t, Config{})
	body := gaussBody(t, 64, 8, 2)

	code, data := postBin(t, hs.URL+"/v1/jobs/analyze", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var info JobInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Kind != "analyze" || info.SubmittedAt.IsZero() {
		t.Fatalf("bad submit response: %+v", info)
	}

	final := waitJobTerminal(t, hs.URL, info.ID)
	if final.State != JobDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if final.FinishedAt.IsZero() || final.StartedAt.IsZero() {
		t.Fatalf("missing timestamps: %+v", final)
	}

	var res analyzeResult
	resp, err := http.Get(hs.URL + "/v1/jobs/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rdata, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, rdata)
	}
	decodeEnvelope(t, rdata, &res)
	if res.Stats.GlobalRange() <= 0 {
		t.Fatalf("implausible job result: %+v", res)
	}

	// The async result and a sync run of the same content share one
	// cache entry — the job already computed it.
	code, data = postBin(t, hs.URL+"/v1/analyze", body)
	if code != http.StatusOK {
		t.Fatalf("sync after job: %d %s", code, data)
	}
	if env := decodeEnvelope(t, data, nil); !env.Cached {
		t.Fatal("sync request after identical job missed the cache")
	}
	if st := s.Stats(); st.AnalyzeRuns != 1 || st.JobsCompleted != 1 {
		t.Fatalf("runs=%d completed=%d", st.AnalyzeRuns, st.JobsCompleted)
	}

	var list struct {
		Jobs []JobInfo `json:"jobs"`
	}
	if code := getJSON(t, hs.URL+"/v1/jobs", &list); code != http.StatusOK || len(list.Jobs) != 1 {
		t.Fatalf("job list: %d %+v", code, list)
	}
}

func legacyHeader(rows, cols uint32) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b[0:], rows)
	binary.LittleEndian.PutUint32(b[4:], cols)
	return b
}

func TestRejectsMalformedRequests(t *testing.T) {
	_, hs := testServer(t, Config{})
	valid := gaussBody(t, 16, 4, 3)

	cases := []struct {
		name string
		url  string
		body []byte
		want int
	}{
		{"garbage body", "/v1/analyze", []byte("not a field at all"), http.StatusBadRequest},
		{"empty body", "/v1/analyze", nil, http.StatusBadRequest},
		{"zero extent header", "/v1/analyze", legacyHeader(0, 16), http.StatusBadRequest},
		{"huge dims header", "/v1/analyze", legacyHeader(0xffffffff, 0xffffffff), http.StatusBadRequest},
		{"truncated payload", "/v1/analyze", legacyHeader(16, 16), http.StatusBadRequest},
		{"tagged rank bomb", "/v1/analyze", append([]byte("LCF1"), legacyHeader(0xffffffff, 0)...), http.StatusBadRequest},
		{"bad window", "/v1/analyze?window=banana", valid, http.StatusBadRequest},
		{"window too small", "/v1/analyze?window=1", valid, http.StatusBadRequest},
		{"negative maxlag", "/v1/analyze?maxlag=-1", valid, http.StatusBadRequest},
		{"maxlag lattice bomb", "/v1/analyze?maxlag=100000", valid, http.StatusBadRequest},
		{"maxlag fft padding bomb", "/v1/analyze?vfft=true&maxlag=100000", valid, http.StatusBadRequest},
		{"maxlag bomb via measure", "/v1/measure?maxlag=100000", valid, http.StatusBadRequest},
		{"maxlag bomb via async job", "/v1/jobs/analyze?maxlag=100000", valid, http.StatusBadRequest},
		{"bad bool", "/v1/analyze?vfft=maybe", valid, http.StatusBadRequest},
		{"bad error bound", "/v1/measure?eb=-3", valid, http.StatusBadRequest},
		{"unknown codec", "/v1/measure?codec=nope", valid, http.StatusBadRequest},
		{"unknown kind", "/v1/jobs/transmogrify", valid, http.StatusNotFound},
		{"dataset unconfigured", "/v1/analyze?dataset=x", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		code, data := postBin(t, hs.URL+tc.url, tc.body)
		if code != tc.want {
			t.Errorf("%s: got %d (%s), want %d", tc.name, code, data, tc.want)
		}
		var e map[string]string
		if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error payload %q not JSON", tc.name, data)
		}
	}

	for _, url := range []string{"/v1/jobs/deadbeef", "/v1/jobs/deadbeef/result"} {
		if code := getJSON(t, hs.URL+url, nil); code != http.StatusNotFound {
			t.Errorf("GET %s: got %d, want 404", url, code)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/deadbeef", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job: got %d, want 404", resp.StatusCode)
	}
}

func TestBodyCapReturns413(t *testing.T) {
	_, hs := testServer(t, Config{MaxBodyBytes: 1024})
	code, data := postBin(t, hs.URL+"/v1/analyze", gaussBody(t, 64, 8, 4))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: got %d (%s), want 413", code, data)
	}
	// Under the byte cap but over the derived element budget: a legacy
	// header promising more elements than MaxBodyBytes/8 is rejected at
	// header-validation time, before any allocation.
	code, data = postBin(t, hs.URL+"/v1/analyze", legacyHeader(16, 16))
	if code != http.StatusBadRequest {
		t.Fatalf("element budget: got %d (%s), want 400", code, data)
	}
}

// TestAdmissionAndCancelRunning drives the bounded-admission and
// cancellation lifecycle end to end: a long job occupies the single
// executor, the one queue slot fills, the next submission is rejected
// with 429, and DELETEing the running job unwinds it cooperatively so
// the queued job gets the executor.
func TestAdmissionAndCancelRunning(t *testing.T) {
	s, hs := testServer(t, Config{Executors: 1, MaxQueue: 1})

	// Big exact-scan analyze: many seconds of work if never cancelled.
	blocker := gaussBody(t, 512, 32, 7)
	code, data := postBin(t, hs.URL+"/v1/jobs/analyze", blocker)
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit: %d %s", code, data)
	}
	var blockerInfo JobInfo
	if err := json.Unmarshal(data, &blockerInfo); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "blocker to start running", func() bool {
		var info JobInfo
		getJSON(t, hs.URL+"/v1/jobs/"+blockerInfo.ID, &info)
		return info.State == JobRunning
	})

	filler := gaussBody(t, 16, 4, 8)
	code, data = postBin(t, hs.URL+"/v1/jobs/analyze", filler)
	if code != http.StatusAccepted {
		t.Fatalf("filler submit: %d %s", code, data)
	}
	var fillerInfo JobInfo
	if err := json.Unmarshal(data, &fillerInfo); err != nil {
		t.Fatal(err)
	}

	rejected := gaussBody(t, 16, 4, 9)
	code, data = postBin(t, hs.URL+"/v1/jobs/analyze", rejected)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-admission submit: got %d (%s), want 429", code, data)
	}

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+blockerInfo.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	cancelAt := time.Now()
	final := waitJobTerminal(t, hs.URL, blockerInfo.ID)
	if final.State != JobCancelled {
		t.Fatalf("blocker ended %s, want cancelled", final.State)
	}
	if d := time.Since(cancelAt); d > 10*time.Second {
		t.Fatalf("cancellation took %v", d)
	}

	if final := waitJobTerminal(t, hs.URL, fillerInfo.ID); final.State != JobDone {
		t.Fatalf("filler ended %s: %s", final.State, final.Error)
	}
	st := s.Stats()
	if st.JobsRejected != 1 || st.JobsCancelled != 1 || st.JobsCompleted != 1 {
		t.Fatalf("rejected=%d cancelled=%d completed=%d", st.JobsRejected, st.JobsCancelled, st.JobsCompleted)
	}
}

func TestMeasureSyncWithCodecFilter(t *testing.T) {
	s, hs := testServer(t, Config{})
	body := gaussBody(t, 32, 6, 5)

	var res measureResult
	code, data := postBin(t, hs.URL+"/v1/measure?skiplocal=true&eb=1e-3,1e-2&codec=zfp-like", body)
	if code != http.StatusOK {
		t.Fatalf("measure: %d %s", code, data)
	}
	decodeEnvelope(t, data, &res)
	if len(res.Results) != 2 {
		t.Fatalf("want 2 results (1 codec x 2 bounds), got %d", len(res.Results))
	}
	for _, r := range res.Results {
		if r.Compressor != "zfp-like" || !r.BoundOK || r.Ratio <= 0 {
			t.Fatalf("bad result: %+v", r)
		}
	}

	var full measureResult
	code, data = postBin(t, hs.URL+"/v1/measure?skiplocal=true&eb=1e-3", body)
	if code != http.StatusOK {
		t.Fatalf("measure all codecs: %d %s", code, data)
	}
	decodeEnvelope(t, data, &full)
	if len(full.Results) != 3 {
		t.Fatalf("want 3 results (all 2D codecs x 1 bound), got %d", len(full.Results))
	}
	if st := s.Stats(); st.MeasureRuns != 2 {
		t.Fatalf("measure runs = %d", st.MeasureRuns)
	}
}

func TestPredictSyncTrainsOnce(t *testing.T) {
	s, hs := testServer(t, Config{TrainEdge2D: 64, TrainFields: 6})

	var res predictResult
	code, data := postBin(t, hs.URL+"/v1/predict?eb=1e-3", gaussBody(t, 64, 8, 11))
	if code != http.StatusOK {
		t.Fatalf("predict: %d %s", code, data)
	}
	decodeEnvelope(t, data, &res)
	if !res.Selected || res.Compressor == "" || res.PredictedRatio <= 0 {
		t.Fatalf("bad selection: %+v", res)
	}

	// A different field at the same bound reuses the trained model.
	code, data = postBin(t, hs.URL+"/v1/predict?eb=1e-3", gaussBody(t, 64, 16, 12))
	if code != http.StatusOK {
		t.Fatalf("second predict: %d %s", code, data)
	}
	if st := s.Stats(); st.TrainRuns != 1 {
		t.Fatalf("model trained %d times, want 1", st.TrainRuns)
	}

	// Scoring a named codec instead of selecting.
	code, data = postBin(t, hs.URL+"/v1/predict?eb=1e-3&codec=sz-like", gaussBody(t, 64, 8, 11))
	if code != http.StatusOK {
		t.Fatalf("predict codec: %d %s", code, data)
	}
	decodeEnvelope(t, data, &res)
	if res.Selected || res.Compressor != "sz-like" {
		t.Fatalf("bad scored prediction: %+v", res)
	}
}

// TestDatasetReferenceSharesCache proves content addressing: the same
// bytes reached by upload and by server-side dataset reference land on
// one cache entry.
func TestDatasetReferenceSharesCache(t *testing.T) {
	dir := t.TempDir()
	body := gaussBody(t, 64, 8, 13)
	if err := os.WriteFile(filepath.Join(dir, "f.bin"), body, 0o644); err != nil {
		t.Fatal(err)
	}
	s, hs := testServer(t, Config{DataDir: dir})

	var ds struct {
		Datasets []struct {
			Name  string `json:"name"`
			Bytes int64  `json:"bytes"`
		} `json:"datasets"`
	}
	if code := getJSON(t, hs.URL+"/v1/datasets", &ds); code != http.StatusOK {
		t.Fatalf("datasets: %d", code)
	}
	if len(ds.Datasets) != 1 || ds.Datasets[0].Name != "f.bin" || ds.Datasets[0].Bytes != int64(len(body)) {
		t.Fatalf("dataset listing: %+v", ds)
	}

	code, data := postBin(t, hs.URL+"/v1/analyze", body)
	if code != http.StatusOK {
		t.Fatalf("upload analyze: %d %s", code, data)
	}
	code, data = postBin(t, hs.URL+"/v1/analyze?dataset=f.bin", nil)
	if code != http.StatusOK {
		t.Fatalf("dataset analyze: %d %s", code, data)
	}
	if env := decodeEnvelope(t, data, nil); !env.Cached {
		t.Fatal("dataset reference with identical content missed the cache")
	}
	if st := s.Stats(); st.AnalyzeRuns != 1 {
		t.Fatalf("pipeline ran %d times, want 1", st.AnalyzeRuns)
	}

	if code, _ := postBin(t, hs.URL+"/v1/analyze?dataset=nope.bin", nil); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: got %d, want 404", code)
	}
	if code, _ := postBin(t, hs.URL+fmt.Sprintf("/v1/analyze?dataset=%s", "..%2Ff.bin"), nil); code != http.StatusBadRequest &&
		code != http.StatusNotFound {
		t.Fatalf("path-escaping dataset name: got %d, want 4xx", code)
	}
}

func TestConfigFromEnv(t *testing.T) {
	env := map[string]string{
		"CORRCOMPD_ADDR":           "127.0.0.1:9999",
		"CORRCOMPD_MAX_BODY_BYTES": "4096",
		"CORRCOMPD_MAX_QUEUE":      "3",
		"CORRCOMPD_EXECUTORS":      "1",
		"CORRCOMPD_STATS_PERIOD":   "30s",
		"CORRCOMPD_WORKERS":        "2",
	}
	cfg, err := FromEnv(func(k string) string { return env[k] })
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.withDefaults()
	if cfg.Addr != "127.0.0.1:9999" || cfg.MaxBodyBytes != 4096 || cfg.MaxQueue != 3 ||
		cfg.Executors != 1 || cfg.StatsPeriod != 30*time.Second || cfg.Workers != 2 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.CacheEntries != 128 || cfg.TrainEdge2D != 128 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}

	if _, err := FromEnv(func(k string) string {
		if k == "CORRCOMPD_EXECUTORS" {
			return "many"
		}
		return ""
	}); err == nil {
		t.Fatal("unparsable env value must error, not silently default")
	}
}

// TestMaxLagBoundedByFieldShape pins the admission-side cost cap: the
// lag cutoff is rejected above half the field's smallest extent — the
// same ceiling the engine substitutes for maxlag=0 — so a tiny upload
// cannot demand an enormous offset lattice or FFT padding, while a
// request at the cap still runs.
func TestMaxLagBoundedByFieldShape(t *testing.T) {
	_, hs := testServer(t, Config{})
	body := gaussBody(t, 16, 4, 21) // 16x16: cap = 8

	code, data := postBin(t, hs.URL+"/v1/analyze?maxlag=8", body)
	if code != http.StatusOK {
		t.Fatalf("maxlag at cap: got %d (%s), want 200", code, data)
	}
	code, data = postBin(t, hs.URL+"/v1/analyze?maxlag=9", body)
	if code != http.StatusBadRequest {
		t.Fatalf("maxlag over cap: got %d (%s), want 400", code, data)
	}
}

// TestFinishedJobReleasesSpec pins the retention fix: once a job
// reaches a terminal state its spec closure — which captures the fully
// parsed field — must be dropped, or RetainedJobs finished jobs would
// pin up to RetainedJobs×MaxBodyBytes of dead field data.
func TestFinishedJobReleasesSpec(t *testing.T) {
	s, hs := testServer(t, Config{})
	code, data := postBin(t, hs.URL+"/v1/jobs/analyze", gaussBody(t, 32, 4, 22))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var info JobInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if got := waitJobTerminal(t, hs.URL, info.ID); got.State != JobDone {
		t.Fatalf("job ended %s: %s", got.State, got.Error)
	}
	j := s.lookupJob(info.ID)
	if j == nil {
		t.Fatal("finished job missing from table")
	}
	j.mu.Lock()
	run, kind := j.spec.run, j.spec.kind
	j.mu.Unlock()
	if run != nil {
		t.Fatal("finished job still holds its spec closure (pins the parsed field)")
	}
	if kind != "analyze" {
		t.Fatalf("spec kind lost on release: %q", kind)
	}
}

// TestWriteJSONMarshalFailure pins the buffer-first contract: a value
// that cannot serialize yields a 500 with a JSON error body, never a
// success header followed by a truncated body.
func TestWriteJSONMarshalFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("got %d, want 500", rec.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
		t.Fatalf("error payload %q not JSON", rec.Body.String())
	}
}

// TestQueueFullRollbackKeepsConcurrentJobs hammers submission against
// a full queue with the executor wedged: every accepted job must stay
// visible in the job table and listing, and every rejected submission
// must leave no dangling ID behind — the regression that used to
// truncate a concurrent submitter's entry off s.order.
func TestQueueFullRollbackKeepsConcurrentJobs(t *testing.T) {
	s, hs := testServer(t, Config{Executors: 1, MaxQueue: 2})
	body := gaussBody(t, 16, 4, 23)

	// Wedge the executor: CORRCOMPD jobs run specs, so occupy it with a
	// job whose context we never cancel until the end.
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	wedge, err := s.submitJob(runSpec{kind: "analyze", key: "wedge", run: func(ctx context.Context) (any, error) {
		<-block
		return analyzeResult{}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "wedge job to start", func() bool {
		return wedge.snapshot().State == JobRunning
	})

	var wg sync.WaitGroup
	var accepted, rejected atomic.Int64
	acceptedIDs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				code, data := postBin(t, hs.URL+fmt.Sprintf("/v1/jobs/analyze?window=%d", 4+2*(g*8+i)), body)
				switch code {
				case http.StatusAccepted:
					var info JobInfo
					if err := json.Unmarshal(data, &info); err == nil {
						acceptedIDs <- info.ID
					}
					accepted.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					t.Errorf("submit: unexpected %d (%s)", code, data)
				}
			}
		}(g)
	}
	wg.Wait()
	close(acceptedIDs)
	if rejected.Load() == 0 {
		t.Fatal("queue never filled; the rollback path was not exercised")
	}

	// Every accepted job must be addressable and listed — a lost one is
	// the leaked-entry regression.
	for id := range acceptedIDs {
		if s.lookupJob(id) == nil {
			t.Fatalf("accepted job %s vanished from the table", id)
		}
	}
	s.jobMu.Lock()
	ordered := len(s.order)
	mapped := len(s.jobs)
	for _, id := range s.order {
		if s.jobs[id] == nil {
			t.Errorf("dangling ID %s in order with no job", id)
		}
	}
	s.jobMu.Unlock()
	if ordered != mapped {
		t.Fatalf("order (%d) and job table (%d) disagree: leaked or dangling entries", ordered, mapped)
	}

	release()
	waitFor(t, 30*time.Second, "backlog to drain", func() bool {
		st := s.Stats()
		return st.QueueDepth == 0 && st.InFlight == 0 &&
			st.JobsCompleted+st.JobsFailed+st.JobsCancelled == st.JobsSubmitted
	})
}
