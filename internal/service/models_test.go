package service

import (
	"bytes"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"lossycorr/internal/compress"
	"lossycorr/internal/core"
)

// writeTestModel trains a tiny synthetic predictor ("fast" and "tight"
// codecs at eb 1e-3, regressing on the global range) and persists it
// into dir as a lossycorr-model/v1 file the server can boot from.
func writeTestModel(t testing.TB, dir, name string, rank int) {
	t.Helper()
	var ms []core.Measurement
	for _, x := range []float64{2, 4, 8, 16, 32, 64} {
		ms = append(ms, core.Measurement{
			Stats: core.Statistics{core.StatGlobalRange: x},
			Results: []compress.Result{
				{Compressor: "fast", ErrorBound: 1e-3, Ratio: 1 + 2*math.Log(x)},
				{Compressor: "tight", ErrorBound: 1e-3, Ratio: 3 + math.Log(x)},
			},
		})
	}
	p, err := core.TrainPredictor(ms, core.XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	p.SetProvenance(core.ModelProvenance{Source: "train", Rank: rank, Measurements: len(ms)})
	var buf bytes.Buffer
	if err := core.SavePredictor(&buf, p); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

type modelListing struct {
	Models []ModelInfo `json:"models"`
}

func TestModelDirBootListing(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, "m2.json", 2)
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignored.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, hs := testServer(t, Config{ModelDir: dir})

	var ml modelListing
	if code := getJSON(t, hs.URL+"/v1/models", &ml); code != http.StatusOK {
		t.Fatalf("models: %d", code)
	}
	if len(ml.Models) != 2 {
		t.Fatalf("listing %+v, want 2 entries (good + broken, .txt ignored)", ml.Models)
	}
	// Files load in sorted name order: broken.json before m2.json.
	bad, good := ml.Models[0], ml.Models[1]
	if bad.File != "broken.json" || bad.Error == "" || bad.Source != "file" {
		t.Fatalf("broken entry %+v", bad)
	}
	if good.File != "m2.json" || good.Error != "" || good.Key == "" {
		t.Fatalf("good entry %+v", good)
	}
	if good.Rank != 2 || good.Selector != "global-range" {
		t.Fatalf("good entry provenance %+v", good)
	}
	if len(good.Models) != 2 || len(good.ErrorBounds) != 1 || good.ErrorBounds[0] != 1e-3 {
		t.Fatalf("good entry coverage %+v", good)
	}
}

// TestPredictServesBootModelWithoutTraining is the PR's acceptance
// probe: with a model directory mounted, /v1/predict answers — with
// interval bounds — while the train-run counter stays at zero.
func TestPredictServesBootModelWithoutTraining(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, "m2.json", 2)
	s, hs := testServer(t, Config{ModelDir: dir})

	var ml modelListing
	if code := getJSON(t, hs.URL+"/v1/models", &ml); code != http.StatusOK {
		t.Fatalf("models: %d", code)
	}
	bootKey := ml.Models[0].Key

	// Stats-only path: no field upload, just the statistic.
	var res predictResult
	code, data := postBin(t, hs.URL+"/v1/predict?stat=12&eb=0.001&interval=1", nil)
	if code != http.StatusOK {
		t.Fatalf("stat predict: %d %s", code, data)
	}
	decodeEnvelope(t, data, &res)
	if !res.Selected || res.Compressor != "fast" {
		t.Fatalf("selection %+v (fast wins above the e² crossover)", res)
	}
	if res.Stats.GlobalRange() != 12 {
		t.Fatalf("stats %+v, want the supplied statistic echoed", res.Stats)
	}
	if res.Lo == nil || res.Hi == nil {
		t.Fatalf("interval missing: %+v", res)
	}
	if !(*res.Lo <= res.PredictedRatio && res.PredictedRatio <= *res.Hi) {
		t.Fatalf("interval [%v, %v] does not bracket %v", *res.Lo, *res.Hi, res.PredictedRatio)
	}
	if res.Level != core.DefaultIntervalLevel {
		t.Fatalf("level %v", res.Level)
	}
	if res.ModelKey != bootKey {
		t.Fatalf("modelKey %q, want boot model %q", res.ModelKey, bootKey)
	}
	if len(res.Shape) != 0 {
		t.Fatalf("stats-only predict reported a shape: %+v", res)
	}

	// Scoring a named codec, no interval: bounds stay absent.
	code, data = postBin(t, hs.URL+"/v1/predict?stat=12&eb=0.001&codec=tight", nil)
	if code != http.StatusOK {
		t.Fatalf("codec predict: %d %s", code, data)
	}
	var scored predictResult
	decodeEnvelope(t, data, &scored)
	if scored.Selected || scored.Compressor != "tight" || scored.Lo != nil || scored.Hi != nil {
		t.Fatalf("scored %+v", scored)
	}
	want := 3 + math.Log(12)
	if math.Abs(scored.PredictedRatio-want) > 1e-6 {
		t.Fatalf("tight at x=12: %v want ≈%v", scored.PredictedRatio, want)
	}

	// Field-upload path against the same boot model: analysis runs, but
	// training still does not.
	code, data = postBin(t, hs.URL+"/v1/predict?eb=0.001&codec=fast&interval=1", gaussBody(t, 64, 8, 11))
	if code != http.StatusOK {
		t.Fatalf("field predict: %d %s", code, data)
	}
	var fieldRes predictResult
	decodeEnvelope(t, data, &fieldRes)
	if fieldRes.ModelKey != bootKey || fieldRes.Lo == nil || fieldRes.Hi == nil {
		t.Fatalf("field predict %+v", fieldRes)
	}
	if len(fieldRes.Shape) != 2 {
		t.Fatalf("field predict shape %v", fieldRes.Shape)
	}

	if st := s.Stats(); st.TrainRuns != 0 {
		t.Fatalf("trainRuns = %d, want 0 with a boot-loaded model", st.TrainRuns)
	}

	// The second identical stat request is a cache hit.
	code, data = postBin(t, hs.URL+"/v1/predict?stat=12&eb=0.001&interval=1", nil)
	if code != http.StatusOK {
		t.Fatalf("repeat predict: %d %s", code, data)
	}
	if env := decodeEnvelope(t, data, nil); !env.Cached {
		t.Fatal("identical stats-only predict missed the cache")
	}
}

func TestPredictStatValidation(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, "m2.json", 2)
	_, hs := testServer(t, Config{ModelDir: dir})
	for _, q := range []string{
		"stat=0&eb=0.001",             // log model undefined
		"stat=-3&eb=0.001",            // log model undefined
		"stat=bogus&eb=0.001",         // unparsable
		"stat=12&eb=0",                // bad bound
		"stat=12&eb=0.001&ndim=5",     // unsupported rank
		"stat=12&eb=0.001&codec=nope", // unknown codec
	} {
		if code, data := postBin(t, hs.URL+"/v1/predict?"+q, nil); code != http.StatusBadRequest {
			t.Errorf("?%s: got %d (%s), want 400", q, code, data)
		}
	}
	// A bound no model covers falls back to lazy training (the query is
	// valid; the boot registry just cannot serve it), so it must not 400
	// at submit time.
	if code, _ := postBin(t, hs.URL+"/v1/predict?stat=12&eb=0.5&ndim=3", nil); code == http.StatusBadRequest {
		t.Error("uncovered bound must not be a validation error")
	}
}

// TestPredictLazyTrainRegistersModel covers the no-model-dir path: the
// first prediction trains (once), the trained model appears in the
// /v1/models listing as source "train", and the interval plumbing works
// on lazily trained models too.
func TestPredictLazyTrainRegistersModel(t *testing.T) {
	s, hs := testServer(t, Config{TrainEdge2D: 64, TrainFields: 6})

	var res predictResult
	code, data := postBin(t, hs.URL+"/v1/predict?stat=8&eb=1e-3&interval=1", nil)
	if code != http.StatusOK {
		t.Fatalf("predict: %d %s", code, data)
	}
	decodeEnvelope(t, data, &res)
	if !res.Selected || res.PredictedRatio <= 0 {
		t.Fatalf("selection %+v", res)
	}
	if res.Lo == nil || res.Hi == nil || !(*res.Lo <= res.PredictedRatio && res.PredictedRatio <= *res.Hi) {
		t.Fatalf("interval on lazy model %+v", res)
	}
	if res.ModelKey == "" {
		t.Fatal("lazy prediction must report its model key")
	}
	if st := s.Stats(); st.TrainRuns != 1 {
		t.Fatalf("trainRuns = %d, want 1", st.TrainRuns)
	}

	var ml modelListing
	if code := getJSON(t, hs.URL+"/v1/models", &ml); code != http.StatusOK {
		t.Fatalf("models: %d", code)
	}
	if len(ml.Models) != 1 {
		t.Fatalf("listing %+v, want the lazily trained model", ml.Models)
	}
	e := ml.Models[0]
	if e.Source != "train" || e.Key != res.ModelKey || e.Rank != 2 || e.Error != "" {
		t.Fatalf("trained entry %+v", e)
	}

	// A second bound trains again and appends a second entry.
	if code, data := postBin(t, hs.URL+"/v1/predict?stat=8&eb=1e-2", nil); code != http.StatusOK {
		t.Fatalf("second bound: %d %s", code, data)
	}
	if code := getJSON(t, hs.URL+"/v1/models", &ml); code != http.StatusOK {
		t.Fatalf("models: %d", code)
	}
	if len(ml.Models) != 2 {
		t.Fatalf("listing %+v, want two trained models", ml.Models)
	}
}

// TestModelsEmptyListing: no model dir, nothing trained yet.
func TestModelsEmptyListing(t *testing.T) {
	_, hs := testServer(t, Config{})
	var ml modelListing
	if code := getJSON(t, hs.URL+"/v1/models", &ml); code != http.StatusOK {
		t.Fatalf("models: %d", code)
	}
	if len(ml.Models) != 0 {
		t.Fatalf("listing %+v, want empty", ml.Models)
	}
}
