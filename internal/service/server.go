package service

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lossycorr/internal/fft"
	"lossycorr/internal/parallel"
	"lossycorr/internal/stat"
)

// Server is the corrcompd engine: the executor fan-out, the job table,
// the content-addressed result cache, and the HTTP handlers. Create
// with New, serve its Handler (or call Run), and Close it to stop the
// executors and cancel every running job.
type Server struct {
	cfg Config

	// Logf receives the periodic stats line and lifecycle messages from
	// Run; nil means silent. Set it before the first request.
	Logf func(format string, args ...any)

	cache   *resultCache
	flights flightGroup
	queue   chan *job

	// models indexes the predictors served by /v1/predict without
	// training: boot-loaded from Config.ModelDir, listed by
	// GET /v1/models. modelsLoaded/modelsFailed record the boot load
	// outcome for Run's startup log line.
	models       modelRegistry
	modelsLoaded int
	modelsFailed int

	rootCtx context.Context
	stop    context.CancelFunc
	execWG  sync.WaitGroup

	jobMu sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for finished-job eviction
	// memReserved sums the predicted transform peaks of admitted
	// (queued or running) jobs when Config.MemBudget is set; guarded by
	// jobMu so reserve + enqueue is one atomic admission decision.
	memReserved int64

	inFlight atomic.Int64

	ctrSubmitted, ctrRejected             atomic.Int64
	ctrCompleted, ctrFailed, ctrCancelled atomic.Int64
	ctrCacheHits, ctrFlightsJoined        atomic.Int64
	ctrAnalyzeRuns, ctrMeasureRuns        atomic.Int64
	ctrPredictRuns, ctrTrainRuns          atomic.Int64
}

// New builds a server from cfg (zero fields take defaults) and starts
// its executors.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newResultCache(cfg.CacheEntries),
		queue: make(chan *job, cfg.MaxQueue),
		jobs:  make(map[string]*job),
	}
	if cfg.ModelDir != "" {
		s.modelsLoaded, s.modelsFailed = s.models.loadModelDir(cfg.ModelDir)
	}
	s.rootCtx, s.stop = context.WithCancel(context.Background())
	for i := 0; i < cfg.Executors; i++ {
		s.execWG.Add(1)
		go s.executor()
	}
	return s
}

// Close stops the executors and cancels every running job's context;
// it returns once the executors have drained.
func (s *Server) Close() {
	s.stop()
	s.execWG.Wait()
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) countRun(kind string) {
	switch kind {
	case "analyze":
		s.ctrAnalyzeRuns.Add(1)
	case "measure":
		s.ctrMeasureRuns.Add(1)
	case "predict":
		s.ctrPredictRuns.Add(1)
	case "train":
		s.ctrTrainRuns.Add(1)
	}
}

// StatsSnapshot is the observability surface: admission and lifecycle
// counters, cache effectiveness, how often each pipeline actually ran
// (the probe the cache tests pin), and the process-global resource
// gauges — FFT pool peak and worker-pool token budget usage.
type StatsSnapshot struct {
	JobsSubmitted int64 `json:"jobsSubmitted"`
	JobsRejected  int64 `json:"jobsRejected"`
	JobsCompleted int64 `json:"jobsCompleted"`
	JobsFailed    int64 `json:"jobsFailed"`
	JobsCancelled int64 `json:"jobsCancelled"`
	QueueDepth    int   `json:"queueDepth"`
	InFlight      int64 `json:"inFlight"`

	CacheEntries  int   `json:"cacheEntries"`
	CacheHits     int64 `json:"cacheHits"`
	FlightsJoined int64 `json:"flightsJoined"`

	AnalyzeRuns int64 `json:"analyzeRuns"`
	MeasureRuns int64 `json:"measureRuns"`
	PredictRuns int64 `json:"predictRuns"`
	TrainRuns   int64 `json:"trainRuns"`

	PoolPeakBytes    int64 `json:"poolPeakBytes"`
	LiveExtraWorkers int64 `json:"liveExtraWorkers"`
	PeakExtraWorkers int64 `json:"peakExtraWorkers"`
	// MemReservedBytes sums the predicted transform peaks of admitted
	// async jobs (0 unless Config.MemBudget is set).
	MemReservedBytes int64 `json:"memReservedBytes"`

	// Kernels lists the registered statistic kernels — the names the
	// analyze/measure `stats` option accepts, each with its outputs and
	// capability flags — in registration order (the default run order).
	Kernels []KernelInfo `json:"kernels"`
}

// KernelInfo describes one registered statistic kernel: its selection
// name, the result keys it produces, and its capability surface.
type KernelInfo struct {
	Name      string   `json:"name"`
	Outputs   []string `json:"outputs"`
	Lanes     []string `json:"lanes"`
	Windowed  bool     `json:"windowed"`
	Streaming bool     `json:"streaming"`
	FFT       bool     `json:"fft"`
}

// kernelInfos snapshots the stat registry for GET /v1/stats.
func kernelInfos() []KernelInfo {
	ks := stat.Kernels()
	out := make([]KernelInfo, len(ks))
	for i, k := range ks {
		c := k.Caps()
		out[i] = KernelInfo{
			Name:      k.Name(),
			Outputs:   k.Outputs(),
			Lanes:     c.Lanes,
			Windowed:  c.Windowed,
			Streaming: c.Streaming,
			FFT:       c.FFT,
		}
	}
	return out
}

// Stats snapshots the counters. It is the machine-readable probe the
// test suite uses to prove cache hits (AnalyzeRuns stays put),
// singleflight dedup (FlightsJoined grows while AnalyzeRuns does not),
// and token-budget health after cancellations (LiveExtraWorkers
// returns to idle).
func (s *Server) Stats() StatsSnapshot {
	s.jobMu.Lock()
	memReserved := s.memReserved
	s.jobMu.Unlock()
	return StatsSnapshot{
		MemReservedBytes: memReserved,
		JobsSubmitted:    s.ctrSubmitted.Load(),
		JobsRejected:     s.ctrRejected.Load(),
		JobsCompleted:    s.ctrCompleted.Load(),
		JobsFailed:       s.ctrFailed.Load(),
		JobsCancelled:    s.ctrCancelled.Load(),
		QueueDepth:       len(s.queue),
		InFlight:         s.inFlight.Load(),

		CacheEntries:  s.cache.len(),
		CacheHits:     s.ctrCacheHits.Load(),
		FlightsJoined: s.ctrFlightsJoined.Load(),

		AnalyzeRuns: s.ctrAnalyzeRuns.Load(),
		MeasureRuns: s.ctrMeasureRuns.Load(),
		PredictRuns: s.ctrPredictRuns.Load(),
		TrainRuns:   s.ctrTrainRuns.Load(),

		PoolPeakBytes:    fft.PeakBytes(),
		LiveExtraWorkers: parallel.LiveExtraWorkers(),
		PeakExtraWorkers: parallel.PeakExtraWorkers(),

		Kernels: kernelInfos(),
	}
}

// Run serves HTTP on Config.Addr until ctx is cancelled or the server
// is closed, then shuts the listener down gracefully (in-flight
// responses get five seconds to finish; running jobs are cancelled by
// Close, not by Run). When Config.StatsPeriod > 0 a stats line is
// logged each period through Logf.
func (s *Server) Run(ctx context.Context) error {
	hs := &http.Server{
		Addr:              s.cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		select {
		case <-ctx.Done():
		case <-s.rootCtx.Done():
		}
		sd, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(sd)
	}()
	if s.cfg.StatsPeriod > 0 {
		go func() {
			t := time.NewTicker(s.cfg.StatsPeriod)
			defer t.Stop()
			for {
				select {
				case <-stopped:
					return
				case <-t.C:
					st := s.Stats()
					s.logf("stats: submitted=%d completed=%d failed=%d cancelled=%d rejected=%d queue=%d inflight=%d cache=%d/%d hits=%d joined=%d runs(a/m/p/t)=%d/%d/%d/%d poolPeak=%dB workers(live/peak)=%d/%d",
						st.JobsSubmitted, st.JobsCompleted, st.JobsFailed, st.JobsCancelled, st.JobsRejected,
						st.QueueDepth, st.InFlight, st.CacheEntries, s.cfg.CacheEntries, st.CacheHits, st.FlightsJoined,
						st.AnalyzeRuns, st.MeasureRuns, st.PredictRuns, st.TrainRuns,
						st.PoolPeakBytes, st.LiveExtraWorkers, st.PeakExtraWorkers)
				}
			}
		}()
	}
	if s.cfg.ModelDir != "" {
		s.logf("models: loaded %d, failed %d from %s", s.modelsLoaded, s.modelsFailed, s.cfg.ModelDir)
	}
	s.logf("corrcompd listening on %s", s.cfg.Addr)
	err := hs.ListenAndServe()
	<-stopped
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
