package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"sync"
)

// cacheKey is the content address of a pipeline result: SHA-256 over
// the request kind, the canonicalized option string, and the payload's
// own SHA-256 digest (NUL-separated so no two components can collide
// by concatenation). The digest is computed while the body spools, so
// content addressing never requires the raw bytes in memory. Identical
// field content submitted by upload or by dataset reference hashes
// identically; the worker count is excluded because every pipeline
// result is bit-identical at any worker count.
func cacheKey(kind, canon string, raw []byte) string {
	h := sha256.New()
	io.WriteString(h, kind)
	h.Write([]byte{0})
	io.WriteString(h, canon)
	h.Write([]byte{0})
	h.Write(raw)
	return hex.EncodeToString(h.Sum(nil))
}

// resultCache is a small entry-count-bounded LRU. Values are final
// pipeline results and trained predictors — a few hundred bytes each —
// so bounding entries rather than bytes is enough.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).val, true
}

func (c *resultCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup is a minimal singleflight: concurrent do calls with the
// same key run fn once — the first caller leads, the rest wait for the
// leader's result or their own context's death, whichever comes first.
// A follower never inherits the leader's cancellation directly: when
// the leader is cancelled mid-compute, runCached retries the loop so a
// still-live follower becomes the new leader instead of failing.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// errFlightAborted is what followers observe if the leader's fn
// panicked out of the flight (the panic itself propagates on the
// leader's goroutine and is handled there).
var errFlightAborted = errors.New("service: flight aborted")

func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (val any, err error, leader bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-f.done:
			return f.val, f.err, false
		case <-done:
			return nil, ctx.Err(), false
		}
	}
	f := &flight{done: make(chan struct{}), err: errFlightAborted}
	g.m[key] = f
	g.mu.Unlock()
	func() {
		defer func() {
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(f.done)
		}()
		f.val, f.err = fn()
	}()
	return f.val, f.err, true
}

// runCached serves a spec from the result cache, deduplicating
// concurrent identical requests through the flight group; the winning
// computation stores its result for every later byte-identical
// request. The cache write happens inside the flight, before the
// flight is torn down, so at every instant a byte-identical request
// either joins the live flight or hits the cache — the pipeline can
// never run twice for one content address except after eviction or a
// failure. The bool reports a cache hit (a flight join is a
// deduplication, not a hit — the pipeline still ran, just not for
// this caller).
func (s *Server) runCached(ctx context.Context, spec runSpec) (any, bool, error) {
	for {
		if v, ok := s.cache.get(spec.key); ok {
			s.ctrCacheHits.Add(1)
			return v, true, nil
		}
		v, err, leader := s.flights.do(ctx, spec.key, func() (any, error) {
			s.countRun(spec.kind)
			v, err := spec.run(ctx)
			if err == nil {
				s.cache.put(spec.key, v)
			}
			return v, err
		})
		if err == nil {
			if !leader {
				s.ctrFlightsJoined.Add(1)
			}
			return v, false, nil
		}
		if ctx != nil && ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		if !leader && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The leader died of its own cancellation but this caller
			// is still live: take over as leader on the next pass.
			continue
		}
		return nil, false, err
	}
}
