package service

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServiceAnalyzeCached gauges what the content cache buys:
// the cold first-request latency is reported as cold-ms, the steady
// cached latency both as ns/op and cached-ms, and their quotient as
// cold-over-cached-x — the service-level speedup of content
// addressing on a byte-identical resubmission.
func BenchmarkServiceAnalyzeCached(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	body := gaussBody(b, 256, 16, 1)

	do := func() int {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze?vfft=true", bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec.Code
	}

	start := time.Now()
	if code := do(); code != http.StatusOK {
		b.Fatalf("cold analyze: %d", code)
	}
	cold := time.Since(start)

	b.ResetTimer() // also clears reported metrics: report only after the loop
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("cached analyze: %d", code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cold.Microseconds())/1e3, "cold-ms")
	if b.N > 0 && b.Elapsed() > 0 {
		cached := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(cached.Microseconds())/1e3, "cached-ms")
		if cached > 0 {
			b.ReportMetric(float64(cold)/float64(cached), "cold-over-cached-x")
		}
	}
}

// BenchmarkPredictServe gauges the model-serving path: a server booted
// with a model directory answers stats-only predictions by evaluating
// the fitted log model — no field upload, no analysis, no training.
// Each iteration varies the statistic so every request misses the
// result cache and actually runs the model; ns/op is therefore the
// full serve cost (routing + model evaluation + interval + JSON),
// which must stay microsecond-scale. For contrast, the cost of the
// first prediction on a server WITHOUT a model directory — the lazy
// training the model artifact spares every fleet member — is reported
// as lazy-train-ms.
func BenchmarkPredictServe(b *testing.B) {
	dir := b.TempDir()
	writeTestModel(b, dir, "m2.json", 2)
	s := New(Config{ModelDir: dir})
	defer s.Close()
	h := s.Handler()

	do := func(url string) int {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, url, nil)
		h.ServeHTTP(rec, req)
		return rec.Code
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		url := fmt.Sprintf("/v1/predict?stat=%d.5&eb=0.001&interval=1", 2+i%1000)
		if code := do(url); code != http.StatusOK {
			b.Fatalf("predict: %d", code)
		}
	}
	b.StopTimer()
	if st := s.Stats(); st.TrainRuns != 0 {
		b.Fatalf("model serving trained %d times, want 0", st.TrainRuns)
	}

	// The lazy-train contrast: one cold prediction with no model dir.
	s2 := New(Config{TrainEdge2D: 64, TrainFields: 6})
	defer s2.Close()
	h2 := s2.Handler()
	rec := httptest.NewRecorder()
	start := time.Now()
	h2.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/predict?stat=8.5&eb=0.001", nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("lazy predict: %d", rec.Code)
	}
	b.ReportMetric(float64(time.Since(start).Microseconds())/1e3, "lazy-train-ms")
}
