package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServiceAnalyzeCached gauges what the content cache buys:
// the cold first-request latency is reported as cold-ms, the steady
// cached latency both as ns/op and cached-ms, and their quotient as
// cold-over-cached-x — the service-level speedup of content
// addressing on a byte-identical resubmission.
func BenchmarkServiceAnalyzeCached(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	body := gaussBody(b, 256, 16, 1)

	do := func() int {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze?vfft=true", bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec.Code
	}

	start := time.Now()
	if code := do(); code != http.StatusOK {
		b.Fatalf("cold analyze: %d", code)
	}
	cold := time.Since(start)

	b.ResetTimer() // also clears reported metrics: report only after the loop
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("cached analyze: %d", code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cold.Microseconds())/1e3, "cold-ms")
	if b.N > 0 && b.Elapsed() > 0 {
		cached := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(cached.Microseconds())/1e3, "cached-ms")
		if cached > 0 {
			b.ReportMetric(float64(cold)/float64(cached), "cold-over-cached-x")
		}
	}
}
