package service

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"lossycorr/internal/core"
	"lossycorr/internal/field"
	"lossycorr/internal/xrand"
)

// volumeBody returns a 3D field and its serialized bytes — big enough
// to exceed the small stream budgets these tests configure.
func volumeBody(t testing.TB, shape []int, seed uint64) (*field.Field, []byte) {
	t.Helper()
	rng := xrand.New(seed)
	f := field.New(shape...)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	var buf writerBuffer
	if err := f.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return f, buf.b
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func spoolCount(t testing.TB) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "corrcompd-spool-*"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// TestStreamingAnalyzeUpload: an upload larger than StreamBudget spools
// to disk while being hashed, analyzes out-of-core with results
// bit-identical to the in-RAM pipeline, cleans up its spool, and a
// byte-identical resubmission hits the content cache.
func TestStreamingAnalyzeUpload(t *testing.T) {
	s, hs := testServer(t, Config{StreamBudget: 128 << 10})
	f, body := volumeBody(t, []int{32, 48, 48}, 11)
	if int64(len(body)) <= s.Config().StreamBudget {
		t.Fatalf("test body %d B does not exceed the %d B stream budget", len(body), s.Config().StreamBudget)
	}
	want, err := core.AnalyzeField(f, core.AnalysisOptions{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	spoolsBefore := spoolCount(t)

	var res analyzeResult
	code, data := postBin(t, hs.URL+"/v1/analyze?window=16", body)
	if code != http.StatusOK {
		t.Fatalf("streamed analyze: %d %s", code, data)
	}
	env := decodeEnvelope(t, data, &res)
	if env.Cached {
		t.Fatal("first streamed submission reported cached")
	}
	if !res.Stats.Equal(want) {
		t.Fatalf("streamed stats %+v != in-RAM %+v", res.Stats, want)
	}
	if env.PoolPeakBytes <= 0 || env.PoolPeakBytes > s.Config().StreamBudget {
		t.Fatalf("pool peak %d outside (0, budget %d]", env.PoolPeakBytes, s.Config().StreamBudget)
	}
	if n := spoolCount(t); n != spoolsBefore {
		t.Fatalf("spool files leaked: %d before, %d after", spoolsBefore, n)
	}

	var res2 analyzeResult
	code, data = postBin(t, hs.URL+"/v1/analyze?window=16", body)
	if code != http.StatusOK {
		t.Fatalf("resubmit: %d %s", code, data)
	}
	if env := decodeEnvelope(t, data, &res2); !env.Cached {
		t.Fatal("byte-identical streamed resubmission missed the cache")
	}
	if !res2.Stats.Equal(res.Stats) {
		t.Fatalf("cached streamed result differs: %+v vs %+v", res2.Stats, res.Stats)
	}
	if n := spoolCount(t); n != spoolsBefore {
		t.Fatalf("spool files leaked after cache hit: %d before, %d after", spoolsBefore, n)
	}
}

// TestStreamingDatasetOverBodyCap: out-of-core analysis admits dataset
// references past MaxBodyBytes — the point of streaming — while in-RAM
// kinds keep the cap.
func TestStreamingDatasetOverBodyCap(t *testing.T) {
	dir := t.TempDir()
	f, body := volumeBody(t, []int{32, 48, 48}, 13)
	if err := os.WriteFile(filepath.Join(dir, "vol.bin"), body, 0o644); err != nil {
		t.Fatal(err)
	}
	s, hs := testServer(t, Config{
		DataDir:      dir,
		MaxBodyBytes: int64(len(body)) / 2,
		StreamBudget: 128 << 10,
	})
	want, err := core.AnalyzeField(f, core.AnalysisOptions{Window: 16})
	if err != nil {
		t.Fatal(err)
	}

	var res analyzeResult
	code, data := postBin(t, hs.URL+"/v1/analyze?window=16&dataset=vol.bin", nil)
	if code != http.StatusOK {
		t.Fatalf("streamed dataset analyze: %d %s", code, data)
	}
	env := decodeEnvelope(t, data, &res)
	if !res.Stats.Equal(want) {
		t.Fatalf("streamed dataset stats %+v != in-RAM %+v", res.Stats, want)
	}
	if env.PoolPeakBytes > s.Config().StreamBudget {
		t.Fatalf("pool peak %d over the %d B budget", env.PoolPeakBytes, s.Config().StreamBudget)
	}

	// measure has no streaming lane: the body cap still applies.
	code, data = postBin(t, hs.URL+"/v1/measure?dataset=vol.bin", nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap measure dataset: want 413, got %d %s", code, data)
	}
}

// TestStreamingAnalyzeJob: the async path streams too, releasing the
// spool when the job finishes.
func TestStreamingAnalyzeJob(t *testing.T) {
	_, hs := testServer(t, Config{StreamBudget: 128 << 10})
	f, body := volumeBody(t, []int{32, 48, 48}, 17)
	want, err := core.AnalyzeField(f, core.AnalysisOptions{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	spoolsBefore := spoolCount(t)

	code, data := postBin(t, hs.URL+"/v1/jobs/analyze?window=16", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit streamed job: %d %s", code, data)
	}
	var info JobInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatalf("decoding submit response %q: %v", data, err)
	}
	done := waitJobTerminal(t, hs.URL, info.ID)
	if done.State != JobDone {
		t.Fatalf("streamed job ended %s: %s", done.State, done.Error)
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body2, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job result: %d %s", resp.StatusCode, body2)
	}
	var res analyzeResult
	decodeEnvelope(t, body2, &res)
	if !res.Stats.Equal(want) {
		t.Fatalf("streamed job stats %+v != in-RAM %+v", res.Stats, want)
	}
	if n := spoolCount(t); n != spoolsBefore {
		t.Fatalf("spool files leaked: %d before, %d after", spoolsBefore, n)
	}
}
