package service

import (
	"bytes"
	"encoding/binary"
	"net/http"
	"net/http/httptest"
	"testing"

	"lossycorr/internal/field"
)

// FuzzFieldUpload pushes arbitrary bodies through the upload path —
// the binary reader's legacy-2D vs tagged-LCF1 auto-detection included
// — and requires the server to answer every one without panicking and
// without allocating past the derived element budget (the huge-header
// seeds would reserve tens of gigabytes if validation ran after
// allocation). Valid fields may still fail analysis (5xx) — that is a
// pipeline outcome, not an intake bug — but any 5xx for a body the
// reader itself rejects is a failure.
func FuzzFieldUpload(f *testing.F) {
	const maxBody = 1 << 16 // 64 KiB → 8192-element budget
	srv := New(Config{MaxBodyBytes: maxBody, Executors: 1})
	f.Cleanup(srv.Close)
	h := srv.Handler()

	u32 := func(vs ...uint32) []byte {
		b := make([]byte, 4*len(vs))
		for i, v := range vs {
			binary.LittleEndian.PutUint32(b[4*i:], v)
		}
		return b
	}
	// Valid legacy 2D field.
	valid := u32(4, 4)
	for i := 0; i < 16; i++ {
		valid = binary.LittleEndian.AppendUint64(valid, uint64(i)<<52)
	}
	f.Add(valid)
	// Valid tagged rank-3 field.
	tagged := append([]byte("LCF1"), u32(3, 2, 2, 2)...)
	for i := 0; i < 8; i++ {
		tagged = binary.LittleEndian.AppendUint64(tagged, uint64(i)<<51)
	}
	f.Add(tagged)
	// Valid float32-lane field (the 0x00010000 lane flag in the rank
	// word, 4-byte elements).
	const f32Flag = 0x00010000
	narrow := append([]byte("LCF1"), u32(2|f32Flag, 4, 4)...)
	for i := 0; i < 16; i++ {
		narrow = binary.LittleEndian.AppendUint32(narrow, uint32(i)<<23)
	}
	f.Add(narrow)
	f.Add([]byte{})
	f.Add([]byte("LCF1"))
	f.Add(u32(0, 16))                                                // zero extent
	f.Add(u32(0xffffffff, 0xffffffff))                               // 16-exabyte promise
	f.Add(append([]byte("LCF1"), u32(0xffffffff)...))                // rank bomb
	f.Add(append([]byte("LCF1"), u32(3, 1024, 1024, 1024)...))       // overflow product
	f.Add(u32(100, 100))                                             // truncated payload
	f.Add(narrow[:len(narrow)-7])                                    // truncated float32 payload
	f.Add(append([]byte("LCF1"), u32(2|f32Flag, 0, 8)...))           // zero extent, float32 lane
	f.Add(append([]byte("LCF1"), u32(200|f32Flag)...))               // rank bomb behind the lane flag
	f.Add(append([]byte("LCF1"), u32(2|f32Flag, 0xffff, 0xffff)...)) // float32 header over the element budget

	f.Fuzz(func(t *testing.T, body []byte) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze?window=4&maxlag=4", bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		code := rec.Code
		switch {
		case code == http.StatusOK || (code >= 400 && code < 500):
			// parsed and analyzed, or cleanly rejected
		case code >= 500:
			if _, _, err := field.ReadAnyLimit(bytes.NewReader(body), maxBody/8); err != nil {
				t.Fatalf("5xx for a body the reader rejects (%v): %s", err, rec.Body)
			}
			// a parseable field whose analysis failed — acceptable
		default:
			t.Fatalf("unexpected status %d: %s", code, rec.Body)
		}
	})
}
