package service

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"lossycorr/internal/fft"
)

// JobState is the lifecycle of an async job:
// queued → running → done | failed | cancelled
// (a queued job can be cancelled without ever running).
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// JobInfo is the wire view of a job, returned by the status endpoint
// and embedded in submit/cancel responses.
type JobInfo struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
	// Cached reports whether the result came from the content cache
	// without running the pipeline.
	Cached bool `json:"cached"`
	// PoolPeakBytes is the FFT buffer pool's peak while the job ran —
	// exact when the job was the only pipeline in flight, an upper
	// bound otherwise (the pool is process-global).
	PoolPeakBytes int64 `json:"poolPeakBytes,omitempty"`
	// PredictedPeakBytes is the transform-peak prediction admission
	// charged this job against Config.MemBudget (0 when the budget is
	// disabled).
	PredictedPeakBytes int64     `json:"predictedPeakBytes,omitempty"`
	ElapsedMs          float64   `json:"elapsedMs,omitempty"`
	SubmittedAt        time.Time `json:"submittedAt"`
	StartedAt          time.Time `json:"startedAt,omitzero"`
	FinishedAt         time.Time `json:"finishedAt,omitzero"`
}

type job struct {
	mu     sync.Mutex
	info   JobInfo
	spec   runSpec
	result any
	ctx    context.Context
	cancel context.CancelFunc
}

func (j *job) snapshot() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.info
}

// errQueueFull is admission control's rejection; handlers map it to
// 429 Too Many Requests.
var errQueueFull = errors.New("service: job queue full")

// memBudgetError is memory admission's rejection: the job's predicted
// transform peak does not fit in what remains of Config.MemBudget.
// Handlers map it to 429 with the prediction in the body, so the
// client can shrink maxlag, drop to the float32 lane, or retry after
// the backlog drains.
type memBudgetError struct {
	predicted, reserved, budget int64
}

func (e *memBudgetError) Error() string {
	return fmt.Sprintf("service: predicted transform peak %d bytes does not fit the memory budget (%d of %d bytes already reserved)",
		e.predicted, e.reserved, e.budget)
}

func newJobID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic(err) // crypto/rand does not fail on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// submitJob admits a job to the bounded queue, or rejects it without
// ever blocking the caller: errQueueFull when the queue channel's
// capacity is spent (so the number of pipelines waiting on the
// executor fan-out can never grow past Config.MaxQueue), and a
// memBudgetError when the job's predicted transform peak does not fit
// in what remains of Config.MemBudget across every admitted job.
func (s *Server) submitJob(spec runSpec) (*job, error) {
	j := &job{spec: spec}
	j.ctx, j.cancel = context.WithCancel(s.rootCtx)
	j.info = JobInfo{ID: newJobID(), Kind: spec.kind, State: JobQueued, SubmittedAt: time.Now()}

	// Registration and the enqueue attempt happen under one hold of
	// jobMu: the send never blocks (admission is the channel's spare
	// capacity), and keeping the lock across it means the rejection
	// rollback truncates exactly the entry this call appended — with
	// the lock released in between, a concurrent submit could append
	// its own ID first and the truncation would orphan *that* job in
	// s.jobs, invisible to listing and never evicted. The memory
	// reservation lives under the same hold, so reserve + enqueue is
	// one atomic admission decision.
	s.jobMu.Lock()
	if b := s.cfg.MemBudget; b > 0 {
		if s.memReserved+spec.peakBytes > b {
			reserved := s.memReserved
			s.jobMu.Unlock()
			j.cancel()
			s.ctrRejected.Add(1)
			return nil, &memBudgetError{predicted: spec.peakBytes, reserved: reserved, budget: b}
		}
		s.memReserved += spec.peakBytes
		j.info.PredictedPeakBytes = spec.peakBytes
	}
	s.jobs[j.info.ID] = j
	s.order = append(s.order, j.info.ID)
	s.evictFinishedLocked()
	select {
	case s.queue <- j:
		s.jobMu.Unlock()
		s.ctrSubmitted.Add(1)
		return j, nil
	default:
		if s.cfg.MemBudget > 0 {
			s.memReserved -= spec.peakBytes
		}
		delete(s.jobs, j.info.ID)
		s.order = s.order[:len(s.order)-1]
		s.jobMu.Unlock()
		j.cancel()
		s.ctrRejected.Add(1)
		return nil, errQueueFull
	}
}

// releaseMem returns a job's admission reservation once its pipeline
// can no longer allocate (finished, failed, or drained after a
// pre-start cancellation). No-op when the budget is disabled, so the
// counter is only ever touched by the code path that reserved it.
func (s *Server) releaseMem(n int64) {
	if s.cfg.MemBudget <= 0 || n <= 0 {
		return
	}
	s.jobMu.Lock()
	s.memReserved -= n
	s.jobMu.Unlock()
}

func (s *Server) lookupJob(id string) *job {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	return s.jobs[id]
}

// evictFinishedLocked drops the oldest finished jobs beyond the
// retention bound so the job table cannot grow without limit. Live
// (queued/running) jobs are never evicted.
func (s *Server) evictFinishedLocked() {
	excess := len(s.order) - s.cfg.RetainedJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil {
			st := j.snapshot().State
			if st == JobDone || st == JobFailed || st == JobCancelled {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// executor is one job runner: it drains the queue until the server
// closes. Running Config.Executors of these bounds how many pipelines
// compete for the global worker-pool token budget at once.
func (s *Server) executor() {
	defer s.execWG.Done()
	for {
		select {
		case <-s.rootCtx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

func (s *Server) runJob(j *job) {
	j.mu.Lock()
	reserved := j.spec.peakBytes
	if j.info.State != JobQueued { // cancelled while waiting
		spec := j.spec
		j.spec = runSpec{kind: j.spec.kind}
		j.mu.Unlock()
		spec.release()
		s.releaseMem(reserved)
		return
	}
	j.info.State = JobRunning
	j.info.StartedAt = time.Now()
	spec := j.spec
	j.mu.Unlock()

	val, cached, peak, err := s.execute(j.ctx, spec)
	spec.release()
	s.releaseMem(reserved)

	now := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel() // release the context's resources either way
	// Drop the spec once the run is over: its closure captures the
	// fully parsed field (up to MaxBodyBytes of float64s), and with
	// RetainedJobs finished jobs kept around for polling, holding every
	// spec would pin gigabytes of field data nobody can ever use again.
	// Only the kind survives, for the status endpoint.
	j.spec = runSpec{kind: j.spec.kind}
	j.info.FinishedAt = now
	j.info.ElapsedMs = float64(now.Sub(j.info.StartedAt).Microseconds()) / 1e3
	j.info.PoolPeakBytes = peak
	j.info.Cached = cached
	switch {
	case err == nil:
		j.result = val
		j.info.State = JobDone
		s.ctrCompleted.Add(1)
	case j.ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		j.info.State = JobCancelled
		j.info.Error = err.Error()
		s.ctrCancelled.Add(1)
	default:
		j.info.State = JobFailed
		j.info.Error = err.Error()
		s.ctrFailed.Add(1)
	}
}

// execute runs a spec through the cache/singleflight layer while
// tracking the FFT buffer pool's peak. The peak baseline is reset when
// this is the only pipeline in flight, so an isolated job reports its
// exact transform working set; concurrent jobs share the process-wide
// pool and report an upper bound.
func (s *Server) execute(ctx context.Context, spec runSpec) (val any, cached bool, peak int64, err error) {
	if s.inFlight.Add(1) == 1 {
		fft.ResetPeakBytes()
	}
	defer s.inFlight.Add(-1)
	val, cached, err = s.runCached(ctx, spec)
	return val, cached, fft.PeakBytes(), err
}
