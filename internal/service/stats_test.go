package service

// Tests for the statistic-selection surface: the analyze `stats`
// option, absent-key JSON for uncomputed statistics, the cache-key
// compatibility rule (no selection → the pre-selection canon), and
// the kernel listing on GET /v1/stats.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"lossycorr/internal/core"
)

// TestAnalyzeStatsSelection requests a kernel subset and checks that
// exactly the selected statistics come back — deselected ones absent
// from the JSON object, not zero-valued.
func TestAnalyzeStatsSelection(t *testing.T) {
	_, hs := testServer(t, Config{})
	body := gaussBody(t, 48, 6, 1)

	code, data := postBin(t, hs.URL+"/v1/analyze?stats=variogram,svd", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var env struct {
		Result struct {
			Stats map[string]float64 `json:"stats"`
		} `json:"result"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding %q: %v", data, err)
	}
	st := env.Result.Stats
	for _, want := range []string{core.StatGlobalRange, core.StatGlobalSill, core.StatLocalSVDStd} {
		if _, ok := st[want]; !ok {
			t.Errorf("selected statistic %q missing from %v", want, st)
		}
	}
	if _, ok := st[core.StatLocalRangeStd]; ok {
		t.Errorf("deselected localRangeStd present in %v", st)
	}

	// The subset must agree bit-for-bit with the full analysis.
	code, data = postBin(t, hs.URL+"/v1/analyze", body)
	if code != http.StatusOK {
		t.Fatalf("full analyze status %d: %s", code, data)
	}
	var full struct {
		Result struct {
			Stats map[string]float64 `json:"stats"`
		} `json:"result"`
	}
	if err := json.Unmarshal(data, &full); err != nil {
		t.Fatal(err)
	}
	for k, v := range st {
		if full.Result.Stats[k] != v {
			t.Errorf("%s: subset %v != full %v", k, v, full.Result.Stats[k])
		}
	}
	if len(full.Result.Stats) != 4 {
		t.Errorf("full analysis carries %d stats, want 4: %v", len(full.Result.Stats), full.Result.Stats)
	}
}

// TestAnalyzeStatsUnknownRejected: unknown kernel names fail at submit
// time with a 400 naming the registered kernels.
func TestAnalyzeStatsUnknownRejected(t *testing.T) {
	_, hs := testServer(t, Config{})
	code, data := postBin(t, hs.URL+"/v1/analyze?stats=variogram,nope", gaussBody(t, 32, 4, 2))
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, data)
	}
	if !strings.Contains(string(data), "nope") || !strings.Contains(string(data), "variogram") {
		t.Fatalf("error should name the bad kernel and the registered set: %s", data)
	}
}

// TestAnalyzeStatsCacheKeys: spelling order and duplicates do not
// split the cache; the unselected request keeps its pre-selection
// cache identity (same canon → same key as before the option existed)
// and a selection addresses a distinct entry.
func TestAnalyzeStatsCacheKeys(t *testing.T) {
	s, hs := testServer(t, Config{})
	body := gaussBody(t, 48, 6, 3)

	for _, sel := range []string{"stats=svd,variogram", "stats=variogram,svd,svd"} {
		code, data := postBin(t, hs.URL+"/v1/analyze?"+sel, body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", sel, code, data)
		}
	}
	if runs := s.Stats().AnalyzeRuns; runs != 1 {
		t.Fatalf("normalized selections must share one cache entry; analyze ran %d times", runs)
	}
	// A different selection — and no selection — are distinct entries.
	if code, data := postBin(t, hs.URL+"/v1/analyze", body); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	if runs := s.Stats().AnalyzeRuns; runs != 2 {
		t.Fatalf("unselected analysis must not alias a subset entry; analyze ran %d times", runs)
	}
}

// TestStatsEndpointListsKernels: GET /v1/stats advertises the
// registered kernels with their outputs and capability flags, without
// disturbing the counter surface older probes grep.
func TestStatsEndpointListsKernels(t *testing.T) {
	_, hs := testServer(t, Config{})
	var snap StatsSnapshot
	if code := getJSON(t, hs.URL+"/v1/stats", &snap); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(snap.Kernels) < 3 {
		t.Fatalf("want at least the 3 built-in kernels, got %+v", snap.Kernels)
	}
	byName := map[string]KernelInfo{}
	for _, k := range snap.Kernels {
		byName[k.Name] = k
	}
	v, ok := byName["variogram"]
	if !ok || !v.Streaming || !v.FFT || v.Windowed {
		t.Fatalf("variogram kernel caps wrong: %+v", v)
	}
	if fmt.Sprint(v.Outputs) != fmt.Sprint([]string{"globalRange", "globalSill"}) {
		t.Fatalf("variogram outputs %v", v.Outputs)
	}
	lr, ok := byName["localrange"]
	if !ok || !lr.Windowed || !lr.Streaming || lr.FFT {
		t.Fatalf("localrange kernel caps wrong: %+v", lr)
	}
	sv, ok := byName["svd"]
	if !ok || !sv.Windowed || !sv.Streaming {
		t.Fatalf("svd kernel caps wrong: %+v", sv)
	}
	for _, k := range []KernelInfo{v, lr, sv} {
		if fmt.Sprint(k.Lanes) != fmt.Sprint([]string{"float64", "float32"}) {
			t.Fatalf("%s lanes %v", k.Name, k.Lanes)
		}
	}
}

// TestAnalyzeSkipLocalAbsent: the historical skiplocal option now
// yields a result set with the local statistics absent, not zero.
func TestAnalyzeSkipLocalAbsent(t *testing.T) {
	_, hs := testServer(t, Config{})
	code, data := postBin(t, hs.URL+"/v1/analyze?skiplocal=1", gaussBody(t, 48, 6, 4))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var env struct {
		Result struct {
			Stats map[string]float64 `json:"stats"`
		} `json:"result"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	st := env.Result.Stats
	if _, ok := st[core.StatGlobalRange]; !ok {
		t.Fatalf("globalRange missing from %v", st)
	}
	if _, ok := st[core.StatLocalRangeStd]; ok {
		t.Fatalf("skiplocal result carries localRangeStd: %v", st)
	}
	if _, ok := st[core.StatLocalSVDStd]; ok {
		t.Fatalf("skiplocal result carries localSVDStd: %v", st)
	}
}
