package service

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"lossycorr/internal/parallel"
)

// TestClientDisconnectStopsMidFlightAnalyze proves the cancellation
// path end to end: a client submits a large -vfft analyze, disconnects
// mid-flight, and the server-side pipeline (variogram transforms,
// windowed statistics, SVD) unwinds within a bounded deadline — and
// returns every worker-pool token, verified against the global budget
// gauge, so the server keeps serving at full parallelism afterwards.
func TestClientDisconnectStopsMidFlightAnalyze(t *testing.T) {
	s, hs := testServer(t, Config{})
	baseline := parallel.LiveExtraWorkers()

	// Big enough that the full analysis takes far longer than the time
	// from first-pipeline-work to the cancel below.
	body := gaussBody(t, 1024, 48, 41)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		hs.URL+"/v1/analyze?vfft=true&window=16", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	waitFor(t, 15*time.Second, "pipeline to start", func() bool {
		return s.Stats().InFlight >= 1
	})
	cancel() // client disconnects mid-flight

	if err := <-done; err == nil {
		t.Fatal("request unexpectedly completed before the disconnect")
	}
	unwindStart := time.Now()
	waitFor(t, 5*time.Second, "pipeline to unwind after disconnect", func() bool {
		return s.Stats().InFlight == 0
	})
	unwind := time.Since(unwindStart)
	t.Logf("pipeline unwound %v after disconnect", unwind)

	waitFor(t, 5*time.Second, "worker-pool tokens to return to the budget", func() bool {
		return parallel.LiveExtraWorkers() <= baseline
	})

	// The budget is intact: a fresh request gets full service.
	code, data := postBin(t, hs.URL+"/v1/analyze", gaussBody(t, 64, 8, 42))
	if code != http.StatusOK {
		t.Fatalf("post-cancel analyze: %d %s", code, data)
	}
}
