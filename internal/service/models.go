package service

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"lossycorr/internal/core"
)

// ModelInfo is one entry of GET /v1/models: a predictor the server can
// (or tried to) serve, with its content address and provenance. Boot
// loads from Config.ModelDir produce source "file" entries — including
// failed loads, which carry Error so a bad artifact is visible instead
// of silently ignored. Lazily trained predictors register as source
// "train" entries when their first training run completes.
type ModelInfo struct {
	// Key is the content address of the model: SHA-256 over the model
	// file bytes for boot-loaded models, over the training canon for
	// lazily trained ones. /v1/predict responses echo it as modelKey so
	// a client can tell which artifact answered.
	Key string `json:"key,omitempty"`
	// Source is "file" (loaded from ModelDir) or "train" (lazy
	// server-side training).
	Source string `json:"source"`
	// File is the base name of the originating model file, when any.
	File string `json:"file,omitempty"`
	// Rank is the field rank the model serves (2 or 3).
	Rank int `json:"rank,omitempty"`
	// Selector is the statistic the model regresses on (persistence
	// name, e.g. "global-range").
	Selector string `json:"selector,omitempty"`
	// Models lists the (compressor, bound) pairs, Predictor.Models-style.
	Models []string `json:"models,omitempty"`
	// ErrorBounds lists the distinct bounds the model covers, ascending.
	ErrorBounds []float64 `json:"errorBounds,omitempty"`
	// Error is set on boot-load failures; such entries serve nothing.
	Error string `json:"error,omitempty"`
}

type rankEB struct {
	rank int
	eb   float64
}

// modelRegistry indexes the predictors the server can serve without
// training. The (rank, eb) lookup table is populated once at boot from
// Config.ModelDir and never mutated afterwards, so the predict cache
// canon derived from it is stable for the process lifetime — a cached
// predict response can never alias across different serving models.
// Lazily trained predictors are appended to the listing for
// observability but deliberately kept out of the lookup table.
type modelRegistry struct {
	mu      sync.Mutex
	entries []ModelInfo
	serve   map[rankEB]*bootModel
}

type bootModel struct {
	key  string
	pred *core.Predictor
}

// loadModelDir reads every *.json file of dir into the registry.
// Returns (loaded, failed) counts; per-file failures become Error
// entries in the listing rather than boot failures.
func (mr *modelRegistry) loadModelDir(dir string) (int, int) {
	des, err := os.ReadDir(dir)
	if err != nil {
		mr.mu.Lock()
		mr.entries = append(mr.entries, ModelInfo{Source: "file", Error: fmt.Sprintf("reading model dir: %v", err)})
		mr.mu.Unlock()
		return 0, 1
	}
	names := make([]string, 0, len(des))
	for _, de := range des {
		if de.Type().IsRegular() && strings.HasSuffix(de.Name(), ".json") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	loaded, failed := 0, 0
	for _, name := range names {
		info := mr.loadModelFile(dir, name)
		mr.mu.Lock()
		mr.entries = append(mr.entries, info)
		mr.mu.Unlock()
		if info.Error != "" {
			failed++
		} else {
			loaded++
		}
	}
	return loaded, failed
}

func (mr *modelRegistry) loadModelFile(dir, name string) ModelInfo {
	info := ModelInfo{Source: "file", File: name}
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		info.Error = err.Error()
		return info
	}
	info.Key = cacheKey("model", "", raw)
	p, err := core.LoadPredictor(strings.NewReader(string(raw)))
	if err != nil {
		info.Error = err.Error()
		return info
	}
	prov := p.Provenance()
	if prov.Rank != 2 && prov.Rank != 3 {
		info.Error = fmt.Sprintf("model provenance rank %d (want 2 or 3); re-save with corrcomp predict -save", prov.Rank)
		return info
	}
	info.Rank = prov.Rank
	info.Selector = p.Selector().Key()
	info.Models = p.Models()
	info.ErrorBounds = p.ErrorBounds()
	bm := &bootModel{key: info.Key, pred: p}
	mr.mu.Lock()
	if mr.serve == nil {
		mr.serve = make(map[rankEB]*bootModel)
	}
	for _, eb := range info.ErrorBounds {
		k := rankEB{prov.Rank, eb}
		// First file wins on (rank, eb) collisions — files load in
		// sorted name order, so the winner is deterministic.
		if _, taken := mr.serve[k]; !taken {
			mr.serve[k] = bm
		}
	}
	mr.mu.Unlock()
	return info
}

// lookup returns the boot-loaded predictor serving (rank, eb), if any.
func (mr *modelRegistry) lookup(rank int, eb float64) (*core.Predictor, string, bool) {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	bm, ok := mr.serve[rankEB{rank, eb}]
	if !ok {
		return nil, "", false
	}
	return bm.pred, bm.key, true
}

// registerTrained appends a lazily trained predictor to the listing
// (idempotently per key) so GET /v1/models shows everything the server
// has in service, not just the boot set.
func (mr *modelRegistry) registerTrained(key string, rank int, p *core.Predictor) {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	for _, e := range mr.entries {
		if e.Key == key {
			return
		}
	}
	mr.entries = append(mr.entries, ModelInfo{
		Key:         key,
		Source:      "train",
		Rank:        rank,
		Selector:    p.Selector().Key(),
		Models:      p.Models(),
		ErrorBounds: p.ErrorBounds(),
	})
}

// list snapshots the registry in registration order (boot files in
// sorted name order, then lazy-train registrations in completion
// order).
func (mr *modelRegistry) list() []ModelInfo {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	out := make([]ModelInfo, len(mr.entries))
	copy(out, mr.entries)
	return out
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	models := s.models.list()
	if models == nil {
		models = []ModelInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": models})
}
