package linalg

import (
	"math"
	"testing"

	"lossycorr/internal/xrand"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("At/Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("clone aliases")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// overdetermined consistent system: y = 2 + 3x
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	sol, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol[0]-2) > 1e-10 || math.Abs(sol[1]-3) > 1e-10 {
		t.Fatalf("solution %v", sol)
	}
}

func TestSolveLeastSquaresResidualOrthogonality(t *testing.T) {
	// random overdetermined system: residual must be orthogonal to columns
	rng := xrand.New(77)
	m, n := 12, 4
	a := NewMatrix(m, n)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		b[i] = rng.NormFloat64()
	}
	orig := a.Clone()
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, err := orig.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		var dot float64
		for i := 0; i < m; i++ {
			dot += orig.At(i, j) * (b[i] - ax[i])
		}
		if math.Abs(dot) > 1e-9 {
			t.Fatalf("residual not orthogonal to column %d: %v", j, dot)
		}
	}
}

func TestSolveLeastSquaresErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveLeastSquares(a, []float64{1, 2}); err == nil {
		t.Fatal("expected underdetermined error")
	}
	a = NewMatrix(3, 2) // zero columns: rank deficient
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected rank-deficient error")
	}
	a = NewMatrix(3, 1)
	if _, err := SolveLeastSquares(a, []float64{1, 2}); err == nil {
		t.Fatal("expected rhs length error")
	}
}

func TestPolyFitRecoversPolynomial(t *testing.T) {
	coeffs := []float64{1, -2, 0.5}
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = PolyVal(coeffs, x)
	}
	got, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coeffs {
		if math.Abs(got[i]-coeffs[i]) > 1e-9 {
			t.Fatalf("coeff %d: %v want %v", i, got[i], coeffs[i])
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("expected length mismatch")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Fatal("expected negative degree error")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, 3); err == nil {
		t.Fatal("expected too-few-points error")
	}
}

func TestPolyVal(t *testing.T) {
	if v := PolyVal([]float64{1, 2, 3}, 2); v != 1+4+12 {
		t.Fatalf("PolyVal=%v", v)
	}
	if v := PolyVal(nil, 5); v != 0 {
		t.Fatalf("empty PolyVal=%v", v)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, -1)
	a.Set(2, 2, 7)
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 3, -1}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-10 {
			t.Fatalf("eig %v want %v", eig, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-3) > 1e-10 || math.Abs(eig[1]-1) > 1e-10 {
		t.Fatalf("eig %v", eig)
	}
}

func TestSymEigenTraceInvariant(t *testing.T) {
	rng := xrand.New(5)
	n := 10
	a := NewMatrix(n, n)
	var trace float64
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		trace += a.At(i, i)
	}
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, e := range eig {
		sum += e
	}
	if math.Abs(sum-trace) > 1e-8 {
		t.Fatalf("trace %v vs eig sum %v", trace, sum)
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, err := SymEigen(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSingularValuesDiagonal(t *testing.T) {
	a := NewMatrix(3, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, -3) // singular value is |−3| = 3
	sv, err := SingularValues(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv) != 2 || math.Abs(sv[0]-4) > 1e-9 || math.Abs(sv[1]-3) > 1e-9 {
		t.Fatalf("sv %v", sv)
	}
}

func TestSingularValuesWideMatrix(t *testing.T) {
	a := NewMatrix(2, 5)
	for j := 0; j < 5; j++ {
		a.Set(0, j, 1)
	}
	sv, err := SingularValues(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv) != 2 {
		t.Fatalf("want 2 singular values, got %d", len(sv))
	}
	if math.Abs(sv[0]-math.Sqrt(5)) > 1e-9 || sv[1] > 1e-9 {
		t.Fatalf("sv %v", sv)
	}
}

func TestSingularValuesFrobenius(t *testing.T) {
	rng := xrand.New(19)
	a := NewMatrix(6, 4)
	var frob float64
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		frob += a.Data[i] * a.Data[i]
	}
	sv, err := SingularValues(a)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range sv {
		sum += s * s
	}
	if math.Abs(sum-frob) > 1e-8*frob {
		t.Fatalf("Frobenius %v vs Σσ² %v", frob, sum)
	}
}

func TestGoldenMinimize(t *testing.T) {
	f := func(x float64) float64 { return (x - 2.5) * (x - 2.5) }
	x := GoldenMinimize(f, 0, 10, 1e-8)
	if math.Abs(x-2.5) > 1e-6 {
		t.Fatalf("minimizer %v", x)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty mean/std")
	}
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(x) != 5 {
		t.Fatalf("mean %v", Mean(x))
	}
	if math.Abs(Std(x)-2) > 1e-12 {
		t.Fatalf("std %v", Std(x))
	}
}
