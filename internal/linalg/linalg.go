// Package linalg supplies the small dense linear-algebra kernels the
// analysis pipeline needs: least-squares solvers (Householder QR),
// polynomial fitting in the style of numpy.polyfit, a symmetric Jacobi
// eigensolver, and singular values for the local-SVD statistic.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec dimension %d != %d", len(x), m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// ErrRankDeficient reports a least-squares system without full column rank.
var ErrRankDeficient = errors.New("linalg: rank-deficient system")

// SolveLeastSquares solves min_x ||Ax - b||₂ by Householder QR. A is
// destroyed. Requires Rows >= Cols and full column rank.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d != %d rows", len(b), m)
	}
	if m < n {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", m, n)
	}
	rhs := make([]float64, m)
	copy(rhs, b)
	// Householder QR, applying reflectors to rhs as we go.
	for k := 0; k < n; k++ {
		// norm of column k below the diagonal
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, a.At(i, k))
		}
		if norm == 0 {
			return nil, ErrRankDeficient
		}
		// Choose the sign that avoids cancellation: norm matches the
		// sign of the diagonal entry (JAMA convention).
		if a.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			a.Set(i, k, a.At(i, k)/norm)
		}
		a.Set(k, k, a.At(k, k)+1)
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += a.At(i, k) * a.At(i, j)
			}
			s = -s / a.At(k, k)
			for i := k; i < m; i++ {
				a.Set(i, j, a.At(i, j)+s*a.At(i, k))
			}
		}
		var s float64
		for i := k; i < m; i++ {
			s += a.At(i, k) * rhs[i]
		}
		s = -s / a.At(k, k)
		for i := k; i < m; i++ {
			rhs[i] += s * a.At(i, k)
		}
		a.Set(k, k, -norm) // R's diagonal after the reflection is -norm
	}
	// Back substitution with R stored in the upper triangle; note the
	// diagonal holds -||v|| from the reflection step, i.e. R[k][k].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		d := a.At(i, i)
		if d == 0 {
			return nil, ErrRankDeficient
		}
		x[i] = s / d
	}
	return x, nil
}

// PolyFit fits coefficients c so that y ≈ Σ c[k]·x^k (degree deg),
// the role numpy.polyfit plays in the paper's plotting pipeline.
// Coefficients are returned lowest order first.
func PolyFit(x, y []float64, deg int) ([]float64, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("linalg: PolyFit length mismatch %d vs %d", len(x), len(y))
	}
	if deg < 0 {
		return nil, fmt.Errorf("linalg: negative degree %d", deg)
	}
	if len(x) < deg+1 {
		return nil, fmt.Errorf("linalg: %d points cannot determine degree-%d fit", len(x), deg)
	}
	a := NewMatrix(len(x), deg+1)
	for i, xv := range x {
		p := 1.0
		for j := 0; j <= deg; j++ {
			a.Set(i, j, p)
			p *= xv
		}
	}
	return SolveLeastSquares(a, y)
}

// PolyVal evaluates a PolyFit coefficient vector at x (Horner).
func PolyVal(coeffs []float64, x float64) float64 {
	var v float64
	for i := len(coeffs) - 1; i >= 0; i-- {
		v = v*x + coeffs[i]
	}
	return v
}

// SymEigen computes all eigenvalues of the symmetric n×n matrix a by
// the cyclic Jacobi method. a is destroyed. Eigenvalues are returned in
// descending order. Only values (not vectors) are computed, which is
// all the truncation-level statistic requires.
func SymEigen(a *Matrix) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: SymEigen needs square matrix, got %dx%d", n, a.Cols)
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-24*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
			}
		}
	}
	eig := make([]float64, n)
	for i := range eig {
		eig[i] = a.At(i, i)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(eig)))
	return eig, nil
}

// SingularValues returns the singular values of the m×n matrix a in
// descending order, computed as sqrt of the eigenvalues of AᵀA (or AAᵀ,
// whichever is smaller). Adequate accuracy for the 32×32 windows of the
// local-SVD statistic; tiny negative eigenvalues from roundoff clamp to 0.
func SingularValues(a *Matrix) ([]float64, error) {
	m, n := a.Rows, a.Cols
	// gram = smaller of AᵀA (n×n) and AAᵀ (m×m)
	k := n
	gramT := false
	if m < n {
		k = m
		gramT = true
	}
	g := NewMatrix(k, k)
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			var s float64
			if gramT {
				for t := 0; t < n; t++ {
					s += a.At(i, t) * a.At(j, t)
				}
			} else {
				for t := 0; t < m; t++ {
					s += a.At(t, i) * a.At(t, j)
				}
			}
			g.Set(i, j, s)
			g.Set(j, i, s)
		}
	}
	eig, err := SymEigen(g)
	if err != nil {
		return nil, err
	}
	sv := make([]float64, k)
	for i, e := range eig {
		if e < 0 {
			e = 0
		}
		sv[i] = math.Sqrt(e)
	}
	return sv, nil
}

// GoldenMinimize finds the minimizer of f on [lo, hi] by golden-section
// search to the given absolute tolerance on x.
func GoldenMinimize(f func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation (0 for len < 1).
func Std(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}
