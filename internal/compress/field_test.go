package compress

import (
	"fmt"
	"testing"

	"lossycorr/internal/field"
	"lossycorr/internal/grid"
)

// stub codecs for registry dispatch tests

type stub2D struct{ name string }

func (s stub2D) Name() string { return s.name }
func (s stub2D) Compress(g *grid.Grid, absErr float64) ([]byte, error) {
	return []byte{byte(g.Rows), byte(g.Cols)}, nil
}
func (s stub2D) Decompress(data []byte) (*grid.Grid, error) {
	return grid.New(int(data[0]), int(data[1])), nil
}

type stub3D struct{ name string }

func (s stub3D) Name() string { return s.name }
func (s stub3D) Compress(v *grid.Volume, absErr float64) ([]byte, error) {
	return []byte{byte(v.Nz), byte(v.Ny), byte(v.Nx)}, nil
}
func (s stub3D) Decompress(data []byte) (*grid.Volume, error) {
	return grid.NewVolume(int(data[0]), int(data[1]), int(data[2])), nil
}

func TestRegistryRankDispatch(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(stub2D{"flat"}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterVolume(stub3D{"deep"}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterVolume(stub3D{"deep"}); err == nil {
		t.Fatal("expected duplicate error across views")
	}
	if err := r.Register(stub2D{"deep"}); err == nil {
		t.Fatal("expected duplicate error between 2D and 3D names")
	}

	if got := r.Names(); len(got) != 1 || got[0] != "flat" {
		t.Fatalf("Names() = %v want [flat]", got)
	}
	if got := r.NamesFor(2); len(got) != 1 || got[0] != "flat" {
		t.Fatalf("NamesFor(2) = %v", got)
	}
	if got := r.NamesFor(3); len(got) != 1 || got[0] != "deep" {
		t.Fatalf("NamesFor(3) = %v", got)
	}
	if got := r.NamesFor(0); len(got) != 2 {
		t.Fatalf("NamesFor(0) = %v", got)
	}

	if _, err := r.GetFor("flat", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetFor("flat", 3); err == nil {
		t.Fatal("2D codec must reject rank-3 lookup")
	}
	if _, err := r.GetFor("deep", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetFor("missing", 2); err == nil {
		t.Fatal("expected unknown-codec error")
	}
	if got := len(r.AllFor(3)); got != 1 {
		t.Fatalf("AllFor(3) has %d codecs", got)
	}
}

// boundedVol is a real (if silly) rank-3 codec: it stores the volume
// verbatim, so every bound holds.
type boundedVol struct{}

func (boundedVol) Name() string { return "raw-3d" }
func (boundedVol) Compress(v *grid.Volume, absErr float64) ([]byte, error) {
	out := []byte{byte(v.Nz), byte(v.Ny), byte(v.Nx)}
	for _, val := range v.Data {
		out = append(out, fmt.Sprintf("%016x", uint64(val*1000))...)
	}
	return out, nil
}
func (boundedVol) Decompress(data []byte) (*grid.Volume, error) {
	v := grid.NewVolume(int(data[0]), int(data[1]), int(data[2]))
	pos := 3
	for i := range v.Data {
		var u uint64
		fmt.Sscanf(string(data[pos:pos+16]), "%016x", &u)
		v.Data[i] = float64(u) / 1000
		pos += 16
	}
	return v, nil
}

func TestRunFieldVolume(t *testing.T) {
	v := grid.NewVolume(2, 3, 4)
	for i := range v.Data {
		v.Data[i] = float64(i) / 8
	}
	res, err := RunField(WrapVolume(boundedVol{}), field.FromVolume(v), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BoundOK || res.Compressor != "raw-3d" || res.OriginalSize != 24*8 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.MaxAbsError > 1e-3 {
		t.Fatalf("max error %v", res.MaxAbsError)
	}
}

// TestRunFieldMatchesRun2D checks the 2D harness and the generic
// harness agree field-for-field on a real measurement.
func TestRunFieldMatchesRun2D(t *testing.T) {
	g := grid.FromFunc(24, 24, func(r, c int) float64 {
		return float64(r)*0.1 + float64(c)*0.05
	})
	c := roundingCompressor{name: "round"}
	want, err := Run(c, g, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunField(WrapGrid(c), field.FromGrid(g), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("Run %+v != RunField %+v", want, got)
	}
}
