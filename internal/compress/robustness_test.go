package compress_test

// Failure-injection tests: every codec must reject (or at worst decode
// wrongly) arbitrarily corrupted streams without panicking. Run against
// all three built-in compressors via the core registry.

import (
	"math"
	"testing"

	"lossycorr/internal/core"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func testFieldFor(seed uint64) *grid.Grid {
	rng := xrand.New(seed)
	return grid.FromFunc(24, 31, func(r, c int) float64 {
		return math.Sin(float64(r)/4) + 0.2*rng.NormFloat64()
	})
}

func TestDecompressNeverPanicsOnCorruption(t *testing.T) {
	for _, c := range core.DefaultRegistry().All() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			data, err := c.Compress(testFieldFor(1), 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(7)
			for trial := 0; trial < 300; trial++ {
				bad := append([]byte(nil), data...)
				switch trial % 3 {
				case 0: // flip random bytes
					for k := 0; k < 1+rng.Intn(8); k++ {
						bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
					}
				case 1: // truncate
					bad = bad[:rng.Intn(len(bad))]
				case 2: // swap a random block
					if len(bad) > 16 {
						i := rng.Intn(len(bad) - 8)
						j := rng.Intn(len(bad) - 8)
						for k := 0; k < 8; k++ {
							bad[i+k], bad[j+k] = bad[j+k], bad[i+k]
						}
					}
				}
				// must not panic; error or garbage output both acceptable
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("trial %d: decompress panicked: %v", trial, r)
						}
					}()
					_, _ = c.Decompress(bad)
				}()
			}
		})
	}
}

func TestDecompressRandomGarbage(t *testing.T) {
	rng := xrand.New(9)
	for _, c := range core.DefaultRegistry().All() {
		for trial := 0; trial < 100; trial++ {
			garbage := make([]byte, rng.Intn(2048))
			for i := range garbage {
				garbage[i] = byte(rng.Uint64())
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: garbage decompress panicked: %v", c.Name(), r)
					}
				}()
				_, _ = c.Decompress(garbage)
			}()
		}
	}
}

func TestCompressRejectsNonFinite(t *testing.T) {
	// NaN/Inf inputs must either roundtrip through the escape path or
	// error — never violate the bound on the finite elements
	g, err := grid.FromData(2, 3, []float64{1, math.NaN(), 2, math.Inf(1), 3, math.Inf(-1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range core.DefaultRegistry().All() {
		data, err := c.Compress(g, 1e-6)
		if err != nil {
			continue // rejecting non-finite input is acceptable
		}
		dec, err := c.Decompress(data)
		if err != nil {
			t.Fatalf("%s: decode of non-finite field failed: %v", c.Name(), err)
		}
		for i, v := range g.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if math.Abs(v-dec.Data[i]) > 1e-6*(1+1e-12) {
				t.Fatalf("%s: finite element %d error %v", c.Name(), i, math.Abs(v-dec.Data[i]))
			}
		}
	}
}
