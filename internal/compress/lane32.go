package compress

// Float32-lane measurement. Codecs that can quantize directly from
// float32 samples implement Lane32Compressor; everything else is
// measured through a widen→compress→narrow fallback. Either way the
// measurement compares the reconstruction against the float32
// original, because that is the data the caller actually has — the
// error bound is enforced on the narrow lane's values.

import (
	"fmt"
	"math"

	"lossycorr/internal/field"
)

// Lane32Compressor is the optional native float32 lane of a
// FieldCompressor: CompressField32 must guarantee max|x−x̂| <= absErr
// over the float32 samples without a float64 staging copy of the
// field.
type Lane32Compressor interface {
	FieldCompressor
	// CompressField32 encodes f under the absolute error bound absErr,
	// quantizing directly from float32 samples.
	CompressField32(f *field.Field32, absErr float64) ([]byte, error)
	// DecompressField32 reconstructs the float32 field from
	// CompressField32's output.
	DecompressField32(data []byte) (*field.Field32, error)
}

// RunField32 compresses, decompresses, and measures the float32 field
// f with c at absErr. Native Lane32Compressors run without any
// full-field widening; other codecs measure through the widen→narrow
// fallback (float32→float64 is exact and the reconstruction is
// re-narrowed before comparison, so the bound check still reflects
// what a float32 consumer would see — with the bound slackened by one
// narrow-rounding ulp for the fallback path).
func RunField32(c FieldCompressor, f *field.Field32, absErr float64) (Result, error) {
	if absErr <= 0 {
		return Result{}, fmt.Errorf("compress: non-positive error bound %v", absErr)
	}
	var (
		data []byte
		dec  *field.Field32
		err  error
	)
	if l32, ok := c.(Lane32Compressor); ok {
		data, err = l32.CompressField32(f, absErr)
		if err != nil {
			return Result{}, fmt.Errorf("compress: %s: %w", c.Name(), err)
		}
		dec, err = l32.DecompressField32(data)
		if err != nil {
			return Result{}, fmt.Errorf("compress: %s decode: %w", c.Name(), err)
		}
	} else {
		wide := f.Widen()
		data, err = c.CompressField(wide, absErr)
		if err != nil {
			return Result{}, fmt.Errorf("compress: %s: %w", c.Name(), err)
		}
		decWide, derr := c.DecompressField(data)
		if derr != nil {
			return Result{}, fmt.Errorf("compress: %s decode: %w", c.Name(), derr)
		}
		dec = decWide.Narrow()
	}
	maxErr, err := f.MaxAbsDiff(dec)
	if err != nil {
		return Result{}, fmt.Errorf("compress: %s: %w", c.Name(), err)
	}
	mse, err := f.MSE(dec)
	if err != nil {
		return Result{}, err
	}
	// Bound slack: native lanes enforce the bound on float32 values
	// directly; the fallback's reconstruction picks up at most half a
	// float32 ulp of the reconstructed magnitude when narrowed.
	s := f.Summary()
	slack := absErr * 1e-12
	if _, native := c.(Lane32Compressor); !native {
		peak := math.Max(math.Abs(s.Min), math.Abs(s.Max)) + absErr
		slack += peak * 1.2e-7
	}
	res := Result{
		Compressor:     c.Name(),
		ErrorBound:     absErr,
		OriginalSize:   f.SizeBytes(),
		CompressedSize: len(data),
		MaxAbsError:    maxErr,
		MSE:            mse,
		PSNR:           psnrRange(s.ValueRange, mse),
		BoundOK:        maxErr <= absErr+slack,
	}
	if len(data) > 0 {
		res.Ratio = float64(res.OriginalSize) / float64(len(data))
	}
	return res, nil
}

// psnrRange is PSNRField over a precomputed value range.
func psnrRange(vr, mse float64) float64 {
	if mse == 0 {
		return math.Inf(1)
	}
	if vr == 0 {
		return 0
	}
	return 20*math.Log10(vr) - 10*math.Log10(mse)
}
