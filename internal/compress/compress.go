// Package compress defines the error-bounded lossy compressor
// interface and the measurement harness (compression ratio, maximum
// error, PSNR, bound verification) — the role Libpressio plays in the
// paper's experimental setup.
package compress

import (
	"fmt"
	"math"
	"sort"

	"lossycorr/internal/grid"
)

// Compressor is an error-bounded lossy compressor for 2D float64
// fields. Compress must guarantee max|x−x̂| <= absErr for every element.
type Compressor interface {
	// Name identifies the compressor in experiment output.
	Name() string
	// Compress encodes g under the absolute error bound absErr.
	Compress(g *grid.Grid, absErr float64) ([]byte, error)
	// Decompress reconstructs the field from Compress's output.
	Decompress(data []byte) (*grid.Grid, error)
}

// Result reports one compression measurement.
type Result struct {
	Compressor     string
	ErrorBound     float64
	OriginalSize   int
	CompressedSize int
	Ratio          float64 // OriginalSize / CompressedSize
	MaxAbsError    float64
	MSE            float64
	PSNR           float64 // dB, relative to the field's value range
	BoundOK        bool
}

// Run compresses, decompresses, and measures g with c at absErr.
func Run(c Compressor, g *grid.Grid, absErr float64) (Result, error) {
	if absErr <= 0 {
		return Result{}, fmt.Errorf("compress: non-positive error bound %v", absErr)
	}
	data, err := c.Compress(g, absErr)
	if err != nil {
		return Result{}, fmt.Errorf("compress: %s: %w", c.Name(), err)
	}
	dec, err := c.Decompress(data)
	if err != nil {
		return Result{}, fmt.Errorf("compress: %s decode: %w", c.Name(), err)
	}
	maxErr, err := g.MaxAbsDiff(dec)
	if err != nil {
		return Result{}, fmt.Errorf("compress: %s: %w", c.Name(), err)
	}
	mse, err := g.MSE(dec)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Compressor:     c.Name(),
		ErrorBound:     absErr,
		OriginalSize:   g.SizeBytes(),
		CompressedSize: len(data),
		MaxAbsError:    maxErr,
		MSE:            mse,
		PSNR:           PSNR(g, mse),
		BoundOK:        maxErr <= absErr*(1+1e-12),
	}
	if len(data) > 0 {
		res.Ratio = float64(res.OriginalSize) / float64(len(data))
	}
	return res, nil
}

// RunRelative measures g under a value-range-relative error bound: the
// absolute bound is relErr times the field's value range. The paper
// notes the formal equivalence between the absolute mode and this mode
// (used natively by SZ); constant fields fall back to relErr itself.
func RunRelative(c Compressor, g *grid.Grid, relErr float64) (Result, error) {
	if relErr <= 0 {
		return Result{}, fmt.Errorf("compress: non-positive relative bound %v", relErr)
	}
	vr := g.Summary().ValueRange
	abs := relErr * vr
	if abs == 0 {
		abs = relErr
	}
	return Run(c, g, abs)
}

// PSNR computes the peak signal-to-noise ratio in dB using the field's
// value range as peak, the convention of the lossy-compression
// community (+Inf for a perfect reconstruction).
func PSNR(g *grid.Grid, mse float64) float64 {
	if mse == 0 {
		return math.Inf(1)
	}
	vr := g.Summary().ValueRange
	if vr == 0 {
		return 0
	}
	return 20*math.Log10(vr) - 10*math.Log10(mse)
}

// Registry holds named compressors for CLI and experiment lookup.
type Registry struct {
	byName map[string]Compressor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Compressor)}
}

// Register adds c; registering a duplicate name is an error.
func (r *Registry) Register(c Compressor) error {
	if _, dup := r.byName[c.Name()]; dup {
		return fmt.Errorf("compress: duplicate compressor %q", c.Name())
	}
	r.byName[c.Name()] = c
	return nil
}

// Get looks a compressor up by name.
func (r *Registry) Get(name string) (Compressor, error) {
	c, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown compressor %q (have %v)", name, r.Names())
	}
	return c, nil
}

// Names lists registered compressors in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns the compressors in name order.
func (r *Registry) All() []Compressor {
	out := make([]Compressor, 0, len(r.byName))
	for _, n := range r.Names() {
		out = append(out, r.byName[n])
	}
	return out
}

// PaperErrorBounds are the four absolute error bounds of the study.
var PaperErrorBounds = []float64{1e-5, 1e-4, 1e-3, 1e-2}
