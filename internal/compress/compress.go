// Package compress defines the error-bounded lossy compressor
// interface and the measurement harness (compression ratio, maximum
// error, PSNR, bound verification) — the role Libpressio plays in the
// paper's experimental setup.
package compress

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"lossycorr/internal/field"
	"lossycorr/internal/grid"
)

// Compressor is an error-bounded lossy compressor for 2D float64
// fields. Compress must guarantee max|x−x̂| <= absErr for every element.
type Compressor interface {
	// Name identifies the compressor in experiment output.
	Name() string
	// Compress encodes g under the absolute error bound absErr.
	Compress(g *grid.Grid, absErr float64) ([]byte, error)
	// Decompress reconstructs the field from Compress's output.
	Decompress(data []byte) (*grid.Grid, error)
}

// Result reports one compression measurement. The JSON field names
// are the service layer's wire contract; PSNR can be +Inf for perfect
// reconstructions, which encoding/json cannot represent, so the
// service layer marshals results with Result's own MarshalJSON that
// clamps non-finite values.
type Result struct {
	Compressor     string  `json:"compressor"`
	ErrorBound     float64 `json:"errorBound"`
	OriginalSize   int     `json:"originalSize"`
	CompressedSize int     `json:"compressedSize"`
	Ratio          float64 `json:"ratio"` // OriginalSize / CompressedSize
	MaxAbsError    float64 `json:"maxAbsError"`
	MSE            float64 `json:"mse"`
	PSNR           float64 `json:"psnr"` // dB, relative to the field's value range
	BoundOK        bool    `json:"boundOK"`
}

// MarshalJSON encodes the result with non-finite PSNR values clamped
// to a large sentinel (±1e308) so a perfect reconstruction (+Inf dB)
// survives the trip through JSON, which has no infinity literal.
func (r Result) MarshalJSON() ([]byte, error) {
	type wire Result // drop the method to avoid recursion
	w := wire(r)
	if math.IsInf(w.PSNR, 1) {
		w.PSNR = 1e308
	} else if math.IsInf(w.PSNR, -1) {
		w.PSNR = -1e308
	} else if math.IsNaN(w.PSNR) {
		w.PSNR = 0
	}
	return json.Marshal(w)
}

// Run compresses, decompresses, and measures g with c at absErr — the
// rank-2 view of RunField.
func Run(c Compressor, g *grid.Grid, absErr float64) (Result, error) {
	return RunField(WrapGrid(c), field.FromGrid(g), absErr)
}

// RunRelative measures g under a value-range-relative error bound: the
// absolute bound is relErr times the field's value range. The paper
// notes the formal equivalence between the absolute mode and this mode
// (used natively by SZ); constant fields fall back to relErr itself.
func RunRelative(c Compressor, g *grid.Grid, relErr float64) (Result, error) {
	return RunRelativeField(WrapGrid(c), field.FromGrid(g), relErr)
}

// PSNR computes the peak signal-to-noise ratio in dB using the field's
// value range as peak, the convention of the lossy-compression
// community (+Inf for a perfect reconstruction).
func PSNR(g *grid.Grid, mse float64) float64 {
	if mse == 0 {
		return math.Inf(1)
	}
	vr := g.Summary().ValueRange
	if vr == 0 {
		return 0
	}
	return 20*math.Log10(vr) - 10*math.Log10(mse)
}

// Registry holds named compressors for CLI and experiment lookup. It
// is dimension-aware: every entry is a FieldCompressor with a declared
// set of supported ranks, and lookups can be filtered by the rank of
// the field being measured. Plain 2D codecs register through Register
// (auto-wrapped) and stay visible through the historical 2D accessors.
type Registry struct {
	byName map[string]Compressor      // 2D codecs, as registered
	fields map[string]FieldCompressor // every codec, rank-generic view
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]Compressor),
		fields: make(map[string]FieldCompressor),
	}
}

// Register adds a 2D codec; registering a duplicate name is an error.
func (r *Registry) Register(c Compressor) error {
	if err := r.RegisterField(WrapGrid(c)); err != nil {
		return err
	}
	r.byName[c.Name()] = c
	return nil
}

// RegisterField adds a rank-generic codec; registering a duplicate
// name is an error.
func (r *Registry) RegisterField(c FieldCompressor) error {
	if _, dup := r.fields[c.Name()]; dup {
		return fmt.Errorf("compress: duplicate compressor %q", c.Name())
	}
	r.fields[c.Name()] = c
	return nil
}

// RegisterVolume adds a native 3D codec (wrapped to rank {3});
// registering a duplicate name is an error.
func (r *Registry) RegisterVolume(c VolumeCompressor) error {
	return r.RegisterField(WrapVolume(c))
}

// Get looks a 2D compressor up by name.
func (r *Registry) Get(name string) (Compressor, error) {
	c, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown compressor %q (have %v)", name, r.Names())
	}
	return c, nil
}

// GetField looks any registered codec up by name.
func (r *Registry) GetField(name string) (FieldCompressor, error) {
	c, ok := r.fields[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown compressor %q (have %v)", name, r.NamesFor(0))
	}
	return c, nil
}

// GetFor looks a codec up by name and checks it accepts fields of the
// given rank.
func (r *Registry) GetFor(name string, ndim int) (FieldCompressor, error) {
	c, err := r.GetField(name)
	if err != nil {
		return nil, err
	}
	if !SupportsRank(c, ndim) {
		return nil, fmt.Errorf("compress: %q does not accept rank-%d fields (%d-D codecs: %v)",
			name, ndim, ndim, r.NamesFor(ndim))
	}
	return c, nil
}

// Names lists registered 2D compressors in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NamesFor lists the codecs accepting the given rank in sorted order;
// rank 0 lists every codec.
func (r *Registry) NamesFor(ndim int) []string {
	out := make([]string, 0, len(r.fields))
	for n, c := range r.fields {
		if ndim == 0 || SupportsRank(c, ndim) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// All returns the 2D compressors in name order.
func (r *Registry) All() []Compressor {
	out := make([]Compressor, 0, len(r.byName))
	for _, n := range r.Names() {
		out = append(out, r.byName[n])
	}
	return out
}

// AllFor returns the codecs accepting the given rank in name order,
// the set MeasureFields sweeps for a field of that rank.
func (r *Registry) AllFor(ndim int) []FieldCompressor {
	names := r.NamesFor(ndim)
	out := make([]FieldCompressor, 0, len(names))
	for _, n := range names {
		out = append(out, r.fields[n])
	}
	return out
}

// PaperErrorBounds are the four absolute error bounds of the study.
var PaperErrorBounds = []float64{1e-5, 1e-4, 1e-3, 1e-2}
