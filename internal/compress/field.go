package compress

// Dimension-aware compression. FieldCompressor is the rank-generic
// codec interface the measurement pipeline runs on; existing 2D codecs
// and 3D volume codecs plug in through O(1) adapters, and the Registry
// serves lookups filtered by the rank of the field being measured.

import (
	"fmt"
	"math"

	"lossycorr/internal/field"
	"lossycorr/internal/grid"
)

// FieldCompressor is an error-bounded lossy compressor for dense
// fields. CompressField must guarantee max|x−x̂| <= absErr for every
// element of any field whose rank it supports.
type FieldCompressor interface {
	// Name identifies the compressor in experiment output.
	Name() string
	// Ranks lists the field ranks the codec accepts (e.g. {2} or {3}).
	Ranks() []int
	// CompressField encodes f under the absolute error bound absErr.
	CompressField(f *field.Field, absErr float64) ([]byte, error)
	// DecompressField reconstructs the field from CompressField's output.
	DecompressField(data []byte) (*field.Field, error)
}

// VolumeCompressor is the shape of a native 3D codec
// (szlike.Compressor3D and friends); WrapVolume adapts it to
// FieldCompressor.
type VolumeCompressor interface {
	Name() string
	Compress(v *grid.Volume, absErr float64) ([]byte, error)
	Decompress(data []byte) (*grid.Volume, error)
}

// SupportsRank reports whether c accepts fields of the given rank.
func SupportsRank(c FieldCompressor, ndim int) bool {
	for _, r := range c.Ranks() {
		if r == ndim {
			return true
		}
	}
	return false
}

type gridAdapter struct{ c Compressor }

func (a gridAdapter) Name() string { return a.c.Name() }
func (a gridAdapter) Ranks() []int { return []int{2} }

func (a gridAdapter) CompressField(f *field.Field, absErr float64) ([]byte, error) {
	g, err := f.AsGrid()
	if err != nil {
		return nil, err
	}
	return a.c.Compress(g, absErr)
}

func (a gridAdapter) DecompressField(data []byte) (*field.Field, error) {
	g, err := a.c.Decompress(data)
	if err != nil {
		return nil, err
	}
	return field.FromGrid(g), nil
}

// Lane32Grid is the optional float32 lane of a 2D codec: Compress32
// must honor the bound on the float32 samples directly, without a
// float64 staging copy of the field.
type Lane32Grid interface {
	Compress32(f *field.Field32, absErr float64) ([]byte, error)
	Decompress32(data []byte) (*field.Field32, error)
}

// lane32GridAdapter forwards the float32 lane of codecs that have one,
// so WrapGrid's result satisfies Lane32Compressor exactly when the
// wrapped codec implements Lane32Grid.
type lane32GridAdapter struct {
	gridAdapter
	l Lane32Grid
}

func (a lane32GridAdapter) CompressField32(f *field.Field32, absErr float64) ([]byte, error) {
	if len(f.Shape) != 2 {
		return nil, fmt.Errorf("compress: %s float32 lane needs rank 2, got %d", a.Name(), len(f.Shape))
	}
	return a.l.Compress32(f, absErr)
}

func (a lane32GridAdapter) DecompressField32(data []byte) (*field.Field32, error) {
	return a.l.Decompress32(data)
}

// WrapGrid adapts a 2D codec to the rank-generic interface (rank {2}),
// preserving a native float32 lane when the codec offers one.
func WrapGrid(c Compressor) FieldCompressor {
	g := gridAdapter{c}
	if l, ok := c.(Lane32Grid); ok {
		return lane32GridAdapter{g, l}
	}
	return g
}

type volumeAdapter struct{ c VolumeCompressor }

func (a volumeAdapter) Name() string { return a.c.Name() }
func (a volumeAdapter) Ranks() []int { return []int{3} }

func (a volumeAdapter) CompressField(f *field.Field, absErr float64) ([]byte, error) {
	v, err := f.AsVolume()
	if err != nil {
		return nil, err
	}
	return a.c.Compress(v, absErr)
}

func (a volumeAdapter) DecompressField(data []byte) (*field.Field, error) {
	v, err := a.c.Decompress(data)
	if err != nil {
		return nil, err
	}
	return field.FromVolume(v), nil
}

// WrapVolume adapts a 3D codec to the rank-generic interface (rank {3}).
func WrapVolume(c VolumeCompressor) FieldCompressor { return volumeAdapter{c} }

// RunField compresses, decompresses, and measures f with c at absErr —
// the rank-generic measurement harness behind Run.
func RunField(c FieldCompressor, f *field.Field, absErr float64) (Result, error) {
	if absErr <= 0 {
		return Result{}, fmt.Errorf("compress: non-positive error bound %v", absErr)
	}
	data, err := c.CompressField(f, absErr)
	if err != nil {
		return Result{}, fmt.Errorf("compress: %s: %w", c.Name(), err)
	}
	dec, err := c.DecompressField(data)
	if err != nil {
		return Result{}, fmt.Errorf("compress: %s decode: %w", c.Name(), err)
	}
	maxErr, err := f.MaxAbsDiff(dec)
	if err != nil {
		return Result{}, fmt.Errorf("compress: %s: %w", c.Name(), err)
	}
	mse, err := f.MSE(dec)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Compressor:     c.Name(),
		ErrorBound:     absErr,
		OriginalSize:   f.SizeBytes(),
		CompressedSize: len(data),
		MaxAbsError:    maxErr,
		MSE:            mse,
		PSNR:           PSNRField(f, mse),
		BoundOK:        maxErr <= absErr*(1+1e-12),
	}
	if len(data) > 0 {
		res.Ratio = float64(res.OriginalSize) / float64(len(data))
	}
	return res, nil
}

// RunRelativeField measures f under a value-range-relative error
// bound, the rank-generic form of RunRelative.
func RunRelativeField(c FieldCompressor, f *field.Field, relErr float64) (Result, error) {
	if relErr <= 0 {
		return Result{}, fmt.Errorf("compress: non-positive relative bound %v", relErr)
	}
	vr := f.Summary().ValueRange
	abs := relErr * vr
	if abs == 0 {
		abs = relErr
	}
	return RunField(c, f, abs)
}

// PSNRField computes the peak signal-to-noise ratio in dB using the
// field's value range as peak (+Inf for a perfect reconstruction).
func PSNRField(f *field.Field, mse float64) float64 {
	if mse == 0 {
		return math.Inf(1)
	}
	vr := f.Summary().ValueRange
	if vr == 0 {
		return 0
	}
	return 20*math.Log10(vr) - 10*math.Log10(mse)
}
