package compress

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"lossycorr/internal/grid"
)

// roundingCompressor is a trivial test codec: rounds to multiples of eb
// and stores everything verbatim (after an 8-byte header per value).
type roundingCompressor struct{ name string }

func (c roundingCompressor) Name() string { return c.name }

func (c roundingCompressor) Compress(g *grid.Grid, absErr float64) ([]byte, error) {
	var buf bytes.Buffer
	q := g.Clone()
	for i, v := range q.Data {
		q.Data[i] = math.Round(v/absErr) * absErr
	}
	if err := q.WriteBinary(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (c roundingCompressor) Decompress(data []byte) (*grid.Grid, error) {
	return grid.ReadBinary(bytes.NewReader(data))
}

// brokenCompressor violates its bound.
type brokenCompressor struct{ roundingCompressor }

func (c brokenCompressor) Compress(g *grid.Grid, absErr float64) ([]byte, error) {
	return c.roundingCompressor.Compress(g, absErr*100)
}

func testField() *grid.Grid {
	return grid.FromFunc(16, 16, func(r, c int) float64 {
		return math.Sin(float64(r)/3) * math.Cos(float64(c)/5)
	})
}

func TestRunMetrics(t *testing.T) {
	g := testField()
	res, err := Run(roundingCompressor{"round"}, g, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BoundOK {
		t.Fatalf("bound violated: %+v", res)
	}
	if res.MaxAbsError > 0.005+1e-12 {
		t.Fatalf("rounding error %v above half bin", res.MaxAbsError)
	}
	if res.OriginalSize != 16*16*8 {
		t.Fatalf("original size %d", res.OriginalSize)
	}
	if res.Ratio <= 0 {
		t.Fatalf("ratio %v", res.Ratio)
	}
	if res.PSNR < 40 {
		t.Fatalf("PSNR %v unexpectedly low", res.PSNR)
	}
	if res.Compressor != "round" || res.ErrorBound != 0.01 {
		t.Fatalf("metadata wrong: %+v", res)
	}
}

func TestRunDetectsBoundViolation(t *testing.T) {
	res, err := Run(brokenCompressor{roundingCompressor{"broken"}}, testField(), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundOK {
		t.Fatal("violation not detected")
	}
}

func TestRunRejectsBadBound(t *testing.T) {
	if _, err := Run(roundingCompressor{"r"}, testField(), 0); err == nil {
		t.Fatal("expected error for eb=0")
	}
	if _, err := Run(roundingCompressor{"r"}, testField(), -1); err == nil {
		t.Fatal("expected error for eb<0")
	}
}

func TestPSNR(t *testing.T) {
	g := testField()
	if !math.IsInf(PSNR(g, 0), 1) {
		t.Fatal("zero MSE should give +Inf PSNR")
	}
	vr := g.Summary().ValueRange
	// mse = vr² gives 0 dB
	if p := PSNR(g, vr*vr); math.Abs(p) > 1e-9 {
		t.Fatalf("PSNR(vr²)=%v want 0", p)
	}
	if p := PSNR(grid.New(4, 4), 1); p != 0 {
		t.Fatalf("constant-field PSNR %v", p)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(roundingCompressor{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(roundingCompressor{"a"}); err == nil {
		t.Fatal("duplicate registration must error")
	}
	if err := r.Register(roundingCompressor{"b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("zzz"); err == nil {
		t.Fatal("unknown lookup must error")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v", names)
	}
	all := r.All()
	if len(all) != 2 || all[0].Name() != "a" {
		t.Fatalf("All() wrong order")
	}
}

func TestRunRelative(t *testing.T) {
	g := testField() // value range ~2
	vr := g.Summary().ValueRange
	res, err := RunRelative(roundingCompressor{"round"}, g, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorBound != 1e-2*vr {
		t.Fatalf("absolute bound %v want %v", res.ErrorBound, 1e-2*vr)
	}
	if !res.BoundOK {
		t.Fatalf("bound violated: %+v", res)
	}
	// constant field falls back to the relative value as absolute
	c := grid.New(4, 4)
	res, err = RunRelative(roundingCompressor{"round"}, c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorBound != 0.5 {
		t.Fatalf("constant-field bound %v", res.ErrorBound)
	}
	if _, err := RunRelative(roundingCompressor{"round"}, g, 0); err == nil {
		t.Fatal("expected error for rel=0")
	}
}

func TestPaperErrorBounds(t *testing.T) {
	want := []float64{1e-5, 1e-4, 1e-3, 1e-2}
	if len(PaperErrorBounds) != len(want) {
		t.Fatalf("bounds %v", PaperErrorBounds)
	}
	for i := range want {
		if PaperErrorBounds[i] != want[i] {
			t.Fatalf("bounds %v", PaperErrorBounds)
		}
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	_, err := Run(failingCompressor{}, testField(), 1e-3)
	if err == nil || !errors.Is(err, errBoom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

var errBoom = errors.New("boom")

type failingCompressor struct{}

func (failingCompressor) Name() string { return "fail" }
func (failingCompressor) Compress(*grid.Grid, float64) ([]byte, error) {
	return nil, errBoom
}
func (failingCompressor) Decompress([]byte) (*grid.Grid, error) { return nil, errBoom }
