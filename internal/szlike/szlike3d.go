package szlike

// 3D variant of the SZ-style codec, matching SZ 2.x's handling of 3D
// data: 8×8×8 prediction blocks, a 3D Lorenzo predictor (7-point
// inclusion–exclusion extrapolation from reconstructed neighbors) or a
// per-block least-squares hyperplane, the shared linear quantizer, and
// the same Huffman + DEFLATE back end. Miranda data is natively 3D, so
// this is the codec the paper's future-work 3D analysis would measure.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"lossycorr/internal/grid"
	"lossycorr/internal/huffman"
	"lossycorr/internal/lossless"
	"lossycorr/internal/quant"
)

// BlockSize3D is the 3D prediction block edge (SZ uses 8×8×8).
const BlockSize3D = 8

var magic3D = [4]byte{'S', 'Z', 'L', '3'}

// Compressor3D is the SZ-like codec for 3D volumes. The zero value is
// ready to use.
type Compressor3D struct{}

// Name identifies the codec.
func (Compressor3D) Name() string { return "sz-like-3d" }

// lorenzo3D extrapolates from the seven already-reconstructed
// neighbors (out-of-volume neighbors read as 0).
func lorenzo3D(recon *grid.Volume, z, y, x int) float64 {
	at := func(dz, dy, dx int) float64 {
		zz, yy, xx := z-dz, y-dy, x-dx
		if zz < 0 || yy < 0 || xx < 0 {
			return 0
		}
		return recon.At(zz, yy, xx)
	}
	return at(0, 0, 1) + at(0, 1, 0) + at(1, 0, 0) -
		at(0, 1, 1) - at(1, 0, 1) - at(1, 1, 0) +
		at(1, 1, 1)
}

// hyperplaneCoeffs fits v ≈ b0 + b1·z + b2·y + b3·x over a block by
// closed-form least squares (the integer lattice design is orthogonal
// after centering). Coefficients are rounded through float32, the
// stored representation.
func hyperplaneCoeffs(v *grid.Volume, z0, y0, x0, nz, ny, nx int) (b0, b1, b2, b3 float64) {
	n := float64(nz * ny * nx)
	var sz, sy, sx, sv, szv, syv, sxv float64
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				val := v.At(z0+z, y0+y, x0+x)
				sz += float64(z)
				sy += float64(y)
				sx += float64(x)
				sv += val
				szv += float64(z) * val
				syv += float64(y) * val
				sxv += float64(x) * val
			}
		}
	}
	mz, my, mx, mv := sz/n, sy/n, sx/n, sv/n
	var szz, syy, sxx float64
	for z := 0; z < nz; z++ {
		d := float64(z) - mz
		szz += d * d * float64(ny*nx)
	}
	for y := 0; y < ny; y++ {
		d := float64(y) - my
		syy += d * d * float64(nz*nx)
	}
	for x := 0; x < nx; x++ {
		d := float64(x) - mx
		sxx += d * d * float64(nz*ny)
	}
	if szz > 0 {
		b1 = (szv - mz*sv) / szz
	}
	if syy > 0 {
		b2 = (syv - my*sv) / syy
	}
	if sxx > 0 {
		b3 = (sxv - mx*sv) / sxx
	}
	b0 = mv - b1*mz - b2*my - b3*mx
	b0 = float64(float32(b0))
	b1 = float64(float32(b1))
	b2 = float64(float32(b2))
	b3 = float64(float32(b3))
	return
}

// estimateBlockErrors3D scores both predictors on original data.
func estimateBlockErrors3D(v *grid.Volume, z0, y0, x0, nz, ny, nx int, b0, b1, b2, b3 float64) (lorenzo, regression float64) {
	at := func(z, y, x int) float64 {
		if z < 0 || y < 0 || x < 0 {
			return 0
		}
		return v.At(z, y, x)
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				gz, gy, gx := z0+z, y0+y, x0+x
				val := v.At(gz, gy, gx)
				pred := at(gz, gy, gx-1) + at(gz, gy-1, gx) + at(gz-1, gy, gx) -
					at(gz, gy-1, gx-1) - at(gz-1, gy, gx-1) - at(gz-1, gy-1, gx) +
					at(gz-1, gy-1, gx-1)
				le := val - pred
				lorenzo += le * le
				re := val - (b0 + b1*float64(z) + b2*float64(y) + b3*float64(x))
				regression += re * re
			}
		}
	}
	return
}

// Compress encodes a volume under an absolute error bound.
func (Compressor3D) Compress(v *grid.Volume, absErr float64) ([]byte, error) {
	if absErr <= 0 {
		return nil, fmt.Errorf("szlike: non-positive error bound %v", absErr)
	}
	if v.Nz*v.Ny*v.Nx == 0 {
		return nil, errors.New("szlike: empty volume")
	}
	q := quant.New(absErr)
	recon := grid.NewVolume(v.Nz, v.Ny, v.Nx)

	nbz := (v.Nz + BlockSize3D - 1) / BlockSize3D
	nby := (v.Ny + BlockSize3D - 1) / BlockSize3D
	nbx := (v.Nx + BlockSize3D - 1) / BlockSize3D
	modes := make([]byte, 0, nbz*nby*nbx)
	var coeffs []float32
	symbols := make([]uint16, 0, v.Nz*v.Ny*v.Nx)
	var exact []float64

	for bz := 0; bz < nbz; bz++ {
		for by := 0; by < nby; by++ {
			for bx := 0; bx < nbx; bx++ {
				z0, y0, x0 := bz*BlockSize3D, by*BlockSize3D, bx*BlockSize3D
				nz, ny, nx := BlockSize3D, BlockSize3D, BlockSize3D
				if z0+nz > v.Nz {
					nz = v.Nz - z0
				}
				if y0+ny > v.Ny {
					ny = v.Ny - y0
				}
				if x0+nx > v.Nx {
					nx = v.Nx - x0
				}
				b0, b1, b2, b3 := hyperplaneCoeffs(v, z0, y0, x0, nz, ny, nx)
				le, re := estimateBlockErrors3D(v, z0, y0, x0, nz, ny, nx, b0, b1, b2, b3)
				mode := modeLorenzo
				if re < le {
					mode = modeRegression
				}
				modes = append(modes, mode)
				if mode == modeRegression {
					coeffs = append(coeffs, float32(b0), float32(b1), float32(b2), float32(b3))
				}
				for z := 0; z < nz; z++ {
					for y := 0; y < ny; y++ {
						for x := 0; x < nx; x++ {
							gz, gy, gx := z0+z, y0+y, x0+x
							val := v.At(gz, gy, gx)
							var pred float64
							if mode == modeLorenzo {
								pred = lorenzo3D(recon, gz, gy, gx)
							} else {
								pred = b0 + b1*float64(z) + b2*float64(y) + b3*float64(x)
							}
							sym, delta, ok := q.Encode(val - pred)
							if !ok {
								symbols = append(symbols, quant.Escape)
								exact = append(exact, val)
								recon.Set(gz, gy, gx, val)
								continue
							}
							symbols = append(symbols, sym)
							recon.Set(gz, gy, gx, pred+delta)
						}
					}
				}
			}
		}
	}

	huff := huffman.Encode(symbols)
	var buf []byte
	buf = append(buf, magic3D[:]...)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(v.Nz))
	binary.LittleEndian.PutUint32(tmp[4:], uint32(v.Ny))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[0:], uint32(v.Nx))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(absErr))
	buf = append(buf, tmp[:]...)
	buf = append(buf, modes...)
	for _, cf := range coeffs {
		binary.LittleEndian.PutUint32(tmp[:4], math.Float32bits(cf))
		buf = append(buf, tmp[:4]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(exact)))
	buf = append(buf, tmp[:4]...)
	for _, val := range exact {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(val))
		buf = append(buf, tmp[:]...)
	}
	buf = append(buf, huff...)
	return lossless.Compress(buf)
}

// Decompress reconstructs a volume from Compress's output.
func (Compressor3D) Decompress(data []byte) (*grid.Volume, error) {
	raw, err := lossless.Decompress(data)
	if err != nil {
		return nil, fmt.Errorf("szlike: %w", err)
	}
	if len(raw) < 24 || raw[0] != magic3D[0] || raw[1] != magic3D[1] || raw[2] != magic3D[2] || raw[3] != magic3D[3] {
		return nil, ErrCorrupt
	}
	nzV := int(binary.LittleEndian.Uint32(raw[4:]))
	nyV := int(binary.LittleEndian.Uint32(raw[8:]))
	nxV := int(binary.LittleEndian.Uint32(raw[12:]))
	absErr := math.Float64frombits(binary.LittleEndian.Uint64(raw[16:]))
	if nzV <= 0 || nyV <= 0 || nxV <= 0 || absErr <= 0 || nzV*nyV*nxV > 1<<30 {
		return nil, ErrCorrupt
	}
	pos := 24
	nbz := (nzV + BlockSize3D - 1) / BlockSize3D
	nby := (nyV + BlockSize3D - 1) / BlockSize3D
	nbx := (nxV + BlockSize3D - 1) / BlockSize3D
	nBlocks := nbz * nby * nbx
	if len(raw) < pos+nBlocks {
		return nil, ErrCorrupt
	}
	modes := raw[pos : pos+nBlocks]
	pos += nBlocks
	nReg := 0
	for _, m := range modes {
		switch m {
		case modeRegression:
			nReg++
		case modeLorenzo:
		default:
			return nil, ErrCorrupt
		}
	}
	if len(raw) < pos+16*nReg+4 {
		return nil, ErrCorrupt
	}
	coeffs := make([]float64, 0, 4*nReg)
	for i := 0; i < 4*nReg; i++ {
		coeffs = append(coeffs, float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[pos:]))))
		pos += 4
	}
	nExact := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if nExact < 0 || len(raw) < pos+8*nExact {
		return nil, ErrCorrupt
	}
	exact := make([]float64, nExact)
	for i := range exact {
		exact[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:]))
		pos += 8
	}
	symbols, err := huffman.Decode(raw[pos:])
	if err != nil {
		return nil, fmt.Errorf("szlike: %w", err)
	}
	if len(symbols) != nzV*nyV*nxV {
		return nil, ErrCorrupt
	}

	q := quant.New(absErr)
	recon := grid.NewVolume(nzV, nyV, nxV)
	si, ei, ci, bi := 0, 0, 0, 0
	for bz := 0; bz < nbz; bz++ {
		for by := 0; by < nby; by++ {
			for bx := 0; bx < nbx; bx++ {
				z0, y0, x0 := bz*BlockSize3D, by*BlockSize3D, bx*BlockSize3D
				nz, ny, nx := BlockSize3D, BlockSize3D, BlockSize3D
				if z0+nz > nzV {
					nz = nzV - z0
				}
				if y0+ny > nyV {
					ny = nyV - y0
				}
				if x0+nx > nxV {
					nx = nxV - x0
				}
				mode := modes[bi]
				bi++
				var b0, b1, b2, b3 float64
				if mode == modeRegression {
					b0, b1, b2, b3 = coeffs[ci], coeffs[ci+1], coeffs[ci+2], coeffs[ci+3]
					ci += 4
				}
				for z := 0; z < nz; z++ {
					for y := 0; y < ny; y++ {
						for x := 0; x < nx; x++ {
							gz, gy, gx := z0+z, y0+y, x0+x
							sym := symbols[si]
							si++
							if sym == quant.Escape {
								if ei >= len(exact) {
									return nil, ErrCorrupt
								}
								recon.Set(gz, gy, gx, exact[ei])
								ei++
								continue
							}
							var pred float64
							if mode == modeLorenzo {
								pred = lorenzo3D(recon, gz, gy, gx)
							} else {
								pred = b0 + b1*float64(z) + b2*float64(y) + b3*float64(x)
							}
							recon.Set(gz, gy, gx, pred+q.Decode(sym))
						}
					}
				}
			}
		}
	}
	if ei != len(exact) {
		return nil, ErrCorrupt
	}
	return recon, nil
}
