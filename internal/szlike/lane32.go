package szlike

// Native float32 lane of the SZ-like codec. The quantizer consumes
// float32 samples directly — prediction arithmetic runs in float64
// (widening a float32 is exact), but the reconstruction mirror, the
// escape store, and the decompressed field are all float32, so no
// full-field float64 staging copy exists on either side and the stream
// carries 4-byte escapes instead of 8.
//
// The error bound is pinned on the float32 values: after quantization
// the reconstructed sample is narrowed to float32 and re-checked
// against the bound; the rare sample whose narrow rounding lands it
// outside escapes to exact storage (a float32 is stored exactly in 4
// bytes). Decompression replays the same float32 mirror, so compressor
// and decompressor reconstructions are bitwise identical.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"lossycorr/internal/compress"
	"lossycorr/internal/field"
	"lossycorr/internal/huffman"
	"lossycorr/internal/lossless"
	"lossycorr/internal/quant"
)

var magic32 = [4]byte{'S', 'Z', 'L', 'f'}

var _ compress.Lane32Grid = Compressor{}

// scratch32 recycles the float32 reconstruction mirror across calls.
type scratch32 struct {
	recon   []float32
	symbols []uint16
	modes   []byte
}

var scratch32Pool = sync.Pool{New: func() any { return new(scratch32) }}

func growFloats32(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// regressionCoeffs32 is regressionCoeffs over float32 rows with float64
// accumulation; widening is exact, so the fit equals the float64 path
// on the widened block.
func regressionCoeffs32(data []float32, gcols, r0, c0, rows, cols int) (b0, b1, b2 float64) {
	n := float64(rows * cols)
	var sr, sc, sv, srv, scv float64
	for r := 0; r < rows; r++ {
		base := (r0+r)*gcols + c0
		row := data[base : base+cols]
		for c, v32 := range row {
			v := float64(v32)
			sr += float64(r)
			sc += float64(c)
			sv += v
			srv += float64(r) * v
			scv += float64(c) * v
		}
	}
	mr, mc, mv := sr/n, sc/n, sv/n
	var srr, scc float64
	for r := 0; r < rows; r++ {
		dr := float64(r) - mr
		srr += dr * dr * float64(cols)
	}
	for c := 0; c < cols; c++ {
		dc := float64(c) - mc
		scc += dc * dc * float64(rows)
	}
	if srr > 0 {
		b1 = (srv - mr*sv) / srr
	}
	if scc > 0 {
		b2 = (scv - mc*sv) / scc
	}
	b0 = mv - b1*mr - b2*mc
	b0 = float64(float32(b0))
	b1 = float64(float32(b1))
	b2 = float64(float32(b2))
	return
}

// estimateBlockErrors32 mirrors estimateBlockErrors over float32 rows.
func estimateBlockErrors32(data []float32, gcols, r0, c0, rows, cols int, b0, b1, b2 float64) (lorenzo, regression float64) {
	for r := 0; r < rows; r++ {
		gr := r0 + r
		base := gr*gcols + c0
		cur := data[base : base+cols]
		var up []float32
		if gr > 0 {
			up = data[base-gcols : base-gcols+cols]
		}
		rowPred := b0 + b1*float64(r)
		for c, v32 := range cur {
			v := float64(v32)
			var a, b, d float64
			if gr > 0 {
				a = float64(up[c])
			}
			if c > 0 {
				b = float64(cur[c-1])
				if gr > 0 {
					d = float64(up[c-1])
				}
			} else if c0 > 0 {
				b = float64(data[base-1])
				if gr > 0 {
					d = float64(data[base-gcols-1])
				}
			}
			le := v - (a + b - d)
			lorenzo += le * le
			re := v - (rowPred + b2*float64(c))
			regression += re * re
		}
	}
	return
}

// Compress32 implements compress.Lane32Grid.
func (cc Compressor) Compress32(f *field.Field32, absErr float64) ([]byte, error) {
	if absErr <= 0 {
		return nil, fmt.Errorf("szlike: non-positive error bound %v", absErr)
	}
	if len(f.Shape) != 2 {
		return nil, fmt.Errorf("szlike: float32 lane needs rank 2, got %d", len(f.Shape))
	}
	gRows, gCols := f.Shape[0], f.Shape[1]
	if f.Len() == 0 {
		return nil, errors.New("szlike: empty field")
	}
	q := quant.New(absErr)
	sc := scratch32Pool.Get().(*scratch32)
	defer scratch32Pool.Put(sc)
	sc.recon = growFloats32(sc.recon, f.Len())
	recon := sc.recon

	nbr := (gRows + BlockSize - 1) / BlockSize
	nbc := (gCols + BlockSize - 1) / BlockSize
	modes := sc.modes[:0]
	var coeffs []float32
	symbols := sc.symbols[:0]
	var exact []float32

	for br := 0; br < nbr; br++ {
		for bc := 0; bc < nbc; bc++ {
			r0, c0 := br*BlockSize, bc*BlockSize
			rows, cols := BlockSize, BlockSize
			if r0+rows > gRows {
				rows = gRows - r0
			}
			if c0+cols > gCols {
				cols = gCols - c0
			}
			b0, b1, b2 := regressionCoeffs32(f.Data, gCols, r0, c0, rows, cols)
			var mode byte
			switch cc.Mode {
			case PredictorLorenzoOnly:
				mode = modeLorenzo
			case PredictorRegressionOnly:
				mode = modeRegression
			default:
				le, re := estimateBlockErrors32(f.Data, gCols, r0, c0, rows, cols, b0, b1, b2)
				mode = modeLorenzo
				if re < le {
					mode = modeRegression
				}
			}
			modes = append(modes, mode)
			if mode == modeRegression {
				coeffs = append(coeffs, float32(b0), float32(b1), float32(b2))
			}
			for r := 0; r < rows; r++ {
				gr := r0 + r
				base := gr*gCols + c0
				src := f.Data[base : base+cols]
				rec := recon[base : base+cols]
				var up []float32
				if gr > 0 {
					up = recon[base-gCols : base-gCols+cols]
				}
				rowPred := b0 + b1*float64(r)
				for c, v32 := range src {
					v := float64(v32)
					var pred float64
					if mode == modeLorenzo {
						var a, b, d float64
						if gr > 0 {
							a = float64(up[c])
						}
						if c > 0 {
							b = float64(rec[c-1])
							if gr > 0 {
								d = float64(up[c-1])
							}
						} else if c0 > 0 {
							b = float64(recon[base-1])
							if gr > 0 {
								d = float64(recon[base-gCols-1])
							}
						}
						pred = a + b - d
					} else {
						pred = rowPred + b2*float64(c)
					}
					if sym, delta, ok := q.Encode(v - pred); ok {
						// Post-narrow guard: the bound must hold on the
						// float32 value the consumer will read.
						rv := float32(pred + delta)
						if math.Abs(float64(rv)-v) <= absErr {
							symbols = append(symbols, sym)
							rec[c] = rv
							continue
						}
					}
					symbols = append(symbols, quant.Escape)
					exact = append(exact, v32)
					rec[c] = v32
				}
			}
		}
	}

	huff := huffman.Encode(symbols)
	sc.modes, sc.symbols = modes, symbols

	var buf []byte
	buf = append(buf, magic32[:]...)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(gRows))
	binary.LittleEndian.PutUint32(tmp[4:], uint32(gCols))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(absErr))
	buf = append(buf, tmp[:]...)
	buf = append(buf, modes...)
	for _, cf := range coeffs {
		binary.LittleEndian.PutUint32(tmp[:4], math.Float32bits(cf))
		buf = append(buf, tmp[:4]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(exact)))
	buf = append(buf, tmp[:4]...)
	for _, v := range exact {
		binary.LittleEndian.PutUint32(tmp[:4], math.Float32bits(v))
		buf = append(buf, tmp[:4]...)
	}
	buf = append(buf, huff...)
	return lossless.Compress(buf)
}

// Decompress32 implements compress.Lane32Grid.
func (Compressor) Decompress32(data []byte) (*field.Field32, error) {
	raw, err := lossless.Decompress(data)
	if err != nil {
		return nil, fmt.Errorf("szlike: %w", err)
	}
	if len(raw) < 20 || raw[0] != magic32[0] || raw[1] != magic32[1] || raw[2] != magic32[2] || raw[3] != magic32[3] {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint32(raw[4:]))
	cols := int(binary.LittleEndian.Uint32(raw[8:]))
	absErr := math.Float64frombits(binary.LittleEndian.Uint64(raw[12:]))
	if rows <= 0 || cols <= 0 || absErr <= 0 || rows*cols > 1<<30 {
		return nil, ErrCorrupt
	}
	pos := 20
	nbr := (rows + BlockSize - 1) / BlockSize
	nbc := (cols + BlockSize - 1) / BlockSize
	nBlocks := nbr * nbc
	if len(raw) < pos+nBlocks {
		return nil, ErrCorrupt
	}
	modes := raw[pos : pos+nBlocks]
	pos += nBlocks
	nReg := 0
	for _, m := range modes {
		switch m {
		case modeRegression:
			nReg++
		case modeLorenzo:
		default:
			return nil, ErrCorrupt
		}
	}
	if len(raw) < pos+12*nReg+4 {
		return nil, ErrCorrupt
	}
	coeffs := make([]float64, 0, 3*nReg)
	for i := 0; i < 3*nReg; i++ {
		coeffs = append(coeffs, float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[pos:]))))
		pos += 4
	}
	nExact := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if nExact < 0 || len(raw) < pos+4*nExact {
		return nil, ErrCorrupt
	}
	exact := make([]float32, nExact)
	for i := range exact {
		exact[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[pos:]))
		pos += 4
	}
	symbols, err := huffman.Decode(raw[pos:])
	if err != nil {
		return nil, fmt.Errorf("szlike: %w", err)
	}
	if len(symbols) != rows*cols {
		return nil, ErrCorrupt
	}

	q := quant.New(absErr)
	out := field.New32(rows, cols)
	recon := out.Data
	si, ei, ci, bi := 0, 0, 0, 0
	for br := 0; br < nbr; br++ {
		for bc := 0; bc < nbc; bc++ {
			r0, c0 := br*BlockSize, bc*BlockSize
			brows, bcols := BlockSize, BlockSize
			if r0+brows > rows {
				brows = rows - r0
			}
			if c0+bcols > cols {
				bcols = cols - c0
			}
			mode := modes[bi]
			bi++
			var b0, b1, b2 float64
			if mode == modeRegression {
				b0, b1, b2 = coeffs[ci], coeffs[ci+1], coeffs[ci+2]
				ci += 3
			}
			for r := 0; r < brows; r++ {
				gr := r0 + r
				base := gr*cols + c0
				rec := recon[base : base+bcols]
				syms := symbols[si : si+bcols]
				si += bcols
				var up []float32
				if gr > 0 {
					up = recon[base-cols : base-cols+bcols]
				}
				rowPred := b0 + b1*float64(r)
				for c, sym := range syms {
					if sym == quant.Escape {
						if ei >= len(exact) {
							return nil, ErrCorrupt
						}
						rec[c] = exact[ei]
						ei++
						continue
					}
					var pred float64
					if mode == modeLorenzo {
						var a, b, d float64
						if gr > 0 {
							a = float64(up[c])
						}
						if c > 0 {
							b = float64(rec[c-1])
							if gr > 0 {
								d = float64(up[c-1])
							}
						} else if c0 > 0 {
							b = float64(recon[base-1])
							if gr > 0 {
								d = float64(recon[base-cols-1])
							}
						}
						pred = a + b - d
					} else {
						pred = rowPred + b2*float64(c)
					}
					rec[c] = float32(pred + q.Decode(sym))
				}
			}
		}
	}
	if ei != len(exact) {
		return nil, ErrCorrupt
	}
	return out, nil
}
