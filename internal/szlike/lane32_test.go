package szlike

import (
	"math"
	"testing"

	"lossycorr/internal/compress"
	"lossycorr/internal/field"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func randomField32(rows, cols int, seed uint64) *field.Field32 {
	rng := xrand.New(seed)
	f := field.New32(rows, cols)
	for i := range f.Data {
		f.Data[i] = float32(rng.NormFloat64())
	}
	return f
}

func roundtrip32(t *testing.T, cc Compressor, f *field.Field32, eb float64) *field.Field32 {
	t.Helper()
	data, err := cc.Compress32(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := cc.Decompress32(data)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.SameShape(f) {
		t.Fatalf("shape changed: %v -> %v", f.Shape, dec.Shape)
	}
	maxErr, err := f.MaxAbsDiff(dec)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > eb {
		t.Fatalf("float32 lane bound violated: maxErr %g > eb %g", maxErr, eb)
	}
	return dec
}

// TestLane32RoundTrip pins the native float32 lane: the bound holds
// strictly on float32 values for every predictor mode — no widened
// slack term, because the post-narrow guard escapes any sample whose
// narrow rounding would exceed it.
func TestLane32RoundTrip(t *testing.T) {
	for _, mode := range []PredictorMode{PredictorAuto, PredictorLorenzoOnly, PredictorRegressionOnly} {
		for _, eb := range []float64{1e-1, 1e-3, 1e-5} {
			f := randomField32(61, 77, 7)
			roundtrip32(t, Compressor{Mode: mode}, f, eb)
		}
	}
}

// TestLane32NarrowGuard drives the post-narrow escape: values around
// 1e7 with a bound of 1e-4 sit below half a float32 ulp (~0.6 at that
// magnitude), so nearly every sample must escape to exact storage —
// and the reconstruction is then bitwise exact.
func TestLane32NarrowGuard(t *testing.T) {
	rng := xrand.New(3)
	f := field.New32(24, 24)
	for i := range f.Data {
		f.Data[i] = float32(1e7 + rng.NormFloat64())
	}
	dec := roundtrip32(t, Compressor{}, f, 1e-4)
	for i := range f.Data {
		if f.Data[i] != dec.Data[i] {
			t.Fatalf("sample %d: %v != %v (expected exact escape)", i, f.Data[i], dec.Data[i])
		}
	}
}

// TestLane32NonFinite pins NaN/Inf handling: non-finite residuals
// escape, so special values survive the round trip.
func TestLane32NonFinite(t *testing.T) {
	f := randomField32(20, 20, 9)
	f.Data[5] = float32(math.NaN())
	f.Data[37] = float32(math.Inf(1))
	data, err := Compressor{}.Compress32(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Compressor{}.Decompress32(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(dec.Data[5])) || !math.IsInf(float64(dec.Data[37]), 1) {
		t.Fatalf("special values lost: %v %v", dec.Data[5], dec.Data[37])
	}
}

// TestLane32ThroughRegistry pins the adapter chain: WrapGrid exposes
// the native lane as a compress.Lane32Compressor and RunField32 runs
// it with BoundOK.
func TestLane32ThroughRegistry(t *testing.T) {
	fc := compress.WrapGrid(Compressor{})
	if _, ok := fc.(compress.Lane32Compressor); !ok {
		t.Fatal("WrapGrid(szlike.Compressor) does not expose the float32 lane")
	}
	f := randomField32(50, 50, 11)
	res, err := compress.RunField32(fc, f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BoundOK {
		t.Fatalf("native lane bound violated: %+v", res)
	}
	if res.MaxAbsError > 1e-3 {
		t.Fatalf("maxErr %g > 1e-3", res.MaxAbsError)
	}
	if res.Ratio <= 1 {
		t.Fatalf("expected compression, got ratio %v", res.Ratio)
	}
	// Rank-3 fields must be rejected by the 2D lane, not mis-shaped.
	f3 := field.New32(4, 4, 4)
	if _, err := fc.(compress.Lane32Compressor).CompressField32(f3, 1e-3); err == nil {
		t.Fatal("rank-3 field accepted by 2D float32 lane")
	}
}

// TestLane32Corrupt pins stream validation: a float64-lane stream and
// truncated bytes both fail cleanly.
func TestLane32Corrupt(t *testing.T) {
	rng := xrand.New(1)
	g := grid.FromFunc(16, 16, func(r, c int) float64 { return rng.NormFloat64() })
	f64Stream, err := Compressor{}.Compress(g, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Compressor{}).Decompress32(f64Stream); err == nil {
		t.Fatal("float64 stream accepted by float32 lane")
	}
	f := randomField32(16, 16, 2)
	data, err := Compressor{}.Compress32(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Compressor{}).Decompress32(data[:len(data)/2]); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// BenchmarkSZLikeLanes pairs the float64 and native float32 codec
// lanes over the same samples — the per-codec bandwidth gauge behind
// the BENCH_pr7.json record (the variogram pair is the headline one).
func BenchmarkSZLikeLanes(b *testing.B) {
	const edge = 512
	f32 := randomField32(edge, edge, 19)
	g := grid.New(edge, edge)
	for i, v := range f32.Data {
		g.Data[i] = float64(v)
	}
	b.Run("f64", func(b *testing.B) {
		b.SetBytes(int64(len(g.Data)) * 8)
		for i := 0; i < b.N; i++ {
			if _, err := (Compressor{}).Compress(g, 1e-3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("f32", func(b *testing.B) {
		b.SetBytes(int64(len(f32.Data)) * 4)
		for i := 0; i < b.N; i++ {
			if _, err := (Compressor{}).Compress32(f32, 1e-3); err != nil {
				b.Fatal(err)
			}
		}
	})
}
