package szlike

import (
	"math"
	"testing"
	"testing/quick"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func volumeFromFunc(nz, ny, nx int, f func(z, y, x int) float64) *grid.Volume {
	v := grid.NewVolume(nz, ny, nx)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v.Set(z, y, x, f(z, y, x))
			}
		}
	}
	return v
}

func maxAbsDiff3D(a, b *grid.Volume) float64 {
	var m float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

func roundtrip3D(t *testing.T, v *grid.Volume, eb float64) *grid.Volume {
	t.Helper()
	c := Compressor3D{}
	data, err := c.Compress(v, eb)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Nz != v.Nz || dec.Ny != v.Ny || dec.Nx != v.Nx {
		t.Fatalf("shape changed")
	}
	if m := maxAbsDiff3D(v, dec); m > eb*(1+1e-12) {
		t.Fatalf("bound violated: %v > %v", m, eb)
	}
	return dec
}

func TestName3D(t *testing.T) {
	if (Compressor3D{}).Name() != "sz-like-3d" {
		t.Fatal("name changed")
	}
}

func TestRoundtrip3DSmooth(t *testing.T) {
	v := volumeFromFunc(12, 20, 16, func(z, y, x int) float64 {
		return math.Sin(float64(z)/3) + math.Cos(float64(y)/5) + float64(x)*0.1
	})
	for _, eb := range []float64{1e-5, 1e-3, 1e-1} {
		roundtrip3D(t, v, eb)
	}
}

func TestRoundtrip3DNoise(t *testing.T) {
	rng := xrand.New(4)
	v := volumeFromFunc(9, 11, 13, func(z, y, x int) float64 { return rng.NormFloat64() * 20 })
	roundtrip3D(t, v, 1e-4)
}

func TestRoundtrip3DGaussianField(t *testing.T) {
	v, err := gaussian.Generate3D(gaussian.Params3D{Nz: 16, Ny: 16, Nx: 16, Range: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	roundtrip3D(t, v, 1e-3)
}

func TestOddSizes3D(t *testing.T) {
	rng := xrand.New(5)
	for _, sz := range [][3]int{{1, 1, 1}, {1, 8, 8}, {8, 1, 8}, {8, 8, 1}, {3, 5, 7}, {9, 10, 11}} {
		v := volumeFromFunc(sz[0], sz[1], sz[2], func(z, y, x int) float64 { return rng.NormFloat64() })
		roundtrip3D(t, v, 1e-3)
	}
}

func TestLorenzo3DExactOnHyperplane(t *testing.T) {
	// 3D Lorenzo reproduces any affine field exactly away from borders
	v := volumeFromFunc(6, 6, 6, func(z, y, x int) float64 {
		return 1 + 2*float64(z) - 3*float64(y) + 0.5*float64(x)
	})
	for z := 1; z < 6; z++ {
		for y := 1; y < 6; y++ {
			for x := 1; x < 6; x++ {
				if p := lorenzo3D(v, z, y, x); math.Abs(p-v.At(z, y, x)) > 1e-10 {
					t.Fatalf("lorenzo3D at (%d,%d,%d): %v want %v", z, y, x, p, v.At(z, y, x))
				}
			}
		}
	}
}

func TestHyperplaneCoeffs(t *testing.T) {
	v := volumeFromFunc(8, 8, 8, func(z, y, x int) float64 {
		return 4 - 0.5*float64(z) + 0.25*float64(y) + 2*float64(x)
	})
	b0, b1, b2, b3 := hyperplaneCoeffs(v, 0, 0, 0, 8, 8, 8)
	if math.Abs(b0-4) > 1e-5 || math.Abs(b1+0.5) > 1e-6 ||
		math.Abs(b2-0.25) > 1e-6 || math.Abs(b3-2) > 1e-6 {
		t.Fatalf("coeffs %v %v %v %v", b0, b1, b2, b3)
	}
}

func TestSmoother3DCompressesBetter(t *testing.T) {
	c := Compressor3D{}
	smooth, err := gaussian.Generate3D(gaussian.Params3D{Nz: 16, Ny: 16, Nx: 16, Range: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	noise := volumeFromFunc(16, 16, 16, func(z, y, x int) float64 { return rng.NormFloat64() })
	ds, err := c.Compress(smooth, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := c.Compress(noise, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) >= len(dn) {
		t.Fatalf("smooth (%d B) not smaller than noise (%d B)", len(ds), len(dn))
	}
}

func TestDecompress3DCorrupt(t *testing.T) {
	c := Compressor3D{}
	if _, err := c.Decompress([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage must error")
	}
	v := volumeFromFunc(4, 4, 4, func(z, y, x int) float64 { return float64(z + y + x) })
	data, err := c.Compress(v, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(data[:len(data)/2]); err == nil {
		t.Fatal("truncated stream must error")
	}
}

func TestErrors3D(t *testing.T) {
	c := Compressor3D{}
	if _, err := c.Compress(grid.NewVolume(0, 4, 4), 1e-3); err == nil {
		t.Fatal("empty volume must error")
	}
	if _, err := c.Compress(grid.NewVolume(4, 4, 4), 0); err == nil {
		t.Fatal("eb=0 must error")
	}
}

func TestQuickBoundProperty3D(t *testing.T) {
	c := Compressor3D{}
	f := func(seed uint64, ebExp uint8, rough bool) bool {
		eb := math.Pow(10, -1-float64(ebExp%5))
		rng := xrand.New(seed)
		nz := 1 + rng.Intn(10)
		ny := 1 + rng.Intn(10)
		nx := 1 + rng.Intn(10)
		var v *grid.Volume
		if rough {
			v = volumeFromFunc(nz, ny, nx, func(z, y, x int) float64 { return rng.NormFloat64() * 10 })
		} else {
			fr := 1 + rng.Float64()*5
			v = volumeFromFunc(nz, ny, nx, func(z, y, x int) float64 {
				return math.Sin(float64(z+y)/fr) + math.Cos(float64(x)/fr)
			})
		}
		data, err := c.Compress(v, eb)
		if err != nil {
			return false
		}
		dec, err := c.Decompress(data)
		if err != nil {
			return false
		}
		return maxAbsDiff3D(v, dec) <= eb*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
