// Package szlike implements an SZ-style error-bounded lossy compressor
// (Liang et al., IEEE Big Data 2018) in pure Go. Like SZ 2.x for 2D
// data it works block by block (16×16), choosing per block between a
// Lorenzo predictor (reconstructed-neighbor extrapolation) and a
// regression predictor (least-squares plane through the block), then
// linearly quantizes prediction residuals into 2·eb bins with an escape
// path that stores unpredictable values exactly. The symbol stream is
// entropy coded with canonical Huffman and the whole payload passes
// through DEFLATE, standing in for SZ's Zstd stage.
//
// Because the predictor only sees local context, the compressor
// exploits local correlation structure — the property the paper links
// to the variogram range.
package szlike

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"lossycorr/internal/compress"
	"lossycorr/internal/grid"
	"lossycorr/internal/huffman"
	"lossycorr/internal/lossless"
	"lossycorr/internal/quant"
)

// compressScratch is the per-call working set of Compress — the
// reconstruction mirror, symbol stream, and block-mode list — recycled
// through a pool so batch measurement (every field × error bound)
// stops re-allocating a full field's worth of scratch per run.
type compressScratch struct {
	recon   []float64
	symbols []uint16
	modes   []byte
}

var scratchPool = sync.Pool{New: func() any { return new(compressScratch) }}

// grow returns s[:n] reusing capacity, zeroed.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// BlockSize is the 2D prediction block edge, matching SZ's 16×16.
const BlockSize = 16

const (
	modeLorenzo byte = iota
	modeRegression
)

var magic = [4]byte{'S', 'Z', 'L', '1'}

// PredictorMode restricts which block predictor Compress may choose —
// an ablation knob for quantifying what each of SZ's two predictors
// contributes (DESIGN.md's ablation index).
type PredictorMode int

const (
	// PredictorAuto picks the better predictor per block (SZ's behavior).
	PredictorAuto PredictorMode = iota
	// PredictorLorenzoOnly forces the Lorenzo predictor everywhere.
	PredictorLorenzoOnly
	// PredictorRegressionOnly forces the regression predictor everywhere.
	PredictorRegressionOnly
)

// Compressor is the SZ-like codec. The zero value (auto predictor
// selection) is ready to use.
type Compressor struct {
	// Mode restricts predictor choice; zero means auto.
	Mode PredictorMode
}

var _ compress.Compressor = Compressor{}

// Name implements compress.Compressor.
func (c Compressor) Name() string {
	switch c.Mode {
	case PredictorLorenzoOnly:
		return "sz-like-lorenzo"
	case PredictorRegressionOnly:
		return "sz-like-regression"
	default:
		return "sz-like"
	}
}

// regressionCoeffs fits v ≈ b0 + b1·r + b2·c over the block by
// closed-form least squares on the (separable, integer) design. Returns
// coefficients rounded through float32, the representation stored in
// the stream, so compressor and decompressor predict identically.
func regressionCoeffs(g *grid.Grid, r0, c0, rows, cols int) (b0, b1, b2 float64) {
	n := float64(rows * cols)
	var sr, sc, sv, srv, scv float64
	for r := 0; r < rows; r++ {
		base := (r0+r)*g.Cols + c0
		row := g.Data[base : base+cols]
		for c, v := range row {
			sr += float64(r)
			sc += float64(c)
			sv += v
			srv += float64(r) * v
			scv += float64(c) * v
		}
	}
	mr, mc, mv := sr/n, sc/n, sv/n
	// For a full integer lattice the design is orthogonal after
	// centering: Σ(r−mr)(c−mc) = 0, so the two slopes decouple.
	var srr, scc, srvC, scvC float64
	for r := 0; r < rows; r++ {
		dr := float64(r) - mr
		srr += dr * dr * float64(cols)
	}
	for c := 0; c < cols; c++ {
		dc := float64(c) - mc
		scc += dc * dc * float64(rows)
	}
	srvC = srv - mr*sv
	scvC = scv - mc*sv
	if srr > 0 {
		b1 = srvC / srr
	}
	if scc > 0 {
		b2 = scvC / scc
	}
	b0 = mv - b1*mr - b2*mc
	b0 = float64(float32(b0))
	b1 = float64(float32(b1))
	b2 = float64(float32(b2))
	return
}

// lorenzoPredict extrapolates from already-reconstructed neighbors
// (out-of-grid neighbors read as 0, SZ's convention for borders).
func lorenzoPredict(recon *grid.Grid, r, c int) float64 {
	var a, b, d float64
	if r > 0 {
		a = recon.At(r-1, c)
	}
	if c > 0 {
		b = recon.At(r, c-1)
	}
	if r > 0 && c > 0 {
		d = recon.At(r-1, c-1)
	}
	return a + b - d
}

// estimateBlockErrors scores both predictors on original data (SZ
// samples; we evaluate exactly) so the cheaper mode wins per block.
// The sweep walks row slices of the grid (current row, row above)
// instead of per-element At calls, so the inner loop is two streaming
// reads with the bounds checks hoisted to the slice headers.
func estimateBlockErrors(g *grid.Grid, r0, c0, rows, cols int, b0, b1, b2 float64) (lorenzo, regression float64) {
	for r := 0; r < rows; r++ {
		gr := r0 + r
		base := gr*g.Cols + c0
		cur := g.Data[base : base+cols]
		var up []float64
		if gr > 0 {
			up = g.Data[base-g.Cols : base-g.Cols+cols]
		}
		rowPred := b0 + b1*float64(r)
		for c, v := range cur {
			var a, b, d float64
			if gr > 0 {
				a = up[c]
			}
			if c > 0 {
				b = cur[c-1]
				if gr > 0 {
					d = up[c-1]
				}
			} else if c0 > 0 {
				b = g.Data[base-1]
				if gr > 0 {
					d = g.Data[base-g.Cols-1]
				}
			}
			le := v - (a + b - d)
			lorenzo += le * le
			re := v - (rowPred + b2*float64(c))
			regression += re * re
		}
	}
	return
}

// Compress implements compress.Compressor.
func (cc Compressor) Compress(g *grid.Grid, absErr float64) ([]byte, error) {
	if absErr <= 0 {
		return nil, fmt.Errorf("szlike: non-positive error bound %v", absErr)
	}
	if g.Len() == 0 {
		return nil, errors.New("szlike: empty field")
	}
	q := quant.New(absErr)
	sc := scratchPool.Get().(*compressScratch)
	defer scratchPool.Put(sc)
	sc.recon = growFloats(sc.recon, g.Len())
	recon := &grid.Grid{Rows: g.Rows, Cols: g.Cols, Data: sc.recon}

	nbr := (g.Rows + BlockSize - 1) / BlockSize
	nbc := (g.Cols + BlockSize - 1) / BlockSize
	modes := sc.modes[:0]
	var coeffs []float32 // 3 per regression block
	symbols := sc.symbols[:0]
	var exact []float64

	for br := 0; br < nbr; br++ {
		for bc := 0; bc < nbc; bc++ {
			r0, c0 := br*BlockSize, bc*BlockSize
			rows, cols := BlockSize, BlockSize
			if r0+rows > g.Rows {
				rows = g.Rows - r0
			}
			if c0+cols > g.Cols {
				cols = g.Cols - c0
			}
			b0, b1, b2 := regressionCoeffs(g, r0, c0, rows, cols)
			var mode byte
			switch cc.Mode {
			case PredictorLorenzoOnly:
				mode = modeLorenzo
			case PredictorRegressionOnly:
				mode = modeRegression
			default:
				le, re := estimateBlockErrors(g, r0, c0, rows, cols, b0, b1, b2)
				mode = modeLorenzo
				if re < le {
					mode = modeRegression
				}
			}
			modes = append(modes, mode)
			if mode == modeRegression {
				coeffs = append(coeffs, float32(b0), float32(b1), float32(b2))
			}
			// Row-sliced quantize kernel: one streaming pass per block
			// row over the source and reconstruction rows, specialized
			// per predictor so the inner loops carry no mode branch.
			for r := 0; r < rows; r++ {
				gr := r0 + r
				base := gr*g.Cols + c0
				src := g.Data[base : base+cols]
				rec := recon.Data[base : base+cols]
				if mode == modeRegression {
					rowPred := b0 + b1*float64(r)
					for c, v := range src {
						pred := rowPred + b2*float64(c)
						sym, delta, ok := q.Encode(v - pred)
						if !ok {
							symbols = append(symbols, quant.Escape)
							exact = append(exact, v)
							rec[c] = v
							continue
						}
						symbols = append(symbols, sym)
						rec[c] = pred + delta
					}
					continue
				}
				var up []float64
				if gr > 0 {
					up = recon.Data[base-g.Cols : base-g.Cols+cols]
				}
				for c, v := range src {
					var a, b, d float64
					if gr > 0 {
						a = up[c]
					}
					if c > 0 {
						b = rec[c-1]
						if gr > 0 {
							d = up[c-1]
						}
					} else if c0 > 0 {
						b = recon.Data[base-1]
						if gr > 0 {
							d = recon.Data[base-g.Cols-1]
						}
					}
					pred := a + b - d
					sym, delta, ok := q.Encode(v - pred)
					if !ok {
						symbols = append(symbols, quant.Escape)
						exact = append(exact, v)
						rec[c] = v
						continue
					}
					symbols = append(symbols, sym)
					rec[c] = pred + delta
				}
			}
		}
	}

	huff := huffman.Encode(symbols)
	sc.modes, sc.symbols = modes, symbols // retain grown capacity for reuse

	// assemble payload: header | modes | coeffs | exactCount | exact | huff
	var buf []byte
	buf = append(buf, magic[:]...)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(g.Rows))
	binary.LittleEndian.PutUint32(tmp[4:], uint32(g.Cols))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(absErr))
	buf = append(buf, tmp[:]...)
	buf = append(buf, modes...)
	for _, cf := range coeffs {
		binary.LittleEndian.PutUint32(tmp[:4], math.Float32bits(cf))
		buf = append(buf, tmp[:4]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(exact)))
	buf = append(buf, tmp[:4]...)
	for _, v := range exact {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		buf = append(buf, tmp[:]...)
	}
	buf = append(buf, huff...)
	return lossless.Compress(buf)
}

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("szlike: corrupt stream")

// Decompress implements compress.Compressor.
func (Compressor) Decompress(data []byte) (*grid.Grid, error) {
	raw, err := lossless.Decompress(data)
	if err != nil {
		return nil, fmt.Errorf("szlike: %w", err)
	}
	if len(raw) < 20 || raw[0] != magic[0] || raw[1] != magic[1] || raw[2] != magic[2] || raw[3] != magic[3] {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint32(raw[4:]))
	cols := int(binary.LittleEndian.Uint32(raw[8:]))
	absErr := math.Float64frombits(binary.LittleEndian.Uint64(raw[12:]))
	if rows <= 0 || cols <= 0 || absErr <= 0 || rows*cols > 1<<30 {
		return nil, ErrCorrupt
	}
	pos := 20
	nbr := (rows + BlockSize - 1) / BlockSize
	nbc := (cols + BlockSize - 1) / BlockSize
	nBlocks := nbr * nbc
	if len(raw) < pos+nBlocks {
		return nil, ErrCorrupt
	}
	modes := raw[pos : pos+nBlocks]
	pos += nBlocks
	nReg := 0
	for _, m := range modes {
		switch m {
		case modeRegression:
			nReg++
		case modeLorenzo:
		default:
			return nil, ErrCorrupt
		}
	}
	if len(raw) < pos+12*nReg+4 {
		return nil, ErrCorrupt
	}
	coeffs := make([]float64, 0, 3*nReg)
	for i := 0; i < 3*nReg; i++ {
		coeffs = append(coeffs, float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[pos:]))))
		pos += 4
	}
	nExact := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if nExact < 0 || len(raw) < pos+8*nExact {
		return nil, ErrCorrupt
	}
	exact := make([]float64, nExact)
	for i := range exact {
		exact[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:]))
		pos += 8
	}
	symbols, err := huffman.Decode(raw[pos:])
	if err != nil {
		return nil, fmt.Errorf("szlike: %w", err)
	}
	if len(symbols) != rows*cols {
		return nil, ErrCorrupt
	}

	q := quant.New(absErr)
	recon := grid.New(rows, cols)
	si, ei, ci, bi := 0, 0, 0, 0
	for br := 0; br < nbr; br++ {
		for bc := 0; bc < nbc; bc++ {
			r0, c0 := br*BlockSize, bc*BlockSize
			brows, bcols := BlockSize, BlockSize
			if r0+brows > rows {
				brows = rows - r0
			}
			if c0+bcols > cols {
				bcols = cols - c0
			}
			mode := modes[bi]
			bi++
			var b0, b1, b2 float64
			if mode == modeRegression {
				b0, b1, b2 = coeffs[ci], coeffs[ci+1], coeffs[ci+2]
				ci += 3
			}
			// Mirror of Compress's row-sliced kernel: same slices, same
			// predictor arithmetic, so reconstruction tracks the
			// compressor's mirror exactly.
			for r := 0; r < brows; r++ {
				gr := r0 + r
				base := gr*cols + c0
				rec := recon.Data[base : base+bcols]
				syms := symbols[si : si+bcols]
				si += bcols
				if mode == modeRegression {
					rowPred := b0 + b1*float64(r)
					for c, sym := range syms {
						if sym == quant.Escape {
							if ei >= len(exact) {
								return nil, ErrCorrupt
							}
							rec[c] = exact[ei]
							ei++
							continue
						}
						rec[c] = rowPred + b2*float64(c) + q.Decode(sym)
					}
					continue
				}
				var up []float64
				if gr > 0 {
					up = recon.Data[base-cols : base-cols+bcols]
				}
				for c, sym := range syms {
					if sym == quant.Escape {
						if ei >= len(exact) {
							return nil, ErrCorrupt
						}
						rec[c] = exact[ei]
						ei++
						continue
					}
					var a, b, d float64
					if gr > 0 {
						a = up[c]
					}
					if c > 0 {
						b = rec[c-1]
						if gr > 0 {
							d = up[c-1]
						}
					} else if c0 > 0 {
						b = recon.Data[base-1]
						if gr > 0 {
							d = recon.Data[base-cols-1]
						}
					}
					rec[c] = a + b - d + q.Decode(sym)
				}
			}
		}
	}
	if ei != len(exact) {
		return nil, ErrCorrupt
	}
	return recon, nil
}
