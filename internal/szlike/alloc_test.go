package szlike

import (
	"testing"

	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

// TestRoundTripAllocs pins the zero-allocation work on the measurement
// loop: with the compressor's working set pooled (reconstruction
// mirror, symbol stream, block modes) and the Huffman tree
// slab-allocated, a full-scale 128×128 round trip sits well under 400
// allocations. The pre-pooling pipeline spent ~5000 on the same input
// (one per Huffman tree node alone), so the bound has wide headroom
// against environment noise yet catches any regression to per-node or
// per-call allocation.
func TestRoundTripAllocs(t *testing.T) {
	rng := xrand.New(3)
	g := grid.New(128, 128)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	c := Compressor{}
	if _, err := c.Compress(g, 1e-3); err != nil { // warm the pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		data, err := c.Compress(g, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decompress(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 400 {
		t.Fatalf("round trip allocates %v per op, want <= 400", allocs)
	}
}
