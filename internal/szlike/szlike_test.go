package szlike

import (
	"math"
	"testing"
	"testing/quick"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func roundtrip(t *testing.T, g *grid.Grid, eb float64) *grid.Grid {
	t.Helper()
	c := Compressor{}
	data, err := c.Compress(g, eb)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rows != g.Rows || dec.Cols != g.Cols {
		t.Fatalf("shape changed: %dx%d -> %dx%d", g.Rows, g.Cols, dec.Rows, dec.Cols)
	}
	maxErr, err := g.MaxAbsDiff(dec)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > eb*(1+1e-12) {
		t.Fatalf("bound violated: maxErr %v > eb %v", maxErr, eb)
	}
	return dec
}

func TestName(t *testing.T) {
	if (Compressor{}).Name() != "sz-like" {
		t.Fatal("name changed")
	}
	if (Compressor{Mode: PredictorLorenzoOnly}).Name() != "sz-like-lorenzo" {
		t.Fatal("lorenzo name changed")
	}
	if (Compressor{Mode: PredictorRegressionOnly}).Name() != "sz-like-regression" {
		t.Fatal("regression name changed")
	}
}

func TestPredictorModesRoundtrip(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 48, Cols: 48, Range: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[PredictorMode]int{}
	for _, mode := range []PredictorMode{PredictorAuto, PredictorLorenzoOnly, PredictorRegressionOnly} {
		c := Compressor{Mode: mode}
		data, err := c.Compress(f, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decompress(data)
		if err != nil {
			t.Fatal(err)
		}
		maxErr, err := f.MaxAbsDiff(dec)
		if err != nil {
			t.Fatal(err)
		}
		if maxErr > 1e-3*(1+1e-12) {
			t.Fatalf("mode %v violated bound: %v", mode, maxErr)
		}
		sizes[mode] = len(data)
	}
	// auto must be at least as good as the best single predictor, up to
	// the one-byte-per-block mode overhead
	best := sizes[PredictorLorenzoOnly]
	if sizes[PredictorRegressionOnly] < best {
		best = sizes[PredictorRegressionOnly]
	}
	if sizes[PredictorAuto] > best+best/10 {
		t.Fatalf("auto (%d B) much worse than best single predictor (%d B)", sizes[PredictorAuto], best)
	}
}

func TestRoundtripSmooth(t *testing.T) {
	g := grid.FromFunc(50, 70, func(r, c int) float64 {
		return math.Sin(float64(r)/9) + math.Cos(float64(c)/11)
	})
	for _, eb := range []float64{1e-5, 1e-3, 1e-1} {
		roundtrip(t, g, eb)
	}
}

func TestRoundtripNoise(t *testing.T) {
	rng := xrand.New(1)
	g := grid.FromFunc(33, 47, func(r, c int) float64 { return rng.NormFloat64() * 100 })
	roundtrip(t, g, 1e-4)
}

func TestRoundtripConstant(t *testing.T) {
	g := grid.FromFunc(20, 20, func(r, c int) float64 { return 3.75 })
	c := Compressor{}
	data, err := c.Compress(g, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(g.SizeBytes()) / float64(len(data)); ratio < 20 {
		t.Fatalf("constant field ratio only %.1f", ratio)
	}
	roundtrip(t, g, 1e-6)
}

func TestOddSizes(t *testing.T) {
	rng := xrand.New(2)
	for _, sz := range [][2]int{{1, 1}, {1, 40}, {40, 1}, {3, 5}, {16, 16}, {17, 33}, {15, 16}} {
		g := grid.FromFunc(sz[0], sz[1], func(r, c int) float64 { return rng.NormFloat64() })
		roundtrip(t, g, 1e-3)
	}
}

func TestEmptyAndBadBound(t *testing.T) {
	c := Compressor{}
	if _, err := c.Compress(grid.New(0, 0), 1e-3); err == nil {
		t.Fatal("empty field must error")
	}
	if _, err := c.Compress(grid.New(4, 4), 0); err == nil {
		t.Fatal("eb=0 must error")
	}
}

func TestExtremeValues(t *testing.T) {
	g, _ := grid.FromData(2, 4, []float64{1e300, -1e300, 1e-300, 0, 5, -5, 1e18, -1e-18})
	roundtrip(t, g, 1e-6)
}

func TestSmoothBeatsNoise(t *testing.T) {
	c := Compressor{}
	smooth, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	noise := grid.FromFunc(64, 64, func(r, c int) float64 { return rng.NormFloat64() })
	ds, err := c.Compress(smooth, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := c.Compress(noise, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) >= len(dn) {
		t.Fatalf("smooth (%d B) not smaller than noise (%d B)", len(ds), len(dn))
	}
}

func TestRatioIncreasesWithBound(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := Compressor{}
	var sizes []int
	for _, eb := range []float64{1e-6, 1e-4, 1e-2} {
		d, err := c.Compress(f, eb)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(d))
	}
	if !(sizes[0] > sizes[1] && sizes[1] > sizes[2]) {
		t.Fatalf("sizes not decreasing with bound: %v", sizes)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	c := Compressor{}
	if _, err := c.Decompress([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage must error")
	}
	data, err := c.Compress(grid.FromFunc(8, 8, func(r, cc int) float64 { return float64(r + cc) }), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(data[:len(data)/2]); err == nil {
		t.Fatal("truncated stream must error")
	}
}

func TestQuickBoundProperty(t *testing.T) {
	c := Compressor{}
	f := func(seed uint64, ebExp uint8, rough bool) bool {
		eb := math.Pow(10, -1-float64(ebExp%6)) // 1e-1 .. 1e-6
		rng := xrand.New(seed)
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		var g *grid.Grid
		if rough {
			g = grid.FromFunc(rows, cols, func(r, cc int) float64 { return rng.NormFloat64() * 10 })
		} else {
			fr := 1 + rng.Float64()*10
			g = grid.FromFunc(rows, cols, func(r, cc int) float64 {
				return math.Sin(float64(r)/fr) * math.Cos(float64(cc)/fr)
			})
		}
		data, err := c.Compress(g, eb)
		if err != nil {
			return false
		}
		dec, err := c.Decompress(data)
		if err != nil {
			return false
		}
		maxErr, err := g.MaxAbsDiff(dec)
		return err == nil && maxErr <= eb*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRegressionCoeffsFitPlane(t *testing.T) {
	g := grid.FromFunc(16, 16, func(r, c int) float64 {
		return 2 + 0.5*float64(r) - 0.25*float64(c)
	})
	b0, b1, b2 := regressionCoeffs(g, 0, 0, 16, 16)
	if math.Abs(b0-2) > 1e-5 || math.Abs(b1-0.5) > 1e-6 || math.Abs(b2+0.25) > 1e-6 {
		t.Fatalf("plane fit %v %v %v", b0, b1, b2)
	}
}

func TestLorenzoPredictExactOnPlane(t *testing.T) {
	// Lorenzo reproduces any plane exactly away from borders
	g := grid.FromFunc(8, 8, func(r, c int) float64 {
		return 1 + 3*float64(r) + 7*float64(c)
	})
	for r := 1; r < 8; r++ {
		for c := 1; c < 8; c++ {
			if p := lorenzoPredict(g, r, c); math.Abs(p-g.At(r, c)) > 1e-12 {
				t.Fatalf("lorenzo at (%d,%d): %v want %v", r, c, p, g.At(r, c))
			}
		}
	}
}
