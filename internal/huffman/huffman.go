// Package huffman implements a canonical Huffman coder over 16-bit
// symbols. It is the entropy stage of the SZ-like and MGARD-like
// compressors, mirroring the Huffman pass of the original SZ pipeline.
//
// The encoded stream is self-describing: a compact header enumerates
// the (symbol, code length) pairs of the canonical code followed by the
// symbol count and the bit payload, so Decode needs no side channel.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"lossycorr/internal/bitstream"
)

// MaxCodeLen caps code lengths; with <= 65536 symbols and the package's
// length-limiting rebalancing pass, 32 bits is always achievable.
const MaxCodeLen = 32

type node struct {
	freq        uint64
	symbol      uint16
	leaf        bool
	left, right *node
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	// tie-break on symbol for determinism
	return h[i].symbol < h[j].symbol
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// codeLengths computes Huffman code lengths from frequencies, then
// clamps to MaxCodeLen with a simple Kraft-sum repair pass.
func codeLengths(freq map[uint16]uint64) map[uint16]uint8 {
	lengths := make(map[uint16]uint8, len(freq))
	switch len(freq) {
	case 0:
		return lengths
	case 1:
		for s := range freq {
			lengths[s] = 1
		}
		return lengths
	}
	// Slab-allocate the tree: a Huffman tree over n leaves has exactly
	// 2n−1 nodes, so one allocation sized up front replaces one
	// allocation per node (the capacity is never exceeded, keeping the
	// interior pointers stable).
	nodes := make([]node, 0, 2*len(freq)-1)
	alloc := func(n node) *node {
		nodes = append(nodes, n)
		return &nodes[len(nodes)-1]
	}
	h := make(nodeHeap, 0, len(freq))
	for s, f := range freq {
		h = append(h, alloc(node{freq: f, symbol: s, leaf: true}))
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*node)
		b := heap.Pop(&h).(*node)
		heap.Push(&h, alloc(node{freq: a.freq + b.freq, symbol: minSym(a, b), left: a, right: b}))
	}
	root := h[0]
	var walk func(n *node, depth uint8)
	walk = func(n *node, depth uint8) {
		if n.leaf {
			if depth == 0 {
				depth = 1
			}
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	clampLengths(lengths)
	return lengths
}

func minSym(a, b *node) uint16 {
	if a.symbol < b.symbol {
		return a.symbol
	}
	return b.symbol
}

// clampLengths enforces MaxCodeLen while keeping the Kraft inequality
// tight enough for a valid prefix code.
func clampLengths(lengths map[uint16]uint8) {
	over := false
	for _, l := range lengths {
		if l > MaxCodeLen {
			over = true
			break
		}
	}
	if !over {
		return
	}
	for s, l := range lengths {
		if l > MaxCodeLen {
			lengths[s] = MaxCodeLen
		}
	}
	// repair Kraft sum K = Σ 2^-l <= 1 by lengthening the shortest codes
	kraft := func() float64 {
		var k float64
		for _, l := range lengths {
			k += 1 / float64(uint64(1)<<l)
		}
		return k
	}
	for kraft() > 1 {
		// lengthen the symbol with the shortest length < MaxCodeLen
		var best uint16
		bestLen := uint8(MaxCodeLen + 1)
		for s, l := range lengths {
			if l < bestLen {
				best, bestLen = s, l
			}
		}
		if bestLen >= MaxCodeLen {
			break
		}
		lengths[best] = bestLen + 1
	}
}

// canonical assigns canonical codes (shorter lengths first, then symbol
// order) given lengths. Returned map is symbol → (code, length).
type codeEntry struct {
	code uint32
	len  uint8
}

func canonical(lengths map[uint16]uint8) map[uint16]codeEntry {
	type sl struct {
		sym uint16
		l   uint8
	}
	list := make([]sl, 0, len(lengths))
	for s, l := range lengths {
		list = append(list, sl{s, l})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].l != list[j].l {
			return list[i].l < list[j].l
		}
		return list[i].sym < list[j].sym
	})
	codes := make(map[uint16]codeEntry, len(list))
	var code uint32
	var prevLen uint8
	for _, e := range list {
		code <<= e.l - prevLen
		codes[e.sym] = codeEntry{code: code, len: e.l}
		code++
		prevLen = e.l
	}
	return codes
}

// Encode compresses symbols into a self-describing byte stream.
func Encode(symbols []uint16) []byte {
	freq := make(map[uint16]uint64)
	for _, s := range symbols {
		freq[s]++
	}
	lengths := codeLengths(freq)
	codes := canonical(lengths)

	// header: numSymbols(u32), numDistinct(u32), then (symbol u16, len u8)*
	hdr := make([]byte, 8, 8+3*len(lengths))
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(symbols)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(lengths)))
	type sl struct {
		sym uint16
		l   uint8
	}
	list := make([]sl, 0, len(lengths))
	for s, l := range lengths {
		list = append(list, sl{s, l})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].sym < list[j].sym })
	for _, e := range list {
		var b [3]byte
		binary.LittleEndian.PutUint16(b[0:], e.sym)
		b[2] = e.l
		hdr = append(hdr, b[:]...)
	}

	w := bitstream.NewWriter()
	for _, s := range symbols {
		e := codes[s]
		w.WriteBits(uint64(e.code), uint(e.len))
	}
	return append(hdr, w.Bytes()...)
}

// ErrCorrupt reports a malformed Huffman stream.
var ErrCorrupt = errors.New("huffman: corrupt stream")

// decodeTable is the dense canonical decoder state: per code length,
// the canonical code of that length's first symbol and where that
// symbol sits in the (length, symbol)-sorted symbol array. A code of
// length l decodes as syms[offset[l] + (code − firstCode[l])] whenever
// code − firstCode[l] < count[l] — the classic canonical-Huffman
// first-code/first-symbol walk, with no per-bit map lookups and one
// flat symbol array instead of per-entry hashing.
type decodeTable struct {
	maxLen    int
	firstCode [MaxCodeLen + 1]uint64
	count     [MaxCodeLen + 1]int
	offset    [MaxCodeLen + 1]int
	syms      []uint16
}

// newDecodeTable builds the dense table from the (symbol → length)
// map, sorting symbols canonically (shorter lengths first, then symbol
// order). The code assignment it encodes is exactly the one
// canonical() produces — consecutive codes within a length, shifted
// left across lengths — so the walk decodes precisely the codes the
// old map-keyed decoder accepted.
func newDecodeTable(lengths map[uint16]uint8) *decodeTable {
	t := &decodeTable{}
	type sl struct {
		sym uint16
		l   uint8
	}
	list := make([]sl, 0, len(lengths))
	for s, l := range lengths {
		list = append(list, sl{s, l})
		if int(l) > t.maxLen {
			t.maxLen = int(l)
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].l != list[j].l {
			return list[i].l < list[j].l
		}
		return list[i].sym < list[j].sym
	})
	t.syms = make([]uint16, len(list))
	for i, e := range list {
		t.count[e.l]++
		t.syms[i] = e.sym
	}
	var code uint64
	pos := 0
	for l := 1; l <= t.maxLen; l++ {
		t.firstCode[l] = code
		t.offset[l] = pos
		pos += t.count[l]
		code = (code + uint64(t.count[l])) << 1
	}
	return t
}

// Decode reverses Encode, walking the dense canonical table.
func Decode(data []byte) ([]uint16, error) {
	if len(data) < 8 {
		return nil, ErrCorrupt
	}
	count := int(binary.LittleEndian.Uint32(data[0:]))
	distinct := int(binary.LittleEndian.Uint32(data[4:]))
	if count < 0 || distinct < 0 || distinct > 1<<16 {
		return nil, ErrCorrupt
	}
	if len(data) < 8+3*distinct {
		return nil, ErrCorrupt
	}
	lengths := make(map[uint16]uint8, distinct)
	for i := 0; i < distinct; i++ {
		off := 8 + 3*i
		sym := binary.LittleEndian.Uint16(data[off:])
		l := data[off+2]
		if l == 0 || l > MaxCodeLen {
			return nil, ErrCorrupt
		}
		lengths[sym] = l
	}
	if count == 0 {
		return []uint16{}, nil
	}
	if distinct == 0 {
		return nil, ErrCorrupt
	}
	payload := data[8+3*distinct:]
	// Every symbol consumes at least one payload bit, so a declared
	// count beyond the payload's bit budget is provably corrupt —
	// reject it before allocating count elements (a 4-byte header
	// field could otherwise demand a multi-GB slice).
	if count > 8*len(payload) {
		return nil, ErrCorrupt
	}
	tbl := newDecodeTable(lengths)
	r := bitstream.NewReader(payload)
	out := make([]uint16, 0, count)
	for len(out) < count {
		var code uint64
		found := false
		for l := 1; l <= tbl.maxLen; l++ {
			b, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("huffman: truncated payload: %w", err)
			}
			code = code<<1 | uint64(b)
			if d := code - tbl.firstCode[l]; code >= tbl.firstCode[l] && d < uint64(tbl.count[l]) {
				out = append(out, tbl.syms[tbl.offset[l]+int(d)])
				found = true
				break
			}
		}
		if !found {
			return nil, ErrCorrupt
		}
	}
	return out, nil
}
