package huffman

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"lossycorr/internal/bitstream"
	"lossycorr/internal/xrand"
)

func roundtrip(t *testing.T, symbols []uint16) {
	t.Helper()
	enc := Encode(symbols)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(symbols) {
		t.Fatalf("length %d want %d", len(dec), len(symbols))
	}
	for i := range dec {
		if dec[i] != symbols[i] {
			t.Fatalf("symbol %d: got %d want %d", i, dec[i], symbols[i])
		}
	}
}

func TestEmpty(t *testing.T) { roundtrip(t, []uint16{}) }

func TestSingleSymbol(t *testing.T) {
	roundtrip(t, []uint16{7})
	roundtrip(t, []uint16{7, 7, 7, 7, 7, 7})
}

func TestTwoSymbols(t *testing.T) {
	roundtrip(t, []uint16{0, 65535, 0, 0, 65535})
}

func TestAscending(t *testing.T) {
	s := make([]uint16, 1000)
	for i := range s {
		s[i] = uint16(i % 300)
	}
	roundtrip(t, s)
}

func TestSkewedDistributionCompresses(t *testing.T) {
	// 95% one symbol: entropy ≈ 0.3 bits/symbol, so payload must be far
	// below 16 bits/symbol.
	rng := xrand.New(3)
	s := make([]uint16, 20000)
	for i := range s {
		if rng.Float64() < 0.95 {
			s[i] = 100
		} else {
			s[i] = uint16(rng.Intn(50))
		}
	}
	enc := Encode(s)
	if len(enc) > len(s)/2 {
		t.Fatalf("skewed stream encoded to %d bytes for %d symbols", len(enc), len(s))
	}
	roundtrip(t, s)
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(s []uint16) bool {
		enc := Encode(s)
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		if len(dec) != len(s) {
			return false
		}
		for i := range s {
			if dec[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil stream should error")
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short stream should error")
	}
	enc := Encode([]uint16{1, 2, 3, 1, 2, 3, 9, 9})
	// truncate the payload
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated payload should error")
	}
	// corrupt the declared symbol count upward
	bad := append([]byte(nil), enc...)
	bad[0] = 0xff
	if _, err := Decode(bad); err == nil {
		t.Fatal("inflated count should error")
	}
}

func TestHeaderDeterminism(t *testing.T) {
	s := []uint16{5, 1, 5, 2, 5, 3}
	a := Encode(s)
	b := Encode(s)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestManyDistinctSymbols(t *testing.T) {
	s := make([]uint16, 5000)
	rng := xrand.New(8)
	for i := range s {
		s[i] = uint16(rng.Intn(65536))
	}
	roundtrip(t, s)
}

// decodeMapRef is the pre-dense-table decoder, retained verbatim: a
// map keyed by (length, code) walked bit by bit. The dense canonical
// decoder is pinned byte-identical against it below.
func decodeMapRef(data []byte) ([]uint16, error) {
	if len(data) < 8 {
		return nil, ErrCorrupt
	}
	count := int(binary.LittleEndian.Uint32(data[0:]))
	distinct := int(binary.LittleEndian.Uint32(data[4:]))
	if count < 0 || distinct < 0 || distinct > 1<<16 {
		return nil, ErrCorrupt
	}
	if len(data) < 8+3*distinct {
		return nil, ErrCorrupt
	}
	lengths := make(map[uint16]uint8, distinct)
	for i := 0; i < distinct; i++ {
		off := 8 + 3*i
		sym := binary.LittleEndian.Uint16(data[off:])
		l := data[off+2]
		if l == 0 || l > MaxCodeLen {
			return nil, ErrCorrupt
		}
		lengths[sym] = l
	}
	if count == 0 {
		return []uint16{}, nil
	}
	if distinct == 0 {
		return nil, ErrCorrupt
	}
	codes := canonical(lengths)
	type key struct {
		len  uint8
		code uint32
	}
	table := make(map[key]uint16, len(codes))
	maxLen := uint8(0)
	for s, e := range codes {
		table[key{e.len, e.code}] = s
		if e.len > maxLen {
			maxLen = e.len
		}
	}
	r := bitstream.NewReader(data[8+3*distinct:])
	out := make([]uint16, 0, count)
	for len(out) < count {
		var code uint32
		var l uint8
		found := false
		for l < maxLen {
			b, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			code = code<<1 | uint32(b)
			l++
			if s, ok := table[key{l, code}]; ok {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, ErrCorrupt
		}
	}
	return out, nil
}

// refStreams is the corpus the dense decoder is pinned against:
// empty, single-symbol (one occurrence and repeated), two-symbol,
// uniform, skewed, and full-range random streams.
func refStreams() [][]uint16 {
	streams := [][]uint16{
		{},
		{7},
		{7, 7, 7, 7, 7},
		{0, 65535, 0, 0, 65535},
	}
	rng := xrand.New(17)
	for c := 0; c < 30; c++ {
		n := rng.Intn(3000)
		alphabet := 1 + rng.Intn(1<<uint(1+rng.Intn(16)))
		s := make([]uint16, n)
		for i := range s {
			if c%3 == 0 && rng.Float64() < 0.9 {
				s[i] = uint16(alphabet / 2) // heavy skew every third case
			} else {
				s[i] = uint16(rng.Intn(alphabet))
			}
		}
		streams = append(streams, s)
	}
	return streams
}

// TestDenseDecoderMatchesMapRef pins the dense canonical decoder
// byte-identical against the retained map-keyed decoder over the
// reference corpus, and on truncated streams checks both fail.
func TestDenseDecoderMatchesMapRef(t *testing.T) {
	for ci, s := range refStreams() {
		enc := Encode(s)
		want, wantErr := decodeMapRef(enc)
		got, gotErr := Decode(enc)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("case %d: error mismatch: ref %v vs dense %v", ci, wantErr, gotErr)
		}
		if len(got) != len(want) {
			t.Fatalf("case %d: length %d vs ref %d", ci, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %d symbol %d: %d vs ref %d", ci, i, got[i], want[i])
			}
		}
		if len(enc) > 9 {
			trunc := enc[:len(enc)-1]
			_, refErr := decodeMapRef(trunc)
			_, denseErr := Decode(trunc)
			if (refErr == nil) != (denseErr == nil) {
				t.Fatalf("case %d truncated: ref err %v vs dense err %v", ci, refErr, denseErr)
			}
		}
	}
}

// FuzzRoundTrip fuzzes Encode→Decode over arbitrary symbol streams
// (bytes pairwise-widened to uint16), including the empty and
// single-symbol seeds, and cross-checks the dense decoder against the
// map reference on every input.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x07, 0x00})
	f.Add([]byte{0x07, 0x00, 0x07, 0x00, 0x07, 0x00})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, raw []byte) {
		s := make([]uint16, len(raw)/2)
		for i := range s {
			s[i] = uint16(raw[2*i]) | uint16(raw[2*i+1])<<8
		}
		enc := Encode(s)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if len(dec) != len(s) {
			t.Fatalf("length %d want %d", len(dec), len(s))
		}
		for i := range s {
			if dec[i] != s[i] {
				t.Fatalf("symbol %d: got %d want %d", i, dec[i], s[i])
			}
		}
		ref, refErr := decodeMapRef(enc)
		if refErr != nil {
			t.Fatalf("map reference failed on valid stream: %v", refErr)
		}
		for i := range ref {
			if dec[i] != ref[i] {
				t.Fatalf("dense decoder diverges from map reference at %d", i)
			}
		}
	})
}

// FuzzDecodeArbitrary feeds arbitrary bytes to Decode: it may reject
// them, but must never panic, and whenever both decoders accept, the
// outputs must agree.
func FuzzDecodeArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode([]uint16{1, 2, 3, 1, 2, 3, 9}))
	f.Add([]byte{5, 0, 0, 0, 2, 0, 0, 0, 1, 0, 3, 2, 0, 5, 0xaa, 0xbb})
	f.Fuzz(func(t *testing.T, raw []byte) {
		got, gotErr := Decode(raw)
		ref, refErr := decodeMapRef(raw)
		if (gotErr == nil) != (refErr == nil) {
			t.Fatalf("error mismatch: dense %v vs ref %v", gotErr, refErr)
		}
		if gotErr == nil {
			if len(got) != len(ref) {
				t.Fatalf("length %d vs ref %d", len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("output diverges at %d", i)
				}
			}
		}
	})
}

// BenchmarkDecode measures the decompression hot loop the dense table
// exists for, against the retained map-keyed reference.
func BenchmarkDecode(b *testing.B) {
	rng := xrand.New(3)
	s := make([]uint16, 1<<16)
	for i := range s {
		if rng.Float64() < 0.9 {
			s[i] = 42
		} else {
			s[i] = uint16(rng.Intn(512))
		}
	}
	enc := Encode(s)
	b.Run("dense", func(b *testing.B) {
		b.SetBytes(int64(2 * len(s)))
		for i := 0; i < b.N; i++ {
			if _, err := Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mapref", func(b *testing.B) {
		b.SetBytes(int64(2 * len(s)))
		for i := 0; i < b.N; i++ {
			if _, err := decodeMapRef(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
