package huffman

import (
	"bytes"
	"testing"
	"testing/quick"

	"lossycorr/internal/xrand"
)

func roundtrip(t *testing.T, symbols []uint16) {
	t.Helper()
	enc := Encode(symbols)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(symbols) {
		t.Fatalf("length %d want %d", len(dec), len(symbols))
	}
	for i := range dec {
		if dec[i] != symbols[i] {
			t.Fatalf("symbol %d: got %d want %d", i, dec[i], symbols[i])
		}
	}
}

func TestEmpty(t *testing.T) { roundtrip(t, []uint16{}) }

func TestSingleSymbol(t *testing.T) {
	roundtrip(t, []uint16{7})
	roundtrip(t, []uint16{7, 7, 7, 7, 7, 7})
}

func TestTwoSymbols(t *testing.T) {
	roundtrip(t, []uint16{0, 65535, 0, 0, 65535})
}

func TestAscending(t *testing.T) {
	s := make([]uint16, 1000)
	for i := range s {
		s[i] = uint16(i % 300)
	}
	roundtrip(t, s)
}

func TestSkewedDistributionCompresses(t *testing.T) {
	// 95% one symbol: entropy ≈ 0.3 bits/symbol, so payload must be far
	// below 16 bits/symbol.
	rng := xrand.New(3)
	s := make([]uint16, 20000)
	for i := range s {
		if rng.Float64() < 0.95 {
			s[i] = 100
		} else {
			s[i] = uint16(rng.Intn(50))
		}
	}
	enc := Encode(s)
	if len(enc) > len(s)/2 {
		t.Fatalf("skewed stream encoded to %d bytes for %d symbols", len(enc), len(s))
	}
	roundtrip(t, s)
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(s []uint16) bool {
		enc := Encode(s)
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		if len(dec) != len(s) {
			return false
		}
		for i := range s {
			if dec[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil stream should error")
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short stream should error")
	}
	enc := Encode([]uint16{1, 2, 3, 1, 2, 3, 9, 9})
	// truncate the payload
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated payload should error")
	}
	// corrupt the declared symbol count upward
	bad := append([]byte(nil), enc...)
	bad[0] = 0xff
	if _, err := Decode(bad); err == nil {
		t.Fatal("inflated count should error")
	}
}

func TestHeaderDeterminism(t *testing.T) {
	s := []uint16{5, 1, 5, 2, 5, 3}
	a := Encode(s)
	b := Encode(s)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestManyDistinctSymbols(t *testing.T) {
	s := make([]uint16, 5000)
	rng := xrand.New(8)
	for i := range s {
		s[i] = uint16(rng.Intn(65536))
	}
	roundtrip(t, s)
}
