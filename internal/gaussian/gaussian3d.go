package gaussian

import (
	"fmt"
	"math"

	"lossycorr/internal/fft"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

// Params3D configures a 3D single-range Gaussian field — the paper's
// future-work "design of the statistics to a 3D context" needs 3D data
// with controllable correlation, and Miranda itself is natively 3D.
type Params3D struct {
	Nz, Ny, Nx int
	Range      float64
	Sigma2     float64
	Seed       uint64
}

func (p Params3D) validate() error {
	if p.Nz <= 0 || p.Ny <= 0 || p.Nx <= 0 {
		return fmt.Errorf("gaussian: non-positive volume size %dx%dx%d", p.Nz, p.Ny, p.Nx)
	}
	if p.Range <= 0 {
		return fmt.Errorf("gaussian: non-positive range %v", p.Range)
	}
	if p.Sigma2 < 0 {
		return fmt.Errorf("gaussian: negative variance %v", p.Sigma2)
	}
	return nil
}

// embedDim returns the power-of-two torus size for one dimension.
func embedDim(n int, rang float64) int {
	pad := 2 * n
	if need := int(6 * rang); need > pad {
		pad = need
	}
	return fft.NextPow2(pad)
}

// Generate3D draws a stationary 3D Gaussian field with
// squared-exponential covariance Σ(d)=σ²·exp(−|d|²/a²) by circulant
// embedding on a 3D torus (the direct extension of the 2D sampler).
func Generate3D(p Params3D) (*grid.Volume, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	sigma2 := p.Sigma2
	if sigma2 == 0 {
		sigma2 = 1
	}
	m := embedDim(p.Nz, p.Range)
	n := embedDim(p.Ny, p.Range)
	q := embedDim(p.Nx, p.Range)
	buf := make([]complex128, m*n*q)
	inv2 := 1 / (p.Range * p.Range)
	for z := 0; z < m; z++ {
		dz := float64(z)
		if z > m/2 {
			dz = float64(m - z)
		}
		for y := 0; y < n; y++ {
			dy := float64(y)
			if y > n/2 {
				dy = float64(n - y)
			}
			base := (z*n + y) * q
			for x := 0; x < q; x++ {
				dx := float64(x)
				if x > q/2 {
					dx = float64(q - x)
				}
				buf[base+x] = complex(math.Exp(-(dz*dz+dy*dy+dx*dx)*inv2), 0)
			}
		}
	}
	if err := fft.Forward3D(buf, m, n, q); err != nil {
		return nil, err
	}
	sqrtLam := make([]float64, len(buf))
	for i, v := range buf {
		lam := real(v)
		if lam < 0 {
			lam = 0
		}
		sqrtLam[i] = math.Sqrt(lam)
	}
	rng := xrand.New(p.Seed)
	for i := range buf {
		buf[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * complex(sqrtLam[i], 0)
	}
	if err := fft.Inverse3D(buf, m, n, q); err != nil {
		return nil, err
	}
	scale := math.Sqrt(sigma2) * math.Sqrt(float64(len(buf)))
	out := grid.NewVolume(p.Nz, p.Ny, p.Nx)
	for z := 0; z < p.Nz; z++ {
		for y := 0; y < p.Ny; y++ {
			for x := 0; x < p.Nx; x++ {
				out.Set(z, y, x, real(buf[(z*n+y)*q+x])*scale)
			}
		}
	}
	return out, nil
}
