// Package gaussian samples stationary 2D Gaussian random fields with
// squared-exponential covariance by exact circulant embedding — the
// synthetic "ideal" datasets of the paper (Section IV-A):
//
//	Σ(x_i, x_j) = σ²·exp(−|x_i−x_j|²/a²)
//
// with known, controllable correlation range a. Both single-range
// fields and equal-contribution multi-range fields are provided.
//
// Circulant embedding: the covariance kernel is embedded on a torus at
// least twice the field size; the torus covariance matrix is
// block-circulant, so its eigenvalues are the 2D DFT of the kernel's
// first row. Sampling multiplies complex white noise by the square
// root of the eigenvalues and inverse-transforms; the real and
// imaginary parts are two independent exact samples. The squared
// exponential decays so fast that negative embedding eigenvalues are
// negligible at 2× padding; they are clamped to zero and the clamp mass
// is exposed for tests.
package gaussian

import (
	"fmt"
	"math"

	"lossycorr/internal/fft"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

// Params configures a single-range field.
type Params struct {
	Rows, Cols int
	Range      float64 // correlation range a (grid-point units), > 0
	Sigma2     float64 // marginal variance σ²; 0 means 1
	Seed       uint64
}

func (p Params) validate() error {
	if p.Rows <= 0 || p.Cols <= 0 {
		return fmt.Errorf("gaussian: non-positive field size %dx%d", p.Rows, p.Cols)
	}
	if p.Range <= 0 {
		return fmt.Errorf("gaussian: non-positive range %v", p.Range)
	}
	if p.Sigma2 < 0 {
		return fmt.Errorf("gaussian: negative variance %v", p.Sigma2)
	}
	return nil
}

// Sampler holds the precomputed embedding spectrum for one covariance
// so many independent fields can be drawn cheaply.
type Sampler struct {
	rows, cols int
	m, n       int       // embedding (torus) size, powers of two
	sqrtLam    []float64 // sqrt of clamped eigenvalues, length m*n
	clampMass  float64   // |negative eigenvalue mass| / total, diagnostics
	sigma      float64
}

// NewSampler builds the embedding for the given parameters.
func NewSampler(p Params) (*Sampler, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	sigma2 := p.Sigma2
	if sigma2 == 0 {
		sigma2 = 1
	}
	// Torus at least 2× each dimension, rounded to powers of two. For
	// ranges comparable to the field size, pad further so the kernel
	// wraps negligibly.
	pad := 2 * p.Rows
	if need := int(6 * p.Range); need > pad {
		pad = need
	}
	m := fft.NextPow2(pad)
	pad = 2 * p.Cols
	if need := int(6 * p.Range); need > pad {
		pad = need
	}
	n := fft.NextPow2(pad)

	// Kernel first row on the torus: distance is the wrapped distance.
	buf := make([]complex128, m*n)
	inv2 := 1 / (p.Range * p.Range)
	for r := 0; r < m; r++ {
		dr := float64(r)
		if r > m/2 {
			dr = float64(m - r)
		}
		for c := 0; c < n; c++ {
			dc := float64(c)
			if c > n/2 {
				dc = float64(n - c)
			}
			buf[r*n+c] = complex(math.Exp(-(dr*dr+dc*dc)*inv2), 0)
		}
	}
	if err := fft.Forward2D(buf, m, n); err != nil {
		return nil, err
	}
	sqrtLam := make([]float64, m*n)
	var neg, tot float64
	for i, v := range buf {
		lam := real(v)
		tot += math.Abs(lam)
		if lam < 0 {
			neg += -lam
			lam = 0
		}
		sqrtLam[i] = math.Sqrt(lam)
	}
	clamp := 0.0
	if tot > 0 {
		clamp = neg / tot
	}
	return &Sampler{
		rows: p.Rows, cols: p.Cols,
		m: m, n: n,
		sqrtLam:   sqrtLam,
		clampMass: clamp,
		sigma:     math.Sqrt(sigma2),
	}, nil
}

// ClampMass reports the relative magnitude of negative embedding
// eigenvalues that were clamped (should be ~0 for valid embeddings).
func (s *Sampler) ClampMass() float64 { return s.clampMass }

// SamplePair draws two independent fields from one complex transform
// (the real and imaginary parts of the embedded sample).
func (s *Sampler) SamplePair(rng *xrand.Rand) (*grid.Grid, *grid.Grid, error) {
	mn := s.m * s.n
	buf := make([]complex128, mn)
	for i := 0; i < mn; i++ {
		// complex white noise with E|ξ|² = 1 per component pair such
		// that Re and Im of the result are each N(0, C): ξ = (g1 + i·g2)
		// with g1, g2 ~ N(0,1).
		buf[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * complex(s.sqrtLam[i], 0)
	}
	if err := fft.Inverse2D(buf, s.m, s.n); err != nil {
		return nil, nil, err
	}
	// z = sqrt(MN) · IFFT2(sqrt(λ)·ξ) has Re, Im ~ N(0, C) independent.
	scale := s.sigma * math.Sqrt(float64(mn))
	a := grid.New(s.rows, s.cols)
	b := grid.New(s.rows, s.cols)
	for r := 0; r < s.rows; r++ {
		for c := 0; c < s.cols; c++ {
			v := buf[r*s.n+c]
			a.Set(r, c, real(v)*scale)
			b.Set(r, c, imag(v)*scale)
		}
	}
	return a, b, nil
}

// Sample draws one field.
func (s *Sampler) Sample(rng *xrand.Rand) (*grid.Grid, error) {
	a, _, err := s.SamplePair(rng)
	return a, err
}

// Generate draws a single-range field in one call.
func Generate(p Params) (*grid.Grid, error) {
	s, err := NewSampler(p)
	if err != nil {
		return nil, err
	}
	return s.Sample(xrand.New(p.Seed))
}

// MultiParams configures a multi-range field: independent fields with
// the listed ranges are averaged with equal weights 1/√k so the total
// variance stays σ² — the paper's "two distinct correlation ranges
// contributing equally to the total field".
type MultiParams struct {
	Rows, Cols int
	Ranges     []float64
	Sigma2     float64
	Seed       uint64
}

// GenerateMulti draws an equal-contribution multi-range field.
func GenerateMulti(p MultiParams) (*grid.Grid, error) {
	if len(p.Ranges) == 0 {
		return nil, fmt.Errorf("gaussian: no ranges given")
	}
	rng := xrand.New(p.Seed)
	total := grid.New(p.Rows, p.Cols)
	w := 1 / math.Sqrt(float64(len(p.Ranges)))
	for _, a := range p.Ranges {
		s, err := NewSampler(Params{Rows: p.Rows, Cols: p.Cols, Range: a, Sigma2: p.Sigma2})
		if err != nil {
			return nil, err
		}
		f, err := s.Sample(rng.Split())
		if err != nil {
			return nil, err
		}
		if _, err := total.AddScaled(w, f); err != nil {
			return nil, err
		}
	}
	return total, nil
}

// TheoreticalVariogram returns the model semi-variogram of a
// single-range field: γ(h) = σ²(1 − exp(−h²/a²)). Used by tests and by
// the Figure 1 regenerator.
func TheoreticalVariogram(h, rang, sigma2 float64) float64 {
	if sigma2 == 0 {
		sigma2 = 1
	}
	return sigma2 * (1 - math.Exp(-h*h/(rang*rang)))
}
