package gaussian

import (
	"math"
	"testing"
)

func TestGenerate3DValidation(t *testing.T) {
	bad := []Params3D{
		{Nz: 0, Ny: 8, Nx: 8, Range: 2},
		{Nz: 8, Ny: 8, Nx: 8, Range: 0},
		{Nz: 8, Ny: 8, Nx: 8, Range: 2, Sigma2: -1},
	}
	for i, p := range bad {
		if _, err := Generate3D(p); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestGenerate3DMoments(t *testing.T) {
	var meanAcc, varAcc float64
	const reps = 6
	for i := 0; i < reps; i++ {
		v, err := Generate3D(Params3D{Nz: 24, Ny: 24, Nx: 24, Range: 3, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		var mean, m2 float64
		for j, val := range v.Data {
			d := val - mean
			mean += d / float64(j+1)
			m2 += d * (val - mean)
		}
		meanAcc += mean
		varAcc += m2 / float64(len(v.Data))
	}
	meanAcc /= reps
	varAcc /= reps
	if math.Abs(meanAcc) > 0.15 {
		t.Fatalf("ensemble mean %v", meanAcc)
	}
	if math.Abs(varAcc-1) > 0.25 {
		t.Fatalf("ensemble variance %v", varAcc)
	}
}

func TestGenerate3DDeterminism(t *testing.T) {
	p := Params3D{Nz: 12, Ny: 12, Nx: 12, Range: 2, Seed: 9}
	a, err := Generate3D(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate3D(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("same seed differs at %d", i)
		}
	}
}

func TestGenerate3DSmoothness(t *testing.T) {
	// larger range ⇒ higher lag-1 correlation along every axis
	corr := func(rang float64) float64 {
		v, err := Generate3D(Params3D{Nz: 24, Ny: 24, Nx: 24, Range: rang, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		var num, den float64
		for z := 0; z < 24; z++ {
			for y := 0; y < 24; y++ {
				for x := 0; x+1 < 24; x++ {
					num += v.At(z, y, x) * v.At(z, y, x+1)
				}
			}
		}
		for _, val := range v.Data {
			den += val * val
		}
		return num / den
	}
	short := corr(1.2)
	long := corr(6)
	if short >= long {
		t.Fatalf("lag-1 correlation not increasing with range: %v vs %v", short, long)
	}
}

func TestGenerate3DSliceAnalysis(t *testing.T) {
	// 2D slices of a 3D field must carry the volume's correlation range
	v, err := Generate3D(Params3D{Nz: 8, Ny: 48, Nx: 48, Range: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	slices := v.EquallySpacedSlices(2)
	if len(slices) != 2 {
		t.Fatalf("slices %d", len(slices))
	}
	if slices[0].Rows != 48 || slices[0].Cols != 48 {
		t.Fatalf("slice shape %dx%d", slices[0].Rows, slices[0].Cols)
	}
}
