package gaussian

import (
	"math"
	"testing"

	"lossycorr/internal/xrand"
)

func TestValidation(t *testing.T) {
	cases := []Params{
		{Rows: 0, Cols: 10, Range: 1},
		{Rows: 10, Cols: -1, Range: 1},
		{Rows: 10, Cols: 10, Range: 0},
		{Rows: 10, Cols: 10, Range: 5, Sigma2: -1},
	}
	for i, p := range cases {
		if _, err := NewSampler(p); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestMomentsUnitVariance(t *testing.T) {
	s, err := NewSampler(Params{Rows: 64, Cols: 64, Range: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	// average over several fields: per-field variance fluctuates with
	// correlated samples, the ensemble mean should be close to 1
	var meanAcc, varAcc float64
	const reps = 20
	for i := 0; i < reps; i++ {
		f, err := s.Sample(rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		st := f.Summary()
		meanAcc += st.Mean
		varAcc += st.Variance
	}
	meanAcc /= reps
	varAcc /= reps
	if math.Abs(meanAcc) > 0.1 {
		t.Fatalf("ensemble mean %v", meanAcc)
	}
	if math.Abs(varAcc-1) > 0.15 {
		t.Fatalf("ensemble variance %v", varAcc)
	}
}

func TestSigma2Scaling(t *testing.T) {
	rng := xrand.New(3)
	s4, err := NewSampler(Params{Rows: 64, Cols: 64, Range: 3, Sigma2: 4})
	if err != nil {
		t.Fatal(err)
	}
	var varAcc float64
	const reps = 10
	for i := 0; i < reps; i++ {
		f, err := s4.Sample(rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		varAcc += f.Summary().Variance
	}
	varAcc /= reps
	if math.Abs(varAcc-4) > 0.8 {
		t.Fatalf("σ²=4 ensemble variance %v", varAcc)
	}
}

func TestDeterminismBySeed(t *testing.T) {
	a, err := Generate(Params{Rows: 32, Cols: 32, Range: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Params{Rows: 32, Cols: 32, Range: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := a.MaxAbsDiff(b); d != 0 {
		t.Fatalf("same seed differs by %v", d)
	}
	c, err := Generate(Params{Rows: 32, Cols: 32, Range: 5, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := a.MaxAbsDiff(c); d == 0 {
		t.Fatal("different seeds produced identical fields")
	}
}

// lag1Corr estimates the lag-1 horizontal autocorrelation.
func lag1Corr(data []float64, rows, cols int) float64 {
	var num, den float64
	var mean float64
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	for r := 0; r < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			num += (data[r*cols+c] - mean) * (data[r*cols+c+1] - mean)
		}
	}
	for _, v := range data {
		den += (v - mean) * (v - mean)
	}
	return num / den
}

func TestLargerRangeIsSmoother(t *testing.T) {
	rng := xrand.New(7)
	var corrs []float64
	for _, rang := range []float64{1.5, 6, 24} {
		s, err := NewSampler(Params{Rows: 96, Cols: 96, Range: rang})
		if err != nil {
			t.Fatal(err)
		}
		f, err := s.Sample(rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		corrs = append(corrs, lag1Corr(f.Data, f.Rows, f.Cols))
	}
	if !(corrs[0] < corrs[1] && corrs[1] < corrs[2]) {
		t.Fatalf("lag-1 correlations not increasing with range: %v", corrs)
	}
	// theoretical lag-1 correlation: exp(-1/a²)
	want := math.Exp(-1.0 / (6 * 6))
	if math.Abs(corrs[1]-want) > 0.15 {
		t.Fatalf("lag-1 corr %v want ≈%v", corrs[1], want)
	}
}

func TestClampMassNegligible(t *testing.T) {
	for _, rang := range []float64{1, 8, 32} {
		s, err := NewSampler(Params{Rows: 64, Cols: 64, Range: rang})
		if err != nil {
			t.Fatal(err)
		}
		if s.ClampMass() > 1e-6 {
			t.Fatalf("range %v: clamp mass %v too large", rang, s.ClampMass())
		}
	}
}

func TestSamplePairIndependence(t *testing.T) {
	s, err := NewSampler(Params{Rows: 48, Cols: 48, Range: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := s.SamplePair(xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// cross-correlation of the two fields should be near zero
	var dot, na, nb float64
	for i := range a.Data {
		dot += a.Data[i] * b.Data[i]
		na += a.Data[i] * a.Data[i]
		nb += b.Data[i] * b.Data[i]
	}
	rho := dot / math.Sqrt(na*nb)
	if math.Abs(rho) > 0.2 {
		t.Fatalf("pair correlation %v", rho)
	}
}

func TestNonSquareField(t *testing.T) {
	f, err := Generate(Params{Rows: 20, Cols: 50, Range: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Rows != 20 || f.Cols != 50 {
		t.Fatalf("shape %dx%d", f.Rows, f.Cols)
	}
}

func TestGenerateMulti(t *testing.T) {
	f, err := GenerateMulti(MultiParams{Rows: 64, Cols: 64, Ranges: []float64{2, 12}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	st := f.Summary()
	if math.Abs(st.Variance-1) > 0.5 {
		t.Fatalf("multi-range variance %v", st.Variance)
	}
	if _, err := GenerateMulti(MultiParams{Rows: 8, Cols: 8}); err == nil {
		t.Fatal("expected empty-ranges error")
	}
}

func TestGenerateMultiDeterminism(t *testing.T) {
	p := MultiParams{Rows: 24, Cols: 24, Ranges: []float64{2, 6}, Seed: 21}
	a, err := GenerateMulti(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMulti(p)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := a.MaxAbsDiff(b); d != 0 {
		t.Fatalf("multi determinism broken: %v", d)
	}
}

func TestTheoreticalVariogram(t *testing.T) {
	if TheoreticalVariogram(0, 5, 1) != 0 {
		t.Fatal("γ(0) must be 0")
	}
	if v := TheoreticalVariogram(1e9, 5, 2); math.Abs(v-2) > 1e-12 {
		t.Fatalf("γ(∞)=%v want sill 2", v)
	}
	// default sigma2
	if v := TheoreticalVariogram(1e9, 5, 0); math.Abs(v-1) > 1e-12 {
		t.Fatalf("default sill %v", v)
	}
}
