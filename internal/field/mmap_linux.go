//go:build linux

package field

import (
	"bytes"
	"fmt"
	"os"
	"syscall"
)

// OpenTileReaderMapped memory-maps path read-only and returns a
// TileReader over the mapping, letting the page cache serve repeated
// tile reads without pread syscalls. Close unmaps. Header validation is
// identical to OpenTileReader — the mapping is sized by the file, so a
// lying header is rejected before any block buffer exists.
func OpenTileReaderMapped(path string, maxElements int) (*TileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("field: cannot map %d-byte file %s", size, path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("field: mmap %s: %w", path, err)
	}
	t, err := NewTileReader(bytes.NewReader(data), size, maxElements)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, err
	}
	t.closer = munmapCloser(data)
	return t, nil
}

type munmapCloser []byte

func (m munmapCloser) Close() error { return syscall.Munmap(m) }
