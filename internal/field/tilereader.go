package field

// Out-of-core access. TileReader is a random-access view of a field
// file — any of the three on-disk layouts (legacy 2D, LCF1 float64,
// LCF1 float32) — that reads rectangular element blocks on demand
// instead of materializing the volume. It is the storage end of the
// streaming analysis path: the streaming statistics plan h-aligned
// tiles against a byte budget (PlanWindowTiles), pull each tile through
// ReadBlock into a pooled buffer, and fold per-window results with the
// same machinery as the in-RAM path.
//
// Hostile-input posture matches ReadBinaryLimit: the header is fully
// validated (positive extents, element cap, overflow-safe products)
// before anything is allocated, and additionally against the file's
// actual size — a truncated or crafted file whose header claims more
// payload than the bytes behind it is rejected at open, so no block
// read can ever over-allocate or index past the region.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// TileReader reads rectangular blocks of a field file through an
// io.ReaderAt. Both compute lanes are served: float32 payloads are
// widened during the block copy (float32→float64 is exact), so every
// consumer sees the oracle-lane values the in-RAM WindowIntoWide path
// would produce. Methods are safe for concurrent use when the
// underlying ReaderAt is (os.File and bytes.Reader are).
type TileReader struct {
	r      io.ReaderAt
	closer io.Closer
	shape  []int
	st     []int // element strides, last dimension fastest
	f32    bool
	off    int64 // payload byte offset
	n      int   // total elements
}

// NewTileReader validates the header of a field file presented as a
// size-byte random-access region and returns a reader over its
// payload. maxElements bounds the header's claimed element count
// exactly as in ReadBinaryLimit.
func NewTileReader(r io.ReaderAt, size int64, maxElements int) (*TileReader, error) {
	shape, f32, hdrLen, err := readHeaderFrom(io.NewSectionReader(r, 0, size), maxElements)
	if err != nil {
		return nil, err
	}
	n, err := shapeProduct(shape)
	if err != nil {
		return nil, err
	}
	eb := int64(8)
	if f32 {
		eb = 4
	}
	if size-int64(hdrLen) < int64(n)*eb {
		return nil, fmt.Errorf("field: truncated payload: header claims %d bytes, %d present",
			int64(n)*eb, size-int64(hdrLen))
	}
	return &TileReader{
		r:     r,
		shape: shape,
		st:    stridesOf(shape, make([]int, len(shape))),
		f32:   f32,
		off:   int64(hdrLen),
		n:     n,
	}, nil
}

// OpenTileReader opens path for pread-backed tile access. The returned
// reader owns the file; Close releases it.
func OpenTileReader(path string, maxElements int) (*TileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	t, err := NewTileReader(f, fi.Size(), maxElements)
	if err != nil {
		f.Close()
		return nil, err
	}
	t.closer = f
	return t, nil
}

// Close releases the underlying file or mapping, if the reader owns one.
func (t *TileReader) Close() error {
	if t.closer != nil {
		return t.closer.Close()
	}
	return nil
}

// Shape returns a copy of the field's extents, slowest-varying first.
func (t *TileReader) Shape() []int { return append([]int(nil), t.shape...) }

// NDim returns the rank.
func (t *TileReader) NDim() int { return len(t.shape) }

// Len returns the number of elements.
func (t *TileReader) Len() int { return t.n }

// MinDim returns the smallest extent.
func (t *TileReader) MinDim() int {
	m := t.shape[0]
	for _, s := range t.shape[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// Float32Lane reports whether the payload is the float32 lane.
func (t *TileReader) Float32Lane() bool { return t.f32 }

// ElemBytes returns the stored bytes per element (4 or 8).
func (t *TileReader) ElemBytes() int {
	if t.f32 {
		return 4
	}
	return 8
}

// PayloadBytes returns the on-disk payload size.
func (t *TileReader) PayloadBytes() int64 { return int64(t.n) * int64(t.ElemBytes()) }

// ReadBlock reads the half-open box [lo, hi) into dst, reusing dst's
// shape and data storage when capacities allow — callers pass a
// budget-sized pooled buffer so the block bytes show up in the
// transform-pool accounting. On-disk-contiguous runs are merged: the
// largest fully covered suffix of axes (plus the first partial axis
// above it) is read per pread, so an axis-0 slab of a 3D file is a
// single sequential read.
func (t *TileReader) ReadBlock(dst *Field, lo, hi []int) error {
	d := len(t.shape)
	if len(lo) != d || len(hi) != d {
		return fmt.Errorf("field: block rank %d/%d != field rank %d", len(lo), len(hi), d)
	}
	if cap(dst.Shape) >= d {
		dst.Shape = dst.Shape[:d]
	} else {
		dst.Shape = make([]int, d)
	}
	ext := dst.Shape
	n := 1
	for k := 0; k < d; k++ {
		if lo[k] < 0 || hi[k] > t.shape[k] || lo[k] >= hi[k] {
			return fmt.Errorf("field: block [%v,%v) outside shape %v", lo, hi, t.shape)
		}
		ext[k] = hi[k] - lo[k]
		n *= ext[k]
	}
	if cap(dst.Data) >= n {
		dst.Data = dst.Data[:n]
	} else {
		dst.Data = make([]float64, n)
	}
	// Largest suffix of axes the box fully covers: everything from
	// runAxis down is one contiguous span per outer index.
	sfull := d
	for sfull > 0 && ext[sfull-1] == t.shape[sfull-1] {
		sfull--
	}
	runAxis := sfull - 1
	run := n
	if runAxis >= 0 {
		run = ext[runAxis]
		for k := sfull; k < d; k++ {
			run *= t.shape[k]
		}
	}
	bp := acquireStaging()
	defer releaseStaging(bp)
	var odo [8]int
	outer := odo[:0]
	if runAxis > 0 {
		outer = odo[:runAxis]
	}
	dstOff := 0
	for {
		src := 0
		if runAxis >= 0 {
			src = lo[runAxis] * t.st[runAxis]
			for k := 0; k < runAxis; k++ {
				src += (lo[k] + outer[k]) * t.st[k]
			}
		}
		if err := t.readRange(dst.Data[dstOff:dstOff+run], src, *bp); err != nil {
			return err
		}
		dstOff += run
		k := len(outer) - 1
		for ; k >= 0; k-- {
			outer[k]++
			if outer[k] < ext[k] {
				break
			}
			outer[k] = 0
		}
		if k < 0 {
			break
		}
	}
	return nil
}

// readRange fills dst with the run of elements starting at flat element
// offset src, decoding (and widening, on the float32 lane) through the
// staging buffer.
func (t *TileReader) readRange(dst []float64, src int, buf []byte) error {
	if t.f32 {
		off := t.off + int64(src)*4
		for len(dst) > 0 {
			c := len(buf) / 4
			if c > len(dst) {
				c = len(dst)
			}
			if _, err := t.r.ReadAt(buf[:4*c], off); err != nil {
				return fmt.Errorf("field: block read: %w", err)
			}
			for i := 0; i < c; i++ {
				dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
			}
			dst = dst[c:]
			off += int64(4 * c)
		}
		return nil
	}
	off := t.off + int64(src)*8
	for len(dst) > 0 {
		c := len(buf) / 8
		if c > len(dst) {
			c = len(dst)
		}
		if _, err := t.r.ReadAt(buf[:8*c], off); err != nil {
			return fmt.Errorf("field: block read: %w", err)
		}
		for i := 0; i < c; i++ {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		dst = dst[c:]
		off += int64(8 * c)
	}
	return nil
}

// At reads the single element at the given flat row-major offset — the
// point-access lane the streaming pair sampler draws through.
func (t *TileReader) At(flat int) (float64, error) {
	if flat < 0 || flat >= t.n {
		return 0, fmt.Errorf("field: flat index %d outside %d elements", flat, t.n)
	}
	var b [8]byte
	if t.f32 {
		if _, err := t.r.ReadAt(b[:4], t.off+int64(flat)*4); err != nil {
			return 0, fmt.Errorf("field: point read: %w", err)
		}
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b[:]))), nil
	}
	if _, err := t.r.ReadAt(b[:8], t.off+int64(flat)*8); err != nil {
		return 0, fmt.Errorf("field: point read: %w", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

// ReadAll materializes the whole field in its stored lane — the slurp
// path the analyzer takes when the file fits the memory budget after
// all. Exactly one returned field is non-nil, as in ReadAnyLimit.
func (t *TileReader) ReadAll() (*Field, *Field32, error) {
	sr := io.NewSectionReader(t.r, t.off, t.PayloadBytes())
	if t.f32 {
		f := New32(t.shape...)
		if err := readPayload32(sr, f.Data); err != nil {
			return nil, nil, err
		}
		return nil, f, nil
	}
	f := New(t.shape...)
	if err := readPayload(sr, f.Data); err != nil {
		return nil, nil, err
	}
	return f, nil, nil
}
