package field

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"lossycorr/internal/xrand"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "field.lcf")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func randField(t *testing.T, shape []int, seed uint64) *Field {
	t.Helper()
	rng := xrand.New(seed)
	f := New(shape...)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return f
}

// TestTileReaderReadBlock pins ReadBlock against direct in-RAM
// extraction for both stored lanes, across ranks and block geometries
// (interior boxes, full-axis slabs, single elements).
func TestTileReaderReadBlock(t *testing.T) {
	for _, shape := range [][]int{{11}, {13, 7}, {7, 9, 5}} {
		f := randField(t, shape, 42)
		var buf bytes.Buffer
		if err := f.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		f32 := New32(shape...)
		for i, v := range f.Data {
			f32.Data[i] = float32(v)
		}
		var buf32 bytes.Buffer
		if err := f32.WriteBinary(&buf32); err != nil {
			t.Fatal(err)
		}
		wide := f32.Widen()
		for name, enc := range map[string]struct {
			raw  []byte
			want *Field
		}{
			"f64": {buf.Bytes(), f},
			"f32": {buf32.Bytes(), wide},
		} {
			tr, err := NewTileReader(bytes.NewReader(enc.raw), int64(len(enc.raw)), 1<<30)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			d := len(shape)
			rng := xrand.New(7)
			dst := new(Field)
			for trial := 0; trial < 25; trial++ {
				lo := make([]int, d)
				hi := make([]int, d)
				for k := 0; k < d; k++ {
					lo[k] = rng.Intn(shape[k])
					hi[k] = lo[k] + 1 + rng.Intn(shape[k]-lo[k])
				}
				if err := tr.ReadBlock(dst, lo, hi); err != nil {
					t.Fatalf("%s block [%v,%v): %v", name, lo, hi, err)
				}
				// Direct extraction from the in-RAM (widened) field.
				idx := make([]int, d)
				copy(idx, lo)
				pos := 0
				for {
					flat := 0
					for k := 0; k < d; k++ {
						flat = flat*shape[k] + idx[k]
					}
					if dst.Data[pos] != enc.want.Data[flat] {
						t.Fatalf("%s block [%v,%v) at %v: %v, want %v",
							name, lo, hi, idx, dst.Data[pos], enc.want.Data[flat])
					}
					pos++
					k := d - 1
					for ; k >= 0; k-- {
						idx[k]++
						if idx[k] < hi[k] {
							break
						}
						idx[k] = lo[k]
					}
					if k < 0 {
						break
					}
				}
				if pos != dst.Len() {
					t.Fatalf("%s: visited %d, block holds %d", name, pos, dst.Len())
				}
			}
			// Point access agrees with the widened field everywhere.
			for i := 0; i < f.Len(); i++ {
				v, err := tr.At(i)
				if err != nil {
					t.Fatal(err)
				}
				if v != enc.want.Data[i] {
					t.Fatalf("%s At(%d) = %v, want %v", name, i, v, enc.want.Data[i])
				}
			}
			if _, err := tr.At(-1); err == nil {
				t.Fatalf("%s: At(-1) succeeded", name)
			}
			if _, err := tr.At(f.Len()); err == nil {
				t.Fatalf("%s: At(len) succeeded", name)
			}
			if err := tr.ReadBlock(dst, make([]int, d), append([]int(nil), shape...)); err != nil {
				t.Fatal(err)
			}
			if bad := append([]int(nil), shape...); true {
				bad[0]++
				if err := tr.ReadBlock(dst, make([]int, d), bad); err == nil {
					t.Fatalf("%s: out-of-bounds block succeeded", name)
				}
			}
		}
	}
}

// TestTileReaderMappedEquality: the mmap-backed reader returns the same
// blocks as the pread-backed one.
func TestTileReaderMappedEquality(t *testing.T) {
	shape := []int{9, 8, 7}
	f := randField(t, shape, 77)
	var buf bytes.Buffer
	if err := f.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, buf.Bytes())
	a, err := OpenTileReader(path, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenTileReaderMapped(path, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	da, db := new(Field), new(Field)
	lo, hi := []int{1, 2, 3}, []int{8, 5, 7}
	if err := a.ReadBlock(da, lo, hi); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadBlock(db, lo, hi); err != nil {
		t.Fatal(err)
	}
	for i := range da.Data {
		if da.Data[i] != db.Data[i] {
			t.Fatalf("mapped block differs at %d", i)
		}
	}
}

// TestTileReaderHostileHeaders: crafted headers whose claimed payload
// exceeds the bytes present — or whose shape product overflows — are
// rejected at open, before any block buffer exists.
func TestTileReaderHostileHeaders(t *testing.T) {
	le := binary.LittleEndian
	cases := map[string][]byte{}

	// LCF1 claiming a 1<<20 × 1<<20 field with 16 payload bytes.
	var big bytes.Buffer
	big.WriteString("LCF1")
	binary.Write(&big, le, uint32(2))
	binary.Write(&big, le, uint32(1<<20))
	binary.Write(&big, le, uint32(1<<20))
	big.Write(make([]byte, 16))
	cases["lcf1-truncated"] = big.Bytes()

	// LCF1 float32 lane, truncated payload.
	var f32 bytes.Buffer
	f32.WriteString("LCF1")
	binary.Write(&f32, le, uint32(3|0x00010000))
	binary.Write(&f32, le, uint32(64))
	binary.Write(&f32, le, uint32(64))
	binary.Write(&f32, le, uint32(64))
	f32.Write(make([]byte, 100))
	cases["lcf1-f32-truncated"] = f32.Bytes()

	// Legacy header claiming 1<<16 × 1<<16 with no payload.
	var leg bytes.Buffer
	binary.Write(&leg, le, uint32(1<<16))
	binary.Write(&leg, le, uint32(1<<16))
	cases["legacy-truncated"] = leg.Bytes()

	// LCF1 whose extent product overflows the element cap.
	var cap bytes.Buffer
	cap.WriteString("LCF1")
	binary.Write(&cap, le, uint32(4))
	for i := 0; i < 4; i++ {
		binary.Write(&cap, le, uint32(1<<16))
	}
	cases["cap-exceeded"] = cap.Bytes()

	for name, raw := range cases {
		if _, err := NewTileReader(bytes.NewReader(raw), int64(len(raw)), 1<<30); err == nil {
			t.Fatalf("%s: open succeeded", name)
		}
	}

	// A lying header must also fail through the file-backed opens.
	path := writeTemp(t, cases["lcf1-truncated"])
	if _, err := OpenTileReader(path, 1<<30); err == nil {
		t.Fatal("OpenTileReader accepted truncated payload")
	}
	if _, err := OpenTileReaderMapped(path, 1<<30); err == nil {
		t.Fatal("OpenTileReaderMapped accepted truncated payload")
	}
}

// TestTileReaderReadAll: the slurp path preserves the stored lane.
func TestTileReaderReadAll(t *testing.T) {
	f := randField(t, []int{6, 5}, 3)
	var buf bytes.Buffer
	if err := f.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTileReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	f64, f32, err := tr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if f64 == nil || f32 != nil {
		t.Fatal("f64 file did not slurp to the f64 lane")
	}
	for i := range f.Data {
		if f64.Data[i] != f.Data[i] {
			t.Fatalf("slurp differs at %d", i)
		}
	}

	g32 := New32(4, 3)
	for i := range g32.Data {
		g32.Data[i] = float32(i) * 0.5
	}
	var b32 bytes.Buffer
	if err := g32.WriteBinary(&b32); err != nil {
		t.Fatal(err)
	}
	tr32, err := NewTileReader(bytes.NewReader(b32.Bytes()), int64(b32.Len()), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if !tr32.Float32Lane() {
		t.Fatal("f32 file not detected as the f32 lane")
	}
	r64, r32, err := tr32.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if r32 == nil || r64 != nil {
		t.Fatal("f32 file did not slurp to the f32 lane")
	}
	for i := range g32.Data {
		if r32.Data[i] != g32.Data[i] {
			t.Fatalf("f32 slurp differs at %d", i)
		}
	}
}

// TestPlanWindowTiles: tiles partition the window lattice exactly, obey
// the element budget, and a budget below one window errors.
func TestPlanWindowTiles(t *testing.T) {
	cases := []struct {
		shape    []int
		h        int
		maxElems int64
	}{
		{[]int{37, 29}, 8, 64},
		{[]int{37, 29}, 8, 8 * 29},
		{[]int{19, 23, 17}, 5, 5 * 5 * 5},
		{[]int{19, 23, 17}, 5, 0},
		{[]int{64, 64}, 16, 1 << 20},
	}
	for _, tc := range cases {
		tiles, err := PlanWindowTiles(tc.shape, tc.h, tc.maxElems)
		if err != nil {
			t.Fatalf("%v h=%d budget=%d: %v", tc.shape, tc.h, tc.maxElems, err)
		}
		g := NewWindowGrid(tc.shape, tc.h)
		seen := make([]int, g.Total())
		for _, tile := range tiles {
			n := int64(1)
			for k := range tc.shape {
				if tile.Lo[k]%tc.h != 0 {
					t.Fatalf("%v: tile lo %v not h-aligned", tc.shape, tile.Lo)
				}
				if tile.Lo[k] < 0 || tile.Hi[k] > tc.shape[k] || tile.Lo[k] >= tile.Hi[k] {
					t.Fatalf("%v: bad tile [%v,%v)", tc.shape, tile.Lo, tile.Hi)
				}
				n *= int64(tile.Hi[k] - tile.Lo[k])
			}
			if tc.maxElems > 0 && n > tc.maxElems {
				t.Fatalf("%v: tile [%v,%v) holds %d elems, budget %d", tc.shape, tile.Lo, tile.Hi, n, tc.maxElems)
			}
			tw := g.TileWindows(tile)
			buf := make([]int, len(tc.shape))
			for j := 0; j < tw.Len(); j++ {
				global, _ := tw.Window(j, buf)
				seen[global]++
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("%v h=%d budget=%d: window %d covered %d times", tc.shape, tc.h, tc.maxElems, i, c)
			}
		}
	}
	if _, err := PlanWindowTiles([]int{64, 64}, 16, 10); err == nil {
		t.Fatal("sub-window budget accepted")
	}
}

// TestExpandHalo clips at the field boundary.
func TestExpandHalo(t *testing.T) {
	lo, hi := ExpandHalo([]int{0, 16}, []int{16, 32}, []int{40, 40}, 8)
	if lo[0] != 0 || lo[1] != 8 || hi[0] != 24 || hi[1] != 40 {
		t.Fatalf("halo box [%v,%v)", lo, hi)
	}
}
