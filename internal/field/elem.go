package field

// Element-generic shape/window/odometer machinery shared by the two
// storage lanes. Field (float64, the oracle lane) and Field32 (the
// float32 compute lane) are concrete structs — methods like AsGrid or
// the grid-sharing constructors only make sense for one element type —
// but everything shape-driven beneath them is written once here over
// the Elem constraint: extent validation, stride computation, the
// clipped-window odometer walk, tile enumeration, and the Welford
// summary (which accumulates in float64 for either lane, so the
// float64 instantiation stays bit-identical to the historical code).

import (
	"fmt"
	"math"

	"lossycorr/internal/grid"
)

// Elem is the element-type constraint of the two compute lanes.
type Elem interface{ ~float32 | ~float64 }

// shapeProduct validates extents (non-negative) and returns the element
// count of a shape.
func shapeProduct(shape []int) (int, error) {
	n := 1
	for _, s := range shape {
		if s < 0 {
			return 0, fmt.Errorf("field: negative dimension in shape %v", shape)
		}
		n *= s
	}
	return n, nil
}

// stridesOf fills st (length = rank) with the element stride of each
// dimension, last dimension fastest, and returns it.
func stridesOf(shape, st []int) []int {
	acc := 1
	for k := len(shape) - 1; k >= 0; k-- {
		st[k] = acc
		acc *= shape[k]
	}
	return st
}

// flatOffset maps an index tuple to its row-major offset, panicking on
// rank mismatch (bounds are left to the slice access).
func flatOffset(shape, idx []int) int {
	if len(idx) != len(shape) {
		panic(fmt.Sprintf("field: index rank %d != field rank %d", len(idx), len(shape)))
	}
	flat := 0
	for k, i := range idx {
		flat = flat*shape[k] + i
	}
	return flat
}

// sameExtents reports whether two shapes agree in rank and extents.
func sameExtents(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// summarize is the one-pass Welford min/max/mean/variance shared by both
// lanes; accumulation is float64 regardless of T, so the float64
// instantiation reproduces (*grid.Grid).Summary bitwise and the float32
// lane gets full-precision statistics from narrow samples.
func summarize[T Elem](data []T) grid.Stats {
	s := grid.Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	if len(data) == 0 {
		return grid.Stats{}
	}
	var mean, m2 float64
	for i, e := range data {
		v := float64(e)
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
	}
	s.Mean = mean
	s.Variance = m2 / float64(len(data))
	s.ValueRange = s.Max - s.Min
	return s
}

// maxAbsDiffData returns max|a-b| (in float64) over two equal-length
// lanes of the same element type.
func maxAbsDiffData[T Elem](a, b []T) float64 {
	var m float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// mseData returns the mean squared error between two equal-length lanes.
func mseData[T Elem](a, b []T) float64 {
	if len(a) == 0 {
		return 0
	}
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return sum / float64(len(a))
}

// windowIntoData is the clipped-window extraction both lanes (and the
// widening cross-lane copy) share: it clips the h-edged hypercube at
// origin to shape, reuses dstShape/dstData storage when capacities
// allow, copies one contiguous last-dimension run at a time with a
// stack-allocated odometer (ranks <= 8), and returns the (possibly
// re-allocated) destination shape and data. S and D may differ —
// Field32's WindowIntoWide instantiates the float32→float64 pair to
// widen each window on the fly without materializing a full-size
// float64 copy of the field.
func windowIntoData[S, D Elem](shape []int, data []S, dstShape []int, dstData []D, origin []int, h int) ([]int, []D) {
	d := len(shape)
	if len(origin) != d {
		panic(fmt.Sprintf("field: window origin rank %d != field rank %d", len(origin), d))
	}
	if cap(dstShape) >= d {
		dstShape = dstShape[:d]
	} else {
		dstShape = make([]int, d)
	}
	ext := dstShape
	n := 1
	for k := range origin {
		if origin[k] < 0 || origin[k] >= shape[k] {
			panic(fmt.Sprintf("field: window origin %v outside shape %v", origin, shape))
		}
		ext[k] = h
		if origin[k]+h > shape[k] {
			ext[k] = shape[k] - origin[k]
		}
		n *= ext[k]
	}
	if cap(dstData) >= n {
		dstData = dstData[:n]
	} else {
		dstData = make([]D, n)
	}
	if n == 0 {
		return dstShape, dstData
	}
	var stBuf [8]int
	var st []int
	if d <= len(stBuf) {
		st = stridesOf(shape, stBuf[:d])
	} else {
		st = stridesOf(shape, make([]int, d))
	}
	var odo [8]int
	var outer []int
	if d-1 <= len(odo) {
		outer = odo[:d-1]
		for k := range outer {
			outer[k] = 0
		}
	} else {
		outer = make([]int, d-1)
	}
	inner := ext[d-1]
	for {
		src := origin[d-1]
		dstOff := 0
		for k := 0; k < d-1; k++ {
			src += (origin[k] + outer[k]) * st[k]
			dstOff = dstOff*ext[k] + outer[k]
		}
		dstOff *= inner
		srcRow := data[src : src+inner]
		dstRow := dstData[dstOff : dstOff+inner]
		for i := range srcRow {
			dstRow[i] = D(srcRow[i])
		}
		k := d - 2
		for ; k >= 0; k-- {
			outer[k]++
			if outer[k] < ext[k] {
				break
			}
			outer[k] = 0
		}
		if k < 0 {
			break
		}
	}
	return dstShape, dstData
}

// tileOriginsOf enumerates the origin corner of every h-edged tile
// covering a shape, in lexicographic (slowest-dimension-first) order.
func tileOriginsOf(shape []int, h int) [][]int {
	if h <= 0 {
		panic("field: non-positive tile size")
	}
	d := len(shape)
	total := 1
	for _, s := range shape {
		total *= s
	}
	if d == 0 || total == 0 {
		return nil
	}
	origins := make([][]int, 0, numTilesOf(shape, h))
	cur := make([]int, d)
	for {
		origins = append(origins, append([]int(nil), cur...))
		k := d - 1
		for ; k >= 0; k-- {
			cur[k] += h
			if cur[k] < shape[k] {
				break
			}
			cur[k] = 0
		}
		if k < 0 {
			break
		}
	}
	return origins
}

// numTilesOf returns how many h-edged tiles (including clipped edge
// tiles) cover a shape.
func numTilesOf(shape []int, h int) int {
	n := 1
	for _, s := range shape {
		n *= (s + h - 1) / h
	}
	return n
}
