//go:build !linux

package field

// OpenTileReaderMapped falls back to pread-backed tile access on
// platforms without the mmap shim; the TileReader contract is
// unchanged.
func OpenTileReaderMapped(path string, maxElements int) (*TileReader, error) {
	return OpenTileReader(path, maxElements)
}
