package field

// Field32 is the float32 compute lane: the same dense row-major
// storage contract as Field at half the bytes per element, matching
// what the paper's datasets (Miranda, Hurricane, NYX) actually store
// on disk and what SZ/ZFP-style compressors actually consume. All
// shape, window, odometer, and summary machinery is shared with the
// float64 lane through the Elem-generic helpers in elem.go; statistics
// and error metrics accumulate in float64 either way. Field stays the
// oracle lane — every float32 analysis path is pinned
// tolerance-equivalent against it.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"lossycorr/internal/grid"
)

// Field32 is a dense float32 scalar field of arbitrary rank, with the
// same layout contract as Field.
type Field32 struct {
	Shape []int
	Data  []float32
}

// New32 returns a zero-filled float32 field with the given shape.
func New32(shape ...int) *Field32 {
	n, err := shapeProduct(shape)
	if err != nil {
		panic(err.Error())
	}
	return &Field32{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData32 wraps an existing flat slice; it does not copy.
func FromData32(shape []int, data []float32) (*Field32, error) {
	n, err := shapeProduct(shape)
	if err != nil {
		return nil, err
	}
	if len(data) != n {
		return nil, fmt.Errorf("field: data length %d != product of shape %v", len(data), shape)
	}
	return &Field32{Shape: append([]int(nil), shape...), Data: data}, nil
}

// NDim returns the rank.
func (f *Field32) NDim() int { return len(f.Shape) }

// Len returns the number of elements.
func (f *Field32) Len() int {
	n := 1
	for _, s := range f.Shape {
		n *= s
	}
	return n
}

// SizeBytes returns the uncompressed size in bytes (4 per element).
func (f *Field32) SizeBytes() int { return f.Len() * 4 }

// MinDim returns the smallest extent (0 for a rank-0 field).
func (f *Field32) MinDim() int {
	if len(f.Shape) == 0 {
		return 0
	}
	m := f.Shape[0]
	for _, s := range f.Shape[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// Strides returns the element stride of each dimension (last is 1).
func (f *Field32) Strides() []int {
	return stridesOf(f.Shape, make([]int, len(f.Shape)))
}

// At returns the element at the given index tuple.
func (f *Field32) At(idx ...int) float32 {
	return f.Data[flatOffset(f.Shape, idx)]
}

// Set assigns the element at the given index tuple.
func (f *Field32) Set(v float32, idx ...int) {
	f.Data[flatOffset(f.Shape, idx)] = v
}

// Clone returns a deep copy.
func (f *Field32) Clone() *Field32 {
	out := &Field32{Shape: append([]int(nil), f.Shape...), Data: make([]float32, len(f.Data))}
	copy(out.Data, f.Data)
	return out
}

// Summary computes min/max/mean/variance in one float64-accumulated
// Welford pass over the narrow samples.
func (f *Field32) Summary() grid.Stats {
	return summarize(f.Data)
}

// SameShape reports whether two fields agree in rank and extents.
func (f *Field32) SameShape(o *Field32) bool {
	return sameExtents(f.Shape, o.Shape)
}

// MaxAbsDiff returns max|f-o| over all elements; shapes must agree.
func (f *Field32) MaxAbsDiff(o *Field32) (float64, error) {
	if !f.SameShape(o) {
		return 0, fmt.Errorf("field: shape mismatch %v vs %v", f.Shape, o.Shape)
	}
	return maxAbsDiffData(f.Data, o.Data), nil
}

// MSE returns the mean squared error between two equally shaped fields.
func (f *Field32) MSE(o *Field32) (float64, error) {
	if !f.SameShape(o) {
		return 0, fmt.Errorf("field: shape mismatch %v vs %v", f.Shape, o.Shape)
	}
	return mseData(f.Data, o.Data), nil
}

// Window copies the clipped hypercube with the given origin and edge h.
func (f *Field32) Window(origin []int, h int) *Field32 {
	return f.WindowInto(new(Field32), origin, h)
}

// WindowInto is Window extracting into dst, reusing dst's storage when
// capacities allow; it returns dst.
func (f *Field32) WindowInto(dst *Field32, origin []int, h int) *Field32 {
	dst.Shape, dst.Data = windowIntoData(f.Shape, f.Data, dst.Shape, dst.Data, origin, h)
	return dst
}

// WindowIntoWide extracts the clipped window directly into a float64
// Field, widening each element during the copy. The windowed
// statistics (local variogram range, local SVD level) use it to run
// their small per-window solves in oracle precision without ever
// materializing a full-size float64 copy of the field.
func (f *Field32) WindowIntoWide(dst *Field, origin []int, h int) *Field {
	dst.Shape, dst.Data = windowIntoData(f.Shape, f.Data, dst.Shape, dst.Data, origin, h)
	return dst
}

// TileOrigins returns the origin corner of every h-edged tile covering
// the field in lexicographic order.
func (f *Field32) TileOrigins(h int) [][]int {
	return tileOriginsOf(f.Shape, h)
}

// NumTiles returns how many h-edged tiles cover the field.
func (f *Field32) NumTiles(h int) int {
	return numTilesOf(f.Shape, h)
}

// Widen returns a float64 Field with the same shape and the exactly
// represented values of f (float32→float64 is lossless).
func (f *Field32) Widen() *Field {
	out := &Field{Shape: append([]int(nil), f.Shape...), Data: make([]float64, len(f.Data))}
	for i, v := range f.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// Narrow returns the float32 lane of a float64 field, rounding each
// element to nearest. The inverse of Widen up to that rounding.
func (f *Field) Narrow() *Field32 {
	out := &Field32{Shape: append([]int(nil), f.Shape...), Data: make([]float32, len(f.Data))}
	for i, v := range f.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// WriteBinary writes the field in the tagged LCF1 layout with
// f32LaneFlag set in the rank word and a float32 payload — for every
// rank, including 2 (the legacy untyped 2D layout stays float64-only).
func (f *Field32) WriteBinary(w io.Writer) error {
	if len(f.Shape) < 1 || len(f.Shape) > 8 {
		return fmt.Errorf("field: rank %d not writable", len(f.Shape))
	}
	hdr := make([]byte, 8+4*len(f.Shape))
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(f.Shape))|f32LaneFlag)
	for k, s := range f.Shape {
		binary.LittleEndian.PutUint32(hdr[8+4*k:], uint32(s))
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 4*4096)
	for off := 0; off < len(f.Data); off += 4096 {
		end := off + 4096
		if end > len(f.Data) {
			end = len(f.Data)
		}
		chunk := f.Data[off:end]
		for i, v := range chunk {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := w.Write(buf[:4*len(chunk)]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary32 reads a float32-lane field written by
// (*Field32).WriteBinary, with the default allocation cap. Files in
// either float64 layout are rejected — use ReadAnyLimit to accept any
// lane.
func ReadBinary32(r io.Reader) (*Field32, error) {
	return ReadBinary32Limit(r, 0)
}

// ReadBinary32Limit is ReadBinary32 with an explicit element budget
// (same semantics as ReadBinaryLimit).
func ReadBinary32Limit(r io.Reader, maxElements int) (*Field32, error) {
	f, f32, err := ReadAnyLimit(r, maxElements)
	if err != nil {
		return nil, err
	}
	if f != nil {
		return nil, fmt.Errorf("field: float64-lane file where float32 expected")
	}
	return f32, nil
}

func readPayload32(r io.Reader, data []float32) error {
	bp := acquireStaging()
	defer releaseStaging(bp)
	buf := (*bp)[:4*4096]
	for off := 0; off < len(data); off += 4096 {
		end := off + 4096
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		if _, err := io.ReadFull(r, buf[:4*len(chunk)]); err != nil {
			return fmt.Errorf("field: short body: %w", err)
		}
		for i := range chunk {
			chunk[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return nil
}
