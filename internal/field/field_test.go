package field

import (
	"bytes"
	"encoding/binary"
	"testing"

	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func random2D(rows, cols int, seed uint64) *grid.Grid {
	rng := xrand.New(seed)
	g := grid.New(rows, cols)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	return g
}

func TestViewsShareData(t *testing.T) {
	g := random2D(6, 7, 1)
	f := FromGrid(g)
	f.Data[3] = 42
	if g.Data[3] != 42 {
		t.Fatal("FromGrid copied instead of sharing")
	}
	back, err := f.AsGrid()
	if err != nil || back.Rows != 6 || back.Cols != 7 {
		t.Fatalf("AsGrid: %v %+v", err, back)
	}
	v := grid.NewVolume(2, 3, 4)
	fv := FromVolume(v)
	if fv.NDim() != 3 || fv.Len() != 24 {
		t.Fatalf("FromVolume shape %v", fv.Shape)
	}
	if _, err := fv.AsGrid(); err == nil {
		t.Fatal("rank-3 field must not view as grid")
	}
	if _, err := f.AsVolume(); err == nil {
		t.Fatal("rank-2 field must not view as volume")
	}
}

// TestSummaryMatchesGridBitwise pins the claim every statistic relies
// on: field summaries reproduce grid summaries exactly.
func TestSummaryMatchesGridBitwise(t *testing.T) {
	g := random2D(33, 57, 9)
	sg, sf := g.Summary(), FromGrid(g).Summary()
	if sg != sf {
		t.Fatalf("summary mismatch: %+v vs %+v", sg, sf)
	}
}

// TestWindowMatchesGridWindow checks rank-2 window extraction equals
// the grid implementation, including clipped edge windows.
func TestWindowMatchesGridWindow(t *testing.T) {
	g := random2D(20, 14, 3)
	f := FromGrid(g)
	for _, o := range [][2]int{{0, 0}, {8, 8}, {16, 8}, {19, 13}} {
		wg := g.Window(o[0], o[1], 8, 8)
		wf := f.Window([]int{o[0], o[1]}, 8)
		if wf.Shape[0] != wg.Rows || wf.Shape[1] != wg.Cols {
			t.Fatalf("origin %v: shape %v vs %dx%d", o, wf.Shape, wg.Rows, wg.Cols)
		}
		for i := range wg.Data {
			if wf.Data[i] != wg.Data[i] {
				t.Fatalf("origin %v element %d differs", o, i)
			}
		}
	}
}

func TestWindow3D(t *testing.T) {
	v := grid.NewVolume(5, 6, 7)
	for i := range v.Data {
		v.Data[i] = float64(i)
	}
	w := FromVolume(v).Window([]int{1, 2, 3}, 3)
	if w.Shape[0] != 3 || w.Shape[1] != 3 || w.Shape[2] != 3 {
		t.Fatalf("shape %v", w.Shape)
	}
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				if got, want := w.At(z, y, x), v.At(1+z, 2+y, 3+x); got != want {
					t.Fatalf("(%d,%d,%d): %v want %v", z, y, x, got, want)
				}
			}
		}
	}
	// clipped at the far corner
	c := FromVolume(v).Window([]int{4, 5, 6}, 3)
	if c.Shape[0] != 1 || c.Shape[1] != 1 || c.Shape[2] != 1 {
		t.Fatalf("clipped shape %v", c.Shape)
	}
}

func TestTileOriginsMatchGrid(t *testing.T) {
	g := random2D(70, 50, 4)
	f := FromGrid(g)
	want := g.TileOrigins(32)
	got := f.TileOrigins(32)
	if len(got) != len(want) || len(got) != f.NumTiles(32) {
		t.Fatalf("%d origins, want %d (NumTiles %d)", len(got), len(want), f.NumTiles(32))
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("origin %d: %v want %v", i, got[i], want[i])
		}
	}
}

func TestTileOrigins3DOrder(t *testing.T) {
	f := New(4, 4, 4)
	got := f.TileOrigins(4)
	if len(got) != 1 || got[0][0] != 0 {
		t.Fatalf("single tile expected, got %v", got)
	}
	f = New(8, 4, 8)
	origins := f.TileOrigins(4)
	want := [][]int{{0, 0, 0}, {0, 0, 4}, {4, 0, 0}, {4, 0, 4}}
	if len(origins) != len(want) {
		t.Fatalf("%d origins want %d", len(origins), len(want))
	}
	for i := range want {
		for k := range want[i] {
			if origins[i][k] != want[i][k] {
				t.Fatalf("origin %d: %v want %v", i, origins[i], want[i])
			}
		}
	}
}

func TestBinaryRoundtripTagged(t *testing.T) {
	f := New(3, 4, 5)
	rng := xrand.New(7)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if err := f.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameShape(f) {
		t.Fatalf("shape %v want %v", got.Shape, f.Shape)
	}
	for i := range f.Data {
		if got.Data[i] != f.Data[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}

// TestBinaryLegacyInterop checks both directions of 2D compatibility:
// grid-written files read back as fields, and field-written rank-2
// files read back through grid.ReadBinary.
func TestBinaryLegacyInterop(t *testing.T) {
	g := random2D(9, 11, 5)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.NDim() != 2 || f.Shape[0] != 9 || f.Shape[1] != 11 {
		t.Fatalf("shape %v", f.Shape)
	}
	for i := range g.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatalf("element %d differs", i)
		}
	}
	buf.Reset()
	if err := f.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := grid.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Rows != 9 || g2.Cols != 11 {
		t.Fatalf("grid %dx%d", g2.Rows, g2.Cols)
	}
}

func TestMaxAbsDiffAndMSE(t *testing.T) {
	a := New(2, 3, 4)
	b := New(2, 3, 4)
	b.Data[5] = 2
	d, err := a.MaxAbsDiff(b)
	if err != nil || d != 2 {
		t.Fatalf("MaxAbsDiff %v %v", d, err)
	}
	mse, err := a.MSE(b)
	if err != nil || mse != 4.0/24 {
		t.Fatalf("MSE %v %v", mse, err)
	}
	if _, err := a.MaxAbsDiff(New(2, 3)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

// TestReadBinaryRejectsOverflowingHeaders feeds headers whose element
// counts wrap int64; the reader must error, not panic in makeslice.
func TestReadBinaryRejectsOverflowingHeaders(t *testing.T) {
	legacy := make([]byte, 8)
	for i := 0; i < 8; i += 4 {
		// 3037000500² ≈ 2^63.09 wraps negative in int64.
		legacy[i], legacy[i+1], legacy[i+2], legacy[i+3] = 0x34, 0x33, 0x05, 0xb5
	}
	if _, err := ReadBinary(bytes.NewReader(legacy)); err == nil {
		t.Fatal("expected error for overflowing legacy dimensions")
	}
	tagged := append([]byte{'L', 'C', 'F', '1', 8, 0, 0, 0}, bytes.Repeat([]byte{0xff, 0xff, 0xff, 0x7f}, 8)...)
	if _, err := ReadBinary(bytes.NewReader(tagged)); err == nil {
		t.Fatal("expected error for overflowing tagged shape")
	}
}

// TestReadBinaryRejectsZeroExtents pins the upload-hardening rule: no
// writer produces a zero extent, so a header claiming one is malformed
// and must error in both layouts before any allocation.
func TestReadBinaryRejectsZeroExtents(t *testing.T) {
	legacy := make([]byte, 8)
	binary.LittleEndian.PutUint32(legacy[0:], 0)
	binary.LittleEndian.PutUint32(legacy[4:], 16)
	if _, err := ReadBinary(bytes.NewReader(legacy)); err == nil {
		t.Fatal("expected error for zero legacy dimension")
	}
	tagged := []byte{'L', 'C', 'F', '1', 3, 0, 0, 0}
	for _, d := range []uint32{4, 0, 4} {
		tagged = binary.LittleEndian.AppendUint32(tagged, d)
	}
	if _, err := ReadBinary(bytes.NewReader(tagged)); err == nil {
		t.Fatal("expected error for zero tagged extent")
	}
}

// TestReadBinaryLimitCapsBeforeAllocating feeds headers that are
// internally consistent but claim fields far beyond the caller's
// budget: the reader must reject them from the 8- to 40-byte header
// alone. The tiny test budget doubles as the allocation probe — if the
// reader allocated the claimed payload first, the 1<<20-element claim
// below would still succeed, so the error proves validation precedes
// allocation.
func TestReadBinaryLimitCapsBeforeAllocating(t *testing.T) {
	legacy := make([]byte, 8)
	binary.LittleEndian.PutUint32(legacy[0:], 1024)
	binary.LittleEndian.PutUint32(legacy[4:], 1024)
	if _, err := ReadBinaryLimit(bytes.NewReader(legacy), 1<<10); err == nil {
		t.Fatal("expected cap error for 1M-element legacy claim under a 1K budget")
	}
	tagged := []byte{'L', 'C', 'F', '1', 3, 0, 0, 0}
	for _, d := range []uint32{128, 128, 128} {
		tagged = binary.LittleEndian.AppendUint32(tagged, d)
	}
	if _, err := ReadBinaryLimit(bytes.NewReader(tagged), 1<<10); err == nil {
		t.Fatal("expected cap error for 2M-element tagged claim under a 1K budget")
	}
	// A claim within budget still round-trips.
	f := New(4, 4)
	f.Data[5] = 42
	var buf bytes.Buffer
	if err := f.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryLimit(&buf, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[5] != 42 {
		t.Fatalf("round trip lost data: %v", got.Data[5])
	}
	// Budgets above the absolute ceiling clamp to it rather than
	// weakening the guarantee.
	huge := []byte{'L', 'C', 'F', '1', 2, 0, 0, 0}
	for _, d := range []uint32{1 << 16, 1 << 16} {
		huge = binary.LittleEndian.AppendUint32(huge, d)
	}
	if _, err := ReadBinaryLimit(bytes.NewReader(huge), 1<<40); err == nil {
		t.Fatal("expected absolute ceiling to reject 2^32-element claim")
	}
}

func TestFromDataValidation(t *testing.T) {
	if _, err := FromData([]int{2, 3}, make([]float64, 5)); err == nil {
		t.Fatal("expected length mismatch error")
	}
	f, err := FromData([]int{2, 3}, make([]float64, 6))
	if err != nil || f.Len() != 6 || f.SizeBytes() != 48 {
		t.Fatalf("%v %v", f, err)
	}
	if f.MinDim() != 2 {
		t.Fatalf("MinDim %d", f.MinDim())
	}
}

// TestWindowIntoReusesStorage pins the zero-allocation contract of the
// pooled window path: after the first extraction, refilling the same
// destination (same or smaller window) allocates nothing and matches a
// fresh Window bitwise.
func TestWindowIntoReusesStorage(t *testing.T) {
	g := random2D(24, 24, 8)
	f := FromGrid(g)
	dst := new(Field)
	f.WindowInto(dst, []int{0, 0}, 8)
	data0 := &dst.Data[0]
	origin := []int{8, 8}
	allocs := testing.AllocsPerRun(50, func() {
		f.WindowInto(dst, origin, 8)
	})
	if allocs != 0 {
		t.Fatalf("warm WindowInto allocates %v per call, want 0", allocs)
	}
	if &dst.Data[0] != data0 {
		t.Fatal("warm WindowInto replaced the backing array")
	}
	for _, o := range [][]int{{0, 0}, {8, 16}, {20, 20}} {
		want := f.Window(o, 8)
		got := f.WindowInto(dst, o, 8)
		if len(got.Shape) != len(want.Shape) || got.Shape[0] != want.Shape[0] || got.Shape[1] != want.Shape[1] {
			t.Fatalf("origin %v: shape %v vs %v", o, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("origin %v: element %d differs", o, i)
			}
		}
	}
	// Growing reuse: a larger window re-allocates once, then holds.
	f.WindowInto(dst, []int{0, 0}, 16)
	if dst.Shape[0] != 16 || len(dst.Data) != 256 {
		t.Fatalf("grown window shape %v len %d", dst.Shape, len(dst.Data))
	}
}
