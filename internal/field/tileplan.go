package field

// Tile geometry for the out-of-core streaming statistics. The windowed
// estimators step their window origins by the window edge h, so the
// origin lattice is the "window grid"; a streaming pass partitions that
// grid into h-aligned element-space boxes (tiles) small enough for the
// byte budget, reads each box once, and evaluates the windows inside
// it. Because tiles are h-aligned, every window lies entirely inside
// one tile (clipped only at the field boundary, exactly as in RAM), so
// a window solve sees identical element values whatever the tile
// decomposition or halo — the geometric fact the bit-identity contract
// of the streaming path rests on.

import "fmt"

// Tile is a half-open element-space box [Lo, Hi).
type Tile struct {
	Lo, Hi []int
}

// StreamOptions parameterize the streaming windowed statistics.
type StreamOptions struct {
	// BudgetBytes caps the widened (8 bytes/element) tile block a
	// streaming statistic holds at once. <= 0 means a single tile
	// covering the whole field.
	BudgetBytes int64
	// Halo pads every tile read by this many elements on each side,
	// clipped at the field boundary. Windowed results are bit-identical
	// for every halo ≥ 0 (windows never reach into the padding); the
	// knob exists for overlap-hungry consumers and the identity tests.
	// Halo reads are on top of BudgetBytes.
	Halo int
}

// PlanWindowTiles partitions the h-aligned window lattice of shape into
// tiles of at most maxElems elements each (<= 0 means one tile covers
// everything). Tiles grow from the last axis toward the first, so
// whenever the budget allows, a tile is a slab of whole axis-0 planes
// and its block read is one sequential I/O. The only failure is a
// budget too small to hold even a single h-window.
func PlanWindowTiles(shape []int, h int, maxElems int64) ([]Tile, error) {
	if h <= 0 {
		return nil, fmt.Errorf("field: non-positive window edge %d", h)
	}
	d := len(shape)
	if d == 0 {
		return nil, fmt.Errorf("field: rank-0 shape has no tiles")
	}
	wc := make([]int, d) // windows per axis
	for k, s := range shape {
		if s <= 0 {
			return nil, fmt.Errorf("field: non-positive extent in shape %v", shape)
		}
		wc[k] = (s + h - 1) / h
	}
	// extent(tw, k): elements tw windows cover on axis k (clip bound).
	extent := func(tw, k int) int64 {
		e := int64(tw) * int64(h)
		if e > int64(shape[k]) {
			e = int64(shape[k])
		}
		return e
	}
	tw := make([]int, d) // tile size in windows per axis
	for k := range tw {
		tw[k] = 1
	}
	elems := func() int64 {
		p := int64(1)
		for k := range tw {
			p *= extent(tw[k], k)
		}
		return p
	}
	if maxElems <= 0 {
		copy(tw, wc)
	} else {
		if elems() > maxElems {
			return nil, fmt.Errorf("field: budget of %d elements cannot hold one %d-window of shape %v",
				maxElems, h, shape)
		}
		for k := d - 1; k >= 0; k-- {
			for tw[k] < wc[k] {
				tw[k]++
				if elems() > maxElems {
					tw[k]--
					break
				}
			}
			if tw[k] < wc[k] {
				break // this axis is split; earlier axes stay at one window
			}
		}
	}
	var tiles []Tile
	cur := make([]int, d) // window coordinate of the tile corner
	for {
		lo := make([]int, d)
		hi := make([]int, d)
		for k := 0; k < d; k++ {
			lo[k] = cur[k] * h
			e := (cur[k] + tw[k]) * h
			if e > shape[k] {
				e = shape[k]
			}
			hi[k] = e
		}
		tiles = append(tiles, Tile{Lo: lo, Hi: hi})
		k := d - 1
		for ; k >= 0; k-- {
			cur[k] += tw[k]
			if cur[k] < wc[k] {
				break
			}
			cur[k] = 0
		}
		if k < 0 {
			break
		}
	}
	return tiles, nil
}

// ExpandHalo returns [lo-halo, hi+halo) clipped to shape — the actual
// read box of a halo-padded tile.
func ExpandHalo(lo, hi, shape []int, halo int) (blo, bhi []int) {
	d := len(shape)
	blo = make([]int, d)
	bhi = make([]int, d)
	for k := 0; k < d; k++ {
		blo[k] = lo[k] - halo
		if blo[k] < 0 {
			blo[k] = 0
		}
		bhi[k] = hi[k] + halo
		if bhi[k] > shape[k] {
			bhi[k] = shape[k]
		}
	}
	return blo, bhi
}

// WindowGrid indexes the h-aligned window lattice of a shape: Counts
// lists windows per axis and the global window index is the
// lexicographic (slowest-axis-first) rank of a window's coordinate —
// exactly the order TileOrigins enumerates, which is the fold order the
// in-RAM windowed statistics use.
type WindowGrid struct {
	Shape  []int
	H      int
	Counts []int
}

// NewWindowGrid builds the window lattice of shape with edge h.
func NewWindowGrid(shape []int, h int) *WindowGrid {
	g := &WindowGrid{Shape: shape, H: h, Counts: make([]int, len(shape))}
	for k, s := range shape {
		g.Counts[k] = (s + h - 1) / h
	}
	return g
}

// Total returns the number of windows — NumTiles of the in-RAM field.
func (g *WindowGrid) Total() int {
	n := 1
	for _, c := range g.Counts {
		n *= c
	}
	return n
}

// TileWindows indexes the windows whose origins lie inside tile t
// (which must be h-aligned, as produced by PlanWindowTiles).
func (g *WindowGrid) TileWindows(t Tile) *TileWindows {
	d := len(g.Shape)
	tw := &TileWindows{g: g, lo: make([]int, d), n: make([]int, d), total: 1}
	for k := 0; k < d; k++ {
		tw.lo[k] = t.Lo[k] / g.H
		tw.n[k] = (t.Hi[k]+g.H-1)/g.H - tw.lo[k]
		tw.total *= tw.n[k]
	}
	return tw
}

// TileWindows is the window sub-lattice of one tile.
type TileWindows struct {
	g     *WindowGrid
	lo, n []int
	total int
}

// Len returns how many windows the tile holds.
func (tw *TileWindows) Len() int { return tw.total }

// Window decodes the j-th window of the tile (lexicographic within the
// tile) into its global window index and element-space origin; the
// origin is written into buf (length = rank) and returned.
func (tw *TileWindows) Window(j int, buf []int) (global int, origin []int) {
	d := len(tw.n)
	for k := d - 1; k >= 0; k-- {
		buf[k] = tw.lo[k] + j%tw.n[k]
		j /= tw.n[k]
	}
	for k := 0; k < d; k++ {
		global = global*tw.g.Counts[k] + buf[k]
	}
	for k := 0; k < d; k++ {
		buf[k] *= tw.g.H
	}
	return global, buf
}
