package field

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"lossycorr/internal/xrand"
)

func randomField32Bin(shape []int, seed uint64) *Field32 {
	rng := xrand.New(seed)
	f := New32(shape...)
	for i := range f.Data {
		f.Data[i] = float32(rng.NormFloat64())
	}
	return f
}

// TestBinary32Roundtrip pins the float32 LCF1 layout for every rank,
// including rank 2 (which the float64 writer emits in legacy layout —
// the float32 lane always writes the tagged form so the element type
// is never ambiguous).
func TestBinary32Roundtrip(t *testing.T) {
	for _, shape := range [][]int{{7}, {9, 11}, {3, 4, 5}, {2, 3, 2, 2}} {
		f := randomField32Bin(shape, 3)
		var buf bytes.Buffer
		if err := f.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary32(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !got.SameShape(f) {
			t.Fatalf("shape %v want %v", got.Shape, f.Shape)
		}
		for i := range f.Data {
			if got.Data[i] != f.Data[i] {
				t.Fatalf("shape %v element %d differs", shape, i)
			}
		}
	}
}

// TestReadAnyLimitDispatch pins lane auto-detection: one reader call
// classifies float64-tagged, float32-tagged, and legacy-2D streams.
func TestReadAnyLimitDispatch(t *testing.T) {
	f64 := New(3, 4, 5)
	f64.Data[7] = 1.5
	var buf bytes.Buffer
	if err := f64.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	w, n, err := ReadAnyLimit(bytes.NewReader(buf.Bytes()), 1<<20)
	if err != nil || w == nil || n != nil {
		t.Fatalf("f64 stream: (%v, %v, %v)", w, n, err)
	}

	f32 := randomField32Bin([]int{6, 7}, 5)
	buf.Reset()
	if err := f32.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	w, n, err = ReadAnyLimit(bytes.NewReader(buf.Bytes()), 1<<20)
	if err != nil || w != nil || n == nil {
		t.Fatalf("f32 stream: (%v, %v, %v)", w, n, err)
	}
	if !n.SameShape(f32) || n.Data[3] != f32.Data[3] {
		t.Fatal("f32 payload mangled")
	}

	// Legacy 2D: two uint32 dims then float64 payload.
	legacy := binary.LittleEndian.AppendUint32(nil, 2)
	legacy = binary.LittleEndian.AppendUint32(legacy, 3)
	for i := 0; i < 6; i++ {
		legacy = binary.LittleEndian.AppendUint64(legacy, math.Float64bits(float64(i)))
	}
	w, n, err = ReadAnyLimit(bytes.NewReader(legacy), 1<<20)
	if err != nil || w == nil || n != nil {
		t.Fatalf("legacy stream: (%v, %v, %v)", w, n, err)
	}
	if w.NDim() != 2 || w.Data[5] != 5 {
		t.Fatal("legacy payload mangled")
	}
}

// TestReadBinaryWidensFloat32 pins the widening bridge: the float64
// reader accepts a float32 file and widens it exactly, so existing
// consumers see the float32 lane transparently.
func TestReadBinaryWidensFloat32(t *testing.T) {
	f32 := randomField32Bin([]int{5, 8}, 9)
	var buf bytes.Buffer
	if err := f32.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	wide, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !sameExtents(wide.Shape, f32.Shape) {
		t.Fatalf("shape %v want %v", wide.Shape, f32.Shape)
	}
	for i := range f32.Data {
		if wide.Data[i] != float64(f32.Data[i]) {
			t.Fatalf("element %d not exactly widened", i)
		}
	}
}

// TestReadBinary32RejectsF64Lane pins the lane mismatch error: a
// float64 stream must not silently reinterpret as float32.
func TestReadBinary32RejectsF64Lane(t *testing.T) {
	f := New(4, 4)
	var buf bytes.Buffer
	if err := f.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary32(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("float64 stream accepted by float32 reader")
	}
}

// TestReadBinary32LimitCaps pins that the element budget is enforced
// from the header alone on the float32 lane too.
func TestReadBinary32LimitCaps(t *testing.T) {
	hdr := []byte{'L', 'C', 'F', '1'}
	hdr = binary.LittleEndian.AppendUint32(hdr, 2|f32LaneFlag)
	hdr = binary.LittleEndian.AppendUint32(hdr, 2048)
	hdr = binary.LittleEndian.AppendUint32(hdr, 2048)
	if _, err := ReadBinary32Limit(bytes.NewReader(hdr), 1<<10); err == nil {
		t.Fatal("expected cap error for 4M-element float32 claim under a 1K budget")
	}
}

// FuzzFieldBinaryRoundTrip drives ReadAnyLimit with arbitrary bytes:
// it must never panic, and anything it accepts must survive a
// write-reread round trip bit-for-bit on either lane.
func FuzzFieldBinaryRoundTrip(f *testing.F) {
	seed64 := func(shape ...int) []byte {
		fd := New(shape...)
		var buf bytes.Buffer
		_ = fd.WriteBinary(&buf)
		return buf.Bytes()
	}
	seed32 := func(shape ...int) []byte {
		fd := New32(shape...)
		for i := range fd.Data {
			fd.Data[i] = float32(i) * 0.5
		}
		var buf bytes.Buffer
		_ = fd.WriteBinary(&buf)
		return buf.Bytes()
	}
	f.Add(seed64(3, 4))
	f.Add(seed64(2, 3, 4))
	f.Add(seed32(3, 4))
	f.Add(seed32(2, 3, 4))
	// Hostile headers: f32 flag with absurd rank, truncated f32 payload.
	bad := []byte{'L', 'C', 'F', '1'}
	bad = binary.LittleEndian.AppendUint32(bad, 200|f32LaneFlag)
	f.Add(bad)
	trunc := seed32(8, 8)
	f.Add(trunc[:len(trunc)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		wide, narrow, err := ReadAnyLimit(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		switch {
		case wide != nil:
			if err := wide.WriteBinary(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for i := range wide.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(wide.Data[i]) {
					t.Fatalf("f64 element %d changed across round trip", i)
				}
			}
		case narrow != nil:
			if err := narrow.WriteBinary(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := ReadBinary32(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for i := range narrow.Data {
				if math.Float32bits(got.Data[i]) != math.Float32bits(narrow.Data[i]) {
					t.Fatalf("f32 element %d changed across round trip", i)
				}
			}
		default:
			t.Fatal("ReadAnyLimit returned neither lane without error")
		}
	})
}
