// Package field provides the dimension-generic dense scalar field the
// analysis pipeline is built on: one contiguous row-major array plus a
// shape, viewable as a 2D grid or a 3D volume without copying. The
// statistics, codec, and orchestration layers operate on *Field, so a
// windowed statistic or a registry lookup is written once and works for
// any rank.
//
// Layout matches the existing containers exactly: the last dimension
// varies fastest, so a rank-2 field shares its Data slice with a
// grid.Grid (row-major) and a rank-3 field with a grid.Volume (x
// fastest, Miranda's (nz, ny, nx) slab order). Conversions are O(1)
// views, not copies, which is what keeps the generic pipeline
// bit-identical to the historical 2D one.
package field

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"lossycorr/internal/grid"
)

// stagingPool recycles the fixed 32 KiB byte buffers every payload
// reader and the tile reader stage their I/O through, so concurrent
// parses (the service upload path, parallel tile streams) stop
// allocating a staging slice per call.
var stagingPool = sync.Pool{New: func() any {
	b := make([]byte, 8*4096)
	return &b
}}

func acquireStaging() *[]byte  { return stagingPool.Get().(*[]byte) }
func releaseStaging(b *[]byte) { stagingPool.Put(b) }

// Field is a dense scalar field of arbitrary rank. Shape lists the
// extents slowest-varying first; element (i_0, …, i_{d-1}) lives at
// Data[((i_0·Shape[1]+i_1)·Shape[2]+i_2)·…]. The zero value is an
// empty rank-0 field.
type Field struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled field with the given shape.
func New(shape ...int) *Field {
	n, err := shapeProduct(shape)
	if err != nil {
		panic(err.Error())
	}
	return &Field{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromData wraps an existing flat slice; it does not copy. The slice
// length must equal the product of the shape.
func FromData(shape []int, data []float64) (*Field, error) {
	n, err := shapeProduct(shape)
	if err != nil {
		return nil, err
	}
	if len(data) != n {
		return nil, fmt.Errorf("field: data length %d != product of shape %v", len(data), shape)
	}
	return &Field{Shape: append([]int(nil), shape...), Data: data}, nil
}

// FromGrid views a 2D grid as a rank-2 field, sharing its data.
func FromGrid(g *grid.Grid) *Field {
	return &Field{Shape: []int{g.Rows, g.Cols}, Data: g.Data}
}

// FromVolume views a 3D volume as a rank-3 field, sharing its data.
func FromVolume(v *grid.Volume) *Field {
	return &Field{Shape: []int{v.Nz, v.Ny, v.Nx}, Data: v.Data}
}

// AsGrid views a rank-2 field as a grid, sharing its data.
func (f *Field) AsGrid() (*grid.Grid, error) {
	if len(f.Shape) != 2 {
		return nil, fmt.Errorf("field: rank-%d field is not a 2D grid", len(f.Shape))
	}
	return &grid.Grid{Rows: f.Shape[0], Cols: f.Shape[1], Data: f.Data}, nil
}

// AsVolume views a rank-3 field as a volume, sharing its data.
func (f *Field) AsVolume() (*grid.Volume, error) {
	if len(f.Shape) != 3 {
		return nil, fmt.Errorf("field: rank-%d field is not a 3D volume", len(f.Shape))
	}
	return &grid.Volume{Nz: f.Shape[0], Ny: f.Shape[1], Nx: f.Shape[2], Data: f.Data}, nil
}

// NDim returns the rank.
func (f *Field) NDim() int { return len(f.Shape) }

// Len returns the number of elements.
func (f *Field) Len() int {
	n := 1
	for _, s := range f.Shape {
		n *= s
	}
	return n
}

// SizeBytes returns the uncompressed size in bytes (8 per element).
func (f *Field) SizeBytes() int { return f.Len() * 8 }

// MinDim returns the smallest extent (0 for a rank-0 field).
func (f *Field) MinDim() int {
	if len(f.Shape) == 0 {
		return 0
	}
	m := f.Shape[0]
	for _, s := range f.Shape[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// Strides returns the element stride of each dimension (last is 1).
func (f *Field) Strides() []int {
	return stridesOf(f.Shape, make([]int, len(f.Shape)))
}

// At returns the element at the given index tuple.
func (f *Field) At(idx ...int) float64 {
	return f.Data[f.flatIndex(idx)]
}

// Set assigns the element at the given index tuple.
func (f *Field) Set(v float64, idx ...int) {
	f.Data[f.flatIndex(idx)] = v
}

func (f *Field) flatIndex(idx []int) int {
	return flatOffset(f.Shape, idx)
}

// Clone returns a deep copy.
func (f *Field) Clone() *Field {
	out := &Field{Shape: append([]int(nil), f.Shape...), Data: make([]float64, len(f.Data))}
	copy(out.Data, f.Data)
	return out
}

// Summary computes min/max/mean/variance in one pass (Welford), with
// arithmetic identical to (*grid.Grid).Summary so statistics computed
// through the field layer reproduce the historical 2D values bitwise.
func (f *Field) Summary() grid.Stats {
	return summarize(f.Data)
}

// SameShape reports whether two fields agree in rank and extents.
func (f *Field) SameShape(o *Field) bool {
	return sameExtents(f.Shape, o.Shape)
}

// MaxAbsDiff returns max|f-o| over all elements; shapes must agree.
func (f *Field) MaxAbsDiff(o *Field) (float64, error) {
	if !f.SameShape(o) {
		return 0, fmt.Errorf("field: shape mismatch %v vs %v", f.Shape, o.Shape)
	}
	return maxAbsDiffData(f.Data, o.Data), nil
}

// MSE returns the mean squared error between two equally shaped fields.
func (f *Field) MSE(o *Field) (float64, error) {
	if !f.SameShape(o) {
		return 0, fmt.Errorf("field: shape mismatch %v vs %v", f.Shape, o.Shape)
	}
	return mseData(f.Data, o.Data), nil
}

// Window copies the hypercube with the given origin corner and edge h,
// clipped to the field, so callers tiling a non-multiple field receive
// ragged edge windows — the rank-generic form of (*grid.Grid).Window.
func (f *Field) Window(origin []int, h int) *Field {
	return f.WindowInto(new(Field), origin, h)
}

// WindowInto is Window extracting into dst, reusing dst's shape and
// data storage when their capacities allow — the zero-allocation form
// the windowed statistics feed from a per-worker pool. It returns dst.
func (f *Field) WindowInto(dst *Field, origin []int, h int) *Field {
	dst.Shape, dst.Data = windowIntoData(f.Shape, f.Data, dst.Shape, dst.Data, origin, h)
	return dst
}

// TileOrigins returns the origin corner of every h-edged tile covering
// the field in lexicographic (slowest-dimension-first) order — for a
// rank-2 field, exactly the order (*grid.Grid).TileOrigins visits.
func (f *Field) TileOrigins(h int) [][]int {
	return tileOriginsOf(f.Shape, h)
}

// NumTiles returns how many h-edged tiles (including clipped edge
// tiles) cover the field.
func (f *Field) NumTiles(h int) int {
	return numTilesOf(f.Shape, h)
}

// Binary format. Rank-2 float64 fields use the legacy grid layout (two
// uint32 dimensions + float64 payload, little endian) so files written
// by either layer stay interchangeable. Other ranks use a tagged
// layout: the magic "LCF1", a uint32 rank word, the uint32 extents,
// then the payload. ReadBinary sniffs the magic and accepts both.
//
// The float32 lane sets f32LaneFlag in the rank word (rank stays in
// the low bits) and stores a float32 payload; Field32.WriteBinary
// emits it for every rank, including 2. Readers predating the flag
// reject such files with "unreasonable rank" rather than misreading
// them, and legacy-2D/float64 detection is unchanged.

var magic = [4]byte{'L', 'C', 'F', '1'}

// f32LaneFlag marks a float32 payload in the LCF1 rank word. The flag
// sits far above the 1..8 rank range, so any flagged word read by an
// older binary fails rank validation instead of decoding garbage.
const f32LaneFlag = 0x00010000

// maxElems is the absolute element-count ceiling of ReadBinary: even a
// well-formed header may not ask for more than 2^30 elements (8 GiB of
// float64), so a crafted 8-byte header can never drive a larger
// allocation. Callers serving untrusted uploads pass a much smaller
// cap through ReadBinaryLimit.
const maxElems = 1 << 30

// validateShape checks a decoded header shape before anything is
// allocated: every extent must be strictly positive (a zero extent is
// a malformed header, not an empty field — no writer produces one) and
// bounded by limit elements, and the running element product must stay
// under limit too, which also keeps it far from int64 overflow (each
// factor and every prefix product is <= 2^30). Returns the element
// count.
func validateShape(shape []int, limit int) (int, error) {
	if limit <= 0 || limit > maxElems {
		limit = maxElems
	}
	n := 1
	for k, s := range shape {
		if s <= 0 || s > limit {
			return 0, fmt.Errorf("field: unreasonable extent in %v", shape[:k+1])
		}
		n *= s
		if n > limit {
			return 0, fmt.Errorf("field: shape %v exceeds %d-element cap", shape[:k+1], limit)
		}
	}
	return n, nil
}

// WriteBinary writes the field in the format described above.
func (f *Field) WriteBinary(w io.Writer) error {
	if len(f.Shape) == 2 {
		g, err := f.AsGrid()
		if err != nil {
			return err
		}
		return g.WriteBinary(w)
	}
	hdr := make([]byte, 8+4*len(f.Shape))
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(f.Shape)))
	for k, s := range f.Shape {
		binary.LittleEndian.PutUint32(hdr[8+4*k:], uint32(s))
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8*4096)
	for off := 0; off < len(f.Data); off += 4096 {
		end := off + 4096
		if end > len(f.Data) {
			end = len(f.Data)
		}
		chunk := f.Data[off:end]
		for i, v := range chunk {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := w.Write(buf[:8*len(chunk)]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary reads a field written by WriteBinary or by
// (*grid.Grid).WriteBinary, detecting the layout from the header, with
// the default 2^30-element allocation cap.
func ReadBinary(r io.Reader) (*Field, error) {
	return ReadBinaryLimit(r, 0)
}

// ReadBinaryLimit is ReadBinary with an explicit allocation budget:
// the header's claimed element count must not exceed maxElements
// (values <= 0 or above the 2^30 absolute ceiling fall back to that
// ceiling). The shape is fully validated — positive extents, per-extent
// and running-product caps, no int overflow — before a single payload
// byte is allocated, so an untrusted upload whose 8-byte header claims
// a multi-GB field costs nothing but the header read. This is the
// entry point the corrcompd upload path uses, with its budget derived
// from the configured request-body limit.
func ReadBinaryLimit(r io.Reader, maxElements int) (*Field, error) {
	shape, f32, _, err := readHeaderFrom(r, maxElements)
	if err != nil {
		return nil, err
	}
	f := New(shape...)
	if f32 {
		// Widen during the chunked payload read: only the float64
		// destination is ever materialized, not a full float32 copy
		// first — the staging slice is the transient.
		if err := readPayloadWide(r, f.Data); err != nil {
			return nil, err
		}
		return f, nil
	}
	if err := readPayload(r, f.Data); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadAnyLimit reads either compute lane under the same allocation
// budget, preserving the lane the file was written in: exactly one of
// the returned fields is non-nil — *Field for legacy-2D and untagged
// LCF1 (float64) layouts, *Field32 when the rank word carries
// f32LaneFlag. Callers that only speak float64 use ReadBinaryLimit,
// which widens transparently; lane-aware callers (the service upload
// path, corrcomp -f32) dispatch on which pointer is set.
func ReadAnyLimit(r io.Reader, maxElements int) (*Field, *Field32, error) {
	shape, f32, _, err := readHeaderFrom(r, maxElements)
	if err != nil {
		return nil, nil, err
	}
	if f32 {
		f := New32(shape...)
		if err := readPayload32(r, f.Data); err != nil {
			return nil, nil, err
		}
		return nil, f, nil
	}
	f := New(shape...)
	if err := readPayload(r, f.Data); err != nil {
		return nil, nil, err
	}
	return f, nil, nil
}

// readHeaderFrom consumes and validates one field header from r,
// returning the decoded shape, whether the payload is the float32 lane,
// and how many header bytes were consumed (the payload's byte offset
// for random-access readers). Shapes are fully validated against
// maxElements before the caller allocates anything.
func readHeaderFrom(r io.Reader, maxElements int) (shape []int, f32 bool, hdrLen int, err error) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, false, 0, fmt.Errorf("field: short header: %w", err)
	}
	if hdr[0] == magic[0] && hdr[1] == magic[1] && hdr[2] == magic[2] && hdr[3] == magic[3] {
		word := binary.LittleEndian.Uint32(hdr[4:])
		f32 = word&f32LaneFlag != 0
		d := int(word &^ uint32(f32LaneFlag))
		if d < 1 || d > 8 {
			return nil, false, 0, fmt.Errorf("field: unreasonable rank %d", d)
		}
		dims := make([]byte, 4*d)
		if _, err := io.ReadFull(r, dims); err != nil {
			return nil, false, 0, fmt.Errorf("field: short shape: %w", err)
		}
		shape = make([]int, d)
		for k := range shape {
			shape[k] = int(binary.LittleEndian.Uint32(dims[4*k:]))
		}
		if _, err := validateShape(shape, maxElements); err != nil {
			return nil, false, 0, err
		}
		return shape, f32, 8 + 4*d, nil
	}
	// Legacy 2D layout: the 8 bytes already read are the dimensions.
	rows := int(binary.LittleEndian.Uint32(hdr[0:]))
	cols := int(binary.LittleEndian.Uint32(hdr[4:]))
	if _, err := validateShape([]int{rows, cols}, maxElements); err != nil {
		return nil, false, 0, err
	}
	return []int{rows, cols}, false, 8, nil
}

func readPayload(r io.Reader, data []float64) error {
	bp := acquireStaging()
	defer releaseStaging(bp)
	buf := *bp
	for off := 0; off < len(data); off += 4096 {
		end := off + 4096
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		if _, err := io.ReadFull(r, buf[:8*len(chunk)]); err != nil {
			return fmt.Errorf("field: short body: %w", err)
		}
		for i := range chunk {
			chunk[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
	}
	return nil
}

// readPayloadWide reads a float32 payload directly into a float64
// destination, widening chunk by chunk through the pooled staging
// slice, so reading an f32 file into the oracle lane never holds both
// full-size lanes at once.
func readPayloadWide(r io.Reader, data []float64) error {
	bp := acquireStaging()
	defer releaseStaging(bp)
	buf := *bp
	for off := 0; off < len(data); off += 8192 {
		end := off + 8192
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		if _, err := io.ReadFull(r, buf[:4*len(chunk)]); err != nil {
			return fmt.Errorf("field: short body: %w", err)
		}
		for i := range chunk {
			chunk[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	return nil
}
