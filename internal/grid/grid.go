// Package grid provides dense 2D field and 3D volume containers used
// throughout lossycorr: row-major float64 grids with window tiling,
// summary statistics, and binary I/O compatible with the flat
// little-endian layouts used by SDRBench-style scientific datasets.
package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Grid is a dense 2D scalar field stored row-major: element (r, c) lives
// at Data[r*Cols+c]. The zero value is an empty grid.
type Grid struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-filled rows×cols grid.
func New(rows, cols int) *Grid {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("grid: negative dimensions %dx%d", rows, cols))
	}
	return &Grid{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromData wraps an existing row-major slice; it does not copy. The
// slice length must equal rows*cols.
func FromData(rows, cols int, data []float64) (*Grid, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("grid: data length %d != %d*%d", len(data), rows, cols)
	}
	return &Grid{Rows: rows, Cols: cols, Data: data}, nil
}

// FromFunc builds a grid by evaluating f at every (row, col) index.
func FromFunc(rows, cols int, f func(r, c int) float64) *Grid {
	g := New(rows, cols)
	for r := 0; r < rows; r++ {
		row := g.Data[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			row[c] = f(r, c)
		}
	}
	return g
}

// At returns the element at (r, c).
func (g *Grid) At(r, c int) float64 { return g.Data[r*g.Cols+c] }

// Set assigns the element at (r, c).
func (g *Grid) Set(r, c int, v float64) { g.Data[r*g.Cols+c] = v }

// Len returns the number of elements.
func (g *Grid) Len() int { return g.Rows * g.Cols }

// SizeBytes returns the uncompressed size in bytes (8 per element),
// the numerator of every compression ratio in the paper.
func (g *Grid) SizeBytes() int { return g.Len() * 8 }

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	out := New(g.Rows, g.Cols)
	copy(out.Data, g.Data)
	return out
}

// Row returns the r-th row as a shared (not copied) slice.
func (g *Grid) Row(r int) []float64 { return g.Data[r*g.Cols : (r+1)*g.Cols] }

// Window copies the rectangle with top-left corner (r0, c0) and the
// given extent. The window is clipped to the grid, so callers tiling a
// non-multiple grid receive ragged edge windows.
func (g *Grid) Window(r0, c0, rows, cols int) *Grid {
	if r0 < 0 || c0 < 0 || r0 >= g.Rows || c0 >= g.Cols {
		panic(fmt.Sprintf("grid: window origin (%d,%d) outside %dx%d", r0, c0, g.Rows, g.Cols))
	}
	if r0+rows > g.Rows {
		rows = g.Rows - r0
	}
	if c0+cols > g.Cols {
		cols = g.Cols - c0
	}
	w := New(rows, cols)
	for r := 0; r < rows; r++ {
		copy(w.Row(r), g.Data[(r0+r)*g.Cols+c0:(r0+r)*g.Cols+c0+cols])
	}
	return w
}

// Tiles calls fn for every window of size h×h covering the grid in a
// tiled (non-overlapping) fashion, matching the windowed statistics of
// the paper (H=32). Edge tiles are clipped. fn receives the window's
// top-left corner and the (copied) window.
func (g *Grid) Tiles(h int, fn func(r0, c0 int, w *Grid)) {
	if h <= 0 {
		panic("grid: non-positive tile size")
	}
	for r0 := 0; r0 < g.Rows; r0 += h {
		for c0 := 0; c0 < g.Cols; c0 += h {
			fn(r0, c0, g.Window(r0, c0, h, h))
		}
	}
}

// TileOrigins returns the top-left corner of every h×h tile in the
// order Tiles visits them, without copying any window — callers that
// fan tiles out over workers extract each window (Window) lazily so at
// most one window per worker is live at a time.
func (g *Grid) TileOrigins(h int) [][2]int {
	if h <= 0 {
		panic("grid: non-positive tile size")
	}
	origins := make([][2]int, 0, g.NumTiles(h))
	for r0 := 0; r0 < g.Rows; r0 += h {
		for c0 := 0; c0 < g.Cols; c0 += h {
			origins = append(origins, [2]int{r0, c0})
		}
	}
	return origins
}

// NumTiles returns how many h×h tiles (including clipped edge tiles)
// cover the grid.
func (g *Grid) NumTiles(h int) int {
	return ((g.Rows + h - 1) / h) * ((g.Cols + h - 1) / h)
}

// Stats summarizes a field.
type Stats struct {
	Min, Max   float64
	Mean       float64
	Variance   float64 // population variance
	ValueRange float64 // Max - Min
}

// Summary computes min/max/mean/variance in one pass (Welford).
func (g *Grid) Summary() Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	if g.Len() == 0 {
		return Stats{}
	}
	var mean, m2 float64
	for i, v := range g.Data {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
	}
	s.Mean = mean
	s.Variance = m2 / float64(g.Len())
	s.ValueRange = s.Max - s.Min
	return s
}

// MaxAbsDiff returns max|g-o| over all elements; the grids must agree
// in shape.
func (g *Grid) MaxAbsDiff(o *Grid) (float64, error) {
	if g.Rows != o.Rows || g.Cols != o.Cols {
		return 0, fmt.Errorf("grid: shape mismatch %dx%d vs %dx%d", g.Rows, g.Cols, o.Rows, o.Cols)
	}
	var m float64
	for i := range g.Data {
		d := math.Abs(g.Data[i] - o.Data[i])
		if d > m {
			m = d
		}
	}
	return m, nil
}

// MSE returns the mean squared error between two equally shaped grids.
func (g *Grid) MSE(o *Grid) (float64, error) {
	if g.Rows != o.Rows || g.Cols != o.Cols {
		return 0, fmt.Errorf("grid: shape mismatch %dx%d vs %dx%d", g.Rows, g.Cols, o.Rows, o.Cols)
	}
	if g.Len() == 0 {
		return 0, nil
	}
	var sum float64
	for i := range g.Data {
		d := g.Data[i] - o.Data[i]
		sum += d * d
	}
	return sum / float64(g.Len()), nil
}

// Scale multiplies every element by k in place and returns g.
func (g *Grid) Scale(k float64) *Grid {
	for i := range g.Data {
		g.Data[i] *= k
	}
	return g
}

// AddScaled adds k*o element-wise in place and returns g.
func (g *Grid) AddScaled(k float64, o *Grid) (*Grid, error) {
	if g.Rows != o.Rows || g.Cols != o.Cols {
		return nil, fmt.Errorf("grid: shape mismatch %dx%d vs %dx%d", g.Rows, g.Cols, o.Rows, o.Cols)
	}
	for i := range g.Data {
		g.Data[i] += k * o.Data[i]
	}
	return g, nil
}

// Normalize rescales the field in place to zero mean and unit variance
// (no-op for constant fields) and returns g.
func (g *Grid) Normalize() *Grid {
	s := g.Summary()
	sd := math.Sqrt(s.Variance)
	if sd == 0 {
		for i := range g.Data {
			g.Data[i] -= s.Mean
		}
		return g
	}
	for i := range g.Data {
		g.Data[i] = (g.Data[i] - s.Mean) / sd
	}
	return g
}

var errShortHeader = errors.New("grid: short header")

// WriteBinary writes the grid as a little-endian stream: two uint32
// dimensions followed by rows*cols float64 values.
func (g *Grid) WriteBinary(w io.Writer) error {
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.Rows))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.Cols))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8*g.Cols)
	for r := 0; r < g.Rows; r++ {
		row := g.Row(r)
		for c, v := range row {
			binary.LittleEndian.PutUint64(buf[8*c:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary reads a grid written by WriteBinary.
func ReadBinary(r io.Reader) (*Grid, error) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, errShortHeader
	}
	rows := int(binary.LittleEndian.Uint32(hdr[0:]))
	cols := int(binary.LittleEndian.Uint32(hdr[4:]))
	// Bounding each dimension before multiplying keeps the product from
	// wrapping int64 on a crafted header.
	const maxElems = 1 << 30
	if rows < 0 || cols < 0 || rows > maxElems || cols > maxElems || rows*cols > maxElems {
		return nil, fmt.Errorf("grid: unreasonable dimensions %dx%d", rows, cols)
	}
	g := New(rows, cols)
	buf := make([]byte, 8*cols)
	for rr := 0; rr < rows; rr++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("grid: short body: %w", err)
		}
		row := g.Row(rr)
		for c := range row {
			row[c] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*c:]))
		}
	}
	return g, nil
}

// WriteRawFloat32 writes only the payload as float32 little-endian,
// the layout used by SDRBench single-precision datasets.
func (g *Grid) WriteRawFloat32(w io.Writer) error {
	buf := make([]byte, 4*g.Cols)
	for r := 0; r < g.Rows; r++ {
		row := g.Row(r)
		for c, v := range row {
			binary.LittleEndian.PutUint32(buf[4*c:], math.Float32bits(float32(v)))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadRawFloat32 reads rows*cols float32 values into a float64 grid.
func ReadRawFloat32(r io.Reader, rows, cols int) (*Grid, error) {
	g := New(rows, cols)
	buf := make([]byte, 4*cols)
	for rr := 0; rr < rows; rr++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("grid: short float32 body: %w", err)
		}
		row := g.Row(rr)
		for c := range row {
			row[c] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*c:])))
		}
	}
	return g, nil
}

// WritePGM renders the grid as an 8-bit PGM image (min..max stretched
// to 0..255), handy for eyeballing fields as in the paper's Figure 2.
func (g *Grid) WritePGM(w io.Writer) error {
	s := g.Summary()
	scale := 0.0
	if s.ValueRange > 0 {
		scale = 255 / s.ValueRange
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", g.Cols, g.Rows); err != nil {
		return err
	}
	buf := make([]byte, g.Cols)
	for r := 0; r < g.Rows; r++ {
		row := g.Row(r)
		for c, v := range row {
			buf[c] = byte(math.Round((v - s.Min) * scale))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Volume is a dense 3D scalar field stored with x fastest, matching the
// (nz, ny, nx) slab ordering of Miranda outputs: element (z, y, x) lives
// at Data[(z*Ny+y)*Nx+x].
type Volume struct {
	Nz, Ny, Nx int
	Data       []float64
}

// NewVolume returns a zero-filled volume.
func NewVolume(nz, ny, nx int) *Volume {
	return &Volume{Nz: nz, Ny: ny, Nx: nx, Data: make([]float64, nz*ny*nx)}
}

// At returns the element at (z, y, x).
func (v *Volume) At(z, y, x int) float64 { return v.Data[(z*v.Ny+y)*v.Nx+x] }

// Set assigns the element at (z, y, x).
func (v *Volume) Set(z, y, x int, val float64) { v.Data[(z*v.Ny+y)*v.Nx+x] = val }

// SliceZ extracts the 2D slice at fixed z (a ny×nx grid), the way the
// paper slices Miranda's 3D fields along the first dimension.
func (v *Volume) SliceZ(z int) *Grid {
	if z < 0 || z >= v.Nz {
		panic(fmt.Sprintf("grid: slice index %d outside [0,%d)", z, v.Nz))
	}
	g := New(v.Ny, v.Nx)
	copy(g.Data, v.Data[z*v.Ny*v.Nx:(z+1)*v.Ny*v.Nx])
	return g
}

// EquallySpacedSlices returns n slices along z at equal spacing,
// mirroring the paper's slicing of the 256×384×384 Miranda volume.
func (v *Volume) EquallySpacedSlices(n int) []*Grid {
	if n <= 0 || v.Nz == 0 {
		return nil
	}
	if n > v.Nz {
		n = v.Nz
	}
	out := make([]*Grid, 0, n)
	step := float64(v.Nz) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, v.SliceZ(int(float64(i)*step)))
	}
	return out
}
