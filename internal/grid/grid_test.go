package grid

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	g := New(3, 4)
	if g.Rows != 3 || g.Cols != 4 || g.Len() != 12 {
		t.Fatalf("bad shape %dx%d len %d", g.Rows, g.Cols, g.Len())
	}
	for i, v := range g.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 3)
}

func TestFromData(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	g, err := FromData(2, 3, d)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(1, 2) != 6 {
		t.Fatalf("At(1,2)=%v want 6", g.At(1, 2))
	}
	g.Set(0, 1, 42)
	if d[1] != 42 {
		t.Fatal("FromData must not copy")
	}
	if _, err := FromData(2, 2, d); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestFromFunc(t *testing.T) {
	g := FromFunc(4, 5, func(r, c int) float64 { return float64(10*r + c) })
	if g.At(3, 4) != 34 || g.At(0, 0) != 0 {
		t.Fatalf("FromFunc wrong values")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(10, 10).SizeBytes(); got != 800 {
		t.Fatalf("SizeBytes=%d want 800", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := FromFunc(2, 2, func(r, c int) float64 { return 1 })
	h := g.Clone()
	h.Set(0, 0, 9)
	if g.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestWindowClipping(t *testing.T) {
	g := FromFunc(5, 5, func(r, c int) float64 { return float64(r*5 + c) })
	w := g.Window(3, 3, 4, 4)
	if w.Rows != 2 || w.Cols != 2 {
		t.Fatalf("clip produced %dx%d, want 2x2", w.Rows, w.Cols)
	}
	if w.At(0, 0) != 18 || w.At(1, 1) != 24 {
		t.Fatalf("window content wrong: %v", w.Data)
	}
}

func TestWindowPanicsOutside(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3, 3).Window(3, 0, 1, 1)
}

func TestTilesCoverEverythingOnce(t *testing.T) {
	g := FromFunc(7, 10, func(r, c int) float64 { return 1 })
	var count int
	var cells int
	g.Tiles(4, func(r0, c0 int, w *Grid) {
		count++
		cells += w.Len()
	})
	if want := g.NumTiles(4); count != want {
		t.Fatalf("tile count %d want %d", count, want)
	}
	if cells != g.Len() {
		t.Fatalf("tiles cover %d cells, want %d", cells, g.Len())
	}
}

func TestTileOriginsMatchTilesOrder(t *testing.T) {
	g := FromFunc(7, 10, func(r, c int) float64 { return 1 })
	var want [][2]int
	g.Tiles(4, func(r0, c0 int, w *Grid) {
		want = append(want, [2]int{r0, c0})
	})
	got := g.TileOrigins(4)
	if len(got) != len(want) || len(got) != g.NumTiles(4) {
		t.Fatalf("origin count %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("origin[%d] = %v want %v", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive tile size")
		}
	}()
	g.TileOrigins(0)
}

func TestNumTiles(t *testing.T) {
	g := New(32, 32)
	if n := g.NumTiles(32); n != 1 {
		t.Fatalf("NumTiles(32)=%d", n)
	}
	if n := g.NumTiles(31); n != 4 {
		t.Fatalf("NumTiles(31)=%d", n)
	}
}

func TestSummaryKnownValues(t *testing.T) {
	g, _ := FromData(1, 4, []float64{1, 2, 3, 4})
	s := g.Summary()
	if s.Min != 1 || s.Max != 4 || s.ValueRange != 3 {
		t.Fatalf("min/max wrong: %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Fatalf("mean %v", s.Mean)
	}
	if math.Abs(s.Variance-1.25) > 1e-12 {
		t.Fatalf("variance %v", s.Variance)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := New(0, 0).Summary()
	if s.Mean != 0 || s.Variance != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestMaxAbsDiffAndMSE(t *testing.T) {
	a, _ := FromData(1, 3, []float64{1, 2, 3})
	b, _ := FromData(1, 3, []float64{1, 2.5, 2})
	d, err := a.MaxAbsDiff(b)
	if err != nil || d != 1 {
		t.Fatalf("MaxAbsDiff=%v err=%v", d, err)
	}
	m, err := a.MSE(b)
	if err != nil || math.Abs(m-(0.25+1)/3) > 1e-12 {
		t.Fatalf("MSE=%v err=%v", m, err)
	}
	c := New(2, 2)
	if _, err := a.MaxAbsDiff(c); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := a.MSE(c); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestScaleAddScaled(t *testing.T) {
	a, _ := FromData(1, 2, []float64{1, 2})
	b, _ := FromData(1, 2, []float64{10, 20})
	a.Scale(2)
	if a.Data[1] != 4 {
		t.Fatal("scale wrong")
	}
	if _, err := a.AddScaled(0.1, b); err != nil {
		t.Fatal(err)
	}
	if a.Data[0] != 3 || a.Data[1] != 6 {
		t.Fatalf("AddScaled wrong: %v", a.Data)
	}
	if _, err := a.AddScaled(1, New(3, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestNormalize(t *testing.T) {
	g, _ := FromData(1, 4, []float64{2, 4, 6, 8})
	g.Normalize()
	s := g.Summary()
	if math.Abs(s.Mean) > 1e-12 || math.Abs(s.Variance-1) > 1e-12 {
		t.Fatalf("normalize gave mean=%v var=%v", s.Mean, s.Variance)
	}
	c, _ := FromData(1, 3, []float64{5, 5, 5})
	c.Normalize()
	for _, v := range c.Data {
		if v != 0 {
			t.Fatalf("constant normalize -> %v", c.Data)
		}
	}
}

func TestBinaryRoundtrip(t *testing.T) {
	g := FromFunc(6, 3, func(r, c int) float64 { return float64(r) - 2.5*float64(c) })
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := g.MaxAbsDiff(h); d != 0 {
		t.Fatalf("roundtrip diff %v", d)
	}
}

func TestBinaryRoundtripQuick(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		cols := len(vals)
		g, _ := FromData(1, cols, vals)
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			return false
		}
		h, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		for i := range vals {
			a, b := g.Data[i], h.Data[i]
			if math.IsNaN(a) != math.IsNaN(b) {
				return false
			}
			if !math.IsNaN(a) && a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected short header error")
	}
	var buf bytes.Buffer
	g := New(2, 2)
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:12]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected short body error")
	}
}

func TestRawFloat32Roundtrip(t *testing.T) {
	g := FromFunc(3, 4, func(r, c int) float64 { return float64(r) + 0.5*float64(c) })
	var buf bytes.Buffer
	if err := g.WriteRawFloat32(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadRawFloat32(&buf, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := g.MaxAbsDiff(h); d > 1e-6 {
		t.Fatalf("float32 roundtrip diff %v", d)
	}
	if _, err := ReadRawFloat32(bytes.NewReader(nil), 2, 2); err == nil {
		t.Fatal("expected short body error")
	}
}

func TestWritePGM(t *testing.T) {
	g := FromFunc(2, 3, func(r, c int) float64 { return float64(r*3 + c) })
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P5\n3 2\n255\n") {
		t.Fatalf("bad PGM header: %q", s[:12])
	}
	body := buf.Bytes()[len("P5\n3 2\n255\n"):]
	if len(body) != 6 {
		t.Fatalf("PGM body %d bytes", len(body))
	}
	if body[0] != 0 || body[5] != 255 {
		t.Fatalf("PGM stretch wrong: %v", body)
	}
}

func TestVolumeSlices(t *testing.T) {
	v := NewVolume(4, 3, 2)
	for z := 0; z < 4; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 2; x++ {
				v.Set(z, y, x, float64(100*z+10*y+x))
			}
		}
	}
	g := v.SliceZ(2)
	if g.Rows != 3 || g.Cols != 2 {
		t.Fatalf("slice shape %dx%d", g.Rows, g.Cols)
	}
	if g.At(1, 1) != 211 {
		t.Fatalf("slice content %v", g.At(1, 1))
	}
	if v.At(3, 2, 1) != 321 {
		t.Fatalf("At wrong")
	}
	slices := v.EquallySpacedSlices(2)
	if len(slices) != 2 {
		t.Fatalf("got %d slices", len(slices))
	}
	if slices[0].At(0, 0) != 0 || slices[1].At(0, 0) != 200 {
		t.Fatalf("slice spacing wrong: %v %v", slices[0].At(0, 0), slices[1].At(0, 0))
	}
	if got := v.EquallySpacedSlices(99); len(got) != 4 {
		t.Fatalf("over-request gave %d", len(got))
	}
	if got := v.EquallySpacedSlices(0); got != nil {
		t.Fatal("zero request should be nil")
	}
}

func TestVolumeSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVolume(2, 2, 2).SliceZ(5)
}
