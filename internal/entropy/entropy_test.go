package entropy

import (
	"math"
	"testing"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/szlike"
	"lossycorr/internal/xrand"
)

func TestShannonKnownDistributions(t *testing.T) {
	if h := Shannon(nil); h != 0 {
		t.Fatalf("empty entropy %v", h)
	}
	if h := Shannon([]uint16{5, 5, 5, 5}); h != 0 {
		t.Fatalf("constant entropy %v", h)
	}
	// uniform over 4 symbols: exactly 2 bits
	h := Shannon([]uint16{0, 1, 2, 3, 0, 1, 2, 3})
	if math.Abs(h-2) > 1e-12 {
		t.Fatalf("uniform-4 entropy %v want 2", h)
	}
	// p = (1/2, 1/4, 1/4): 1.5 bits
	h = Shannon([]uint16{0, 0, 1, 2})
	if math.Abs(h-1.5) > 1e-12 {
		t.Fatalf("skewed entropy %v want 1.5", h)
	}
}

func TestShannonBytes(t *testing.T) {
	if h := ShannonBytes(nil); h != 0 {
		t.Fatalf("empty %v", h)
	}
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	if h := ShannonBytes(data); math.Abs(h-8) > 1e-12 {
		t.Fatalf("uniform byte entropy %v want 8", h)
	}
}

func TestQuantizedEntropyConstantField(t *testing.T) {
	g := grid.FromFunc(16, 16, func(r, c int) float64 { return 3.5 })
	h, err := QuantizedEntropy(g, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("constant field entropy %v", h)
	}
}

func TestQuantizedEntropyGrowsWithPrecision(t *testing.T) {
	rng := xrand.New(1)
	g := grid.FromFunc(64, 64, func(r, c int) float64 { return rng.NormFloat64() })
	hCoarse, err := QuantizedEntropy(g, 1e-1)
	if err != nil {
		t.Fatal(err)
	}
	hFine, err := QuantizedEntropy(g, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if hFine <= hCoarse {
		t.Fatalf("entropy not increasing with precision: %v vs %v", hCoarse, hFine)
	}
	if _, err := QuantizedEntropy(g, 0); err == nil {
		t.Fatal("expected error for eb=0")
	}
}

func TestEstimateRatio(t *testing.T) {
	if r := EstimateRatio(64); r != 1 {
		t.Fatalf("64-bit entropy ratio %v want 1", r)
	}
	if r := EstimateRatio(8); r != 8 {
		t.Fatalf("8-bit entropy ratio %v want 8", r)
	}
	if r := EstimateRatio(0); math.IsInf(r, 1) {
		t.Fatal("zero entropy must not give infinite ratio")
	}
}

func TestEntropyTracksCompressibility(t *testing.T) {
	// smoother fields (larger range) must have lower quantized entropy
	// and larger entropy-estimated ratio, tracking the actual sz-like
	// ratio ordering
	var entropies, actual []float64
	for _, rang := range []float64{2, 8, 32} {
		f, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: rang, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		h, err := QuantizedEntropy(f, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		entropies = append(entropies, h)
		c := szlike.Compressor{}
		data, err := c.Compress(f, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		actual = append(actual, float64(f.SizeBytes())/float64(len(data)))
	}
	// note: quantized entropy without decorrelation barely moves with
	// the range (the marginal distribution is N(0,1) regardless), so we
	// only require it not to contradict the ordering wildly; the real
	// compressors' predictive stages are what exploit correlation.
	if !(actual[0] < actual[1] && actual[1] < actual[2]) {
		t.Fatalf("actual ratios not ordered: %v", actual)
	}
	if entropies[2] > entropies[0]+1 {
		t.Fatalf("entropy strongly anti-ordered: %v", entropies)
	}
}

func TestSampledQuantizedEntropyApproximatesFull(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 96, Cols: 96, Range: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	full, err := QuantizedEntropy(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := SampledQuantizedEntropy(f, 1e-3, SampledOptions{SampleFrac: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sampled-full) > 0.15*full {
		t.Fatalf("sampled %v far from full %v", sampled, full)
	}
	// full fraction must match exactly
	exact, err := SampledQuantizedEntropy(f, 1e-3, SampledOptions{SampleFrac: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-full) > 1e-9 {
		t.Fatalf("fraction-1 sampled %v != full %v", exact, full)
	}
	if _, err := SampledQuantizedEntropy(f, 0, SampledOptions{}); err == nil {
		t.Fatal("expected error for eb=0")
	}
}
