// Package entropy provides Shannon-entropy computations and the
// entropy-based compression-ratio estimator of the paper's related work
// (Tao et al., TPDS 2019 — automatic online selection between SZ and
// ZFP): quantize the field at the error bound, compute the entropy of
// the quantization codes (optionally on sampled blocks), and bound the
// achievable ratio by bits-per-value. The paper positions its
// correlation statistics as a compressor-independent alternative to
// exactly this estimator, so having both in one library allows direct
// comparison.
package entropy

import (
	"fmt"
	"math"

	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

// Shannon returns the empirical Shannon entropy of the symbol stream in
// bits per symbol (0 for empty or single-symbol streams).
func Shannon(symbols []uint16) float64 {
	if len(symbols) == 0 {
		return 0
	}
	freq := make(map[uint16]int, 256)
	for _, s := range symbols {
		freq[s]++
	}
	n := float64(len(symbols))
	var h float64
	for _, c := range freq {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// ShannonBytes is Shannon over a byte stream.
func ShannonBytes(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var freq [256]int
	for _, b := range data {
		freq[b]++
	}
	n := float64(len(data))
	var h float64
	for _, c := range freq {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// quantize maps a value to its 2·eb bin index, clamped into int32 so
// pathological values cannot overflow the code space.
func quantize(v, eb float64) int32 {
	c := math.Round(v / (2 * eb))
	switch {
	case c > math.MaxInt32:
		return math.MaxInt32
	case c < math.MinInt32:
		return math.MinInt32
	}
	return int32(c)
}

// QuantizedEntropy returns the Shannon entropy (bits per value) of the
// field quantized into 2·eb bins — the information content a lossy
// compressor at bound eb must represent, up to its prediction skill.
func QuantizedEntropy(g *grid.Grid, eb float64) (float64, error) {
	if eb <= 0 {
		return 0, fmt.Errorf("entropy: non-positive error bound %v", eb)
	}
	if g.Len() == 0 {
		return 0, nil
	}
	freq := make(map[int32]int, 1024)
	for _, v := range g.Data {
		freq[quantize(v, eb)]++
	}
	n := float64(g.Len())
	var h float64
	for _, c := range freq {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h, nil
}

// EstimateRatio converts a bits-per-value entropy into an upper-bound
// compression ratio for float64 data: 64 / max(h, ε). It ignores
// prediction (decorrelation) gains, so real predictive compressors can
// exceed it, but it tracks compressibility trends the way the related
// work uses it.
func EstimateRatio(bitsPerValue float64) float64 {
	const minBits = 1e-3 // floor: even a constant field needs headers
	if bitsPerValue < minBits {
		bitsPerValue = minBits
	}
	return 64 / bitsPerValue
}

// SampledOptions controls block-sampled entropy estimation.
type SampledOptions struct {
	BlockSize  int     // sampling block edge; 0 means 16
	SampleFrac float64 // fraction of blocks sampled; 0 means 0.1
	Seed       uint64
}

// SampledQuantizedEntropy estimates QuantizedEntropy from a random
// subset of blocks — the block-based sampling strategy of the related
// work (Lu et al., IPDPS 2018; Tao et al., TPDS 2019), which trades
// accuracy for a large constant-factor speedup on big fields.
func SampledQuantizedEntropy(g *grid.Grid, eb float64, opts SampledOptions) (float64, error) {
	if eb <= 0 {
		return 0, fmt.Errorf("entropy: non-positive error bound %v", eb)
	}
	bs := opts.BlockSize
	if bs <= 0 {
		bs = 16
	}
	frac := opts.SampleFrac
	if frac <= 0 {
		frac = 0.1
	}
	if frac > 1 {
		frac = 1
	}
	type block struct{ r0, c0 int }
	var blocks []block
	g.Tiles(bs, func(r0, c0 int, w *grid.Grid) {
		blocks = append(blocks, block{r0, c0})
	})
	if len(blocks) == 0 {
		return 0, nil
	}
	take := int(math.Ceil(frac * float64(len(blocks))))
	rng := xrand.New(opts.Seed ^ 0xb10cb10c)
	rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	freq := make(map[int32]int, 1024)
	total := 0
	for _, b := range blocks[:take] {
		w := g.Window(b.r0, b.c0, bs, bs)
		for _, v := range w.Data {
			freq[quantize(v, eb)]++
			total++
		}
	}
	n := float64(total)
	var h float64
	for _, c := range freq {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h, nil
}
