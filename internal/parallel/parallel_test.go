package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0, 100) = %d want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3, 100) = %d", got)
	}
	if got := Resolve(16, 4); got != 4 {
		t.Fatalf("Resolve(16, 4) = %d want 4 (clamped to jobs)", got)
	}
	if got := Resolve(16, 0); got != 16 {
		t.Fatalf("Resolve(16, 0) = %d want 16 (no clamp without job count)", got)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		for _, n := range []int{0, 1, 3, 100, 1025} {
			hits := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForSerialRunsInOrder(t *testing.T) {
	var got []int
	For(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial For out of order: %v", got)
		}
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		out := Map(500, workers, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: Map[%d] = %d want %d", workers, i, v, i*i)
			}
		}
	}
	if out := Map(0, 4, func(i int) int { return i }); out != nil {
		t.Fatalf("Map over empty space = %v want nil", out)
	}
}

func TestMapReduceDeterministicAcrossWorkerCounts(t *testing.T) {
	// A float fold whose result depends on fold order: identical results
	// across worker counts prove the fold happens in index order.
	sum := func(workers int) float64 {
		return MapReduce(1000, workers,
			func(i int) float64 { return 1.0 / float64(i+1) },
			0.0,
			func(acc, v float64, _ int) float64 { return acc + v })
	}
	ref := sum(1)
	for _, w := range []int{2, 5, 16} {
		if got := sum(w); got != ref {
			t.Fatalf("MapReduce not bit-identical: workers=%d got %v want %v", w, got, ref)
		}
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForErr(100, workers, func(i int) error {
			if i%10 == 7 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 7" {
			t.Fatalf("workers=%d: got %v want fail at 7", workers, err)
		}
	}
	if err := ForErr(50, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestForErrRunsEveryIndexDespiteFailures(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("boom")
	err := ForErr(64, 8, func(i int) error {
		ran.Add(1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if ran.Load() != 64 {
		t.Fatalf("only %d of 64 indices ran", ran.Load())
	}
}

func TestFilterMapErr(t *testing.T) {
	for _, workers := range []int{1, 8} {
		// keep even indices, fail nothing
		vals, err := FilterMapErr(10, workers, func(i int) (int, bool, error) {
			return i, i%2 == 0, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []int{0, 2, 4, 6, 8}
		if len(vals) != len(want) {
			t.Fatalf("workers=%d: got %v want %v", workers, vals, want)
		}
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("workers=%d: got %v want %v", workers, vals, want)
			}
		}
		// lowest-index error wins even when ok values precede it
		_, err = FilterMapErr(20, workers, func(i int) (int, bool, error) {
			if i >= 5 {
				return 0, false, fmt.Errorf("fail at %d", i)
			}
			return i, true, nil
		})
		if err == nil || err.Error() != "fail at 5" {
			t.Fatalf("workers=%d: got %v want fail at 5", workers, err)
		}
	}
	if vals, err := FilterMapErr(0, 4, func(int) (int, bool, error) { return 0, true, nil }); err != nil || len(vals) != 0 {
		t.Fatalf("empty space: %v %v", vals, err)
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	var a, b, c atomic.Bool
	Do(4,
		func() { a.Store(true) },
		func() { b.Store(true) },
		func() { c.Store(true) },
	)
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do skipped a task")
	}
	Do(4) // no tasks: must not hang or panic
}

func TestDoSerialOrder(t *testing.T) {
	var got []int
	Do(1,
		func() { got = append(got, 0) },
		func() { got = append(got, 1) },
		func() { got = append(got, 2) },
	)
	for i, v := range got {
		if v != i {
			t.Fatalf("Do(1) out of order: %v", got)
		}
	}
}

// TestStressConcurrentPools exercises many pools at once (the nested
// shape core.Analyze produces) so `go test -race` can see cross-pool
// interactions.
func TestStressConcurrentPools(t *testing.T) {
	var total atomic.Int64
	For(8, 8, func(outer int) {
		s := MapReduce(200, 4,
			func(i int) int64 { return int64(i) },
			int64(0),
			func(acc, v int64, _ int) int64 { return acc + v })
		total.Add(s)
	})
	want := int64(8 * 199 * 200 / 2)
	if total.Load() != want {
		t.Fatalf("nested pools total %d want %d", total.Load(), want)
	}
}
