package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestForCtxNilAndBackground pins the fast path: contexts that can
// never be cancelled behave exactly like For and report nil.
func TestForCtxNilAndBackground(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		var sum atomic.Int64
		if err := ForCtx(ctx, 100, 4, func(i int) { sum.Add(int64(i)) }); err != nil {
			t.Fatalf("ForCtx(%v) = %v, want nil", ctx, err)
		}
		if got := sum.Load(); got != 4950 {
			t.Fatalf("sum = %d, want 4950", got)
		}
	}
}

// TestForCtxRunsEveryIndex checks a live context executes the full
// index space once per index, like For.
func TestForCtxRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		seen := make([]atomic.Int32, 1000)
		ctx, cancel := context.WithCancel(context.Background())
		if err := ForCtx(ctx, len(seen), workers, func(i int) { seen[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		cancel()
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestForCtxCancelReleasesTokens is the regression test for the
// cancellation semantics: a ForCtx over a deliberately slow body must
// return promptly once the context is cancelled — not after the full
// index space — and every extra worker must have returned its token to
// the global budget by the time the call returns.
func TestForCtxCancelReleasesTokens(t *testing.T) {
	const (
		n        = 10_000
		body     = 2 * time.Millisecond
		cancelAt = 20 * time.Millisecond
	)
	for _, workers := range []int{1, 0} { // serial path and full fan-out
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			before := LiveExtraWorkers()
			ctx, cancel := context.WithCancel(context.Background())
			time.AfterFunc(cancelAt, cancel)
			var ran atomic.Int64
			start := time.Now()
			err := ForCtx(ctx, n, workers, func(i int) {
				ran.Add(1)
				time.Sleep(body)
			})
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// Serially the loop would take n·body = 20 s. Prompt return
			// means roughly cancelAt plus one in-flight body per worker;
			// 2 s is orders of magnitude of headroom without flaking.
			if elapsed > 2*time.Second {
				t.Fatalf("ForCtx returned after %v, want prompt return near %v", elapsed, cancelAt)
			}
			if got := ran.Load(); got == 0 || got >= n {
				t.Fatalf("ran %d bodies, want 0 < ran < %d (cancelled mid-flight)", got, n)
			}
			// The call's own workers must have drained: the live count is
			// back to what other concurrently running tests held.
			if after := LiveExtraWorkers(); after > before {
				t.Fatalf("live extra workers %d > %d before the call: leaked tokens", after, before)
			}
		})
	}
}

// TestForCtxTokensReusableAfterCancel proves the budget is intact
// after a cancellation: a follow-up parallel run can still acquire
// extra workers (nothing was leaked out of the tokens channel).
func TestForCtxTokensReusableAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: ForCtx must return immediately
	if err := ForCtx(ctx, 1000, 0, func(i int) { time.Sleep(time.Millisecond) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var ran atomic.Int64
	For(1000, 0, func(i int) { ran.Add(1) })
	if ran.Load() != 1000 {
		t.Fatalf("post-cancel For ran %d/1000 bodies", ran.Load())
	}
	if LiveExtraWorkers() < 0 {
		t.Fatalf("negative live worker count: unbalanced release")
	}
}

// TestForErrCtxCancellationDominates pins the error precedence: once
// cancelled, the ctx error is reported even when loop bodies also
// failed (the lowest-index contract only holds for completed runs).
func TestForErrCtxCancellationDominates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	bodyErr := errors.New("body")
	var once atomic.Bool
	err := ForErrCtx(ctx, 1000, 2, func(i int) error {
		if once.CompareAndSwap(false, true) {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return bodyErr
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestForErrCtxBodyErrors checks the completed-run path still reports
// the lowest failing index deterministically.
func TestForErrCtxBodyErrors(t *testing.T) {
	wantErr := errors.New("idx")
	err := ForErrCtx(context.Background(), 100, 4, func(i int) error {
		if i == 17 || i == 63 {
			return fmt.Errorf("%w %d", wantErr, i)
		}
		return nil
	})
	if err == nil || err.Error() != "idx 17" {
		t.Fatalf("err = %v, want idx 17", err)
	}
}

// TestFilterMapErrCtx checks collection order and the cancellation
// path of the windowed-statistic skeleton.
func TestFilterMapErrCtx(t *testing.T) {
	got, err := FilterMapErrCtx(context.Background(), 10, 3, func(i int) (int, bool, error) {
		return i * i, i%2 == 0, nil
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	want := []int{0, 4, 16, 36, 64}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FilterMapErrCtx(ctx, 10, 3, func(i int) (int, bool, error) {
		return 0, true, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled err = %v, want context.Canceled", err)
	}
}
