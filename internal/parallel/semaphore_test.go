package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestNestedPoolsBounded drives the worst oversubscription shape the
// pipeline produces (a pool per field, a pool per statistic, a pool
// per window) and checks the global token budget holds: the number of
// extra workers alive at once never exceeds GOMAXPROCS-1.
func TestNestedPoolsBounded(t *testing.T) {
	For(16, 16, func(outer int) {
		For(8, 8, func(mid int) {
			For(64, 8, func(inner int) {
				_ = outer * mid * inner
			})
		})
	})
	max := int64(runtime.GOMAXPROCS(0) - 1)
	if max < 0 {
		max = 0
	}
	if got := PeakExtraWorkers(); got > max {
		t.Fatalf("peak extra workers %d exceeds budget %d", got, max)
	}
}

// TestNestedPoolsResultsUnchanged checks the semaphore is invisible in
// results: a nested float computation folds bit-identically whether it
// runs serially or with every pool asking for maximum parallelism.
func TestNestedPoolsResultsUnchanged(t *testing.T) {
	compute := func(workers int) []float64 {
		return Map(12, workers, func(outer int) float64 {
			return MapReduce(300, workers,
				func(i int) float64 { return 1.0 / float64(outer*300+i+1) },
				0.0,
				func(acc, v float64, _ int) float64 { return acc + v })
		})
	}
	ref := compute(1)
	for _, w := range []int{2, 8, 64} {
		got := compute(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result[%d] = %x want %x", w, i, got[i], ref[i])
			}
		}
	}
}

// TestForCallerAlwaysProgresses exhausts the token budget with blocked
// holders and checks a new pool still completes on its caller alone.
func TestForCallerAlwaysProgresses(t *testing.T) {
	n := cap(tokens)
	for i := 0; i < n; i++ {
		tokens <- struct{}{}
	}
	defer func() {
		for i := 0; i < n; i++ {
			<-tokens
		}
	}()
	var hits atomic.Int64
	done := make(chan struct{})
	go func() {
		For(100, 8, func(i int) { hits.Add(1) })
		close(done)
	}()
	<-done
	if hits.Load() != 100 {
		t.Fatalf("ran %d of 100 indices with budget exhausted", hits.Load())
	}
}
