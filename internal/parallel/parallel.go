// Package parallel is the shared execution engine behind every
// windowed statistic and batch measurement in lossycorr: a bounded
// worker pool with chunked index scheduling and strictly deterministic
// result ordering.
//
// The determinism contract is the important part. Callers hand in an
// index space [0, n) and a pure-per-index function; the pool may run
// indices in any order and on any goroutine, but results are always
// collected (Map) or folded (MapReduce) in index order, and errors are
// always reported for the lowest failing index (ForErr). Consequently a
// computation that is deterministic per index is bit-identical at
// Workers: 1 and Workers: N — the property the statistics layer's
// seeded experiments rely on.
//
// Scheduling uses an atomic chunk counter rather than one channel send
// per index: workers grab contiguous chunks of ~n/(workers·chunksPer)
// indices, which keeps windows of a tiled field cache-adjacent and
// makes the per-index overhead negligible even for sub-microsecond
// bodies.
//
// Total concurrency is bounded globally, not per pool. Pools nest
// (MeasureFields fans fields out, each field's Analyze fans statistics
// out, each statistic fans windows out), so per-pool worker counts
// would multiply. Instead, every pool runs its loop on the calling
// goroutine and spawns extra workers only while tokens are available
// from a shared GOMAXPROCS-sized budget. Extra workers are acquired
// with a non-blocking try, never a wait, so nesting can't deadlock and
// the number of goroutines executing loop bodies never exceeds
// GOMAXPROCS plus the callers already in flight. Because results are
// position-addressed and folds run in index order, the dynamic worker
// count is invisible in the output.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// chunksPerWorker controls scheduling granularity: each worker expects
// to grab about this many chunks over a full run, balancing load (more
// chunks) against contention on the shared counter (fewer chunks).
const chunksPerWorker = 8

// tokens is the global budget of extra worker goroutines, shared by
// every pool in the process. Sized to GOMAXPROCS-1 so that one calling
// goroutine plus a full complement of extras saturates the machine
// without oversubscribing it.
var tokens = func() chan struct{} {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	return make(chan struct{}, n)
}()

// live and peak track the number of extra workers currently running,
// and the high-water mark, for tests and diagnostics.
var live, peak atomic.Int64

// acquireToken claims an extra-worker slot if the global budget allows
// it; it never blocks.
func acquireToken() bool {
	select {
	case tokens <- struct{}{}:
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		return true
	default:
		return false
	}
}

func releaseToken() {
	live.Add(-1)
	<-tokens
}

// PeakExtraWorkers reports the historical maximum number of extra
// worker goroutines alive at once — by construction at most
// GOMAXPROCS-1 at the time they were spawned.
func PeakExtraWorkers() int64 { return peak.Load() }

// LiveExtraWorkers reports the number of extra worker goroutines
// currently holding a token from the global budget. After every
// For/ForCtx call has returned, a quiescent process reports 0 — the
// invariant the service layer's cancellation tests pin to prove that
// cancelled pipelines give their tokens back.
func LiveExtraWorkers() int64 { return live.Load() }

// Resolve maps a Workers knob to an effective worker count: values <= 0
// mean GOMAXPROCS, and the count is clamped to jobs so tiny index
// spaces don't spawn idle goroutines.
func Resolve(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if jobs > 0 && workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs fn(i) exactly once for every i in [0, n). The loop always
// runs on the calling goroutine; up to workers-1 extra goroutines join
// it while the process-wide token budget (GOMAXPROCS-1 extras, shared
// across nested pools) allows, so total concurrency stays bounded no
// matter how pools nest. workers <= 0 means GOMAXPROCS; with one
// worker it degenerates to a plain serial loop on the calling
// goroutine. Invocation order is unspecified; fn must write any
// results to per-index storage.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Resolve(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := n / (w * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	run := func() {
		for {
			end := int(next.Add(int64(chunk)))
			start := end - chunk
			if start >= n {
				return
			}
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				fn(i)
			}
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < w-1; g++ {
		if !acquireToken() {
			break // global budget exhausted: the caller still makes progress
		}
		wg.Add(1)
		go func() {
			defer func() {
				releaseToken()
				wg.Done()
			}()
			run()
		}()
	}
	run()
	wg.Wait()
}

// ForCtx is For with cooperative cancellation: the loop stops
// scheduling new indices as soon as ctx is cancelled and returns
// ctx.Err() (nil while ctx stays live; a run that races completion
// with cancellation may report the error even though every index
// ran — callers treat any non-nil return as abandoned work).
// Cancellation is checked before
// every index, so the call returns within roughly one loop-body
// duration of the cancel no matter how large n is; indices already in
// flight on other workers finish their current body before the workers
// exit, and every extra worker returns its token to the global budget
// before ForCtx returns (pinned by TestForCtxCancelReleasesTokens).
// Results written for indices that did run are valid; a non-nil error
// means an unspecified subset of indices never executed, so callers
// must treat the output as abandoned.
//
// A nil ctx, or one that can never be cancelled, takes the exact For
// fast path — no per-index check, bit-identical scheduling.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil || ctx.Done() == nil {
		For(n, workers, fn)
		return nil
	}
	done := ctx.Done()
	w := Resolve(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(i)
		}
		return ctx.Err()
	}
	chunk := n / (w * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	run := func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			end := int(next.Add(int64(chunk)))
			start := end - chunk
			if start >= n {
				return
			}
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				select {
				case <-done:
					return
				default:
				}
				fn(i)
			}
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < w-1; g++ {
		if !acquireToken() {
			break // global budget exhausted: the caller still makes progress
		}
		wg.Add(1)
		go func() {
			defer func() {
				releaseToken()
				wg.Done()
			}()
			run()
		}()
	}
	run()
	wg.Wait()
	return ctx.Err()
}

// ForErrCtx is ForErr with cooperative cancellation. Cancellation
// dominates body errors: once ctx is cancelled the index space is
// abandoned mid-flight, so the deterministic lowest-failing-index
// contract no longer applies and ctx.Err() is returned instead.
func ForErrCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	var mu sync.Mutex
	lowest := n
	var lowestErr error
	if err := ForCtx(ctx, n, workers, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < lowest {
				lowest, lowestErr = i, err
			}
			mu.Unlock()
		}
	}); err != nil {
		return err
	}
	return lowestErr
}

// FilterMapErrCtx is FilterMapErr with cooperative cancellation: on a
// cancelled context it returns (nil, ctx.Err()) promptly instead of
// finishing the index space. Body errors keep the lowest-failing-index
// determinism whenever the loop ran to completion.
func FilterMapErrCtx[T any](ctx context.Context, n, workers int, fn func(i int) (v T, ok bool, err error)) ([]T, error) {
	type result struct {
		v   T
		ok  bool
		err error
	}
	results := make([]result, n)
	if err := ForCtx(ctx, n, workers, func(i int) {
		v, ok, err := fn(i)
		results[i] = result{v, ok, err}
	}); err != nil {
		return nil, err
	}
	out := make([]T, 0, len(results))
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.ok {
			out = append(out, r.v)
		}
	}
	return out, nil
}

// ForErr is For over a fallible body. Every index runs (no early
// cancellation, matching a serial loop that records the first error and
// keeps going); the returned error is the one from the lowest failing
// index, so the outcome is deterministic regardless of scheduling.
func ForErr(n, workers int, fn func(i int) error) error {
	var mu sync.Mutex
	lowest := n
	var lowestErr error
	For(n, workers, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < lowest {
				lowest, lowestErr = i, err
			}
			mu.Unlock()
		}
	})
	return lowestErr
}

// Map evaluates fn over [0, n) and returns the results in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	For(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// FilterMapErr evaluates fn over [0, n) on the pool and collects, in
// index order, the values for which fn reported ok. If any index fails,
// the error of the lowest failing index is returned (every index still
// runs). This is the skeleton shared by the windowed statistics: map
// windows, drop the skipped ones, fail deterministically.
func FilterMapErr[T any](n, workers int, fn func(i int) (v T, ok bool, err error)) ([]T, error) {
	type result struct {
		v   T
		ok  bool
		err error
	}
	results := Map(n, workers, func(i int) result {
		v, ok, err := fn(i)
		return result{v, ok, err}
	})
	out := make([]T, 0, len(results))
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.ok {
			out = append(out, r.v)
		}
	}
	return out, nil
}

// MapReduce evaluates mapFn over [0, n) in parallel, then folds the
// results serially in strict index order: acc = reduceFn(acc, v_0, 0),
// then v_1, and so on. Because the fold order is fixed, floating-point
// reductions are bit-identical for any worker count.
func MapReduce[T, R any](n, workers int, mapFn func(i int) T, init R, reduceFn func(acc R, v T, i int) R) R {
	vs := Map(n, workers, mapFn)
	acc := init
	for i, v := range vs {
		acc = reduceFn(acc, v, i)
	}
	return acc
}

// Do runs a fixed set of heterogeneous tasks on the pool — the
// orchestration-layer shape where a handful of independent statistics
// are computed concurrently. With workers == 1 the tasks run serially
// in argument order.
func Do(workers int, fns ...func()) {
	For(len(fns), workers, func(i int) { fns[i]() })
}
