package statdemo_test

// The acceptance proof for pluggable statistics: this test imports the
// demo kernel package (whose init registers "meanstd") alongside the
// unmodified core and service packages, and checks that the new kernel
// is selectable through core's Stats option, advertised by
// GET /v1/stats, computable via analyze?stats=meanstd, and
// bit-identical across lanes of parallelism and the streamed path —
// all without a single edit to core or service.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"lossycorr/internal/core"
	"lossycorr/internal/field"
	"lossycorr/internal/gaussian"
	"lossycorr/internal/service"
	_ "lossycorr/internal/statdemo"
)

func demoField(t testing.TB) *field.Field {
	t.Helper()
	g, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 56, Range: 9, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return field.FromGrid(g)
}

// TestDemoKernelThroughCore selects the demo kernel by name through the
// standard analysis entry point and checks the result set carries
// exactly its output, bit-identical at every worker count.
func TestDemoKernelThroughCore(t *testing.T) {
	f := demoField(t)
	var ref core.Statistics
	for _, workers := range []int{1, 4, 8} {
		st, err := core.AnalyzeFieldCtx(context.Background(), f, core.AnalysisOptions{
			Window: 16, Workers: workers, Stats: []string{"meanstd"},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		v, ok := st["localMeanStd"]
		if !ok || len(st) != 1 {
			t.Fatalf("workers=%d: want exactly localMeanStd, got %v", workers, st)
		}
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("workers=%d: implausible localMeanStd %v", workers, v)
		}
		if ref == nil {
			ref = st
		} else if !st.Equal(ref) {
			t.Fatalf("workers=%d: %v != workers=1 result %v", workers, st, ref)
		}
	}
}

// TestDemoKernelStreamedMatchesRAM runs the demo kernel over a
// dataset-backed tile reader under a tight budget and checks
// bit-identity with the in-RAM sweep.
func TestDemoKernelStreamedMatchesRAM(t *testing.T) {
	f := demoField(t)
	opts := core.AnalysisOptions{Window: 16, Workers: 4, Stats: []string{"meanstd"}}
	ram, err := core.AnalyzeFieldCtx(context.Background(), f, opts)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "demo.bin")
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteBinary(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := field.OpenTileReader(path, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	opts.MemBudget = 24576 // force multi-tile streaming
	streamed, err := core.AnalyzeReaderCtx(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !streamed.Equal(ram) {
		t.Fatalf("streamed %v != in-RAM %v", streamed, ram)
	}
}

// TestDemoKernelThroughService proves the service surfaces pick the
// kernel up from the registry alone: GET /v1/stats lists it and
// analyze?stats=meanstd computes it.
func TestDemoKernelThroughService(t *testing.T) {
	s := service.New(service.Config{})
	hs := httptest.NewServer(s.Handler())
	defer func() {
		hs.Close()
		s.Close()
	}()

	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap service.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, k := range snap.Kernels {
		if k.Name == "meanstd" {
			found = true
			if !k.Windowed || !k.Streaming || k.FFT {
				t.Fatalf("meanstd caps wrong: %+v", k)
			}
			if len(k.Outputs) != 1 || k.Outputs[0] != "localMeanStd" {
				t.Fatalf("meanstd outputs %v", k.Outputs)
			}
		}
	}
	if !found {
		t.Fatalf("meanstd not listed in %+v", snap.Kernels)
	}

	var buf bytes.Buffer
	if err := demoField(t).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(hs.URL+"/v1/analyze?stats=meanstd", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var env struct {
		Result struct {
			Stats map[string]float64 `json:"stats"`
		} `json:"result"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding %q: %v", data, err)
	}
	st := env.Result.Stats
	if v, ok := st["localMeanStd"]; !ok || len(st) != 1 || v <= 0 {
		t.Fatalf("want exactly a positive localMeanStd, got %v", st)
	}
}
