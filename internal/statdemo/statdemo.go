// Package statdemo is the extensibility proof for the statistic-kernel
// engine: a fourth kernel that plugs into the analysis pipeline purely
// by registering itself — no change to core, service, or the CLI. Any
// package that wants a new statistic does exactly this: implement
// stat.WindowKernel (or stat.GlobalKernel) and MustRegister it from
// init; the engine then supplies lanes, streaming, cancellation, and
// worker fan-out, and the selection surfaces (-stats, corrcompd's
// stats option, GET /v1/stats) pick it up automatically.
package statdemo

import (
	"fmt"

	"lossycorr/internal/field"
	"lossycorr/internal/linalg"
	"lossycorr/internal/stat"
)

func init() { stat.MustRegister(MeanStdKernel{}) }

// MeanStdKernel is the demo statistic: the std of per-window means —
// a cheap heterogeneity measure with the same sweep shape as the
// built-in windowed kernels.
type MeanStdKernel struct{}

// Name implements stat.Kernel.
func (MeanStdKernel) Name() string { return "meanstd" }

// Outputs implements stat.Kernel.
func (MeanStdKernel) Outputs() []string { return []string{"localMeanStd"} }

// Caps implements stat.Kernel.
func (MeanStdKernel) Caps() stat.Caps {
	return stat.Caps{Lanes: []string{"float64", "float32"}, Windowed: true, Streaming: true}
}

// CheckWindow implements stat.WindowKernel.
func (MeanStdKernel) CheckWindow(h int) error {
	if h < 1 {
		return fmt.Errorf("statdemo: window %d too small", h)
	}
	return nil
}

// EvalWindow implements stat.WindowKernel: the arithmetic mean of one
// extracted window. Empty (fully clipped) windows are skipped.
func (MeanStdKernel) EvalWindow(w *field.Field, opt any) (float64, bool, error) {
	if len(w.Data) == 0 {
		return 0, false, nil
	}
	sum := 0.0
	for _, v := range w.Data {
		sum += v
	}
	return sum / float64(len(w.Data)), true, nil
}

// Fold implements stat.WindowKernel: the std over kept window means.
func (MeanStdKernel) Fold(vals []float64, info stat.FoldInfo, opt any) ([]float64, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("statdemo: no usable windows (H=%d, shape %v)", info.Window, info.Shape)
	}
	return []float64{linalg.Std(vals)}, nil
}
