// Package bitstream provides MSB-first bit-level writers and readers
// shared by the Huffman coder and the ZFP-like bit-plane encoder.
package bitstream

import (
	"errors"
	"fmt"
)

// Writer accumulates bits MSB-first into a growing byte buffer.
type Writer struct {
	buf  []byte
	bits uint64 // pending bits, left-aligned within the low `n` positions
	n    uint   // number of pending bits (< 8 after flushes)
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Reset truncates the writer to empty, retaining the underlying buffer
// so a pooled Writer can be reused without re-allocating.
func (w *Writer) Reset() { w.buf = w.buf[:0]; w.bits, w.n = 0, 0 }

// WriteBit appends a single bit (any nonzero b writes 1).
func (w *Writer) WriteBit(b uint) {
	w.bits = w.bits<<1 | uint64(b&1)
	w.n++
	if w.n == 8 {
		w.buf = append(w.buf, byte(w.bits))
		w.bits, w.n = 0, 0
	}
}

// WriteBits appends the low `count` bits of v, most significant first.
// count must be <= 56 so the pending register never overflows.
func (w *Writer) WriteBits(v uint64, count uint) {
	if count > 56 {
		w.WriteBits(v>>32, count-32)
		w.WriteBits(v&0xffffffff, 32)
		return
	}
	w.bits = w.bits<<count | (v & ((1 << count) - 1))
	w.n += count
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.bits>>w.n))
	}
	w.bits &= (1 << w.n) - 1
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return len(w.buf)*8 + int(w.n) }

// Bytes flushes the final partial byte (zero padded) and returns the
// underlying buffer. The Writer remains usable for reading back length
// but further writes after Bytes are not supported.
func (w *Writer) Bytes() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.bits<<(8-w.n)))
		w.bits, w.n = 0, 0
	}
	return w.buf
}

// ErrOutOfBits reports a read past the end of the stream.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int  // byte index
	bit uint // bits already consumed from buf[pos], 0..7
}

// NewReader wraps data for reading.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	b := uint(r.buf[r.pos]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

// ReadBits returns the next count bits, MSB-first, as a uint64.
// count must be <= 64. Once the cursor reaches a byte boundary the
// remaining full bytes are consumed with whole-byte reads, so batched
// consumers (the ZFP-like plane decoder) pay ~1/8 the per-bit cost.
func (r *Reader) ReadBits(count uint) (uint64, error) {
	if count > 64 {
		return 0, fmt.Errorf("bitstream: ReadBits count %d > 64", count)
	}
	var v uint64
	for count > 0 && r.bit != 0 {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
		count--
	}
	for count >= 8 {
		if r.pos >= len(r.buf) {
			return 0, ErrOutOfBits
		}
		v = v<<8 | uint64(r.buf[r.pos])
		r.pos++
		count -= 8
	}
	for count > 0 {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
		count--
	}
	return v, nil
}

// Remaining returns how many unread bits are left.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.bit)
}
