package bitstream

import (
	"testing"
	"testing/quick"

	"lossycorr/internal/xrand"
)

func TestSingleBits(t *testing.T) {
	w := NewWriter()
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len=%d want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsRoundtrip(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xffee, 16)
	w.WriteBits(0, 3)
	w.WriteBits(0x1ffffffffffff, 49)
	r := NewReader(w.Bytes())
	for _, c := range []struct {
		v uint64
		n uint
	}{{0b1011, 4}, {0xffee, 16}, {0, 3}, {0x1ffffffffffff, 49}} {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.v {
			t.Fatalf("ReadBits(%d) = %#x want %#x", c.n, got, c.v)
		}
	}
}

func TestWriteBitsWide(t *testing.T) {
	// counts > 56 exercise the split path
	w := NewWriter()
	const v uint64 = 0xdeadbeefcafebabe
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(64)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("wide roundtrip %#x want %#x", got, v)
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		if len(vals) > len(widths) {
			vals = vals[:len(widths)]
		} else {
			widths = widths[:len(vals)]
		}
		w := NewWriter()
		masked := make([]uint64, len(vals))
		counts := make([]uint, len(vals))
		for i := range vals {
			n := uint(widths[i]%64) + 1
			counts[i] = n
			if n == 64 {
				masked[i] = vals[i]
			} else {
				masked[i] = vals[i] & ((1 << n) - 1)
			}
			w.WriteBits(masked[i], n)
		}
		r := NewReader(w.Bytes())
		for i := range masked {
			got, err := r.ReadBits(counts[i])
			if err != nil || got != masked[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfBits(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
	if _, err := NewReader(nil).ReadBits(1); err == nil {
		t.Fatal("expected error")
	}
}

func TestReadBitsTooMany(t *testing.T) {
	if _, err := NewReader(make([]byte, 16)).ReadBits(65); err == nil {
		t.Fatal("expected count error")
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0})
	if r.Remaining() != 16 {
		t.Fatalf("Remaining=%d", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Fatalf("Remaining=%d", r.Remaining())
	}
}

func TestZeroPadding(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b111, 3)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0b11100000 {
		t.Fatalf("padding wrong: %08b", b[0])
	}
}

func TestLongRandomStream(t *testing.T) {
	rng := xrand.New(99)
	const n = 10000
	bits := make([]uint, n)
	w := NewWriter()
	for i := range bits {
		bits[i] = uint(rng.Uint64() & 1)
		w.WriteBit(bits[i])
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil || got != want {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}
