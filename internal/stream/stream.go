// Package stream drives out-of-core window sweeps for the analysis
// statistics. It plans h-aligned tiles against a byte budget
// (field.PlanWindowTiles), pulls each tile through a TileReader into
// one pooled transform buffer — so tile bytes are visible to the fft
// pool's peak accounting, the gauge the memory budget is enforced
// against — evaluates the windows inside each tile on the shared worker
// pool, and returns results compacted in the exact order the in-RAM
// windowed statistics fold them. Because tiles are h-aligned, every
// window's clipped content is identical to its in-RAM extraction, and
// because results are scattered by global window index before
// compaction, the fold order is independent of tile decomposition,
// halo, and worker count: the streamed statistic is bit-identical to
// the in-RAM one.
package stream

import (
	"context"
	"fmt"

	"lossycorr/internal/fft"
	"lossycorr/internal/field"
	"lossycorr/internal/parallel"
)

// WindowEval evaluates one window: block is the tile's element data,
// rel the window origin relative to the block, h the window edge. The
// (value, keep, error) contract matches parallel.FilterMapErrCtx.
type WindowEval func(block *field.Field, rel []int, h int) (float64, bool, error)

// Windows streams every h-window of tr (sel == nil), or exactly the
// windows whose global lexicographic indices appear in sel, through
// eval, one budget-sized tile at a time. Results come back compacted —
// kept values only — ordered by global window index (sel == nil) or by
// position in sel, which are precisely the fold orders of the in-RAM
// full and sampled window sweeps. Tiles holding no selected window are
// never read.
func Windows(ctx context.Context, tr *field.TileReader, h, workers int, o field.StreamOptions, sel []int, eval WindowEval) ([]float64, error) {
	shape := tr.Shape()
	d := len(shape)
	if d > 8 {
		return nil, fmt.Errorf("stream: rank %d exceeds 8", d)
	}
	// Plan against HALF the byte budget: pooled buffers are accounted by
	// capacity, and a tight acquisition can still carry up to 2× slack
	// from a warm pool — half-budget tiles keep worst-case accounted
	// bytes at the budget, and fresh-pool runs at half of it.
	var budgetElems int64
	if o.BudgetBytes > 0 {
		budgetElems = o.BudgetBytes / 16
	}
	tiles, err := field.PlanWindowTiles(shape, h, budgetElems)
	if err != nil {
		return nil, err
	}
	wg := field.NewWindowGrid(shape, h)
	total := wg.Total()
	nres := total
	var pos []int32 // 1-based position in sel, 0 = not selected
	if sel != nil {
		nres = len(sel)
		pos = make([]int32, total)
		for i, g := range sel {
			if g < 0 || g >= total {
				return nil, fmt.Errorf("stream: window index %d outside %d windows", g, total)
			}
			pos[g] = int32(i + 1)
		}
	}
	vals := make([]float64, nres)
	kept := make([]bool, nres)

	maxBlock := 0
	for _, t := range tiles {
		blo, bhi := field.ExpandHalo(t.Lo, t.Hi, shape, o.Halo)
		n := 1
		for k := range blo {
			n *= bhi[k] - blo[k]
		}
		if n > maxBlock {
			maxBlock = n
		}
	}
	buf := fft.AcquireRealTight(maxBlock)
	defer fft.ReleaseReal(buf)
	block := &field.Field{Data: buf}

	for _, t := range tiles {
		tw := wg.TileWindows(t)
		if pos != nil {
			any := false
			var cbuf [8]int
			for j := 0; j < tw.Len() && !any; j++ {
				g, _ := tw.Window(j, cbuf[:d])
				any = pos[g] != 0
			}
			if !any {
				continue
			}
		}
		blo, bhi := field.ExpandHalo(t.Lo, t.Hi, shape, o.Halo)
		if err := tr.ReadBlock(block, blo, bhi); err != nil {
			return nil, err
		}
		if err := parallel.ForErrCtx(ctx, tw.Len(), workers, func(j int) error {
			var obuf [8]int
			g, origin := tw.Window(j, obuf[:d])
			slot := g
			if pos != nil {
				p := pos[g]
				if p == 0 {
					return nil
				}
				slot = int(p) - 1
			}
			for k := 0; k < d; k++ {
				origin[k] -= blo[k]
			}
			v, ok, err := eval(block, origin, h)
			if err != nil {
				return err
			}
			vals[slot], kept[slot] = v, ok
			return nil
		}); err != nil {
			return nil, err
		}
	}
	out := make([]float64, 0, nres)
	for i, ok := range kept {
		if ok {
			out = append(out, vals[i])
		}
	}
	return out, nil
}
