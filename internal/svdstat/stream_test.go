package svdstat

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"lossycorr/internal/field"
	"lossycorr/internal/xrand"
)

func writeTempField(t *testing.T, write func(w io.Writer) error) *field.TileReader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "field.lcf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := field.OpenTileReader(path, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestLocalLevelsReaderBitIdentity pins the streamed SVD window sweep
// against the in-RAM sweep bit for bit — ranks 2 and 3, both stored
// lanes, Gram and full-SVD paths, worker counts, tile budgets, halos.
func TestLocalLevelsReaderBitIdentity(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		shape []int
		h     int
	}{
		{[]int{37, 29}, 8},
		{[]int{19, 23, 17}, 5},
	}
	for ci, tc := range cases {
		rng := xrand.New(uint64(500 + ci))
		f := field.New(tc.shape...)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64()
		}
		f32 := field.New32(tc.shape...)
		for i := range f32.Data {
			f32.Data[i] = float32(rng.NormFloat64())
		}
		tr := writeTempField(t, f.WriteBinary)
		tr32 := writeTempField(t, f32.WriteBinary)
		winBytes := int64(8)
		for range tc.shape {
			winBytes *= int64(tc.h)
		}
		for _, gram := range []GramMode{GramDefault, GramOff} {
			opts := Options{Gram: gram}
			want, err := LocalLevelsFieldCtx(ctx, f, tc.h, opts)
			if err != nil {
				t.Fatal(err)
			}
			want32, err := LocalLevelsField32Ctx(ctx, f32, tc.h, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, budget := range []int64{2 * winBytes, 0} {
				for _, halo := range []int{0, tc.h + 1} {
					so := field.StreamOptions{BudgetBytes: budget, Halo: halo}
					for _, workers := range []int{1, 3} {
						o := Options{Gram: gram, Workers: workers}
						got, err := LocalLevelsReaderCtx(ctx, tr, tc.h, o, so)
						if err != nil {
							t.Fatal(err)
						}
						got32, err := LocalLevelsReaderCtx(ctx, tr32, tc.h, o, so)
						if err != nil {
							t.Fatal(err)
						}
						assertSame(t, tc.shape, budget, halo, got, want)
						assertSame(t, tc.shape, budget, halo, got32, want32)
					}
				}
			}
		}
	}
}

func assertSame(t *testing.T, shape []int, budget int64, halo int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("shape %v budget %d halo %d: %d levels, want %d", shape, budget, halo, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shape %v budget %d halo %d: level[%d] = %v, want %v", shape, budget, halo, i, got[i], want[i])
		}
	}
}
