package svdstat

// Out-of-core variants of the windowed SVD statistic, now thin
// delegates into the stat engine's Reader lane: h-aligned tiles
// against a byte budget, the identical per-window eigensolves,
// scatter-by-global-index folding. The results are bit-identical to
// the in-RAM sweep at any worker count, tile budget, and halo — and
// for float32-backed files to the widened (WindowIntoWide) in-RAM
// lane, since the TileReader widens exactly on read.

import (
	"context"

	"lossycorr/internal/field"
	"lossycorr/internal/stat"
)

// LocalLevelsReaderCtx is the out-of-core LocalLevelsFieldCtx: the
// truncation level of every h-window of the file, streamed one
// budget-sized tile at a time and folded in global window order.
func LocalLevelsReaderCtx(ctx context.Context, tr *field.TileReader, h int, opts Options, so field.StreamOptions) ([]float64, error) {
	return stat.Windows(ctx, stat.Source{Reader: tr, Stream: so}, LevelKernel{}, h, opts.Workers, nil, opts)
}

// LocalStdReaderCtx is the out-of-core LocalStdFieldCtx — the paper's
// statistic over an out-of-core volume.
func LocalStdReaderCtx(ctx context.Context, tr *field.TileReader, h int, opts Options, so field.StreamOptions) (float64, error) {
	levels, err := LocalLevelsReaderCtx(ctx, tr, h, opts, so)
	if err != nil {
		return 0, err
	}
	return foldStd(levels, h, tr.Shape())
}
