package svdstat

// Out-of-core variants of the windowed SVD statistic, routed through
// stream.Windows: h-aligned tiles against a byte budget, the identical
// per-window eigensolves, scatter-by-global-index folding. The results
// are bit-identical to the in-RAM sweep at any worker count, tile
// budget, and halo — and for float32-backed files to the widened
// (WindowIntoWide) in-RAM lane, since the TileReader widens exactly on
// read.

import (
	"context"
	"fmt"

	"lossycorr/internal/field"
	"lossycorr/internal/linalg"
	"lossycorr/internal/stream"
)

// LocalLevelsReaderCtx is the out-of-core LocalLevelsFieldCtx: the
// truncation level of every h-window of the file, streamed one
// budget-sized tile at a time and folded in global window order.
func LocalLevelsReaderCtx(ctx context.Context, tr *field.TileReader, h int, opts Options, so field.StreamOptions) ([]float64, error) {
	if h < 2 {
		return nil, fmt.Errorf("svdstat: window %d too small", h)
	}
	o := opts.withDefaults()
	return stream.Windows(ctx, tr, h, o.Workers, so, nil,
		func(block *field.Field, rel []int, hh int) (float64, bool, error) {
			w := windowPool.Get().(*field.Field)
			defer windowPool.Put(w)
			block.WindowInto(w, rel, hh)
			if w.MinDim() < 2 {
				return 0, false, nil
			}
			k, err := windowLevel(w, o)
			if err != nil {
				return 0, false, err
			}
			return float64(k), true, nil
		})
}

// LocalStdReaderCtx is the out-of-core LocalStdFieldCtx — the paper's
// statistic over an out-of-core volume.
func LocalStdReaderCtx(ctx context.Context, tr *field.TileReader, h int, opts Options, so field.StreamOptions) (float64, error) {
	levels, err := LocalLevelsReaderCtx(ctx, tr, h, opts, so)
	if err != nil {
		return 0, err
	}
	if len(levels) == 0 {
		return 0, fmt.Errorf("svdstat: no usable windows (H=%d, shape %v)", h, tr.Shape())
	}
	return linalg.Std(levels), nil
}
