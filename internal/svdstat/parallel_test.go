package svdstat

import (
	"testing"

	"lossycorr/internal/gaussian"
)

// TestLocalLevelsSerialParallelIdentical asserts the determinism
// contract: per-window truncation levels are bit-identical at any
// worker count, in tile order.
func TestLocalLevelsSerialParallelIdentical(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 96, Cols: 96, Range: 8, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := LocalLevelsWith(f, 16, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := LocalLevelsWith(f, 16, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d levels vs %d serial", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: level[%d] = %v != serial %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestLocalStdSerialParallelIdentical(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 96, Cols: 96, Range: 12, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := LocalStdWith(f, 16, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := LocalStdWith(f, 16, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial != par {
		t.Fatalf("LocalStd not bit-identical: serial %v parallel %v", serial, par)
	}
}

func TestLocalStdWithDefaultsMatchLocalStd(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 8, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	a, err := LocalStd(f, 32, DefaultVarianceFraction)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LocalStdWith(f, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("LocalStdWith zero options %v != LocalStd default %v", b, a)
	}
}
