package svdstat

// Float32-lane entry points. The eigensolves themselves stay in oracle
// precision: each window of the float32 field is widened (exactly)
// into a pooled float64 Field during extraction, so the per-window
// level arithmetic — and therefore the statistic's tolerance story —
// is identical to the float64 lane on exactly-corresponding values,
// without ever materializing a full-size float64 copy of the field.

import (
	"context"
	"fmt"

	"lossycorr/internal/field"
	"lossycorr/internal/linalg"
	"lossycorr/internal/parallel"
)

// LocalLevelsField32 tiles a float32 field with h-edged hypercube
// windows and returns the truncation level of every window — the
// float32 mirror of LocalLevelsField, bit-identical to running the
// float64 path on the widened field.
func LocalLevelsField32(f *field.Field32, h int, opts Options) ([]float64, error) {
	return LocalLevelsField32Ctx(context.Background(), f, h, opts)
}

// LocalLevelsField32Ctx is LocalLevelsField32 with cooperative
// cancellation of the window sweep.
func LocalLevelsField32Ctx(ctx context.Context, f *field.Field32, h int, opts Options) ([]float64, error) {
	if h < 2 {
		return nil, fmt.Errorf("svdstat: window %d too small", h)
	}
	o := opts.withDefaults()
	origins := f.TileOrigins(h)
	return parallel.FilterMapErrCtx(ctx, len(origins), o.Workers, func(i int) (float64, bool, error) {
		w := windowPool.Get().(*field.Field)
		defer windowPool.Put(w)
		f.WindowIntoWide(w, origins[i], h)
		if w.MinDim() < 2 {
			return 0, false, nil
		}
		k, err := windowLevel(w, o)
		if err != nil {
			return 0, false, err
		}
		return float64(k), true, nil
	})
}

// LocalStdField32 is the paper's statistic for a float32 field of any
// rank: the standard deviation of local truncation levels.
func LocalStdField32(f *field.Field32, h int, opts Options) (float64, error) {
	return LocalStdField32Ctx(context.Background(), f, h, opts)
}

// LocalStdField32Ctx is LocalStdField32 with cooperative cancellation
// of the window sweep.
func LocalStdField32Ctx(ctx context.Context, f *field.Field32, h int, opts Options) (float64, error) {
	levels, err := LocalLevelsField32Ctx(ctx, f, h, opts)
	if err != nil {
		return 0, err
	}
	if len(levels) == 0 {
		return 0, fmt.Errorf("svdstat: no usable windows (H=%d, shape %v)", h, f.Shape)
	}
	return linalg.Std(levels), nil
}
