package svdstat

// Float32-lane entry points, now thin delegates into the stat engine's
// float32 lane: each window of the float32 field is widened (exactly)
// into a pooled float64 Field during extraction, so the per-window
// level arithmetic — and therefore the statistic's tolerance story —
// is identical to the float64 lane on exactly-corresponding values,
// without ever materializing a full-size float64 copy of the field.

import (
	"context"

	"lossycorr/internal/field"
	"lossycorr/internal/stat"
)

// LocalLevelsField32 tiles a float32 field with h-edged hypercube
// windows and returns the truncation level of every window — the
// float32 mirror of LocalLevelsField, bit-identical to running the
// float64 path on the widened field.
func LocalLevelsField32(f *field.Field32, h int, opts Options) ([]float64, error) {
	return LocalLevelsField32Ctx(context.Background(), f, h, opts)
}

// LocalLevelsField32Ctx is LocalLevelsField32 with cooperative
// cancellation of the window sweep.
func LocalLevelsField32Ctx(ctx context.Context, f *field.Field32, h int, opts Options) ([]float64, error) {
	return stat.Windows(ctx, stat.Source{F32: f}, LevelKernel{}, h, opts.Workers, nil, opts)
}

// LocalStdField32 is the paper's statistic for a float32 field of any
// rank: the standard deviation of local truncation levels.
func LocalStdField32(f *field.Field32, h int, opts Options) (float64, error) {
	return LocalStdField32Ctx(context.Background(), f, h, opts)
}

// LocalStdField32Ctx is LocalStdField32 with cooperative cancellation
// of the window sweep.
func LocalStdField32Ctx(ctx context.Context, f *field.Field32, h int, opts Options) (float64, error) {
	levels, err := LocalLevelsField32Ctx(ctx, f, h, opts)
	if err != nil {
		return 0, err
	}
	return foldStd(levels, h, f.Shape)
}
