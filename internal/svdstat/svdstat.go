// Package svdstat computes the paper's local singular-value statistic:
// per H×H window, the number of singular modes required to recover a
// target fraction (99 %) of the window's variance, summarized by the
// standard deviation over all windows ("Std of truncation level of
// local SVD (H=32)", Figures 6 and 7).
package svdstat

import (
	"fmt"

	"lossycorr/internal/grid"
	"lossycorr/internal/linalg"
)

// DefaultVarianceFraction is the paper's 99 % threshold.
const DefaultVarianceFraction = 0.99

// TruncationLevel returns the smallest k such that the top-k singular
// values of the mean-centered window capture at least frac of its total
// squared singular-value mass. Centering implements the paper's
// "variance" reading: without it the DC component swallows the energy
// budget of smooth windows and the statistic degenerates to 1
// everywhere. A constant window reports 0.
func TruncationLevel(w *grid.Grid, frac float64) (int, error) {
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("svdstat: variance fraction %v outside (0,1]", frac)
	}
	m := linalg.NewMatrix(w.Rows, w.Cols)
	copy(m.Data, w.Data)
	mean := w.Summary().Mean
	for i := range m.Data {
		m.Data[i] -= mean
	}
	sv, err := linalg.SingularValues(m)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, s := range sv {
		total += s * s
	}
	if total == 0 {
		return 0, nil
	}
	var acc float64
	for k, s := range sv {
		acc += s * s
		if acc >= frac*total {
			return k + 1, nil
		}
	}
	return len(sv), nil
}

// LocalLevels tiles the field with h×h windows and returns the
// truncation level of every window.
func LocalLevels(g *grid.Grid, h int, frac float64) ([]float64, error) {
	if h < 2 {
		return nil, fmt.Errorf("svdstat: window %d too small", h)
	}
	var levels []float64
	var firstErr error
	g.Tiles(h, func(r0, c0 int, w *grid.Grid) {
		if w.Rows < 2 || w.Cols < 2 {
			return
		}
		k, err := TruncationLevel(w, frac)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		levels = append(levels, float64(k))
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return levels, nil
}

// LocalStd is the paper's statistic: the standard deviation of local
// SVD truncation levels over h×h windows.
func LocalStd(g *grid.Grid, h int, frac float64) (float64, error) {
	levels, err := LocalLevels(g, h, frac)
	if err != nil {
		return 0, err
	}
	if len(levels) == 0 {
		return 0, fmt.Errorf("svdstat: no usable %dx%d windows", h, h)
	}
	return linalg.Std(levels), nil
}
