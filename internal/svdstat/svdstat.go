// Package svdstat computes the paper's local singular-value statistic:
// per H×H window, the number of singular modes required to recover a
// target fraction (99 %) of the window's variance, summarized by the
// standard deviation over all windows ("Std of truncation level of
// local SVD (H=32)", Figures 6 and 7).
package svdstat

import (
	"fmt"

	"lossycorr/internal/grid"
	"lossycorr/internal/linalg"
	"lossycorr/internal/parallel"
)

// DefaultVarianceFraction is the paper's 99 % threshold.
const DefaultVarianceFraction = 0.99

// Options configures windowed SVD statistics.
type Options struct {
	// Frac is the variance fraction a window's leading modes must
	// capture. 0 means DefaultVarianceFraction.
	Frac float64
	// Workers bounds the goroutines of the per-window fan-out. 0 means
	// GOMAXPROCS; 1 forces serial evaluation. Results are bit-identical
	// for every value.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Frac == 0 {
		o.Frac = DefaultVarianceFraction
	}
	return o
}

// TruncationLevel returns the smallest k such that the top-k singular
// values of the mean-centered window capture at least frac of its total
// squared singular-value mass. Centering implements the paper's
// "variance" reading: without it the DC component swallows the energy
// budget of smooth windows and the statistic degenerates to 1
// everywhere. A constant window reports 0.
func TruncationLevel(w *grid.Grid, frac float64) (int, error) {
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("svdstat: variance fraction %v outside (0,1]", frac)
	}
	m := linalg.NewMatrix(w.Rows, w.Cols)
	copy(m.Data, w.Data)
	mean := w.Summary().Mean
	for i := range m.Data {
		m.Data[i] -= mean
	}
	sv, err := linalg.SingularValues(m)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, s := range sv {
		total += s * s
	}
	if total == 0 {
		return 0, nil
	}
	var acc float64
	for k, s := range sv {
		acc += s * s
		if acc >= frac*total {
			return k + 1, nil
		}
	}
	return len(sv), nil
}

// LocalLevelsWith tiles the field with h×h windows and returns the
// truncation level of every window, fanning window SVDs out over the
// shared worker pool. Each worker extracts its window lazily and levels
// are collected in tile order, so the result is independent of
// scheduling.
func LocalLevelsWith(g *grid.Grid, h int, opts Options) ([]float64, error) {
	if h < 2 {
		return nil, fmt.Errorf("svdstat: window %d too small", h)
	}
	o := opts.withDefaults()
	origins := g.TileOrigins(h)
	return parallel.FilterMapErr(len(origins), o.Workers, func(i int) (float64, bool, error) {
		w := g.Window(origins[i][0], origins[i][1], h, h)
		if w.Rows < 2 || w.Cols < 2 {
			return 0, false, nil
		}
		k, err := TruncationLevel(w, o.Frac)
		if err != nil {
			return 0, false, err
		}
		return float64(k), true, nil
	})
}

// LocalLevels tiles the field with h×h windows and returns the
// truncation level of every window.
func LocalLevels(g *grid.Grid, h int, frac float64) ([]float64, error) {
	return LocalLevelsWith(g, h, Options{Frac: frac})
}

// LocalStdWith is the paper's statistic — the standard deviation of
// local SVD truncation levels over h×h windows — with explicit control
// over the variance fraction and worker count.
func LocalStdWith(g *grid.Grid, h int, opts Options) (float64, error) {
	levels, err := LocalLevelsWith(g, h, opts)
	if err != nil {
		return 0, err
	}
	if len(levels) == 0 {
		return 0, fmt.Errorf("svdstat: no usable %dx%d windows", h, h)
	}
	return linalg.Std(levels), nil
}

// LocalStd is the paper's statistic: the standard deviation of local
// SVD truncation levels over h×h windows.
func LocalStd(g *grid.Grid, h int, frac float64) (float64, error) {
	return LocalStdWith(g, h, Options{Frac: frac})
}
