// Package svdstat computes the paper's local singular-value statistic:
// per H×H window, the number of singular modes required to recover a
// target fraction (99 %) of the window's variance, summarized by the
// standard deviation over all windows ("Std of truncation level of
// local SVD (H=32)", Figures 6 and 7).
//
// The statistic extends to any rank through the field layer: a 3D
// H×H×H window is mode-1 unfolded into an H×H² matrix (the window's
// flat data viewed as first-extent rows), whose singular spectrum
// plays the same role the 2D window's spectrum does.
package svdstat

import (
	"context"
	"fmt"

	"lossycorr/internal/field"
	"lossycorr/internal/grid"
	"lossycorr/internal/linalg"
	"lossycorr/internal/stat"
)

// DefaultVarianceFraction is the paper's 99 % threshold.
const DefaultVarianceFraction = 0.99

// GramMode selects between the Gram-matrix fast path and the full-SVD
// reference path for truncation levels.
type GramMode int

const (
	// GramDefault (the zero value) uses the fast path: truncation
	// levels come from the eigenvalues of the centered Gram matrix
	// (AᵀA or AAᵀ, whichever is smaller) assembled directly from the
	// window, skipping the centered copy and the
	// eigenvalue→singular-value→square round trip. Levels agree with
	// the full-SVD path up to eigensolver roundoff at the truncation
	// threshold (~5 % faster on 32×32 windows, ~16 % on unfolded 3D
	// windows, fewer allocations).
	GramDefault GramMode = iota
	// GramOn requests the fast path explicitly (same as the default).
	GramOn
	// GramOff is the escape hatch: the historical full-SVD path
	// (center, singular values, accumulate squares), bit-identical to
	// the pre-Gram releases.
	GramOff
)

// useGram reports whether the mode selects the fast path.
func (m GramMode) useGram() bool { return m != GramOff }

// Options configures windowed SVD statistics.
type Options struct {
	// Frac is the variance fraction a window's leading modes must
	// capture. 0 means DefaultVarianceFraction.
	Frac float64
	// Workers bounds the goroutines of the per-window fan-out. 0 means
	// GOMAXPROCS; 1 forces serial evaluation. Results are bit-identical
	// for every value.
	Workers int
	// Gram selects the level path; the zero value is the Gram fast
	// path, GramOff restores the historical full-SVD arithmetic.
	Gram GramMode
}

func (o Options) withDefaults() Options {
	if o.Frac == 0 {
		o.Frac = DefaultVarianceFraction
	}
	return o
}

// TruncationLevel returns the smallest k such that the top-k singular
// values of the mean-centered window capture at least frac of its total
// squared singular-value mass. Centering implements the paper's
// "variance" reading: without it the DC component swallows the energy
// budget of smooth windows and the statistic degenerates to 1
// everywhere. A constant window reports 0.
func TruncationLevel(w *grid.Grid, frac float64) (int, error) {
	return levelFull(w.Data, w.Rows, w.Cols, w.Summary().Mean, frac)
}

// levelFull is the reference path (GramOff, and TruncationLevel's
// arithmetic): center, take singular values, and accumulate their
// squares. The arithmetic is kept exactly as the historical 2D
// implementation so the escape hatch reproduces pre-Gram statistics
// bit-identically.
func levelFull(data []float64, rows, cols int, mean, frac float64) (int, error) {
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("svdstat: variance fraction %v outside (0,1]", frac)
	}
	m := linalg.NewMatrix(rows, cols)
	copy(m.Data, data)
	for i := range m.Data {
		m.Data[i] -= mean
	}
	sv, err := linalg.SingularValues(m)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, s := range sv {
		total += s * s
	}
	if total == 0 {
		return 0, nil
	}
	var acc float64
	for k, s := range sv {
		acc += s * s
		if acc >= frac*total {
			return k + 1, nil
		}
	}
	return len(sv), nil
}

// levelGram is the fast path (the ROADMAP's Gram-matrix route): the
// truncation level needs only squared singular values, which are the
// eigenvalues of the centered Gram matrix G = AᵀA (or AAᵀ when rows <
// cols). G is assembled in one pass from the raw window using the
// rank-one centering identity
//
//	G_centered[i][j] = G_raw[i][j] − μ·(S_i + S_j) + m·μ²
//
// (S = line sums along the contracted side, m its length), so the
// centered copy, the per-value sqrt, and the re-squaring of the
// default path all disappear.
func levelGram(data []float64, rows, cols int, frac float64) (int, error) {
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("svdstat: variance fraction %v outside (0,1]", frac)
	}
	n := rows * cols
	if n == 0 {
		return 0, nil
	}
	var sumAll float64
	for _, v := range data {
		sumAll += v
	}
	mu := sumAll / float64(n)
	k, m := cols, rows // contract over rows: G = AᵀA
	gramT := rows < cols
	if gramT {
		k, m = rows, cols // contract over cols: G = AAᵀ
	}
	g := linalg.NewMatrix(k, k)
	lineSum := make([]float64, k)
	if gramT {
		for i := 0; i < k; i++ {
			ri := data[i*cols : (i+1)*cols]
			var s float64
			for _, v := range ri {
				s += v
			}
			lineSum[i] = s
			for j := i; j < k; j++ {
				rj := data[j*cols : (j+1)*cols]
				var dot float64
				for t, v := range ri {
					dot += v * rj[t]
				}
				g.Set(i, j, dot)
			}
		}
	} else {
		for t := 0; t < rows; t++ {
			row := data[t*cols : (t+1)*cols]
			for i, vi := range row {
				lineSum[i] += vi
				gi := g.Data[i*k:]
				for j := i; j < k; j++ {
					gi[j] += vi * row[j]
				}
			}
		}
	}
	mm := float64(m) * mu * mu
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			v := g.At(i, j) - mu*(lineSum[i]+lineSum[j]) + mm
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	eig, err := linalg.SymEigen(g)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, e := range eig {
		if e > 0 {
			total += e
		}
	}
	if total == 0 {
		return 0, nil
	}
	var acc float64
	for i, e := range eig {
		if e > 0 {
			acc += e
		}
		if acc >= frac*total {
			return i + 1, nil
		}
	}
	return len(eig), nil
}

// windowLevel computes the truncation level of one window of any rank
// through its mode-1 unfolding (first extent × the rest); for rank 2
// the unfolding is the window itself.
func windowLevel(w *field.Field, o Options) (int, error) {
	rows := w.Shape[0]
	cols := w.Len() / rows
	if o.Gram.useGram() {
		return levelGram(w.Data, rows, cols, o.Frac)
	}
	return levelFull(w.Data, rows, cols, w.Summary().Mean, o.Frac)
}

// LocalLevelsField tiles a field of any rank with h-edged hypercube
// windows and returns the truncation level of every window — the stat
// engine's sweep over LevelKernel, collected in tile order so the
// result is independent of scheduling. Windows with any extent below 2
// after clipping are skipped.
func LocalLevelsField(f *field.Field, h int, opts Options) ([]float64, error) {
	return LocalLevelsFieldCtx(context.Background(), f, h, opts)
}

// LocalLevelsFieldCtx is LocalLevelsField with cooperative
// cancellation: the tile fan-out checks ctx before each window, so a
// dead context abandons the sweep within one window's eigensolve.
func LocalLevelsFieldCtx(ctx context.Context, f *field.Field, h int, opts Options) ([]float64, error) {
	return stat.Windows(ctx, stat.Source{F64: f}, LevelKernel{}, h, opts.Workers, nil, opts)
}

// LocalLevelsWith tiles the field with h×h windows and returns the
// truncation level of every window — the rank-2 view of
// LocalLevelsField.
func LocalLevelsWith(g *grid.Grid, h int, opts Options) ([]float64, error) {
	return LocalLevelsField(field.FromGrid(g), h, opts)
}

// LocalLevels tiles the field with h×h windows and returns the
// truncation level of every window.
func LocalLevels(g *grid.Grid, h int, frac float64) ([]float64, error) {
	return LocalLevelsWith(g, h, Options{Frac: frac})
}

// LocalStdField is the paper's statistic for a field of any rank: the
// standard deviation of local truncation levels over h-edged windows.
func LocalStdField(f *field.Field, h int, opts Options) (float64, error) {
	return LocalStdFieldCtx(context.Background(), f, h, opts)
}

// LocalStdFieldCtx is LocalStdField with cooperative cancellation of
// the window sweep.
func LocalStdFieldCtx(ctx context.Context, f *field.Field, h int, opts Options) (float64, error) {
	levels, err := LocalLevelsFieldCtx(ctx, f, h, opts)
	if err != nil {
		return 0, err
	}
	return foldStd(levels, h, f.Shape)
}

// LocalStdWith is the paper's statistic — the standard deviation of
// local SVD truncation levels over h×h windows — with explicit control
// over the variance fraction and worker count.
func LocalStdWith(g *grid.Grid, h int, opts Options) (float64, error) {
	return LocalStdField(field.FromGrid(g), h, opts)
}

// LocalStd is the paper's statistic: the standard deviation of local
// SVD truncation levels over h×h windows.
func LocalStd(g *grid.Grid, h int, frac float64) (float64, error) {
	return LocalStdWith(g, h, Options{Frac: frac})
}
