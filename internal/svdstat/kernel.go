package svdstat

// The local SVD statistic as a stat.Kernel: a WindowKernel whose sweep
// (tiling, lane widening, streaming, fan-out) the engine owns, leaving
// this package with only the per-window level arithmetic (full-SVD or
// Gram fast path) and the Std fold. Options arrive through the
// engine's Request.Opt under "svd" as an svdstat.Options value; a nil
// opt means defaults.

import (
	"fmt"

	"lossycorr/internal/field"
	"lossycorr/internal/linalg"
	"lossycorr/internal/stat"
)

// LevelKernel is the windowed SVD statistic: the std of per-window
// truncation levels at the configured variance fraction.
type LevelKernel struct{}

// Name implements stat.Kernel.
func (LevelKernel) Name() string { return "svd" }

// Outputs implements stat.Kernel.
func (LevelKernel) Outputs() []string { return []string{"localSVDStd"} }

// Caps implements stat.Kernel.
func (LevelKernel) Caps() stat.Caps {
	return stat.Caps{Lanes: []string{"float64", "float32"}, Windowed: true, Streaming: true}
}

// ErrLabel preserves the historical "local svd" error prefix.
func (LevelKernel) ErrLabel() string { return "local svd" }

// CheckWindow implements stat.WindowKernel.
func (LevelKernel) CheckWindow(h int) error {
	if h < 2 {
		return fmt.Errorf("svdstat: window %d too small", h)
	}
	return nil
}

// EvalWindow implements stat.WindowKernel: one window's truncation
// level through its mode-1 unfolding, skipping windows clipped below
// 2 in any extent.
func (LevelKernel) EvalWindow(w *field.Field, opt any) (float64, bool, error) {
	o, _ := opt.(Options)
	o = o.withDefaults()
	if w.MinDim() < 2 {
		return 0, false, nil
	}
	k, err := windowLevel(w, o)
	if err != nil {
		return 0, false, err
	}
	return float64(k), true, nil
}

// Fold implements stat.WindowKernel: the std over kept window levels.
func (LevelKernel) Fold(vals []float64, info stat.FoldInfo, opt any) ([]float64, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("svdstat: no usable windows (H=%d, shape %v)", info.Window, info.Shape)
	}
	return []float64{linalg.Std(vals)}, nil
}

// foldStd runs the kernel's fold for the thin Std delegates,
// unwrapping the single output.
func foldStd(vals []float64, h int, shape []int) (float64, error) {
	out, err := LevelKernel{}.Fold(vals, stat.FoldInfo{Window: h, Shape: shape}, nil)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}
