package svdstat

import (
	"testing"

	"lossycorr/internal/field"
	"lossycorr/internal/grid"
	"lossycorr/internal/linalg"
	"lossycorr/internal/xrand"
)

func gramRandomGrid(rows, cols int, seed uint64) *grid.Grid {
	rng := xrand.New(seed)
	g := grid.New(rows, cols)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	return g
}

func gramSmoothGrid(rows, cols int) *grid.Grid {
	return grid.FromFunc(rows, cols, func(r, c int) float64 {
		return float64(r)*0.3 + float64(c)*0.7 + 0.01*float64(r*c)
	})
}

// TestGramMatchesFullSVDLevels is the fast path's equivalence test:
// over many windows (noisy, smooth, tall, wide, 3D-unfolded shapes)
// the Gram-eigenvalue levels must match the full-SVD levels. Both
// paths quantize the same spectrum, so any disagreement would mean an
// eigensolver deviation far above roundoff; the tolerance allowed here
// is one level on at most 2 % of windows, and exactness is asserted
// for the deterministic smooth cases.
func TestGramMatchesFullSVDLevels(t *testing.T) {
	type shape struct{ rows, cols int }
	shapes := []shape{{32, 32}, {16, 48}, {48, 16}, {8, 64}, {32, 1024}}
	for _, frac := range []float64{0.9, 0.99, 0.999} {
		var windows, off int
		for _, sh := range shapes {
			for seed := uint64(1); seed <= 8; seed++ {
				g := gramRandomGrid(sh.rows, sh.cols, seed*977)
				full, err := levelFull(g.Data, sh.rows, sh.cols, g.Summary().Mean, frac)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := levelGram(g.Data, sh.rows, sh.cols, frac)
				if err != nil {
					t.Fatal(err)
				}
				windows++
				if full != fast {
					off++
					if d := full - fast; d < -1 || d > 1 {
						t.Fatalf("%dx%d frac=%v seed=%d: gram level %d vs full %d (>1 apart)",
							sh.rows, sh.cols, frac, seed, fast, full)
					}
				}
			}
		}
		if off*50 > windows { // > 2 % disagreement is beyond roundoff
			t.Fatalf("frac=%v: %d of %d windows disagree", frac, off, windows)
		}
	}
	for _, sh := range shapes[:4] {
		g := gramSmoothGrid(sh.rows, sh.cols)
		full, _ := levelFull(g.Data, sh.rows, sh.cols, g.Summary().Mean, 0.99)
		fast, _ := levelGram(g.Data, sh.rows, sh.cols, 0.99)
		if full != fast {
			t.Fatalf("smooth %dx%d: gram level %d != full %d", sh.rows, sh.cols, fast, full)
		}
	}
}

func TestGramConstantWindowZero(t *testing.T) {
	g := grid.New(16, 16)
	for i := range g.Data {
		g.Data[i] = 3.25
	}
	k, err := levelGram(g.Data, 16, 16, 0.99)
	if err != nil || k != 0 {
		t.Fatalf("constant window: level %d err %v, want 0", k, err)
	}
	if _, err := levelGram(g.Data, 16, 16, 1.5); err == nil {
		t.Fatal("expected fraction validation error")
	}
}

// TestGramDefaultPinsBothDirections pins the release flip: the zero
// value and GramOn must take the fast path bit-identically, and
// GramOff must reproduce the historical full-SVD arithmetic (compared
// against levelFull directly, the verbatim legacy path).
func TestGramDefaultPinsBothDirections(t *testing.T) {
	g := gramRandomGrid(96, 96, 11)
	def, err := LocalStdWith(g, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := LocalStdWith(g, 32, Options{Gram: GramOn})
	if err != nil {
		t.Fatal(err)
	}
	if def != fast {
		t.Fatalf("default %x != GramOn %x: the zero value must be the fast path", def, fast)
	}
	full, err := LocalStdWith(g, 32, Options{Gram: GramOff})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the escape hatch through the legacy per-window path.
	f := field.FromGrid(g)
	var legacy []float64
	for _, origin := range f.TileOrigins(32) {
		w := f.Window(origin, 32)
		if w.MinDim() < 2 {
			continue
		}
		k, err := levelFull(w.Data, w.Shape[0], w.Len()/w.Shape[0], w.Summary().Mean, DefaultVarianceFraction)
		if err != nil {
			t.Fatal(err)
		}
		legacy = append(legacy, float64(k))
	}
	want := linalg.Std(legacy)
	if full != want {
		t.Fatalf("GramOff %x != legacy full path %x", full, want)
	}
}

// TestLocalStdGramCloseToFull checks the statistic built on the fast
// path tracks the full-SVD path closely on a realistic field.
func TestLocalStdGramCloseToFull(t *testing.T) {
	g := gramRandomGrid(128, 128, 42)
	full, err := LocalStdWith(g, 32, Options{Gram: GramOff})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := LocalStdWith(g, 32, Options{Gram: GramOn})
	if err != nil {
		t.Fatal(err)
	}
	diff := full - fast
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.25 {
		t.Fatalf("gram statistic %v too far from full %v", fast, full)
	}
}

// TestLocalStd3DSerialParallelIdentical covers the unfolded 3D windows
// under the determinism contract, on both paths.
func TestLocalStd3DSerialParallelIdentical(t *testing.T) {
	rng := xrand.New(9)
	v := grid.NewVolume(24, 24, 24)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	f := field.FromVolume(v)
	for _, gram := range []GramMode{GramOff, GramOn} {
		ref, err := LocalStdField(f, 8, Options{Workers: 1, Gram: gram})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{3, 16} {
			got, err := LocalStdField(f, 8, Options{Workers: w, Gram: gram})
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("gram=%v workers=%d: %x want %x", gram, w, got, ref)
			}
		}
	}
}

func benchLevel(b *testing.B, rows, cols int, gram bool) {
	g := gramRandomGrid(rows, cols, 7)
	mean := g.Summary().Mean
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if gram {
			_, err = levelGram(g.Data, rows, cols, 0.99)
		} else {
			_, err = levelFull(g.Data, rows, cols, mean, 0.99)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTruncationLevelFull(b *testing.B)       { benchLevel(b, 32, 32, false) }
func BenchmarkTruncationLevelGram(b *testing.B)       { benchLevel(b, 32, 32, true) }
func BenchmarkTruncationLevelFullUnfold(b *testing.B) { benchLevel(b, 32, 1024, false) }
func BenchmarkTruncationLevelGramUnfold(b *testing.B) { benchLevel(b, 32, 1024, true) }

func BenchmarkLocalStdFull3D(b *testing.B) {
	rng := xrand.New(3)
	v := grid.NewVolume(32, 32, 32)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	f := field.FromVolume(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LocalStdField(f, 16, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
