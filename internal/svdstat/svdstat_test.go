package svdstat

import (
	"testing"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func TestTruncationLevelRankOne(t *testing.T) {
	// outer product of zero-mean factors stays rank 1 after centering
	w := grid.FromFunc(8, 8, func(r, c int) float64 {
		return (float64(r) - 3.5) * (float64(c) - 3.5)
	})
	k, err := TruncationLevel(w, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("rank-1 window level %d want 1", k)
	}
}

func TestTruncationLevelIdentityLike(t *testing.T) {
	// centered identity I − J/n has n−1 equal singular values, so 99%
	// of the variance needs ceil(0.99·(n−1)) = 9 modes for n = 10
	n := 10
	w := grid.FromFunc(n, n, func(r, c int) float64 {
		if r == c {
			return 1
		}
		return 0
	})
	k, err := TruncationLevel(w, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if k != 9 {
		t.Fatalf("identity level %d want 9", k)
	}
}

func TestTruncationLevelConstantZero(t *testing.T) {
	k, err := TruncationLevel(grid.New(6, 6), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Fatalf("zero window level %d want 0", k)
	}
}

func TestTruncationLevelFracValidation(t *testing.T) {
	if _, err := TruncationLevel(grid.New(4, 4), 0); err == nil {
		t.Fatal("expected frac error")
	}
	if _, err := TruncationLevel(grid.New(4, 4), 1.2); err == nil {
		t.Fatal("expected frac error")
	}
}

func TestTruncationLevelMonotoneInFraction(t *testing.T) {
	rng := xrand.New(6)
	w := grid.FromFunc(12, 12, func(r, c int) float64 { return rng.NormFloat64() })
	k50, err := TruncationLevel(w, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	k99, err := TruncationLevel(w, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if k50 > k99 {
		t.Fatalf("levels not monotone: k(0.5)=%d > k(0.99)=%d", k50, k99)
	}
	if k99 < 1 {
		t.Fatalf("noise window level %d", k99)
	}
}

func TestSmoothNeedsFewerModesThanNoise(t *testing.T) {
	smooth, err := gaussian.Generate(gaussian.Params{Rows: 32, Cols: 32, Range: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	noise := grid.FromFunc(32, 32, func(r, c int) float64 { return rng.NormFloat64() })
	ks, err := TruncationLevel(smooth, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	kn, err := TruncationLevel(noise, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if ks >= kn {
		t.Fatalf("smooth level %d not below noise level %d", ks, kn)
	}
}

func TestLocalLevelsCount(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	levels, err := LocalLevels(f, 32, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 4 {
		t.Fatalf("got %d windows want 4", len(levels))
	}
	for _, k := range levels {
		if k < 1 || k > 32 {
			t.Fatalf("level %v out of range", k)
		}
	}
}

func TestLocalLevelsWindowValidation(t *testing.T) {
	if _, err := LocalLevels(grid.New(8, 8), 1, 0.99); err == nil {
		t.Fatal("expected window error")
	}
}

func TestLocalStdHomogeneousVsHeterogeneous(t *testing.T) {
	smooth, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	mixed := smooth.Clone()
	for r := 0; r < 64; r++ {
		for c := 32; c < 64; c++ {
			mixed.Set(r, c, rng.NormFloat64())
		}
	}
	sSmooth, err := LocalStd(smooth, 16, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	sMixed, err := LocalStd(mixed, 16, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if sMixed <= sSmooth {
		t.Fatalf("heterogeneous std %v not above homogeneous %v", sMixed, sSmooth)
	}
}

func TestDefaultVarianceFraction(t *testing.T) {
	if DefaultVarianceFraction != 0.99 {
		t.Fatalf("paper threshold changed: %v", DefaultVarianceFraction)
	}
}
