// Package hydro is the Miranda substitute: a 2D compressible Euler
// solver (finite volume, MUSCL reconstruction with minmod limiter,
// Rusanov flux, Heun/RK2 time stepping) with Rayleigh–Taylor and
// Kelvin–Helmholtz instability setups. The paper analyzes velocityx
// slices of LLNL's Miranda hydrodynamic turbulence code; that code and
// its data are not redistributable, so this solver produces velocity
// fields with the property the paper actually relies on: complex,
// heterogeneous, multi-scale spatial correlation structure evolving
// with time. See DESIGN.md for the substitution rationale.
package hydro

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"lossycorr/internal/grid"
	"lossycorr/internal/parallel"
	"lossycorr/internal/xrand"
)

// parallelFor runs fn(i) for i in [0, n) across GOMAXPROCS goroutines.
// Iterations must touch disjoint data; results are deterministic
// because each iteration's arithmetic is self-contained.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Gamma is the ideal-gas adiabatic index.
const Gamma = 1.4

// BC selects a boundary condition per direction.
type BC int

const (
	// Periodic wraps the domain.
	Periodic BC = iota
	// Reflective mirrors cells and flips wall-normal velocity.
	Reflective
)

// Sim is a 2D compressible Euler simulation on an nx×ny cell grid.
// Conserved variables per cell: density ρ, momenta ρu, ρv, total
// energy E.
type Sim struct {
	Nx, Ny   int
	Dx, Dy   float64
	BCx, BCy BC
	Gravity  float64 // constant acceleration in −y, applied as a source
	CFL      float64

	rho, mu, mv, e []float64 // conserved state, row-major [j*nx+i]
	time           float64
	steps          int
}

// NewSim allocates a simulation with uniform state (ρ=1, p=1, at rest).
func NewSim(nx, ny int, lx, ly float64) *Sim {
	s := &Sim{
		Nx: nx, Ny: ny,
		Dx: lx / float64(nx), Dy: ly / float64(ny),
		BCx: Periodic, BCy: Periodic,
		CFL: 0.4,
	}
	n := nx * ny
	s.rho = make([]float64, n)
	s.mu = make([]float64, n)
	s.mv = make([]float64, n)
	s.e = make([]float64, n)
	for i := 0; i < n; i++ {
		s.rho[i] = 1
		s.e[i] = 1 / (Gamma - 1) // p=1, at rest
	}
	return s
}

// Time returns the current simulation time.
func (s *Sim) Time() float64 { return s.time }

// Steps returns how many time steps have been taken.
func (s *Sim) Steps() int { return s.steps }

func (s *Sim) idx(i, j int) int { return j*s.Nx + i }

// SetPrimitive assigns cell (i, j) from primitive variables.
func (s *Sim) SetPrimitive(i, j int, rho, u, v, p float64) {
	k := s.idx(i, j)
	s.rho[k] = rho
	s.mu[k] = rho * u
	s.mv[k] = rho * v
	s.e[k] = p/(Gamma-1) + 0.5*rho*(u*u+v*v)
}

// Primitive returns (ρ, u, v, p) of cell (i, j).
func (s *Sim) Primitive(i, j int) (rho, u, v, p float64) {
	k := s.idx(i, j)
	rho = s.rho[k]
	u = s.mu[k] / rho
	v = s.mv[k] / rho
	p = (Gamma - 1) * (s.e[k] - 0.5*rho*(u*u+v*v))
	return
}

// TotalMass integrates ρ over the domain (exactly conserved under
// periodic boundaries).
func (s *Sim) TotalMass() float64 {
	var m float64
	for _, r := range s.rho {
		m += r
	}
	return m * s.Dx * s.Dy
}

// TotalEnergy integrates E over the domain.
func (s *Sim) TotalEnergy() float64 {
	var m float64
	for _, v := range s.e {
		m += v
	}
	return m * s.Dx * s.Dy
}

// VelocityX extracts the u field as a grid (rows = y, cols = x), the
// variable the paper analyzes ("velocityx").
func (s *Sim) VelocityX() *grid.Grid {
	g := grid.New(s.Ny, s.Nx)
	for j := 0; j < s.Ny; j++ {
		for i := 0; i < s.Nx; i++ {
			k := s.idx(i, j)
			g.Set(j, i, s.mu[k]/s.rho[k])
		}
	}
	return g
}

// Density extracts ρ as a grid.
func (s *Sim) Density() *grid.Grid {
	g := grid.New(s.Ny, s.Nx)
	for j := 0; j < s.Ny; j++ {
		copy(g.Row(j), s.rho[j*s.Nx:(j+1)*s.Nx])
	}
	return g
}

// Pressure extracts p as a grid.
func (s *Sim) Pressure() *grid.Grid {
	g := grid.New(s.Ny, s.Nx)
	for j := 0; j < s.Ny; j++ {
		for i := 0; i < s.Nx; i++ {
			_, _, _, p := s.Primitive(i, j)
			g.Set(j, i, p)
		}
	}
	return g
}

// maxWaveSpeed returns max(|u|+c, |v|+c) over all cells.
func (s *Sim) maxWaveSpeed() float64 {
	var m float64
	for j := 0; j < s.Ny; j++ {
		for i := 0; i < s.Nx; i++ {
			rho, u, v, p := s.Primitive(i, j)
			if rho <= 0 || p <= 0 {
				continue
			}
			c := math.Sqrt(Gamma * p / rho)
			if a := math.Abs(u) + c; a > m {
				m = a
			}
			if a := math.Abs(v) + c; a > m {
				m = a
			}
		}
	}
	return m
}

// Step advances one CFL-limited time step (Heun's method) and returns
// the dt taken, or an error if the state has gone non-physical.
func (s *Sim) Step() (float64, error) {
	ws := s.maxWaveSpeed()
	if ws == 0 || math.IsNaN(ws) || math.IsInf(ws, 0) {
		return 0, fmt.Errorf("hydro: invalid wave speed %v at t=%v", ws, s.time)
	}
	h := s.Dx
	if s.Dy < h {
		h = s.Dy
	}
	dt := s.CFL * h / ws

	n := s.Nx * s.Ny
	u0 := cloneState(s.rho, s.mu, s.mv, s.e)
	k1 := s.rhs()
	// predictor
	for c := 0; c < 4; c++ {
		dst := s.comp(c)
		for i := 0; i < n; i++ {
			dst[i] += dt * k1[c][i]
		}
	}
	k2 := s.rhs()
	// corrector: u = u0 + dt/2 (k1 + k2)
	for c := 0; c < 4; c++ {
		dst := s.comp(c)
		src := u0[c]
		for i := 0; i < n; i++ {
			dst[i] = src[i] + 0.5*dt*(k1[c][i]+k2[c][i])
		}
	}
	if err := s.checkPhysical(); err != nil {
		return 0, err
	}
	s.time += dt
	s.steps++
	return dt, nil
}

// Run advances until time t (or maxSteps), whichever first.
func (s *Sim) Run(t float64, maxSteps int) error {
	for s.time < t && s.steps < maxSteps {
		if _, err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Sim) comp(c int) []float64 {
	switch c {
	case 0:
		return s.rho
	case 1:
		return s.mu
	case 2:
		return s.mv
	default:
		return s.e
	}
}

func cloneState(arrs ...[]float64) [4][]float64 {
	var out [4][]float64
	for i, a := range arrs {
		out[i] = append([]float64(nil), a...)
	}
	return out
}

func (s *Sim) checkPhysical() error {
	for j := 0; j < s.Ny; j++ {
		for i := 0; i < s.Nx; i++ {
			rho, _, _, p := s.Primitive(i, j)
			if !(rho > 0) || !(p > 0) || math.IsNaN(rho) || math.IsNaN(p) {
				return fmt.Errorf("hydro: non-physical state ρ=%v p=%v at cell (%d,%d) t=%v", rho, p, i, j, s.time)
			}
		}
	}
	return nil
}

// minmod slope limiter.
func minmod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}

// state is a conserved 4-vector.
type state [4]float64

func (s *Sim) cellState(i, j int) state {
	k := s.idx(i, j)
	return state{s.rho[k], s.mu[k], s.mv[k], s.e[k]}
}

// ghost maps an out-of-range index to an in-range one per the BC and
// reports whether the wall-normal momentum must flip (reflective).
func ghost(i, n int, bc BC) (int, bool) {
	if i >= 0 && i < n {
		return i, false
	}
	if bc == Periodic {
		return ((i % n) + n) % n, false
	}
	// reflective: mirror about the wall
	if i < 0 {
		return -i - 1, true
	}
	return 2*n - i - 1, true
}

func (s *Sim) stateAt(i, j int) state {
	ii, flipX := ghost(i, s.Nx, s.BCx)
	jj, flipY := ghost(j, s.Ny, s.BCy)
	st := s.cellState(ii, jj)
	if flipX {
		st[1] = -st[1]
	}
	if flipY {
		st[2] = -st[2]
	}
	return st
}

func primitive(q state) (rho, u, v, p float64) {
	rho = q[0]
	u = q[1] / rho
	v = q[2] / rho
	p = (Gamma - 1) * (q[3] - 0.5*rho*(u*u+v*v))
	return
}

// fluxX is the physical x-direction Euler flux of state q.
func fluxX(q state) state {
	rho, u, v, p := primitive(q)
	return state{rho * u, rho*u*u + p, rho * u * v, (q[3] + p) * u}
}

// fluxY is the physical y-direction Euler flux.
func fluxY(q state) state {
	rho, u, v, p := primitive(q)
	return state{rho * v, rho * u * v, rho*v*v + p, (q[3] + p) * v}
}

// rusanov computes the local Lax-Friedrichs numerical flux between
// reconstructed left/right states for the given physical flux and the
// normal velocity selector.
func rusanov(l, r state, flux func(state) state, normalVel func(rho, u, v float64) float64) state {
	rhoL, uL, vL, pL := primitive(l)
	rhoR, uR, vR, pR := primitive(r)
	cL := math.Sqrt(Gamma * math.Max(pL, 1e-12) / math.Max(rhoL, 1e-12))
	cR := math.Sqrt(Gamma * math.Max(pR, 1e-12) / math.Max(rhoR, 1e-12))
	sL := math.Abs(normalVel(rhoL, uL, vL)) + cL
	sR := math.Abs(normalVel(rhoR, uR, vR)) + cR
	sMax := math.Max(sL, sR)
	fl, fr := flux(l), flux(r)
	var out state
	for c := 0; c < 4; c++ {
		out[c] = 0.5*(fl[c]+fr[c]) - 0.5*sMax*(r[c]-l[c])
	}
	return out
}

// rhs evaluates dU/dt: flux divergence (MUSCL/minmod + Rusanov) plus
// the gravity source.
func (s *Sim) rhs() [4][]float64 {
	n := s.Nx * s.Ny
	var out [4][]float64
	for c := range out {
		out[c] = make([]float64, n)
	}
	velX := func(rho, u, v float64) float64 { return u }
	velY := func(rho, u, v float64) float64 { return v }

	// x-direction sweeps: rows are independent, fan them out
	parallelFor(s.Ny, func(j int) {
		for i := 0; i <= s.Nx; i++ { // interface between cells i-1 and i
			qm2 := s.stateAt(i-2, j)
			qm1 := s.stateAt(i-1, j)
			q0 := s.stateAt(i, j)
			qp1 := s.stateAt(i+1, j)
			var l, r state
			for c := 0; c < 4; c++ {
				l[c] = qm1[c] + 0.5*minmod(qm1[c]-qm2[c], q0[c]-qm1[c])
				r[c] = q0[c] - 0.5*minmod(q0[c]-qm1[c], qp1[c]-q0[c])
			}
			f := rusanov(l, r, fluxX, velX)
			if i > 0 {
				k := s.idx(i-1, j)
				for c := 0; c < 4; c++ {
					out[c][k] -= f[c] / s.Dx
				}
			}
			if i < s.Nx {
				k := s.idx(i, j)
				for c := 0; c < 4; c++ {
					out[c][k] += f[c] / s.Dx
				}
			}
		}
	})
	// y-direction sweeps: columns are independent
	parallelFor(s.Nx, func(i int) {
		for j := 0; j <= s.Ny; j++ {
			qm2 := s.stateAt(i, j-2)
			qm1 := s.stateAt(i, j-1)
			q0 := s.stateAt(i, j)
			qp1 := s.stateAt(i, j+1)
			var l, r state
			for c := 0; c < 4; c++ {
				l[c] = qm1[c] + 0.5*minmod(qm1[c]-qm2[c], q0[c]-qm1[c])
				r[c] = q0[c] - 0.5*minmod(q0[c]-qm1[c], qp1[c]-q0[c])
			}
			f := rusanov(l, r, fluxY, velY)
			if j > 0 {
				k := s.idx(i, j-1)
				for c := 0; c < 4; c++ {
					out[c][k] -= f[c] / s.Dy
				}
			}
			if j < s.Ny {
				k := s.idx(i, j)
				for c := 0; c < 4; c++ {
					out[c][k] += f[c] / s.Dy
				}
			}
		}
	})
	// gravity source: d(ρv)/dt −= ρ g, dE/dt −= ρ v g
	if s.Gravity != 0 {
		for k := 0; k < n; k++ {
			out[2][k] -= s.rho[k] * s.Gravity
			out[3][k] -= s.mv[k] * s.Gravity
		}
	}
	return out
}

// RayleighTaylor initializes the classic heavy-over-light unstable
// configuration with a randomly perturbed interface: density 2 above
// mid-height, 1 below, hydrostatic pressure, gravity pulling down, and
// a multi-mode velocity perturbation seeding the instability.
func RayleighTaylor(nx, ny int, seed uint64) *Sim {
	s := NewSim(nx, ny, 1, 2)
	s.BCx = Periodic
	s.BCy = Reflective
	s.Gravity = 0.5
	rng := xrand.New(seed)
	const (
		rhoHeavy = 2.0
		rhoLight = 1.0
		p0       = 2.5
	)
	nModes := 8
	amps := make([]float64, nModes)
	phases := make([]float64, nModes)
	for m := range amps {
		amps[m] = rng.Float64()
		phases[m] = 2 * math.Pi * rng.Float64()
	}
	ly := 2.0
	for j := 0; j < ny; j++ {
		y := (float64(j) + 0.5) * s.Dy
		for i := 0; i < nx; i++ {
			x := (float64(i) + 0.5) * s.Dx
			rho := rhoLight
			if y > ly/2 {
				rho = rhoHeavy
			}
			// hydrostatic: p(y) = p0 − g·∫ρ dy
			var p float64
			if y <= ly/2 {
				p = p0 - s.Gravity*rhoLight*y
			} else {
				p = p0 - s.Gravity*(rhoLight*ly/2+rhoHeavy*(y-ly/2))
			}
			// velocity perturbation localized at the interface
			var vy float64
			env := math.Exp(-((y - ly/2) * (y - ly/2)) / 0.005)
			for m := 0; m < nModes; m++ {
				vy += amps[m] * math.Cos(2*math.Pi*float64(m+1)*x+phases[m])
			}
			vy *= 0.02 * env / float64(nModes)
			s.SetPrimitive(i, j, rho, 0, vy, p)
		}
	}
	return s
}

// KHParams configures a Kelvin–Helmholtz setup.
type KHParams struct {
	Nx, Ny int
	Seed   uint64
	// HalfWidth is the half-width of the fast inner band around
	// mid-height (domain units). 0 means 0.25 (the classic double
	// shear layer).
	HalfWidth float64
	// ModeLo/ModeHi bound the perturbation wavenumbers. 0,0 means 2..13.
	ModeLo, ModeHi int
	// Amplitude scales the interface velocity perturbation. 0 means 0.05.
	Amplitude float64
	// VolAmplitude scales a domain-wide multi-scale velocity
	// perturbation (decaying background turbulence). 0 means 0.03.
	VolAmplitude float64
}

func (p KHParams) withDefaults() KHParams {
	if p.HalfWidth == 0 {
		p.HalfWidth = 0.25
	}
	if p.ModeLo == 0 && p.ModeHi == 0 {
		p.ModeLo, p.ModeHi = 2, 13
	}
	if p.Amplitude == 0 {
		p.Amplitude = 0.05
	}
	if p.VolAmplitude == 0 {
		p.VolAmplitude = 0.03
	}
	return p
}

// KelvinHelmholtz initializes the classic double shear layer,
// the standard KH turbulence benchmark; periodic in both directions.
func KelvinHelmholtz(nx, ny int, seed uint64) *Sim {
	return NewKelvinHelmholtz(KHParams{Nx: nx, Ny: ny, Seed: seed})
}

// NewKelvinHelmholtz initializes a parameterized double shear layer
// with a multi-mode velocity perturbation at both interfaces. Varying
// HalfWidth and the mode band changes the correlation structure of the
// resulting velocityx field, which is how GenerateSlices emulates the
// variety of Miranda's through-the-mixing-layer slices.
func NewKelvinHelmholtz(p KHParams) *Sim {
	p = p.withDefaults()
	s := NewSim(p.Nx, p.Ny, 1, 1)
	s.BCx, s.BCy = Periodic, Periodic
	rng := xrand.New(p.Seed)
	nModes := p.ModeHi - p.ModeLo + 1
	if nModes < 1 {
		nModes = 1
	}
	amps := make([]float64, nModes)
	phases := make([]float64, nModes)
	for m := range amps {
		amps[m] = rng.Float64()
		phases[m] = 2 * math.Pi * rng.Float64()
	}
	// background turbulence: a few random 2D Fourier modes per velocity
	// component, exciting fine structure away from the interfaces
	const nVol = 8
	type volMode struct {
		kx, ky     int
		au, av, ph float64
	}
	vol := make([]volMode, nVol)
	for m := range vol {
		vol[m] = volMode{
			kx: 2 + rng.Intn(10),
			ky: 2 + rng.Intn(10),
			au: rng.NormFloat64(),
			av: rng.NormFloat64(),
			ph: 2 * math.Pi * rng.Float64(),
		}
	}
	yLo, yHi := 0.5-p.HalfWidth, 0.5+p.HalfWidth
	env2 := (p.HalfWidth / 15) * (p.HalfWidth / 15) * 4
	for j := 0; j < p.Ny; j++ {
		y := (float64(j) + 0.5) * s.Dy
		for i := 0; i < p.Nx; i++ {
			x := (float64(i) + 0.5) * s.Dx
			inner := y > yLo && y < yHi
			u := -0.5
			rho := 1.0
			if inner {
				u = 0.5
				rho = 2.0
			}
			var vy float64
			env := math.Exp(-((y-yLo)*(y-yLo))/env2) + math.Exp(-((y-yHi)*(y-yHi))/env2)
			for m := 0; m < nModes; m++ {
				vy += amps[m] * math.Sin(2*math.Pi*float64(p.ModeLo+m)*x+phases[m])
			}
			vy *= p.Amplitude * env / float64(nModes)
			for _, vm := range vol {
				w := math.Sin(2*math.Pi*(float64(vm.kx)*x+float64(vm.ky)*y) + vm.ph)
				u += p.VolAmplitude * vm.au * w / nVol
				vy += p.VolAmplitude * vm.av * w / nVol
			}
			s.SetPrimitive(i, j, rho, u, vy, 2.5)
		}
	}
	return s
}

// SliceSet is the Miranda-substitute dataset: velocityx fields of
// instability runs with varying shear geometry and development time,
// playing the role of the equally spaced 2D slices through Miranda's 3D
// mixing layer (each of which sees a different turbulence intensity and
// correlation structure).
type SliceSet struct {
	Times  []float64
	Slices []*grid.Grid
}

// GenerateSlices produces count velocityx fields of size n×n. Field k
// comes from a Kelvin–Helmholtz run whose shear-layer half-width,
// perturbation band, and capture time all vary with k — narrow layers
// captured early are laminar and long-ranged, wide layers captured near
// tEnd are rolled up and heterogeneous. Each field is normalized to
// zero mean and unit variance so compressors see comparable dynamic
// ranges across the set, as the paper's per-slice analysis does
// implicitly through value-range-equivalent error bounds.
func GenerateSlices(n, count int, tEnd float64, seed uint64) (*SliceSet, error) {
	return GenerateSlicesWith(n, count, tEnd, seed, 0)
}

// GenerateSlicesWith is GenerateSlices with an explicit worker count.
// Every slice is an independent simulation with its own deterministic
// seed, so the runs fan out over the shared worker pool and land in
// their index slots — the set is bit-identical at any worker count.
func GenerateSlicesWith(n, count int, tEnd float64, seed uint64, workers int) (*SliceSet, error) {
	if count <= 0 {
		return nil, fmt.Errorf("hydro: non-positive slice count %d", count)
	}
	if tEnd <= 0 {
		tEnd = 1.6
	}
	set := &SliceSet{Times: make([]float64, count), Slices: make([]*grid.Grid, count)}
	const maxSteps = 100_000
	err := parallel.ForErr(count, workers, func(k int) error {
		frac := float64(k) / math.Max(1, float64(count-1))
		// Slices sweep from the calm edge of the mixing layer (wide
		// laminar bands, weak background turbulence, long correlation
		// range) to its turbulent core (narrow rolled-up layers, strong
		// fine-scale energy, short range) — the variation a z-sweep
		// through Miranda's 3D volume exhibits.
		sim := NewKelvinHelmholtz(KHParams{
			Nx: n, Ny: n,
			Seed:         seed + uint64(k)*1000,
			HalfWidth:    0.30 - 0.22*frac,
			ModeLo:       2 + k%3,
			ModeHi:       8 + 2*(k%4),
			VolAmplitude: 0.005 + 0.12*frac*frac,
		})
		target := tEnd * (0.35 + 0.65*frac)
		if err := sim.Run(target, maxSteps); err != nil {
			return err
		}
		set.Times[k] = sim.Time()
		set.Slices[k] = sim.VelocityX().Normalize()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return set, nil
}
