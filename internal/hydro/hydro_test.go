package hydro

import (
	"math"
	"testing"
)

func TestUniformStateStaysUniform(t *testing.T) {
	s := NewSim(16, 16, 1, 1)
	for i := 0; i < 5; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			rho, u, v, p := s.Primitive(i, j)
			if math.Abs(rho-1) > 1e-12 || math.Abs(u) > 1e-12 || math.Abs(v) > 1e-12 || math.Abs(p-1) > 1e-12 {
				t.Fatalf("uniform state drifted at (%d,%d): %v %v %v %v", i, j, rho, u, v, p)
			}
		}
	}
}

func TestMassConservationPeriodic(t *testing.T) {
	s := KelvinHelmholtz(32, 32, 1)
	m0 := s.TotalMass()
	if err := s.Run(0.2, 2000); err != nil {
		t.Fatal(err)
	}
	m1 := s.TotalMass()
	if math.Abs(m1-m0) > 1e-10*math.Abs(m0) {
		t.Fatalf("mass not conserved: %v -> %v", m0, m1)
	}
}

func TestEnergyConservationPeriodic(t *testing.T) {
	s := KelvinHelmholtz(32, 32, 2)
	e0 := s.TotalEnergy()
	if err := s.Run(0.2, 2000); err != nil {
		t.Fatal(err)
	}
	e1 := s.TotalEnergy()
	if math.Abs(e1-e0) > 1e-10*math.Abs(e0) {
		t.Fatalf("energy not conserved: %v -> %v", e0, e1)
	}
}

func TestKHStaysPhysical(t *testing.T) {
	s := KelvinHelmholtz(48, 48, 3)
	if err := s.Run(0.8, 5000); err != nil {
		t.Fatal(err)
	}
	d := s.Density()
	st := d.Summary()
	if st.Min <= 0 {
		t.Fatalf("non-positive density %v", st.Min)
	}
	if math.IsNaN(st.Mean) {
		t.Fatal("NaN density")
	}
}

func TestRTStaysPhysicalWithGravity(t *testing.T) {
	s := RayleighTaylor(32, 64, 4)
	if err := s.Run(0.5, 5000); err != nil {
		t.Fatal(err)
	}
	p := s.Pressure()
	if p.Summary().Min <= 0 {
		t.Fatalf("non-positive pressure %v", p.Summary().Min)
	}
}

func TestRTInterfaceMoves(t *testing.T) {
	s := RayleighTaylor(32, 64, 5)
	rho0 := s.Density()
	if err := s.Run(1.2, 8000); err != nil {
		t.Fatal(err)
	}
	rho1 := s.Density()
	d, err := rho0.MaxAbsDiff(rho1)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.05 {
		t.Fatalf("density barely changed (%v); instability did not develop", d)
	}
}

func TestDeterminism(t *testing.T) {
	a := KelvinHelmholtz(24, 24, 7)
	b := KelvinHelmholtz(24, 24, 7)
	if err := a.Run(0.3, 2000); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(0.3, 2000); err != nil {
		t.Fatal(err)
	}
	da := a.VelocityX()
	db := b.VelocityX()
	if d, _ := da.MaxAbsDiff(db); d != 0 {
		t.Fatalf("same seed diverged by %v", d)
	}
	c := KelvinHelmholtz(24, 24, 8)
	if err := c.Run(0.3, 2000); err != nil {
		t.Fatal(err)
	}
	if d, _ := da.MaxAbsDiff(c.VelocityX()); d == 0 {
		t.Fatal("different seeds identical")
	}
}

func TestGhostIndexing(t *testing.T) {
	// periodic
	if i, flip := ghost(-1, 8, Periodic); i != 7 || flip {
		t.Fatalf("periodic ghost(-1) = %d,%v", i, flip)
	}
	if i, _ := ghost(9, 8, Periodic); i != 1 {
		t.Fatalf("periodic ghost(9) = %d", i)
	}
	// reflective
	if i, flip := ghost(-1, 8, Reflective); i != 0 || !flip {
		t.Fatalf("reflective ghost(-1) = %d,%v", i, flip)
	}
	if i, flip := ghost(-2, 8, Reflective); i != 1 || !flip {
		t.Fatalf("reflective ghost(-2) = %d,%v", i, flip)
	}
	if i, flip := ghost(8, 8, Reflective); i != 7 || !flip {
		t.Fatalf("reflective ghost(8) = %d,%v", i, flip)
	}
	// interior passthrough
	if i, flip := ghost(3, 8, Reflective); i != 3 || flip {
		t.Fatalf("interior ghost(3) = %d,%v", i, flip)
	}
}

func TestMinmod(t *testing.T) {
	if minmod(1, 2) != 1 || minmod(2, 1) != 1 {
		t.Fatal("minmod picks larger magnitude")
	}
	if minmod(-1, -3) != -1 {
		t.Fatal("minmod negative wrong")
	}
	if minmod(1, -1) != 0 || minmod(0, 5) != 0 {
		t.Fatal("minmod sign change must be 0")
	}
}

func TestPrimitiveRoundtrip(t *testing.T) {
	s := NewSim(4, 4, 1, 1)
	s.SetPrimitive(2, 3, 1.7, 0.3, -0.2, 2.1)
	rho, u, v, p := s.Primitive(2, 3)
	if math.Abs(rho-1.7) > 1e-14 || math.Abs(u-0.3) > 1e-14 ||
		math.Abs(v+0.2) > 1e-14 || math.Abs(p-2.1) > 1e-12 {
		t.Fatalf("primitive roundtrip: %v %v %v %v", rho, u, v, p)
	}
}

func TestVelocityXShape(t *testing.T) {
	s := KelvinHelmholtz(20, 12, 1)
	g := s.VelocityX()
	if g.Rows != 12 || g.Cols != 20 {
		t.Fatalf("velocityx shape %dx%d, want rows=ny cols=nx", g.Rows, g.Cols)
	}
}

func TestGenerateSlices(t *testing.T) {
	set, err := GenerateSlices(32, 3, 0.9, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Slices) != 3 || len(set.Times) != 3 {
		t.Fatalf("got %d slices %d times", len(set.Slices), len(set.Times))
	}
	if !(set.Times[0] < set.Times[1] && set.Times[1] < set.Times[2]) {
		t.Fatalf("times not increasing: %v", set.Times)
	}
	for i, s := range set.Slices {
		if s.Rows != 32 || s.Cols != 32 {
			t.Fatalf("slice %d shape %dx%d", i, s.Rows, s.Cols)
		}
		if s.Summary().Variance == 0 {
			t.Fatalf("slice %d is constant", i)
		}
	}
}

func TestGenerateSlicesValidation(t *testing.T) {
	if _, err := GenerateSlices(16, 0, 1, 1); err == nil {
		t.Fatal("expected count error")
	}
}

func TestStepErrorOnInvalidState(t *testing.T) {
	s := NewSim(4, 4, 1, 1)
	s.SetPrimitive(0, 0, math.NaN(), 0, 0, 1)
	if _, err := s.Step(); err == nil {
		t.Fatal("expected error for NaN state")
	}
}
