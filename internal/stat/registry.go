package stat

import (
	"fmt"
	"sync"
)

// The process-global kernel registry. Built-in kernels are registered
// by package core's init in a fixed order (which fixes the default run
// and error-precedence order); additional kernels register themselves
// from their own package init without touching core or the service —
// the registry is what the selection surfaces (-stats, the corrcompd
// stats option, GET /v1/stats) are driven by.
var (
	regMu     sync.RWMutex
	regOrder  []Kernel
	regByName = map[string]Kernel{}
)

// Register adds a kernel to the registry. The name must be non-empty
// and unused, and the kernel must implement WindowKernel or
// GlobalKernel.
func Register(k Kernel) error {
	name := k.Name()
	if name == "" {
		return fmt.Errorf("stat: kernel with empty name")
	}
	if _, isW := k.(WindowKernel); !isW {
		if _, isG := k.(GlobalKernel); !isG {
			return fmt.Errorf("stat: kernel %q implements neither WindowKernel nor GlobalKernel", name)
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByName[name]; dup {
		return fmt.Errorf("stat: kernel %q already registered", name)
	}
	regByName[name] = k
	regOrder = append(regOrder, k)
	return nil
}

// MustRegister is Register for init-time registration of kernels whose
// names cannot collide.
func MustRegister(k Kernel) {
	if err := Register(k); err != nil {
		panic(err)
	}
}

// Lookup returns the kernel registered under name.
func Lookup(name string) (Kernel, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	k, ok := regByName[name]
	return k, ok
}

// Kernels returns the registered kernels in registration order — the
// default run order and error precedence of an unselected analysis.
func Kernels() []Kernel {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Kernel, len(regOrder))
	copy(out, regOrder)
	return out
}

// Names returns the registered kernel names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regOrder))
	for i, k := range regOrder {
		out[i] = k.Name()
	}
	return out
}
