// Package stat is the pluggable statistic-kernel engine behind the
// analysis pipeline. A statistic is implemented once, as a Kernel: it
// declares its outputs and capabilities and either evaluates windows
// (WindowKernel — the engine owns tiling, lane widening, streaming,
// cancellation, and worker fan-out) or the whole field (GlobalKernel —
// the kernel owns its fast paths and source dispatch). One generic
// engine (Run, Windows) then replaces the historical per-statistic
// variant matrix of float64/float32 × in-RAM/streamed × plain/Ctx
// entry points.
//
// The bit-identity contract every kernel must honor: EvalWindow sees
// one freshly extracted window (WindowInto for the float64 lane and
// streamed tiles, WindowIntoWide for the float32 lane — widening is
// exact) and must not depend on evaluation order or shared mutable
// state; the engine guarantees the kept values reach Fold in global
// window order (or selection order, for sampled sweeps) at any worker
// count, tile budget, and halo. GlobalKernel implementations carry the
// same obligation internally for each source they accept.
package stat

import (
	"context"
	"fmt"
	"sync"

	"lossycorr/internal/field"
	"lossycorr/internal/parallel"
	"lossycorr/internal/stream"
)

// Caps describes what a kernel can do — the capability surface
// corrcompd lists on GET /v1/stats.
type Caps struct {
	// Lanes are the element lanes the kernel accepts ("float64",
	// "float32").
	Lanes []string
	// Windowed marks per-window kernels whose sweep the engine owns.
	Windowed bool
	// Streaming marks kernels that accept a TileReader source under a
	// memory budget.
	Streaming bool
	// FFT marks kernels with a spectral fast path.
	FFT bool
}

// Kernel is one registered statistic. Implementations must also
// satisfy WindowKernel or GlobalKernel; the engine dispatches on which
// one.
type Kernel interface {
	// Name is the registry key and the selection token of the CLI's
	// -stats flag and corrcompd's stats option.
	Name() string
	// Outputs are the result keys the kernel produces, in the order its
	// evaluation returns them.
	Outputs() []string
	Caps() Caps
}

// FoldInfo carries the sweep geometry into Fold, for error reporting.
type FoldInfo struct {
	Window int
	Shape  []int
}

// WindowKernel is a statistic evaluated per h-window. The engine
// extracts each window (widened exactly on the float32 lane), fans the
// sweep out, and hands the kept values — in window order — to Fold.
type WindowKernel interface {
	Kernel
	// CheckWindow validates the window edge before any sweep; its error
	// is returned verbatim.
	CheckWindow(h int) error
	// EvalWindow evaluates one extracted window. opt is the kernel's
	// per-run options (nil means defaults). The (value, keep, error)
	// contract matches parallel.FilterMapErrCtx: skipped windows return
	// keep == false without error.
	EvalWindow(w *field.Field, opt any) (float64, bool, error)
	// Fold reduces the kept values (in window order) into the kernel's
	// outputs, parallel to Outputs().
	Fold(vals []float64, info FoldInfo, opt any) ([]float64, error)
}

// GlobalKernel is a statistic computed over the whole field with
// kernel-owned source dispatch (e.g. the global variogram's exact /
// sampled / spectral scans and their out-of-core shards).
type GlobalKernel interface {
	Kernel
	// EvalGlobal computes the kernel's outputs for src, parallel to
	// Outputs(). opt is the kernel's per-run options (nil means
	// defaults); req supplies engine-level knobs such as Workers.
	EvalGlobal(ctx context.Context, src Source, req Request, opt any) ([]float64, error)
}

// errLabeler lets a kernel override the label its failures are wrapped
// with (the historical "global variogram" / "local variogram" /
// "local svd" error prefixes). Kernels without one are labeled by
// Name.
type errLabeler interface{ ErrLabel() string }

// ErrLabel returns the label a kernel's failures are wrapped with.
func ErrLabel(k Kernel) string {
	if l, ok := k.(errLabeler); ok {
		return l.ErrLabel()
	}
	return k.Name()
}

// Source is the one value that names every input the engine accepts:
// exactly one of F64, F32, or Reader is set. Stream configures the
// tile budget of a Reader source.
type Source struct {
	F64    *field.Field
	F32    *field.Field32
	Reader *field.TileReader
	Stream field.StreamOptions
}

// Streaming reports whether the source is dataset-backed.
func (s Source) Streaming() bool { return s.Reader != nil }

// Shape returns the source's extents.
func (s Source) Shape() []int {
	switch {
	case s.Reader != nil:
		return s.Reader.Shape()
	case s.F32 != nil:
		return s.F32.Shape
	case s.F64 != nil:
		return s.F64.Shape
	}
	return nil
}

// Request carries the engine-level parameters of one Run.
type Request struct {
	// Window is the local-statistics window edge H.
	Window int
	// Workers sizes each worker pool of the run; results are
	// bit-identical for every value.
	Workers int
	// Opt maps kernel name to that kernel's options value; kernels
	// without an entry run on their defaults.
	Opt map[string]any
}

// windowPool recycles the per-tile extraction buffers of every window
// sweep: each worker borrows a *field.Field, refills it in place, and
// returns it — steady state allocates no window storage.
var windowPool = sync.Pool{New: func() any { return new(field.Field) }}

// Windows sweeps the h-windows of src through k, supplying everything
// the historical per-variant loops duplicated: lane handling (exact
// widening on the float32 lane), cancellation, worker fan-out, and —
// for Reader sources — tile streaming under the byte budget. sel
// selects a subset of global window indices (nil means all); kept
// values come back in window order, or in sel order, which are exactly
// the fold orders of the historical full and sampled sweeps.
func Windows(ctx context.Context, src Source, k WindowKernel, h, workers int, sel []int, opt any) ([]float64, error) {
	if err := k.CheckWindow(h); err != nil {
		return nil, err
	}
	if src.Reader != nil {
		return stream.Windows(ctx, src.Reader, h, workers, src.Stream, sel,
			func(block *field.Field, rel []int, hh int) (float64, bool, error) {
				w := windowPool.Get().(*field.Field)
				defer windowPool.Put(w)
				return k.EvalWindow(block.WindowInto(w, rel, hh), opt)
			})
	}
	var extract func(dst *field.Field, origin []int) *field.Field
	var origins [][]int
	if s32 := src.F32; s32 != nil {
		origins = s32.TileOrigins(h)
		extract = func(dst *field.Field, origin []int) *field.Field {
			return s32.WindowIntoWide(dst, origin, h)
		}
	} else if f := src.F64; f != nil {
		origins = f.TileOrigins(h)
		extract = func(dst *field.Field, origin []int) *field.Field {
			return f.WindowInto(dst, origin, h)
		}
	} else {
		return nil, fmt.Errorf("stat: empty source")
	}
	n := len(origins)
	if sel != nil {
		n = len(sel)
		for _, g := range sel {
			if g < 0 || g >= len(origins) {
				return nil, fmt.Errorf("stat: window index %d outside %d windows", g, len(origins))
			}
		}
	}
	return parallel.FilterMapErrCtx(ctx, n, workers, func(i int) (float64, bool, error) {
		idx := i
		if sel != nil {
			idx = sel[i]
		}
		w := windowPool.Get().(*field.Field)
		defer windowPool.Put(w)
		return k.EvalWindow(extract(w, origins[idx]), opt)
	})
}

// Run evaluates kernels over src into a keyed result set. In-RAM
// sources run the kernels concurrently on the shared worker pool (the
// historical analyze shape: each windowed kernel additionally fans its
// windows out); Reader sources run them sequentially, because the
// memory budget bounds PEAK transform bytes and concurrent kernels
// would sum their working sets. Failures are wrapped with the failing
// kernel's error label and reported in kernel order — independent of
// scheduling — with ctx cancellation dominating.
func Run(ctx context.Context, src Source, kernels []Kernel, req Request) (map[string]float64, error) {
	outs := make([][]float64, len(kernels))
	errs := make([]error, len(kernels))
	one := func(i int) {
		k := kernels[i]
		opt := req.Opt[k.Name()]
		if g, ok := k.(GlobalKernel); ok {
			outs[i], errs[i] = g.EvalGlobal(ctx, src, req, opt)
			return
		}
		wk, ok := k.(WindowKernel)
		if !ok {
			errs[i] = fmt.Errorf("stat: kernel %q implements neither WindowKernel nor GlobalKernel", k.Name())
			return
		}
		vals, err := Windows(ctx, src, wk, req.Window, req.Workers, nil, opt)
		if err != nil {
			errs[i] = err
			return
		}
		outs[i], errs[i] = wk.Fold(vals, FoldInfo{Window: req.Window, Shape: src.Shape()}, opt)
	}
	if src.Streaming() {
		for i := range kernels {
			one(i)
			if errs[i] != nil {
				break
			}
		}
	} else {
		fns := make([]func(), len(kernels))
		for i := range kernels {
			i := i
			fns[i] = func() { one(i) }
		}
		parallel.Do(req.Workers, fns...)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ErrLabel(kernels[i]), err)
		}
	}
	res := make(map[string]float64, 2*len(kernels))
	for i, k := range kernels {
		names := k.Outputs()
		if len(outs[i]) != len(names) {
			return nil, fmt.Errorf("%s: kernel returned %d values for %d outputs", ErrLabel(k), len(outs[i]), len(names))
		}
		for j, n := range names {
			res[n] = outs[i][j]
		}
	}
	return res, nil
}
