// Package sampling implements the paper's future-work direction for
// making its correlation statistics cheap enough for online use: "We
// plan to leverage a sampling approach similar to prior work. We are
// hopeful that increasing levels of sampling by block can provide an
// increasingly accurate proxy for our metric." (Section VI.)
//
// Each estimator evaluates the windowed statistic on a random fraction
// of the H×H windows instead of all of them, by handing the stat
// engine a seeded selection of global window indices — the engine owns
// extraction, fan-out, and fold order, and the per-window solves are
// the registered kernels', so the sampled estimators stay bit-aligned
// with the full sweeps by construction. SweepFractions quantifies the
// accuracy-versus-cost trade-off so users can pick an operating point.
package sampling

import (
	"context"
	"fmt"
	"math"

	"lossycorr/internal/field"
	"lossycorr/internal/grid"
	"lossycorr/internal/linalg"
	"lossycorr/internal/stat"
	"lossycorr/internal/svdstat"
	"lossycorr/internal/variogram"
	"lossycorr/internal/xrand"
)

// Options configures sampled estimation.
type Options struct {
	Fraction float64 // fraction of windows evaluated; 0 means 0.25
	Seed     uint64
	// Workers bounds the goroutines evaluating sampled windows. 0 means
	// GOMAXPROCS; 1 forces serial evaluation. Results are bit-identical
	// for every value (the sampled window set depends only on Seed).
	Workers int
}

func (o Options) fraction() float64 {
	f := o.Fraction
	if f <= 0 {
		f = 0.25
	}
	if f > 1 {
		f = 1
	}
	return f
}

// sampleIndices picks ceil(frac·total) global window indices: the
// window lattice's lexicographic order shuffled by the seed. The swap
// sequence depends only on the window count and seed, so in-RAM and
// out-of-core estimators select the same windows in the same order.
func sampleIndices(total int, frac float64, seed uint64) []int {
	all := make([]int, total)
	for i := range all {
		all[i] = i
	}
	rng := xrand.New(seed ^ 0x5a3b1e5a3b1e)
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	take := int(math.Ceil(frac * float64(total)))
	return all[:take]
}

// sampledStd sweeps the selected windows of src through k and folds
// the kept values with sampling's own empty-set error.
func sampledStd(ctx context.Context, src stat.Source, k stat.WindowKernel, h int, opts Options, kOpt any) (float64, error) {
	sel := sampleIndices(field.NewWindowGrid(src.Shape(), h).Total(), opts.fraction(), opts.Seed)
	vals, err := stat.Windows(ctx, src, k, h, opts.Workers, sel, kOpt)
	if err != nil {
		return 0, err
	}
	if len(vals) == 0 {
		return 0, fmt.Errorf("sampling: no usable windows at fraction %v", opts.fraction())
	}
	return linalg.Std(vals), nil
}

// LocalRangeStd estimates the std of local variogram ranges from a
// sampled subset of windows. Sampled windows are evaluated on the
// shared worker pool in sampling order (which depends only on the
// seed), so results match the serial path bit for bit.
func LocalRangeStd(g *grid.Grid, h int, opts Options) (float64, error) {
	return LocalRangeStdCtx(context.Background(), g, h, opts)
}

// LocalRangeStdCtx is LocalRangeStd with cooperative cancellation of
// the sampled-window fan-out.
func LocalRangeStdCtx(ctx context.Context, g *grid.Grid, h int, opts Options) (float64, error) {
	if h < 4 {
		return 0, fmt.Errorf("sampling: window %d too small", h)
	}
	// The zero Options give the kernel's per-window solve: exact scan,
	// serial (the sampled windows are the parallel axis), MaxLag from
	// the clipped window's own extents.
	return sampledStd(ctx, stat.Source{F64: field.FromGrid(g)}, variogram.LocalRangeKernel{}, h, opts, variogram.Options{})
}

// LocalSVDStd estimates the std of local SVD truncation levels from a
// sampled subset of windows.
func LocalSVDStd(g *grid.Grid, h int, frac float64, opts Options) (float64, error) {
	return LocalSVDStdCtx(context.Background(), g, h, frac, opts)
}

// LocalSVDStdCtx is LocalSVDStd with cooperative cancellation of the
// sampled-window fan-out.
func LocalSVDStdCtx(ctx context.Context, g *grid.Grid, h int, frac float64, opts Options) (float64, error) {
	if h < 2 {
		return 0, fmt.Errorf("sampling: window %d too small", h)
	}
	if frac <= 0 || frac > 1 {
		frac = svdstat.DefaultVarianceFraction
	}
	// GramOff pins the historical full-SVD arithmetic of the sampled
	// estimator (TruncationLevel's reference path).
	return sampledStd(ctx, stat.Source{F64: field.FromGrid(g)}, svdstat.LevelKernel{}, h, opts,
		svdstat.Options{Frac: frac, Gram: svdstat.GramOff})
}

// SweepPoint is one accuracy measurement of the sampled estimator.
type SweepPoint struct {
	Fraction  float64
	Estimate  float64
	Reference float64 // full (fraction=1) value
	RelError  float64 // |Estimate−Reference| / max(|Reference|, ε)
}

// SweepFractions evaluates a sampled statistic at increasing sampling
// fractions against its full evaluation — the "increasing levels of
// sampling by block" experiment of the paper's future work. stat is
// either "range" (local variogram range std) or "svd". Seed and Workers
// come from opts (Fraction is ignored; the sweep supplies its own), and
// each fraction's windows are evaluated on the worker pool.
func SweepFractions(g *grid.Grid, h int, stat string, fractions []float64, opts Options) ([]SweepPoint, error) {
	return SweepFractionsCtx(context.Background(), g, h, stat, fractions, opts)
}

// SweepFractionsCtx is SweepFractions with cooperative cancellation:
// each fraction evaluation checks ctx through its window fan-out, so a
// dead context abandons the sweep within one window's statistic.
func SweepFractionsCtx(ctx context.Context, g *grid.Grid, h int, stat string, fractions []float64, opts Options) ([]SweepPoint, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.1, 0.25, 0.5, 0.75, 1}
	}
	eval := func(frac float64) (float64, error) {
		o := Options{Fraction: frac, Seed: opts.Seed, Workers: opts.Workers}
		switch stat {
		case "range":
			return LocalRangeStdCtx(ctx, g, h, o)
		case "svd":
			return LocalSVDStdCtx(ctx, g, h, svdstat.DefaultVarianceFraction, o)
		default:
			return 0, fmt.Errorf("sampling: unknown statistic %q (want range|svd)", stat)
		}
	}
	ref, err := eval(1)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(fractions))
	for _, f := range fractions {
		est, err := eval(f)
		if err != nil {
			return nil, err
		}
		den := math.Abs(ref)
		if den < 1e-12 {
			den = 1e-12
		}
		out = append(out, SweepPoint{
			Fraction:  f,
			Estimate:  est,
			Reference: ref,
			RelError:  math.Abs(est-ref) / den,
		})
	}
	return out, nil
}
