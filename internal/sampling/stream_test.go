package sampling

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"lossycorr/internal/field"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func tempReader(t *testing.T, g *grid.Grid) *field.TileReader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "field.lcf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := field.FromGrid(g).WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := field.OpenTileReader(path, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestSampledReaderBitIdentity pins the streamed sampled estimators
// against the in-RAM ones bit for bit: identical window selection,
// evaluation order, and per-window solves, across fractions, seeds,
// budgets, and worker counts.
func TestSampledReaderBitIdentity(t *testing.T) {
	ctx := context.Background()
	rng := xrand.New(600)
	g := grid.FromFunc(61, 53, func(r, c int) float64 { return rng.NormFloat64() })
	tr := tempReader(t, g)
	const h = 8
	winBytes := int64(8 * h * h)
	for _, frac := range []float64{0.1, 0.5, 1} {
		for _, seed := range []uint64{1, 77} {
			opts := Options{Fraction: frac, Seed: seed}
			wantR, err := LocalRangeStdCtx(ctx, g, h, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantS, err := LocalSVDStdCtx(ctx, g, h, 0.99, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, budget := range []int64{2 * winBytes, 0} {
				so := field.StreamOptions{BudgetBytes: budget}
				for _, workers := range []int{1, 3} {
					o := Options{Fraction: frac, Seed: seed, Workers: workers}
					gotR, err := LocalRangeStdReaderCtx(ctx, tr, h, o, so)
					if err != nil {
						t.Fatal(err)
					}
					if gotR != wantR {
						t.Fatalf("frac %v seed %d budget %d workers %d: range std %v, want %v",
							frac, seed, budget, workers, gotR, wantR)
					}
					gotS, err := LocalSVDStdReaderCtx(ctx, tr, h, 0.99, o, so)
					if err != nil {
						t.Fatal(err)
					}
					if gotS != wantS {
						t.Fatalf("frac %v seed %d budget %d workers %d: svd std %v, want %v",
							frac, seed, budget, workers, gotS, wantS)
					}
				}
			}
		}
	}
}
