package sampling

import (
	"math"
	"testing"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/svdstat"
	"lossycorr/internal/variogram"
	"lossycorr/internal/xrand"
)

func heterogeneousField(t *testing.T) *grid.Grid {
	t.Helper()
	smooth, err := gaussian.Generate(gaussian.Params{Rows: 128, Cols: 128, Range: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	mixed := smooth.Clone()
	for r := 0; r < 128; r++ {
		for c := 64; c < 128; c++ {
			mixed.Set(r, c, rng.NormFloat64())
		}
	}
	return mixed
}

func TestFullFractionMatchesReference(t *testing.T) {
	f := heterogeneousField(t)
	full, err := variogram.LocalRangeStd(f, 32, variogram.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := LocalRangeStd(f, 32, Options{Fraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-sampled) > 1e-9 {
		t.Fatalf("fraction-1 sampled %v != full %v", sampled, full)
	}

	fullSVD, err := svdstat.LocalStd(f, 32, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	sampledSVD, err := LocalSVDStd(f, 32, 0.99, Options{Fraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fullSVD-sampledSVD) > 1e-9 {
		t.Fatalf("fraction-1 svd %v != full %v", sampledSVD, fullSVD)
	}
}

func TestHalfFractionApproximates(t *testing.T) {
	f := heterogeneousField(t)
	full, err := LocalRangeStd(f, 32, Options{Fraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	est, err := LocalRangeStd(f, 32, Options{Fraction: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if full == 0 {
		t.Fatal("degenerate reference")
	}
	if math.Abs(est-full)/full > 0.8 {
		t.Fatalf("half-fraction estimate %v too far from %v", est, full)
	}
}

func TestValidation(t *testing.T) {
	f := heterogeneousField(t)
	if _, err := LocalRangeStd(f, 2, Options{}); err == nil {
		t.Fatal("tiny window must error")
	}
	if _, err := LocalSVDStd(f, 1, 0.99, Options{}); err == nil {
		t.Fatal("tiny window must error")
	}
	if _, err := LocalRangeStd(grid.New(64, 64), 32, Options{}); err == nil {
		t.Fatal("constant field must error (no usable windows)")
	}
}

func TestSweepFractions(t *testing.T) {
	f := heterogeneousField(t)
	points, err := SweepFractions(f, 32, "range", []float64{0.25, 0.5, 1}, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points %v", points)
	}
	last := points[len(points)-1]
	if last.Fraction != 1 || last.RelError > 1e-9 {
		t.Fatalf("fraction-1 point not exact: %+v", last)
	}
	for _, p := range points {
		if p.Reference != last.Reference {
			t.Fatalf("reference drifted: %+v", points)
		}
		if p.RelError < 0 {
			t.Fatalf("negative error: %+v", p)
		}
	}
	if _, err := SweepFractions(f, 32, "nope", nil, Options{Seed: 1}); err == nil {
		t.Fatal("unknown stat must error")
	}
}

func TestSweepFractionsSVD(t *testing.T) {
	f := heterogeneousField(t)
	points, err := SweepFractions(f, 32, "svd", nil, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 { // default fractions
		t.Fatalf("got %d points", len(points))
	}
	if points[len(points)-1].RelError > 1e-9 {
		t.Fatalf("full fraction inexact: %+v", points[len(points)-1])
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	f := heterogeneousField(t)
	a, err := LocalRangeStd(f, 32, Options{Fraction: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LocalRangeStd(f, 32, Options{Fraction: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed differs: %v vs %v", a, b)
	}
}
