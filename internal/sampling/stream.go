package sampling

// Out-of-core variants of the sampled estimators, thin delegates into
// the stat engine's Reader lane. The window selection is reproduced
// index-for-index — sampleIndices' shuffle depends only on the window
// count and seed — so the sampled window set, its evaluation order,
// and every per-window solve match the in-RAM estimators bit for bit.
// The engine evaluates only the tiles holding sampled windows, so a
// small fraction touches a correspondingly small part of the file.

import (
	"context"
	"fmt"

	"lossycorr/internal/field"
	"lossycorr/internal/stat"
	"lossycorr/internal/svdstat"
	"lossycorr/internal/variogram"
)

// LocalRangeStdReaderCtx is the out-of-core LocalRangeStdCtx: the std
// of local variogram ranges over the same sampled window subset,
// bit-identical to the in-RAM estimator. The sampled estimators are
// 2D, like their in-RAM counterparts.
func LocalRangeStdReaderCtx(ctx context.Context, tr *field.TileReader, h int, opts Options, so field.StreamOptions) (float64, error) {
	if h < 4 {
		return 0, fmt.Errorf("sampling: window %d too small", h)
	}
	if tr.NDim() != 2 {
		return 0, fmt.Errorf("sampling: rank-%d field; sampled estimators are 2D", tr.NDim())
	}
	return sampledStd(ctx, stat.Source{Reader: tr, Stream: so}, variogram.LocalRangeKernel{}, h, opts, variogram.Options{})
}

// LocalSVDStdReaderCtx is the out-of-core LocalSVDStdCtx: the std of
// local SVD truncation levels over the same sampled window subset,
// bit-identical to the in-RAM estimator.
func LocalSVDStdReaderCtx(ctx context.Context, tr *field.TileReader, h int, frac float64, opts Options, so field.StreamOptions) (float64, error) {
	if h < 2 {
		return 0, fmt.Errorf("sampling: window %d too small", h)
	}
	if tr.NDim() != 2 {
		return 0, fmt.Errorf("sampling: rank-%d field; sampled estimators are 2D", tr.NDim())
	}
	if frac <= 0 || frac > 1 {
		frac = svdstat.DefaultVarianceFraction
	}
	return sampledStd(ctx, stat.Source{Reader: tr, Stream: so}, svdstat.LevelKernel{}, h, opts,
		svdstat.Options{Frac: frac, Gram: svdstat.GramOff})
}
