package sampling

// Out-of-core variants of the sampled estimators. The window selection
// is reproduced index-for-index — Tiles enumerates origins row-major,
// which is exactly the window lattice's lexicographic order, and the
// shuffle's swap sequence depends only on the window count and seed —
// so the sampled window set, its evaluation order, and every per-window
// solve match the in-RAM estimators bit for bit. stream.Windows then
// evaluates only the tiles holding sampled windows, so a small fraction
// touches a correspondingly small part of the file.

import (
	"context"
	"fmt"
	"math"
	"sync"

	"lossycorr/internal/field"
	"lossycorr/internal/grid"
	"lossycorr/internal/linalg"
	"lossycorr/internal/stream"
	"lossycorr/internal/svdstat"
	"lossycorr/internal/variogram"
	"lossycorr/internal/xrand"
)

// windowPool recycles per-window extraction buffers of the streaming
// sampled estimators.
var windowPool = sync.Pool{New: func() any { return new(field.Field) }}

// sampleIndices picks ceil(frac·total) global window indices with the
// identical shuffle (and therefore identical selection, in identical
// order) as sampleWindows.
func sampleIndices(total int, frac float64, seed uint64) []int {
	all := make([]int, total)
	for i := range all {
		all[i] = i
	}
	rng := xrand.New(seed ^ 0x5a3b1e5a3b1e)
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	take := int(math.Ceil(frac * float64(total)))
	return all[:take]
}

// LocalRangeStdReaderCtx is the out-of-core LocalRangeStdCtx: the std
// of local variogram ranges over the same sampled window subset,
// bit-identical to the in-RAM estimator. The sampled estimators are
// 2D, like their in-RAM counterparts.
func LocalRangeStdReaderCtx(ctx context.Context, tr *field.TileReader, h int, opts Options, so field.StreamOptions) (float64, error) {
	if h < 4 {
		return 0, fmt.Errorf("sampling: window %d too small", h)
	}
	if tr.NDim() != 2 {
		return 0, fmt.Errorf("sampling: rank-%d field; sampled estimators are 2D", tr.NDim())
	}
	sel := sampleIndices(field.NewWindowGrid(tr.Shape(), h).Total(), opts.fraction(), opts.Seed)
	ranges, err := stream.Windows(ctx, tr, h, opts.Workers, so, sel,
		func(block *field.Field, rel []int, hh int) (float64, bool, error) {
			w := windowPool.Get().(*field.Field)
			defer windowPool.Put(w)
			block.WindowInto(w, rel, hh)
			if w.Shape[0] < 4 || w.Shape[1] < 4 || w.Summary().Variance == 0 {
				return 0, false, nil
			}
			// Workers: 1 — the sampled windows are the parallel axis; the
			// per-window exact scan must not fan its bins out on top.
			e, err := variogram.ComputeField(w, variogram.Options{Exact: true, Workers: 1})
			if err != nil {
				return 0, false, err
			}
			m, err := variogram.Fit(e)
			if err != nil {
				return 0, false, err
			}
			return m.Range, true, nil
		})
	if err != nil {
		return 0, err
	}
	if len(ranges) == 0 {
		return 0, fmt.Errorf("sampling: no usable windows at fraction %v", opts.fraction())
	}
	return linalg.Std(ranges), nil
}

// LocalSVDStdReaderCtx is the out-of-core LocalSVDStdCtx: the std of
// local SVD truncation levels over the same sampled window subset,
// bit-identical to the in-RAM estimator.
func LocalSVDStdReaderCtx(ctx context.Context, tr *field.TileReader, h int, frac float64, opts Options, so field.StreamOptions) (float64, error) {
	if h < 2 {
		return 0, fmt.Errorf("sampling: window %d too small", h)
	}
	if tr.NDim() != 2 {
		return 0, fmt.Errorf("sampling: rank-%d field; sampled estimators are 2D", tr.NDim())
	}
	if frac <= 0 || frac > 1 {
		frac = svdstat.DefaultVarianceFraction
	}
	sel := sampleIndices(field.NewWindowGrid(tr.Shape(), h).Total(), opts.fraction(), opts.Seed)
	levels, err := stream.Windows(ctx, tr, h, opts.Workers, so, sel,
		func(block *field.Field, rel []int, hh int) (float64, bool, error) {
			w := windowPool.Get().(*field.Field)
			defer windowPool.Put(w)
			block.WindowInto(w, rel, hh)
			if w.Shape[0] < 2 || w.Shape[1] < 2 {
				return 0, false, nil
			}
			k, err := svdstat.TruncationLevel(&grid.Grid{Rows: w.Shape[0], Cols: w.Shape[1], Data: w.Data}, frac)
			if err != nil {
				return 0, false, err
			}
			return float64(k), true, nil
		})
	if err != nil {
		return 0, err
	}
	if len(levels) == 0 {
		return 0, fmt.Errorf("sampling: no usable windows at fraction %v", opts.fraction())
	}
	return linalg.Std(levels), nil
}
