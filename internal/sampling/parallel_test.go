package sampling

import (
	"testing"
)

// TestSampledStatsSerialParallelIdentical asserts the determinism
// contract for the sampled estimators: the sampled window set depends
// only on the seed, and parallel evaluation keeps sampling order, so
// results are bit-identical at any worker count.
func TestSampledStatsSerialParallelIdentical(t *testing.T) {
	f := heterogeneousField(t)
	for _, frac := range []float64{0.5, 1} {
		serialRange, err := LocalRangeStd(f, 32, Options{Fraction: frac, Seed: 9, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		serialSVD, err := LocalSVDStd(f, 32, 0.99, Options{Fraction: frac, Seed: 9, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			parRange, err := LocalRangeStd(f, 32, Options{Fraction: frac, Seed: 9, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if parRange != serialRange {
				t.Fatalf("frac=%v workers=%d: range std %v != serial %v", frac, workers, parRange, serialRange)
			}
			parSVD, err := LocalSVDStd(f, 32, 0.99, Options{Fraction: frac, Seed: 9, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if parSVD != serialSVD {
				t.Fatalf("frac=%v workers=%d: svd std %v != serial %v", frac, workers, parSVD, serialSVD)
			}
		}
	}
}

func TestSweepFractionsSerialParallelIdentical(t *testing.T) {
	f := heterogeneousField(t)
	serial, err := SweepFractions(f, 32, "range", []float64{0.25, 1}, Options{Seed: 17, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepFractions(f, 32, "range", []float64{0.25, 1}, Options{Seed: 17, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("sweep point %d differs: serial %+v parallel %+v", i, serial[i], par[i])
		}
	}
}
