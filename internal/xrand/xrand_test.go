package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	c := New(43)
	same := 0
	a2 := New(42)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds too similar: %d collisions", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	r := New(7)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Fatalf("uniform variance %v", variance)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sum2, sum4 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
		sum4 += v * v * v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	kurt := sum4 / n / (variance * variance)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
	if math.Abs(kurt-3) > 0.15 {
		t.Fatalf("normal kurtosis %v", kurt)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make([]bool, 7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("Intn never produced %d", i)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	r := New(9)
	x := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), x...)
	r.Shuffle(len(x), func(i, j int) { x[i], x[j] = x[j], x[i] })
	sum := 0
	for _, v := range x {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", x)
	}
	_ = orig
}

func TestSplitIndependence(t *testing.T) {
	r := New(13)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams too similar: %d", same)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
