// Package xrand provides a small, fast, deterministic random number
// generator (xoshiro256** seeded by SplitMix64) with the uniform and
// Gaussian variates the field generators need. Every experiment in the
// repository is reproducible because all randomness flows through
// explicitly seeded instances of this generator.
package xrand

import "math"

// Rand is a xoshiro256** generator. It is not safe for concurrent use;
// create one per goroutine (see Split).
type Rand struct {
	s [4]uint64

	// cached second Gaussian variate from the polar method
	haveSpare bool
	spare     float64
}

// New returns a generator seeded from the given seed via SplitMix64,
// which guarantees a well-mixed non-zero state for any seed value.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Split derives an independent generator from r's current state. The
// child is seeded from fresh output of r, so parent and child streams
// do not overlap in practice.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	carry := t >> 32
	t = aHi*bLo + carry
	t1 := t & mask
	carry = t >> 32
	t = aLo*bHi + t1
	lo |= (t & mask) << 32
	hi = aHi*bHi + carry + (t >> 32)
	return hi, lo
}

// NormFloat64 returns a standard Gaussian variate using the Marsaglia
// polar method (deterministic given the stream, unlike ziggurat table
// edge cases across Go versions).
func (r *Rand) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices via swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
