package variogram

// Float32-lane entry points. The direct estimators reuse the
// element-generic scan cores (accumulation is float64 either way, and
// the sampler's draw order is lane-independent); the FFT engine has
// its own float32 plane pipeline in fftscan32.go. The windowed
// statistic delegates to the stat engine, whose float32 lane widens
// each small window into oracle precision on the fly (WindowIntoWide)
// — the per-window fits are exactly the float64 code path over
// exactly-widened samples, and no full-size float64 copy of the field
// is ever made.

import (
	"context"
	"fmt"

	"lossycorr/internal/field"
	"lossycorr/internal/stat"
)

func (o *Options) withField32Defaults(f *field.Field32) Options {
	out := *o
	if out.MaxLag <= 0 {
		out.MaxLag = f.MinDim() / 2
		if out.MaxLag < 1 {
			out.MaxLag = 1
		}
	}
	if out.MaxPairs <= 0 {
		out.MaxPairs = 400_000
	}
	return out
}

// ComputeField32 estimates the empirical semi-variogram of a float32
// field: the float32 mirror of ComputeField, with the same
// estimator-selection rules and the same bit-identical-at-any-worker-
// count contract.
func ComputeField32(f *field.Field32, opts Options) (*Empirical, error) {
	return ComputeField32Ctx(context.Background(), f, opts)
}

// ComputeField32Ctx is ComputeField32 with cooperative cancellation.
func ComputeField32Ctx(ctx context.Context, f *field.Field32, opts Options) (*Empirical, error) {
	if f.NDim() < 1 || f.Len() < 2 {
		return nil, fmt.Errorf("variogram: field too small (shape %v)", f.Shape)
	}
	o := opts.withField32Defaults(f)
	if o.FFT {
		return fftScanField32(ctx, f, o)
	}
	if o.Exact || f.Len() <= exactThresholdFor(f.NDim()) {
		return exactScanData(ctx, f.Data, f.Shape, o)
	}
	return sampledScanData(ctx, f.Data, f.Shape, o)
}

// GlobalRangeField32 estimates the variogram range of an entire
// float32 field.
func GlobalRangeField32(f *field.Field32, opts Options) (Model, error) {
	return GlobalRangeField32Ctx(context.Background(), f, opts)
}

// GlobalRangeField32Ctx is GlobalRangeField32 with cooperative
// cancellation of the underlying scan.
func GlobalRangeField32Ctx(ctx context.Context, f *field.Field32, opts Options) (Model, error) {
	e, err := ComputeField32Ctx(ctx, f, opts)
	if err != nil {
		return Model{}, err
	}
	return Fit(e)
}

// LocalRangesField32 tiles a float32 field with h-edged windows and
// estimates a variogram range per window — the stat engine's float32
// lane over LocalRangeKernel, bit-identical to the float64 sweep over
// the exactly-widened field.
func LocalRangesField32(f *field.Field32, h int, opts Options) ([]float64, error) {
	return LocalRangesField32Ctx(context.Background(), f, h, opts)
}

// LocalRangesField32Ctx is LocalRangesField32 with cooperative
// cancellation: the tile fan-out checks ctx before each window.
func LocalRangesField32Ctx(ctx context.Context, f *field.Field32, h int, opts Options) ([]float64, error) {
	return stat.Windows(ctx, stat.Source{F32: f}, LocalRangeKernel{}, h, opts.Workers, nil, opts)
}

// LocalRangeStdField32 is the std of per-window variogram ranges for a
// float32 field — the paper's heterogeneity statistic on the compute
// lane.
func LocalRangeStdField32(f *field.Field32, h int, opts Options) (float64, error) {
	return LocalRangeStdField32Ctx(context.Background(), f, h, opts)
}

// LocalRangeStdField32Ctx is LocalRangeStdField32 with cooperative
// cancellation of the window sweep.
func LocalRangeStdField32Ctx(ctx context.Context, f *field.Field32, h int, opts Options) (float64, error) {
	ranges, err := LocalRangesField32Ctx(ctx, f, h, opts)
	if err != nil {
		return 0, err
	}
	return foldStd(LocalRangeKernel{}, ranges, h, f.Shape, opts)
}
