package variogram

// Sharded spectral engine: the fftscan.go transform identities, run
// slab-by-slab along axis 0 so the padded planes fit a memory budget.
//
// Canonical offsets (first nonzero component positive) always have
// h₀ ≥ 0, so partitioning pairs by the axis-0 coordinate of the BASE
// point partitions the direct scan's pair set exactly: slab s owns the
// base points with x₀ ∈ [z₀, z₁), and every partner x+h then lies in
// the extended region [z₀, z₂), z₂ = min(z₁+L, n₀). With asymmetric
// indicator masks — a-functions supported on the base region,
// b-functions on the extended region —
//
//	S_s(h) = c_{w_a,m_b}(h) + c_{m_a,w_b}(h) − 2·c_{z_a,z_b}(h)
//	N_s(h) = c_{m_a,m_b}(h)
//
// and summing over slabs reproduces the full-field sums: pair counts
// are EXACTLY the direct scan's (each base point is in exactly one
// slab), Gamma agrees to roundoff (the equivalence test pins 1e-9).
// Cross-correlations come from conj(A)·B spectra; padding axis 0 to
// FastLen(B+L) (h₀ ∈ [0,L] never wraps a (B+L)-support signal) and the
// other axes to FastLen(n_k+L) exactly as in the full-field engine.
//
// The slab loop is serial and each slab's bin fold runs on the worker
// pool with whole-bin ownership, so results are independent of the
// worker count. Peak live bytes per slab: one extended block read, at
// most two padded real planes, and at most four half-spectra — the
// shard size B is the largest making that bound fit half the budget
// (headroom for transform-pool bucket slack, see fft pool accounting).

import (
	"context"
	"fmt"
	"math"

	"lossycorr/internal/fft"
	"lossycorr/internal/field"
	"lossycorr/internal/parallel"
)

// shardBytes bounds the peak live pool bytes of one slab pass with
// base extent b: block read + two padded real planes + four
// half-spectra.
func shardBytes(b int, dims []int, nb int) int64 {
	rest := int64(1)
	for _, d := range dims[1:] {
		rest *= int64(d)
	}
	ext := b + nb
	if ext > dims[0] {
		ext = dims[0]
	}
	pad := make([]int, len(dims))
	pad[0] = padLenFn(ext + nb)
	total := int64(pad[0])
	for k := 1; k < len(dims); k++ {
		pad[k] = padLenFn(dims[k] + nb)
		total *= int64(pad[k])
	}
	return 8*int64(ext)*rest + 2*8*total + 4*16*int64(fft.HalfLen(pad))
}

// fftShardSize picks the largest axis-0 base extent whose slab pass
// fits half of budgetBytes (<= 0 means unbounded: one slab).
func fftShardSize(dims []int, nb int, budgetBytes int64) (int, error) {
	n0 := dims[0]
	if budgetBytes <= 0 {
		return n0, nil
	}
	half := budgetBytes / 2
	if shardBytes(1, dims, nb) > half {
		return 0, fmt.Errorf("variogram: memory budget %d too small for a spectral shard of shape %v (lag %d)",
			budgetBytes, dims, nb)
	}
	b := 1
	for b < n0 && shardBytes(b+1, dims, nb) <= half {
		b++
	}
	return b, nil
}

// fftScanReader is the out-of-core fftScanField: identical transform
// identities, evaluated in axis-0 slabs sized by the byte budget.
func fftScanReader(ctx context.Context, tr *field.TileReader, o Options, so field.StreamOptions) (*Empirical, error) {
	stage := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	dims := tr.Shape()
	nd := len(dims)
	if nd < 1 {
		return nil, fmt.Errorf("variogram: rank-0 field")
	}
	nb := o.MaxLag
	shard, err := fftShardSize(dims, nb, so.BudgetBytes)
	if err != nil {
		return nil, err
	}
	rest := 1
	for _, d := range dims[1:] {
		rest *= d
	}
	bins := offsetsByBinCached(nd, nb)
	sum := make([]float64, nb+1)
	cnt := make([]int64, nb+1)

	for z0 := 0; z0 < dims[0]; z0 += shard {
		z1 := z0 + shard
		if z1 > dims[0] {
			z1 = dims[0]
		}
		z2 := z1 + nb
		if z2 > dims[0] {
			z2 = dims[0]
		}
		baseDims := append([]int{z1 - z0}, dims[1:]...)
		extDims := append([]int{z2 - z0}, dims[1:]...)
		pad := make([]int, nd)
		pad[0] = padLenFn(extDims[0] + nb)
		total := 1
		for k := 1; k < nd; k++ {
			pad[k] = padLenFn(dims[k] + nb)
		}
		for _, p := range pad {
			total *= p
		}
		half := fft.HalfLen(pad)
		if err := func() error { // one slab; defers release pooled buffers
			blo := make([]int, nd)
			blo[0] = z0
			bhi := append([]int{z2}, dims[1:]...)
			blkBuf := fft.AcquireRealTight((z2 - z0) * rest)
			blkDone := false
			releaseBlk := func() {
				if !blkDone {
					fft.ReleaseReal(blkBuf)
					blkDone = true
				}
			}
			defer releaseBlk()
			blk := &field.Field{Data: blkBuf}
			if err := tr.ReadBlock(blk, blo, bhi); err != nil {
				return err
			}
			r := fft.AcquireRealTight(total)
			defer fft.ReleaseReal(r)
			// Base-region z: the base block is a prefix of the extended
			// block (axis 0 is slowest).
			baseLen := (z1 - z0) * rest
			if err := fft.EmbedReal(r, pad, blk.Data[:baseLen], baseDims); err != nil {
				return err
			}
			if err := stage(); err != nil {
				return err
			}
			spZa := fft.AcquireComplexTight(half)
			defer func() { fft.ReleaseComplex(spZa) }()
			if err := fft.ForwardRealND(r, pad, spZa, o.Workers); err != nil {
				return err
			}
			for i, v := range r { // w_a = z²·m_a: zero padding stays zero
				r[i] = v * v
			}
			spWa := fft.AcquireComplexTight(half)
			defer func() { fft.ReleaseComplex(spWa) }()
			if err := fft.ForwardRealND(r, pad, spWa, o.Workers); err != nil {
				return err
			}
			for i := range r {
				r[i] = 0
			}
			if err := fft.ForEachEmbeddedRow(baseDims, pad, func(_, dstOff, n int) {
				for i := dstOff; i < dstOff+n; i++ {
					r[i] = 1
				}
			}); err != nil {
				return err
			}
			if err := stage(); err != nil {
				return err
			}
			spMa := fft.AcquireComplexTight(half)
			defer func() { fft.ReleaseComplex(spMa) }()
			if err := fft.ForwardRealND(r, pad, spMa, o.Workers); err != nil {
				return err
			}
			// Extended-region z; the block is spent after this embed.
			if err := fft.EmbedReal(r, pad, blk.Data, extDims); err != nil {
				return err
			}
			releaseBlk()
			if err := stage(); err != nil {
				return err
			}
			spZb := fft.AcquireComplexTight(half)
			if err := fft.ForwardRealND(r, pad, spZb, o.Workers); err != nil {
				fft.ReleaseComplex(spZb)
				return err
			}
			// accS = −2·conj(Z_a)·Z_b, accumulated in spZa.
			fft.MulConjScale(spZa, spZb, -2)
			fft.ReleaseComplex(spZb)
			accS := spZa
			for i, v := range r { // w_b = z²·m_b
				r[i] = v * v
			}
			if err := stage(); err != nil {
				return err
			}
			spWb := fft.AcquireComplexTight(half)
			if err := fft.ForwardRealND(r, pad, spWb, o.Workers); err != nil {
				fft.ReleaseComplex(spWb)
				return err
			}
			fft.AddMulConjScale(accS, spMa, spWb, 1) // + conj(M_a)·W_b
			fft.ReleaseComplex(spWb)
			for i := range r {
				r[i] = 0
			}
			if err := fft.ForEachEmbeddedRow(extDims, pad, func(_, dstOff, n int) {
				for i := dstOff; i < dstOff+n; i++ {
					r[i] = 1
				}
			}); err != nil {
				return err
			}
			if err := stage(); err != nil {
				return err
			}
			spMb := fft.AcquireComplexTight(half)
			if err := fft.ForwardRealND(r, pad, spMb, o.Workers); err != nil {
				fft.ReleaseComplex(spMb)
				return err
			}
			fft.AddMulConjScale(accS, spWa, spMb, 1) // + conj(W_a)·M_b
			fft.MulConj(spMa, spMb)                  // accN = conj(M_a)·M_b
			fft.ReleaseComplex(spMb)
			if err := stage(); err != nil {
				return err
			}
			// S plane into the staging buffer, count plane into a second.
			if err := fft.InverseRealND(accS, pad, r, o.Workers); err != nil {
				return err
			}
			cn := fft.AcquireRealTight(total)
			defer fft.ReleaseReal(cn)
			if err := fft.InverseRealND(spMa, pad, cn, o.Workers); err != nil {
				return err
			}
			// Fold this slab's per-offset correlations into the global
			// bins: canonical offset order within a bin, fixed slab order
			// across slabs, whole-bin worker ownership — deterministic at
			// any worker count.
			pStride := make([]int, nd)
			acc := 1
			for k := nd - 1; k >= 0; k-- {
				pStride[k] = acc
				acc *= pad[k]
			}
			return parallel.ForCtx(ctx, nb+1, o.Workers, func(b int) {
				offs := bins[b]
				var s float64
				var c int64
				for p := 0; p < len(offs); p += nd {
					idx := 0
					for k := 0; k < nd; k++ {
						h := int(offs[p+k])
						if h >= 0 { // k == 0 always lands here: h₀ ≥ 0
							idx += h * pStride[k]
						} else {
							idx += (pad[k] + h) * pStride[k]
						}
					}
					n := int64(math.Round(cn[idx]))
					if n <= 0 {
						continue
					}
					d := r[idx]
					if d < 0 { // roundoff on (near-)constant fields
						d = 0
					}
					s += d
					c += n
				}
				sum[b] += s
				cnt[b] += c
			})
		}(); err != nil {
			return nil, err
		}
	}
	return collect(sum, cnt), nil
}
