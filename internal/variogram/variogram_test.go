package variogram

import (
	"math"
	"testing"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func whiteNoise(rows, cols int, seed uint64) *grid.Grid {
	rng := xrand.New(seed)
	return grid.FromFunc(rows, cols, func(r, c int) float64 { return rng.NormFloat64() })
}

func TestComputeTooSmall(t *testing.T) {
	if _, err := Compute(grid.New(1, 1), Options{}); err == nil {
		t.Fatal("expected error for 1x1 field")
	}
}

func TestWhiteNoiseFlatVariogram(t *testing.T) {
	g := whiteNoise(64, 64, 1)
	e, err := Compute(g, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	// for iid noise γ(h) ≈ variance at every lag
	v := g.Summary().Variance
	for i, h := range e.H {
		if math.Abs(e.Gamma[i]-v) > 0.2*v {
			t.Fatalf("γ(%v)=%v far from variance %v", h, e.Gamma[i], v)
		}
	}
}

func TestEmpiricalMatchesTheoryOnGaussianField(t *testing.T) {
	const rang = 8.0
	f, err := gaussian.Generate(gaussian.Params{Rows: 96, Cols: 96, Range: rang, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compute(f, Options{Exact: true, MaxLag: 24})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range e.H {
		if h < 2 || h > 12 {
			continue
		}
		want := gaussian.TheoreticalVariogram(h, rang, 1)
		if math.Abs(e.Gamma[i]-want) > 0.45*want+0.05 {
			t.Fatalf("γ(%v)=%v want ≈%v", h, e.Gamma[i], want)
		}
	}
}

func TestFitRecoversSyntheticModel(t *testing.T) {
	// exact model data: fit must recover sill and range closely
	truth := Model{Sill: 2.5, Range: 7}
	e := &Empirical{}
	for h := 1.0; h <= 30; h++ {
		e.H = append(e.H, h)
		e.Gamma = append(e.Gamma, truth.Gamma(h))
		e.N = append(e.N, 1000)
	}
	m, err := Fit(e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Sill-truth.Sill) > 0.01 || math.Abs(m.Range-truth.Range) > 0.05 {
		t.Fatalf("fit %+v want %+v", m, truth)
	}
	if math.Abs(m.RangePaper-m.Range*m.Range) > 1e-9 {
		t.Fatalf("RangePaper inconsistent: %v vs %v", m.RangePaper, m.Range*m.Range)
	}
}

func TestFitTooFewBins(t *testing.T) {
	if _, err := Fit(&Empirical{H: []float64{1}, Gamma: []float64{1}, N: []int64{1}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestGlobalRangeRecoversGeneratingRange(t *testing.T) {
	for _, rang := range []float64{4, 10} {
		f, err := gaussian.Generate(gaussian.Params{Rows: 128, Cols: 128, Range: rang, Seed: uint64(rang)})
		if err != nil {
			t.Fatal(err)
		}
		m, err := GlobalRange(f, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if m.Range < rang*0.6 || m.Range > rang*1.6 {
			t.Fatalf("range %v: estimated %v outside tolerance", rang, m.Range)
		}
	}
}

func TestGlobalRangeOrdering(t *testing.T) {
	// larger generating range must yield larger estimated range
	est := make([]float64, 0, 3)
	for _, rang := range []float64{3, 9, 27} {
		f, err := gaussian.Generate(gaussian.Params{Rows: 128, Cols: 128, Range: rang, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		m, err := GlobalRange(f, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		est = append(est, m.Range)
	}
	if !(est[0] < est[1] && est[1] < est[2]) {
		t.Fatalf("estimated ranges not ordered: %v", est)
	}
}

func TestSampledMatchesExact(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 80, Cols: 80, Range: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Compute(f, Options{Exact: true, MaxLag: 16})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Compute(f, Options{MaxLag: 16, MaxPairs: 600000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mE, err := Fit(exact)
	if err != nil {
		t.Fatal(err)
	}
	mS, err := Fit(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mE.Range-mS.Range) > 0.35*mE.Range {
		t.Fatalf("sampled range %v vs exact %v", mS.Range, mE.Range)
	}
}

func TestModelGammaZeroRange(t *testing.T) {
	m := Model{Sill: 3}
	if m.Gamma(5) != 3 {
		t.Fatalf("degenerate model γ=%v", m.Gamma(5))
	}
}

func TestLocalRangesHeterogeneousField(t *testing.T) {
	// left half smooth (long range), right half rough: local ranges must
	// spread more than on a homogeneous field
	smooth, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rough := whiteNoise(64, 64, 2)
	mixed := grid.New(64, 64)
	for r := 0; r < 64; r++ {
		for c := 0; c < 64; c++ {
			if c < 32 {
				mixed.Set(r, c, smooth.At(r, c))
			} else {
				mixed.Set(r, c, rough.At(r, c))
			}
		}
	}
	stdMixed, err := LocalRangeStd(mixed, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stdSmooth, err := LocalRangeStd(smooth, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stdMixed <= stdSmooth {
		t.Fatalf("heterogeneous std %v not above homogeneous %v", stdMixed, stdSmooth)
	}
}

func TestLocalRangesCount(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := LocalRanges(f, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 4 {
		t.Fatalf("expected 4 windows, got %d", len(ranges))
	}
}

func TestLocalRangesWindowTooSmall(t *testing.T) {
	if _, err := LocalRanges(grid.New(8, 8), 2, Options{}); err == nil {
		t.Fatal("expected window error")
	}
}

func TestLocalRangeStdConstantField(t *testing.T) {
	if _, err := LocalRangeStd(grid.New(64, 64), 32, Options{}); err == nil {
		t.Fatal("constant field has no usable windows; expected error")
	}
}

func TestOptionsDefaults(t *testing.T) {
	g := grid.New(10, 20)
	o := (&Options{}).withDefaults(g)
	if o.MaxLag != 5 {
		t.Fatalf("default MaxLag %d want 5", o.MaxLag)
	}
	if o.MaxPairs != 400000 {
		t.Fatalf("default MaxPairs %d", o.MaxPairs)
	}
}
