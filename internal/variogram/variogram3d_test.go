package variogram

import (
	"math"
	"testing"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func TestCompute3DTooSmall(t *testing.T) {
	if _, err := Compute3D(grid.NewVolume(1, 1, 1), Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCompute3DWhiteNoiseFlat(t *testing.T) {
	rng := xrand.New(2)
	v := grid.NewVolume(16, 16, 16)
	var variance float64
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
		variance += v.Data[i] * v.Data[i]
	}
	variance /= float64(len(v.Data))
	e, err := Compute3D(v, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range e.H {
		if math.Abs(e.Gamma[i]-variance) > 0.25*variance {
			t.Fatalf("γ(%v)=%v far from variance %v", h, e.Gamma[i], variance)
		}
	}
}

func TestCompute3DPairCountExact(t *testing.T) {
	// total pair count over all bins must equal the number of unordered
	// pairs within the cutoff; check the lag-1 bin exactly: axis
	// neighbors only (3 directions)
	v := grid.NewVolume(4, 4, 4)
	rng := xrand.New(3)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	e, err := Compute3D(v, Options{Exact: true, MaxLag: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.H) != 1 || e.H[0] != 1 {
		t.Fatalf("bins %v", e.H)
	}
	// 3 axes × 4×4 planes × 3 in-axis pairs = 3·(4·4·3) = 144
	if e.N[0] != 144 {
		t.Fatalf("lag-1 pair count %d want 144", e.N[0])
	}
}

func TestGlobalRange3DRecoversGeneratingRange(t *testing.T) {
	v, err := gaussian.Generate3D(gaussian.Params3D{Nz: 24, Ny: 24, Nx: 24, Range: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := GlobalRange3D(v, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Range < 2 || m.Range > 8 {
		t.Fatalf("estimated 3D range %v, generating 4", m.Range)
	}
}

func TestGlobalRange3DOrdering(t *testing.T) {
	est := make([]float64, 0, 2)
	for _, rang := range []float64{1.5, 5} {
		v, err := gaussian.Generate3D(gaussian.Params3D{Nz: 20, Ny: 20, Nx: 20, Range: rang, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		m, err := GlobalRange3D(v, Options{Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		est = append(est, m.Range)
	}
	if est[0] >= est[1] {
		t.Fatalf("3D ranges not ordered: %v", est)
	}
}

func TestSampled3DMatchesExact(t *testing.T) {
	v, err := gaussian.Generate3D(gaussian.Params3D{Nz: 32, Ny: 32, Nx: 32, Range: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Compute3D(v, Options{Exact: true, MaxLag: 8})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Compute3D(v, Options{MaxLag: 8, MaxPairs: 500000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mE, err := Fit(exact)
	if err != nil {
		t.Fatal(err)
	}
	mS, err := Fit(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mE.Range-mS.Range) > 0.4*mE.Range {
		t.Fatalf("sampled 3D range %v vs exact %v", mS.Range, mE.Range)
	}
}
