package variogram

// The variogram statistics as stat.Kernel implementations. RangeKernel
// is the global range/sill fit — a GlobalKernel, because the global
// scan owns genuinely different strategies per source (exact, sampled,
// spectral, and their out-of-core shards). LocalRangeKernel is the
// windowed heterogeneity statistic — a WindowKernel whose sweep
// (tiling, lanes, streaming, fan-out) the engine owns entirely.
//
// Options for either kernel arrive through the engine's Request.Opt
// under the kernel name as a variogram.Options value; a nil opt means
// defaults.

import (
	"context"
	"fmt"

	"lossycorr/internal/field"
	"lossycorr/internal/linalg"
	"lossycorr/internal/stat"
)

// lanes shared by every built-in kernel: the float64 oracle lane and
// the float32 compute lane.
func bothLanes() []string { return []string{"float64", "float32"} }

// RangeKernel is the global variogram statistic: the fitted range and
// sill of the whole field's empirical semi-variogram.
type RangeKernel struct{}

// Name implements stat.Kernel.
func (RangeKernel) Name() string { return "variogram" }

// Outputs implements stat.Kernel.
func (RangeKernel) Outputs() []string { return []string{"globalRange", "globalSill"} }

// Caps implements stat.Kernel.
func (RangeKernel) Caps() stat.Caps {
	return stat.Caps{Lanes: bothLanes(), Streaming: true, FFT: true}
}

// ErrLabel preserves the historical "global variogram" error prefix.
func (RangeKernel) ErrLabel() string { return "global variogram" }

// EvalGlobal implements stat.GlobalKernel, dispatching on the source:
// in-RAM fields run ComputeField(32)Ctx's estimator selection; Reader
// sources run the out-of-core dispatch (sampled scan bit-identical,
// spectral shards tolerance-equivalent, exact scan materialized on the
// transform-pool gauge).
func (RangeKernel) EvalGlobal(ctx context.Context, src stat.Source, req stat.Request, opt any) ([]float64, error) {
	o, _ := opt.(Options)
	if o.Workers == 0 {
		o.Workers = req.Workers
	}
	var m Model
	var err error
	switch {
	case src.Reader != nil:
		m, err = GlobalRangeReaderCtx(ctx, src.Reader, o, src.Stream)
	case src.F32 != nil:
		m, err = GlobalRangeField32Ctx(ctx, src.F32, o)
	case src.F64 != nil:
		m, err = GlobalRangeFieldCtx(ctx, src.F64, o)
	default:
		err = fmt.Errorf("variogram: empty source")
	}
	if err != nil {
		return nil, err
	}
	return []float64{m.Range, m.Sill}, nil
}

// LocalRangeKernel is the windowed variogram statistic: the std of
// per-window fitted ranges over h-edged hypercube windows.
type LocalRangeKernel struct{}

// Name implements stat.Kernel.
func (LocalRangeKernel) Name() string { return "localrange" }

// Outputs implements stat.Kernel.
func (LocalRangeKernel) Outputs() []string { return []string{"localRangeStd"} }

// Caps implements stat.Kernel.
func (LocalRangeKernel) Caps() stat.Caps {
	return stat.Caps{Lanes: bothLanes(), Windowed: true, Streaming: true}
}

// ErrLabel preserves the historical "local variogram" error prefix.
func (LocalRangeKernel) ErrLabel() string { return "local variogram" }

// CheckWindow implements stat.WindowKernel.
func (LocalRangeKernel) CheckWindow(h int) error {
	if h < 4 {
		return fmt.Errorf("variogram: window %d too small", h)
	}
	return nil
}

// EvalWindow implements stat.WindowKernel: one clipped window's exact
// scan and fit, skipping degenerate windows (any extent < 4, or
// constant).
func (LocalRangeKernel) EvalWindow(w *field.Field, opt any) (float64, bool, error) {
	o, _ := opt.(Options)
	return windowRangeField(w, o)
}

// Fold implements stat.WindowKernel: the std over kept window ranges.
func (LocalRangeKernel) Fold(vals []float64, info stat.FoldInfo, opt any) ([]float64, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("variogram: no usable windows (H=%d, shape %v)", info.Window, info.Shape)
	}
	return []float64{linalg.Std(vals)}, nil
}
