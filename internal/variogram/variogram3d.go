package variogram

import (
	"fmt"
	"math"

	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

// Compute3D estimates the isotropic empirical semi-variogram of a 3D
// volume — the paper's future-work extension of the statistic to a 3D
// context. Small volumes use an exact offset scan over the half-space
// of lag vectors; large ones use pair sampling (same strategy as the 2D
// estimators).
func Compute3D(v *grid.Volume, opts Options) (*Empirical, error) {
	n := v.Nz * v.Ny * v.Nx
	if n < 2 {
		return nil, fmt.Errorf("variogram: volume too small (%dx%dx%d)", v.Nz, v.Ny, v.Nx)
	}
	maxLag := opts.MaxLag
	if maxLag <= 0 {
		m := v.Nz
		if v.Ny < m {
			m = v.Ny
		}
		if v.Nx < m {
			m = v.Nx
		}
		maxLag = m / 2
		if maxLag < 1 {
			maxLag = 1
		}
	}
	maxPairs := opts.MaxPairs
	if maxPairs <= 0 {
		maxPairs = 400_000
	}
	const exact3DThreshold = 24 * 24 * 24
	if opts.Exact || n <= exact3DThreshold {
		return exactScan3D(v, maxLag), nil
	}
	return sampledScan3D(v, maxLag, maxPairs, opts.Seed), nil
}

// exactScan3D accumulates every pair with offset magnitude <= maxLag,
// restricting offsets to a half-space so each unordered pair counts
// once: dz > 0, or dz == 0 && dy > 0, or dz == dy == 0 && dx > 0.
func exactScan3D(v *grid.Volume, maxLag int) *Empirical {
	sum := make([]float64, maxLag+1)
	cnt := make([]int64, maxLag+1)
	maxSq := float64(maxLag * maxLag)
	at := func(z, y, x int) float64 { return v.Data[(z*v.Ny+y)*v.Nx+x] }
	for dz := 0; dz <= maxLag; dz++ {
		yMin := -maxLag
		if dz == 0 {
			yMin = 0
		}
		for dy := yMin; dy <= maxLag; dy++ {
			xMin := -maxLag
			if dz == 0 && dy == 0 {
				xMin = 1
			}
			for dx := xMin; dx <= maxLag; dx++ {
				d2 := float64(dz*dz + dy*dy + dx*dx)
				if d2 == 0 || d2 > maxSq {
					continue
				}
				bin := int(math.Round(math.Sqrt(d2)))
				if bin > maxLag {
					continue
				}
				z1 := v.Nz - dz
				for z := 0; z < z1; z++ {
					y0, y1 := 0, v.Ny
					if dy > 0 {
						y1 = v.Ny - dy
					} else {
						y0 = -dy
					}
					for y := y0; y < y1; y++ {
						x0, x1 := 0, v.Nx
						if dx > 0 {
							x1 = v.Nx - dx
						} else {
							x0 = -dx
						}
						for x := x0; x < x1; x++ {
							d := at(z, y, x) - at(z+dz, y+dy, x+dx)
							sum[bin] += d * d
							cnt[bin]++
						}
					}
				}
			}
		}
	}
	return collect(sum, cnt)
}

func sampledScan3D(v *grid.Volume, maxLag, maxPairs int, seed uint64) *Empirical {
	rng := xrand.New(seed ^ 0x3d3d3d3d3d3d3d3d)
	sum := make([]float64, maxLag+1)
	cnt := make([]int64, maxLag+1)
	maxSq := maxLag * maxLag
	at := func(z, y, x int) float64 { return v.Data[(z*v.Ny+y)*v.Nx+x] }
	for p := 0; p < maxPairs; p++ {
		z := rng.Intn(v.Nz)
		y := rng.Intn(v.Ny)
		x := rng.Intn(v.Nx)
		dz := rng.Intn(2*maxLag+1) - maxLag
		dy := rng.Intn(2*maxLag+1) - maxLag
		dx := rng.Intn(2*maxLag+1) - maxLag
		d2 := dz*dz + dy*dy + dx*dx
		if d2 == 0 || d2 > maxSq {
			continue
		}
		z2, y2, x2 := z+dz, y+dy, x+dx
		if z2 < 0 || z2 >= v.Nz || y2 < 0 || y2 >= v.Ny || x2 < 0 || x2 >= v.Nx {
			continue
		}
		bin := int(math.Round(math.Sqrt(float64(d2))))
		if bin > maxLag {
			continue
		}
		d := at(z, y, x) - at(z2, y2, x2)
		sum[bin] += d * d
		cnt[bin]++
	}
	return collect(sum, cnt)
}

// GlobalRange3D estimates the variogram range of an entire volume.
func GlobalRange3D(v *grid.Volume, opts Options) (Model, error) {
	e, err := Compute3D(v, opts)
	if err != nil {
		return Model{}, err
	}
	return Fit(e)
}
