package variogram

import (
	"lossycorr/internal/field"
	"lossycorr/internal/grid"
)

// Compute3D estimates the isotropic empirical semi-variogram of a 3D
// volume. It is the rank-3 view of ComputeField (see ndim.go); the
// generic engine reproduces the historical 3D offset scan and pair
// sampler bit for bit.
func Compute3D(v *grid.Volume, opts Options) (*Empirical, error) {
	return ComputeField(field.FromVolume(v), opts)
}

// GlobalRange3D estimates the variogram range of an entire volume.
func GlobalRange3D(v *grid.Volume, opts Options) (Model, error) {
	return GlobalRangeField(field.FromVolume(v), opts)
}

// LocalRanges3D tiles a volume with h×h×h windows and estimates a
// variogram range per window.
func LocalRanges3D(v *grid.Volume, h int, opts Options) ([]float64, error) {
	return LocalRangesField(field.FromVolume(v), h, opts)
}

// LocalRangeStd3D is the std of per-window variogram ranges over h×h×h
// windows — the paper's heterogeneity statistic in its 3D context.
func LocalRangeStd3D(v *grid.Volume, h int, opts Options) (float64, error) {
	return LocalRangeStdField(field.FromVolume(v), h, opts)
}
