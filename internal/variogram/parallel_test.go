package variogram

import (
	"testing"

	"lossycorr/internal/gaussian"
)

// TestLocalRangesSerialParallelIdentical asserts the determinism
// contract: per-window ranges are bit-identical at any worker count.
func TestLocalRangesSerialParallelIdentical(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 96, Cols: 96, Range: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := LocalRanges(f, 16, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := LocalRanges(f, 16, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d ranges vs %d serial", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: range[%d] = %v != serial %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestLocalRangeStdSerialParallelIdentical(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 96, Cols: 96, Range: 12, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := LocalRangeStd(f, 16, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := LocalRangeStd(f, 16, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial != par {
		t.Fatalf("LocalRangeStd not bit-identical: serial %v parallel %v", serial, par)
	}
}

// TestLocalRangesParallelStress repeats the parallel evaluation so the
// race detector sees many pool lifecycles over shared windows.
func TestLocalRangesParallelStress(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 6, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := LocalRanges(f, 16, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 8; it++ {
		got, err := LocalRanges(f, 16, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("iteration %d: range[%d] drifted", it, i)
			}
		}
	}
}
