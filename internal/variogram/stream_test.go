package variogram

import (
	"context"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"lossycorr/internal/field"
)

// writeTempField serializes a field (either lane's WriteBinary) and
// returns a TileReader over the file, closed with the test.
func writeTempField(t *testing.T, write func(w io.Writer) error) *field.TileReader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "field.lcf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := field.OpenTileReader(path, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestLocalRangesReaderBitIdentity pins the tentpole contract: the
// streamed windowed variogram sweep equals the in-RAM sweep bit for
// bit — across ranks, odd shapes, both stored lanes, worker counts,
// tile budgets from one-window-at-a-time to unbounded, and halos up to
// and beyond the tile edge.
func TestLocalRangesReaderBitIdentity(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		shape []int
		h     int
	}{
		{[]int{37, 29}, 8},
		{[]int{64, 64}, 16},
		{[]int{19, 23, 17}, 5},
	}
	for ci, tc := range cases {
		f := randomField(tc.shape, uint64(300+ci))
		want, err := LocalRangesFieldCtx(ctx, f, tc.h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		f32, _ := randomField32(tc.shape, uint64(700+ci))
		want32, err := LocalRangesField32Ctx(ctx, f32, tc.h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tr := writeTempField(t, f.WriteBinary)
		tr32 := writeTempField(t, f32.WriteBinary)
		// Budgets in bytes: one window's elements, a few windows, all.
		winBytes := int64(8)
		for range tc.shape {
			winBytes *= int64(tc.h)
		}
		for _, budget := range []int64{2 * winBytes, 6 * winBytes, 0} {
			for _, halo := range []int{0, 3, tc.h + 2} {
				so := field.StreamOptions{BudgetBytes: budget, Halo: halo}
				for _, workers := range []int{1, 3} {
					got, err := LocalRangesReaderCtx(ctx, tr, tc.h, Options{Workers: workers}, so)
					if err != nil {
						t.Fatalf("shape %v budget %d halo %d: %v", tc.shape, budget, halo, err)
					}
					if len(got) != len(want) {
						t.Fatalf("shape %v budget %d halo %d workers %d: %d ranges, want %d",
							tc.shape, budget, halo, workers, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("shape %v budget %d halo %d workers %d: range[%d] = %v, want %v",
								tc.shape, budget, halo, workers, i, got[i], want[i])
						}
					}
					got32, err := LocalRangesReaderCtx(ctx, tr32, tc.h, Options{Workers: workers}, so)
					if err != nil {
						t.Fatal(err)
					}
					if len(got32) != len(want32) {
						t.Fatalf("f32 shape %v: %d ranges, want %d", tc.shape, len(got32), len(want32))
					}
					for i := range want32 {
						if got32[i] != want32[i] {
							t.Fatalf("f32 shape %v budget %d halo %d workers %d: range[%d] = %v, want %v",
								tc.shape, budget, halo, workers, i, got32[i], want32[i])
						}
					}
				}
			}
		}
	}
}

// TestSampledScanReaderBitIdentity: the out-of-core pair sampler draws
// the identical seeded sequence through the reader's point-access lane,
// so the whole Empirical matches the in-RAM sampler bitwise — both
// stored lanes.
func TestSampledScanReaderBitIdentity(t *testing.T) {
	ctx := context.Background()
	shape := []int{70, 61} // above the rank-2 exact threshold
	opts := Options{Seed: 42, MaxPairs: 20_000}
	f := randomField(shape, 901)
	want, err := ComputeFieldCtx(ctx, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := writeTempField(t, f.WriteBinary)
	got, err := ComputeReaderCtx(ctx, tr, opts, field.StreamOptions{BudgetBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	assertEmpiricalEqual(t, got, want)

	f32, _ := randomField32(shape, 902)
	want32, err := ComputeField32Ctx(ctx, f32, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr32 := writeTempField(t, f32.WriteBinary)
	got32, err := ComputeReaderCtx(ctx, tr32, opts, field.StreamOptions{BudgetBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	assertEmpiricalEqual(t, got32, want32)
}

func assertEmpiricalEqual(t *testing.T, got, want *Empirical) {
	t.Helper()
	if len(got.H) != len(want.H) {
		t.Fatalf("%d bins, want %d", len(got.H), len(want.H))
	}
	for i := range want.H {
		if got.H[i] != want.H[i] || got.N[i] != want.N[i] || got.Gamma[i] != want.Gamma[i] {
			t.Fatalf("bin %d: (%v,%d,%v), want (%v,%d,%v)",
				i, got.H[i], got.N[i], got.Gamma[i], want.H[i], want.N[i], want.Gamma[i])
		}
	}
}

// TestExactScanReaderBitIdentity: small fields dispatch to the exact
// scan through a materialized copy, which must be bitwise the in-RAM
// exact result.
func TestExactScanReaderBitIdentity(t *testing.T) {
	ctx := context.Background()
	shape := []int{23, 21}
	f := randomField(shape, 903)
	want, err := ComputeFieldCtx(ctx, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := writeTempField(t, f.WriteBinary)
	got, err := ComputeReaderCtx(ctx, tr, Options{}, field.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertEmpiricalEqual(t, got, want)
}

// TestFFTScanReaderMatchesExact pins the sharded spectral engine's
// contract: pair counts exactly equal the direct scan's at every shard
// size, Gamma to 1e-9 relative, and the result is bit-stable across
// worker counts at a fixed budget.
func TestFFTScanReaderMatchesExact(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		shape  []int
		maxLag int
	}{
		{[]int{37, 53}, 0},
		{[]int{96, 40}, 13},
		{[]int{17, 19, 23}, 0},
		{[]int{24, 24, 24}, 7},
	}
	for ci, tc := range cases {
		f := randomField(tc.shape, uint64(400+ci))
		ex, err := ComputeField(f, Options{Exact: true, MaxLag: tc.maxLag})
		if err != nil {
			t.Fatal(err)
		}
		tr := writeTempField(t, f.WriteBinary)
		// Budgets that force many slabs, a few slabs, and one slab.
		for _, budget := range []int64{0, 1 << 22, 1 << 25} {
			var ref *Empirical
			for _, workers := range []int{1, 3} {
				got, err := ComputeReaderCtx(ctx, tr, Options{FFT: true, MaxLag: tc.maxLag, Workers: workers},
					field.StreamOptions{BudgetBytes: budget})
				if err != nil {
					t.Fatalf("shape %v budget %d: %v", tc.shape, budget, err)
				}
				if len(got.H) != len(ex.H) {
					t.Fatalf("shape %v budget %d: %d bins vs exact %d", tc.shape, budget, len(got.H), len(ex.H))
				}
				for i := range ex.H {
					if got.N[i] != ex.N[i] {
						t.Fatalf("shape %v budget %d bin h=%v: count %d vs exact %d",
							tc.shape, budget, ex.H[i], got.N[i], ex.N[i])
					}
					rel := math.Abs(got.Gamma[i]-ex.Gamma[i]) / math.Abs(ex.Gamma[i])
					if rel > 1e-9 {
						t.Fatalf("shape %v budget %d bin h=%v: gamma %v vs exact %v (rel %g)",
							tc.shape, budget, ex.H[i], got.Gamma[i], ex.Gamma[i], rel)
					}
				}
				if ref == nil {
					ref = got
				} else {
					for i := range ref.Gamma {
						if got.Gamma[i] != ref.Gamma[i] {
							t.Fatalf("shape %v budget %d: worker-dependent gamma at bin %d", tc.shape, budget, i)
						}
					}
				}
			}
		}
	}
}

// TestFFTShardBudgetTooSmall: a budget that cannot hold even a
// one-plane shard errors instead of over-allocating.
func TestFFTShardBudgetTooSmall(t *testing.T) {
	f := randomField([]int{48, 96, 96}, 905)
	tr := writeTempField(t, f.WriteBinary)
	_, err := ComputeReaderCtx(context.Background(), tr, Options{FFT: true},
		field.StreamOptions{BudgetBytes: 1 << 12})
	if err == nil {
		t.Fatal("expected budget error")
	}
}
