package variogram

// Out-of-core variants of the variogram estimators. The windowed sweep
// routes through stream.Windows — h-aligned tiles against a byte
// budget, identical per-window solves, scatter-by-global-index folding
// — so LocalRangesReaderCtx is bit-identical to LocalRangesFieldCtx at
// any worker count, tile budget, and halo. The global estimators keep
// their in-RAM dispatch: the spectral lane runs the sharded engine
// (fftstream.go; pair counts exact, Gamma tolerance-equivalent), the
// sampled lane aims the identical seeded draw sequence at the reader's
// point-access lane and is bit-identical, and the exact scan — which
// by construction touches every element pair — materializes the field
// through the transform pool, where the peak gauge honestly reports
// the cost.

import (
	"context"
	"fmt"

	"lossycorr/internal/fft"
	"lossycorr/internal/field"
	"lossycorr/internal/stat"
)

// withReaderDefaults mirrors withFieldDefaults for an out-of-core
// field: the lag cutoff falls back to half the smallest extent.
func (o *Options) withReaderDefaults(tr *field.TileReader) Options {
	out := *o
	if out.MaxLag <= 0 {
		out.MaxLag = tr.MinDim() / 2
		if out.MaxLag < 1 {
			out.MaxLag = 1
		}
	}
	if out.MaxPairs <= 0 {
		out.MaxPairs = 400_000
	}
	return out
}

// ComputeReaderCtx estimates the empirical semi-variogram of an
// out-of-core field, dispatching exactly as ComputeFieldCtx does:
// opts.FFT selects the sharded spectral engine, small fields (or
// opts.Exact) the exhaustive scan, everything else the pair sampler.
// The sampled lane is bit-identical to the in-RAM scan; the spectral
// lane has exactly equal pair counts and tolerance-equivalent Gamma;
// the exact lane materializes the volume (its pairs span arbitrary
// lags), with the bytes on the transform-pool gauge.
func ComputeReaderCtx(ctx context.Context, tr *field.TileReader, opts Options, so field.StreamOptions) (*Empirical, error) {
	if tr.NDim() < 1 || tr.Len() < 2 {
		return nil, fmt.Errorf("variogram: field too small (shape %v)", tr.Shape())
	}
	o := opts.withReaderDefaults(tr)
	if o.FFT {
		return fftScanReader(ctx, tr, o, so)
	}
	if o.Exact || tr.Len() <= exactThresholdFor(tr.NDim()) {
		return exactScanReader(ctx, tr, o)
	}
	return sampledScanReader(ctx, tr, o)
}

// GlobalRangeReaderCtx fits a model to the out-of-core empirical
// variogram and returns it, mirroring GlobalRangeFieldCtx.
func GlobalRangeReaderCtx(ctx context.Context, tr *field.TileReader, opts Options, so field.StreamOptions) (Model, error) {
	e, err := ComputeReaderCtx(ctx, tr, opts, so)
	if err != nil {
		return Model{}, err
	}
	return Fit(e)
}

// exactScanReader runs the exhaustive scan over a materialized copy of
// the reader: exact pairs span every lag, so there is no streaming
// decomposition that preserves the accumulation chains. The copy lives
// in a pooled transform buffer, so the peak-bytes gauge reports it.
func exactScanReader(ctx context.Context, tr *field.TileReader, o Options) (*Empirical, error) {
	shape := tr.Shape()
	buf := fft.AcquireRealTight(tr.Len())
	defer fft.ReleaseReal(buf)
	blk := &field.Field{Data: buf}
	lo := make([]int, len(shape))
	if err := tr.ReadBlock(blk, lo, shape); err != nil {
		return nil, err
	}
	return exactScanData(ctx, blk.Data, shape, o)
}

// sampledScanReader aims the seeded pair sampler at the reader's
// point-access lane. Draw sequence, rejection tests, and accumulation
// arithmetic are shared with the in-RAM sampler (sampledScanAt), so
// the result is bit-identical for either stored lane; the accessor
// captures the first read error for the serial scan to surface.
func sampledScanReader(ctx context.Context, tr *field.TileReader, o Options) (*Empirical, error) {
	var readErr error
	at := func(i int) float64 {
		v, err := tr.At(i)
		if err != nil && readErr == nil {
			readErr = err
		}
		return v
	}
	e, err := sampledScanAt(ctx, at, tr.Shape(), o)
	if err != nil {
		return nil, err
	}
	if readErr != nil {
		return nil, readErr
	}
	return e, nil
}

// LocalRangesReaderCtx is the out-of-core LocalRangesFieldCtx: the same
// per-window exact solves, streamed one budget-sized tile at a time and
// folded in global window order — bit-identical to the in-RAM sweep at
// any worker count, tile budget, and halo. The streaming decomposition
// is the stat engine's Reader lane over the same LocalRangeKernel.
func LocalRangesReaderCtx(ctx context.Context, tr *field.TileReader, h int, opts Options, so field.StreamOptions) ([]float64, error) {
	return stat.Windows(ctx, stat.Source{Reader: tr, Stream: so}, LocalRangeKernel{}, h, opts.Workers, nil, opts)
}

// LocalRangeStdReaderCtx is the out-of-core LocalRangeStdFieldCtx.
func LocalRangeStdReaderCtx(ctx context.Context, tr *field.TileReader, h int, opts Options, so field.StreamOptions) (float64, error) {
	ranges, err := LocalRangesReaderCtx(ctx, tr, h, opts, so)
	if err != nil {
		return 0, err
	}
	return foldStd(LocalRangeKernel{}, ranges, h, tr.Shape(), opts)
}
