package variogram

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"

	"lossycorr/internal/field"
	"lossycorr/internal/xrand"
)

func randomField(shape []int, seed uint64) *field.Field {
	rng := xrand.New(seed)
	f := field.New(shape...)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return f
}

// TestFFTMatchesExactScan is the fast path's pinned equivalence: across
// ranks, odd (non-power-of-two) extents, lag cutoffs, and worker
// counts, the FFT engine must reproduce the direct scan's pair counts
// exactly and its Gamma values to 1e-9 relative.
func TestFFTMatchesExactScan(t *testing.T) {
	cases := []struct {
		shape  []int
		maxLag int
	}{
		{[]int{37, 53}, 0},
		{[]int{64, 64}, 0},
		{[]int{96, 40}, 13},
		{[]int{17, 19, 23}, 0},
		{[]int{24, 24, 24}, 7},
	}
	for ci, tc := range cases {
		f := randomField(tc.shape, uint64(100+ci))
		ex, err := ComputeField(f, Options{Exact: true, MaxLag: tc.maxLag})
		if err != nil {
			t.Fatal(err)
		}
		var ref *Empirical
		for _, workers := range []int{1, 3, 8} {
			ff, err := ComputeField(f, Options{FFT: true, MaxLag: tc.maxLag, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(ff.H) != len(ex.H) {
				t.Fatalf("shape %v workers %d: %d bins vs exact %d", tc.shape, workers, len(ff.H), len(ex.H))
			}
			for i := range ex.H {
				if ff.N[i] != ex.N[i] {
					t.Fatalf("shape %v workers %d bin h=%v: count %d vs exact %d",
						tc.shape, workers, ex.H[i], ff.N[i], ex.N[i])
				}
				rel := math.Abs(ff.Gamma[i]-ex.Gamma[i]) / math.Abs(ex.Gamma[i])
				if rel > 1e-9 {
					t.Fatalf("shape %v workers %d bin h=%v: gamma %v vs exact %v (rel %g)",
						tc.shape, workers, ex.H[i], ff.Gamma[i], ex.Gamma[i], rel)
				}
			}
			// The FFT path itself is bit-identical at any worker count.
			if ref == nil {
				ref = ff
			} else {
				for i := range ref.Gamma {
					if ff.Gamma[i] != ref.Gamma[i] {
						t.Fatalf("shape %v workers %d: nondeterministic gamma at bin %d", tc.shape, workers, i)
					}
				}
			}
		}
	}
}

// TestFFTLagBeyondExtent covers offsets larger than an extent: the
// direct scan skips them (no valid base points) and the FFT mask
// autocorrelation must count zero pairs for them, leaving the binned
// results identical.
func TestFFTLagBeyondExtent(t *testing.T) {
	f := randomField([]int{8, 64}, 9)
	ex, err := ComputeField(f, Options{Exact: true, MaxLag: 16})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := ComputeField(f, Options{FFT: true, MaxLag: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(ff.H) != len(ex.H) {
		t.Fatalf("%d bins vs exact %d", len(ff.H), len(ex.H))
	}
	for i := range ex.H {
		if ff.N[i] != ex.N[i] {
			t.Fatalf("bin h=%v: count %d vs exact %d", ex.H[i], ff.N[i], ex.N[i])
		}
	}
}

// TestFFTGlobalRangeField checks the option threads through the fitted
// model entry point and lands near the direct estimate.
func TestFFTGlobalRangeField(t *testing.T) {
	f := randomField([]int{48, 48}, 3)
	mEx, err := GlobalRangeField(f, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	mFF, err := GlobalRangeField(f, Options{FFT: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(mFF.Range-mEx.Range) / mEx.Range; rel > 1e-6 {
		t.Fatalf("fitted range %v vs exact %v (rel %g)", mFF.Range, mEx.Range, rel)
	}
}

// TestFFTConstantField covers the roundoff clamp: a constant field has
// zero semi-variance in every bin, which the cancellation in
// c_wm(h)+c_wm(−h)−2·c_zz(h) must not turn negative.
func TestFFTConstantField(t *testing.T) {
	f := field.New(20, 20)
	for i := range f.Data {
		f.Data[i] = 4.5
	}
	ff, err := ComputeField(f, Options{FFT: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range ff.Gamma {
		if g < 0 || g > 1e-12 {
			t.Fatalf("bin h=%v: gamma %v, want 0", ff.H[i], g)
		}
	}
}

// TestScanOffsetAllocs pins the zero-allocation contract of the direct
// scan's inner loop: with the per-bin scratch hoisted out, a scanOffset
// visit allocates nothing.
func TestScanOffsetAllocs(t *testing.T) {
	f := randomField([]int{32, 32}, 5)
	dims := f.Shape
	strides := f.Strides()
	sc := newScanScratch(2)
	off := []int32{3, -2}
	var sum float64
	var cnt int64
	allocs := testing.AllocsPerRun(200, func() {
		scanOffset(f.Data, dims, strides, off, sc, &sum, &cnt)
	})
	if allocs != 0 {
		t.Fatalf("scanOffset allocates %v per visit, want 0", allocs)
	}
}

// ---- benchmarks -------------------------------------------------------------

// benchScanSizes are the 2D edges the Exact/FFT benchmark pair sweeps.
// The paper-scale 1028² case joins only when LOSSYCORR_N >= 1028 — a
// single exact scan at that size takes minutes, which has no place in a
// CI smoke run.
func benchScanSizes() []int {
	sizes := []int{128, 512}
	if s := os.Getenv("LOSSYCORR_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1028 {
			sizes = append(sizes, 1028)
		}
	}
	return sizes
}

// BenchmarkVariogramExact measures the direct O(N·L²) global scan.
func BenchmarkVariogramExact(b *testing.B) {
	for _, n := range benchScanSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := randomField([]int{n, n}, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeField(f, Options{Exact: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVariogramFFT measures the FFT exact engine on the same
// fields; the ns/op ratio against BenchmarkVariogramExact is the
// speedup the perf harness tracks.
func BenchmarkVariogramFFT(b *testing.B) {
	for _, n := range benchScanSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := randomField([]int{n, n}, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeField(f, Options{FFT: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVariogramExact3D / BenchmarkVariogramFFT3D are the rank-3
// pair on a 64³ volume.
func BenchmarkVariogramExact3D(b *testing.B) {
	f := randomField([]int{64, 64, 64}, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeField(f, Options{Exact: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVariogramFFT3D(b *testing.B) {
	f := randomField([]int{64, 64, 64}, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeField(f, Options{FFT: true}); err != nil {
			b.Fatal(err)
		}
	}
}
