package variogram

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"

	"lossycorr/internal/field"
	"lossycorr/internal/fft"
	"lossycorr/internal/xrand"
)

func randomField(shape []int, seed uint64) *field.Field {
	rng := xrand.New(seed)
	f := field.New(shape...)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return f
}

// TestFFTMatchesExactScan is the fast path's pinned equivalence: across
// ranks, odd (non-power-of-two) extents, lag cutoffs, and worker
// counts, the FFT engine must reproduce the direct scan's pair counts
// exactly and its Gamma values to 1e-9 relative.
func TestFFTMatchesExactScan(t *testing.T) {
	cases := []struct {
		shape  []int
		maxLag int
	}{
		{[]int{37, 53}, 0},
		{[]int{64, 64}, 0},
		{[]int{96, 40}, 13},
		{[]int{17, 19, 23}, 0},
		{[]int{24, 24, 24}, 7},
	}
	for ci, tc := range cases {
		f := randomField(tc.shape, uint64(100+ci))
		ex, err := ComputeField(f, Options{Exact: true, MaxLag: tc.maxLag})
		if err != nil {
			t.Fatal(err)
		}
		var ref *Empirical
		for _, workers := range []int{1, 3, 8} {
			ff, err := ComputeField(f, Options{FFT: true, MaxLag: tc.maxLag, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(ff.H) != len(ex.H) {
				t.Fatalf("shape %v workers %d: %d bins vs exact %d", tc.shape, workers, len(ff.H), len(ex.H))
			}
			for i := range ex.H {
				if ff.N[i] != ex.N[i] {
					t.Fatalf("shape %v workers %d bin h=%v: count %d vs exact %d",
						tc.shape, workers, ex.H[i], ff.N[i], ex.N[i])
				}
				rel := math.Abs(ff.Gamma[i]-ex.Gamma[i]) / math.Abs(ex.Gamma[i])
				if rel > 1e-9 {
					t.Fatalf("shape %v workers %d bin h=%v: gamma %v vs exact %v (rel %g)",
						tc.shape, workers, ex.H[i], ff.Gamma[i], ex.Gamma[i], rel)
				}
			}
			// The FFT path itself is bit-identical at any worker count.
			if ref == nil {
				ref = ff
			} else {
				for i := range ref.Gamma {
					if ff.Gamma[i] != ref.Gamma[i] {
						t.Fatalf("shape %v workers %d: nondeterministic gamma at bin %d", tc.shape, workers, i)
					}
				}
			}
		}
	}
}

// TestFFTLagBeyondExtent covers offsets larger than an extent: the
// direct scan skips them (no valid base points) and the FFT mask
// autocorrelation must count zero pairs for them, leaving the binned
// results identical.
func TestFFTLagBeyondExtent(t *testing.T) {
	f := randomField([]int{8, 64}, 9)
	ex, err := ComputeField(f, Options{Exact: true, MaxLag: 16})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := ComputeField(f, Options{FFT: true, MaxLag: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(ff.H) != len(ex.H) {
		t.Fatalf("%d bins vs exact %d", len(ff.H), len(ex.H))
	}
	for i := range ex.H {
		if ff.N[i] != ex.N[i] {
			t.Fatalf("bin h=%v: count %d vs exact %d", ex.H[i], ff.N[i], ex.N[i])
		}
	}
}

// TestFFTGlobalRangeField checks the option threads through the fitted
// model entry point and lands near the direct estimate.
func TestFFTGlobalRangeField(t *testing.T) {
	f := randomField([]int{48, 48}, 3)
	mEx, err := GlobalRangeField(f, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	mFF, err := GlobalRangeField(f, Options{FFT: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(mFF.Range-mEx.Range) / mEx.Range; rel > 1e-6 {
		t.Fatalf("fitted range %v vs exact %v (rel %g)", mFF.Range, mEx.Range, rel)
	}
}

// TestFFTConstantField covers the roundoff clamp: a constant field has
// zero semi-variance in every bin, which the cancellation in
// c_wm(h)+c_wm(−h)−2·c_zz(h) must not turn negative.
func TestFFTConstantField(t *testing.T) {
	f := field.New(20, 20)
	for i := range f.Data {
		f.Data[i] = 4.5
	}
	ff, err := ComputeField(f, Options{FFT: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range ff.Gamma {
		if g < 0 || g > 1e-12 {
			t.Fatalf("bin h=%v: gamma %v, want 0", ff.H[i], g)
		}
	}
}

// equivalenceCases are the shapes/cutoffs shared by the engine
// equivalence tests below.
var equivalenceCases = []struct {
	shape  []int
	maxLag int
}{
	{[]int{37, 53}, 0},
	{[]int{64, 64}, 0},
	{[]int{96, 40}, 13},
	{[]int{17, 19, 23}, 0},
	{[]int{24, 24, 24}, 7},
}

func checkAgainstExact(t *testing.T, label string, f *field.Field, ex, ff *Empirical) {
	t.Helper()
	if len(ff.H) != len(ex.H) {
		t.Fatalf("%s shape %v: %d bins vs exact %d", label, f.Shape, len(ff.H), len(ex.H))
	}
	for i := range ex.H {
		if ff.N[i] != ex.N[i] {
			t.Fatalf("%s shape %v bin h=%v: count %d vs exact %d",
				label, f.Shape, ex.H[i], ff.N[i], ex.N[i])
		}
		rel := math.Abs(ff.Gamma[i]-ex.Gamma[i]) / math.Abs(ex.Gamma[i])
		if rel > 1e-9 {
			t.Fatalf("%s shape %v bin h=%v: gamma %v vs exact %v (rel %g)",
				label, f.Shape, ex.H[i], ff.Gamma[i], ex.Gamma[i], rel)
		}
	}
}

// TestFFTBluesteinPadding drives the full engine through exact
// (non-smooth, often odd) padded extents: with padLenFn forced to
// identity, pad = dim + MaxLag exactly, which for these shapes puts
// Bluestein (and odd-length real-transform) plans on every axis. The
// equivalence contract is unchanged: pair counts exact, Gamma <= 1e-9.
func TestFFTBluesteinPadding(t *testing.T) {
	orig := padLenFn
	padLenFn = func(n int) int { return n }
	defer func() { padLenFn = orig }()

	for ci, tc := range equivalenceCases {
		f := randomField(tc.shape, uint64(500+ci))
		ex, err := ComputeField(f, Options{Exact: true, MaxLag: tc.maxLag})
		if err != nil {
			t.Fatal(err)
		}
		var ref *Empirical
		for _, workers := range []int{1, 4} {
			ff, err := ComputeField(f, Options{FFT: true, MaxLag: tc.maxLag, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstExact(t, "bluestein", f, ex, ff)
			if ref == nil {
				ref = ff
			} else {
				for i := range ref.Gamma {
					if ff.Gamma[i] != ref.Gamma[i] {
						t.Fatalf("shape %v workers %d: nondeterministic gamma at bin %d", tc.shape, workers, i)
					}
				}
			}
		}
	}
}

// TestFFTComplexRefMatches keeps the retained PR 3 all-complex engine
// honest as a second oracle: it must still agree with the direct scan,
// so the before/after memory and speed comparisons compare like with
// like.
func TestFFTComplexRefMatches(t *testing.T) {
	for ci, tc := range equivalenceCases {
		f := randomField(tc.shape, uint64(700+ci))
		ex, err := ComputeField(f, Options{Exact: true, MaxLag: tc.maxLag})
		if err != nil {
			t.Fatal(err)
		}
		o := (&Options{MaxLag: tc.maxLag}).withFieldDefaults(f)
		ff, err := fftScanFieldComplexRef(f, o)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstExact(t, "complexref", f, ex, ff)
	}
}

// poisonPools floods every pool bucket the engine will draw from with
// NaN-poisoned buffers, so any code path that assumes zeroed scratch
// turns into a hard test failure (NaN propagates into Gamma or the
// pair counts).
func poisonPools(maxElems int) {
	const perBucket = 6
	for n := 1; n <= maxElems; n *= 2 {
		cbufs := make([][]complex128, perBucket)
		rbufs := make([][]float64, perBucket)
		for i := 0; i < perBucket; i++ {
			c := fft.AcquireComplex(n)
			for j := range c {
				c[j] = complex(math.NaN(), math.NaN())
			}
			cbufs[i] = c
			r := fft.AcquireReal(n)
			for j := range r {
				r[j] = math.NaN()
			}
			rbufs[i] = r
		}
		for i := 0; i < perBucket; i++ {
			fft.ReleaseComplex(cbufs[i])
			fft.ReleaseReal(rbufs[i])
		}
	}
}

// TestFFTPoisonedPools re-runs the 2D/3D equivalence suite with every
// pool bucket pre-filled with NaN-poisoned buffers: AcquireComplex/
// AcquireReal return unspecified contents, and the engine must
// overwrite every element it reads (padding fill, mask embed, spectrum
// stages) rather than assume zeroed scratch.
func TestFFTPoisonedPools(t *testing.T) {
	for ci, tc := range equivalenceCases {
		f := randomField(tc.shape, uint64(900+ci))
		ex, err := ComputeField(f, Options{Exact: true, MaxLag: tc.maxLag})
		if err != nil {
			t.Fatal(err)
		}
		poisonPools(1 << 18)
		ff, err := ComputeField(f, Options{FFT: true, MaxLag: tc.maxLag})
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstExact(t, "poisoned", f, ex, ff)

		// The Bluestein/odd-length paths have their own scratch
		// handling; poison them too.
		orig := padLenFn
		padLenFn = func(n int) int { return n }
		poisonPools(1 << 18)
		fb, err := ComputeField(f, Options{FFT: true, MaxLag: tc.maxLag})
		padLenFn = orig
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstExact(t, "poisoned-bluestein", f, ex, fb)
	}
}

// TestFFTMemorySmoke pins the tentpole's memory claim: the real-input
// engine's peak transform-buffer bytes on a 512² field (default
// cutoff 256) must be at most 55% of the PR 3 complex-path engine's
// working set — three complex NextPow2(512+256)² buffers, ~50 MiB.
// (Measured: ~19 MiB ≈ 38%.)
func TestFFTMemorySmoke(t *testing.T) {
	f := randomField([]int{512, 512}, 77)
	fft.ResetPeakBytes()
	base := fft.LiveBytes()
	if _, err := ComputeField(f, Options{FFT: true}); err != nil {
		t.Fatal(err)
	}
	peak := fft.PeakBytes() - base
	ref := complexRefPeakBytes(f.Shape, 256)
	t.Logf("peak %d bytes (%.1f MiB), complex-path ref %d bytes (%.1f MiB), ratio %.1f%%",
		peak, float64(peak)/(1<<20), ref, float64(ref)/(1<<20), 100*float64(peak)/float64(ref))
	if peak > ref*55/100 {
		t.Fatalf("peak transform-buffer bytes %d > 55%% of complex-path %d", peak, ref)
	}
}

// TestScanOffsetAllocs pins the zero-allocation contract of the direct
// scan's inner loop: with the per-bin scratch hoisted out, a scanOffset
// visit allocates nothing.
func TestScanOffsetAllocs(t *testing.T) {
	f := randomField([]int{32, 32}, 5)
	dims := f.Shape
	strides := f.Strides()
	sc := newScanScratch(2)
	off := []int32{3, -2}
	var sum float64
	var cnt int64
	allocs := testing.AllocsPerRun(200, func() {
		scanOffset(f.Data, dims, strides, off, sc, &sum, &cnt)
	})
	if allocs != 0 {
		t.Fatalf("scanOffset allocates %v per visit, want 0", allocs)
	}
}

// ---- benchmarks -------------------------------------------------------------

// benchScanSizes are the 2D edges the Exact/FFT benchmark pair sweeps.
// The paper-scale 1028² case joins only when LOSSYCORR_N >= 1028 — a
// single exact scan at that size takes minutes, which has no place in a
// CI smoke run.
func benchScanSizes() []int {
	sizes := []int{128, 512}
	if s := os.Getenv("LOSSYCORR_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1028 {
			sizes = append(sizes, 1028)
		}
	}
	return sizes
}

// BenchmarkVariogramExact measures the direct O(N·L²) global scan.
func BenchmarkVariogramExact(b *testing.B) {
	for _, n := range benchScanSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := randomField([]int{n, n}, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeField(f, Options{Exact: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// reportFFTPeak publishes the transform-buffer peak (MiB) of the last
// run plus the PR 3 complex-path working set for the same shape — the
// before/after pair the perf record tracks.
func reportFFTPeak(b *testing.B, shape []int, maxLag int) {
	b.Helper()
	b.ReportMetric(float64(fft.PeakBytes())/(1<<20), "fftPeakMB")
	b.ReportMetric(float64(complexRefPeakBytes(shape, maxLag))/(1<<20), "fftComplexRefMB")
}

// defaultCutoff mirrors withFieldDefaults: MaxLag 0 means min extent/2.
func defaultCutoff(shape []int) int {
	m := shape[0]
	for _, d := range shape {
		if d < m {
			m = d
		}
	}
	return m / 2
}

// BenchmarkVariogramFFT measures the (real-input, half-spectrum) FFT
// exact engine on the same fields; the ns/op ratio against
// BenchmarkVariogramExact is the speedup, and against
// BenchmarkVariogramFFTComplexRef the cost of the memory halving, that
// the perf harness tracks.
func BenchmarkVariogramFFT(b *testing.B) {
	for _, n := range benchScanSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := randomField([]int{n, n}, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fft.ResetPeakBytes()
				if _, err := ComputeField(f, Options{FFT: true}); err != nil {
					b.Fatal(err)
				}
			}
			reportFFTPeak(b, f.Shape, defaultCutoff(f.Shape))
		})
	}
}

// BenchmarkVariogramFFTComplexRef measures the retained PR 3
// all-complex engine — the "before" row of the memory/speed record.
func BenchmarkVariogramFFTComplexRef(b *testing.B) {
	for _, n := range benchScanSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := randomField([]int{n, n}, 11)
			o := (&Options{}).withFieldDefaults(f)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fft.ResetPeakBytes()
				if _, err := fftScanFieldComplexRef(f, o); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(fft.PeakBytes())/(1<<20), "fftPeakMB")
		})
	}
}

// BenchmarkVariogramExact3D / BenchmarkVariogramFFT3D are the rank-3
// pair on a 64³ volume.
func BenchmarkVariogramExact3D(b *testing.B) {
	f := randomField([]int{64, 64, 64}, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeField(f, Options{Exact: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVariogramFFT3D(b *testing.B) {
	f := randomField([]int{64, 64, 64}, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fft.ResetPeakBytes()
		if _, err := ComputeField(f, Options{FFT: true}); err != nil {
			b.Fatal(err)
		}
	}
	reportFFTPeak(b, f.Shape, defaultCutoff(f.Shape))
}
