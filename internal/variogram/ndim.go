package variogram

// Rank-generic variogram engine. The exact scan enumerates lag vectors
// in a canonical half-space order (first nonzero component positive, so
// each unordered pair counts once) and groups them by distance bin. For
// rank 2 and rank 3 the enumeration visits exactly the offsets, in
// exactly the order, of the historical nested-loop scans, and each
// bin's accumulation is one left-to-right chain over its offsets'
// pairs — so the generic scan is bit-identical to the legacy 2D and 3D
// implementations.
//
// Bins are independent accumulators, which makes them the parallel
// axis: workers own whole bins, so the per-bin chains (and therefore
// the result) are unchanged at any worker count. This is also what
// finally parallelizes the global exact scan, previously the one
// serial stage of the analysis.

import (
	"context"
	"fmt"
	"math"
	"sync"

	"lossycorr/internal/field"
	"lossycorr/internal/parallel"
	"lossycorr/internal/stat"
	"lossycorr/internal/xrand"
)

// withFieldDefaults is the rank-generic form of the Options defaults:
// the lag cutoff falls back to half the smallest extent.
func (o *Options) withFieldDefaults(f *field.Field) Options {
	out := *o
	if out.MaxLag <= 0 {
		out.MaxLag = f.MinDim() / 2
		if out.MaxLag < 1 {
			out.MaxLag = 1
		}
	}
	if out.MaxPairs <= 0 {
		out.MaxPairs = 400_000
	}
	return out
}

// exactThresholdFor is the element count below which the exhaustive
// scan is used by default, preserving the historical per-rank cutoffs.
func exactThresholdFor(ndim int) int {
	if ndim == 3 {
		return 24 * 24 * 24
	}
	return 64 * 64
}

// sampleSalt decorrelates the pair sampler from other seed consumers,
// preserving the historical per-rank constants.
func sampleSalt(ndim int) uint64 {
	switch ndim {
	case 3:
		return 0x3d3d3d3d3d3d3d3d
	default:
		return 0x5eed5eed5eed5eed
	}
}

// ComputeField estimates the empirical semi-variogram of a field of
// any rank: the exhaustive offset scan for small fields (or when
// opts.Exact is set), pair sampling otherwise. The exact scan fans
// distance bins out over opts.Workers; results are bit-identical at
// any worker count.
func ComputeField(f *field.Field, opts Options) (*Empirical, error) {
	return ComputeFieldCtx(context.Background(), f, opts)
}

// ComputeFieldCtx is ComputeField with cooperative cancellation: every
// estimator checks ctx between units of work (per offset for the exact
// scan, per transform stage and per bin for the FFT engine, every few
// thousand draws for the sampler) and returns ctx.Err() promptly once
// the context dies, handing any borrowed worker-pool tokens back.
func ComputeFieldCtx(ctx context.Context, f *field.Field, opts Options) (*Empirical, error) {
	if f.NDim() < 1 || f.Len() < 2 {
		return nil, fmt.Errorf("variogram: field too small (shape %v)", f.Shape)
	}
	o := opts.withFieldDefaults(f)
	if o.FFT {
		return fftScanField(ctx, f, o)
	}
	if o.Exact || f.Len() <= exactThresholdFor(f.NDim()) {
		return exactScanField(ctx, f, o)
	}
	return sampledScanField(ctx, f, o)
}

// offsetsByBin enumerates every lag vector with 0 < |v| <= maxLag and
// first nonzero component positive, in lexicographic order, grouped by
// its rounded-distance bin. Each bin's slice stores the offsets
// flattened (ndim components per offset) in enumeration order.
func offsetsByBin(ndim, maxLag int) [][]int32 {
	bins := make([][]int32, maxLag+1)
	maxSq := float64(maxLag * maxLag)
	off := make([]int32, ndim)
	var rec func(k int, allZero bool)
	rec = func(k int, allZero bool) {
		if k == ndim {
			var d2 float64
			for _, v := range off {
				d2 += float64(v) * float64(v)
			}
			if d2 == 0 || d2 > maxSq {
				return
			}
			bin := int(math.Round(math.Sqrt(d2)))
			if bin > maxLag {
				return
			}
			bins[bin] = append(bins[bin], off...)
			return
		}
		lo := int32(-maxLag)
		if allZero {
			lo = 0
		}
		for v := lo; v <= int32(maxLag); v++ {
			off[k] = v
			rec(k+1, allZero && v == 0)
		}
	}
	rec(0, true)
	return bins
}

// offsetCache memoizes offsetsByBin for the small cutoffs of windowed
// scans, which re-enumerate an identical offset set for every window —
// previously the dominant allocation of LocalRanges. Entries are
// immutable once stored. Large cutoffs (one-shot global scans) stay
// uncached: cacheableOffsets bounds each entry by its actual size —
// half of (2L+1)^d offsets at d int32 components — so the never-evicted
// map stays under ~1 MB per key at any rank.
var offsetCache sync.Map // [2]int{ndim, maxLag} -> [][]int32

// cacheableOffsets reports whether the (ndim, maxLag) enumeration is
// small enough to memoize (≤ 1 MiB of offset storage).
func cacheableOffsets(ndim, maxLag int) bool {
	const maxBytes = 1 << 20
	side := 2*maxLag + 1
	bytes := float64(ndim) * 4 / 2 // per enumerated lattice point
	for i := 0; i < ndim; i++ {
		bytes *= float64(side)
		if bytes > maxBytes {
			return false
		}
	}
	return true
}

func offsetsByBinCached(ndim, maxLag int) [][]int32 {
	if !cacheableOffsets(ndim, maxLag) {
		return offsetsByBin(ndim, maxLag)
	}
	key := [2]int{ndim, maxLag}
	if v, ok := offsetCache.Load(key); ok {
		return v.([][]int32)
	}
	bins := offsetsByBin(ndim, maxLag)
	if v, loaded := offsetCache.LoadOrStore(key, bins); loaded {
		return v.([][]int32)
	}
	return bins
}

// scanScratch is the odometer state of scanOffset, allocated once per
// distance bin by exactScanField and reused across that bin's offsets,
// so the exact scan's inner loop allocates nothing per offset (pinned
// by TestScanOffsetAllocs).
type scanScratch struct {
	lo, hi, cur []int
}

func newScanScratch(nd int) *scanScratch {
	buf := make([]int, 3*nd)
	return &scanScratch{lo: buf[:nd], hi: buf[nd : 2*nd], cur: buf[2*nd : 3*nd]}
}

// scanOffset folds (z(x) − z(x+off))² over every base point x for
// which both ends are in bounds, continuing the running accumulation
// chain passed in. Base points are visited in row-major order, which
// together with the canonical offset order reproduces the legacy
// accumulation chains exactly. The accumulation is float64 for either
// element lane — the float64 instantiation is bit-identical to the
// historical concrete scan, and the float32 lane widens each sample
// (exactly) before differencing.
func scanOffset[T field.Elem](data []T, dims, strides []int, off []int32, sc *scanScratch, sum *float64, cnt *int64) {
	nd := len(dims)
	delta := 0
	lo := sc.lo[:nd]
	hi := sc.hi[:nd]
	for k := 0; k < nd; k++ {
		delta += int(off[k]) * strides[k]
		if off[k] >= 0 {
			lo[k], hi[k] = 0, dims[k]-int(off[k])
		} else {
			lo[k], hi[k] = -int(off[k]), dims[k]
		}
		if hi[k] <= lo[k] {
			return
		}
	}
	innerLo, innerHi := lo[nd-1], hi[nd-1]
	innerLen := int64(innerHi - innerLo)
	s, c := *sum, *cnt
	cur := sc.cur[:nd-1]
	copy(cur, lo[:nd-1])
	for {
		base := innerLo
		for k := 0; k < nd-1; k++ {
			base += cur[k] * strides[k]
		}
		for i := base; i < base+innerHi-innerLo; i++ {
			d := float64(data[i]) - float64(data[i+delta])
			s += d * d
		}
		c += innerLen
		k := nd - 2
		for ; k >= 0; k-- {
			cur[k]++
			if cur[k] < hi[k] {
				break
			}
			cur[k] = lo[k]
		}
		if k < 0 {
			break
		}
	}
	*sum, *cnt = s, c
}

// exactScanField accumulates every pair with offset magnitude <=
// MaxLag. Distance bins are independent, so they are the parallel
// axis: each worker owns whole bins and folds that bin's offsets (in
// canonical order) into one accumulation chain, making the result
// independent of the worker count — and bitwise equal to the legacy
// serial 2D/3D scans.
func exactScanField(ctx context.Context, f *field.Field, o Options) (*Empirical, error) {
	return exactScanData(ctx, f.Data, f.Shape, o)
}

// exactScanData is the element-generic core of the exact scan, shared
// by both compute lanes.
func exactScanData[T field.Elem](ctx context.Context, data []T, shape []int, o Options) (*Empirical, error) {
	nb := o.MaxLag
	nd := len(shape)
	bins := offsetsByBinCached(nd, nb)
	sum := make([]float64, nb+1)
	cnt := make([]int64, nb+1)
	dims := shape
	strides := make([]int, nd)
	acc := 1
	for k := nd - 1; k >= 0; k-- {
		strides[k] = acc
		acc *= shape[k]
	}
	// Cancellation is observed per offset: one scanOffset sweeps the
	// whole array once, so a dead context stops the scan within a single
	// array pass even when a bin holds thousands of offsets.
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if err := parallel.ForCtx(ctx, nb+1, o.Workers, func(b int) {
		offs := bins[b]
		if len(offs) == 0 {
			return
		}
		sc := newScanScratch(nd)
		var s float64
		var c int64
		for p := 0; p < len(offs); p += nd {
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			scanOffset(data, dims, strides, offs[p:p+nd], sc, &s, &c)
		}
		sum[b], cnt[b] = s, c
	}); err != nil {
		return nil, err
	}
	return collect(sum, cnt), nil
}

// sampledScanField draws random pairs: a random anchor point and a
// random offset within the cutoff ball. Component draw order (anchor
// components, then offset components, slowest dimension first) matches
// the legacy 2D and 3D samplers, so seeded results are unchanged.
func sampledScanField(ctx context.Context, f *field.Field, o Options) (*Empirical, error) {
	return sampledScanData(ctx, f.Data, f.Shape, o)
}

// sampledScanData is the element-generic core of the pair sampler,
// shared by both compute lanes; draw order and seeding are lane-
// independent, so the float32 lane samples exactly the pairs the
// oracle lane would.
func sampledScanData[T field.Elem](ctx context.Context, data []T, shape []int, o Options) (*Empirical, error) {
	return sampledScanAt(ctx, func(i int) float64 { return float64(data[i]) }, shape, o)
}

// sampledScanAt is the accessor form of the pair sampler: elements are
// fetched through at, which lets the out-of-core path aim the identical
// draw sequence at a TileReader. Widening happens inside the accessor
// (exactly, for the float32 lane), so the accumulation arithmetic —
// and therefore the seeded result — is byte-for-byte the in-RAM scan's.
func sampledScanAt(ctx context.Context, at func(int) float64, shape []int, o Options) (*Empirical, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	nd := len(shape)
	rng := xrand.New(o.Seed ^ sampleSalt(nd))
	nb := o.MaxLag
	sum := make([]float64, nb+1)
	cnt := make([]int64, nb+1)
	maxSq := o.MaxLag * o.MaxLag
	dims := shape
	strides := make([]int, nd)
	acc := 1
	for k := nd - 1; k >= 0; k-- {
		strides[k] = acc
		acc *= shape[k]
	}
	pos := make([]int, nd)
	off := make([]int, nd)
	for p := 0; p < o.MaxPairs; p++ {
		if done != nil && p&0xfff == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		for k := 0; k < nd; k++ {
			pos[k] = rng.Intn(dims[k])
		}
		for k := 0; k < nd; k++ {
			off[k] = rng.Intn(2*o.MaxLag+1) - o.MaxLag
		}
		d2 := 0
		for k := 0; k < nd; k++ {
			d2 += off[k] * off[k]
		}
		if d2 == 0 || d2 > maxSq {
			continue
		}
		ok := true
		for k := 0; k < nd; k++ {
			if q := pos[k] + off[k]; q < 0 || q >= dims[k] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		bin := int(math.Round(math.Sqrt(float64(d2))))
		if bin > nb {
			continue
		}
		i, j := 0, 0
		for k := 0; k < nd; k++ {
			i += pos[k] * strides[k]
			j += (pos[k] + off[k]) * strides[k]
		}
		d := at(i) - at(j)
		sum[bin] += d * d
		cnt[bin]++
	}
	return collect(sum, cnt), nil
}

// GlobalRangeField estimates the variogram range of an entire field of
// any rank.
func GlobalRangeField(f *field.Field, opts Options) (Model, error) {
	return GlobalRangeFieldCtx(context.Background(), f, opts)
}

// GlobalRangeFieldCtx is GlobalRangeField with cooperative
// cancellation of the underlying scan.
func GlobalRangeFieldCtx(ctx context.Context, f *field.Field, opts Options) (Model, error) {
	e, err := ComputeFieldCtx(ctx, f, opts)
	if err != nil {
		return Model{}, err
	}
	return Fit(e)
}

// windowRangeField estimates the variogram range of one window,
// mirroring the per-tile branch of the historical 2D implementation:
// clipped (any extent < 4) or constant windows are skipped (ok ==
// false without error). Per-window scans run serially — the tiles
// themselves are the parallel axis.
func windowRangeField(w *field.Field, opts Options) (rang float64, ok bool, err error) {
	if w.MinDim() < 4 {
		return 0, false, nil
	}
	if w.Summary().Variance == 0 {
		return 0, false, nil
	}
	o := opts
	o.Exact = true
	o.FFT = false // windows are small; the direct scan wins and is bit-stable
	o.Workers = 1
	if o.MaxLag <= 0 || o.MaxLag > w.Shape[0]/2 {
		o.MaxLag = w.MinDim() / 2
	}
	e, err := ComputeField(w, o)
	if err != nil {
		return 0, false, err
	}
	m, err := Fit(e)
	if err != nil {
		return 0, false, err
	}
	return m.Range, true, nil
}

// LocalRangesField tiles a field of any rank with h-edged hypercube
// windows and estimates a variogram range per window (exact scan;
// windows are small). Windows with any extent below 4 after clipping,
// or constant windows, are skipped. The sweep — extraction, fan-out,
// fold order — is the stat engine's, with LocalRangeKernel supplying
// the per-window solve; results are independent of scheduling.
func LocalRangesField(f *field.Field, h int, opts Options) ([]float64, error) {
	return LocalRangesFieldCtx(context.Background(), f, h, opts)
}

// LocalRangesFieldCtx is LocalRangesField with cooperative
// cancellation: the tile fan-out checks ctx before each window, so a
// dead context abandons the sweep within one window's scan.
func LocalRangesFieldCtx(ctx context.Context, f *field.Field, h int, opts Options) ([]float64, error) {
	return stat.Windows(ctx, stat.Source{F64: f}, LocalRangeKernel{}, h, opts.Workers, nil, opts)
}

// LocalRangeStdField is the std of per-window variogram ranges for a
// field of any rank — the paper's heterogeneity statistic, extended to
// H×H×H windows for volumes.
func LocalRangeStdField(f *field.Field, h int, opts Options) (float64, error) {
	return LocalRangeStdFieldCtx(context.Background(), f, h, opts)
}

// LocalRangeStdFieldCtx is LocalRangeStdField with cooperative
// cancellation of the window sweep.
func LocalRangeStdFieldCtx(ctx context.Context, f *field.Field, h int, opts Options) (float64, error) {
	ranges, err := LocalRangesFieldCtx(ctx, f, h, opts)
	if err != nil {
		return 0, err
	}
	return foldStd(LocalRangeKernel{}, ranges, h, f.Shape, opts)
}

// foldStd runs a window kernel's fold for the thin Std delegates,
// unwrapping the single output.
func foldStd(k stat.WindowKernel, vals []float64, h int, shape []int, opt any) (float64, error) {
	out, err := k.Fold(vals, stat.FoldInfo{Window: h, Shape: shape}, opt)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}
