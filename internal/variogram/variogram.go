// Package variogram estimates empirical semi-variograms of 2D fields
// and fits the squared-exponential parametric model the paper uses to
// extract the correlation range — globally (whole field) and locally
// (tiled windows, whose range standard deviation is the heterogeneity
// statistic of Section V-B).
//
// The empirical semi-variogram of a field z over grid points x_i is
//
//	γ(h) = 1/(2N(h)) · Σ_{|x_i−x_j|≈h} (z(x_i) − z(x_j))²
//
// computed here with Euclidean inter-point distances binned to unit
// lags. Two estimators are provided: an exact offset scan (every pair
// within the cutoff; cost O(cutoff²·n)) for small fields/windows, and a
// pair-sampling Monte Carlo estimator for large fields, the same
// trade-off practical geostatistics packages (gstat) make internally.
package variogram

import (
	"fmt"
	"math"

	"lossycorr/internal/field"
	"lossycorr/internal/grid"
	"lossycorr/internal/linalg"
)

// Empirical holds a binned empirical semi-variogram.
type Empirical struct {
	H     []float64 // bin centers (lag distance)
	Gamma []float64 // semi-variance per bin
	N     []int64   // pair count per bin
}

// Options controls estimation.
type Options struct {
	// MaxLag is the distance cutoff. 0 means min(rows, cols)/2,
	// the usual geostatistical rule of thumb.
	MaxLag int
	// MaxPairs caps the number of sampled pairs for the Monte Carlo
	// estimator. 0 means 400_000.
	MaxPairs int
	// Exact forces the exhaustive offset scan regardless of size.
	Exact bool
	// FFT selects the FFT exact engine for global scans: every lag
	// cross-product and valid-pair count at once from zero-padded
	// autocorrelations (O(P log P) on the padded size P instead of
	// O(N·L^d)), binned identically to the direct scan. Pair counts
	// match the direct scan exactly and Gamma to roundoff (the
	// equivalence test pins 1e-9 relative). Windowed estimators ignore
	// it — their windows are small enough that the direct scan wins.
	FFT bool
	// Seed feeds the pair sampler (ignored for exact scans).
	Seed uint64
	// Workers bounds the goroutines used by the windowed estimators
	// (LocalRanges and friends) and by the global exact scan, which
	// fans distance bins out over the pool. 0 means GOMAXPROCS; 1
	// forces the serial path. Results are bit-identical for every
	// value.
	Workers int
}

func (o *Options) withDefaults(g *grid.Grid) Options {
	return o.withFieldDefaults(field.FromGrid(g))
}

// Compute estimates the empirical semi-variogram of g. It is the
// rank-2 view of ComputeField; see ndim.go for the generic engine.
func Compute(g *grid.Grid, opts Options) (*Empirical, error) {
	return ComputeField(field.FromGrid(g), opts)
}

func collect(sum []float64, cnt []int64) *Empirical {
	e := &Empirical{}
	for bin := 1; bin < len(sum); bin++ {
		if cnt[bin] == 0 {
			continue
		}
		e.H = append(e.H, float64(bin))
		e.Gamma = append(e.Gamma, sum[bin]/(2*float64(cnt[bin])))
		e.N = append(e.N, cnt[bin])
	}
	return e
}

// Model is a fitted squared-exponential variogram
//
//	γ(h) = Sill · (1 − exp(−h²/Range²))
//
// Range is directly comparable to the generating correlation range of
// the synthetic Gaussian fields. RangePaper = Range² is the paper's
// γ(h)=c0(1−exp(−h²/a)) parametrization of the same fit.
type Model struct {
	Sill       float64
	Range      float64
	RangePaper float64
	RSS        float64 // weighted residual sum of squares of the fit
}

// Gamma evaluates the fitted model at lag h.
func (m Model) Gamma(h float64) float64 {
	if m.Range == 0 {
		return m.Sill
	}
	return m.Sill * (1 - math.Exp(-h*h/(m.Range*m.Range)))
}

// Fit estimates the squared-exponential model from an empirical
// variogram by pair-count-weighted least squares: for a candidate range
// the optimal sill has a closed form, and the range itself is located
// by golden-section search.
func Fit(e *Empirical) (Model, error) {
	if len(e.H) < 2 {
		return Model{}, fmt.Errorf("variogram: %d bins are too few to fit", len(e.H))
	}
	hMax := e.H[len(e.H)-1]
	obj := func(r float64) (float64, float64) { // returns (rss, sill)
		var num, den float64
		for i, h := range e.H {
			f := 1 - math.Exp(-h*h/(r*r))
			w := float64(e.N[i])
			num += w * f * e.Gamma[i]
			den += w * f * f
		}
		if den == 0 {
			return math.Inf(1), 0
		}
		sill := num / den
		var rss float64
		for i, h := range e.H {
			f := sill * (1 - math.Exp(-h*h/(r*r)))
			d := f - e.Gamma[i]
			rss += float64(e.N[i]) * d * d
		}
		return rss, sill
	}
	lo, hi := 0.25, 8*hMax
	r := linalg.GoldenMinimize(func(x float64) float64 { rss, _ := obj(x); return rss }, lo, hi, 1e-4*hMax)
	rss, sill := obj(r)
	return Model{Sill: sill, Range: r, RangePaper: r * r, RSS: rss}, nil
}

// GlobalRange estimates the variogram range of the entire field: the
// "Estimated global variogram range" axis of Figures 3 and 4.
func GlobalRange(g *grid.Grid, opts Options) (Model, error) {
	return GlobalRangeField(field.FromGrid(g), opts)
}

// LocalRanges tiles the field with h×h windows and estimates a
// variogram range per window (exact scan; windows are small). Windows
// smaller than 4×4 after clipping, or constant windows, are skipped.
// Tiles are evaluated on the shared worker pool (opts.Workers) — each
// worker extracts its window lazily, so only ~Workers windows are live
// at once — and collected in tile order, so the result is independent
// of scheduling.
func LocalRanges(g *grid.Grid, h int, opts Options) ([]float64, error) {
	return LocalRangesField(field.FromGrid(g), h, opts)
}

// LocalRangeStd is the "Std estimated of local variogram range (H=h)"
// statistic: the standard deviation of per-window ranges.
func LocalRangeStd(g *grid.Grid, h int, opts Options) (float64, error) {
	return LocalRangeStdField(field.FromGrid(g), h, opts)
}
