// Package variogram estimates empirical semi-variograms of 2D fields
// and fits the squared-exponential parametric model the paper uses to
// extract the correlation range — globally (whole field) and locally
// (tiled windows, whose range standard deviation is the heterogeneity
// statistic of Section V-B).
//
// The empirical semi-variogram of a field z over grid points x_i is
//
//	γ(h) = 1/(2N(h)) · Σ_{|x_i−x_j|≈h} (z(x_i) − z(x_j))²
//
// computed here with Euclidean inter-point distances binned to unit
// lags. Two estimators are provided: an exact offset scan (every pair
// within the cutoff; cost O(cutoff²·n)) for small fields/windows, and a
// pair-sampling Monte Carlo estimator for large fields, the same
// trade-off practical geostatistics packages (gstat) make internally.
package variogram

import (
	"fmt"
	"math"

	"lossycorr/internal/grid"
	"lossycorr/internal/linalg"
	"lossycorr/internal/parallel"
	"lossycorr/internal/xrand"
)

// Empirical holds a binned empirical semi-variogram.
type Empirical struct {
	H     []float64 // bin centers (lag distance)
	Gamma []float64 // semi-variance per bin
	N     []int64   // pair count per bin
}

// Options controls estimation.
type Options struct {
	// MaxLag is the distance cutoff. 0 means min(rows, cols)/2,
	// the usual geostatistical rule of thumb.
	MaxLag int
	// MaxPairs caps the number of sampled pairs for the Monte Carlo
	// estimator. 0 means 400_000.
	MaxPairs int
	// Exact forces the exhaustive offset scan regardless of size.
	Exact bool
	// Seed feeds the pair sampler (ignored for exact scans).
	Seed uint64
	// Workers bounds the goroutines used by the windowed estimators
	// (LocalRanges and friends). 0 means GOMAXPROCS; 1 forces the
	// serial path. Results are bit-identical for every value.
	Workers int
}

func (o *Options) withDefaults(g *grid.Grid) Options {
	out := *o
	if out.MaxLag <= 0 {
		m := g.Rows
		if g.Cols < m {
			m = g.Cols
		}
		out.MaxLag = m / 2
		if out.MaxLag < 1 {
			out.MaxLag = 1
		}
	}
	if out.MaxPairs <= 0 {
		out.MaxPairs = 400_000
	}
	return out
}

// exactThreshold is the element count below which the exhaustive scan
// is used by default (cost grows as cutoff²·n).
const exactThreshold = 64 * 64

// Compute estimates the empirical semi-variogram of g.
func Compute(g *grid.Grid, opts Options) (*Empirical, error) {
	if g.Len() < 2 {
		return nil, fmt.Errorf("variogram: field too small (%dx%d)", g.Rows, g.Cols)
	}
	o := opts.withDefaults(g)
	if o.Exact || g.Len() <= exactThreshold {
		return exactScan(g, o), nil
	}
	return sampledScan(g, o), nil
}

// exactScan accumulates every pair with offset magnitude <= MaxLag.
// Offsets are restricted to a half-plane so each unordered pair counts
// once.
func exactScan(g *grid.Grid, o Options) *Empirical {
	nb := o.MaxLag
	sum := make([]float64, nb+1)
	cnt := make([]int64, nb+1)
	maxSq := float64(o.MaxLag * o.MaxLag)
	for dr := 0; dr <= o.MaxLag; dr++ {
		cMin := -o.MaxLag
		if dr == 0 {
			cMin = 1 // half-plane: dr>0, or dr==0 && dc>0
		}
		for dc := cMin; dc <= o.MaxLag; dc++ {
			d2 := float64(dr*dr + dc*dc)
			if d2 == 0 || d2 > maxSq {
				continue
			}
			bin := int(math.Round(math.Sqrt(d2)))
			if bin > nb {
				continue
			}
			r0, r1 := 0, g.Rows-dr
			for r := r0; r < r1; r++ {
				c0, c1 := 0, g.Cols
				if dc > 0 {
					c1 = g.Cols - dc
				} else {
					c0 = -dc
				}
				base := r * g.Cols
				off := (r+dr)*g.Cols + dc
				for c := c0; c < c1; c++ {
					d := g.Data[base+c] - g.Data[off+c]
					sum[bin] += d * d
					cnt[bin]++
				}
			}
		}
	}
	return collect(sum, cnt)
}

// sampledScan draws random pairs: a random anchor point and a random
// offset within the cutoff disc.
func sampledScan(g *grid.Grid, o Options) *Empirical {
	rng := xrand.New(o.Seed ^ 0x5eed5eed5eed5eed)
	nb := o.MaxLag
	sum := make([]float64, nb+1)
	cnt := make([]int64, nb+1)
	maxSq := o.MaxLag * o.MaxLag
	for p := 0; p < o.MaxPairs; p++ {
		r := rng.Intn(g.Rows)
		c := rng.Intn(g.Cols)
		dr := rng.Intn(2*o.MaxLag+1) - o.MaxLag
		dc := rng.Intn(2*o.MaxLag+1) - o.MaxLag
		d2 := dr*dr + dc*dc
		if d2 == 0 || d2 > maxSq {
			continue
		}
		r2, c2 := r+dr, c+dc
		if r2 < 0 || r2 >= g.Rows || c2 < 0 || c2 >= g.Cols {
			continue
		}
		bin := int(math.Round(math.Sqrt(float64(d2))))
		if bin > nb {
			continue
		}
		d := g.At(r, c) - g.At(r2, c2)
		sum[bin] += d * d
		cnt[bin]++
	}
	return collect(sum, cnt)
}

func collect(sum []float64, cnt []int64) *Empirical {
	e := &Empirical{}
	for bin := 1; bin < len(sum); bin++ {
		if cnt[bin] == 0 {
			continue
		}
		e.H = append(e.H, float64(bin))
		e.Gamma = append(e.Gamma, sum[bin]/(2*float64(cnt[bin])))
		e.N = append(e.N, cnt[bin])
	}
	return e
}

// Model is a fitted squared-exponential variogram
//
//	γ(h) = Sill · (1 − exp(−h²/Range²))
//
// Range is directly comparable to the generating correlation range of
// the synthetic Gaussian fields. RangePaper = Range² is the paper's
// γ(h)=c0(1−exp(−h²/a)) parametrization of the same fit.
type Model struct {
	Sill       float64
	Range      float64
	RangePaper float64
	RSS        float64 // weighted residual sum of squares of the fit
}

// Gamma evaluates the fitted model at lag h.
func (m Model) Gamma(h float64) float64 {
	if m.Range == 0 {
		return m.Sill
	}
	return m.Sill * (1 - math.Exp(-h*h/(m.Range*m.Range)))
}

// Fit estimates the squared-exponential model from an empirical
// variogram by pair-count-weighted least squares: for a candidate range
// the optimal sill has a closed form, and the range itself is located
// by golden-section search.
func Fit(e *Empirical) (Model, error) {
	if len(e.H) < 2 {
		return Model{}, fmt.Errorf("variogram: %d bins are too few to fit", len(e.H))
	}
	hMax := e.H[len(e.H)-1]
	obj := func(r float64) (float64, float64) { // returns (rss, sill)
		var num, den float64
		for i, h := range e.H {
			f := 1 - math.Exp(-h*h/(r*r))
			w := float64(e.N[i])
			num += w * f * e.Gamma[i]
			den += w * f * f
		}
		if den == 0 {
			return math.Inf(1), 0
		}
		sill := num / den
		var rss float64
		for i, h := range e.H {
			f := sill * (1 - math.Exp(-h*h/(r*r)))
			d := f - e.Gamma[i]
			rss += float64(e.N[i]) * d * d
		}
		return rss, sill
	}
	lo, hi := 0.25, 8*hMax
	r := linalg.GoldenMinimize(func(x float64) float64 { rss, _ := obj(x); return rss }, lo, hi, 1e-4*hMax)
	rss, sill := obj(r)
	return Model{Sill: sill, Range: r, RangePaper: r * r, RSS: rss}, nil
}

// GlobalRange estimates the variogram range of the entire field: the
// "Estimated global variogram range" axis of Figures 3 and 4.
func GlobalRange(g *grid.Grid, opts Options) (Model, error) {
	e, err := Compute(g, opts)
	if err != nil {
		return Model{}, err
	}
	return Fit(e)
}

// windowRange estimates the variogram range of one window, mirroring
// the per-tile branch of the serial implementation: clipped or constant
// windows are skipped (ok == false without error).
func windowRange(w *grid.Grid, opts Options) (rang float64, ok bool, err error) {
	if w.Rows < 4 || w.Cols < 4 {
		return 0, false, nil
	}
	if w.Summary().Variance == 0 {
		return 0, false, nil
	}
	o := opts
	o.Exact = true
	if o.MaxLag <= 0 || o.MaxLag > w.Rows/2 {
		o.MaxLag = w.Rows / 2
		if w.Cols/2 < o.MaxLag {
			o.MaxLag = w.Cols / 2
		}
	}
	e, err := Compute(w, o)
	if err != nil {
		return 0, false, err
	}
	m, err := Fit(e)
	if err != nil {
		return 0, false, err
	}
	return m.Range, true, nil
}

// LocalRanges tiles the field with h×h windows and estimates a
// variogram range per window (exact scan; windows are small). Windows
// smaller than 4×4 after clipping, or constant windows, are skipped.
// Tiles are evaluated on the shared worker pool (opts.Workers) — each
// worker extracts its window lazily, so only ~Workers windows are live
// at once — and collected in tile order, so the result is independent
// of scheduling.
func LocalRanges(g *grid.Grid, h int, opts Options) ([]float64, error) {
	if h < 4 {
		return nil, fmt.Errorf("variogram: window %d too small", h)
	}
	origins := g.TileOrigins(h)
	return parallel.FilterMapErr(len(origins), opts.Workers, func(i int) (float64, bool, error) {
		return windowRange(g.Window(origins[i][0], origins[i][1], h, h), opts)
	})
}

// LocalRangeStd is the "Std estimated of local variogram range (H=h)"
// statistic: the standard deviation of per-window ranges.
func LocalRangeStd(g *grid.Grid, h int, opts Options) (float64, error) {
	ranges, err := LocalRanges(g, h, opts)
	if err != nil {
		return 0, err
	}
	if len(ranges) == 0 {
		return 0, fmt.Errorf("variogram: no usable %dx%d windows", h, h)
	}
	return linalg.Std(ranges), nil
}
