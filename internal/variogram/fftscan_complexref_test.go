package variogram

// The PR 3 all-complex FFT engine, retained verbatim (test-only) as
// the before/after reference: the memory smoke asserts the real-input
// engine's peak transform-buffer bytes against this engine's working
// set, the benchmarks report both, and the equivalence tests use it as
// a second oracle. It pads every extent to NextPow2(dim + MaxLag) and
// holds three full complex buffers of the padded size.

import (
	"fmt"
	"math"

	"lossycorr/internal/field"
	"lossycorr/internal/fft"
	"lossycorr/internal/parallel"
)

func fftScanFieldComplexRef(f *field.Field, o Options) (*Empirical, error) {
	dims := f.Shape
	nd := len(dims)
	if nd < 1 {
		return nil, fmt.Errorf("variogram: rank-0 field")
	}
	nb := o.MaxLag
	pad := make([]int, nd)
	total := 1
	for k, d := range dims {
		pad[k] = fft.NextPow2(d + nb)
		total *= pad[k]
	}

	bz := fft.AcquireComplex(total)
	defer fft.ReleaseComplex(bz)
	if err := fft.PadReal(bz, pad, f.Data, dims); err != nil {
		return nil, err
	}
	bw := fft.AcquireComplex(total)
	defer fft.ReleaseComplex(bw)
	for i, v := range bz {
		r := real(v)
		bw[i] = complex(r*r, 0)
	}
	bm := fft.AcquireComplex(total)
	defer fft.ReleaseComplex(bm)
	for i := range bm {
		bm[i] = 0
	}
	if err := fft.ForEachEmbeddedRow(dims, pad, func(_, dstOff, n int) {
		for i := dstOff; i < dstOff+n; i++ {
			bm[i] = 1
		}
	}); err != nil {
		return nil, err
	}

	for _, buf := range [][]complex128{bz, bw, bm} {
		if err := fft.ForwardND(buf, pad, o.Workers); err != nil {
			return nil, err
		}
	}
	for i, m := range bm {
		w := bw[i]
		bw[i] = complex(real(w), -imag(w)) * m
		z := bz[i]
		bz[i] = complex(real(z)*real(z)+imag(z)*imag(z),
			real(m)*real(m)+imag(m)*imag(m))
	}
	if err := fft.InverseND(bz, pad, o.Workers); err != nil {
		return nil, err
	}
	if err := fft.InverseND(bw, pad, o.Workers); err != nil {
		return nil, err
	}

	pStride := make([]int, nd)
	acc := 1
	for k := nd - 1; k >= 0; k-- {
		pStride[k] = acc
		acc *= pad[k]
	}
	bins := offsetsByBinCached(nd, nb)
	sum := make([]float64, nb+1)
	cnt := make([]int64, nb+1)
	parallel.For(nb+1, o.Workers, func(b int) {
		offs := bins[b]
		var s float64
		var c int64
		for p := 0; p < len(offs); p += nd {
			idx, neg := 0, 0
			for k := 0; k < nd; k++ {
				h := int(offs[p+k])
				if h >= 0 {
					idx += h * pStride[k]
					if h > 0 {
						neg += (pad[k] - h) * pStride[k]
					}
				} else {
					idx += (pad[k] + h) * pStride[k]
					neg += -h * pStride[k]
				}
			}
			n := int64(math.Round(imag(bz[idx])))
			if n <= 0 {
				continue
			}
			d := real(bw[idx]) + real(bw[neg]) - 2*real(bz[idx])
			if d < 0 {
				d = 0
			}
			s += d
			c += n
		}
		sum[b], cnt[b] = s, c
	})
	return collect(sum, cnt), nil
}

// complexRefPeakBytes is the PR 3 engine's transform-buffer working
// set for a field shape and cutoff: three complex buffers of the
// NextPow2-padded size.
func complexRefPeakBytes(shape []int, maxLag int) int64 {
	total := int64(1)
	for _, d := range shape {
		total *= int64(fft.NextPow2(d + maxLag))
	}
	return 3 * 16 * total
}
