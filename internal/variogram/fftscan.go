package variogram

// FFT exact engine. The exhaustive scan costs O(N·L^d): every lag
// offset re-sweeps the whole array. But all of its per-offset
// quantities are correlations, so they can be computed at once from a
// handful of zero-padded transforms:
//
//	S(h) = Σ_x (z(x) − z(x+h))²   over x with both ends in the domain
//	     = c_wm(h) + c_wm(−h) − 2·c_zz(h)
//	N(h) = c_mm(h)
//
// where m is the domain indicator (1 on the field, 0 in the padding),
// w = z²·m, c_ab(h) = Σ_x a(x)·b(x+h) is linear cross-correlation, and
// c_zz / c_mm are the autocorrelations of the padded field and mask.
// Padding each extent to at least dim + MaxLag makes the circular
// correlations linear for every |h_k| <= MaxLag, so the mask terms
// reproduce the non-periodic boundary handling of the direct scan
// exactly: N(h) counts exactly the pairs scanOffset visits.
//
// Everything in sight is real, so the engine runs in half-spectrum
// form: three real-input forward transforms (z, z²·m, m) produce
// hermitian half-spectra (last axis stored as n/2+1 bins), the spectra
// combine pointwise — conj(W)·M for the cross-correlation, |Z|² and
// |M|² for the autocorrelations — and three real inverse transforms
// return the correlation planes as plain float64 arrays. Compared with
// the previous all-complex engine (three padded complex buffers at
// NextPow2 extents), the working set drops from 6 to 4 padded-size
// float64 planes and the padding itself shrinks from NextPow2(dim+L)
// to FastLen(dim+L) (the next even 5-smooth length, within a few
// percent of exact) — together well under half the bytes. Arbitrary
// exact extents remain available through the fft package's Bluestein
// plan; padLenFn is swappable in tests to push this whole pipeline
// through that path.
//
// The per-offset results are folded into the same rounded-distance
// bins, in the same canonical enumeration order, as the direct scan;
// pair counts agree exactly and Gamma to roundoff (~1e-12 relative on
// random fields; the equivalence test pins 1e-9).

import (
	"context"
	"fmt"
	"math"

	"lossycorr/internal/field"
	"lossycorr/internal/fft"
	"lossycorr/internal/parallel"
)

// padLenFn chooses the padded extent for a required minimum length.
// FastLen keeps every axis on the mixed-radix fast path at a few
// percent of slack; tests swap in an identity to drive the exact
// (Bluestein) lengths through the full engine.
var padLenFn = fft.FastLen

// fftScanField computes the exact binned variogram through the
// transform identities above. The result is independent of the worker
// count: line transforms write disjoint regions and each distance bin
// folds its offsets in canonical order.
//
// Cancellation is observed at stage boundaries — before each of the
// six ND transforms and the pointwise/binning passes — so a dead
// context abandons the pipeline within one transform's duration
// (~tens of milliseconds at 512², seconds at Miranda scale) and every
// pooled buffer is released on the way out through the defers.
func fftScanField(ctx context.Context, f *field.Field, o Options) (*Empirical, error) {
	stage := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	dims := f.Shape
	nd := len(dims)
	if nd < 1 {
		return nil, fmt.Errorf("variogram: rank-0 field")
	}
	nb := o.MaxLag
	pad := make([]int, nd)
	total := 1
	for k, d := range dims {
		pad[k] = padLenFn(d + nb)
		if pad[k] < d+nb {
			return nil, fmt.Errorf("variogram: padded extent %d < %d", pad[k], d+nb)
		}
		total *= pad[k]
	}
	half := fft.HalfLen(pad)

	// r is the one real staging plane: padded z, then (squared in
	// place) z²·m, then the indicator mask — and finally it is reused
	// as the c_wm output plane.
	r := fft.AcquireReal(total)
	defer fft.ReleaseReal(r)
	if err := fft.EmbedReal(r, pad, f.Data, dims); err != nil {
		return nil, err
	}
	if err := stage(); err != nil {
		return nil, err
	}
	spZ := fft.AcquireComplex(half)
	defer func() { fft.ReleaseComplex(spZ) }()
	if err := fft.ForwardRealND(r, pad, spZ, o.Workers); err != nil {
		return nil, err
	}
	// The square of the padded field is exactly z²·m: zero padding
	// stays zero.
	for i, v := range r {
		r[i] = v * v
	}
	if err := stage(); err != nil {
		return nil, err
	}
	spW := fft.AcquireComplex(half)
	defer func() { fft.ReleaseComplex(spW) }()
	if err := fft.ForwardRealND(r, pad, spW, o.Workers); err != nil {
		return nil, err
	}
	for i := range r {
		r[i] = 0
	}
	if err := fft.ForEachEmbeddedRow(dims, pad, func(_, dstOff, n int) {
		for i := dstOff; i < dstOff+n; i++ {
			r[i] = 1
		}
	}); err != nil {
		return nil, err
	}
	if err := stage(); err != nil {
		return nil, err
	}
	spM := fft.AcquireComplex(half)
	defer func() { fft.ReleaseComplex(spM) }()
	if err := fft.ForwardRealND(r, pad, spM, o.Workers); err != nil {
		return nil, err
	}

	// Pointwise spectra, all hermitian: spW ← conj(W)·M (the w⋆m
	// cross-correlation), spZ ← |Z|², spM ← |M|².
	fft.MulConj(spW, spM)
	fft.AbsSq(spZ)
	fft.AbsSq(spM)

	// Three real inverses; each spectrum is released as soon as its
	// correlation plane exists, so at most three half-spectra plus one
	// real plane — or two half-spectra plus two real planes — are ever
	// live at once.
	if err := stage(); err != nil {
		return nil, err
	}
	cwm := r // z and z²·m are spent; reuse the staging plane
	if err := fft.InverseRealND(spW, pad, cwm, o.Workers); err != nil {
		return nil, err
	}
	fft.ReleaseComplex(spW)
	spW = nil
	if err := stage(); err != nil {
		return nil, err
	}
	czz := fft.AcquireReal(total)
	defer fft.ReleaseReal(czz)
	if err := fft.InverseRealND(spZ, pad, czz, o.Workers); err != nil {
		return nil, err
	}
	fft.ReleaseComplex(spZ)
	spZ = nil
	if err := stage(); err != nil {
		return nil, err
	}
	cmm := fft.AcquireReal(total)
	defer fft.ReleaseReal(cmm)
	if err := fft.InverseRealND(spM, pad, cmm, o.Workers); err != nil {
		return nil, err
	}
	fft.ReleaseComplex(spM)
	spM = nil

	// Fold per-offset correlations into distance bins, in the same
	// canonical order as the direct scan.
	pStride := make([]int, nd)
	acc := 1
	for k := nd - 1; k >= 0; k-- {
		pStride[k] = acc
		acc *= pad[k]
	}
	bins := offsetsByBinCached(nd, nb)
	sum := make([]float64, nb+1)
	cnt := make([]int64, nb+1)
	if err := parallel.ForCtx(ctx, nb+1, o.Workers, func(b int) {
		offs := bins[b]
		var s float64
		var c int64
		for p := 0; p < len(offs); p += nd {
			idx, neg := 0, 0
			for k := 0; k < nd; k++ {
				h := int(offs[p+k])
				if h >= 0 {
					idx += h * pStride[k]
					if h > 0 {
						neg += (pad[k] - h) * pStride[k]
					}
				} else {
					idx += (pad[k] + h) * pStride[k]
					neg += -h * pStride[k]
				}
			}
			n := int64(math.Round(cmm[idx]))
			if n <= 0 {
				continue
			}
			d := cwm[idx] + cwm[neg] - 2*czz[idx]
			if d < 0 { // roundoff on (near-)constant fields
				d = 0
			}
			s += d
			c += n
		}
		sum[b], cnt[b] = s, c
	}); err != nil {
		return nil, err
	}
	return collect(sum, cnt), nil
}
