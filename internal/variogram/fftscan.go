package variogram

// FFT exact engine. The exhaustive scan costs O(N·L^d): every lag
// offset re-sweeps the whole array. But all of its per-offset
// quantities are correlations, so they can be computed at once from a
// handful of zero-padded transforms:
//
//	S(h) = Σ_x (z(x) − z(x+h))²   over x with both ends in the domain
//	     = c_wm(h) + c_wm(−h) − 2·c_zz(h)
//	N(h) = c_mm(h)
//
// where m is the domain indicator (1 on the field, 0 in the padding),
// w = z²·m, c_ab(h) = Σ_x a(x)·b(x+h) is linear cross-correlation, and
// c_zz / c_mm are the autocorrelations of the padded field and mask.
// Padding each extent to NextPow2(dim + MaxLag) makes the circular
// correlations linear for every |h_k| <= MaxLag, so the mask terms
// reproduce the non-periodic boundary handling of the direct scan
// exactly: N(h) counts exactly the pairs scanOffset visits.
//
// Three forward transforms (z, z², m) and two inverse transforms
// (|Z|² + i·|M|² packed into one — both autocorrelations are real — and
// conj(W)·M) turn O(N·L^d) into O(P log P) with P the padded size. The
// per-offset results are folded into the same rounded-distance bins, in
// the same canonical enumeration order, as the direct scan; pair counts
// agree exactly and Gamma to roundoff (~1e-12 relative on random
// fields; the equivalence test pins 1e-9).

import (
	"fmt"
	"math"

	"lossycorr/internal/field"
	"lossycorr/internal/fft"
	"lossycorr/internal/parallel"
)

// fftScanField computes the exact binned variogram through the
// transform identities above. The result is independent of the worker
// count: line transforms write disjoint regions and each distance bin
// folds its offsets in canonical order.
func fftScanField(f *field.Field, o Options) (*Empirical, error) {
	dims := f.Shape
	nd := len(dims)
	if nd < 1 {
		return nil, fmt.Errorf("variogram: rank-0 field")
	}
	nb := o.MaxLag
	pad := make([]int, nd)
	total := 1
	for k, d := range dims {
		pad[k] = fft.NextPow2(d + nb)
		total *= pad[k]
	}

	// z, z²·m, and m, zero-padded. w reuses z's padding: the padded
	// square of the padded field is exactly z²·m.
	bz := fft.AcquireComplex(total)
	defer fft.ReleaseComplex(bz)
	if err := fft.PadReal(bz, pad, f.Data, dims); err != nil {
		return nil, err
	}
	bw := fft.AcquireComplex(total)
	defer fft.ReleaseComplex(bw)
	for i, v := range bz {
		r := real(v)
		bw[i] = complex(r*r, 0)
	}
	bm := fft.AcquireComplex(total)
	defer fft.ReleaseComplex(bm)
	for i := range bm {
		bm[i] = 0
	}
	if err := fft.ForEachEmbeddedRow(dims, pad, func(_, dstOff, n int) {
		for i := dstOff; i < dstOff+n; i++ {
			bm[i] = 1
		}
	}); err != nil {
		return nil, err
	}

	for _, buf := range [][]complex128{bz, bw, bm} {
		if err := fft.ForwardND(buf, pad, o.Workers); err != nil {
			return nil, err
		}
	}
	// Spectra products: bw ← conj(W)·M (the w⋆m cross-correlation),
	// bz ← |Z|² + i·|M|² (both autocorrelations, packed: each inverse
	// transform is real, so one complex inverse recovers the pair).
	for i, m := range bm {
		w := bw[i]
		bw[i] = complex(real(w), -imag(w)) * m
		z := bz[i]
		bz[i] = complex(real(z)*real(z)+imag(z)*imag(z),
			real(m)*real(m)+imag(m)*imag(m))
	}
	if err := fft.InverseND(bz, pad, o.Workers); err != nil {
		return nil, err
	}
	if err := fft.InverseND(bw, pad, o.Workers); err != nil {
		return nil, err
	}

	// Fold per-offset correlations into distance bins, in the same
	// canonical order as the direct scan.
	pStride := make([]int, nd)
	acc := 1
	for k := nd - 1; k >= 0; k-- {
		pStride[k] = acc
		acc *= pad[k]
	}
	bins := offsetsByBinCached(nd, nb)
	sum := make([]float64, nb+1)
	cnt := make([]int64, nb+1)
	parallel.For(nb+1, o.Workers, func(b int) {
		offs := bins[b]
		var s float64
		var c int64
		for p := 0; p < len(offs); p += nd {
			idx, neg := 0, 0
			for k := 0; k < nd; k++ {
				h := int(offs[p+k])
				if h >= 0 {
					idx += h * pStride[k]
					if h > 0 {
						neg += (pad[k] - h) * pStride[k]
					}
				} else {
					idx += (pad[k] + h) * pStride[k]
					neg += -h * pStride[k]
				}
			}
			n := int64(math.Round(imag(bz[idx])))
			if n <= 0 {
				continue
			}
			d := real(bw[idx]) + real(bw[neg]) - 2*real(bz[idx])
			if d < 0 { // roundoff on (near-)constant fields
				d = 0
			}
			s += d
			c += n
		}
		sum[b], cnt[b] = s, c
	})
	return collect(sum, cnt), nil
}
