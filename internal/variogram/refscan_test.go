package variogram

// The generic engine in ndim.go claims bitwise equality with the
// historical rank-specific scans. This file keeps verbatim copies of
// the pre-refactor 2D and 3D implementations as references and asserts
// the claim, serially and at several worker counts.

import (
	"context"
	"math"
	"testing"

	"lossycorr/internal/field"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

// legacyExactScan2D is the pre-refactor serial 2D offset scan.
func legacyExactScan2D(g *grid.Grid, o Options) *Empirical {
	nb := o.MaxLag
	sum := make([]float64, nb+1)
	cnt := make([]int64, nb+1)
	maxSq := float64(o.MaxLag * o.MaxLag)
	for dr := 0; dr <= o.MaxLag; dr++ {
		cMin := -o.MaxLag
		if dr == 0 {
			cMin = 1
		}
		for dc := cMin; dc <= o.MaxLag; dc++ {
			d2 := float64(dr*dr + dc*dc)
			if d2 == 0 || d2 > maxSq {
				continue
			}
			bin := int(math.Round(math.Sqrt(d2)))
			if bin > nb {
				continue
			}
			r0, r1 := 0, g.Rows-dr
			for r := r0; r < r1; r++ {
				c0, c1 := 0, g.Cols
				if dc > 0 {
					c1 = g.Cols - dc
				} else {
					c0 = -dc
				}
				base := r * g.Cols
				off := (r+dr)*g.Cols + dc
				for c := c0; c < c1; c++ {
					d := g.Data[base+c] - g.Data[off+c]
					sum[bin] += d * d
					cnt[bin]++
				}
			}
		}
	}
	return collect(sum, cnt)
}

// legacyExactScan3D is the pre-refactor serial 3D offset scan.
func legacyExactScan3D(v *grid.Volume, maxLag int) *Empirical {
	sum := make([]float64, maxLag+1)
	cnt := make([]int64, maxLag+1)
	maxSq := float64(maxLag * maxLag)
	at := func(z, y, x int) float64 { return v.Data[(z*v.Ny+y)*v.Nx+x] }
	for dz := 0; dz <= maxLag; dz++ {
		yMin := -maxLag
		if dz == 0 {
			yMin = 0
		}
		for dy := yMin; dy <= maxLag; dy++ {
			xMin := -maxLag
			if dz == 0 && dy == 0 {
				xMin = 1
			}
			for dx := xMin; dx <= maxLag; dx++ {
				d2 := float64(dz*dz + dy*dy + dx*dx)
				if d2 == 0 || d2 > maxSq {
					continue
				}
				bin := int(math.Round(math.Sqrt(d2)))
				if bin > maxLag {
					continue
				}
				z1 := v.Nz - dz
				for z := 0; z < z1; z++ {
					y0, y1 := 0, v.Ny
					if dy > 0 {
						y1 = v.Ny - dy
					} else {
						y0 = -dy
					}
					for y := y0; y < y1; y++ {
						x0, x1 := 0, v.Nx
						if dx > 0 {
							x1 = v.Nx - dx
						} else {
							x0 = -dx
						}
						for x := x0; x < x1; x++ {
							d := at(z, y, x) - at(z+dz, y+dy, x+dx)
							sum[bin] += d * d
							cnt[bin]++
						}
					}
				}
			}
		}
	}
	return collect(sum, cnt)
}

// legacySampledScan2D is the pre-refactor 2D pair sampler.
func legacySampledScan2D(g *grid.Grid, o Options) *Empirical {
	rng := xrand.New(o.Seed ^ 0x5eed5eed5eed5eed)
	nb := o.MaxLag
	sum := make([]float64, nb+1)
	cnt := make([]int64, nb+1)
	maxSq := o.MaxLag * o.MaxLag
	for p := 0; p < o.MaxPairs; p++ {
		r := rng.Intn(g.Rows)
		c := rng.Intn(g.Cols)
		dr := rng.Intn(2*o.MaxLag+1) - o.MaxLag
		dc := rng.Intn(2*o.MaxLag+1) - o.MaxLag
		d2 := dr*dr + dc*dc
		if d2 == 0 || d2 > maxSq {
			continue
		}
		r2, c2 := r+dr, c+dc
		if r2 < 0 || r2 >= g.Rows || c2 < 0 || c2 >= g.Cols {
			continue
		}
		bin := int(math.Round(math.Sqrt(float64(d2))))
		if bin > nb {
			continue
		}
		d := g.At(r, c) - g.At(r2, c2)
		sum[bin] += d * d
		cnt[bin]++
	}
	return collect(sum, cnt)
}

func randomGrid(rows, cols int, seed uint64) *grid.Grid {
	rng := xrand.New(seed)
	g := grid.New(rows, cols)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	return g
}

func randomVolume(nz, ny, nx int, seed uint64) *grid.Volume {
	rng := xrand.New(seed)
	v := grid.NewVolume(nz, ny, nx)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	return v
}

func assertEmpiricalIdentical(t *testing.T, got, want *Empirical, label string) {
	t.Helper()
	if len(got.H) != len(want.H) {
		t.Fatalf("%s: %d bins, want %d", label, len(got.H), len(want.H))
	}
	for i := range want.H {
		if got.H[i] != want.H[i] || got.N[i] != want.N[i] {
			t.Fatalf("%s bin %d: (h=%v n=%d) want (h=%v n=%d)",
				label, i, got.H[i], got.N[i], want.H[i], want.N[i])
		}
		if got.Gamma[i] != want.Gamma[i] {
			t.Fatalf("%s bin %d: γ=%x want %x (not bit-identical)",
				label, i, got.Gamma[i], want.Gamma[i])
		}
	}
}

func TestExactScanMatchesLegacy2DBitwise(t *testing.T) {
	for _, tc := range []struct{ rows, cols, maxLag int }{
		{40, 40, 0}, {33, 57, 11}, {64, 16, 8}, {5, 5, 2},
	} {
		g := randomGrid(tc.rows, tc.cols, uint64(tc.rows*1000+tc.cols))
		o := (&Options{MaxLag: tc.maxLag, Exact: true}).withDefaults(g)
		want := legacyExactScan2D(g, o)
		for _, w := range []int{1, 2, 7} {
			ow := o
			ow.Workers = w
			got, err := exactScanField(context.Background(), field.FromGrid(g), ow)
			if err != nil {
				t.Fatal(err)
			}
			assertEmpiricalIdentical(t, got, want,
				"exact 2D "+string(rune('0'+w))+" workers")
		}
	}
}

func TestExactScanMatchesLegacy3DBitwise(t *testing.T) {
	for _, tc := range []struct{ nz, ny, nx, maxLag int }{
		{12, 12, 12, 6}, {8, 14, 10, 4}, {4, 4, 4, 2},
	} {
		v := randomVolume(tc.nz, tc.ny, tc.nx, uint64(tc.nz*100+tc.nx))
		want := legacyExactScan3D(v, tc.maxLag)
		for _, w := range []int{1, 3, 16} {
			got, err := exactScanField(context.Background(), field.FromVolume(v),
				Options{MaxLag: tc.maxLag, MaxPairs: 1, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			assertEmpiricalIdentical(t, got, want, "exact 3D")
		}
	}
}

func TestSampledScanMatchesLegacy2DBitwise(t *testing.T) {
	g := randomGrid(80, 70, 99)
	o := (&Options{MaxPairs: 50_000, Seed: 1234}).withDefaults(g)
	want := legacySampledScan2D(g, o)
	got, err := sampledScanField(context.Background(), field.FromGrid(g), o)
	if err != nil {
		t.Fatal(err)
	}
	assertEmpiricalIdentical(t, got, want, "sampled 2D")
}

// TestGlobalExactScanParallelIdentical checks the satellite claim
// directly: the global exact scan is now parallel and bit-identical at
// any worker count.
func TestGlobalExactScanParallelIdentical(t *testing.T) {
	g := randomGrid(96, 96, 7)
	ref, err := Compute(g, Options{Exact: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 32} {
		e, err := Compute(g, Options{Exact: true, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		assertEmpiricalIdentical(t, e, ref, "global exact parallel")
	}
}

// TestLocalRangeStd3DSerialParallelIdentical covers the new 3D
// windowed statistic under the determinism contract.
func TestLocalRangeStd3DSerialParallelIdentical(t *testing.T) {
	v := randomVolume(16, 16, 16, 5)
	ref, err := LocalRangeStd3D(v, 8, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		got, err := LocalRangeStd3D(v, 8, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("workers=%d: %x want %x", w, got, ref)
		}
	}
}

func BenchmarkExactScanSerial(b *testing.B) {
	g := randomGrid(128, 128, 3)
	o := (&Options{Exact: true, Workers: 1}).withDefaults(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exactScanField(context.Background(), field.FromGrid(g), o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactScanParallel(b *testing.B) {
	g := randomGrid(128, 128, 3)
	o := (&Options{Exact: true, Workers: 0}).withDefaults(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exactScanField(context.Background(), field.FromGrid(g), o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalRangeStd3D(b *testing.B) {
	v := randomVolume(32, 32, 32, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LocalRangeStd3D(v, 16, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
