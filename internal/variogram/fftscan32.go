package variogram

// Float32-lane FFT exact engine. Same transform identities as
// fftscan.go, restructured around what a dense rectangular domain
// makes closed-form — so the lane runs ONE forward and ONE inverse
// transform where the float64 engine runs three and two:
//
//  1. The field mean (computed in float64) is subtracted at embed
//     time. S(h) = Σ (z(x) − z(x+h))² is exactly shift-invariant, and
//     centering shrinks the |Z|² plane magnitudes by the squared
//     mean — which is where float32 cancellation error would
//     otherwise concentrate on fields with a large DC component.
//  2. Pair counts are not read from a mask autocorrelation plane. For
//     a dense rectangular domain they have the closed form
//     N(h) = Π_k (dim_k − |h_k|), which is what the direct scan
//     counts — exactly. (A float32 c_mm plane at Miranda scale
//     carries ~1e-6 relative error on counts of ~1e6, i.e. ±1 pair
//     after rounding; the closed form removes that hazard entirely.)
//  3. The z²·m cross-correlation is not transformed either. On a
//     dense domain c_wm(h) = Σ_{x∈B∩(B−h)} z²(x) is a box sum of
//     centered z² over a clipped rectangle, which a float64
//     summed-area table answers exactly in 2^d corner reads per lag.
//     That removes the z²·m forward, the mask forward, AND the c_wm
//     inverse — the three transforms that made the float32 lane run
//     at float64 parity — and upgrades the z² term from float32
//     transform roundoff to float64 prefix-sum accuracy.
//
// What remains on the FFT side is the autocorrelation pair:
// forward(z centered) → |Z|² → inverse, over one float32 staging
// plane (reused as the c_zz output) and one complex64 half-spectrum.
// Peak transform bytes are the two planes plus the (unpadded) float64
// SAT — the fftPeakMB gauges in BENCH_pr7.json record the lane pair.
// Per-bin folds accumulate in float64 in canonical offset order, so
// results are bit-identical at any worker count.

import (
	"context"
	"fmt"

	"lossycorr/internal/fft"
	"lossycorr/internal/field"
	"lossycorr/internal/parallel"
)

func fftScanField32(ctx context.Context, f *field.Field32, o Options) (*Empirical, error) {
	stage := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	dims := f.Shape
	nd := len(dims)
	if nd < 1 {
		return nil, fmt.Errorf("variogram: rank-0 field")
	}
	nb := o.MaxLag
	pad := make([]int, nd)
	total := 1
	for k, d := range dims {
		pad[k] = padLenFn(d + nb)
		if pad[k] < d+nb {
			return nil, fmt.Errorf("variogram: padded extent %d < %d", pad[k], d+nb)
		}
		total *= pad[k]
	}
	half := fft.HalfLen(pad)
	mean := f.Summary().Mean

	// Summed-area table of centered z², extents dims[k]+1 with zero
	// borders at index 0 — the closed form for every c_wm box sum.
	satDims := make([]int, nd)
	satStride := make([]int, nd)
	satTotal := 1
	for k := nd - 1; k >= 0; k-- {
		satDims[k] = dims[k] + 1
		satStride[k] = satTotal
		satTotal *= satDims[k]
	}
	sat := fft.AcquireReal(satTotal)
	defer fft.ReleaseReal(sat)
	buildCenteredSqSAT(f, mean, sat, satDims, satStride)
	if err := stage(); err != nil {
		return nil, err
	}

	// r is the one real staging plane: padded centered z in, the c_zz
	// autocorrelation out.
	r := fft.AcquireReal32(total)
	defer fft.ReleaseReal32(r)
	for i := range r {
		r[i] = 0
	}
	if err := fft.ForEachEmbeddedRow(dims, pad, func(srcOff, dstOff, n int) {
		src := f.Data[srcOff : srcOff+n]
		dst := r[dstOff : dstOff+n]
		for i, v := range src {
			dst[i] = float32(float64(v) - mean)
		}
	}); err != nil {
		return nil, err
	}
	if err := stage(); err != nil {
		return nil, err
	}
	spZ := fft.AcquireComplex64(half)
	defer func() { fft.ReleaseComplex64(spZ) }()
	if err := fft.ForwardRealND32(r, pad, spZ, o.Workers); err != nil {
		return nil, err
	}
	fft.AbsSq32(spZ)
	if err := stage(); err != nil {
		return nil, err
	}
	czz := r // the padded field is spent; the autocorrelation lands in place
	if err := fft.InverseRealND32(spZ, pad, czz, o.Workers); err != nil {
		return nil, err
	}
	fft.ReleaseComplex64(spZ)
	spZ = nil

	// Fold per-offset correlations into distance bins, in the same
	// canonical order as the direct scan, accumulating in float64.
	pStride := make([]int, nd)
	acc := 1
	for k := nd - 1; k >= 0; k-- {
		pStride[k] = acc
		acc *= pad[k]
	}
	bins := offsetsByBinCached(nd, nb)
	sum := make([]float64, nb+1)
	cnt := make([]int64, nb+1)
	if err := parallel.ForCtx(ctx, nb+1, o.Workers, func(b int) {
		offs := bins[b]
		lo1 := make([]int, nd)
		hi1 := make([]int, nd)
		lo2 := make([]int, nd)
		hi2 := make([]int, nd)
		var s float64
		var c int64
		for p := 0; p < len(offs); p += nd {
			idx := 0
			n := int64(1)
			for k := 0; k < nd; k++ {
				h := int(offs[p+k])
				a := h
				if a < 0 {
					a = -a
				}
				if a >= dims[k] {
					n = 0
					break
				}
				n *= int64(dims[k] - a)
				// Axis ranges of the two overlap boxes: B∩(B−h) for
				// the c_wm(h) term, B∩(B+h) for c_wm(−h).
				if h >= 0 {
					idx += h * pStride[k]
					lo1[k], hi1[k] = 0, dims[k]-h
					lo2[k], hi2[k] = h, dims[k]
				} else {
					idx += (pad[k] + h) * pStride[k]
					lo1[k], hi1[k] = a, dims[k]
					lo2[k], hi2[k] = 0, dims[k]-a
				}
			}
			if n <= 0 {
				continue
			}
			wm := boxSum64(sat, satStride, lo1, hi1) + boxSum64(sat, satStride, lo2, hi2)
			d := wm - 2*float64(czz[idx])
			if d < 0 { // roundoff on (near-)constant fields
				d = 0
			}
			s += d
			c += n
		}
		sum[b], cnt[b] = s, c
	}); err != nil {
		return nil, err
	}
	return collect(sum, cnt), nil
}

// buildCenteredSqSAT fills sat (extents satDims[k] = dims[k]+1, with
// zero borders at index 0 on every axis) with the inclusive prefix
// sums of (z−mean)². Every element is written — pooled buffers carry
// unspecified contents — and the axis passes run over contiguous
// blocks, so the build is d linear sweeps.
func buildCenteredSqSAT(f *field.Field32, mean float64, sat []float64, satDims, satStride []int) {
	for i := range sat {
		sat[i] = 0
	}
	nd := len(satDims)
	dims := f.Shape
	rowLen := dims[nd-1]
	idx := make([]int, nd)
	src := 0
	for {
		dst := satStride[nd-1]
		for k := 0; k < nd-1; k++ {
			dst += (idx[k] + 1) * satStride[k]
		}
		row := f.Data[src : src+rowLen]
		for i, v := range row {
			d := float64(v) - mean
			sat[dst+i] = d * d
		}
		src += rowLen
		k := nd - 2
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < dims[k] {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			break
		}
	}
	for k := nd - 1; k >= 0; k-- {
		stride := satStride[k]
		block := stride * satDims[k]
		for base := 0; base < len(sat); base += block {
			for j := stride; j < block; j++ {
				sat[base+j] += sat[base+j-stride]
			}
		}
	}
}

// boxSum64 evaluates the box sum over [lo, hi) per axis by
// inclusion–exclusion on the 2^d SAT corners.
func boxSum64(sat []float64, stride, lo, hi []int) float64 {
	nd := len(stride)
	var s float64
	for mask := 0; mask < 1<<uint(nd); mask++ {
		off, bits := 0, 0
		for k := 0; k < nd; k++ {
			if mask>>uint(k)&1 != 0 {
				off += lo[k] * stride[k]
				bits++
			} else {
				off += hi[k] * stride[k]
			}
		}
		if bits&1 != 0 {
			s -= sat[off]
		} else {
			s += sat[off]
		}
	}
	return s
}
