package variogram

import (
	"fmt"
	"math"
	"testing"

	"lossycorr/internal/fft"
	"lossycorr/internal/field"
	"lossycorr/internal/xrand"
)

// randomField32 narrows randomField's samples, so the float32 lane and
// its float64 oracle see exactly-corresponding values.
func randomField32(shape []int, seed uint64) (*field.Field32, *field.Field) {
	rng := xrand.New(seed)
	f32 := field.New32(shape...)
	for i := range f32.Data {
		f32.Data[i] = float32(rng.NormFloat64())
	}
	return f32, f32.Widen()
}

// TestFFT32MatchesExactScan pins the float32 FFT engine against the
// float64 exact scan over the widened field: pair counts exact (the
// closed-form count removes the narrow-rounding hazard), Gamma within
// float32 transform tolerance, and the lane bit-identical at any
// worker count.
func TestFFT32MatchesExactScan(t *testing.T) {
	for ci, tc := range equivalenceCases {
		f32, f64 := randomField32(tc.shape, uint64(1300+ci))
		ex, err := ComputeField(f64, Options{Exact: true, MaxLag: tc.maxLag})
		if err != nil {
			t.Fatal(err)
		}
		var ref *Empirical
		for _, workers := range []int{1, 3, 8} {
			ff, err := ComputeField32(f32, Options{FFT: true, MaxLag: tc.maxLag, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(ff.H) != len(ex.H) {
				t.Fatalf("shape %v workers %d: %d bins vs exact %d", tc.shape, workers, len(ff.H), len(ex.H))
			}
			for i := range ex.H {
				if ff.N[i] != ex.N[i] {
					t.Fatalf("shape %v workers %d bin h=%v: count %d vs exact %d",
						tc.shape, workers, ex.H[i], ff.N[i], ex.N[i])
				}
				rel := math.Abs(ff.Gamma[i]-ex.Gamma[i]) / math.Abs(ex.Gamma[i])
				if rel > 5e-4 {
					t.Fatalf("shape %v workers %d bin h=%v: gamma %v vs exact %v (rel %g)",
						tc.shape, workers, ex.H[i], ff.Gamma[i], ex.Gamma[i], rel)
				}
			}
			if ref == nil {
				ref = ff
			} else {
				for i := range ref.Gamma {
					if ff.Gamma[i] != ref.Gamma[i] {
						t.Fatalf("shape %v workers %d: nondeterministic gamma at bin %d", tc.shape, workers, i)
					}
				}
			}
		}
	}
}

// TestFFT32LargeMean drives the centering path: a field with a DC
// component ~1e4 times its fluctuation scale would lose most float32
// significand bits in |Z|² without mean subtraction.
func TestFFT32LargeMean(t *testing.T) {
	shape := []int{40, 56}
	rng := xrand.New(42)
	f32 := field.New32(shape...)
	for i := range f32.Data {
		f32.Data[i] = float32(10000 + rng.NormFloat64())
	}
	ex, err := ComputeField(f32.Widen(), Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := ComputeField32(f32, Options{FFT: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ex.H {
		if ff.N[i] != ex.N[i] {
			t.Fatalf("bin h=%v: count %d vs exact %d", ex.H[i], ff.N[i], ex.N[i])
		}
		rel := math.Abs(ff.Gamma[i]-ex.Gamma[i]) / math.Abs(ex.Gamma[i])
		if rel > 2e-3 {
			t.Fatalf("bin h=%v: gamma %v vs exact %v (rel %g)", ex.H[i], ff.Gamma[i], ex.Gamma[i], rel)
		}
	}
}

// TestFFT32LagBeyondExtent pins the closed-form count at offsets larger
// than an extent: zero pairs, same bins as the direct scan.
func TestFFT32LagBeyondExtent(t *testing.T) {
	f32, f64 := randomField32([]int{8, 64}, 9)
	ex, err := ComputeField(f64, Options{Exact: true, MaxLag: 16})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := ComputeField32(f32, Options{FFT: true, MaxLag: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(ff.H) != len(ex.H) {
		t.Fatalf("%d bins vs exact %d", len(ff.H), len(ex.H))
	}
	for i := range ex.H {
		if ff.N[i] != ex.N[i] {
			t.Fatalf("bin h=%v: count %d vs exact %d", ex.H[i], ff.N[i], ex.N[i])
		}
	}
}

// TestDirectScans32MatchOracle pins the float32 exact and sampled
// scans bit-identical to the float64 oracle over the widened field:
// widening is exact and both lanes accumulate in float64, so even the
// Monte Carlo path (same seed, same draw order) must agree bitwise.
func TestDirectScans32MatchOracle(t *testing.T) {
	f32, f64 := randomField32([]int{70, 70}, 21)
	for _, opts := range []Options{
		{Exact: true, MaxLag: 11},
		{Seed: 5, MaxPairs: 20000},
	} {
		ex, err := ComputeField(f64, opts)
		if err != nil {
			t.Fatal(err)
		}
		ff, err := ComputeField32(f32, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(ff.H) != len(ex.H) {
			t.Fatalf("opts %+v: %d bins vs %d", opts, len(ff.H), len(ex.H))
		}
		for i := range ex.H {
			if ff.N[i] != ex.N[i] || ff.Gamma[i] != ex.Gamma[i] {
				t.Fatalf("opts %+v bin h=%v: (%v, %d) vs oracle (%v, %d)",
					opts, ex.H[i], ff.Gamma[i], ff.N[i], ex.Gamma[i], ex.N[i])
			}
		}
	}
}

// TestLocalRanges32MatchOracle pins the widened-window path: local
// ranges of the float32 lane equal the float64 oracle's over the
// widened field bitwise (the per-window solves are the same code on
// the same values).
func TestLocalRanges32MatchOracle(t *testing.T) {
	f32, f64 := randomField32([]int{64, 48}, 33)
	ex, err := LocalRangesField(f64, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := LocalRangesField32(f32, 16, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ff) != len(ex) {
		t.Fatalf("%d windows vs %d", len(ff), len(ex))
	}
	for i := range ex {
		if ff[i] != ex[i] {
			t.Fatalf("window %d: range %v vs oracle %v", i, ff[i], ex[i])
		}
	}
}

// TestFFT32PoisonedPools re-runs the float32 equivalence suite with
// the float32-lane pool buckets pre-filled with NaN-poisoned buffers,
// extending TestFFTPoisonedPools' no-assumed-zero contract to the new
// buckets.
func TestFFT32PoisonedPools(t *testing.T) {
	poison := func(maxElems int) {
		const perBucket = 6
		for n := 1; n <= maxElems; n *= 2 {
			cbufs := make([][]complex64, perBucket)
			rbufs := make([][]float32, perBucket)
			for i := 0; i < perBucket; i++ {
				c := fft.AcquireComplex64(n)
				for j := range c {
					c[j] = complex(float32(math.NaN()), float32(math.NaN()))
				}
				cbufs[i] = c
				r := fft.AcquireReal32(n)
				for j := range r {
					r[j] = float32(math.NaN())
				}
				rbufs[i] = r
			}
			for i := 0; i < perBucket; i++ {
				fft.ReleaseComplex64(cbufs[i])
				fft.ReleaseReal32(rbufs[i])
			}
		}
	}
	for ci, tc := range equivalenceCases {
		f32, f64 := randomField32(tc.shape, uint64(1700+ci))
		ex, err := ComputeField(f64, Options{Exact: true, MaxLag: tc.maxLag})
		if err != nil {
			t.Fatal(err)
		}
		poison(1 << 18)
		ff, err := ComputeField32(f32, Options{FFT: true, MaxLag: tc.maxLag})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ex.H {
			if ff.N[i] != ex.N[i] {
				t.Fatalf("poisoned shape %v bin h=%v: count %d vs exact %d", tc.shape, ex.H[i], ff.N[i], ex.N[i])
			}
			rel := math.Abs(ff.Gamma[i]-ex.Gamma[i]) / math.Abs(ex.Gamma[i])
			if rel > 5e-4 {
				t.Fatalf("poisoned shape %v bin h=%v: gamma rel %g", tc.shape, ex.H[i], rel)
			}
		}

		orig := padLenFn
		padLenFn = func(n int) int { return n }
		poison(1 << 18)
		fb, err := ComputeField32(f32, Options{FFT: true, MaxLag: tc.maxLag})
		padLenFn = orig
		if err != nil {
			t.Fatal(err)
		}
		for i := range ex.H {
			if fb.N[i] != ex.N[i] {
				t.Fatalf("poisoned-bluestein shape %v bin h=%v: count %d vs exact %d", tc.shape, ex.H[i], fb.N[i], ex.N[i])
			}
			rel := math.Abs(fb.Gamma[i]-ex.Gamma[i]) / math.Abs(ex.Gamma[i])
			if rel > 2e-3 {
				t.Fatalf("poisoned-bluestein shape %v bin h=%v: gamma rel %g", tc.shape, ex.H[i], rel)
			}
		}
	}
}

// BenchmarkVariogramFFT32 is the float32 row of the paired lane
// gauges: same fields (narrowed) and cutoffs as BenchmarkVariogramFFT,
// reporting the float32 engine's transform-plane peak.
func BenchmarkVariogramFFT32(b *testing.B) {
	for _, n := range benchScanSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f32, _ := randomField32([]int{n, n}, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fft.ResetPeakBytes()
				if _, err := ComputeField32(f32, Options{FFT: true}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(fft.PeakBytes())/(1<<20), "fftPeakMB")
		})
	}
}

func BenchmarkVariogramFFT32_3D(b *testing.B) {
	f32, _ := randomField32([]int{64, 64, 64}, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fft.ResetPeakBytes()
		if _, err := ComputeField32(f32, Options{FFT: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fft.PeakBytes())/(1<<20), "fftPeakMB")
}
