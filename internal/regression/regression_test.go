package regression

import (
	"math"
	"strings"
	"testing"

	"lossycorr/internal/xrand"
)

func TestFitLogExactRecovery(t *testing.T) {
	alpha, beta := 3.5, 2.0
	var xs, ys []float64
	for x := 1.0; x <= 100; x *= 1.5 {
		xs = append(xs, x)
		ys = append(ys, alpha+beta*math.Log(x))
	}
	fit, err := FitLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-alpha) > 1e-9 || math.Abs(fit.Beta-beta) > 1e-9 {
		t.Fatalf("fit %+v", fit)
	}
	if fit.R2 < 1-1e-12 {
		t.Fatalf("R² %v want 1", fit.R2)
	}
	if got := fit.Predict(math.E); math.Abs(got-(alpha+beta)) > 1e-9 {
		t.Fatalf("Predict(e)=%v", got)
	}
}

func TestFitLogNoisy(t *testing.T) {
	rng := xrand.New(10)
	alpha, beta := -1.0, 4.0
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := 1 + 99*rng.Float64()
		xs = append(xs, x)
		ys = append(ys, alpha+beta*math.Log(x)+0.1*rng.NormFloat64())
	}
	fit, err := FitLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-alpha) > 0.1 || math.Abs(fit.Beta-beta) > 0.05 {
		t.Fatalf("noisy fit %+v", fit)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R² %v", fit.R2)
	}
}

func TestFitLogFiltersBadPoints(t *testing.T) {
	xs := []float64{-1, 0, math.NaN(), 1, math.E}
	ys := []float64{99, 99, 99, 2, 3}
	fit, err := FitLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 2 {
		t.Fatalf("N=%d want 2", fit.N)
	}
	if math.Abs(fit.Alpha-2) > 1e-9 || math.Abs(fit.Beta-1) > 1e-9 {
		t.Fatalf("fit %+v", fit)
	}
}

func TestFitLogErrors(t *testing.T) {
	if _, err := FitLog([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := FitLog([]float64{-1, -2, 0}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected too-few-points error")
	}
}

func TestLogFitString(t *testing.T) {
	f := LogFit{Alpha: 1.5, Beta: -0.25, R2: 0.875, N: 10}
	s := f.String()
	for _, want := range []string{"α=1.500", "β=-0.250", "R²=0.875", "n=10"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // 5 + 2x
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-5) > 1e-10 || math.Abs(fit.Beta-2) > 1e-10 {
		t.Fatalf("fit %+v", fit)
	}
	if fit.R2 < 1-1e-12 {
		t.Fatalf("R²=%v", fit.R2)
	}
	if fit.Predict(10) != 25 {
		t.Fatalf("Predict(10)=%v", fit.Predict(10))
	}
}

func TestFitLinearFiltersNaN(t *testing.T) {
	fit, err := FitLinear([]float64{math.NaN(), 0, 1}, []float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 2 {
		t.Fatalf("N=%d", fit.N)
	}
}

func TestRSquaredDegenerate(t *testing.T) {
	// constant y: perfect fit when prediction matches
	fit, err := FitLinear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 != 1 {
		t.Fatalf("constant-y R²=%v want 1", fit.R2)
	}
}

func TestResiduals(t *testing.T) {
	fit := LogFit{Alpha: 0, Beta: 1}
	res, skipped := Residuals(fit, []float64{math.E, math.E * math.E, -1}, []float64{1.5, 2, 99})
	if len(res) != 2 {
		t.Fatalf("residual count %d", len(res))
	}
	if skipped != 1 {
		t.Fatalf("skipped %d want 1", skipped)
	}
	if math.Abs(res[0]-0.5) > 1e-9 || math.Abs(res[1]-0) > 1e-9 {
		t.Fatalf("residuals %v", res)
	}
}

// TestResidualsSkipCount pins the bugfix: the caller can now tell how
// many points the log-model filter dropped, so counts derived from
// len(x) (e.g. CV fold sizes) cannot silently drift from the fitted
// set.
func TestResidualsSkipCount(t *testing.T) {
	fit := LogFit{Alpha: 1, Beta: 0}
	x := []float64{1, -2, 0, math.NaN(), math.Inf(1), 2, 3}
	y := []float64{1, 1, 1, 1, 1, math.NaN(), 1}
	res, skipped := Residuals(fit, x, y)
	if len(res) != 2 || skipped != 5 {
		t.Fatalf("got %d residuals, %d skipped; want 2, 5", len(res), skipped)
	}
	if len(res)+skipped != len(x) {
		t.Fatalf("residuals+skipped=%d must equal len(x)=%d", len(res)+skipped, len(x))
	}
}
