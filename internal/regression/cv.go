package regression

import (
	"fmt"
	"math"

	"lossycorr/internal/linalg"
	"lossycorr/internal/xrand"
)

// CVStats are k-fold cross-validation diagnostics of a log fit: how
// well CR = α + β·ln(x) predicts points the fit never saw. The pooled
// R²/RMSE aggregate every held-out prediction; the per-fold slices keep
// the spread visible (a single lucky fold can hide a fragile model).
// Kruskal's relative-importance point applies here: the in-sample R²
// FitLog reports says how much variance the statistic absorbs on its
// own training set, while CVStats.R2 is the out-of-sample number a
// deployment will actually see.
type CVStats struct {
	// Folds is the fold count actually used (requests are clamped to
	// the usable point count, so small sets degrade to leave-one-out).
	Folds int `json:"folds"`
	// Seed drove the deterministic fold assignment.
	Seed uint64 `json:"seed"`
	// N is the number of usable points; Skipped counts the points the
	// log-model filter dropped (non-positive x, non-finite values) —
	// the same filter FitLog applies, so N + Skipped = len(x).
	N       int `json:"n"`
	Skipped int `json:"skipped"`
	// R2 and RMSE pool every held-out prediction: R² against the global
	// mean of y, RMSE as √(mean squared held-out residual).
	R2   float64 `json:"r2"`
	RMSE float64 `json:"rmse"`
	// FoldR2 and FoldRMSE are the same quantities per fold, in fold
	// order. A fold whose training fit failed holds NaN in both.
	FoldR2   []float64 `json:"foldR2"`
	FoldRMSE []float64 `json:"foldRMSE"`
}

// String renders the pooled diagnostics compactly.
func (c CVStats) String() string {
	return fmt.Sprintf("CV(k=%d): R²=%.3f RMSE=%.3f (n=%d, skipped=%d)", c.Folds, c.R2, c.RMSE, c.N, c.Skipped)
}

// CrossValidateLog runs seeded k-fold cross-validation of the
// logarithmic model over (x, y). Points are filtered exactly as FitLog
// filters them, shuffled by a deterministic seeded permutation, and
// dealt round-robin into k folds; each fold is then predicted by a fit
// trained on the other k−1. The assignment depends only on (len of the
// filtered set, k, seed) — never on goroutine scheduling — so the
// diagnostics are bit-identical across worker counts and runs.
// k < 2 selects the default of 5; k is clamped to the usable point
// count (degrading to leave-one-out). At least three usable points are
// required, so every training fold keeps ≥ 2 points.
func CrossValidateLog(x, y []float64, k int, seed uint64) (CVStats, error) {
	if len(x) != len(y) {
		return CVStats{}, fmt.Errorf("regression: length mismatch %d vs %d", len(x), len(y))
	}
	lx, ly, skipped := filterLog(x, y)
	n := len(lx)
	if n < 3 {
		return CVStats{}, fmt.Errorf("regression: cross-validation needs >= 3 usable points, got %d", n)
	}
	if k < 2 {
		k = 5
	}
	if k > n {
		k = n
	}
	cv := CVStats{Folds: k, Seed: seed, N: n, Skipped: skipped,
		FoldR2: make([]float64, k), FoldRMSE: make([]float64, k)}

	// Deterministic assignment: shuffle indices with the seeded
	// generator, deal round-robin so fold sizes differ by at most one.
	perm := xrand.New(seed).Perm(n)
	fold := make([]int, n)
	for pos, idx := range perm {
		fold[idx] = pos % k
	}

	mean := linalg.Mean(ly)
	var pooledRes, pooledTot float64
	var pooledN int
	trainLX := make([]float64, 0, n)
	trainLY := make([]float64, 0, n)
	for f := 0; f < k; f++ {
		trainLX, trainLY = trainLX[:0], trainLY[:0]
		var heldLX, heldLY []float64
		for i := 0; i < n; i++ {
			if fold[i] == f {
				heldLX = append(heldLX, lx[i])
				heldLY = append(heldLY, ly[i])
			} else {
				trainLX = append(trainLX, lx[i])
				trainLY = append(trainLY, ly[i])
			}
		}
		fit, err := fitLogSpace(trainLX, trainLY)
		if err != nil {
			cv.FoldR2[f], cv.FoldRMSE[f] = math.NaN(), math.NaN()
			continue
		}
		var ssRes, ssTot float64
		foldMean := linalg.Mean(heldLY)
		for i := range heldLX {
			r := heldLY[i] - (fit.Alpha + fit.Beta*heldLX[i])
			ssRes += r * r
			t := heldLY[i] - foldMean
			ssTot += t * t
			g := heldLY[i] - mean
			pooledRes += r * r
			pooledTot += g * g
		}
		pooledN += len(heldLX)
		cv.FoldRMSE[f] = math.Sqrt(ssRes / float64(len(heldLX)))
		cv.FoldR2[f] = rsqFromSums(ssRes, ssTot)
	}
	if pooledN == 0 {
		return CVStats{}, fmt.Errorf("regression: no fold produced a usable fit")
	}
	cv.RMSE = math.Sqrt(pooledRes / float64(pooledN))
	cv.R2 = rsqFromSums(pooledRes, pooledTot)
	return cv, nil
}

// rsqFromSums is 1 − ssRes/ssTot with the degenerate constant-target
// convention rSquared uses (exact fit → 1, anything else → 0).
func rsqFromSums(ssRes, ssTot float64) float64 {
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
