package regression

import (
	"math"
	"reflect"
	"testing"

	"lossycorr/internal/xrand"
)

func noisyLogData(n int, noise float64, seed uint64) (xs, ys []float64) {
	rng := xrand.New(seed)
	for i := 0; i < n; i++ {
		x := 1 + 99*rng.Float64()
		xs = append(xs, x)
		ys = append(ys, 2+3*math.Log(x)+noise*rng.NormFloat64())
	}
	return xs, ys
}

func TestCrossValidateLogRecoversGoodModel(t *testing.T) {
	xs, ys := noisyLogData(200, 0.1, 7)
	cv, err := CrossValidateLog(xs, ys, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Folds != 5 || cv.N != 200 || cv.Skipped != 0 {
		t.Fatalf("cv meta %+v", cv)
	}
	if cv.R2 < 0.98 {
		t.Fatalf("out-of-sample R²=%v, want near 1 for a well-specified model", cv.R2)
	}
	// RMSE of a correctly specified model should sit near the noise std.
	if cv.RMSE < 0.05 || cv.RMSE > 0.2 {
		t.Fatalf("RMSE=%v, want ≈0.1", cv.RMSE)
	}
	if len(cv.FoldR2) != 5 || len(cv.FoldRMSE) != 5 {
		t.Fatalf("fold slices %d/%d", len(cv.FoldR2), len(cv.FoldRMSE))
	}
	for f, r2 := range cv.FoldR2 {
		if math.IsNaN(r2) || r2 < 0.9 {
			t.Fatalf("fold %d R²=%v", f, r2)
		}
	}
}

func TestCrossValidateLogDeterministic(t *testing.T) {
	xs, ys := noisyLogData(60, 0.3, 11)
	a, err := CrossValidateLog(xs, ys, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidateLog(xs, ys, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := CrossValidateLog(xs, ys, 4, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.R2 == c.R2 && reflect.DeepEqual(a.FoldR2, c.FoldR2) {
		t.Fatalf("different seeds produced identical fold diagnostics: %+v", c)
	}
}

func TestCrossValidateLogSkipsBadPoints(t *testing.T) {
	xs, ys := noisyLogData(40, 0.1, 3)
	xs = append(xs, -1, 0, math.NaN())
	ys = append(ys, 5, 5, 5)
	cv, err := CrossValidateLog(xs, ys, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cv.N != 40 || cv.Skipped != 3 {
		t.Fatalf("N=%d skipped=%d, want 40/3", cv.N, cv.Skipped)
	}
}

func TestCrossValidateLogClampsFolds(t *testing.T) {
	xs := []float64{2, 4, 8, 16}
	ys := []float64{1, 2, 3, 4}
	cv, err := CrossValidateLog(xs, ys, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Folds != 4 {
		t.Fatalf("folds=%d, want clamp to n=4 (leave-one-out)", cv.Folds)
	}
}

func TestCrossValidateLogErrors(t *testing.T) {
	if _, err := CrossValidateLog([]float64{1, 2}, []float64{1}, 5, 1); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := CrossValidateLog([]float64{1, 2}, []float64{1, 2}, 5, 1); err == nil {
		t.Fatal("two points cannot cross-validate")
	}
	if _, err := CrossValidateLog([]float64{-1, -2, -3, -4}, []float64{1, 2, 3, 4}, 2, 1); err == nil {
		t.Fatal("all-filtered input must error")
	}
}

func TestStudentTQuantileKnownValues(t *testing.T) {
	// Two-sided 95% critical values from standard t tables.
	cases := []struct {
		dof  int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {3, 3.182}, {5, 2.571},
		{10, 2.228}, {30, 2.042}, {120, 1.980},
	}
	for _, c := range cases {
		got := StudentTQuantile(0.975, c.dof)
		if math.Abs(got-c.want) > 2e-3 {
			t.Errorf("t(0.975, %d)=%v want %v", c.dof, got, c.want)
		}
	}
	// Large dof converges on the normal quantile.
	if got := StudentTQuantile(0.975, 100000); math.Abs(got-1.96) > 1e-2 {
		t.Errorf("t(0.975, 1e5)=%v want ≈1.960", got)
	}
	if got := StudentTQuantile(0.025, 10); math.Abs(got+2.228) > 2e-3 {
		t.Errorf("lower tail %v want -2.228", got)
	}
	if StudentTQuantile(0.5, 7) != 0 {
		t.Error("median must be 0")
	}
	for _, bad := range []float64{0, 1, -0.1, 1.5} {
		if !math.IsNaN(StudentTQuantile(bad, 5)) {
			t.Errorf("p=%v must be NaN", bad)
		}
	}
	if !math.IsNaN(StudentTQuantile(0.9, 0)) {
		t.Error("dof=0 must be NaN")
	}
}

func TestStudentTCDFQuantileRoundTrip(t *testing.T) {
	for _, dof := range []int{1, 3, 8, 25} {
		for _, p := range []float64{0.01, 0.2, 0.5, 0.8, 0.975, 0.999} {
			q := StudentTQuantile(p, dof)
			back := StudentTCDF(q, dof)
			if math.Abs(back-p) > 1e-9 {
				t.Errorf("dof=%d p=%v: CDF(Quantile)=%v", dof, p, back)
			}
		}
	}
}

func TestPredictIntervalBrackets(t *testing.T) {
	xs, ys := noisyLogData(80, 0.5, 9)
	fit, err := FitLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Sigma <= 0 || fit.SxxLX <= 0 {
		t.Fatalf("fit lacks interval parameters: %+v", fit)
	}
	y, lo, hi := fit.PredictInterval(20, 0.95)
	if !(lo < y && y < hi) {
		t.Fatalf("interval [%v, %v] does not bracket %v", lo, hi, y)
	}
	// The 99% interval must contain the 95% one.
	_, lo99, hi99 := fit.PredictInterval(20, 0.99)
	if lo99 >= lo || hi99 <= hi {
		t.Fatalf("99%% interval [%v, %v] not wider than 95%% [%v, %v]", lo99, hi99, lo, hi)
	}
	// Far from the training mean the interval widens.
	_, loFar, hiFar := fit.PredictInterval(1e6, 0.95)
	if hiFar-loFar <= hi-lo {
		t.Fatalf("extrapolated interval %v not wider than interpolated %v", hiFar-loFar, hi-lo)
	}
	// Empirical coverage: ≈95% of fresh noisy points fall inside their
	// own prediction interval.
	rng := xrand.New(77)
	hits, total := 0, 2000
	for i := 0; i < total; i++ {
		x := 1 + 99*rng.Float64()
		truth := 2 + 3*math.Log(x) + 0.5*rng.NormFloat64()
		_, l, h := fit.PredictInterval(x, 0.95)
		if truth >= l && truth <= h {
			hits++
		}
	}
	cov := float64(hits) / float64(total)
	if cov < 0.92 || cov > 0.98 {
		t.Fatalf("95%% interval covered %.3f of fresh points", cov)
	}
}

func TestPredictIntervalDegenerate(t *testing.T) {
	// Exact fit: zero residual std collapses the interval.
	var xs, ys []float64
	for x := 1.0; x <= 32; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 1+2*math.Log(x))
	}
	fit, err := FitLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	y, lo, hi := fit.PredictInterval(5, 0.95)
	// Sigma of an analytically exact fit is only roundoff-sized, so the
	// interval is allowed to be non-zero but must be negligible.
	if hi-lo > 1e-9*math.Abs(y) {
		t.Fatalf("exact fit interval [%v, %v] not negligible around %v", lo, hi, y)
	}
	// Two points: no residual degrees of freedom.
	fit2, err := FitLog([]float64{2, 8}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	y2, lo2, hi2 := fit2.PredictInterval(4, 0.95)
	if lo2 != y2 || hi2 != y2 {
		t.Fatalf("n=2 interval [%v, %v] should collapse to %v", lo2, hi2, y2)
	}
}
