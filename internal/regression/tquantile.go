package regression

import "math"

// Student's t distribution, built from the regularized incomplete beta
// function — enough statistical machinery for prediction intervals
// without pulling in a stats dependency. Everything here is
// deterministic closed-form arithmetic (continued fraction + bisection),
// so interval bounds are bit-stable across runs and platforms with
// IEEE-754 float64.

// regIncBeta is the regularized incomplete beta function I_x(a, b),
// evaluated by the Lentz continued fraction on whichever tail
// converges fast (the standard Numerical-Recipes arrangement).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf is the continued fraction of the incomplete beta function
// (modified Lentz algorithm).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF is P(T ≤ t) for Student's t with dof degrees of freedom.
func StudentTCDF(t float64, dof int) float64 {
	if dof < 1 {
		return math.NaN()
	}
	v := float64(dof)
	p := 0.5 * regIncBeta(v/2, 0.5, v/(v+t*t))
	if t >= 0 {
		return 1 - p
	}
	return p
}

// StudentTQuantile is the inverse CDF of Student's t: the t with
// P(T ≤ t) = p, found by bisection over the monotone CDF (≈60
// iterations to full float64 resolution — negligible next to the fit
// itself, and free of the accuracy cliffs of series approximations at
// low degrees of freedom, where prediction intervals live).
func StudentTQuantile(p float64, dof int) float64 {
	if dof < 1 || p <= 0 || p >= 1 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -StudentTQuantile(1-p, dof)
	}
	hi := 1.0
	for StudentTCDF(hi, dof) < p {
		hi *= 2
		if hi > 1e300 {
			return math.Inf(1)
		}
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if StudentTCDF(mid, dof) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
