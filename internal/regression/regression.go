// Package regression implements the paper's functional model between
// correlation statistics and compression ratio: the logarithmic
// least-squares fit CR = α + β·log(x) + ε, plus goodness-of-fit
// diagnostics (R², residuals).
package regression

import (
	"fmt"
	"math"

	"lossycorr/internal/linalg"
)

// LogFit is a fitted CR = Alpha + Beta·ln(x) model. Beyond the
// coefficients it carries the sufficient statistics of the fit's
// uncertainty — residual std, regressor mean, and centered sum of
// squares in log space — so prediction intervals can be evaluated (and
// serialized) without retaining the training points.
type LogFit struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	R2    float64 `json:"r2"`
	N     int     `json:"n"`
	// Sigma is the residual standard deviation of the fit (N−2 degrees
	// of freedom; 0 when N ≤ 2 or the fit is exact).
	Sigma float64 `json:"sigma"`
	// MeanLX and SxxLX are the mean and centered sum of squares of the
	// regressor ln(x) over the fitted points.
	MeanLX float64 `json:"meanLX"`
	SxxLX  float64 `json:"sxxLX"`
}

// Predict evaluates the fit at x (x must be positive).
func (f LogFit) Predict(x float64) float64 {
	return f.Alpha + f.Beta*math.Log(x)
}

// PredictInterval evaluates the fit at x together with a two-sided
// prediction interval at the given confidence level (e.g. 0.95): the
// classical t-based interval ŷ ± t_{N−2,(1+level)/2} · σ ·
// √(1 + 1/N + (ln x − mean)²/Sxx). With fewer than three fitted points,
// a zero residual std (exact fit), or a degenerate regressor spread the
// interval collapses to the point estimate — the honest answer when the
// dispersion is unidentifiable.
func (f LogFit) PredictInterval(x, level float64) (y, lo, hi float64) {
	y = f.Predict(x)
	dof := f.N - 2
	if dof < 1 || f.Sigma <= 0 || f.SxxLX <= 0 || level <= 0 || level >= 1 {
		return y, y, y
	}
	lx := math.Log(x)
	d := lx - f.MeanLX
	se := f.Sigma * math.Sqrt(1+1/float64(f.N)+d*d/f.SxxLX)
	h := StudentTQuantile((1+level)/2, dof) * se
	return y, y - h, y + h
}

// String renders the fit the way the paper's figure legends do.
func (f LogFit) String() string {
	return fmt.Sprintf("α=%.3f β=%.3f (R²=%.3f, n=%d)", f.Alpha, f.Beta, f.R2, f.N)
}

// filterLog applies the log-model point filter shared by FitLog,
// Residuals, and CrossValidateLog: points with non-positive or
// non-finite x, or non-finite y, are dropped (the paper drops such
// datapoints too). It returns ln(x) and y of the survivors plus the
// number of points skipped, so callers sizing folds or reporting
// coverage never confuse len(x) with the fitted count.
func filterLog(x, y []float64) (lx, ly []float64, skipped int) {
	for i := range x {
		if x[i] <= 0 || math.IsNaN(x[i]) || math.IsInf(x[i], 0) ||
			math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			skipped++
			continue
		}
		lx = append(lx, math.Log(x[i]))
		ly = append(ly, y[i])
	}
	return lx, ly, skipped
}

// FitLog fits y = α + β·ln(x) by ordinary least squares. Points with
// non-positive or non-finite x, or non-finite y, are skipped (the paper
// drops such datapoints too). At least two usable points are required.
func FitLog(x, y []float64) (LogFit, error) {
	if len(x) != len(y) {
		return LogFit{}, fmt.Errorf("regression: length mismatch %d vs %d", len(x), len(y))
	}
	lx, ly, _ := filterLog(x, y)
	return fitLogSpace(lx, ly)
}

// fitLogSpace fits y = α + β·v over already-log-transformed regressors.
func fitLogSpace(lx, ly []float64) (LogFit, error) {
	if len(lx) < 2 {
		return LogFit{}, fmt.Errorf("regression: only %d usable points", len(lx))
	}
	coeffs, err := linalg.PolyFit(lx, ly, 1)
	if err != nil {
		return LogFit{}, err
	}
	fit := LogFit{Alpha: coeffs[0], Beta: coeffs[1], N: len(lx)}
	fit.R2 = rSquared(lx, ly, func(v float64) float64 { return fit.Alpha + fit.Beta*v })
	mean := linalg.Mean(lx)
	var sxx, ssRes float64
	for i := range lx {
		d := lx[i] - mean
		sxx += d * d
		r := ly[i] - (fit.Alpha + fit.Beta*lx[i])
		ssRes += r * r
	}
	fit.MeanLX, fit.SxxLX = mean, sxx
	if dof := len(lx) - 2; dof > 0 {
		fit.Sigma = math.Sqrt(ssRes / float64(dof))
	}
	return fit, nil
}

// LinFit is a fitted y = Alpha + Beta·x model, used for statistics that
// can be zero (e.g. std of SVD truncation levels on uniform fields).
type LinFit struct {
	Alpha, Beta float64
	R2          float64
	N           int
}

// Predict evaluates the linear fit at x.
func (f LinFit) Predict(x float64) float64 { return f.Alpha + f.Beta*x }

// FitLinear fits y = α + β·x by ordinary least squares, skipping
// non-finite points.
func FitLinear(x, y []float64) (LinFit, error) {
	if len(x) != len(y) {
		return LinFit{}, fmt.Errorf("regression: length mismatch %d vs %d", len(x), len(y))
	}
	var fx, fy []float64
	for i := range x {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			continue
		}
		fx = append(fx, x[i])
		fy = append(fy, y[i])
	}
	if len(fx) < 2 {
		return LinFit{}, fmt.Errorf("regression: only %d usable points", len(fx))
	}
	coeffs, err := linalg.PolyFit(fx, fy, 1)
	if err != nil {
		return LinFit{}, err
	}
	fit := LinFit{Alpha: coeffs[0], Beta: coeffs[1], N: len(fx)}
	fit.R2 = rSquared(fx, fy, fit.Predict)
	return fit, nil
}

func rSquared(x, y []float64, predict func(float64) float64) float64 {
	mean := linalg.Mean(y)
	var ssRes, ssTot float64
	for i := range x {
		d := y[i] - predict(x[i])
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Residuals returns y[i] − fit(x[i]) for a log fit, skipping unusable
// points (same filter as FitLog), for dispersion diagnostics. The
// second return is how many points the filter dropped — callers
// deriving counts (fold sizes, coverage rates) from len(x) would
// otherwise be silently wrong whenever the input holds degenerate
// points.
func Residuals(f LogFit, x, y []float64) ([]float64, int) {
	lx, ly, skipped := filterLog(x, y)
	out := make([]float64, len(lx))
	for i := range lx {
		out[i] = ly[i] - (f.Alpha + f.Beta*lx[i])
	}
	return out, skipped
}
