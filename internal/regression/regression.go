// Package regression implements the paper's functional model between
// correlation statistics and compression ratio: the logarithmic
// least-squares fit CR = α + β·log(x) + ε, plus goodness-of-fit
// diagnostics (R², residuals).
package regression

import (
	"fmt"
	"math"

	"lossycorr/internal/linalg"
)

// LogFit is a fitted CR = Alpha + Beta·ln(x) model.
type LogFit struct {
	Alpha, Beta float64
	R2          float64
	N           int
}

// Predict evaluates the fit at x (x must be positive).
func (f LogFit) Predict(x float64) float64 {
	return f.Alpha + f.Beta*math.Log(x)
}

// String renders the fit the way the paper's figure legends do.
func (f LogFit) String() string {
	return fmt.Sprintf("α=%.3f β=%.3f (R²=%.3f, n=%d)", f.Alpha, f.Beta, f.R2, f.N)
}

// FitLog fits y = α + β·ln(x) by ordinary least squares. Points with
// non-positive or non-finite x, or non-finite y, are skipped (the paper
// drops such datapoints too). At least two usable points are required.
func FitLog(x, y []float64) (LogFit, error) {
	if len(x) != len(y) {
		return LogFit{}, fmt.Errorf("regression: length mismatch %d vs %d", len(x), len(y))
	}
	var lx, ly []float64
	for i := range x {
		if x[i] <= 0 || math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			continue
		}
		if math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			continue
		}
		lx = append(lx, math.Log(x[i]))
		ly = append(ly, y[i])
	}
	if len(lx) < 2 {
		return LogFit{}, fmt.Errorf("regression: only %d usable points", len(lx))
	}
	coeffs, err := linalg.PolyFit(lx, ly, 1)
	if err != nil {
		return LogFit{}, err
	}
	fit := LogFit{Alpha: coeffs[0], Beta: coeffs[1], N: len(lx)}
	fit.R2 = rSquared(lx, ly, func(v float64) float64 { return fit.Alpha + fit.Beta*v })
	return fit, nil
}

// LinFit is a fitted y = Alpha + Beta·x model, used for statistics that
// can be zero (e.g. std of SVD truncation levels on uniform fields).
type LinFit struct {
	Alpha, Beta float64
	R2          float64
	N           int
}

// Predict evaluates the linear fit at x.
func (f LinFit) Predict(x float64) float64 { return f.Alpha + f.Beta*x }

// FitLinear fits y = α + β·x by ordinary least squares, skipping
// non-finite points.
func FitLinear(x, y []float64) (LinFit, error) {
	if len(x) != len(y) {
		return LinFit{}, fmt.Errorf("regression: length mismatch %d vs %d", len(x), len(y))
	}
	var fx, fy []float64
	for i := range x {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			continue
		}
		fx = append(fx, x[i])
		fy = append(fy, y[i])
	}
	if len(fx) < 2 {
		return LinFit{}, fmt.Errorf("regression: only %d usable points", len(fx))
	}
	coeffs, err := linalg.PolyFit(fx, fy, 1)
	if err != nil {
		return LinFit{}, err
	}
	fit := LinFit{Alpha: coeffs[0], Beta: coeffs[1], N: len(fx)}
	fit.R2 = rSquared(fx, fy, fit.Predict)
	return fit, nil
}

func rSquared(x, y []float64, predict func(float64) float64) float64 {
	mean := linalg.Mean(y)
	var ssRes, ssTot float64
	for i := range x {
		d := y[i] - predict(x[i])
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Residuals returns y[i] − fit(x[i]) for a log fit, skipping unusable
// points (same filter as FitLog), for dispersion diagnostics.
func Residuals(f LogFit, x, y []float64) []float64 {
	var out []float64
	for i := range x {
		if x[i] <= 0 || math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			continue
		}
		if math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			continue
		}
		out = append(out, y[i]-f.Predict(x[i]))
	}
	return out
}
