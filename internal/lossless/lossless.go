// Package lossless wraps the stdlib DEFLATE codec (compress/flate) used
// as the final lossless stage of every lossy compressor in this
// repository, standing in for the Zstd/Zlib back ends of SZ and MGARD.
// It also provides the byte-shuffle filter that groups same-significance
// bytes of fixed-width records, which dramatically improves DEFLATE's
// ratio on quantized scientific data.
package lossless

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Compress deflates data at the maximum compression level.
func Compress(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		return nil, fmt.Errorf("lossless: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return nil, fmt.Errorf("lossless: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("lossless: %w", err)
	}
	return buf.Bytes(), nil
}

// Decompress inflates data produced by Compress.
func Decompress(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("lossless: inflate: %w", err)
	}
	return out, nil
}

// Shuffle reorders data so that byte k of every width-sized record is
// contiguous (a transpose of the records×width byte matrix). len(data)
// must be a multiple of width.
func Shuffle(data []byte, width int) ([]byte, error) {
	if width <= 0 || len(data)%width != 0 {
		return nil, fmt.Errorf("lossless: shuffle width %d does not divide %d", width, len(data))
	}
	n := len(data) / width
	out := make([]byte, len(data))
	for i := 0; i < n; i++ {
		for b := 0; b < width; b++ {
			out[b*n+i] = data[i*width+b]
		}
	}
	return out, nil
}

// Unshuffle inverts Shuffle.
func Unshuffle(data []byte, width int) ([]byte, error) {
	if width <= 0 || len(data)%width != 0 {
		return nil, fmt.Errorf("lossless: unshuffle width %d does not divide %d", width, len(data))
	}
	n := len(data) / width
	out := make([]byte, len(data))
	for i := 0; i < n; i++ {
		for b := 0; b < width; b++ {
			out[i*width+b] = data[b*n+i]
		}
	}
	return out, nil
}
