package lossless

import (
	"bytes"
	"testing"
	"testing/quick"

	"lossycorr/internal/xrand"
)

func TestCompressRoundtrip(t *testing.T) {
	data := bytes.Repeat([]byte("scientific data "), 100)
	c, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) >= len(data) {
		t.Fatalf("repetitive data did not compress: %d >= %d", len(c), len(data))
	}
	d, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d, data) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestCompressEmpty(t *testing.T) {
	c, err := Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 0 {
		t.Fatalf("empty roundtrip gave %d bytes", len(d))
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, err := Decompress([]byte{0x42, 0x42, 0x42}); err == nil {
		t.Fatal("garbage should error")
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(data []byte) bool {
		c, err := Compress(data)
		if err != nil {
			return false
		}
		d, err := Decompress(c)
		if err != nil {
			return false
		}
		return bytes.Equal(d, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleRoundtrip(t *testing.T) {
	rng := xrand.New(4)
	data := make([]byte, 8*100)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	s, err := Shuffle(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Unshuffle(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(u, data) {
		t.Fatal("shuffle roundtrip mismatch")
	}
}

func TestShuffleLayout(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6} // two 3-byte records
	s, err := Shuffle(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 4, 2, 5, 3, 6}
	if !bytes.Equal(s, want) {
		t.Fatalf("shuffle %v want %v", s, want)
	}
}

func TestShuffleErrors(t *testing.T) {
	if _, err := Shuffle([]byte{1, 2, 3}, 2); err == nil {
		t.Fatal("expected divisibility error")
	}
	if _, err := Shuffle([]byte{1, 2}, 0); err == nil {
		t.Fatal("expected width error")
	}
	if _, err := Unshuffle([]byte{1, 2, 3}, 2); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestQuickShuffle(t *testing.T) {
	f := func(data []byte) bool {
		width := 8
		data = data[:len(data)/width*width]
		s, err := Shuffle(data, width)
		if err != nil {
			return false
		}
		u, err := Unshuffle(s, width)
		if err != nil {
			return false
		}
		return bytes.Equal(u, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
