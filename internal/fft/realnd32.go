package fft

// Float32-lane real-input transforms in half-spectrum form — the
// complex64 mirror of realnd.go. Same pack-two-reals even last axis,
// same odd-length fallback, same leading-axis complex passes, and the
// same determinism contract; unpack twiddles are computed in float64
// and narrowed once per plan shape. The inverse normalization factor
// is computed in float64 and narrowed once, so only the final per-
// element multiply rounds in float32.

import (
	"fmt"
	"math"

	"lossycorr/internal/parallel"
)

// EmbedReal32 zero-fills dst (shape dstDims) and copies the float32
// field src (shape srcDims, same rank, extents <= dstDims) into its
// leading corner.
func EmbedReal32(dst []float32, dstDims []int, src []float32, srcDims []int) error {
	n := 1
	for _, d := range dstDims {
		n *= d
	}
	if len(dst) != n {
		return fmt.Errorf("fft: pad buffer length %d != product of %v", len(dst), dstDims)
	}
	for i := range dst {
		dst[i] = 0
	}
	return ForEachEmbeddedRow(srcDims, dstDims, func(srcOff, dstOff, n int) {
		copy(dst[dstOff:dstOff+n], src[srcOff:srcOff+n])
	})
}

// realTwiddles32 returns exp(-2πik/n) for k = 0..n/2 as complex64.
func realTwiddles32(n int) []complex64 {
	w := make([]complex64, n/2+1)
	for k := range w {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		w[k] = complex(float32(c), float32(s))
	}
	return w
}

// lineSpans32 is forLineSpans with complex64 scratch: at most `workers`
// contiguous spans, one pooled scratch per span, fn once per line.
func lineSpans32(lines, workers, scratchLen int, fn func(y []complex64, line int)) {
	spans := parallel.Resolve(workers, lines)
	per := (lines + spans - 1) / spans
	parallel.For(spans, spans, func(s int) {
		lo, hi := s*per, (s+1)*per
		if hi > lines {
			hi = lines
		}
		if lo >= hi {
			return
		}
		y := AcquireComplex64(scratchLen)
		defer ReleaseComplex64(y)
		for line := lo; line < hi; line++ {
			fn(y, line)
		}
	})
}

// ForwardRealND32 computes the unnormalized forward DFT of the float32
// row-major field src (shape dims, any extents) into dst in
// half-spectrum form; len(dst) must be HalfLen(dims). dst is fully
// overwritten. Bit-identical at any worker count.
func ForwardRealND32(src []float32, dims []int, dst []complex64, workers int) error {
	nd := len(dims)
	if nd == 0 {
		return fmt.Errorf("fft: rank-0 transform")
	}
	total := 1
	for _, d := range dims {
		if d < 1 {
			return fmt.Errorf("fft: extent %d is not positive", d)
		}
		total *= d
	}
	if len(src) != total {
		return fmt.Errorf("fft: real buffer length %d != product of %v", len(src), dims)
	}
	if len(dst) != HalfLen(dims) {
		return fmt.Errorf("fft: half-spectrum length %d != HalfLen %d", len(dst), HalfLen(dims))
	}
	nx := dims[nd-1]
	hc := nx/2 + 1
	lines := total / nx

	if nx%2 == 0 && nx > 1 {
		N := nx / 2
		p := planFor32(N)
		rw := realTwiddles32(nx)
		lineSpans32(lines, workers, N, func(y []complex64, li int) {
			in := src[li*nx : (li+1)*nx]
			out := dst[li*hc : (li+1)*hc]
			for j := 0; j < N; j++ {
				y[j] = complex(in[2*j], in[2*j+1])
			}
			p.transform(y, false)
			for k := 0; k <= N; k++ {
				yk := y[k%N]
				ynk := y[(N-k)%N]
				cynk := complex(real(ynk), -imag(ynk))
				e := (yk + cynk) * 0.5
				o := (yk - cynk) * complex(0, -0.5)
				out[k] = e + rw[k]*o
			}
		})
	} else {
		p := planFor32(nx)
		lineSpans32(lines, workers, nx, func(y []complex64, li int) {
			in := src[li*nx : (li+1)*nx]
			for j, v := range in {
				y[j] = complex(v, 0)
			}
			p.transform(y, false)
			copy(dst[li*hc:(li+1)*hc], y[:hc])
		})
	}

	hd := halfDims(dims)
	for axis := nd - 2; axis >= 0; axis-- {
		axisPass32(dst, hd, axis, workers, false)
	}
	return nil
}

// InverseRealND32 inverts ForwardRealND32: spec is a half-spectrum of
// shape dims (it is clobbered), dst receives the float32 field and
// must have length = product of dims. InverseRealND32(ForwardRealND32(x))
// == x up to float32 roundoff. Bit-identical at any worker count.
func InverseRealND32(spec []complex64, dims []int, dst []float32, workers int) error {
	nd := len(dims)
	if nd == 0 {
		return fmt.Errorf("fft: rank-0 transform")
	}
	total := 1
	for _, d := range dims {
		if d < 1 {
			return fmt.Errorf("fft: extent %d is not positive", d)
		}
		total *= d
	}
	if len(dst) != total {
		return fmt.Errorf("fft: real buffer length %d != product of %v", len(dst), dims)
	}
	if len(spec) != HalfLen(dims) {
		return fmt.Errorf("fft: half-spectrum length %d != HalfLen %d", len(spec), HalfLen(dims))
	}
	nx := dims[nd-1]
	hc := nx/2 + 1
	lines := total / nx
	lead := lines

	hd := halfDims(dims)
	for axis := 0; axis < nd-1; axis++ {
		axisPass32(spec, hd, axis, workers, true)
	}

	if nx%2 == 0 && nx > 1 {
		N := nx / 2
		p := planFor32(N)
		rw := realTwiddles32(nx)
		scale := float32(1 / (float64(N) * float64(lead)))
		lineSpans32(lines, workers, N, func(y []complex64, li int) {
			in := spec[li*hc : (li+1)*hc]
			out := dst[li*nx : (li+1)*nx]
			for k := 0; k < N; k++ {
				xk := in[k]
				xnk := in[N-k]
				cxnk := complex(real(xnk), -imag(xnk))
				e := (xk + cxnk) * 0.5
				o := (xk - cxnk) * 0.5 * complex(real(rw[k]), -imag(rw[k]))
				y[k] = e + o*complex(0, 1)
			}
			p.transform(y, true)
			for j := 0; j < N; j++ {
				out[2*j] = real(y[j]) * scale
				out[2*j+1] = imag(y[j]) * scale
			}
		})
	} else {
		p := planFor32(nx)
		scale := float32(1 / (float64(nx) * float64(lead)))
		lineSpans32(lines, workers, nx, func(y []complex64, li int) {
			in := spec[li*hc : (li+1)*hc]
			out := dst[li*nx : (li+1)*nx]
			copy(y[:hc], in)
			for k := hc; k < nx; k++ {
				v := in[nx-k]
				y[k] = complex(real(v), -imag(v))
			}
			p.transform(y, true)
			for j := 0; j < nx; j++ {
				out[j] = real(y[j]) * scale
			}
		})
	}
	return nil
}

// MulConj32 sets a[i] = conj(a[i])·b[i] on complex64 half-spectra.
func MulConj32(a, b []complex64) {
	for i, v := range a {
		a[i] = complex(real(v), -imag(v)) * b[i]
	}
}

// AbsSq32 sets a[i] = |a[i]|² on a complex64 half-spectrum.
func AbsSq32(a []complex64) {
	for i, v := range a {
		a[i] = complex(real(v)*real(v)+imag(v)*imag(v), 0)
	}
}
