package fft

// Rank-generic transforms and the shared complex-buffer pool. The ND
// transform is the numerical engine of the variogram FFT fast path: one
// axis pass per dimension, each pass sharing a single twiddle table and
// fanning its (independent) lines out over the process-wide worker
// pool. Lines along the last axis are contiguous and transform in
// place; other axes gather each strided line into a per-span scratch.

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"lossycorr/internal/parallel"
)

// The buffer pools bucket reusable slices by capacity so the repeated
// large scratch buffers of the variogram FFT engine and the samplers
// are recycled instead of re-allocated per call.
//
// Bucket contract: bucket b holds buffers whose capacity lies in
// [2^b, 2^(b+1)) — Release files by floor(log2(cap)), so buffers with
// non-power-of-two capacities (exact-size allocations, Bluestein
// scratch, re-sliced tails) are retained rather than dropped. Acquire
// first pops the ceil(log2(n)) bucket, whose buffers all fit by
// construction, then tries the floor bucket below it with an explicit
// fit check (returning a too-small buffer to its bucket), and only
// then allocates — at exactly the requested length, not the next power
// of two, so a half-spectrum never drags a 2× capacity behind it and a
// re-acquired same-size buffer is found one bucket down.
var (
	complexPools [64]sync.Pool
	realPools    [64]sync.Pool
)

// Live/peak accounting of acquired (checked-out) pool bytes. This is
// the transform-buffer working set of whatever engine is running — the
// number the memory smoke tests and the bench gauges report.
var (
	poolLiveBytes atomic.Int64
	poolPeakBytes atomic.Int64
)

func accountAcquire(bytes int64) {
	l := poolLiveBytes.Add(bytes)
	for {
		p := poolPeakBytes.Load()
		if l <= p || poolPeakBytes.CompareAndSwap(p, l) {
			return
		}
	}
}

// ResetPeakBytes restarts the high-water mark of checked-out pool
// bytes at the current live level.
func ResetPeakBytes() { poolPeakBytes.Store(poolLiveBytes.Load()) }

// PeakBytes returns the high-water mark of simultaneously checked-out
// pool bytes (complex and real buffers) since the last ResetPeakBytes.
func PeakBytes() int64 { return poolPeakBytes.Load() }

// LiveBytes returns the currently checked-out pool bytes.
func LiveBytes() int64 { return poolLiveBytes.Load() }

// acquireBucket is ceil(log2(n)): every buffer filed in this bucket has
// capacity >= 2^bucket >= n.
func acquireBucket(n int) int { return bits.Len(uint(n - 1)) }

// releaseBucket is floor(log2(c)): the largest bucket whose fit
// guarantee capacity c can honor.
func releaseBucket(c int) int { return bits.Len(uint(c)) - 1 }

// AcquireComplex returns a buffer of length n (contents unspecified)
// from the pool, allocating a power-of-two-capacity one on miss.
// Release it with ReleaseComplex when done.
func AcquireComplex(n int) []complex128 {
	if n <= 0 {
		return nil
	}
	b := acquireBucket(n)
	if v := complexPools[b].Get(); v != nil {
		buf := *(v.(*[]complex128))
		accountAcquire(int64(cap(buf)) * 16)
		return buf[:n]
	}
	if b > 0 {
		if v := complexPools[b-1].Get(); v != nil {
			p := v.(*[]complex128)
			if cap(*p) >= n {
				buf := *p
				accountAcquire(int64(cap(buf)) * 16)
				return buf[:n]
			}
			complexPools[b-1].Put(p) // fits smaller requests; keep it
		}
	}
	buf := make([]complex128, n)
	accountAcquire(int64(cap(buf)) * 16)
	return buf
}

// ReleaseComplex returns a buffer obtained from AcquireComplex to the
// pool. Buffers of any capacity are accepted (non-power-of-two
// capacities are filed by floor(log2(cap)) and keep serving smaller
// requests). The caller must not use the slice afterwards.
func ReleaseComplex(buf []complex128) {
	c := cap(buf)
	if c == 0 {
		return
	}
	poolLiveBytes.Add(-int64(c) * 16)
	buf = buf[:c]
	complexPools[releaseBucket(c)].Put(&buf)
}

// AcquireReal returns a []float64 of length n (contents unspecified)
// from the real-typed pool — the padded-field and correlation-plane
// storage of the real-input engine. Release with ReleaseReal.
func AcquireReal(n int) []float64 {
	if n <= 0 {
		return nil
	}
	b := acquireBucket(n)
	if v := realPools[b].Get(); v != nil {
		buf := *(v.(*[]float64))
		accountAcquire(int64(cap(buf)) * 8)
		return buf[:n]
	}
	if b > 0 {
		if v := realPools[b-1].Get(); v != nil {
			p := v.(*[]float64)
			if cap(*p) >= n {
				buf := *p
				accountAcquire(int64(cap(buf)) * 8)
				return buf[:n]
			}
			realPools[b-1].Put(p)
		}
	}
	buf := make([]float64, n)
	accountAcquire(int64(cap(buf)) * 8)
	return buf
}

// AcquireRealTight is AcquireReal for budget-critical consumers: a
// pooled buffer is accepted only when its capacity is at most 2n, so
// the cap-based accounting of a tight acquisition never exceeds twice
// the requested bytes (a plain acquire can carry up to ~4× from bucket
// slack; a miss allocates exactly n either way). The streaming
// analysis plans its tiles and shards against half the memory budget;
// together the two factors keep the peak gauge under the budget even
// on a warm pool. Release with ReleaseReal as usual.
func AcquireRealTight(n int) []float64 {
	if n <= 0 {
		return nil
	}
	b := acquireBucket(n)
	if v := realPools[b].Get(); v != nil {
		p := v.(*[]float64)
		if int64(cap(*p)) <= 2*int64(n) {
			buf := *p
			accountAcquire(int64(cap(buf)) * 8)
			return buf[:n]
		}
		realPools[b].Put(p) // too slack for a budgeted consumer; keep it
	}
	if b > 0 {
		if v := realPools[b-1].Get(); v != nil {
			p := v.(*[]float64)
			if cap(*p) >= n { // one-below caps are < 2^b <= 2n by construction
				buf := *p
				accountAcquire(int64(cap(buf)) * 8)
				return buf[:n]
			}
			realPools[b-1].Put(p)
		}
	}
	buf := make([]float64, n)
	accountAcquire(int64(cap(buf)) * 8)
	return buf
}

// AcquireComplexTight is AcquireRealTight's complex sibling: pooled
// hits are accepted only under 2n capacity, bounding accounted slack
// for the budgeted spectral shards. Release with ReleaseComplex.
func AcquireComplexTight(n int) []complex128 {
	if n <= 0 {
		return nil
	}
	b := acquireBucket(n)
	if v := complexPools[b].Get(); v != nil {
		p := v.(*[]complex128)
		if int64(cap(*p)) <= 2*int64(n) {
			buf := *p
			accountAcquire(int64(cap(buf)) * 16)
			return buf[:n]
		}
		complexPools[b].Put(p)
	}
	if b > 0 {
		if v := complexPools[b-1].Get(); v != nil {
			p := v.(*[]complex128)
			if cap(*p) >= n {
				buf := *p
				accountAcquire(int64(cap(buf)) * 16)
				return buf[:n]
			}
			complexPools[b-1].Put(p)
		}
	}
	buf := make([]complex128, n)
	accountAcquire(int64(cap(buf)) * 16)
	return buf
}

// ReleaseReal returns a buffer obtained from AcquireReal to the pool,
// under the same any-capacity contract as ReleaseComplex.
func ReleaseReal(buf []float64) {
	c := cap(buf)
	if c == 0 {
		return
	}
	poolLiveBytes.Add(-int64(c) * 8)
	buf = buf[:c]
	realPools[releaseBucket(c)].Put(&buf)
}

// ForEachEmbeddedRow visits the contiguous last-dimension runs of a
// srcDims-shaped field embedded in the leading corner of a
// dstDims-shaped buffer, yielding (srcOff, dstOff, n) per run — the
// one odometer walk beneath PadReal and the variogram engine's
// indicator-mask fill. Extents of srcDims must not exceed dstDims.
func ForEachEmbeddedRow(srcDims, dstDims []int, fn func(srcOff, dstOff, n int)) error {
	if len(dstDims) != len(srcDims) {
		return fmt.Errorf("fft: embed rank mismatch %v vs %v", srcDims, dstDims)
	}
	total := 1
	for k, d := range dstDims {
		if srcDims[k] > d {
			return fmt.Errorf("fft: embed extent %d exceeds padded extent %d", srcDims[k], d)
		}
		total *= srcDims[k]
	}
	nd := len(srcDims)
	if nd == 0 || total == 0 {
		return nil
	}
	// Destination strides.
	strides := make([]int, nd)
	acc := 1
	for k := nd - 1; k >= 0; k-- {
		strides[k] = acc
		acc *= dstDims[k]
	}
	inner := srcDims[nd-1]
	outer := make([]int, nd-1)
	srcOff := 0
	for {
		dstOff := 0
		for k := 0; k < nd-1; k++ {
			dstOff += outer[k] * strides[k]
		}
		fn(srcOff, dstOff, inner)
		srcOff += inner
		k := nd - 2
		for ; k >= 0; k-- {
			outer[k]++
			if outer[k] < srcDims[k] {
				break
			}
			outer[k] = 0
		}
		if k < 0 {
			break
		}
	}
	return nil
}

// PadReal zero-fills dst (whose shape is dstDims) and copies the real
// field src (shape srcDims, same rank, extents <= dstDims) into its
// leading corner — the zero-padding step of a linear (non-circular)
// correlation. Rows of the last dimension are copied contiguously.
func PadReal(dst []complex128, dstDims []int, src []float64, srcDims []int) error {
	n := 1
	for _, d := range dstDims {
		n *= d
	}
	if len(dst) != n {
		return fmt.Errorf("fft: pad buffer length %d != product of %v", len(dst), dstDims)
	}
	for i := range dst {
		dst[i] = 0
	}
	return ForEachEmbeddedRow(srcDims, dstDims, func(srcOff, dstOff, n int) {
		for i, v := range src[srcOff : srcOff+n] {
			dst[dstOff+i] = complex(v, 0)
		}
	})
}

// ForwardND computes the in-place unnormalized forward DFT of a
// row-major buffer of any rank and any extents: powers of two run the
// radix-2 core, 7-smooth extents the mixed-radix plan, everything else
// Bluestein. Each axis pass runs its independent lines on the shared
// worker pool (workers <= 0 means GOMAXPROCS); line transforms write
// disjoint regions, so the result is bit-identical at any worker count.
func ForwardND(x []complex128, dims []int, workers int) error {
	return transformND(x, dims, workers, false)
}

// InverseND computes the normalized in-place inverse ND DFT so that
// InverseND(ForwardND(x)) == x.
func InverseND(x []complex128, dims []int, workers int) error {
	if err := transformND(x, dims, workers, true); err != nil {
		return err
	}
	inv := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= inv
	}
	return nil
}

func transformND(x []complex128, dims []int, workers int, inverse bool) error {
	n := 1
	for _, d := range dims {
		if d < 1 {
			return fmt.Errorf("fft: extent %d is not positive", d)
		}
		n *= d
	}
	if len(x) != n {
		return fmt.Errorf("fft: buffer length %d != product of %v", len(x), dims)
	}
	if n <= 1 {
		return nil
	}
	for axis := len(dims) - 1; axis >= 0; axis-- {
		axisPass(x, dims, axis, workers, inverse)
	}
	return nil
}

// axisPass transforms every line of x along the given axis. The plan
// (twiddle tables, factorization, chirp filter) is cached per length
// and shared (read-only) by all lines; lines are split into at most
// `workers` contiguous spans so each span needs one scratch buffer, not
// one per line.
func axisPass(x []complex128, dims []int, axis, workers int, inverse bool) {
	d := dims[axis]
	if d <= 1 {
		return
	}
	p := planFor(d)
	stride := 1
	for k := axis + 1; k < len(dims); k++ {
		stride *= dims[k]
	}
	lines := len(x) / d
	if axis == len(dims)-1 {
		// Contiguous lines: transform in place.
		parallel.For(lines, workers, func(i int) {
			p.transform(x[i*d:(i+1)*d], inverse)
		})
		return
	}
	// Strided lines: line (o, i) starts at o*d*stride + i, elements
	// stride apart. Split lines into spans, one scratch per span.
	spans := parallel.Resolve(workers, lines)
	per := (lines + spans - 1) / spans
	parallel.For(spans, spans, func(s int) {
		lo, hi := s*per, (s+1)*per
		if hi > lines {
			hi = lines
		}
		if lo >= hi {
			return
		}
		scratch := AcquireComplex(d)
		defer ReleaseComplex(scratch)
		for line := lo; line < hi; line++ {
			o, i := line/stride, line%stride
			base := o*d*stride + i
			for k := 0; k < d; k++ {
				scratch[k] = x[base+k*stride]
			}
			p.transform(scratch, inverse)
			for k := 0; k < d; k++ {
				x[base+k*stride] = scratch[k]
			}
		}
	})
}
