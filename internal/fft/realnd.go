package fft

// Real-input transforms in half-spectrum form. A real field's spectrum
// is conjugate-symmetric, so only the last-axis bins k = 0..n/2 need to
// be stored: ForwardRealND produces (and InverseRealND consumes) a
// row-major array whose last extent is n/2+1 instead of n — half the
// complex storage of the full spectrum, and none of the redundant
// arithmetic.
//
// The last axis is the real<->complex boundary. For even extents it
// uses the classic pack-two-reals trick: the n real samples of a line
// are packed into an n/2-point complex FFT whose output is unpicked
// into the n/2+1 hermitian bins with one extra twiddle pass — a real
// line transform at roughly half the cost of a complex one. Odd extents
// (exact Bluestein-length padding) fall back to a full complex line
// transform and keep the first (n+1)/2 bins. Every other axis is an
// ordinary complex axis pass over the half-width array, so the whole
// pipeline inherits the plan layer's any-length support and the
// bit-identical-at-any-worker-count property of axisPass.

import (
	"fmt"
	"math"

	"lossycorr/internal/parallel"
)

// HalfLen returns the element count of the half-spectrum of a real
// field with the given dims: the last axis stores dims[last]/2+1 bins,
// every other axis its full extent.
func HalfLen(dims []int) int {
	if len(dims) == 0 {
		return 0
	}
	n := dims[len(dims)-1]/2 + 1
	for _, d := range dims[:len(dims)-1] {
		n *= d
	}
	return n
}

// halfDims returns dims with the last extent replaced by its
// half-spectrum bin count.
func halfDims(dims []int) []int {
	hd := make([]int, len(dims))
	copy(hd, dims)
	hd[len(dims)-1] = dims[len(dims)-1]/2 + 1
	return hd
}

// EmbedReal zero-fills dst (shape dstDims) and copies the real field
// src (shape srcDims, same rank, extents <= dstDims) into its leading
// corner — the real-typed sibling of PadReal, feeding ForwardRealND
// without a complex-widened staging buffer.
func EmbedReal(dst []float64, dstDims []int, src []float64, srcDims []int) error {
	n := 1
	for _, d := range dstDims {
		n *= d
	}
	if len(dst) != n {
		return fmt.Errorf("fft: pad buffer length %d != product of %v", len(dst), dstDims)
	}
	for i := range dst {
		dst[i] = 0
	}
	return ForEachEmbeddedRow(srcDims, dstDims, func(srcOff, dstOff, n int) {
		copy(dst[dstOff:dstOff+n], src[srcOff:srcOff+n])
	})
}

// realTwiddles returns exp(-2πik/n) for k = 0..n/2, the unpack/repack
// factors of the even-length real last-axis transform.
func realTwiddles(n int) []complex128 {
	w := make([]complex128, n/2+1)
	for k := range w {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		w[k] = complex(c, s)
	}
	return w
}

// forLineSpans splits `lines` into at most `workers` contiguous spans
// on the shared pool, hands each span one pooled complex scratch of
// length scratchLen, and calls fn once per line — the fan-out pattern
// of every last-axis real<->complex pass. Per-line work is independent
// and span boundaries don't affect arithmetic, so results are
// bit-identical at any worker count.
func forLineSpans(lines, workers, scratchLen int, fn func(y []complex128, line int)) {
	spans := parallel.Resolve(workers, lines)
	per := (lines + spans - 1) / spans
	parallel.For(spans, spans, func(s int) {
		lo, hi := s*per, (s+1)*per
		if hi > lines {
			hi = lines
		}
		if lo >= hi {
			return
		}
		y := AcquireComplex(scratchLen)
		defer ReleaseComplex(y)
		for line := lo; line < hi; line++ {
			fn(y, line)
		}
	})
}

// ForwardRealND computes the unnormalized forward DFT of the real
// row-major field src (shape dims, any extents) into dst in
// half-spectrum form; len(dst) must be HalfLen(dims). dst is fully
// overwritten (its prior contents are irrelevant, so pooled buffers
// need no zeroing). The result is bit-identical at any worker count.
func ForwardRealND(src []float64, dims []int, dst []complex128, workers int) error {
	nd := len(dims)
	if nd == 0 {
		return fmt.Errorf("fft: rank-0 transform")
	}
	total := 1
	for _, d := range dims {
		if d < 1 {
			return fmt.Errorf("fft: extent %d is not positive", d)
		}
		total *= d
	}
	if len(src) != total {
		return fmt.Errorf("fft: real buffer length %d != product of %v", len(src), dims)
	}
	if len(dst) != HalfLen(dims) {
		return fmt.Errorf("fft: half-spectrum length %d != HalfLen %d", len(dst), HalfLen(dims))
	}
	nx := dims[nd-1]
	hc := nx/2 + 1
	lines := total / nx

	if nx%2 == 0 && nx > 1 {
		// Even last axis: pack pairs into an nx/2-point complex FFT,
		// then unpick the hermitian bins.
		N := nx / 2
		p := planFor(N)
		rw := realTwiddles(nx)
		forLineSpans(lines, workers, N, func(y []complex128, li int) {
			in := src[li*nx : (li+1)*nx]
			out := dst[li*hc : (li+1)*hc]
			for j := 0; j < N; j++ {
				y[j] = complex(in[2*j], in[2*j+1])
			}
			p.transform(y, false)
			for k := 0; k <= N; k++ {
				yk := y[k%N]
				ynk := y[(N-k)%N]
				cynk := complex(real(ynk), -imag(ynk))
				e := (yk + cynk) * 0.5
				o := (yk - cynk) * complex(0, -0.5)
				out[k] = e + rw[k]*o
			}
		})
	} else {
		// Odd (or unit) last axis: full complex line transform, keep
		// the first hc bins.
		p := planFor(nx)
		forLineSpans(lines, workers, nx, func(y []complex128, li int) {
			in := src[li*nx : (li+1)*nx]
			for j, v := range in {
				y[j] = complex(v, 0)
			}
			p.transform(y, false)
			copy(dst[li*hc:(li+1)*hc], y[:hc])
		})
	}

	// Remaining axes: ordinary complex passes over the half-width array.
	hd := halfDims(dims)
	for axis := nd - 2; axis >= 0; axis-- {
		axisPass(dst, hd, axis, workers, false)
	}
	return nil
}

// InverseRealND inverts ForwardRealND: spec is a half-spectrum of shape
// dims (it is clobbered), dst receives the real field and must have
// length = product of dims. The normalization matches Inverse/InverseND:
// InverseRealND(ForwardRealND(x)) == x. Bit-identical at any worker
// count.
func InverseRealND(spec []complex128, dims []int, dst []float64, workers int) error {
	nd := len(dims)
	if nd == 0 {
		return fmt.Errorf("fft: rank-0 transform")
	}
	total := 1
	for _, d := range dims {
		if d < 1 {
			return fmt.Errorf("fft: extent %d is not positive", d)
		}
		total *= d
	}
	if len(dst) != total {
		return fmt.Errorf("fft: real buffer length %d != product of %v", len(dst), dims)
	}
	if len(spec) != HalfLen(dims) {
		return fmt.Errorf("fft: half-spectrum length %d != HalfLen %d", len(spec), HalfLen(dims))
	}
	nx := dims[nd-1]
	hc := nx/2 + 1
	lines := total / nx
	lead := lines // product of leading extents

	// Leading axes first: unnormalized inverse passes at fixed last-axis
	// bin; per-line hermitian symmetry along the last axis survives them.
	hd := halfDims(dims)
	for axis := 0; axis < nd-1; axis++ {
		axisPass(spec, hd, axis, workers, true)
	}

	if nx%2 == 0 && nx > 1 {
		// Even last axis: rebuild the packed N-point spectrum from the
		// hermitian bins, one unnormalized inverse FFT of length N per
		// line, then unpack interleaved reals.
		N := nx / 2
		p := planFor(N)
		rw := realTwiddles(nx)
		scale := 1 / (float64(N) * float64(lead))
		forLineSpans(lines, workers, N, func(y []complex128, li int) {
			in := spec[li*hc : (li+1)*hc]
			out := dst[li*nx : (li+1)*nx]
			for k := 0; k < N; k++ {
				xk := in[k]
				xnk := in[N-k]
				cxnk := complex(real(xnk), -imag(xnk))
				e := (xk + cxnk) * 0.5
				o := (xk - cxnk) * 0.5 * complex(real(rw[k]), -imag(rw[k]))
				y[k] = e + o*complex(0, 1)
			}
			p.transform(y, true)
			for j := 0; j < N; j++ {
				out[2*j] = real(y[j]) * scale
				out[2*j+1] = imag(y[j]) * scale
			}
		})
	} else {
		// Odd (or unit) last axis: mirror the hermitian bins into a full
		// line, one unnormalized complex inverse, keep the real parts.
		p := planFor(nx)
		scale := 1 / (float64(nx) * float64(lead))
		forLineSpans(lines, workers, nx, func(y []complex128, li int) {
			in := spec[li*hc : (li+1)*hc]
			out := dst[li*nx : (li+1)*nx]
			copy(y[:hc], in)
			for k := hc; k < nx; k++ {
				v := in[nx-k]
				y[k] = complex(real(v), -imag(v))
			}
			p.transform(y, true)
			for j := 0; j < nx; j++ {
				out[j] = real(y[j]) * scale
			}
		})
	}
	return nil
}

// MulConj sets a[i] = conj(a[i])·b[i] — the cross-correlation spectrum
// of the two real signals whose half-spectra a and b hold. The product
// of a conjugated hermitian spectrum with a hermitian spectrum is
// hermitian, so the result is a valid InverseRealND input.
func MulConj(a, b []complex128) {
	for i, v := range a {
		a[i] = complex(real(v), -imag(v)) * b[i]
	}
}

// AbsSq sets a[i] = |a[i]|² — the autocorrelation spectrum of the real
// signal whose half-spectrum a holds. Real and even, hence hermitian: a
// valid InverseRealND input.
func AbsSq(a []complex128) {
	for i, v := range a {
		a[i] = complex(real(v)*real(v)+imag(v)*imag(v), 0)
	}
}

// MulConjScale sets a[i] = s·conj(a[i])·b[i] — a scaled cross-spectrum,
// hermitian for the same reason MulConj's result is. The sharded
// streaming variogram uses it to seed its structure-function
// accumulator with the −2·c_zz term in place.
func MulConjScale(a, b []complex128, s float64) {
	cs := complex(s, 0)
	for i, v := range a {
		a[i] = cs * complex(real(v), -imag(v)) * b[i]
	}
}

// AddMulConjScale accumulates acc[i] += s·conj(a[i])·b[i] without
// disturbing a or b — the fold step of the sharded streaming variogram,
// which sums three cross-spectra into one accumulator so only one
// inverse transform is needed per shard.
func AddMulConjScale(acc, a, b []complex128, s float64) {
	cs := complex(s, 0)
	for i, v := range a {
		acc[i] += cs * complex(real(v), -imag(v)) * b[i]
	}
}
