package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"lossycorr/internal/xrand"
)

func randComplex(n int, seed uint64) []complex128 {
	rng := xrand.New(seed)
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestForwardNDMatches2D3D pins the ND engine against the existing
// fixed-rank transforms.
func TestForwardNDMatches2D3D(t *testing.T) {
	x := randComplex(16*32, 1)
	ref := append([]complex128(nil), x...)
	if err := Forward2D(ref, 16, 32); err != nil {
		t.Fatal(err)
	}
	got := append([]complex128(nil), x...)
	if err := ForwardND(got, []int{16, 32}, 1); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(ref, got); d > 1e-9 {
		t.Fatalf("2D mismatch %g", d)
	}

	y := randComplex(8*16*4, 2)
	ref3 := append([]complex128(nil), y...)
	if err := Forward3D(ref3, 8, 16, 4); err != nil {
		t.Fatal(err)
	}
	got3 := append([]complex128(nil), y...)
	if err := ForwardND(got3, []int{8, 16, 4}, 1); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(ref3, got3); d > 1e-9 {
		t.Fatalf("3D mismatch %g", d)
	}
}

// TestNDRoundTripAndWorkers checks InverseND(ForwardND(x)) == x and
// that every worker count produces bit-identical spectra (line
// transforms write disjoint regions; twiddle tables are shared
// read-only).
func TestNDRoundTripAndWorkers(t *testing.T) {
	for _, dims := range [][]int{{64}, {8, 32}, {4, 8, 16}, {2, 4, 4, 8}} {
		n := 1
		for _, d := range dims {
			n *= d
		}
		x := randComplex(n, 7)
		ref := append([]complex128(nil), x...)
		if err := ForwardND(ref, dims, 1); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5, 16} {
			got := append([]complex128(nil), x...)
			if err := ForwardND(got, dims, workers); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("dims %v workers %d: spectrum differs at %d", dims, workers, i)
				}
			}
			if err := InverseND(got, dims, workers); err != nil {
				t.Fatal(err)
			}
			if d := maxDiff(got, x); d > 1e-9*float64(n) {
				t.Fatalf("dims %v workers %d: roundtrip error %g", dims, workers, d)
			}
		}
	}
}

func TestNDRejectsBadShapes(t *testing.T) {
	x := make([]complex128, 12)
	if err := ForwardND(x, []int{3, 4}, 1); err != nil {
		t.Fatalf("non-power-of-two extents must be accepted now: %v", err)
	}
	if err := ForwardND(x, []int{4, 4}, 1); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if err := ForwardND(x, []int{-3, -4}, 1); err == nil {
		t.Fatal("expected non-positive extent error")
	}
}

// TestPadReal checks the zero-padded corner embedding and its bounds
// checks.
func TestPadReal(t *testing.T) {
	src := []float64{1, 2, 3, 4, 5, 6} // 2×3
	dst := make([]complex128, 4*4)
	for i := range dst {
		dst[i] = complex(9, 9) // must be cleared
	}
	if err := PadReal(dst, []int{4, 4}, src, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := 0.0
			if r < 2 && c < 3 {
				want = src[r*3+c]
			}
			if got := dst[r*4+c]; real(got) != want || imag(got) != 0 {
				t.Fatalf("dst[%d,%d] = %v, want %v", r, c, got, want)
			}
		}
	}
	if err := PadReal(dst, []int{4, 4}, src, []int{2, 5}); err == nil {
		t.Fatal("expected extent error")
	}
	if err := PadReal(dst, []int{4}, src, []int{2, 3}); err == nil {
		t.Fatal("expected rank error")
	}
}

// TestComplexPoolReuse checks the buffer pool hands back released
// buffers instead of allocating fresh ones.
func TestComplexPoolReuse(t *testing.T) {
	a := AcquireComplex(1000) // allocates at exact size now, no 1024 rounding
	if len(a) != 1000 || cap(a) < 1000 {
		t.Fatalf("len %d cap %d", len(a), cap(a))
	}
	a[0] = 42
	ReleaseComplex(a)
	// Exact-size caps are filed one bucket down (floor log2) and must be
	// found again by a same-or-smaller request. sync.Pool randomly drops
	// Puts under the race detector, so allow a few attempts (a failed
	// attempt's undersized buffer is deliberately not re-pooled).
	reused := false
	for attempt := 0; attempt < 20 && !reused; attempt++ {
		b := AcquireComplex(900)
		reused = cap(b) >= 1000
		if reused {
			ReleaseComplex(b)
		} else {
			ReleaseComplex(AcquireComplex(1000))
		}
	}
	if !reused {
		t.Fatal("pooled buffer never came back")
	}
	if AcquireComplex(0) != nil {
		t.Fatal("AcquireComplex(0) should be nil")
	}
	ReleaseComplex(nil) // must not panic

	allocs := testing.AllocsPerRun(100, func() {
		buf := AcquireComplex(512)
		ReleaseComplex(buf)
	})
	// One interface-boxing alloc per Put is the sync.Pool floor; a
	// fresh 512-element buffer per run would cost far more.
	if allocs > 2 {
		t.Fatalf("acquire/release allocates %v per cycle", allocs)
	}
}

// TestNextPow2Padding sanity-checks the padding arithmetic the
// variogram engine relies on: NextPow2(d+L) >= d+L keeps circular
// correlation linear for |h| <= L.
func TestNextPow2Padding(t *testing.T) {
	for _, d := range []int{1, 7, 37, 64, 1028} {
		for _, l := range []int{1, 5, 514} {
			p := NextPow2(d + l)
			if p < d+l || !IsPow2(p) {
				t.Fatalf("NextPow2(%d+%d) = %d", d, l, p)
			}
		}
	}
	if math.Abs(float64(NextPow2(1))-1) != 0 {
		t.Fatal("NextPow2(1) != 1")
	}
}
