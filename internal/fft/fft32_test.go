package fft

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator for test fields (no xrand
// dependency from inside the fft package).
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(uint32(*r>>32))/float64(1<<32) - 0.5
}

// TestRealND32RoundTrip pins InverseRealND32(ForwardRealND32(x)) == x
// to float32 roundoff across pow2, mixed-radix, Bluestein, and odd
// last-axis extents, at several worker counts.
func TestRealND32RoundTrip(t *testing.T) {
	shapes := [][]int{
		{16}, {30}, {13}, {8, 8}, {12, 10}, {7, 11}, {6, 9}, {4, 6, 10}, {5, 7, 13},
	}
	for _, dims := range shapes {
		total := 1
		for _, d := range dims {
			total *= d
		}
		src := make([]float32, total)
		r := lcg(7)
		for i := range src {
			src[i] = float32(r.next())
		}
		var ref []float32
		for _, workers := range []int{1, 3, 8} {
			spec := AcquireComplex64(HalfLen(dims))
			out := make([]float32, total)
			if err := ForwardRealND32(src, dims, spec, workers); err != nil {
				t.Fatalf("dims %v: %v", dims, err)
			}
			if err := InverseRealND32(spec, dims, out, workers); err != nil {
				t.Fatalf("dims %v: %v", dims, err)
			}
			ReleaseComplex64(spec)
			for i := range out {
				if d := math.Abs(float64(out[i] - src[i])); d > 2e-5 {
					t.Fatalf("dims %v workers %d: round-trip error %g at %d", dims, workers, d, i)
				}
			}
			if ref == nil {
				ref = out
			} else {
				for i := range out {
					if out[i] != ref[i] {
						t.Fatalf("dims %v workers %d: nondeterministic element %d", dims, workers, i)
					}
				}
			}
		}
	}
}

// TestForwardRealND32MatchesOracle pins the float32 forward transform
// against the float64 half-spectrum oracle on identical (exactly
// representable) inputs: every bin within a few ulps of the spectrum
// magnitude.
func TestForwardRealND32MatchesOracle(t *testing.T) {
	for _, dims := range [][]int{{24, 18}, {15, 20}, {11, 13}, {6, 10, 12}} {
		total := 1
		for _, d := range dims {
			total *= d
		}
		src32 := make([]float32, total)
		src64 := make([]float64, total)
		r := lcg(11)
		for i := range src32 {
			v := float32(r.next())
			src32[i] = v
			src64[i] = float64(v)
		}
		spec32 := make([]complex64, HalfLen(dims))
		spec64 := make([]complex128, HalfLen(dims))
		if err := ForwardRealND32(src32, dims, spec32, 2); err != nil {
			t.Fatal(err)
		}
		if err := ForwardRealND(src64, dims, spec64, 2); err != nil {
			t.Fatal(err)
		}
		var norm float64
		for _, v := range spec64 {
			if a := real(v)*real(v) + imag(v)*imag(v); a > norm {
				norm = a
			}
		}
		norm = math.Sqrt(norm)
		for i := range spec64 {
			dr := float64(real(spec32[i])) - real(spec64[i])
			di := float64(imag(spec32[i])) - imag(spec64[i])
			if err := math.Hypot(dr, di) / norm; err > 1e-5 {
				t.Fatalf("dims %v bin %d: rel error %g vs oracle", dims, i, err)
			}
		}
	}
}

// TestPool32Accounting pins the float32-lane pool byte accounting on
// the shared live/peak scale: a complex64 element charges 8 bytes and
// a float32 element 4.
func TestPool32Accounting(t *testing.T) {
	base := LiveBytes()
	ResetPeakBytes()
	c := AcquireComplex64(1000)
	r := AcquireReal32(1000)
	live := LiveBytes() - base
	want := int64(cap(c))*8 + int64(cap(r))*4
	if live != want {
		t.Fatalf("live bytes %d, want %d", live, want)
	}
	ReleaseComplex64(c)
	ReleaseReal32(r)
	if LiveBytes() != base {
		t.Fatalf("live bytes %d after release, want %d", LiveBytes(), base)
	}
	if peak := PeakBytes() - base; peak < want {
		t.Fatalf("peak bytes %d, want >= %d", peak, want)
	}
}

// TestPool32Retention pins the floor-log2 retention contract of the
// float32-lane pools: a released non-power-of-two buffer is found
// again by a same-size acquire.
func TestPool32Retention(t *testing.T) {
	r := AcquireReal32(1600 * 1600)
	p := &r[0]
	ReleaseReal32(r)
	r2 := AcquireReal32(1600 * 1600)
	defer ReleaseReal32(r2)
	if &r2[0] != p {
		t.Fatal("released float32 buffer not reused by same-size acquire")
	}
}
