package fft

// Float32-lane pools and ND axis passes. The pool buckets, retention
// rule (Release files by floor(log2(cap))), and live/peak byte
// accounting are shared with the float64 lane — PeakBytes sums
// checked-out bytes across all four element types, so the memory
// gauges compare lanes on one scale. A complex64 element is 8 bytes
// and a float32 element 4, which is where the lane's ~2× bandwidth
// saving comes from.

import (
	"sync"

	"lossycorr/internal/parallel"
)

var (
	complex64Pools [64]sync.Pool
	real32Pools    [64]sync.Pool
)

// AcquireComplex64 returns a []complex64 of length n (contents
// unspecified) from the float32-lane pool, under the same bucket
// contract as AcquireComplex. Release with ReleaseComplex64.
func AcquireComplex64(n int) []complex64 {
	if n <= 0 {
		return nil
	}
	b := acquireBucket(n)
	if v := complex64Pools[b].Get(); v != nil {
		buf := *(v.(*[]complex64))
		accountAcquire(int64(cap(buf)) * 8)
		return buf[:n]
	}
	if b > 0 {
		if v := complex64Pools[b-1].Get(); v != nil {
			p := v.(*[]complex64)
			if cap(*p) >= n {
				buf := *p
				accountAcquire(int64(cap(buf)) * 8)
				return buf[:n]
			}
			complex64Pools[b-1].Put(p)
		}
	}
	buf := make([]complex64, n)
	accountAcquire(int64(cap(buf)) * 8)
	return buf
}

// ReleaseComplex64 returns a buffer obtained from AcquireComplex64 to
// the pool, under the same any-capacity contract as ReleaseComplex.
func ReleaseComplex64(buf []complex64) {
	c := cap(buf)
	if c == 0 {
		return
	}
	poolLiveBytes.Add(-int64(c) * 8)
	buf = buf[:c]
	complex64Pools[releaseBucket(c)].Put(&buf)
}

// AcquireReal32 returns a []float32 of length n (contents unspecified)
// from the float32-lane pool — the padded-field and correlation-plane
// storage of the float32 real-input engine. Release with ReleaseReal32.
func AcquireReal32(n int) []float32 {
	if n <= 0 {
		return nil
	}
	b := acquireBucket(n)
	if v := real32Pools[b].Get(); v != nil {
		buf := *(v.(*[]float32))
		accountAcquire(int64(cap(buf)) * 4)
		return buf[:n]
	}
	if b > 0 {
		if v := real32Pools[b-1].Get(); v != nil {
			p := v.(*[]float32)
			if cap(*p) >= n {
				buf := *p
				accountAcquire(int64(cap(buf)) * 4)
				return buf[:n]
			}
			real32Pools[b-1].Put(p)
		}
	}
	buf := make([]float32, n)
	accountAcquire(int64(cap(buf)) * 4)
	return buf
}

// ReleaseReal32 returns a buffer obtained from AcquireReal32 to the
// pool, under the same any-capacity contract as ReleaseReal.
func ReleaseReal32(buf []float32) {
	c := cap(buf)
	if c == 0 {
		return
	}
	poolLiveBytes.Add(-int64(c) * 4)
	buf = buf[:c]
	real32Pools[releaseBucket(c)].Put(&buf)
}

// axisPass32 transforms every line of x along the given axis — the
// complex64 mirror of axisPass, with the same span-based fan-out and
// the same bit-identical-at-any-worker-count property.
func axisPass32(x []complex64, dims []int, axis, workers int, inverse bool) {
	d := dims[axis]
	if d <= 1 {
		return
	}
	p := planFor32(d)
	stride := 1
	for k := axis + 1; k < len(dims); k++ {
		stride *= dims[k]
	}
	lines := len(x) / d
	if axis == len(dims)-1 {
		parallel.For(lines, workers, func(i int) {
			p.transform(x[i*d:(i+1)*d], inverse)
		})
		return
	}
	spans := parallel.Resolve(workers, lines)
	per := (lines + spans - 1) / spans
	parallel.For(spans, spans, func(s int) {
		lo, hi := s*per, (s+1)*per
		if hi > lines {
			hi = lines
		}
		if lo >= hi {
			return
		}
		scratch := AcquireComplex64(d)
		defer ReleaseComplex64(scratch)
		for line := lo; line < hi; line++ {
			o, i := line/stride, line%stride
			base := o*d*stride + i
			for k := 0; k < d; k++ {
				scratch[k] = x[base+k*stride]
			}
			p.transform(scratch, inverse)
			for k := 0; k < d; k++ {
				x[base+k*stride] = scratch[k]
			}
		}
	})
}
