package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"

)

// naiveIDFT is the O(n²) unnormalized inverse reference (naiveDFT, the
// forward sibling, lives in fft_test.go).
func naiveIDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Exp(complex(0, 2*math.Pi*float64(j)*float64(k)/float64(n)))
		}
		out[k] = s
	}
	return out
}

// planLengths covers every plan kind: powers of two, 7-smooth
// composites (mixed radix), primes and prime-heavy composites
// (Bluestein), and the tiny edge lengths.
var planLengths = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 21, 25, 27,
	32, 35, 37, 49, 55, 60, 64, 96, 100, 105, 120, 121, 127, 128,
	227, 257, 384, 768, 1542,
}

// TestPlanMatchesNaiveDFT pins every plan kind against the O(n²)
// reference, forward and (unnormalized-then-scaled) inverse.
func TestPlanMatchesNaiveDFT(t *testing.T) {
	for _, n := range planLengths {
		if n > 200 {
			continue // naive reference gets slow; round-trip covers these
		}
		x := randComplex(n, uint64(1000+n))
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatal(err)
		}
		scale := math.Sqrt(float64(n)) // spectrum magnitudes grow ~ sqrt(n)·|x|
		if d := maxDiff(got, want); d > 1e-9*scale {
			t.Fatalf("n=%d: forward differs from naive DFT by %g", n, d)
		}
		wantInv := naiveIDFT(x)
		for i := range wantInv {
			wantInv[i] /= complex(float64(n), 0)
		}
		gotInv := append([]complex128(nil), x...)
		if err := Inverse(gotInv); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(gotInv, wantInv); d > 1e-9 {
			t.Fatalf("n=%d: inverse differs from naive inverse DFT by %g", n, d)
		}
	}
}

// TestPlanRoundTrip checks Inverse(Forward(x)) == x for every plan
// kind, including the large mixed-radix and Bluestein lengths the
// naive-DFT test skips.
func TestPlanRoundTrip(t *testing.T) {
	for _, n := range planLengths {
		x := randComplex(n, uint64(2000+n))
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(got); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, x); d > 1e-9 {
			t.Fatalf("n=%d: round trip off by %g", n, d)
		}
	}
}

// TestPlanKinds pins the length → algorithm mapping.
func TestPlanKinds(t *testing.T) {
	cases := []struct {
		n    int
		kind planKind
	}{
		{8, planPow2}, {1024, planPow2},
		{6, planMixed}, {96, planMixed}, {768, planMixed}, {49, planMixed},
		{11, planBluestein}, {127, planBluestein}, {1542, planBluestein},
	}
	for _, tc := range cases {
		if p := planFor(tc.n); p.kind != tc.kind {
			t.Fatalf("planFor(%d).kind = %d, want %d", tc.n, p.kind, tc.kind)
		}
	}
}

// TestFastLen pins the padded-length chooser: even, 5-smooth, minimal.
func TestFastLen(t *testing.T) {
	smooth5 := func(n int) bool {
		for _, f := range []int{2, 3, 5} {
			for n%f == 0 {
				n /= f
			}
		}
		return n == 1
	}
	for n := 1; n <= 2000; n++ {
		m := FastLen(n)
		if m < n && n > 2 {
			t.Fatalf("FastLen(%d) = %d < n", n, m)
		}
		if m%2 != 0 || !smooth5(m) {
			t.Fatalf("FastLen(%d) = %d is not even 5-smooth", n, m)
		}
		for c := n; c < m; c++ {
			if c%2 == 0 && smooth5(c) && c >= n {
				t.Fatalf("FastLen(%d) = %d is not minimal (%d works)", n, m, c)
			}
		}
	}
	for _, tc := range [][2]int{{768, 768}, {770, 800}, {1542, 1600}, {513, 540}} {
		if got := FastLen(tc[0]); got != tc[1] {
			t.Fatalf("FastLen(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
}

// TestForwardNDAnyLength checks the ND engine on non-power-of-two
// extents (mixed radix and Bluestein axes) against separable naive
// DFTs via a 2D round trip plus a spot DFT check per axis.
func TestForwardNDAnyLength(t *testing.T) {
	for _, dims := range [][]int{{6, 10}, {9, 7}, {11, 13}, {5, 12, 7}, {37, 15}} {
		n := 1
		for _, d := range dims {
			n *= d
		}
		x := randComplex(n, uint64(3000+n))
		got := append([]complex128(nil), x...)
		if err := ForwardND(got, dims, 0); err != nil {
			t.Fatal(err)
		}
		// DC bin is the plain sum — a cheap independent check that the
		// axis passes compose.
		var sum complex128
		for _, v := range x {
			sum += v
		}
		if d := cmplx.Abs(got[0] - sum); d > 1e-9*float64(n) {
			t.Fatalf("dims %v: DC bin off by %g", dims, d)
		}
		if err := InverseND(got, dims, 0); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, x); d > 1e-9 {
			t.Fatalf("dims %v: ND round trip off by %g", dims, d)
		}
	}
}

func BenchmarkLineFFT(b *testing.B) {
	for _, n := range []int{768, 1024, 1542, 1600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := randComplex(n, 9)
			p := planFor(n)
			b.SetBytes(int64(16 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.transform(x, false)
			}
		})
	}
}
