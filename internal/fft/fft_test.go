package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"lossycorr/internal/xrand"
)

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d)=%d want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Fatalf("IsPow2(%d) false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 12} {
		if IsPow2(n) {
			t.Fatalf("IsPow2(%d) true", n)
		}
	}
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := xrand.New(17)
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestInverseRoundtrip(t *testing.T) {
	rng := xrand.New(23)
	for _, n := range []int{1, 2, 16, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		if err := Forward(y); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(y); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if cmplx.Abs(y[i]-x[i]) > 1e-10*float64(n) {
				t.Fatalf("n=%d roundtrip error at %d: %v vs %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestParseval(t *testing.T) {
	rng := xrand.New(31)
	n := 128
	x := make([]complex128, n)
	var tEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		tEnergy += real(x[i]) * real(x[i])
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	var fEnergy float64
	for _, v := range x {
		fEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	fEnergy /= float64(n)
	if math.Abs(tEnergy-fEnergy) > 1e-8*tEnergy {
		t.Fatalf("Parseval violated: %v vs %v", tEnergy, fEnergy)
	}
}

func TestNonPow2Accepted(t *testing.T) {
	// The plan layer removed the power-of-two restriction: arbitrary
	// lengths transform (and invert) instead of erroring.
	for _, n := range []int{3, 12} {
		x := randComplex(n, uint64(n))
		y := append([]complex128(nil), x...)
		if err := Forward(y); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := Inverse(y); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := maxDiff(y, x); d > 1e-9 {
			t.Fatalf("n=%d: round trip off by %g", n, d)
		}
	}
	if err := Forward(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestForward2DRoundtrip(t *testing.T) {
	rng := xrand.New(41)
	rows, cols := 8, 16
	x := make([]complex128, rows*cols)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := append([]complex128(nil), x...)
	if err := Forward2D(y, rows, cols); err != nil {
		t.Fatal(err)
	}
	if err := Inverse2D(y, rows, cols); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if cmplx.Abs(y[i]-x[i]) > 1e-9 {
			t.Fatalf("2D roundtrip error at %d", i)
		}
	}
}

func TestForward2DSeparability(t *testing.T) {
	// DFT of a separable function is the product of 1D DFTs.
	rows, cols := 4, 8
	fr := []float64{1, -2, 3, 0.5}
	fc := []float64{2, 0, -1, 4, 0.25, 1, -3, 0}
	x := make([]complex128, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x[r*cols+c] = complex(fr[r]*fc[c], 0)
		}
	}
	if err := Forward2D(x, rows, cols); err != nil {
		t.Fatal(err)
	}
	fhr, err := RealForward(fr)
	if err != nil {
		t.Fatal(err)
	}
	fhc, err := RealForward(fc)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			want := fhr[r] * fhc[c]
			if cmplx.Abs(x[r*cols+c]-want) > 1e-9 {
				t.Fatalf("separability fails at (%d,%d)", r, c)
			}
		}
	}
}

func TestForward3DRoundtrip(t *testing.T) {
	rng := xrand.New(51)
	nz, ny, nx := 4, 8, 16
	x := make([]complex128, nz*ny*nx)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := append([]complex128(nil), x...)
	if err := Forward3D(y, nz, ny, nx); err != nil {
		t.Fatal(err)
	}
	if err := Inverse3D(y, nz, ny, nx); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if cmplx.Abs(y[i]-x[i]) > 1e-9 {
			t.Fatalf("3D roundtrip error at %d", i)
		}
	}
}

func TestForward3DDCBin(t *testing.T) {
	nz, ny, nx := 4, 4, 4
	x := make([]complex128, nz*ny*nx)
	for i := range x {
		x[i] = 3
	}
	if err := Forward3D(x, nz, ny, nx); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-complex(3*64, 0)) > 1e-9 {
		t.Fatalf("DC bin %v", x[0])
	}
	for i := 1; i < len(x); i++ {
		if cmplx.Abs(x[i]) > 1e-9 {
			t.Fatalf("non-DC energy at %d", i)
		}
	}
}

func TestForward3DBadShape(t *testing.T) {
	if err := Forward3D(make([]complex128, 9), 2, 2, 2); err == nil {
		t.Fatal("expected length error")
	}
}

func TestForward2DBadShape(t *testing.T) {
	if err := Forward2D(make([]complex128, 7), 2, 4); err == nil {
		t.Fatal("expected length error")
	}
}

func TestPowerSpectrum2D(t *testing.T) {
	// constant field: all energy in DC bin
	rows, cols := 4, 4
	x := make([]float64, rows*cols)
	for i := range x {
		x[i] = 2
	}
	ps, err := PowerSpectrum2D(x, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps[0]-4*16) > 1e-9 {
		t.Fatalf("DC power %v", ps[0])
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] > 1e-9 {
			t.Fatalf("non-DC power at %d: %v", i, ps[i])
		}
	}
}
