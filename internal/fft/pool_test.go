package fft

import "testing"

// TestPoolAcceptsNonPow2Caps pins the release contract: buffers whose
// capacity is not a power of two (Bluestein scratch, re-sliced tails)
// are filed by floor(log2(cap)) instead of being dropped, and keep
// serving any request up to the bucket's lower bound.
func TestPoolAcceptsNonPow2Caps(t *testing.T) {
	drainComplexBucket := func(b int) {
		for complexPools[b].Get() != nil {
		}
	}
	// cap 768 lands in bucket 9 ([512, 1024)) and must serve n <= 512.
	// sync.Pool randomly drops Puts under the race detector, so allow a
	// few attempts before declaring the buffer lost.
	reused := false
	for attempt := 0; attempt < 20 && !reused; attempt++ {
		drainComplexBucket(9)
		ReleaseComplex(make([]complex128, 768))
		got := AcquireComplex(500)
		reused = cap(got) == 768
		if reused {
			ReleaseComplex(got)
		}
	}
	if !reused {
		t.Fatal("non-pow2 released complex buffer was never reused")
	}

	// The same for the real pool.
	reused = false
	for attempt := 0; attempt < 20 && !reused; attempt++ {
		for realPools[9].Get() != nil {
		}
		ReleaseReal(make([]float64, 700))
		rgot := AcquireReal(512)
		reused = cap(rgot) == 700
		if reused {
			ReleaseReal(rgot)
		}
	}
	if !reused {
		t.Fatal("non-pow2 released real buffer was never reused")
	}

	// A request larger than a bucket's guarantee must never receive a
	// buffer that cannot hold it: n=769 looks in bucket 10, not 9.
	ReleaseComplex(make([]complex128, 768))
	big := AcquireComplex(769)
	if cap(big) < 769 {
		t.Fatalf("acquired buffer too small: cap %d for n=769", cap(big))
	}
	ReleaseComplex(big)
}

// TestPoolPeakBytes checks the live/peak accounting of checked-out
// buffers that the memory smoke tests and bench gauges read.
func TestPoolPeakBytes(t *testing.T) {
	base := LiveBytes()
	ResetPeakBytes()
	a := AcquireComplex(1024) // 16 KiB
	b := AcquireReal(1024)    // 8 KiB
	wantLive := int64(cap(a))*16 + int64(cap(b))*8
	if got := LiveBytes() - base; got != wantLive {
		t.Fatalf("live %d, want %d", got, wantLive)
	}
	ReleaseComplex(a)
	ReleaseReal(b)
	if got := LiveBytes(); got != base {
		t.Fatalf("live after release %d, want %d", got, base)
	}
	if peak := PeakBytes() - base; peak < wantLive {
		t.Fatalf("peak %d, want >= %d", peak, wantLive)
	}
	ResetPeakBytes()
	if peak := PeakBytes(); peak != LiveBytes() {
		t.Fatalf("peak after reset %d, want live %d", peak, LiveBytes())
	}
}
