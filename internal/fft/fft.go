// Package fft implements complex and real-input fast Fourier transforms
// of any rank and any length. It is the numerical engine behind the
// exact circulant-embedding Gaussian field sampler, the variogram FFT
// fast path, and the spectral diagnostics. Power-of-two lengths run the
// radix-2 butterfly core, 7-smooth lengths a mixed-radix Cooley–Tukey
// plan, and everything else Bluestein's chirp-z algorithm (plan.go) —
// so padding can be exact (or FastLen-rounded) instead of doubling to
// NextPow2. Real-input fields additionally transform in half-spectrum
// form (realnd.go), halving the storage of every hermitian workload.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// twiddles returns the first half of the n-th roots of unity,
// exp(-2πik/n) for k in [0, n/2), the set used by a forward transform.
func twiddles(n int) []complex128 {
	w := make([]complex128, n/2)
	for k := range w {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		w[k] = complex(c, s)
	}
	return w
}

// Forward computes the in-place unnormalized forward DFT of x, of any
// length (see the package comment for how lengths map to algorithms):
//
//	X[k] = Σ_j x[j]·exp(-2πi jk/n)
func Forward(x []complex128) error {
	return transform(x, false)
}

// Inverse computes the in-place inverse DFT of x with the 1/n
// normalization so that Inverse(Forward(x)) == x.
func Inverse(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	inv := 1 / float64(len(x))
	for i := range x {
		x[i] *= complex(inv, 0)
	}
	return nil
}

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return fmt.Errorf("fft: empty input")
	}
	if n == 1 {
		return nil
	}
	planFor(n).transform(x, inverse)
	return nil
}

// transformTw is the radix-2 butterfly core over a precomputed twiddle
// table (len(w) == len(x)/2). Factoring the table out lets an axis pass
// of an ND transform share one table across all of its lines.
func transformTw(x []complex128, w []complex128, inverse bool) {
	n := len(x)
	// bit-reversal permutation
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				tw := w[k*step]
				if inverse {
					tw = complex(real(tw), -imag(tw))
				}
				a := x[start+k]
				b := x[start+k+half] * tw
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// Forward2D computes the in-place forward DFT of a rows×cols row-major
// complex grid; any extents.
func Forward2D(x []complex128, rows, cols int) error {
	return transform2D(x, rows, cols, Forward)
}

// Inverse2D computes the normalized in-place inverse 2D DFT.
func Inverse2D(x []complex128, rows, cols int) error {
	return transform2D(x, rows, cols, Inverse)
}

func transform2D(x []complex128, rows, cols int, f func([]complex128) error) error {
	if len(x) != rows*cols {
		return fmt.Errorf("fft: buffer length %d != %d*%d", len(x), rows, cols)
	}
	for r := 0; r < rows; r++ {
		if err := f(x[r*cols : (r+1)*cols]); err != nil {
			return err
		}
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = x[r*cols+c]
		}
		if err := f(col); err != nil {
			return err
		}
		for r := 0; r < rows; r++ {
			x[r*cols+c] = col[r]
		}
	}
	return nil
}

// Forward3D computes the in-place forward DFT of an (nz, ny, nx)
// row-major complex volume (x fastest); any extents.
func Forward3D(x []complex128, nz, ny, nx int) error {
	return transform3D(x, nz, ny, nx, Forward)
}

// Inverse3D computes the normalized in-place inverse 3D DFT.
func Inverse3D(x []complex128, nz, ny, nx int) error {
	return transform3D(x, nz, ny, nx, Inverse)
}

func transform3D(x []complex128, nz, ny, nx int, f func([]complex128) error) error {
	if len(x) != nz*ny*nx {
		return fmt.Errorf("fft: buffer length %d != %d*%d*%d", len(x), nz, ny, nx)
	}
	// x lines
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			off := (z*ny + y) * nx
			if err := f(x[off : off+nx]); err != nil {
				return err
			}
		}
	}
	// y lines
	line := make([]complex128, ny)
	for z := 0; z < nz; z++ {
		for c := 0; c < nx; c++ {
			for y := 0; y < ny; y++ {
				line[y] = x[(z*ny+y)*nx+c]
			}
			if err := f(line); err != nil {
				return err
			}
			for y := 0; y < ny; y++ {
				x[(z*ny+y)*nx+c] = line[y]
			}
		}
	}
	// z lines
	if cap(line) < nz {
		line = make([]complex128, nz)
	}
	line = line[:nz]
	for y := 0; y < ny; y++ {
		for c := 0; c < nx; c++ {
			for z := 0; z < nz; z++ {
				line[z] = x[(z*ny+y)*nx+c]
			}
			if err := f(line); err != nil {
				return err
			}
			for z := 0; z < nz; z++ {
				x[(z*ny+y)*nx+c] = line[z]
			}
		}
	}
	return nil
}

// RealForward computes the DFT of a real sequence, returning a full
// complex spectrum (convenience; no half-spectrum packing).
func RealForward(x []float64) ([]complex128, error) {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	if err := Forward(out); err != nil {
		return nil, err
	}
	return out, nil
}

// PowerSpectrum2D returns |FFT2(x)|²/n for a real rows×cols field, a
// cheap diagnostic used in tests of field generators.
func PowerSpectrum2D(x []float64, rows, cols int) ([]float64, error) {
	buf := make([]complex128, len(x))
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	if err := Forward2D(buf, rows, cols); err != nil {
		return nil, err
	}
	out := make([]float64, len(x))
	n := float64(len(x))
	for i, v := range buf {
		out[i] = (real(v)*real(v) + imag(v)*imag(v)) / n
	}
	return out, nil
}
