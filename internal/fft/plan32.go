package fft

// Float32-lane line plans: a complex64 mirror of plan.go. Go's builtin
// real/imag/complex do not operate on type-parameter values, and conj
// is not expressible from ring operations alone, so a generics-unified
// complex FFT is off the table; the lane gets its own concrete core
// instead, byte-for-byte the same algorithm at half the bandwidth.
// Twiddle tables and chirp filters are computed in float64 and
// narrowed once at plan build, so the per-element rounding is the
// representation error of the table, not an accumulated sin/cos drift.
// Plans are immutable after construction and cached per length, and
// per-line scratch comes from the complex64 pool, so the lane inherits
// the bit-identical-at-any-worker-count property of the float64 core.

import (
	"math"
	"math/bits"
	"sync"
)

// twiddles32 returns the first half of the n-th roots of unity as
// complex64, computed in float64 and narrowed.
func twiddles32(n int) []complex64 {
	w := make([]complex64, n/2)
	for k := range w {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		w[k] = complex(float32(c), float32(s))
	}
	return w
}

// fullTwiddles32 returns w[t] = exp(-2πi t/n) for t in [0, n).
func fullTwiddles32(n int) []complex64 {
	w := make([]complex64, n)
	for t := range w {
		s, c := math.Sincos(-2 * math.Pi * float64(t) / float64(n))
		w[t] = complex(float32(c), float32(s))
	}
	return w
}

// transformTw32 is the radix-2 butterfly core over a precomputed
// complex64 twiddle table (len(w) == len(x)/2).
func transformTw32(x []complex64, w []complex64, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				tw := w[k*step]
				if inverse {
					tw = complex(real(tw), -imag(tw))
				}
				a := x[start+k]
				b := x[start+k+half] * tw
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// linePlan32 mirrors linePlan for the float32 lane.
type linePlan32 struct {
	n    int
	kind planKind

	w       []complex64
	factors []int
	pow2    int
	pw      []complex64

	m     int
	wm    []complex64
	chirp []complex64
	bfft  []complex64
}

var planCache32 sync.Map // int -> *linePlan32

func planFor32(n int) *linePlan32 {
	if v, ok := planCache32.Load(n); ok {
		return v.(*linePlan32)
	}
	p := newPlan32(n)
	if v, loaded := planCache32.LoadOrStore(n, p); loaded {
		return v.(*linePlan32)
	}
	return p
}

func newPlan32(n int) *linePlan32 {
	if IsPow2(n) {
		return &linePlan32{n: n, kind: planPow2, w: twiddles32(n)}
	}
	pow2 := 1
	rest := n
	for rest%2 == 0 {
		pow2 *= 2
		rest /= 2
	}
	var odd []int
	for _, f := range []int{3, 5, 7} {
		for rest%f == 0 {
			odd = append(odd, f)
			rest /= f
		}
	}
	if rest == 1 {
		return &linePlan32{
			n: n, kind: planMixed,
			w: fullTwiddles32(n), factors: odd,
			pow2: pow2, pw: twiddles32(pow2),
		}
	}
	m := NextPow2(2*n - 1)
	p := &linePlan32{n: n, kind: planBluestein, m: m, wm: twiddles32(m)}
	p.chirp = make([]complex64, n)
	for j := 0; j < n; j++ {
		t := (j * j) % (2 * n)
		s, c := math.Sincos(-math.Pi * float64(t) / float64(n))
		p.chirp[j] = complex(float32(c), float32(s))
	}
	b := make([]complex64, m)
	for j := 0; j < n; j++ {
		v := complex(real(p.chirp[j]), -imag(p.chirp[j]))
		b[j] = v
		if j > 0 {
			b[m-j] = v
		}
	}
	transformTw32(b, p.wm, false)
	p.bfft = b
	return p
}

// transform runs the unnormalized DFT (or unnormalized inverse DFT) of
// one line in place. len(x) must equal p.n.
func (p *linePlan32) transform(x []complex64, inverse bool) {
	switch p.kind {
	case planPow2:
		transformTw32(x, p.w, inverse)
	case planMixed:
		scratch := AcquireComplex64(p.n)
		copy(scratch, x)
		p.mixedRec(x, scratch, p.n, 1, 1, p.factors, inverse)
		ReleaseComplex64(scratch)
	default:
		p.bluestein(x, inverse)
	}
}

func (p *linePlan32) tw(t int, inverse bool) complex64 {
	v := p.w[t]
	if inverse {
		return complex(real(v), -imag(v))
	}
	return v
}

func (p *linePlan32) mixedRec(dst, src []complex64, n, stride, mult int, factors []int, inverse bool) {
	if len(factors) == 0 {
		for j := 0; j < n; j++ {
			dst[j] = src[j*stride]
		}
		if n > 1 {
			transformTw32(dst, p.pw, inverse)
		}
		return
	}
	r := factors[0]
	m := n / r
	for j2 := 0; j2 < r; j2++ {
		p.mixedRec(dst[j2*m:(j2+1)*m], src[j2*stride:], m, stride*r, mult*r, factors[1:], inverse)
	}
	var u [8]complex64
	rs := p.n / r
	for k2 := 0; k2 < m; k2++ {
		for j2 := 0; j2 < r; j2++ {
			u[j2] = dst[j2*m+k2] * p.tw(mult*j2*k2, inverse)
		}
		for k1 := 0; k1 < r; k1++ {
			s := u[0]
			for j2 := 1; j2 < r; j2++ {
				s += u[j2] * p.tw((j2*k1%r)*rs, inverse)
			}
			dst[k1*m+k2] = s
		}
	}
}

func (p *linePlan32) bluestein(x []complex64, inverse bool) {
	n, m := p.n, p.m
	if inverse {
		for i, v := range x {
			x[i] = complex(real(v), -imag(v))
		}
	}
	u := AcquireComplex64(m)
	for j := 0; j < n; j++ {
		u[j] = x[j] * p.chirp[j]
	}
	for j := n; j < m; j++ {
		u[j] = 0
	}
	transformTw32(u, p.wm, false)
	for i := range u {
		u[i] *= p.bfft[i]
	}
	transformTw32(u, p.wm, true)
	s := complex(1/float32(m), 0)
	for k := 0; k < n; k++ {
		x[k] = p.chirp[k] * u[k] * s
	}
	ReleaseComplex64(u)
	if inverse {
		for i, v := range x {
			x[i] = complex(real(v), -imag(v))
		}
	}
}
