package fft

// Line plans: per-length transform strategies that free the engine from
// the power-of-two constraint. Every 1D line transform routes through a
// cached plan chosen by length:
//
//   - power of two        → the radix-2 butterfly core (transformTw)
//   - 7-smooth composite  → mixed-radix Cooley–Tukey: odd factors are
//     peeled recursively (generic small-r DFT combine), the residual
//     power-of-two block transforms with the radix-2 core
//   - anything else       → Bluestein's chirp-z algorithm: the length-n
//     DFT becomes a length-M power-of-two circular convolution
//     (M >= 2n−1) with a precomputed chirp filter spectrum
//
// Plans are immutable once built and cached per length, so repeated
// axis passes over the same extents (the variogram engine, the
// samplers) pay the trigonometry once. Per-line scratch comes from the
// shared buffer pool.

import (
	"math"
	"sync"
)

// FastLen returns the smallest even 5-smooth (2^a·3^b·5^c, a >= 1)
// length >= n — the preferred padded extent for the real-input engine:
// within a few percent of n (no power-of-two doubling) while keeping
// every axis on the fast mixed-radix path, and even so the last-axis
// real transform can use the pack-two-reals trick. Arbitrary exact
// lengths remain supported through the Bluestein plan; FastLen is the
// cheap default, not a requirement.
func FastLen(n int) int {
	if n <= 2 {
		return 2
	}
	for m := n; ; m++ {
		if m%2 != 0 {
			continue
		}
		r := m
		for r%2 == 0 {
			r /= 2
		}
		for r%3 == 0 {
			r /= 3
		}
		for r%5 == 0 {
			r /= 5
		}
		if r == 1 {
			return m
		}
	}
}

type planKind uint8

const (
	planPow2 planKind = iota
	planMixed
	planBluestein
)

// linePlan holds everything needed to transform one line of its length.
type linePlan struct {
	n    int
	kind planKind

	// pow2: w is the half twiddle table of transformTw.
	// mixed: w is the full table w[t] = exp(-2πi t/n); pw is the half
	// table of the residual power-of-two block.
	w       []complex128
	factors []int // mixed: odd prime factors, in dividing order
	pow2    int   // mixed: residual power-of-two block length
	pw      []complex128

	// bluestein
	m     int          // power-of-two convolution length >= 2n-1
	wm    []complex128 // half twiddle table for length m
	chirp []complex128 // a_j = exp(-iπ j²/n)
	bfft  []complex128 // forward FFT_m of the chirp filter
}

var planCache sync.Map // int -> *linePlan

func planFor(n int) *linePlan {
	if v, ok := planCache.Load(n); ok {
		return v.(*linePlan)
	}
	p := newPlan(n)
	if v, loaded := planCache.LoadOrStore(n, p); loaded {
		return v.(*linePlan)
	}
	return p
}

// fullTwiddles returns w[t] = exp(-2πi t/n) for t in [0, n).
func fullTwiddles(n int) []complex128 {
	w := make([]complex128, n)
	for t := range w {
		s, c := math.Sincos(-2 * math.Pi * float64(t) / float64(n))
		w[t] = complex(c, s)
	}
	return w
}

func newPlan(n int) *linePlan {
	if IsPow2(n) {
		return &linePlan{n: n, kind: planPow2, w: twiddles(n)}
	}
	// Peel 7-smooth factors: odd primes first, the power-of-two residue
	// last, so every recursion path bottoms out in one contiguous
	// radix-2 block.
	pow2 := 1
	rest := n
	for rest%2 == 0 {
		pow2 *= 2
		rest /= 2
	}
	var odd []int
	for _, f := range []int{3, 5, 7} {
		for rest%f == 0 {
			odd = append(odd, f)
			rest /= f
		}
	}
	if rest == 1 {
		return &linePlan{
			n: n, kind: planMixed,
			w: fullTwiddles(n), factors: odd,
			pow2: pow2, pw: twiddles(pow2),
		}
	}
	// Bluestein: X[k] = a_k · (u ⊛ b)[k] with u_j = x_j·a_j,
	// a_j = exp(-iπ j²/n), b_l = exp(+iπ l²/n) embedded circularly.
	m := NextPow2(2*n - 1)
	p := &linePlan{n: n, kind: planBluestein, m: m, wm: twiddles(m)}
	p.chirp = make([]complex128, n)
	for j := 0; j < n; j++ {
		t := (j * j) % (2 * n) // exp(-iπ j²/n) has period 2n in j²
		s, c := math.Sincos(-math.Pi * float64(t) / float64(n))
		p.chirp[j] = complex(c, s)
	}
	b := make([]complex128, m)
	for j := 0; j < n; j++ {
		v := complex(real(p.chirp[j]), -imag(p.chirp[j]))
		b[j] = v
		if j > 0 {
			b[m-j] = v
		}
	}
	transformTw(b, p.wm, false)
	p.bfft = b
	return p
}

// transform runs the unnormalized DFT (or unnormalized inverse DFT) of
// one line in place. len(x) must equal p.n.
func (p *linePlan) transform(x []complex128, inverse bool) {
	switch p.kind {
	case planPow2:
		transformTw(x, p.w, inverse)
	case planMixed:
		scratch := AcquireComplex(p.n)
		copy(scratch, x)
		p.mixedRec(x, scratch, p.n, 1, 1, p.factors, inverse)
		ReleaseComplex(scratch)
	default:
		p.bluestein(x, inverse)
	}
}

// tw returns the table twiddle at index t (conjugated for inverses).
func (p *linePlan) tw(t int, inverse bool) complex128 {
	v := p.w[t]
	if inverse {
		return complex(real(v), -imag(v))
	}
	return v
}

// mixedRec computes dst[0:n] = DFT_n of the strided sequence src[0],
// src[stride], …, peeling factors[0] by decimation in time; mult is
// p.n/n, the spacing of this level's twiddles in the full table. With
// factors exhausted, n is the residual power-of-two block: gather and
// run the radix-2 core.
func (p *linePlan) mixedRec(dst, src []complex128, n, stride, mult int, factors []int, inverse bool) {
	if len(factors) == 0 {
		for j := 0; j < n; j++ {
			dst[j] = src[j*stride]
		}
		if n > 1 {
			transformTw(dst, p.pw, inverse)
		}
		return
	}
	r := factors[0]
	m := n / r
	for j2 := 0; j2 < r; j2++ {
		p.mixedRec(dst[j2*m:(j2+1)*m], src[j2*stride:], m, stride*r, mult*r, factors[1:], inverse)
	}
	// Combine: for each residue k2, an r-point DFT of the twiddled
	// sub-spectra u_{j2} = S_{j2}[k2]·w_n^{j2·k2} lands in the slots
	// k2 + m·k1.
	var u [8]complex128
	rs := p.n / r
	for k2 := 0; k2 < m; k2++ {
		for j2 := 0; j2 < r; j2++ {
			u[j2] = dst[j2*m+k2] * p.tw(mult*j2*k2, inverse)
		}
		for k1 := 0; k1 < r; k1++ {
			s := u[0]
			for j2 := 1; j2 < r; j2++ {
				s += u[j2] * p.tw((j2*k1%r)*rs, inverse)
			}
			dst[k1*m+k2] = s
		}
	}
}

// bluestein runs the chirp-z transform. The unnormalized inverse DFT is
// the conjugate of the forward on conjugated input.
func (p *linePlan) bluestein(x []complex128, inverse bool) {
	n, m := p.n, p.m
	if inverse {
		for i, v := range x {
			x[i] = complex(real(v), -imag(v))
		}
	}
	u := AcquireComplex(m)
	for j := 0; j < n; j++ {
		u[j] = x[j] * p.chirp[j]
	}
	for j := n; j < m; j++ {
		u[j] = 0
	}
	transformTw(u, p.wm, false)
	for i := range u {
		u[i] *= p.bfft[i]
	}
	transformTw(u, p.wm, true)
	s := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = p.chirp[k] * u[k] * s
	}
	ReleaseComplex(u)
	if inverse {
		for i, v := range x {
			x[i] = complex(real(v), -imag(v))
		}
	}
}
