package fft

import (
	"math/cmplx"
	"testing"

	"lossycorr/internal/xrand"
)

func randReal(n int, seed uint64) []float64 {
	rng := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// realShapes exercises every last-axis branch (even pack, odd
// full-line) and every plan kind per axis: pow2, mixed-radix, Bluestein
// (prime extents), across ranks 1–3.
var realShapes = [][]int{
	{8}, {10}, {7}, {1}, {2}, {37},
	{4, 8}, {6, 10}, {5, 7}, {9, 12}, {11, 13}, {3, 1},
	{4, 6, 10}, {3, 5, 7}, {2, 3, 4},
}

// TestForwardRealNDMatchesComplex pins the half-spectrum forward
// against the full complex ND transform: every stored bin must equal
// the corresponding full-spectrum bin.
func TestForwardRealNDMatchesComplex(t *testing.T) {
	for _, dims := range realShapes {
		total := 1
		for _, d := range dims {
			total *= d
		}
		src := randReal(total, uint64(100+total))

		full := make([]complex128, total)
		for i, v := range src {
			full[i] = complex(v, 0)
		}
		if err := ForwardND(full, dims, 0); err != nil {
			t.Fatal(err)
		}

		half := make([]complex128, HalfLen(dims))
		// Poison the destination: ForwardRealND must overwrite fully.
		for i := range half {
			half[i] = cmplx.Inf()
		}
		if err := ForwardRealND(src, dims, half, 0); err != nil {
			t.Fatal(err)
		}

		nx := dims[len(dims)-1]
		hc := nx/2 + 1
		lines := total / nx
		for li := 0; li < lines; li++ {
			for k := 0; k < hc; k++ {
				want := full[li*nx+k]
				got := half[li*hc+k]
				if d := cmplx.Abs(got - want); d > 1e-9*float64(total) {
					t.Fatalf("dims %v line %d bin %d: %v vs %v (|d|=%g)", dims, li, k, got, want, d)
				}
			}
		}
	}
}

// TestRealNDRoundTrip checks InverseRealND(ForwardRealND(x)) == x for
// every shape, and that both directions are bit-identical at any
// worker count.
func TestRealNDRoundTrip(t *testing.T) {
	for _, dims := range realShapes {
		total := 1
		for _, d := range dims {
			total *= d
		}
		src := randReal(total, uint64(200+total))

		var refSpec []complex128
		var refOut []float64
		for _, workers := range []int{1, 3, 8} {
			spec := make([]complex128, HalfLen(dims))
			if err := ForwardRealND(src, dims, spec, workers); err != nil {
				t.Fatal(err)
			}
			specCopy := append([]complex128(nil), spec...)
			out := make([]float64, total)
			if err := InverseRealND(spec, dims, out, workers); err != nil {
				t.Fatal(err)
			}
			for i := range out {
				if d := out[i] - src[i]; d > 1e-9 || d < -1e-9 {
					t.Fatalf("dims %v workers %d: round trip off by %g at %d", dims, workers, d, i)
				}
			}
			if refSpec == nil {
				refSpec, refOut = specCopy, out
				continue
			}
			for i := range specCopy {
				if specCopy[i] != refSpec[i] {
					t.Fatalf("dims %v workers %d: nondeterministic spectrum at %d", dims, workers, i)
				}
			}
			for i := range out {
				if out[i] != refOut[i] {
					t.Fatalf("dims %v workers %d: nondeterministic inverse at %d", dims, workers, i)
				}
			}
		}
	}
}

// TestRealNDAutocorrelation checks the end-to-end identity the
// variogram engine relies on: AbsSq of the half-spectrum followed by a
// real inverse is the circular autocorrelation, on an odd (Bluestein)
// shape as well as an even one.
func TestRealNDAutocorrelation(t *testing.T) {
	for _, dims := range [][]int{{6, 10}, {7, 9}} {
		total := dims[0] * dims[1]
		src := randReal(total, uint64(300+total))
		spec := make([]complex128, HalfLen(dims))
		if err := ForwardRealND(src, dims, spec, 0); err != nil {
			t.Fatal(err)
		}
		AbsSq(spec)
		got := make([]float64, total)
		if err := InverseRealND(spec, dims, got, 0); err != nil {
			t.Fatal(err)
		}
		// Direct circular autocorrelation.
		ny, nx := dims[0], dims[1]
		for hy := 0; hy < ny; hy++ {
			for hx := 0; hx < nx; hx++ {
				var want float64
				for y := 0; y < ny; y++ {
					for x := 0; x < nx; x++ {
						want += src[y*nx+x] * src[((y+hy)%ny)*nx+(x+hx)%nx]
					}
				}
				if d := got[hy*nx+hx] - want; d > 1e-8 || d < -1e-8 {
					t.Fatalf("dims %v lag (%d,%d): %g vs %g", dims, hy, hx, got[hy*nx+hx], want)
				}
			}
		}
	}
}

// TestMulConjCrossCorrelation checks the conj-multiply helper gives the
// cross-correlation c_ab(h) = Σ_x a(x)·b(x+h) through the real engine.
func TestMulConjCrossCorrelation(t *testing.T) {
	dims := []int{5, 8}
	total := dims[0] * dims[1]
	a := randReal(total, 41)
	b := randReal(total, 43)
	sa := make([]complex128, HalfLen(dims))
	sb := make([]complex128, HalfLen(dims))
	if err := ForwardRealND(a, dims, sa, 0); err != nil {
		t.Fatal(err)
	}
	if err := ForwardRealND(b, dims, sb, 0); err != nil {
		t.Fatal(err)
	}
	MulConj(sa, sb)
	got := make([]float64, total)
	if err := InverseRealND(sa, dims, got, 0); err != nil {
		t.Fatal(err)
	}
	ny, nx := dims[0], dims[1]
	for hy := 0; hy < ny; hy++ {
		for hx := 0; hx < nx; hx++ {
			var want float64
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					want += a[y*nx+x] * b[((y+hy)%ny)*nx+(x+hx)%nx]
				}
			}
			if d := got[hy*nx+hx] - want; d > 1e-8 || d < -1e-8 {
				t.Fatalf("lag (%d,%d): %g vs %g", hy, hx, got[hy*nx+hx], want)
			}
		}
	}
}

// TestEmbedReal mirrors TestPadReal for the real-typed padding.
func TestEmbedReal(t *testing.T) {
	src := []float64{1, 2, 3, 4, 5, 6} // 2×3
	dst := make([]float64, 4*4)
	for i := range dst {
		dst[i] = 9
	}
	if err := EmbedReal(dst, []int{4, 4}, src, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := 0.0
			if r < 2 && c < 3 {
				want = src[r*3+c]
			}
			if dst[r*4+c] != want {
				t.Fatalf("dst[%d,%d] = %v, want %v", r, c, dst[r*4+c], want)
			}
		}
	}
	if err := EmbedReal(dst, []int{4, 4}, src, []int{2, 5}); err == nil {
		t.Fatal("expected extent error")
	}
	if err := EmbedReal(dst[:3], []int{4, 4}, src, []int{2, 3}); err == nil {
		t.Fatal("expected length error")
	}
}

// TestHalfLen pins the half-spectrum sizing.
func TestHalfLen(t *testing.T) {
	cases := []struct {
		dims []int
		want int
	}{
		{[]int{8}, 5}, {[]int{7}, 4}, {[]int{4, 8}, 20},
		{[]int{3, 5, 7}, 60}, {nil, 0},
	}
	for _, tc := range cases {
		if got := HalfLen(tc.dims); got != tc.want {
			t.Fatalf("HalfLen(%v) = %d, want %d", tc.dims, got, tc.want)
		}
	}
}
