package zfplike

import (
	"math"
	"testing"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func roundtrip3D(t *testing.T, v *grid.Volume, eb float64) *grid.Volume {
	t.Helper()
	c := Compressor3D{}
	data, err := c.Compress(v, eb)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Nz != v.Nz || dec.Ny != v.Ny || dec.Nx != v.Nx {
		t.Fatalf("shape %dx%dx%d want %dx%dx%d", dec.Nz, dec.Ny, dec.Nx, v.Nz, v.Ny, v.Nx)
	}
	for i := range v.Data {
		if d := math.Abs(v.Data[i] - dec.Data[i]); d > eb {
			t.Fatalf("element %d: |err| = %g > bound %g", i, d, eb)
		}
	}
	return dec
}

func TestName3D(t *testing.T) {
	if (Compressor3D{}).Name() != "zfp-like-3d" {
		t.Fatal("unexpected name")
	}
}

func TestRoundtrip3DSmooth(t *testing.T) {
	v := grid.NewVolume(12, 10, 14)
	for z := 0; z < v.Nz; z++ {
		for y := 0; y < v.Ny; y++ {
			for x := 0; x < v.Nx; x++ {
				v.Set(z, y, x, math.Sin(0.4*float64(z))+math.Cos(0.3*float64(y))*float64(x)*0.1)
			}
		}
	}
	for _, eb := range []float64{1e-2, 1e-4, 1e-8} {
		roundtrip3D(t, v, eb)
	}
}

func TestRoundtrip3DNoise(t *testing.T) {
	rng := xrand.New(4)
	v := grid.NewVolume(9, 11, 7)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	for _, eb := range []float64{1e-1, 1e-3, 1e-6} {
		roundtrip3D(t, v, eb)
	}
}

func TestRoundtrip3DGaussianField(t *testing.T) {
	v, err := gaussian.Generate3D(gaussian.Params3D{Nz: 16, Ny: 16, Nx: 16, Range: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	roundtrip3D(t, v, 1e-3)
}

func TestRoundtrip3DNonFinite(t *testing.T) {
	v := grid.NewVolume(5, 5, 5)
	v.Set(1, 2, 3, math.NaN())
	v.Set(0, 0, 0, math.Inf(1))
	c := Compressor3D{}
	data, err := c.Compress(v, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(dec.At(1, 2, 3)) || !math.IsInf(dec.At(0, 0, 0), 1) {
		t.Fatal("non-finite values not preserved raw")
	}
}

func TestSmoother3DCompressesBetter(t *testing.T) {
	smooth, err := gaussian.Generate3D(gaussian.Params3D{Nz: 16, Ny: 16, Nx: 16, Range: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	rough := grid.NewVolume(16, 16, 16)
	for i := range rough.Data {
		rough.Data[i] = rng.NormFloat64()
	}
	c := Compressor3D{}
	ds, err := c.Compress(smooth, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := c.Compress(rough, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) >= len(dr) {
		t.Fatalf("smooth volume (%d bytes) should beat white noise (%d bytes)", len(ds), len(dr))
	}
}

func TestDecompress3DCorrupt(t *testing.T) {
	c := Compressor3D{}
	if _, err := c.Decompress([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected corrupt-stream error")
	}
	v := grid.NewVolume(4, 4, 4)
	data, err := c.Compress(v, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if _, err := c.Decompress(data); err == nil {
		t.Fatal("expected error on flipped tail byte")
	}
}

func TestErrors3D(t *testing.T) {
	c := Compressor3D{}
	if _, err := c.Compress(grid.NewVolume(4, 4, 4), 0); err == nil {
		t.Fatal("expected non-positive bound error")
	}
	if _, err := c.Compress(grid.NewVolume(0, 4, 4), 1e-3); err == nil {
		t.Fatal("expected empty volume error")
	}
}

func TestInverseBlock3DExact(t *testing.T) {
	rng := xrand.New(6)
	var q, orig [64]int64
	for i := range q {
		q[i] = int64(rng.Intn(2_000_001) - 1_000_000)
		orig[i] = q[i]
	}
	forwardBlock3D(&q)
	inverseBlock3D(&q)
	if q != orig {
		t.Fatal("3D transform is not exactly invertible")
	}
}

func BenchmarkZFPLike3DCompress(b *testing.B) {
	v, err := gaussian.Generate3D(gaussian.Params3D{Nz: 32, Ny: 32, Nx: 32, Range: 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Compressor3D{}).Compress(v, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}
