package zfplike

// Native float32 lane of the ZFP-like codec. Blocks are gathered
// straight from float32 samples (widened exactly into the fixed-point
// transform, which is unchanged), raw escapes store 4-byte floats, and
// reconstruction narrows to float32 at scatter time — no float64
// staging copy of the field on either side.
//
// Bound argument for the narrow lane: every original sample v is a
// float32, so rounding the float64 reconstruction x̂ to the nearest
// float32 satisfies |f32(x̂) − v| ≤ 2·|x̂ − v| (v itself is a rounding
// candidate). The coded path therefore runs the float64 machinery at
// tolerance absErr/2 — one extra bit plane — and the raw-block
// threshold doubles accordingly, pinning max|f32(x̂) − v| ≤ absErr
// with no per-element check.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"lossycorr/internal/bitstream"
	"lossycorr/internal/compress"
	"lossycorr/internal/field"
	"lossycorr/internal/lossless"
)

var magic32 = [4]byte{'Z', 'F', 'L', 'f'}

var _ compress.Lane32Grid = Compressor{}

// gatherBlock32 widens a 4×4 float32 block with edge replication;
// interior blocks take the four-row streaming path.
func gatherBlock32(data []float32, rows, cols, r0, c0 int, vals *[16]float64) {
	if r0+BlockSize <= rows && c0+BlockSize <= cols {
		for r := 0; r < BlockSize; r++ {
			base := (r0+r)*cols + c0
			row := data[base : base+4]
			vals[4*r] = float64(row[0])
			vals[4*r+1] = float64(row[1])
			vals[4*r+2] = float64(row[2])
			vals[4*r+3] = float64(row[3])
		}
		return
	}
	for r := 0; r < BlockSize; r++ {
		gr := r0 + r
		if gr >= rows {
			gr = rows - 1
		}
		for c := 0; c < BlockSize; c++ {
			gc := c0 + c
			if gc >= cols {
				gc = cols - 1
			}
			vals[4*r+c] = float64(data[gr*cols+gc])
		}
	}
}

// scatterBlock32 narrows the in-range portion of a block to float32.
func scatterBlock32(data []float32, rows, cols, r0, c0 int, vals *[16]float64) {
	for r := 0; r < BlockSize; r++ {
		gr := r0 + r
		if gr >= rows {
			break
		}
		base := gr*cols + c0
		for c := 0; c < BlockSize; c++ {
			if c0+c >= cols {
				break
			}
			data[base+c] = float32(vals[4*r+c])
		}
	}
}

// Compress32 implements compress.Lane32Grid.
func (Compressor) Compress32(f *field.Field32, absErr float64) ([]byte, error) {
	if absErr <= 0 {
		return nil, fmt.Errorf("zfplike: non-positive error bound %v", absErr)
	}
	if len(f.Shape) != 2 {
		return nil, fmt.Errorf("zfplike: float32 lane needs rank 2, got %d", len(f.Shape))
	}
	gRows, gCols := f.Shape[0], f.Shape[1]
	if f.Len() == 0 {
		return nil, errors.New("zfplike: empty field")
	}
	nbr := (gRows + BlockSize - 1) / BlockSize
	nbc := (gCols + BlockSize - 1) / BlockSize

	var head []byte
	head = append(head, magic32[:]...)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(gRows))
	binary.LittleEndian.PutUint32(tmp[4:], uint32(gCols))
	head = append(head, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(absErr))
	head = append(head, tmp[:]...)

	sc := scratchPool.Get().(*compressScratch)
	defer scratchPool.Put(sc)
	modes := sc.modes[:0]
	meta := sc.meta[:0]
	rawVals := sc.rawVals[:0]
	w := sc.w
	w.Reset()

	var vals [16]float64
	var q [16]int64
	for br := 0; br < nbr; br++ {
		for bc := 0; bc < nbc; bc++ {
			gatherBlock32(f.Data, gRows, gCols, br*BlockSize, bc*BlockSize, &vals)
			emax, zero := blockExponent(&vals)
			if zero {
				modes = append(modes, blockZero)
				continue
			}
			// Coded blocks run at half the tolerance (see the lane bound
			// argument above), so the fixed-point floor doubles too.
			fpErr := math.Ldexp(1, emax-fixedPointBits+5)
			if absErr < fpErr || !blockFinite(&vals) {
				modes = append(modes, blockRaw)
				for _, v := range vals {
					binary.LittleEndian.PutUint32(tmp[:4], math.Float32bits(float32(v)))
					rawVals = append(rawVals, tmp[:4]...)
				}
				continue
			}
			scale := math.Ldexp(1, fixedPointBits-emax)
			for i, v := range vals {
				q[i] = int64(math.Round(v * scale))
			}
			forwardBlock(&q)
			var zz [16]uint64
			top := 0
			for i, v := range q {
				zz[i] = toNegabinary(v)
				if b := bits.Len64(zz[i]); b > top {
					top = b
				}
			}
			cutoff := planeCutoff(0.5*absErr, emax)
			if cutoff > top {
				cutoff = top
			}
			modes = append(modes, blockCoded)
			binary.LittleEndian.PutUint16(tmp[:2], uint16(int16(emax)))
			meta = append(meta, tmp[0], tmp[1], byte(top), byte(cutoff))
			for plane := top - 1; plane >= cutoff; plane-- {
				var pb uint64
				for i := 0; i < 16; i++ {
					pb = pb<<1 | (zz[i]>>uint(plane))&1
				}
				w.WriteBits(pb, 16)
			}
		}
	}

	sc.modes, sc.meta, sc.rawVals = modes, meta, rawVals
	payload := head
	payload = append(payload, modes...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(meta)))
	payload = append(payload, tmp[:4]...)
	payload = append(payload, meta...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rawVals)))
	payload = append(payload, tmp[:4]...)
	payload = append(payload, rawVals...)
	payload = append(payload, w.Bytes()...)
	return lossless.Compress(payload)
}

// Decompress32 implements compress.Lane32Grid.
func (Compressor) Decompress32(data []byte) (*field.Field32, error) {
	raw, err := lossless.Decompress(data)
	if err != nil {
		return nil, fmt.Errorf("zfplike: %w", err)
	}
	if len(raw) < 20 || raw[0] != magic32[0] || raw[1] != magic32[1] || raw[2] != magic32[2] || raw[3] != magic32[3] {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint32(raw[4:]))
	cols := int(binary.LittleEndian.Uint32(raw[8:]))
	if rows <= 0 || cols <= 0 || rows*cols > 1<<30 {
		return nil, ErrCorrupt
	}
	pos := 20
	nbr := (rows + BlockSize - 1) / BlockSize
	nbc := (cols + BlockSize - 1) / BlockSize
	nBlocks := nbr * nbc
	if len(raw) < pos+nBlocks+4 {
		return nil, ErrCorrupt
	}
	modes := raw[pos : pos+nBlocks]
	pos += nBlocks
	metaLen := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if metaLen < 0 || len(raw) < pos+metaLen+4 {
		return nil, ErrCorrupt
	}
	meta := raw[pos : pos+metaLen]
	pos += metaLen
	rawLen := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if rawLen < 0 || len(raw) < pos+rawLen {
		return nil, ErrCorrupt
	}
	rawVals := raw[pos : pos+rawLen]
	pos += rawLen
	r := bitstream.NewReader(raw[pos:])

	out := field.New32(rows, cols)
	mi, ri := 0, 0
	var q [16]int64
	var vals [16]float64
	for br := 0; br < nbr; br++ {
		for bc := 0; bc < nbc; bc++ {
			mode := modes[br*nbc+bc]
			switch mode {
			case blockZero:
				for i := range vals {
					vals[i] = 0
				}
			case blockRaw:
				if ri+64 > len(rawVals) {
					return nil, ErrCorrupt
				}
				for i := 0; i < 16; i++ {
					vals[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(rawVals[ri:])))
					ri += 4
				}
			case blockCoded:
				if mi+4 > len(meta) {
					return nil, ErrCorrupt
				}
				emax := int(int16(binary.LittleEndian.Uint16(meta[mi:])))
				top := int(meta[mi+2])
				cutoff := int(meta[mi+3])
				mi += 4
				if top > 64 || cutoff > top {
					return nil, ErrCorrupt
				}
				var zz [16]uint64
				for plane := top - 1; plane >= cutoff; plane-- {
					pb, err := r.ReadBits(16)
					if err != nil {
						return nil, fmt.Errorf("zfplike: truncated planes: %w", err)
					}
					for i := 0; i < 16; i++ {
						zz[i] |= (pb >> uint(15-i) & 1) << uint(plane)
					}
				}
				for i := range q {
					q[i] = fromNegabinary(zz[i])
				}
				inverseBlock(&q)
				scale := math.Ldexp(1, emax-fixedPointBits)
				for i := range vals {
					vals[i] = float64(q[i]) * scale
				}
			default:
				return nil, ErrCorrupt
			}
			scatterBlock32(out.Data, rows, cols, br*BlockSize, bc*BlockSize, &vals)
		}
	}
	return out, nil
}
