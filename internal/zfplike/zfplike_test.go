package zfplike

import (
	"math"
	"testing"
	"testing/quick"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/xrand"
)

func roundtrip(t *testing.T, g *grid.Grid, eb float64) *grid.Grid {
	t.Helper()
	c := Compressor{}
	data, err := c.Compress(g, eb)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rows != g.Rows || dec.Cols != g.Cols {
		t.Fatalf("shape changed")
	}
	maxErr, err := g.MaxAbsDiff(dec)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > eb*(1+1e-12) {
		t.Fatalf("bound violated: maxErr %v > eb %v", maxErr, eb)
	}
	return dec
}

func TestName(t *testing.T) {
	if (Compressor{}).Name() != "zfp-like" {
		t.Fatal("name changed")
	}
}

func TestTransformInvertible(t *testing.T) {
	f := func(vals [16]int64) bool {
		// constrain to the fixed-point dynamic range the codec uses
		var q [16]int64
		for i, v := range vals {
			q[i] = v % (1 << 50)
		}
		orig := q
		forwardBlock(&q)
		inverseBlock(&q)
		return q == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLift4Invertible(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		p := []int64{a % (1 << 50), b % (1 << 50), c % (1 << 50), d % (1 << 50)}
		orig := append([]int64(nil), p...)
		fwd4(p, 1)
		inv4(p, 1)
		for i := range p {
			if p[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNegabinaryRoundtrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1000, -1000, 1 << 52, -(1 << 52)} {
		if got := fromNegabinary(toNegabinary(v)); got != v {
			t.Fatalf("negabinary roundtrip %d -> %d", v, got)
		}
	}
	f := func(v int64) bool { return fromNegabinary(toNegabinary(v)) == v }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNegabinaryTruncationBounded(t *testing.T) {
	// zeroing the low k digits must perturb the value by < 2^k
	f := func(v int64, kRaw uint8) bool {
		v %= 1 << 40
		k := uint(kRaw % 30)
		u := toNegabinary(v)
		trunc := u &^ ((1 << k) - 1)
		got := fromNegabinary(trunc)
		return math.Abs(float64(got-v)) < float64(uint64(1)<<k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundtripSmooth(t *testing.T) {
	g := grid.FromFunc(48, 64, func(r, c int) float64 {
		return math.Sin(float64(r)/7) * math.Cos(float64(c)/9)
	})
	for _, eb := range []float64{1e-5, 1e-3, 1e-1} {
		roundtrip(t, g, eb)
	}
}

func TestRoundtripNoise(t *testing.T) {
	rng := xrand.New(5)
	g := grid.FromFunc(31, 29, func(r, c int) float64 { return rng.NormFloat64() * 50 })
	roundtrip(t, g, 1e-4)
}

func TestRoundtripConstantZero(t *testing.T) {
	roundtrip(t, grid.New(16, 16), 1e-6)
}

func TestOddSizes(t *testing.T) {
	rng := xrand.New(6)
	for _, sz := range [][2]int{{1, 1}, {1, 9}, {9, 1}, {3, 5}, {4, 4}, {5, 4}, {7, 13}} {
		g := grid.FromFunc(sz[0], sz[1], func(r, c int) float64 { return rng.NormFloat64() })
		roundtrip(t, g, 1e-3)
	}
}

func TestTinyToleranceFallsBackToRaw(t *testing.T) {
	// tolerance finer than fixed-point precision: raw mode must kick in
	// and reproduce exactly
	g := grid.FromFunc(8, 8, func(r, c int) float64 { return 1e15 + float64(r*8+c) })
	dec := roundtrip(t, g, 1e-12)
	if d, _ := g.MaxAbsDiff(dec); d != 0 {
		t.Fatalf("raw mode not exact: %v", d)
	}
}

func TestExtremeValues(t *testing.T) {
	g, _ := grid.FromData(2, 4, []float64{1e300, -1e300, 1e-300, 0, 5, -5, 1e18, -1e-18})
	roundtrip(t, g, 1e-6)
}

func TestEmptyAndBadBound(t *testing.T) {
	c := Compressor{}
	if _, err := c.Compress(grid.New(0, 0), 1e-3); err == nil {
		t.Fatal("empty field must error")
	}
	if _, err := c.Compress(grid.New(4, 4), -1); err == nil {
		t.Fatal("negative eb must error")
	}
}

func TestSmoothBeatsNoise(t *testing.T) {
	c := Compressor{}
	smooth, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	noise := grid.FromFunc(64, 64, func(r, cc int) float64 { return rng.NormFloat64() })
	ds, err := c.Compress(smooth, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := c.Compress(noise, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) >= len(dn) {
		t.Fatalf("smooth (%d B) not smaller than noise (%d B)", len(ds), len(dn))
	}
}

func TestRatioIncreasesWithBound(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := Compressor{}
	var sizes []int
	for _, eb := range []float64{1e-6, 1e-4, 1e-2} {
		d, err := c.Compress(f, eb)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(d))
	}
	if !(sizes[0] > sizes[1] && sizes[1] > sizes[2]) {
		t.Fatalf("sizes not decreasing: %v", sizes)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	c := Compressor{}
	if _, err := c.Decompress([]byte{9, 9, 9}); err == nil {
		t.Fatal("garbage must error")
	}
	data, err := c.Compress(grid.FromFunc(8, 8, func(r, cc int) float64 { return float64(r - cc) }), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(data[:len(data)/3]); err == nil {
		t.Fatal("truncated stream must error")
	}
}

func TestQuickBoundProperty(t *testing.T) {
	c := Compressor{}
	f := func(seed uint64, ebExp uint8, rough bool) bool {
		eb := math.Pow(10, -1-float64(ebExp%6))
		rng := xrand.New(seed)
		rows := 1 + rng.Intn(30)
		cols := 1 + rng.Intn(30)
		var g *grid.Grid
		if rough {
			g = grid.FromFunc(rows, cols, func(r, cc int) float64 { return rng.NormFloat64() * 10 })
		} else {
			fr := 1 + rng.Float64()*10
			g = grid.FromFunc(rows, cols, func(r, cc int) float64 {
				return math.Sin(float64(r)/fr) + math.Cos(float64(cc)/fr)
			})
		}
		data, err := c.Compress(g, eb)
		if err != nil {
			return false
		}
		dec, err := c.Decompress(data)
		if err != nil {
			return false
		}
		maxErr, err := g.MaxAbsDiff(dec)
		return err == nil && maxErr <= eb*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockExponent(t *testing.T) {
	var vals [16]float64
	if _, zero := blockExponent(&vals); !zero {
		t.Fatal("zero block not detected")
	}
	vals[3] = 0.75 // frexp: 0.75 = 0.75·2^0
	if e, zero := blockExponent(&vals); zero || e != 0 {
		t.Fatalf("exponent %d want 0", e)
	}
	vals[5] = -3 // 0.75·2^2
	if e, _ := blockExponent(&vals); e != 2 {
		t.Fatalf("exponent %d want 2", e)
	}
}
