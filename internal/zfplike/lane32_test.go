package zfplike

import (
	"math"
	"testing"

	"lossycorr/internal/compress"
	"lossycorr/internal/field"
	"lossycorr/internal/xrand"
)

func randomField32(rows, cols int, seed uint64) *field.Field32 {
	rng := xrand.New(seed)
	f := field.New32(rows, cols)
	for i := range f.Data {
		f.Data[i] = float32(rng.NormFloat64())
	}
	return f
}

func roundtrip32(t *testing.T, f *field.Field32, eb float64) *field.Field32 {
	t.Helper()
	data, err := Compressor{}.Compress32(f, eb)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Compressor{}.Decompress32(data)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.SameShape(f) {
		t.Fatalf("shape changed: %v -> %v", f.Shape, dec.Shape)
	}
	maxErr, err := f.MaxAbsDiff(dec)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > eb {
		t.Fatalf("float32 lane bound violated: maxErr %g > eb %g", maxErr, eb)
	}
	return dec
}

// TestLane32RoundTrip pins the native float32 lane bound strictly on
// float32 values across bounds and clipped-edge shapes: the half-
// tolerance coded path plus the f32-representability argument means no
// widened slack is needed.
func TestLane32RoundTrip(t *testing.T) {
	for _, sz := range [][2]int{{64, 64}, {17, 33}, {1, 40}, {3, 5}} {
		for _, eb := range []float64{1e-1, 1e-3, 1e-5} {
			f := randomField32(sz[0], sz[1], uint64(11*sz[0]+sz[1]))
			roundtrip32(t, f, eb)
		}
	}
}

// TestLane32RawPath drives the raw-block fallback: a tolerance finer
// than the doubled fixed-point floor stores float32 samples exactly.
func TestLane32RawPath(t *testing.T) {
	rng := xrand.New(5)
	f := field.New32(16, 16)
	for i := range f.Data {
		f.Data[i] = float32(1e6 + rng.NormFloat64())
	}
	dec := roundtrip32(t, f, 1e-12)
	for i := range f.Data {
		if f.Data[i] != dec.Data[i] {
			t.Fatalf("sample %d: %v != %v (expected raw exact)", i, f.Data[i], dec.Data[i])
		}
	}
}

// TestLane32NonFinite pins that non-finite blocks bypass the transform
// and survive exactly through 4-byte raw storage.
func TestLane32NonFinite(t *testing.T) {
	f := randomField32(12, 12, 7)
	f.Data[0] = float32(math.NaN())
	f.Data[50] = float32(math.Inf(-1))
	data, err := Compressor{}.Compress32(f, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Compressor{}.Decompress32(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(dec.Data[0])) || !math.IsInf(float64(dec.Data[50]), -1) {
		t.Fatalf("special values lost: %v %v", dec.Data[0], dec.Data[50])
	}
}

// TestLane32ThroughRegistry pins the adapter chain and the measured
// bound via RunField32's native path.
func TestLane32ThroughRegistry(t *testing.T) {
	fc := compress.WrapGrid(Compressor{})
	if _, ok := fc.(compress.Lane32Compressor); !ok {
		t.Fatal("WrapGrid(zfplike.Compressor) does not expose the float32 lane")
	}
	f := randomField32(50, 50, 13)
	res, err := compress.RunField32(fc, f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BoundOK || res.MaxAbsError > 1e-3 {
		t.Fatalf("native lane bound violated: %+v", res)
	}
	if res.Ratio <= 1 {
		t.Fatalf("expected compression, got ratio %v", res.Ratio)
	}
}

// TestLane32Corrupt pins lane and truncation validation.
func TestLane32Corrupt(t *testing.T) {
	f := randomField32(16, 16, 3)
	data, err := Compressor{}.Compress32(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Compressor{}).Decompress32(data[:len(data)/2]); err == nil {
		t.Fatal("truncated stream accepted")
	}
	wide := f.Widen()
	g, err := wide.AsGrid()
	if err != nil {
		t.Fatal(err)
	}
	f64Stream, err := Compressor{}.Compress(g, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Compressor{}).Decompress32(f64Stream); err == nil {
		t.Fatal("float64 stream accepted by float32 lane")
	}
}
