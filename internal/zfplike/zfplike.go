// Package zfplike implements a ZFP-style transform compressor
// (Lindstrom & Isenburg, TVCG 2006 / ZFP 0.5) in pure Go. Like ZFP for
// 2D data it partitions the field into 4×4 blocks, aligns each block to
// a common exponent in integer fixed point, applies an invertible
// integer multiresolution transform, converts coefficients to
// negabinary (ZFP's truncation-friendly sign representation), and
// encodes coefficient bit planes from most to least significant,
// truncating at a plane derived from the absolute tolerance. The
// transposed bit-plane layout is highly compressible and the stream
// finishes with a DEFLATE pass.
//
// Deviation from real ZFP (documented in DESIGN.md): the block
// transform is a two-level integer Haar S-transform rather than ZFP's
// proprietary lifting scheme. Both are invertible integer
// decorrelators applied per 4-vector; the compression character
// (block-local decorrelation + embedded bit-plane truncation) is
// preserved, which is what the paper's correlation analysis probes.
package zfplike

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"lossycorr/internal/bitstream"
	"lossycorr/internal/compress"
	"lossycorr/internal/grid"
	"lossycorr/internal/lossless"
)

// compressScratch recycles the per-call stream builders of Compress —
// block modes, coded-block metadata, raw escapes, and the bit-plane
// writer — across batch measurement runs.
type compressScratch struct {
	modes, meta, rawVals []byte
	w                    *bitstream.Writer
}

var scratchPool = sync.Pool{New: func() any {
	return &compressScratch{w: bitstream.NewWriter()}
}}

// BlockSize is the block edge (ZFP uses 4 in each dimension).
const BlockSize = 4

// fixedPointBits positions the fixed-point scaling: values are scaled
// by 2^(fixedPointBits − emax) so |q| < 2^fixedPointBits before the
// transform, whose two levels grow magnitudes by at most 4×, keeping
// everything far inside int64.
const fixedPointBits = 50

const (
	blockZero  byte = iota // all-zero block, no payload
	blockCoded             // bit-plane payload
	blockRaw               // 16 exact float64 (tolerance finer than fixed point)
)

var magic = [4]byte{'Z', 'F', 'L', '1'}

// Compressor is the ZFP-like codec. The zero value is ready to use.
type Compressor struct{}

var _ compress.Compressor = Compressor{}

// Name implements compress.Compressor.
func (Compressor) Name() string { return "zfp-like" }

// fwd4 applies the two-level integer Haar S-transform to a stride-s
// 4-vector in place: output order (coarse mean, coarse detail, fine
// detail 0, fine detail 1).
func fwd4(p []int64, s int) {
	a, b, c, d := p[0], p[s], p[2*s], p[3*s]
	s0, d0 := (a+b)>>1, a-b
	s1, d1 := (c+d)>>1, c-d
	ss, ds := (s0+s1)>>1, s0-s1
	p[0], p[s], p[2*s], p[3*s] = ss, ds, d0, d1
}

// inv4 exactly inverts fwd4.
func inv4(p []int64, s int) {
	ss, ds, d0, d1 := p[0], p[s], p[2*s], p[3*s]
	s0 := ss + ((ds + 1) >> 1)
	s1 := s0 - ds
	a := s0 + ((d0 + 1) >> 1)
	b := a - d0
	c := s1 + ((d1 + 1) >> 1)
	d := c - d1
	p[0], p[s], p[2*s], p[3*s] = a, b, c, d
}

// forwardBlock transforms rows then columns of a 4×4 block.
func forwardBlock(q *[16]int64) {
	for r := 0; r < 4; r++ {
		fwd4(q[4*r:4*r+4], 1)
	}
	for c := 0; c < 4; c++ {
		fwd4(q[c:], 4)
	}
}

// inverseBlock inverts forwardBlock (columns then rows).
func inverseBlock(q *[16]int64) {
	for c := 0; c < 4; c++ {
		inv4(q[c:], 4)
	}
	for r := 0; r < 4; r++ {
		inv4(q[4*r:4*r+4], 1)
	}
}

// negabinary mask: alternating 1s at the odd bit positions.
const nbMask uint64 = 0xaaaaaaaaaaaaaaaa

// toNegabinary converts two's complement to base −2, ZFP's sign
// representation. Unlike zigzag or sign-magnitude, zeroing the low k
// negabinary digits perturbs the value by less than 2^k, which makes
// MSB-first bit-plane truncation error-bounded.
func toNegabinary(v int64) uint64 { return (uint64(v) + nbMask) ^ nbMask }

// fromNegabinary inverts toNegabinary.
func fromNegabinary(u uint64) int64 { return int64((u ^ nbMask) - nbMask) }

// blockExponent returns e such that every |v| in the block is < 2^e,
// and whether the block is entirely zero.
func blockExponent(vals *[16]float64) (int, bool) {
	maxAbs := 0.0
	for _, v := range vals {
		a := math.Abs(v)
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0, true
	}
	_, e := math.Frexp(maxAbs) // maxAbs = f·2^e with f ∈ [0.5, 1)
	return e, false
}

// blockFinite reports whether every value is finite; non-finite blocks
// must bypass the fixed-point transform (which would smear NaN/Inf
// across all sixteen coefficients) and be stored raw.
func blockFinite(vals *[16]float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// planeCutoff returns the lowest bit-plane index kept so that the
// worst-case reconstruction error stays within tol. Zeroing the low k
// negabinary digits perturbs a coefficient by at most (2/3)·2^k; each
// inverse S-transform stage maps per-coefficient error E to at most
// 2E+1, so the 2D inverse (two stages) yields ≤ 4E+3 plus the 0.5-unit
// fixed-point rounding, i.e. ≤ (8/3)·2^k + 5 ≤ 2^(k+2) + 8 fixed-point
// units. Choosing k = floor(log2(tol·scale)) − 3 puts the 2^(k+2) term
// under tol·scale/2, and the raw-block fallback guarantees
// tol·scale ≥ 16 so the +8 fits in the other half.
func planeCutoff(tol float64, emax int) int {
	if tol <= 0 {
		return 0
	}
	k := int(math.Floor(math.Log2(tol))) + fixedPointBits - emax - 3
	if k < 0 {
		k = 0
	}
	return k
}

// Compress implements compress.Compressor.
func (Compressor) Compress(g *grid.Grid, absErr float64) ([]byte, error) {
	if absErr <= 0 {
		return nil, fmt.Errorf("zfplike: non-positive error bound %v", absErr)
	}
	if g.Len() == 0 {
		return nil, errors.New("zfplike: empty field")
	}
	nbr := (g.Rows + BlockSize - 1) / BlockSize
	nbc := (g.Cols + BlockSize - 1) / BlockSize

	var head []byte
	head = append(head, magic[:]...)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(g.Rows))
	binary.LittleEndian.PutUint32(tmp[4:], uint32(g.Cols))
	head = append(head, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(absErr))
	head = append(head, tmp[:]...)

	sc := scratchPool.Get().(*compressScratch)
	defer scratchPool.Put(sc)
	modes := sc.modes[:0]
	meta := sc.meta[:0] // per coded block: emax int16, top byte, cutoff byte
	rawVals := sc.rawVals[:0]
	w := sc.w
	w.Reset()

	var vals [16]float64
	var q [16]int64
	for br := 0; br < nbr; br++ {
		for bc := 0; bc < nbc; bc++ {
			gatherBlock(g, br*BlockSize, bc*BlockSize, &vals)
			emax, zero := blockExponent(&vals)
			if zero {
				modes = append(modes, blockZero)
				continue
			}
			// The fixed-point grid itself has spacing 2^(emax-fixedPointBits);
			// rounding into it (0.5 ulp) amplified by the 9× inverse
			// transform costs < 2^(emax-fixedPointBits+3), which must fit
			// inside half the tolerance. If the tolerance is finer than
			// that, bit planes cannot honor it: store the block raw.
			fpErr := math.Ldexp(1, emax-fixedPointBits+4)
			if absErr < fpErr || !blockFinite(&vals) {
				modes = append(modes, blockRaw)
				for _, v := range vals {
					binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
					rawVals = append(rawVals, tmp[:]...)
				}
				continue
			}
			scale := math.Ldexp(1, fixedPointBits-emax)
			for i, v := range vals {
				q[i] = int64(math.Round(v * scale))
			}
			forwardBlock(&q)
			var zz [16]uint64
			top := 0 // number of planes needed: position of highest set bit
			for i, v := range q {
				zz[i] = toNegabinary(v)
				if b := bits.Len64(zz[i]); b > top {
					top = b
				}
			}
			cutoff := planeCutoff(absErr, emax)
			if cutoff > top {
				cutoff = top
			}
			modes = append(modes, blockCoded)
			binary.LittleEndian.PutUint16(tmp[:2], uint16(int16(emax)))
			meta = append(meta, tmp[0], tmp[1], byte(top), byte(cutoff))
			// Transposed bit planes, MSB first: each 16-coefficient
			// plane is gathered into one uint16 (coefficient 0 at the
			// high bit, preserving the bit order of per-bit writes) and
			// emitted with a single batched write.
			for plane := top - 1; plane >= cutoff; plane-- {
				var pb uint64
				for i := 0; i < 16; i++ {
					pb = pb<<1 | (zz[i]>>uint(plane))&1
				}
				w.WriteBits(pb, 16)
			}
		}
	}

	sc.modes, sc.meta, sc.rawVals = modes, meta, rawVals // retain capacity
	payload := head
	payload = append(payload, modes...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(meta)))
	payload = append(payload, tmp[:4]...)
	payload = append(payload, meta...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rawVals)))
	payload = append(payload, tmp[:4]...)
	payload = append(payload, rawVals...)
	payload = append(payload, w.Bytes()...)
	return lossless.Compress(payload)
}

// gatherBlock copies a 4×4 block with edge replication for clipped
// blocks; replicated samples are real samples, so their reconstruction
// error is bounded too. Interior blocks (the vast majority) take a
// four-row streaming copy; only clipped edge blocks pay the
// per-element replication arithmetic.
func gatherBlock(g *grid.Grid, r0, c0 int, vals *[16]float64) {
	if r0+BlockSize <= g.Rows && c0+BlockSize <= g.Cols {
		for r := 0; r < BlockSize; r++ {
			base := (r0+r)*g.Cols + c0
			copy(vals[4*r:4*r+4], g.Data[base:base+4])
		}
		return
	}
	for r := 0; r < BlockSize; r++ {
		gr := r0 + r
		if gr >= g.Rows {
			gr = g.Rows - 1
		}
		for c := 0; c < BlockSize; c++ {
			gc := c0 + c
			if gc >= g.Cols {
				gc = g.Cols - 1
			}
			vals[4*r+c] = g.At(gr, gc)
		}
	}
}

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("zfplike: corrupt stream")

// Decompress implements compress.Compressor.
func (Compressor) Decompress(data []byte) (*grid.Grid, error) {
	raw, err := lossless.Decompress(data)
	if err != nil {
		return nil, fmt.Errorf("zfplike: %w", err)
	}
	if len(raw) < 20 || raw[0] != magic[0] || raw[1] != magic[1] || raw[2] != magic[2] || raw[3] != magic[3] {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint32(raw[4:]))
	cols := int(binary.LittleEndian.Uint32(raw[8:]))
	if rows <= 0 || cols <= 0 || rows*cols > 1<<30 {
		return nil, ErrCorrupt
	}
	pos := 20
	nbr := (rows + BlockSize - 1) / BlockSize
	nbc := (cols + BlockSize - 1) / BlockSize
	nBlocks := nbr * nbc
	if len(raw) < pos+nBlocks+4 {
		return nil, ErrCorrupt
	}
	modes := raw[pos : pos+nBlocks]
	pos += nBlocks
	metaLen := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if metaLen < 0 || len(raw) < pos+metaLen+4 {
		return nil, ErrCorrupt
	}
	meta := raw[pos : pos+metaLen]
	pos += metaLen
	rawLen := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if rawLen < 0 || len(raw) < pos+rawLen {
		return nil, ErrCorrupt
	}
	rawVals := raw[pos : pos+rawLen]
	pos += rawLen
	r := bitstream.NewReader(raw[pos:])

	out := grid.New(rows, cols)
	mi, ri := 0, 0
	var q [16]int64
	var vals [16]float64
	for br := 0; br < nbr; br++ {
		for bc := 0; bc < nbc; bc++ {
			mode := modes[br*nbc+bc]
			switch mode {
			case blockZero:
				for i := range vals {
					vals[i] = 0
				}
			case blockRaw:
				if ri+128 > len(rawVals) {
					return nil, ErrCorrupt
				}
				for i := 0; i < 16; i++ {
					vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(rawVals[ri:]))
					ri += 8
				}
			case blockCoded:
				if mi+4 > len(meta) {
					return nil, ErrCorrupt
				}
				emax := int(int16(binary.LittleEndian.Uint16(meta[mi:])))
				top := int(meta[mi+2])
				cutoff := int(meta[mi+3])
				mi += 4
				if top > 64 || cutoff > top {
					return nil, ErrCorrupt
				}
				var zz [16]uint64
				for plane := top - 1; plane >= cutoff; plane-- {
					pb, err := r.ReadBits(16)
					if err != nil {
						return nil, fmt.Errorf("zfplike: truncated planes: %w", err)
					}
					for i := 0; i < 16; i++ {
						zz[i] |= (pb >> uint(15-i) & 1) << uint(plane)
					}
				}
				for i := range q {
					q[i] = fromNegabinary(zz[i])
				}
				inverseBlock(&q)
				scale := math.Ldexp(1, emax-fixedPointBits)
				for i := range vals {
					vals[i] = float64(q[i]) * scale
				}
			default:
				return nil, ErrCorrupt
			}
			scatterBlock(out, br*BlockSize, bc*BlockSize, &vals)
		}
	}
	return out, nil
}

// scatterBlock writes the in-range portion of a block; interior blocks
// stream out four row copies.
func scatterBlock(g *grid.Grid, r0, c0 int, vals *[16]float64) {
	if r0+BlockSize <= g.Rows && c0+BlockSize <= g.Cols {
		for r := 0; r < BlockSize; r++ {
			base := (r0+r)*g.Cols + c0
			copy(g.Data[base:base+4], vals[4*r:4*r+4])
		}
		return
	}
	for r := 0; r < BlockSize; r++ {
		gr := r0 + r
		if gr >= g.Rows {
			break
		}
		for c := 0; c < BlockSize; c++ {
			gc := c0 + c
			if gc >= g.Cols {
				break
			}
			g.Set(gr, gc, vals[4*r+c])
		}
	}
}
