package zfplike

// 3D variant of the ZFP-style codec: 4×4×4 blocks, the same two-level
// integer Haar S-transform applied along x, then y, then z, negabinary
// coefficients, and MSB-first transposed bit planes truncated at a
// tolerance-derived cutoff. Only the error analysis changes relative
// to the 2D codec — three inverse transform stages instead of two, so
// every bound gains one factor of two.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"lossycorr/internal/bitstream"
	"lossycorr/internal/compress"
	"lossycorr/internal/grid"
	"lossycorr/internal/lossless"
)

var magic3D = [4]byte{'Z', 'F', 'L', '3'}

// Compressor3D is the ZFP-like codec for 3D volumes. The zero value is
// ready to use.
type Compressor3D struct{}

var _ compress.VolumeCompressor = Compressor3D{}

// Name identifies the codec.
func (Compressor3D) Name() string { return "zfp-like-3d" }

// forwardBlock3D transforms x vectors, then y vectors, then z vectors
// of a 4×4×4 block stored z-major (index (z*4+y)*4+x).
func forwardBlock3D(q *[64]int64) {
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			fwd4(q[(z*4+y)*4:(z*4+y)*4+4], 1)
		}
	}
	for z := 0; z < 4; z++ {
		for x := 0; x < 4; x++ {
			fwd4(q[z*16+x:], 4)
		}
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			fwd4(q[y*4+x:], 16)
		}
	}
}

// inverseBlock3D inverts forwardBlock3D (z, then y, then x).
func inverseBlock3D(q *[64]int64) {
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			inv4(q[y*4+x:], 16)
		}
	}
	for z := 0; z < 4; z++ {
		for x := 0; x < 4; x++ {
			inv4(q[z*16+x:], 4)
		}
	}
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			inv4(q[(z*4+y)*4:(z*4+y)*4+4], 1)
		}
	}
}

// planeCutoff3D is planeCutoff with one more inverse stage: zeroing
// the low k negabinary digits perturbs a coefficient by at most
// (2/3)·2^k, and three stages map error E to at most 8E+7, so keeping
// k = floor(log2(tol·scale)) − 4 puts the transform term under half
// the tolerance.
func planeCutoff3D(tol float64, emax int) int {
	if tol <= 0 {
		return 0
	}
	k := int(math.Floor(math.Log2(tol))) + fixedPointBits - emax - 4
	if k < 0 {
		k = 0
	}
	return k
}

func blockExponent64(vals *[64]float64) (int, bool) {
	maxAbs := 0.0
	for _, v := range vals {
		a := math.Abs(v)
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0, true
	}
	_, e := math.Frexp(maxAbs)
	return e, false
}

func blockFinite64(vals *[64]float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// gatherBlock3D copies a 4×4×4 block with edge replication; interior
// blocks stream sixteen 4-wide row copies.
func gatherBlock3D(v *grid.Volume, z0, y0, x0 int, vals *[64]float64) {
	if z0+BlockSize <= v.Nz && y0+BlockSize <= v.Ny && x0+BlockSize <= v.Nx {
		for z := 0; z < BlockSize; z++ {
			for y := 0; y < BlockSize; y++ {
				base := ((z0+z)*v.Ny+y0+y)*v.Nx + x0
				copy(vals[(z*4+y)*4:(z*4+y)*4+4], v.Data[base:base+4])
			}
		}
		return
	}
	for z := 0; z < BlockSize; z++ {
		gz := z0 + z
		if gz >= v.Nz {
			gz = v.Nz - 1
		}
		for y := 0; y < BlockSize; y++ {
			gy := y0 + y
			if gy >= v.Ny {
				gy = v.Ny - 1
			}
			for x := 0; x < BlockSize; x++ {
				gx := x0 + x
				if gx >= v.Nx {
					gx = v.Nx - 1
				}
				vals[(z*4+y)*4+x] = v.At(gz, gy, gx)
			}
		}
	}
}

// scatterBlock3D writes the in-range portion of a block; interior
// blocks stream sixteen 4-wide row copies.
func scatterBlock3D(v *grid.Volume, z0, y0, x0 int, vals *[64]float64) {
	if z0+BlockSize <= v.Nz && y0+BlockSize <= v.Ny && x0+BlockSize <= v.Nx {
		for z := 0; z < BlockSize; z++ {
			for y := 0; y < BlockSize; y++ {
				base := ((z0+z)*v.Ny+y0+y)*v.Nx + x0
				copy(v.Data[base:base+4], vals[(z*4+y)*4:(z*4+y)*4+4])
			}
		}
		return
	}
	for z := 0; z < BlockSize; z++ {
		gz := z0 + z
		if gz >= v.Nz {
			break
		}
		for y := 0; y < BlockSize; y++ {
			gy := y0 + y
			if gy >= v.Ny {
				break
			}
			for x := 0; x < BlockSize; x++ {
				gx := x0 + x
				if gx >= v.Nx {
					break
				}
				v.Set(gz, gy, gx, vals[(z*4+y)*4+x])
			}
		}
	}
}

// Compress encodes a volume under an absolute error bound.
func (Compressor3D) Compress(v *grid.Volume, absErr float64) ([]byte, error) {
	if absErr <= 0 {
		return nil, fmt.Errorf("zfplike: non-positive error bound %v", absErr)
	}
	if v.Nz*v.Ny*v.Nx == 0 {
		return nil, errors.New("zfplike: empty volume")
	}
	nbz := (v.Nz + BlockSize - 1) / BlockSize
	nby := (v.Ny + BlockSize - 1) / BlockSize
	nbx := (v.Nx + BlockSize - 1) / BlockSize

	var head []byte
	head = append(head, magic3D[:]...)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(v.Nz))
	binary.LittleEndian.PutUint32(tmp[4:], uint32(v.Ny))
	head = append(head, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[0:], uint32(v.Nx))
	head = append(head, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(absErr))
	head = append(head, tmp[:]...)

	modes := make([]byte, 0, nbz*nby*nbx)
	var meta []byte // per coded block: emax int16, top byte, cutoff byte
	var rawVals []byte
	w := bitstream.NewWriter()

	var vals [64]float64
	var q [64]int64
	for bz := 0; bz < nbz; bz++ {
		for by := 0; by < nby; by++ {
			for bx := 0; bx < nbx; bx++ {
				gatherBlock3D(v, bz*BlockSize, by*BlockSize, bx*BlockSize, &vals)
				emax, zero := blockExponent64(&vals)
				if zero {
					modes = append(modes, blockZero)
					continue
				}
				// Fixed-point rounding (0.5 ulp of the 2^(emax-fixedPointBits)
				// grid) through three inverse stages costs < 2^(emax-fixedPointBits+4),
				// which must fit inside half the tolerance.
				fpErr := math.Ldexp(1, emax-fixedPointBits+5)
				if absErr < fpErr || !blockFinite64(&vals) {
					modes = append(modes, blockRaw)
					for _, val := range vals {
						binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(val))
						rawVals = append(rawVals, tmp[:]...)
					}
					continue
				}
				scale := math.Ldexp(1, fixedPointBits-emax)
				for i, val := range vals {
					q[i] = int64(math.Round(val * scale))
				}
				forwardBlock3D(&q)
				var zz [64]uint64
				top := 0
				for i, qv := range q {
					zz[i] = toNegabinary(qv)
					if b := bits.Len64(zz[i]); b > top {
						top = b
					}
				}
				cutoff := planeCutoff3D(absErr, emax)
				if cutoff > top {
					cutoff = top
				}
				modes = append(modes, blockCoded)
				binary.LittleEndian.PutUint16(tmp[:2], uint16(int16(emax)))
				meta = append(meta, tmp[0], tmp[1], byte(top), byte(cutoff))
				// One uint64 per 64-coefficient plane (coefficient 0 at
				// the high bit), emitted with a single batched write.
				for plane := top - 1; plane >= cutoff; plane-- {
					var pb uint64
					for i := 0; i < 64; i++ {
						pb = pb<<1 | (zz[i]>>uint(plane))&1
					}
					w.WriteBits(pb, 64)
				}
			}
		}
	}

	payload := head
	payload = append(payload, modes...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(meta)))
	payload = append(payload, tmp[:4]...)
	payload = append(payload, meta...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rawVals)))
	payload = append(payload, tmp[:4]...)
	payload = append(payload, rawVals...)
	payload = append(payload, w.Bytes()...)
	return lossless.Compress(payload)
}

// Decompress reconstructs a volume from Compress's output.
func (Compressor3D) Decompress(data []byte) (*grid.Volume, error) {
	raw, err := lossless.Decompress(data)
	if err != nil {
		return nil, fmt.Errorf("zfplike: %w", err)
	}
	if len(raw) < 24 || raw[0] != magic3D[0] || raw[1] != magic3D[1] || raw[2] != magic3D[2] || raw[3] != magic3D[3] {
		return nil, ErrCorrupt
	}
	nz := int(binary.LittleEndian.Uint32(raw[4:]))
	ny := int(binary.LittleEndian.Uint32(raw[8:]))
	nx := int(binary.LittleEndian.Uint32(raw[12:]))
	if nz <= 0 || ny <= 0 || nx <= 0 || nz*ny*nx > 1<<30 {
		return nil, ErrCorrupt
	}
	pos := 24
	nbz := (nz + BlockSize - 1) / BlockSize
	nby := (ny + BlockSize - 1) / BlockSize
	nbx := (nx + BlockSize - 1) / BlockSize
	nBlocks := nbz * nby * nbx
	if len(raw) < pos+nBlocks+4 {
		return nil, ErrCorrupt
	}
	modes := raw[pos : pos+nBlocks]
	pos += nBlocks
	metaLen := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if metaLen < 0 || len(raw) < pos+metaLen+4 {
		return nil, ErrCorrupt
	}
	meta := raw[pos : pos+metaLen]
	pos += metaLen
	rawLen := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if rawLen < 0 || len(raw) < pos+rawLen {
		return nil, ErrCorrupt
	}
	rawVals := raw[pos : pos+rawLen]
	pos += rawLen
	r := bitstream.NewReader(raw[pos:])

	out := grid.NewVolume(nz, ny, nx)
	mi, ri := 0, 0
	var q [64]int64
	var vals [64]float64
	for bz := 0; bz < nbz; bz++ {
		for by := 0; by < nby; by++ {
			for bx := 0; bx < nbx; bx++ {
				mode := modes[(bz*nby+by)*nbx+bx]
				switch mode {
				case blockZero:
					for i := range vals {
						vals[i] = 0
					}
				case blockRaw:
					if ri+512 > len(rawVals) {
						return nil, ErrCorrupt
					}
					for i := 0; i < 64; i++ {
						vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(rawVals[ri:]))
						ri += 8
					}
				case blockCoded:
					if mi+4 > len(meta) {
						return nil, ErrCorrupt
					}
					emax := int(int16(binary.LittleEndian.Uint16(meta[mi:])))
					top := int(meta[mi+2])
					cutoff := int(meta[mi+3])
					mi += 4
					if top > 64 || cutoff > top {
						return nil, ErrCorrupt
					}
					var zz [64]uint64
					for plane := top - 1; plane >= cutoff; plane-- {
						pb, err := r.ReadBits(64)
						if err != nil {
							return nil, fmt.Errorf("zfplike: truncated planes: %w", err)
						}
						for i := 0; i < 64; i++ {
							zz[i] |= (pb >> uint(63-i) & 1) << uint(plane)
						}
					}
					for i := range q {
						q[i] = fromNegabinary(zz[i])
					}
					inverseBlock3D(&q)
					scale := math.Ldexp(1, emax-fixedPointBits)
					for i := range vals {
						vals[i] = float64(q[i]) * scale
					}
				default:
					return nil, ErrCorrupt
				}
				scatterBlock3D(out, bz*BlockSize, by*BlockSize, bx*BlockSize, &vals)
			}
		}
	}
	return out, nil
}
