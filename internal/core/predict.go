package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lossycorr/internal/field"
	"lossycorr/internal/regression"
)

// Predictor estimates compression ratios for unseen fields from their
// correlation statistics, using the logarithmic regressions fitted on a
// training set of measurements — the forward application the paper's
// introduction motivates ("anticipate compression performance and adapt
// compressors to correlation structures"). Alongside the fits it keeps
// per-model cross-validation diagnostics and training provenance, both
// of which travel with the model through SavePredictor/LoadPredictor.
type Predictor struct {
	sel  StatSelector
	fits map[predKey]regression.LogFit
	cv   map[predKey]regression.CVStats
	prov ModelProvenance
}

type predKey struct {
	comp string
	eb   float64
}

// TrainOptions tunes TrainPredictorOpts.
type TrainOptions struct {
	// Folds is the cross-validation fold count; 0 means 5 (clamped to
	// each series' usable point count), negative disables CV entirely.
	Folds int
	// Seed drives the deterministic fold assignment; 0 means 1. The
	// assignment depends only on (series length, folds, seed), so CV
	// diagnostics are bit-identical at any worker count.
	Seed uint64
}

// TrainPredictor fits one log-regression per (compressor, error bound)
// group present in the measurements, against the selected statistic,
// with default 5-fold cross-validation diagnostics per model. Groups
// whose fit fails (e.g. all-identical x) are skipped.
func TrainPredictor(ms []Measurement, sel StatSelector) (*Predictor, error) {
	return TrainPredictorOpts(ms, sel, TrainOptions{})
}

// TrainPredictorOpts is TrainPredictor with explicit control over the
// cross-validation fold count and fold-assignment seed. Series too
// small to cross-validate (< 3 usable points) keep their fit but carry
// no CV diagnostics.
func TrainPredictorOpts(ms []Measurement, sel StatSelector, opts TrainOptions) (*Predictor, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	series := BuildSeries(ms, sel)
	p := &Predictor{sel: sel,
		fits: make(map[predKey]regression.LogFit),
		cv:   make(map[predKey]regression.CVStats)}
	for _, s := range series {
		if !s.FitOK {
			continue
		}
		k := predKey{s.Compressor, s.ErrorBound}
		p.fits[k] = s.Fit
		if opts.Folds >= 0 {
			if cv, err := regression.CrossValidateLog(s.X, s.Y, opts.Folds, opts.Seed); err == nil {
				p.cv[k] = cv
			}
		}
	}
	if len(p.fits) == 0 {
		return nil, fmt.Errorf("core: no fittable series in %d measurements", len(ms))
	}
	p.prov = ModelProvenance{Source: "train", Measurements: len(ms)}
	return p, nil
}

// Models lists the trained (compressor, error bound) pairs in
// deterministic order. Bounds are rendered with %g so nearby trained
// bounds (1e-3 vs 1.4e-3) stay distinguishable — %.0e used to collapse
// them into one display string.
func (p *Predictor) Models() []string {
	out := make([]string, 0, len(p.fits))
	for k := range p.fits {
		out = append(out, fmt.Sprintf("%s@%g", k.comp, k.eb))
	}
	sort.Strings(out)
	return out
}

// Selector reports the statistic the predictor regresses on.
func (p *Predictor) Selector() StatSelector { return p.sel }

// CV returns the cross-validation diagnostics of one trained model,
// when the training run computed them.
func (p *Predictor) CV(compressor string, eb float64) (regression.CVStats, bool) {
	cv, ok := p.cv[predKey{compressor, eb}]
	return cv, ok
}

// Fit returns the fitted log model for one (compressor, bound) pair.
func (p *Predictor) Fit(compressor string, eb float64) (regression.LogFit, bool) {
	fit, ok := p.fits[predKey{compressor, eb}]
	return fit, ok
}

// Provenance reports how the predictor was trained.
func (p *Predictor) Provenance() ModelProvenance { return p.prov }

// SetProvenance records how the predictor was trained, for persistence.
func (p *Predictor) SetProvenance(prov ModelProvenance) { p.prov = prov }

// ErrorBounds lists the distinct trained error bounds in ascending
// order.
func (p *Predictor) ErrorBounds() []float64 {
	seen := make(map[float64]bool)
	var out []float64
	for k := range p.fits {
		if !seen[k.eb] {
			seen[k.eb] = true
			out = append(out, k.eb)
		}
	}
	sort.Float64s(out)
	return out
}

// PredictRatio estimates the CR for a compressor and bound given a
// field's statistics.
func (p *Predictor) PredictRatio(compressor string, eb float64, stats Statistics) (float64, error) {
	fit, ok := p.fits[predKey{compressor, eb}]
	if !ok {
		return 0, fmt.Errorf("core: no model for %s at eb=%g", compressor, eb)
	}
	x := p.sel.Value(stats)
	if x <= 0 {
		return 0, fmt.Errorf("core: statistic %v non-positive (%g), log model undefined", p.sel, x)
	}
	return fit.Predict(x), nil
}

// DefaultIntervalLevel is the confidence level of prediction intervals
// when the caller passes 0.
const DefaultIntervalLevel = 0.95

// Prediction is a point CR estimate with its t-based prediction
// interval [Lo, Hi] at the given confidence level.
type Prediction struct {
	Ratio float64 `json:"ratio"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Level float64 `json:"level"`
}

// PredictRatioInterval is PredictRatio with uncertainty: the point
// estimate plus the two-sided prediction interval of the underlying log
// fit (t-quantile × residual dispersion at the queried x). level 0
// selects DefaultIntervalLevel. Models fitted on too few points for a
// residual dispersion collapse to [Ratio, Ratio].
func (p *Predictor) PredictRatioInterval(compressor string, eb float64, stats Statistics, level float64) (Prediction, error) {
	fit, ok := p.fits[predKey{compressor, eb}]
	if !ok {
		return Prediction{}, fmt.Errorf("core: no model for %s at eb=%g", compressor, eb)
	}
	x := p.sel.Value(stats)
	if x <= 0 {
		return Prediction{}, fmt.Errorf("core: statistic %v non-positive (%g), log model undefined", p.sel, x)
	}
	if level == 0 {
		level = DefaultIntervalLevel
	}
	y, lo, hi := fit.PredictInterval(x, level)
	return Prediction{Ratio: y, Lo: lo, Hi: hi, Level: level}, nil
}

// Selection is the outcome of compressor selection.
type Selection struct {
	Compressor string
	Predicted  float64
}

// SelectCompressor returns the compressor with the highest predicted CR
// at the given bound — the automated SZ-vs-ZFP switching idea of Tao et
// al. (TPDS 2019) driven by correlation statistics instead of
// compressor internals.
func (p *Predictor) SelectCompressor(eb float64, stats Statistics) (Selection, error) {
	// The statistic does not depend on the candidate model, so it is
	// checked once up front: a non-positive statistic used to fall
	// through the per-model `continue` and get misreported as "no
	// models at eb", masking the real cause from the caller.
	anyAtEB := false
	for k := range p.fits {
		if k.eb == eb {
			anyAtEB = true
			break
		}
	}
	if !anyAtEB {
		return Selection{}, fmt.Errorf("core: no models at eb=%g", eb)
	}
	x := p.sel.Value(stats)
	if x <= 0 {
		return Selection{}, fmt.Errorf("core: statistic %v non-positive (%g), log model undefined", p.sel, x)
	}
	best := Selection{Predicted: math.Inf(-1)}
	for k, fit := range p.fits {
		if k.eb != eb {
			continue
		}
		cr := fit.Predict(x)
		if cr > best.Predicted || (cr == best.Predicted && k.comp < best.Compressor) {
			best = Selection{Compressor: k.comp, Predicted: cr}
		}
	}
	return best, nil
}

// PredictField is a convenience that analyzes a field of any rank and
// predicts its CR for a compressor and bound in one call.
func (p *Predictor) PredictField(f *field.Field, compressor string, eb float64, opts AnalysisOptions) (float64, error) {
	return p.PredictFieldCtx(context.Background(), f, compressor, eb, opts)
}

// PredictFieldCtx is PredictField with cooperative cancellation of the
// underlying analysis.
func (p *Predictor) PredictFieldCtx(ctx context.Context, f *field.Field, compressor string, eb float64, opts AnalysisOptions) (float64, error) {
	stats, err := AnalyzeFieldCtx(ctx, f, opts)
	if err != nil {
		return 0, err
	}
	return p.PredictRatio(compressor, eb, stats)
}
