package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lossycorr/internal/field"
	"lossycorr/internal/regression"
)

// Predictor estimates compression ratios for unseen fields from their
// correlation statistics, using the logarithmic regressions fitted on a
// training set of measurements — the forward application the paper's
// introduction motivates ("anticipate compression performance and adapt
// compressors to correlation structures").
type Predictor struct {
	sel  StatSelector
	fits map[predKey]regression.LogFit
}

type predKey struct {
	comp string
	eb   float64
}

// TrainPredictor fits one log-regression per (compressor, error bound)
// group present in the measurements, against the selected statistic.
// Groups whose fit fails (e.g. all-identical x) are skipped.
func TrainPredictor(ms []Measurement, sel StatSelector) (*Predictor, error) {
	series := BuildSeries(ms, sel)
	p := &Predictor{sel: sel, fits: make(map[predKey]regression.LogFit)}
	for _, s := range series {
		if s.FitOK {
			p.fits[predKey{s.Compressor, s.ErrorBound}] = s.Fit
		}
	}
	if len(p.fits) == 0 {
		return nil, fmt.Errorf("core: no fittable series in %d measurements", len(ms))
	}
	return p, nil
}

// Models lists the trained (compressor, error bound) pairs in
// deterministic order.
func (p *Predictor) Models() []string {
	out := make([]string, 0, len(p.fits))
	for k := range p.fits {
		out = append(out, fmt.Sprintf("%s@%.0e", k.comp, k.eb))
	}
	sort.Strings(out)
	return out
}

// PredictRatio estimates the CR for a compressor and bound given a
// field's statistics.
func (p *Predictor) PredictRatio(compressor string, eb float64, stats Statistics) (float64, error) {
	fit, ok := p.fits[predKey{compressor, eb}]
	if !ok {
		return 0, fmt.Errorf("core: no model for %s at eb=%g", compressor, eb)
	}
	x := p.sel.Value(stats)
	if x <= 0 {
		return 0, fmt.Errorf("core: statistic %v non-positive (%g), log model undefined", p.sel, x)
	}
	return fit.Predict(x), nil
}

// Selection is the outcome of compressor selection.
type Selection struct {
	Compressor string
	Predicted  float64
}

// SelectCompressor returns the compressor with the highest predicted CR
// at the given bound — the automated SZ-vs-ZFP switching idea of Tao et
// al. (TPDS 2019) driven by correlation statistics instead of
// compressor internals.
func (p *Predictor) SelectCompressor(eb float64, stats Statistics) (Selection, error) {
	best := Selection{Predicted: math.Inf(-1)}
	for k, fit := range p.fits {
		if k.eb != eb {
			continue
		}
		x := p.sel.Value(stats)
		if x <= 0 {
			continue
		}
		cr := fit.Predict(x)
		if cr > best.Predicted || (cr == best.Predicted && k.comp < best.Compressor) {
			best = Selection{Compressor: k.comp, Predicted: cr}
		}
	}
	if best.Compressor == "" {
		return Selection{}, fmt.Errorf("core: no models at eb=%g", eb)
	}
	return best, nil
}

// PredictField is a convenience that analyzes a field of any rank and
// predicts its CR for a compressor and bound in one call.
func (p *Predictor) PredictField(f *field.Field, compressor string, eb float64, opts AnalysisOptions) (float64, error) {
	return p.PredictFieldCtx(context.Background(), f, compressor, eb, opts)
}

// PredictFieldCtx is PredictField with cooperative cancellation of the
// underlying analysis.
func (p *Predictor) PredictFieldCtx(ctx context.Context, f *field.Field, compressor string, eb float64, opts AnalysisOptions) (float64, error) {
	stats, err := AnalyzeFieldCtx(ctx, f, opts)
	if err != nil {
		return 0, err
	}
	return p.PredictRatio(compressor, eb, stats)
}
