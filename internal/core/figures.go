package core

import (
	"fmt"
	"io"

	"lossycorr/internal/compress"
	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/variogram"
	"lossycorr/internal/xrand"
)

// FigureConfig scales the figure-regeneration experiments. The paper
// uses 1028×1028 fields; the default 256 keeps the full pipeline
// laptop-scale while preserving every qualitative trend (ranges are
// scaled proportionally to the field edge).
type FigureConfig struct {
	Size          int       // field edge; 0 means 256
	Replicates    int       // fields per range; 0 means 2
	MirandaSlices int       // hydro snapshots; 0 means 6
	Seed          uint64    // experiment seed
	Workers       int       // measurement parallelism; 0 means GOMAXPROCS
	ErrorBounds   []float64 // nil means the paper's four bounds
}

func (c FigureConfig) withDefaults() FigureConfig {
	if c.Size == 0 {
		c.Size = 256
	}
	if c.Replicates == 0 {
		c.Replicates = 2
	}
	if c.MirandaSlices == 0 {
		c.MirandaSlices = 6
	}
	if c.ErrorBounds == nil {
		c.ErrorBounds = compress.PaperErrorBounds
	}
	return c
}

// scaledRanges rescales the reference sweeps to the configured size.
func (c FigureConfig) scaledRanges() []float64 {
	k := float64(c.Size) / 256
	out := make([]float64, len(PaperRanges))
	for i, r := range PaperRanges {
		out[i] = r * k
	}
	return out
}

func (c FigureConfig) scaledPairs() [][2]float64 {
	k := float64(c.Size) / 256
	out := make([][2]float64, len(PaperRangePairs))
	for i, p := range PaperRangePairs {
		out[i] = [2]float64{p[0] * k, p[1] * k}
	}
	return out
}

// Suite runs and caches the figure experiments so that figures sharing
// a dataset (3/5/6 on the Gaussian sets, 4/7 on the hydro set) measure
// it only once.
type Suite struct {
	cfg       FigureConfig
	singleMS  []Measurement
	multiMS   []Measurement
	mirandaMS []Measurement
	reg       *compress.Registry
}

// NewSuite prepares a lazy suite with the given configuration.
func NewSuite(cfg FigureConfig) *Suite {
	return &Suite{cfg: cfg.withDefaults(), reg: DefaultRegistry()}
}

// Config returns the (defaulted) configuration in use.
func (s *Suite) Config() FigureConfig { return s.cfg }

func (s *Suite) measureOpts() MeasureOptions {
	return MeasureOptions{
		ErrorBounds: s.cfg.ErrorBounds,
		Workers:     s.cfg.Workers,
	}
}

// SingleRangeMeasurements measures (once) the single-range dataset.
func (s *Suite) SingleRangeMeasurements() ([]Measurement, error) {
	if s.singleMS != nil {
		return s.singleMS, nil
	}
	ds, err := GenerateSingleRange(SingleRangeConfig{
		Rows: s.cfg.Size, Cols: s.cfg.Size,
		Ranges:     s.cfg.scaledRanges(),
		Replicates: s.cfg.Replicates,
		Seed:       s.cfg.Seed + 1,
		Workers:    s.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	s.singleMS, err = MeasureFields(ds.Name, ds.Fields, ds.Labels, s.reg, s.measureOpts())
	return s.singleMS, err
}

// MultiRangeMeasurements measures (once) the multi-range dataset.
func (s *Suite) MultiRangeMeasurements() ([]Measurement, error) {
	if s.multiMS != nil {
		return s.multiMS, nil
	}
	ds, err := GenerateMultiRange(MultiRangeConfig{
		Rows: s.cfg.Size, Cols: s.cfg.Size,
		RangePairs: s.cfg.scaledPairs(),
		Replicates: s.cfg.Replicates,
		Seed:       s.cfg.Seed + 2,
		Workers:    s.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	s.multiMS, err = MeasureFields(ds.Name, ds.Fields, ds.Labels, s.reg, s.measureOpts())
	return s.multiMS, err
}

// MirandaMeasurements measures (once) the Miranda-substitute dataset.
func (s *Suite) MirandaMeasurements() ([]Measurement, error) {
	if s.mirandaMS != nil {
		return s.mirandaMS, nil
	}
	// Like the paper — where Miranda slices (384²) are smaller than the
	// Gaussian fields (1028²) — the hydro set runs at half the Gaussian
	// edge, which also lets the instability develop (t→3) at tractable
	// cost.
	ds, err := GenerateMiranda(MirandaConfig{
		Size:    s.cfg.Size / 2,
		Slices:  s.cfg.MirandaSlices,
		TEnd:    3.0,
		Seed:    s.cfg.Seed + 3,
		Workers: s.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	s.mirandaMS, err = MeasureFields(ds.Name, ds.Fields, ds.Labels, s.reg, s.measureOpts())
	return s.mirandaMS, err
}

// Figure1 writes the illustrative variogram of Figure 1: the empirical
// semi-variogram of one single-range field next to the fitted and true
// squared-exponential curves, annotated with nugget/sill/range.
func (s *Suite) Figure1(w io.Writer) error {
	trueRange := float64(s.cfg.Size) / 16
	f, err := gaussian.Generate(gaussian.Params{
		Rows: s.cfg.Size, Cols: s.cfg.Size, Range: trueRange, Seed: s.cfg.Seed + 11,
	})
	if err != nil {
		return err
	}
	emp, err := variogram.Compute(f, variogram.Options{Seed: s.cfg.Seed})
	if err != nil {
		return err
	}
	model, err := variogram.Fit(emp)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== fig1: variogram as a function of distance h ==\n")
	fmt.Fprintf(w, "true range=%.2f  fitted range=%.4f  sill=%.4f  nugget=0 (model)\n",
		trueRange, model.Range, model.Sill)
	fmt.Fprintf(w, "%8s %14s %14s %14s\n", "h", "empirical", "fitted", "theoretical")
	for i, h := range emp.H {
		fmt.Fprintf(w, "%8.1f %14.6f %14.6f %14.6f\n",
			h, emp.Gamma[i], model.Gamma(h), gaussian.TheoreticalVariogram(h, trueRange, 1))
	}
	return nil
}

// Figure2 writes summary statistics (and optional PGM images) of
// example fields from each dataset — the textual stand-in for the
// paper's Figure 2 gallery.
func (s *Suite) Figure2(w io.Writer, pgmSink func(name string) (io.WriteCloser, error)) error {
	fmt.Fprintf(w, "== fig2: original images (summary statistics) ==\n")
	emit := func(name string, g *grid.Grid) error {
		st := g.Summary()
		fmt.Fprintf(w, "%-24s %4dx%-4d min=%9.4f max=%9.4f mean=%9.4f var=%9.4f\n",
			name, g.Rows, g.Cols, st.Min, st.Max, st.Mean, st.Variance)
		if pgmSink == nil {
			return nil
		}
		wc, err := pgmSink(name + ".pgm")
		if err != nil {
			return err
		}
		if err := g.WritePGM(wc); err != nil {
			wc.Close()
			return err
		}
		return wc.Close()
	}
	rng := xrand.New(s.cfg.Seed + 21)
	for _, a := range []float64{4, 16, 48} {
		a = a * float64(s.cfg.Size) / 256
		f, err := gaussian.Generate(gaussian.Params{
			Rows: s.cfg.Size, Cols: s.cfg.Size, Range: a, Seed: rng.Uint64(),
		})
		if err != nil {
			return err
		}
		if err := emit(fmt.Sprintf("gaussian-range-%.0f", a), f); err != nil {
			return err
		}
	}
	mds, err := GenerateMiranda(MirandaConfig{Size: s.cfg.Size / 2, Slices: 2, Seed: s.cfg.Seed + 22})
	if err != nil {
		return err
	}
	for i, f := range mds.Fields {
		if err := emit(fmt.Sprintf("miranda-velocityx-t%.2f", mds.Labels[i]), f); err != nil {
			return err
		}
	}
	return nil
}

// Figure3 regenerates "compression ratios against estimated variogram
// range" for the single-range (left) and multi-range (right) Gaussian
// datasets, one panel per compressor per dataset.
func (s *Suite) Figure3() (*Figure, error) {
	single, err := s.SingleRangeMeasurements()
	if err != nil {
		return nil, err
	}
	multi, err := s.MultiRangeMeasurements()
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "fig3", Title: "CR vs estimated global variogram range (Gaussian fields)"}
	for _, p := range PanelsByCompressor(single, XGlobalRange, -1) {
		p.Title = "single-range / " + p.Title
		fig.Panels = append(fig.Panels, p)
	}
	for _, p := range PanelsByCompressor(multi, XGlobalRange, -1) {
		p.Title = "multi-range / " + p.Title
		fig.Panels = append(fig.Panels, p)
	}
	return fig, nil
}

// Figure4 regenerates the Miranda panels of CR vs global variogram
// range, including the paper's reduced panel restricted to error bounds
// strictly below 1e-2 for the SZ-like compressor.
func (s *Suite) Figure4() (*Figure, error) {
	ms, err := s.MirandaMeasurements()
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "fig4", Title: "CR vs estimated global variogram range (Miranda velocityx)"}
	fig.Panels = append(fig.Panels, PanelsByCompressor(ms, XGlobalRange, -1)...)
	for _, p := range PanelsByCompressor(ms, XGlobalRange, 1e-2) {
		if p.Title == "sz-like" {
			p.Title = "sz-like (eb < 1e-2)"
			fig.Panels = append(fig.Panels, p)
		}
	}
	return fig, nil
}

// Figure5 regenerates CR vs std of local variogram ranges for the two
// Gaussian datasets.
func (s *Suite) Figure5() (*Figure, error) {
	single, err := s.SingleRangeMeasurements()
	if err != nil {
		return nil, err
	}
	multi, err := s.MultiRangeMeasurements()
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "fig5", Title: "CR vs std of local variogram range (Gaussian fields)"}
	for _, p := range PanelsByCompressor(single, XLocalRangeStd, -1) {
		p.Title = "single-range / " + p.Title
		fig.Panels = append(fig.Panels, p)
	}
	for _, p := range PanelsByCompressor(multi, XLocalRangeStd, -1) {
		p.Title = "multi-range / " + p.Title
		fig.Panels = append(fig.Panels, p)
	}
	return fig, nil
}

// Figure6 regenerates CR vs std of local SVD truncation level for the
// Gaussian datasets. The paper omits MGARD here; so do we.
func (s *Suite) Figure6() (*Figure, error) {
	single, err := s.SingleRangeMeasurements()
	if err != nil {
		return nil, err
	}
	multi, err := s.MultiRangeMeasurements()
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "fig6", Title: "CR vs std of local SVD truncation level (Gaussian fields)"}
	add := func(ms []Measurement, prefix string) {
		for _, p := range PanelsByCompressor(ms, XLocalSVDStd, -1) {
			if p.Title == "mgard-like" {
				continue
			}
			p.Title = prefix + p.Title
			fig.Panels = append(fig.Panels, p)
		}
	}
	add(single, "single-range / ")
	add(multi, "multi-range / ")
	return fig, nil
}

// Figure7 regenerates the Miranda panels against both local statistics
// (std of local variogram ranges, std of local SVD truncation levels),
// with the SZ panels also shown restricted to eb < 1e-2.
func (s *Suite) Figure7() (*Figure, error) {
	ms, err := s.MirandaMeasurements()
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "fig7", Title: "CR vs local statistics (Miranda velocityx)"}
	for _, sel := range []StatSelector{XLocalRangeStd, XLocalSVDStd} {
		for _, p := range PanelsByCompressor(ms, sel, -1) {
			if p.Title == "mgard-like" {
				continue // paper shows SZ and ZFP for the local statistics
			}
			fig.Panels = append(fig.Panels, p)
		}
		for _, p := range PanelsByCompressor(ms, sel, 1e-2) {
			if p.Title == "sz-like" {
				p.Title = "sz-like (eb < 1e-2)"
				fig.Panels = append(fig.Panels, p)
			}
		}
	}
	return fig, nil
}

// Figure regenerates figure n (3–7) as structured data.
func (s *Suite) Figure(n int) (*Figure, error) {
	switch n {
	case 3:
		return s.Figure3()
	case 4:
		return s.Figure4()
	case 5:
		return s.Figure5()
	case 6:
		return s.Figure6()
	case 7:
		return s.Figure7()
	default:
		return nil, fmt.Errorf("core: figure %d has no structured form (1 and 2 are textual; see Figure1/Figure2)", n)
	}
}
