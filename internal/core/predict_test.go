package core

import (
	"context"
	"math"
	"testing"

	"lossycorr/internal/compress"
	"lossycorr/internal/field"
)

func syntheticMeasurements() []Measurement {
	// compressor "fast" has CR = 1 + 2·ln(x); "tight" has CR = 3 + ln(x):
	// fast wins for x > e², tight wins below
	var ms []Measurement
	for _, x := range []float64{2, 4, 8, 16, 32, 64} {
		ms = append(ms, Measurement{
			Stats: Statistics{StatGlobalRange: x},
			Results: []compress.Result{
				{Compressor: "fast", ErrorBound: 1e-3, Ratio: 1 + 2*math.Log(x)},
				{Compressor: "tight", ErrorBound: 1e-3, Ratio: 3 + math.Log(x)},
			},
		})
	}
	return ms
}

func TestTrainPredictorAndPredict(t *testing.T) {
	p, err := TrainPredictor(syntheticMeasurements(), XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Models()) != 2 {
		t.Fatalf("models %v", p.Models())
	}
	got, err := p.PredictRatio("fast", 1e-3, Statistics{StatGlobalRange: math.E})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("predicted %v want 3", got)
	}
}

func TestPredictRatioErrors(t *testing.T) {
	p, err := TrainPredictor(syntheticMeasurements(), XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictRatio("nope", 1e-3, Statistics{StatGlobalRange: 2}); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := p.PredictRatio("fast", 1e-9, Statistics{StatGlobalRange: 2}); err == nil {
		t.Fatal("unknown bound must error")
	}
	if _, err := p.PredictRatio("fast", 1e-3, Statistics{StatGlobalRange: 0}); err == nil {
		t.Fatal("non-positive statistic must error")
	}
}

func TestSelectCompressorCrossover(t *testing.T) {
	p, err := TrainPredictor(syntheticMeasurements(), XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	// below the e² crossover "tight" wins, above it "fast" wins
	low, err := p.SelectCompressor(1e-3, Statistics{StatGlobalRange: 2})
	if err != nil {
		t.Fatal(err)
	}
	if low.Compressor != "tight" {
		t.Fatalf("low selection %+v", low)
	}
	high, err := p.SelectCompressor(1e-3, Statistics{StatGlobalRange: 50})
	if err != nil {
		t.Fatal(err)
	}
	if high.Compressor != "fast" {
		t.Fatalf("high selection %+v", high)
	}
	if _, err := p.SelectCompressor(42, Statistics{StatGlobalRange: 2}); err == nil {
		t.Fatal("unknown bound must error")
	}
}

func TestTrainPredictorNoData(t *testing.T) {
	if _, err := TrainPredictor(nil, XGlobalRange); err == nil {
		t.Fatal("expected error on empty training set")
	}
}

func TestPredictFieldEndToEnd(t *testing.T) {
	// train log-regression models on four real fields, then predict an
	// unseen field's ratio and compare with the measured truth
	var train []Measurement
	for i, rang := range []float64{4, 8, 16, 32} {
		g := smallField(t, rang, uint64(30+i))
		m, err := measureOne(context.Background(), "train", i, field.FromGrid(g), nil, DefaultRegistry(),
			[]float64{1e-3}, AnalysisOptions{SkipLocal: true}, AnalyzeFieldCtx, compress.RunField)
		if err != nil {
			t.Fatal(err)
		}
		train = append(train, m)
	}
	p, err := TrainPredictor(train, XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	f := smallField(t, 12, 20)
	pred, err := p.PredictField(field.FromGrid(f), "sz-like", 1e-3, AnalysisOptions{SkipLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DefaultRegistry().Get("sz-like")
	if err != nil {
		t.Fatal(err)
	}
	res, err := compress.Run(c, f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// prediction should land within a factor of 2 of the truth
	if pred < res.Ratio/2 || pred > res.Ratio*2 {
		t.Fatalf("predicted %v, actual %v", pred, res.Ratio)
	}
}
