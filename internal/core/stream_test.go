package core

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"lossycorr/internal/fft"
	"lossycorr/internal/field"
	"lossycorr/internal/variogram"
	"lossycorr/internal/xrand"
)

func tempReader(t *testing.T, write func(w io.Writer) error) *field.TileReader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "field.lcf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := field.OpenTileReader(path, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestAnalyzeReaderOutOfCore is the PR's acceptance scenario: a 3D
// volume more than 4× the memory budget, analyzed end to end with the
// windowed statistics and sampled global variogram bit-identical to the
// in-RAM analysis, and the transform pool's peak gauge under the
// budget.
func TestAnalyzeReaderOutOfCore(t *testing.T) {
	shape := []int{40, 64, 64} // 1.25 MiB widened
	rng := xrand.New(1234)
	f := field.New(shape...)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	tr := tempReader(t, f.WriteBinary)

	const budget = int64(300 << 10) // < 1/4 of the widened volume
	if int64(tr.Len()*8) < 4*budget {
		t.Fatalf("test volume %d B is not 4x the %d B budget", tr.Len()*8, budget)
	}
	opts := AnalysisOptions{Window: 16, MemBudget: budget, Workers: 3}
	want, err := AnalyzeFieldCtx(context.Background(), f, AnalysisOptions{Window: 16, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	fft.ResetPeakBytes()
	got, err := AnalyzeReaderCtx(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	peak := fft.PeakBytes()
	if !got.Equal(want) {
		t.Fatalf("streamed stats %+v != in-RAM %+v", got, want)
	}
	if peak > budget {
		t.Fatalf("peak pool bytes %d exceed budget %d", peak, budget)
	}
	if peak == 0 {
		t.Fatal("streaming analysis did not touch the transform pool")
	}
}

// TestAnalyzeReaderOutOfCoreFFT runs the same scenario with the
// spectral global variogram: the sharded engine's pair counts are
// exact, so Gamma (and the fitted range) agree with the in-RAM FFT
// analysis to roundoff; windowed statistics stay bit-identical.
func TestAnalyzeReaderOutOfCoreFFT(t *testing.T) {
	// Elongated along axis 0: the spectral shard streams axis-0 slabs,
	// so this shape shards well below the in-RAM transform footprint.
	shape := []int{256, 32, 32}
	rng := xrand.New(5678)
	f := field.New(shape...)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	tr := tempReader(t, f.WriteBinary)

	const budget = int64(12 << 20)
	opts := AnalysisOptions{Window: 16, MemBudget: budget, Workers: 2, VariogramFFT: true}
	want, err := AnalyzeFieldCtx(context.Background(), f, AnalysisOptions{Window: 16, Workers: 2, VariogramFFT: true})
	if err != nil {
		t.Fatal(err)
	}
	fft.ResetPeakBytes()
	got, err := AnalyzeReaderCtx(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	peak := fft.PeakBytes()
	if peak > budget {
		t.Fatalf("peak pool bytes %d exceed budget %d", peak, budget)
	}
	// Windowed statistics: bit-identical.
	if got.LocalRangeStd() != want.LocalRangeStd() || got.LocalSVDStd() != want.LocalSVDStd() {
		t.Fatalf("windowed stats differ: %+v vs %+v", got, want)
	}
	// Spectral global range: tolerance-equivalent.
	relDiff := func(a, b float64) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		m := b
		if m < 0 {
			m = -m
		}
		if m == 0 {
			return d
		}
		return d / m
	}
	if relDiff(got.GlobalRange(), want.GlobalRange()) > 1e-6 || relDiff(got.GlobalSill(), want.GlobalSill()) > 1e-6 {
		t.Fatalf("spectral global fit differs: %+v vs %+v", got, want)
	}
}

// TestAnalyzeReaderSlurp: under-budget files take the in-RAM path on
// their stored lane, bit-identical to direct analysis — both lanes.
func TestAnalyzeReaderSlurp(t *testing.T) {
	shape := []int{48, 52}
	rng := xrand.New(9)
	f := field.New(shape...)
	f32 := field.New32(shape...)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
		f32.Data[i] = float32(f.Data[i])
	}
	opts := AnalysisOptions{Window: 16, MemBudget: 1 << 30}

	tr := tempReader(t, f.WriteBinary)
	want, err := AnalyzeField(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeReader(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("slurped stats %+v != direct %+v", got, want)
	}

	tr32 := tempReader(t, f32.WriteBinary)
	want32, err := AnalyzeField32(f32, opts)
	if err != nil {
		t.Fatal(err)
	}
	got32, err := AnalyzeReader(tr32, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !got32.Equal(want32) {
		t.Fatalf("slurped f32 stats %+v != direct %+v", got32, want32)
	}
}

// TestAnalyzeReaderStreamF32: an over-budget float32 file streams with
// windowed statistics bit-identical to the in-RAM float32 lane.
func TestAnalyzeReaderStreamF32(t *testing.T) {
	shape := []int{40, 64, 64}
	rng := xrand.New(77)
	f32 := field.New32(shape...)
	for i := range f32.Data {
		f32.Data[i] = float32(rng.NormFloat64())
	}
	tr := tempReader(t, f32.WriteBinary)
	const budget = int64(200 << 10)
	want, err := AnalyzeField32(f32, AnalysisOptions{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeReader(tr, AnalysisOptions{Window: 16, MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("streamed f32 stats %+v != in-RAM %+v", got, want)
	}
}

// TestAnalyzeReaderBudgetTooSmall: a budget below one window surfaces
// the planner's error instead of over-allocating.
func TestAnalyzeReaderBudgetTooSmall(t *testing.T) {
	shape := []int{64, 64}
	f := field.New(shape...)
	rng := xrand.New(3)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	tr := tempReader(t, f.WriteBinary)
	_, err := AnalyzeReader(tr, AnalysisOptions{
		Window: 32, MemBudget: 4 << 10,
		VariogramOpts: variogram.Options{MaxPairs: 100},
	})
	if err == nil {
		t.Fatal("expected planner error for sub-window budget")
	}
}
