package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"lossycorr/internal/regression"
)

// ModelSchema is the versioned identifier written into every persisted
// model file. LoadPredictor rejects any other value, so files written by
// a future incompatible schema fail loudly instead of being
// half-interpreted.
const ModelSchema = "lossycorr-model/v1"

// ModelProvenance records how a predictor was trained. It travels with
// the model through SavePredictor/LoadPredictor so a serving fleet can
// report where each model came from without re-deriving it.
type ModelProvenance struct {
	// Source is "train" for freshly trained predictors and "file" after
	// LoadPredictor (callers may overwrite it with something richer,
	// e.g. the originating path or service canon).
	Source string `json:"source,omitempty"`
	// Rank is the field rank the training set was built from (2 or 3);
	// 0 when unknown.
	Rank int `json:"rank,omitempty"`
	// TrainFields and TrainEdge describe the synthetic training ladder
	// when one was used (count of fields per correlation range, edge
	// length); 0 when unknown.
	TrainFields int `json:"trainFields,omitempty"`
	TrainEdge   int `json:"trainEdge,omitempty"`
	// Seed is the RNG seed of the training-field generator; 0 when
	// unknown or not applicable.
	Seed uint64 `json:"seed,omitempty"`
	// Measurements is the number of measurements the fits were built
	// from.
	Measurements int `json:"measurements,omitempty"`
}

// Selector persistence names. These are stable identifiers, not display
// strings — StatSelector.String() is a paper axis label and free to
// change, so the model file uses these instead.
const (
	selNameGlobalRange   = "global-range"
	selNameLocalRangeStd = "local-range-std"
	selNameLocalSVDStd   = "local-svd-std"
)

// Key returns the selector's stable persistence name.
func (s StatSelector) Key() string {
	switch s {
	case XGlobalRange:
		return selNameGlobalRange
	case XLocalRangeStd:
		return selNameLocalRangeStd
	case XLocalSVDStd:
		return selNameLocalSVDStd
	default:
		return fmt.Sprintf("unknown-%d", int(s))
	}
}

// ParseStatSelector inverts StatSelector.Key.
func ParseStatSelector(name string) (StatSelector, error) {
	switch name {
	case selNameGlobalRange:
		return XGlobalRange, nil
	case selNameLocalRangeStd:
		return XLocalRangeStd, nil
	case selNameLocalSVDStd:
		return XLocalSVDStd, nil
	default:
		return 0, fmt.Errorf("core: unknown statistic selector %q", name)
	}
}

// modelRecord is one persisted (compressor, error bound) model: the
// fitted coefficients plus optional cross-validation diagnostics.
type modelRecord struct {
	Compressor string              `json:"compressor"`
	ErrorBound float64             `json:"errorBound"`
	Fit        regression.LogFit   `json:"fit"`
	CV         *regression.CVStats `json:"cv,omitempty"`
}

// modelFile is the on-disk layout of a persisted predictor.
type modelFile struct {
	Schema     string          `json:"schema"`
	Selector   string          `json:"selector"`
	Provenance ModelProvenance `json:"provenance,omitempty"`
	Models     []modelRecord   `json:"models"`
}

// SavePredictor writes the predictor as versioned, indented JSON. The
// records are sorted by compressor then bound, so saving the same
// predictor twice produces byte-identical output. Because
// encoding/json round-trips float64 exactly (shortest-representation
// encoding), a predictor reloaded from this file produces bit-identical
// predictions to the original.
func SavePredictor(w io.Writer, p *Predictor) error {
	mf := modelFile{
		Schema:     ModelSchema,
		Selector:   p.sel.Key(),
		Provenance: p.prov,
		Models:     make([]modelRecord, 0, len(p.fits)),
	}
	for k, fit := range p.fits {
		rec := modelRecord{Compressor: k.comp, ErrorBound: k.eb, Fit: fit}
		if cv, ok := p.cv[k]; ok {
			cvCopy := cv
			rec.CV = &cvCopy
		}
		mf.Models = append(mf.Models, rec)
	}
	sort.Slice(mf.Models, func(i, j int) bool {
		a, b := mf.Models[i], mf.Models[j]
		if a.Compressor != b.Compressor {
			return a.Compressor < b.Compressor
		}
		return a.ErrorBound < b.ErrorBound
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mf)
}

// LoadPredictor reads a predictor previously written by SavePredictor.
// Unknown schema versions and selector names are rejected — forward
// compatibility means failing loudly, not guessing. The loaded
// predictor's provenance Source is rewritten to "file" unless the file
// recorded something else.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	dec := json.NewDecoder(r)
	var mf modelFile
	if err := dec.Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if mf.Schema != ModelSchema {
		return nil, fmt.Errorf("core: unsupported model schema %q (want %q)", mf.Schema, ModelSchema)
	}
	sel, err := ParseStatSelector(mf.Selector)
	if err != nil {
		return nil, err
	}
	if len(mf.Models) == 0 {
		return nil, fmt.Errorf("core: model file has no models")
	}
	p := &Predictor{sel: sel,
		fits: make(map[predKey]regression.LogFit, len(mf.Models)),
		cv:   make(map[predKey]regression.CVStats)}
	for _, rec := range mf.Models {
		if rec.Compressor == "" {
			return nil, fmt.Errorf("core: model record missing compressor")
		}
		if !(rec.ErrorBound > 0) {
			return nil, fmt.Errorf("core: model %s has non-positive error bound %g", rec.Compressor, rec.ErrorBound)
		}
		k := predKey{rec.Compressor, rec.ErrorBound}
		if _, dup := p.fits[k]; dup {
			return nil, fmt.Errorf("core: duplicate model %s@%g", rec.Compressor, rec.ErrorBound)
		}
		p.fits[k] = rec.Fit
		if rec.CV != nil {
			p.cv[k] = *rec.CV
		}
	}
	p.prov = mf.Provenance
	if p.prov.Source == "" || p.prov.Source == "train" {
		p.prov.Source = "file"
	}
	return p, nil
}
