package core

import (
	"context"
	"testing"

	"lossycorr/internal/compress"
	"lossycorr/internal/field"
	"lossycorr/internal/gaussian"
	"lossycorr/internal/variogram"
)

func testVolume(t testing.TB, n int, rang float64, seed uint64) *field.Field {
	t.Helper()
	v, err := gaussian.Generate3D(gaussian.Params3D{Nz: n, Ny: n, Nx: n, Range: rang, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return field.FromVolume(v)
}

// TestAnalyzeVolumeSerialParallelIdentical extends the determinism
// contract to rank 3: all three statistics of a volume are
// bit-identical at any worker count.
func TestAnalyzeVolumeSerialParallelIdentical(t *testing.T) {
	f := testVolume(t, 24, 3, 11)
	opts := AnalysisOptions{Window: 8, Workers: 1, VariogramOpts: variogram.Options{Exact: true}}
	ref, err := AnalyzeField(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.GlobalRange() <= 0 || ref.LocalSVDStd() < 0 {
		t.Fatalf("degenerate stats %+v", ref)
	}
	for _, w := range []int{2, 4, 16} {
		opts.Workers = w
		got, err := AnalyzeField(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref) {
			t.Fatalf("workers=%d: %+v want %+v", w, got, ref)
		}
	}
}

// TestMeasureFieldSetMixedRanks measures a grid and a volume in one
// call: each field must sweep the codecs of its own rank.
func TestMeasureFieldSetMixedRanks(t *testing.T) {
	g, err := gaussian.Generate(gaussian.Params{Rows: 48, Cols: 48, Range: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fields := []*field.Field{field.FromGrid(g), testVolume(t, 16, 2, 3)}
	ms, err := MeasureFieldSet("mixed", fields, []float64{6, 2}, DefaultRegistry(), MeasureOptions{
		Analysis:    AnalysisOptions{Window: 8},
		ErrorBounds: []float64{1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("%d measurements", len(ms))
	}
	names2 := map[string]bool{}
	for _, r := range ms[0].Results {
		names2[r.Compressor] = true
		if !r.BoundOK {
			t.Fatalf("2D bound violated: %+v", r)
		}
	}
	if !names2["sz-like"] || !names2["zfp-like"] || !names2["mgard-like"] || len(names2) != 3 {
		t.Fatalf("2D field swept %v", names2)
	}
	names3 := map[string]bool{}
	for _, r := range ms[1].Results {
		names3[r.Compressor] = true
		if !r.BoundOK {
			t.Fatalf("3D bound violated: %+v", r)
		}
	}
	if !names3["sz-like-3d"] || !names3["zfp-like-3d"] || len(names3) != 2 {
		t.Fatalf("3D field swept %v", names3)
	}
	if ms[1].Stats.GlobalRange() <= 0 {
		t.Fatalf("volume stats %+v", ms[1].Stats)
	}
}

// TestMeasureFieldSetSerialParallelIdentical extends the MeasureFields
// determinism test to volumes.
func TestMeasureFieldSetSerialParallelIdentical(t *testing.T) {
	fields := []*field.Field{
		testVolume(t, 16, 2, 5),
		testVolume(t, 16, 4, 6),
	}
	opts := MeasureOptions{
		Analysis:    AnalysisOptions{Window: 8},
		ErrorBounds: []float64{1e-3},
		Workers:     1,
	}
	ref, err := MeasureFieldSet("vols", fields, nil, DefaultRegistry(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	got, err := MeasureFieldSet("vols", fields, nil, DefaultRegistry(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !got[i].Stats.Equal(ref[i].Stats) {
			t.Fatalf("field %d stats differ: %+v vs %+v", i, got[i].Stats, ref[i].Stats)
		}
		for j := range ref[i].Results {
			if got[i].Results[j] != ref[i].Results[j] {
				t.Fatalf("field %d result %d differs", i, j)
			}
		}
	}
}

// TestPredictorFromVolumes trains log models on 3D measurements and
// selects a rank-3 codec for an unseen volume — the forward
// application running end to end on volumes.
func TestPredictorFromVolumes(t *testing.T) {
	var ms []Measurement
	for i, rang := range []float64{1.5, 2.5, 4, 6} {
		f := testVolume(t, 16, rang, uint64(20+i))
		m, err := measureOne(context.Background(), "train3d", i, f, nil, DefaultRegistry(),
			[]float64{1e-3}, AnalysisOptions{SkipLocal: true}, AnalyzeFieldCtx, compress.RunField)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	p, err := TrainPredictor(ms, XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	target := testVolume(t, 16, 3, 99)
	stats, err := AnalyzeField(target, AnalysisOptions{SkipLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := p.SelectCompressor(1e-3, stats)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Compressor != "sz-like-3d" && sel.Compressor != "zfp-like-3d" {
		t.Fatalf("selected non-3D codec %q", sel.Compressor)
	}
	if _, err := p.PredictField(target, sel.Compressor, 1e-3, AnalysisOptions{SkipLocal: true}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnalyze3D(b *testing.B) {
	f := testVolume(b, 32, 4, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeField(f, AnalysisOptions{Window: 16}); err != nil {
			b.Fatal(err)
		}
	}
}
