package core

import (
	"testing"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/xrand"
)

// legacySingleRange is the verbatim pre-parallel construction of the
// single-range dataset, kept as the bit-identity reference for the
// fanned-out generator.
func legacySingleRange(cfg SingleRangeConfig) (*Dataset, error) {
	reps := cfg.Replicates
	if reps <= 0 {
		reps = 1
	}
	rng := xrand.New(cfg.Seed)
	ds := &Dataset{Name: "gaussian-single"}
	for _, a := range cfg.Ranges {
		s, err := gaussian.NewSampler(gaussian.Params{Rows: cfg.Rows, Cols: cfg.Cols, Range: a})
		if err != nil {
			return nil, err
		}
		for r := 0; r < reps; r++ {
			f, err := s.Sample(rng.Split())
			if err != nil {
				return nil, err
			}
			ds.Fields = append(ds.Fields, f)
			ds.Labels = append(ds.Labels, a)
		}
	}
	return ds, nil
}

func datasetsIdentical(t *testing.T, a, b *Dataset, label string) {
	t.Helper()
	if len(a.Fields) != len(b.Fields) || len(a.Labels) != len(b.Labels) {
		t.Fatalf("%s: size mismatch %d/%d vs %d/%d", label,
			len(a.Fields), len(a.Labels), len(b.Fields), len(b.Labels))
	}
	for i := range a.Fields {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("%s: label %d: %v vs %v", label, i, a.Labels[i], b.Labels[i])
		}
		fa, fb := a.Fields[i], b.Fields[i]
		if fa.Rows != fb.Rows || fa.Cols != fb.Cols {
			t.Fatalf("%s: field %d shape mismatch", label, i)
		}
		for j := range fa.Data {
			if fa.Data[j] != fb.Data[j] {
				t.Fatalf("%s: field %d differs at element %d", label, i, j)
			}
		}
	}
}

// TestGenerateSingleRangeBitIdenticalToLegacy pins the parallel
// generator against the literal serial construction, at several worker
// counts.
func TestGenerateSingleRangeBitIdenticalToLegacy(t *testing.T) {
	cfg := SingleRangeConfig{Rows: 48, Cols: 40, Ranges: []float64{3, 7}, Replicates: 2, Seed: 5}
	ref, err := legacySingleRange(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3, 8} {
		cfg.Workers = w
		got, err := GenerateSingleRange(cfg)
		if err != nil {
			t.Fatal(err)
		}
		datasetsIdentical(t, ref, got, "single-range")
	}
}

// TestGenerateMultiRangeWorkerInvariant pins the multi-range generator
// across worker counts (seeds are pre-drawn serially, so every count
// must reproduce the Workers: 1 dataset bitwise).
func TestGenerateMultiRangeWorkerInvariant(t *testing.T) {
	cfg := MultiRangeConfig{Rows: 40, Cols: 40, RangePairs: [][2]float64{{2, 6}, {3, 9}},
		Replicates: 2, Seed: 9, Workers: 1}
	ref, err := GenerateMultiRange(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{3, 8} {
		cfg.Workers = w
		got, err := GenerateMultiRange(cfg)
		if err != nil {
			t.Fatal(err)
		}
		datasetsIdentical(t, ref, got, "multi-range")
	}
}

// TestGenerateMirandaWorkerInvariant pins the per-slice simulation
// fan-out across worker counts.
func TestGenerateMirandaWorkerInvariant(t *testing.T) {
	cfg := MirandaConfig{Size: 32, Slices: 3, TEnd: 0.4, Seed: 4, Workers: 1}
	ref, err := GenerateMiranda(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		cfg.Workers = w
		got, err := GenerateMiranda(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Labels) != len(ref.Labels) {
			t.Fatalf("slice count %d vs %d", len(got.Labels), len(ref.Labels))
		}
		for i := range ref.Labels {
			if got.Labels[i] != ref.Labels[i] {
				t.Fatalf("workers=%d: time %d: %v vs %v", w, i, got.Labels[i], ref.Labels[i])
			}
		}
		datasetsIdentical(t, ref, got, "miranda")
	}
}
