// Package core implements the paper's contribution: the pipeline that
// characterizes correlation structure of 2D scientific fields
// (global/local variogram ranges, local SVD truncation levels), links
// those statistics to error-bounded lossy compression ratios through
// logarithmic regression models, and regenerates every figure of the
// evaluation. It also provides the forward application the paper
// motivates: predicting compression ratios from correlation statistics
// and selecting a compressor accordingly.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"lossycorr/internal/compress"
	"lossycorr/internal/field"
	"lossycorr/internal/grid"
	"lossycorr/internal/mgardlike"
	"lossycorr/internal/parallel"
	"lossycorr/internal/stat"
	"lossycorr/internal/svdstat"
	"lossycorr/internal/szlike"
	"lossycorr/internal/variogram"
	"lossycorr/internal/zfplike"
)

// DefaultWindow is the paper's H=32 local-statistics window.
const DefaultWindow = 32

// The built-in statistic kernels register here, in the order that
// fixes the default run order and error precedence (global variogram,
// then local variogram, then local SVD — the historical analysis
// order). Additional kernels register themselves from their own
// package init; nothing in core needs to change for them to become
// selectable and listable.
func init() {
	stat.MustRegister(variogram.RangeKernel{})
	stat.MustRegister(variogram.LocalRangeKernel{})
	stat.MustRegister(svdstat.LevelKernel{})
}

// Result keys of the built-in kernels. The strings are the service
// layer's wire contract (JSON object keys) and the Statistics map
// keys.
const (
	StatGlobalRange   = "globalRange"   // estimated global variogram range (Figures 3, 4)
	StatGlobalSill    = "globalSill"    // fitted sill (≈ field variance)
	StatLocalRangeStd = "localRangeStd" // std of local variogram ranges, H windows (Figure 5, 7-left)
	StatLocalSVDStd   = "localSVDStd"   // std of local SVD truncation levels (Figure 6, 7-right)
)

// Statistics is the keyed result set of an analysis: one entry per
// output of each kernel that ran. Statistics that were not computed
// (deselected kernels, SkipLocal) are absent — not zero values
// masquerading as results — and marshal as absent JSON keys. The
// accessor methods read the built-in kernels' outputs, returning 0
// when absent.
type Statistics map[string]float64

// GlobalRange is the estimated global variogram range.
func (s Statistics) GlobalRange() float64 { return s[StatGlobalRange] }

// GlobalSill is the fitted sill (≈ field variance).
func (s Statistics) GlobalSill() float64 { return s[StatGlobalSill] }

// LocalRangeStd is the std of local variogram ranges over H-windows.
func (s Statistics) LocalRangeStd() float64 { return s[StatLocalRangeStd] }

// LocalSVDStd is the std of local SVD truncation levels.
func (s Statistics) LocalSVDStd() float64 { return s[StatLocalSVDStd] }

// Has reports whether the statistic under key was computed.
func (s Statistics) Has(key string) bool {
	_, ok := s[key]
	return ok
}

// Equal reports whether two result sets carry exactly the same keys
// and bits (NaNs compare equal to themselves, so a degenerate
// statistic still round-trips).
func (s Statistics) Equal(o Statistics) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		w, ok := o[k]
		if !ok || math.Float64bits(v) != math.Float64bits(w) {
			return false
		}
	}
	return true
}

// MarshalJSON clamps non-finite statistics to the same sentinels
// compress.Result uses for PSNR (±1e308 for infinities, 0 for NaN): a
// degenerate field (e.g. constant values) can produce NaN or Inf here,
// which encoding/json rejects, and a marshal failure inside a handler
// would otherwise truncate an already-committed response. Keys marshal
// in sorted order (encoding/json's map behavior), keeping responses
// and cache digests deterministic.
func (s Statistics) MarshalJSON() ([]byte, error) {
	w := make(map[string]float64, len(s))
	for k, v := range s {
		switch {
		case math.IsInf(v, 1):
			v = 1e308
		case math.IsInf(v, -1):
			v = -1e308
		case math.IsNaN(v):
			v = 0
		}
		w[k] = v
	}
	return json.Marshal(w)
}

// AnalysisOptions configures statistic extraction.
type AnalysisOptions struct {
	Window           int               // local window H; 0 means DefaultWindow
	VariogramOpts    variogram.Options // empirical variogram controls
	VarianceFraction float64           // SVD threshold; 0 means 0.99
	SkipLocal        bool              // global range only (cheaper)
	// SVDGram selects the level path of the local SVD statistic. The
	// zero value is svdstat's Gram-matrix fast path (levels from the
	// AᵀA/AAᵀ eigenproblem; agrees with the full-SVD path up to
	// eigensolver roundoff at the truncation threshold), now the
	// default; svdstat.GramOff restores the historical full-SVD
	// arithmetic bit-identically.
	SVDGram svdstat.GramMode
	// VariogramFFT selects the FFT exact engine for the global
	// variogram scan (variogram.Options.FFT): all lag cross-products
	// and pair counts at once from zero-padded autocorrelations,
	// O(P log P) instead of O(N·L^d). The engine runs real-input
	// transforms in half-spectrum form over FastLen-padded (not
	// power-of-two) extents, so its transform buffers are ~4 real
	// planes of the padded size — under half the old complex-path
	// footprint. Pair counts match the direct scan exactly and Gamma
	// to ~1e-12 relative; windowed statistics keep the direct
	// per-window scan either way.
	VariogramFFT bool
	// Workers sizes each worker pool of the analysis rather than capping
	// total goroutines: the three statistics run concurrently on one
	// pool and each windowed statistic fans its windows out over its
	// own, so peak concurrency can reach a small multiple of Workers
	// (the Go scheduler multiplexes them onto GOMAXPROCS threads).
	// 0 means GOMAXPROCS per pool; 1 forces the fully serial path.
	// Results are bit-identical for every value.
	Workers int
	// MemBudget caps the transform-pool bytes of a dataset-backed
	// analysis (AnalyzeReaderCtx). When the widened field — plus the
	// spectral engine's padded planes, if VariogramFFT is set — fits the
	// budget, the file is slurped and analyzed in RAM; otherwise the
	// analysis streams: windowed statistics run tile-by-tile (results
	// bit-identical to in-RAM at any tile size and worker count), the
	// global variogram runs its sampled scan through point access
	// (bit-identical) or, with VariogramFFT, the sharded spectral engine
	// (pair counts exact, Gamma tolerance-equivalent). <= 0 means no
	// budget: always slurp. In-RAM entry points ignore this field.
	MemBudget int64
	// Stats selects the statistics to compute, by registered kernel
	// name (stat.Names; built-ins: "variogram", "localrange", "svd").
	// Empty means every registered kernel. Selection never changes a
	// kernel's arithmetic or the run's ordering contract — kernels
	// always run in registration order — only which results are present
	// in the Statistics map. Unknown names fail the analysis before any
	// work starts.
	Stats []string
}

func (o AnalysisOptions) withDefaults() AnalysisOptions {
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.VarianceFraction == 0 {
		o.VarianceFraction = svdstat.DefaultVarianceFraction
	}
	return o
}

// Analyze extracts the correlation statistics of a 2D field — the
// rank-2 view of AnalyzeField.
func Analyze(g *grid.Grid, opts AnalysisOptions) (Statistics, error) {
	return AnalyzeField(field.FromGrid(g), opts)
}

// AnalyzeField extracts the correlation statistics of a field of any
// rank (H×H windows for grids, H×H×H windows for volumes; the SVD
// statistic unfolds higher-rank windows along their first extent). The
// three statistics are independent and run concurrently on the shared
// worker pool; each windowed statistic additionally fans its windows
// out over the same pool. Error precedence is fixed (global, then
// local variogram, then local SVD) so failures are reported
// identically at any worker count.
func AnalyzeField(f *field.Field, opts AnalysisOptions) (Statistics, error) {
	return AnalyzeFieldCtx(context.Background(), f, opts)
}

// AnalyzeFieldCtx is AnalyzeField with cooperative cancellation
// threaded through every statistic: the variogram scans check ctx per
// offset (direct) or per transform stage (FFT), and both windowed
// statistics check it per window, so a long-running analysis stops
// within roughly one unit of work of the cancel and returns ctx.Err().
// Cancellation dominates the fixed statistic error precedence — once
// the context is dead the per-statistic errors are all cancellations
// anyway, and reporting ctx.Err() keeps the outcome deterministic.
func AnalyzeFieldCtx(ctx context.Context, f *field.Field, opts AnalysisOptions) (Statistics, error) {
	return analyzeSource(ctx, stat.Source{F64: f}, opts)
}

// selectKernels resolves the options' statistic selection against the
// registry, in registration order — which fixes run order and error
// precedence regardless of how the selection is spelled. SkipLocal
// drops windowed kernels from the selection (the historical
// global-only cheap path).
func selectKernels(o AnalysisOptions) ([]stat.Kernel, error) {
	var want map[string]bool
	if len(o.Stats) > 0 {
		want = make(map[string]bool, len(o.Stats))
		for _, name := range o.Stats {
			if _, ok := stat.Lookup(name); !ok {
				return nil, fmt.Errorf("unknown statistic %q (registered: %s)",
					name, strings.Join(stat.Names(), ", "))
			}
			want[name] = true
		}
	}
	var ks []stat.Kernel
	for _, k := range stat.Kernels() {
		if want != nil && !want[k.Name()] {
			continue
		}
		if o.SkipLocal && k.Caps().Windowed {
			continue
		}
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("empty statistic selection")
	}
	return ks, nil
}

// analyzeSource is the one analysis call behind every Analyze*
// variant: it resolves the kernel selection, assembles per-kernel
// options from AnalysisOptions, and hands the source to the stat
// engine, which owns lane handling, streaming, cancellation, and
// worker fan-out. Every (lane, source, ctx) combination of the old
// variant matrix is one call here with a different stat.Source.
func analyzeSource(ctx context.Context, src stat.Source, opts AnalysisOptions) (Statistics, error) {
	o := opts.withDefaults()
	kernels, err := selectKernels(o)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	vOpts := o.VariogramOpts
	if vOpts.Workers == 0 {
		vOpts.Workers = o.Workers
	}
	if o.VariogramFFT {
		vOpts.FFT = true
	}
	req := stat.Request{
		Window:  o.Window,
		Workers: o.Workers,
		Opt: map[string]any{
			"variogram":  vOpts,
			"localrange": vOpts,
			"svd": svdstat.Options{
				Frac: o.VarianceFraction, Workers: o.Workers, Gram: o.SVDGram,
			},
		},
	}
	res, err := stat.Run(ctx, src, kernels, req)
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("core: %w", err)
	}
	return Statistics(res), nil
}

// DefaultRegistry returns the compressors of the study: the paper's
// three 2D codecs plus their 3D extensions, dispatched by field rank.
func DefaultRegistry() *compress.Registry {
	r := compress.NewRegistry()
	// Registration of the built-in codecs cannot collide.
	_ = r.Register(szlike.Compressor{})
	_ = r.Register(zfplike.Compressor{})
	_ = r.Register(mgardlike.Compressor{})
	_ = r.RegisterVolume(szlike.Compressor3D{})
	_ = r.RegisterVolume(zfplike.Compressor3D{})
	return r
}

// Measurement couples one field's statistics with its compression
// results across compressors and error bounds. The JSON field names
// are the service layer's wire contract.
type Measurement struct {
	Dataset string            `json:"dataset"`
	Index   int               `json:"index"` // field index within the dataset
	Label   float64           `json:"label"` // generating parameter when known (e.g. true range)
	Stats   Statistics        `json:"stats"`
	Results []compress.Result `json:"results"`
}

// MeasureOptions configures MeasureFields.
type MeasureOptions struct {
	Analysis    AnalysisOptions
	ErrorBounds []float64 // nil means compress.PaperErrorBounds
	// Workers bounds the field-level fan-out (and, unless
	// Analysis.Workers overrides it, the per-field statistic fan-out).
	// 0 means GOMAXPROCS; 1 forces serial measurement.
	Workers int
}

// MeasureFields analyzes and compresses every 2D field — the rank-2
// view of MeasureFieldSet.
func MeasureFields(name string, fields []*grid.Grid, labels []float64,
	reg *compress.Registry, opts MeasureOptions) ([]Measurement, error) {

	fs := make([]*field.Field, len(fields))
	for i, g := range fields {
		fs[i] = field.FromGrid(g)
	}
	return MeasureFieldSet(name, fs, labels, reg, opts)
}

// MeasureFieldSet analyzes and compresses every field with every
// registered compressor accepting its rank, at every error bound,
// fanning fields out over the shared worker pool. Grids and volumes
// can be mixed in one set — each field sweeps the codecs of its own
// rank. Results keep the input field order; on failure the error of
// the lowest-indexed failing field is returned, independent of
// scheduling.
func MeasureFieldSet(name string, fields []*field.Field, labels []float64,
	reg *compress.Registry, opts MeasureOptions) ([]Measurement, error) {
	return MeasureFieldSetCtx(context.Background(), name, fields, labels, reg, opts)
}

// MeasureFieldSetCtx is MeasureFieldSet with cooperative cancellation:
// the field fan-out, each field's statistics, and the per-codec sweep
// all check ctx, so a dead context abandons the batch within one
// codec run or statistic unit and returns ctx.Err().
func MeasureFieldSetCtx(ctx context.Context, name string, fields []*field.Field, labels []float64,
	reg *compress.Registry, opts MeasureOptions) ([]Measurement, error) {
	return measureSet(ctx, name, fields, labels, reg, opts, AnalyzeFieldCtx, compress.RunField)
}

// measureLane is the compute lane of a measurement: either the
// float64 oracle fields or their float32 mirrors.
type measureLane interface {
	*field.Field | *field.Field32
	NDim() int
}

// measureSet is the one measurement loop behind both lanes: analyze
// and run are the lane's analysis entry point and codec runner, and
// everything else — fan-out, ordering, error precedence, bound
// checking — is shared.
func measureSet[F measureLane](ctx context.Context, name string, fields []F, labels []float64,
	reg *compress.Registry, opts MeasureOptions,
	analyze func(context.Context, F, AnalysisOptions) (Statistics, error),
	run func(compress.FieldCompressor, F, float64) (compress.Result, error)) ([]Measurement, error) {

	ebs := opts.ErrorBounds
	if ebs == nil {
		ebs = compress.PaperErrorBounds
	}
	aOpts := opts.Analysis
	if aOpts.Workers == 0 {
		aOpts.Workers = opts.Workers
	}
	out := make([]Measurement, len(fields))
	err := parallel.ForErrCtx(ctx, len(fields), opts.Workers, func(i int) error {
		var err error
		out[i], err = measureOne(ctx, name, i, fields[i], labels, reg, ebs, aOpts, analyze, run)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func measureOne[F measureLane](ctx context.Context, name string, i int, f F, labels []float64,
	reg *compress.Registry, ebs []float64, aOpts AnalysisOptions,
	analyze func(context.Context, F, AnalysisOptions) (Statistics, error),
	run func(compress.FieldCompressor, F, float64) (compress.Result, error)) (Measurement, error) {

	m := Measurement{Dataset: name, Index: i}
	if i < len(labels) {
		m.Label = labels[i]
	}
	var err error
	m.Stats, err = analyze(ctx, f, aOpts)
	if err != nil {
		return m, err
	}
	codecs := reg.AllFor(f.NDim())
	if len(codecs) == 0 {
		return m, fmt.Errorf("core: field %d: no compressors registered for rank %d", i, f.NDim())
	}
	for _, c := range codecs {
		for _, eb := range ebs {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return m, err
				}
			}
			res, err := run(c, f, eb)
			if err != nil {
				return m, fmt.Errorf("core: field %d: %w", i, err)
			}
			if !res.BoundOK {
				return m, fmt.Errorf("core: field %d: %s violated bound %g (max err %g)",
					i, c.Name(), eb, res.MaxAbsError)
			}
			m.Results = append(m.Results, res)
		}
	}
	return m, nil
}
