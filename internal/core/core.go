// Package core implements the paper's contribution: the pipeline that
// characterizes correlation structure of 2D scientific fields
// (global/local variogram ranges, local SVD truncation levels), links
// those statistics to error-bounded lossy compression ratios through
// logarithmic regression models, and regenerates every figure of the
// evaluation. It also provides the forward application the paper
// motivates: predicting compression ratios from correlation statistics
// and selecting a compressor accordingly.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"lossycorr/internal/compress"
	"lossycorr/internal/grid"
	"lossycorr/internal/mgardlike"
	"lossycorr/internal/svdstat"
	"lossycorr/internal/szlike"
	"lossycorr/internal/variogram"
	"lossycorr/internal/zfplike"
)

// DefaultWindow is the paper's H=32 local-statistics window.
const DefaultWindow = 32

// Statistics are the paper's three correlation statistics for a field.
type Statistics struct {
	GlobalRange   float64 // estimated global variogram range (Figures 3, 4)
	GlobalSill    float64 // fitted sill (≈ field variance)
	LocalRangeStd float64 // std of local variogram ranges, H windows (Figure 5, 7-left)
	LocalSVDStd   float64 // std of local SVD truncation levels (Figure 6, 7-right)
}

// AnalysisOptions configures statistic extraction.
type AnalysisOptions struct {
	Window           int               // local window H; 0 means DefaultWindow
	VariogramOpts    variogram.Options // empirical variogram controls
	VarianceFraction float64           // SVD threshold; 0 means 0.99
	SkipLocal        bool              // global range only (cheaper)
}

func (o AnalysisOptions) withDefaults() AnalysisOptions {
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.VarianceFraction == 0 {
		o.VarianceFraction = svdstat.DefaultVarianceFraction
	}
	return o
}

// Analyze extracts the correlation statistics of a field.
func Analyze(g *grid.Grid, opts AnalysisOptions) (Statistics, error) {
	o := opts.withDefaults()
	var s Statistics
	m, err := variogram.GlobalRange(g, o.VariogramOpts)
	if err != nil {
		return s, fmt.Errorf("core: global variogram: %w", err)
	}
	s.GlobalRange = m.Range
	s.GlobalSill = m.Sill
	if o.SkipLocal {
		return s, nil
	}
	s.LocalRangeStd, err = variogram.LocalRangeStd(g, o.Window, o.VariogramOpts)
	if err != nil {
		return s, fmt.Errorf("core: local variogram: %w", err)
	}
	s.LocalSVDStd, err = svdstat.LocalStd(g, o.Window, o.VarianceFraction)
	if err != nil {
		return s, fmt.Errorf("core: local svd: %w", err)
	}
	return s, nil
}

// DefaultRegistry returns the three compressors of the study.
func DefaultRegistry() *compress.Registry {
	r := compress.NewRegistry()
	// Registration of the built-in codecs cannot collide.
	_ = r.Register(szlike.Compressor{})
	_ = r.Register(zfplike.Compressor{})
	_ = r.Register(mgardlike.Compressor{})
	return r
}

// Measurement couples one field's statistics with its compression
// results across compressors and error bounds.
type Measurement struct {
	Dataset string
	Index   int     // field index within the dataset
	Label   float64 // generating parameter when known (e.g. true range)
	Stats   Statistics
	Results []compress.Result
}

// MeasureOptions configures MeasureFields.
type MeasureOptions struct {
	Analysis    AnalysisOptions
	ErrorBounds []float64 // nil means compress.PaperErrorBounds
	Workers     int       // 0 means GOMAXPROCS
}

// MeasureFields analyzes and compresses every field with every
// registered compressor at every error bound, fanning fields out over a
// worker pool. Results keep the input field order.
func MeasureFields(name string, fields []*grid.Grid, labels []float64,
	reg *compress.Registry, opts MeasureOptions) ([]Measurement, error) {

	ebs := opts.ErrorBounds
	if ebs == nil {
		ebs = compress.PaperErrorBounds
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fields) && len(fields) > 0 {
		workers = len(fields)
	}
	out := make([]Measurement, len(fields))
	errs := make([]error, len(fields))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = measureOne(name, i, fields[i], labels, reg, ebs, opts.Analysis)
			}
		}()
	}
	for i := range fields {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func measureOne(name string, i int, g *grid.Grid, labels []float64,
	reg *compress.Registry, ebs []float64, aOpts AnalysisOptions) (Measurement, error) {

	m := Measurement{Dataset: name, Index: i}
	if i < len(labels) {
		m.Label = labels[i]
	}
	var err error
	m.Stats, err = Analyze(g, aOpts)
	if err != nil {
		return m, err
	}
	for _, c := range reg.All() {
		for _, eb := range ebs {
			res, err := compress.Run(c, g, eb)
			if err != nil {
				return m, fmt.Errorf("core: field %d: %w", i, err)
			}
			if !res.BoundOK {
				return m, fmt.Errorf("core: field %d: %s violated bound %g (max err %g)",
					i, c.Name(), eb, res.MaxAbsError)
			}
			m.Results = append(m.Results, res)
		}
	}
	return m, nil
}
