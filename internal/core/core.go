// Package core implements the paper's contribution: the pipeline that
// characterizes correlation structure of 2D scientific fields
// (global/local variogram ranges, local SVD truncation levels), links
// those statistics to error-bounded lossy compression ratios through
// logarithmic regression models, and regenerates every figure of the
// evaluation. It also provides the forward application the paper
// motivates: predicting compression ratios from correlation statistics
// and selecting a compressor accordingly.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"lossycorr/internal/compress"
	"lossycorr/internal/field"
	"lossycorr/internal/grid"
	"lossycorr/internal/mgardlike"
	"lossycorr/internal/parallel"
	"lossycorr/internal/svdstat"
	"lossycorr/internal/szlike"
	"lossycorr/internal/variogram"
	"lossycorr/internal/zfplike"
)

// DefaultWindow is the paper's H=32 local-statistics window.
const DefaultWindow = 32

// Statistics are the paper's three correlation statistics for a field.
// The JSON field names are the service layer's wire contract.
type Statistics struct {
	GlobalRange   float64 `json:"globalRange"`   // estimated global variogram range (Figures 3, 4)
	GlobalSill    float64 `json:"globalSill"`    // fitted sill (≈ field variance)
	LocalRangeStd float64 `json:"localRangeStd"` // std of local variogram ranges, H windows (Figure 5, 7-left)
	LocalSVDStd   float64 `json:"localSVDStd"`   // std of local SVD truncation levels (Figure 6, 7-right)
}

// MarshalJSON clamps non-finite statistics to the same sentinels
// compress.Result uses for PSNR (±1e308 for infinities, 0 for NaN): a
// degenerate field (e.g. constant values) can produce NaN or Inf here,
// which encoding/json rejects, and a marshal failure inside a handler
// would otherwise truncate an already-committed response.
func (s Statistics) MarshalJSON() ([]byte, error) {
	type wire Statistics // drop the method to avoid recursion
	w := wire(s)
	for _, p := range []*float64{&w.GlobalRange, &w.GlobalSill, &w.LocalRangeStd, &w.LocalSVDStd} {
		switch {
		case math.IsInf(*p, 1):
			*p = 1e308
		case math.IsInf(*p, -1):
			*p = -1e308
		case math.IsNaN(*p):
			*p = 0
		}
	}
	return json.Marshal(w)
}

// AnalysisOptions configures statistic extraction.
type AnalysisOptions struct {
	Window           int               // local window H; 0 means DefaultWindow
	VariogramOpts    variogram.Options // empirical variogram controls
	VarianceFraction float64           // SVD threshold; 0 means 0.99
	SkipLocal        bool              // global range only (cheaper)
	// SVDGram selects the level path of the local SVD statistic. The
	// zero value is svdstat's Gram-matrix fast path (levels from the
	// AᵀA/AAᵀ eigenproblem; agrees with the full-SVD path up to
	// eigensolver roundoff at the truncation threshold), now the
	// default; svdstat.GramOff restores the historical full-SVD
	// arithmetic bit-identically.
	SVDGram svdstat.GramMode
	// VariogramFFT selects the FFT exact engine for the global
	// variogram scan (variogram.Options.FFT): all lag cross-products
	// and pair counts at once from zero-padded autocorrelations,
	// O(P log P) instead of O(N·L^d). The engine runs real-input
	// transforms in half-spectrum form over FastLen-padded (not
	// power-of-two) extents, so its transform buffers are ~4 real
	// planes of the padded size — under half the old complex-path
	// footprint. Pair counts match the direct scan exactly and Gamma
	// to ~1e-12 relative; windowed statistics keep the direct
	// per-window scan either way.
	VariogramFFT bool
	// Workers sizes each worker pool of the analysis rather than capping
	// total goroutines: the three statistics run concurrently on one
	// pool and each windowed statistic fans its windows out over its
	// own, so peak concurrency can reach a small multiple of Workers
	// (the Go scheduler multiplexes them onto GOMAXPROCS threads).
	// 0 means GOMAXPROCS per pool; 1 forces the fully serial path.
	// Results are bit-identical for every value.
	Workers int
	// MemBudget caps the transform-pool bytes of a dataset-backed
	// analysis (AnalyzeReaderCtx). When the widened field — plus the
	// spectral engine's padded planes, if VariogramFFT is set — fits the
	// budget, the file is slurped and analyzed in RAM; otherwise the
	// analysis streams: windowed statistics run tile-by-tile (results
	// bit-identical to in-RAM at any tile size and worker count), the
	// global variogram runs its sampled scan through point access
	// (bit-identical) or, with VariogramFFT, the sharded spectral engine
	// (pair counts exact, Gamma tolerance-equivalent). <= 0 means no
	// budget: always slurp. In-RAM entry points ignore this field.
	MemBudget int64
}

func (o AnalysisOptions) withDefaults() AnalysisOptions {
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.VarianceFraction == 0 {
		o.VarianceFraction = svdstat.DefaultVarianceFraction
	}
	return o
}

// Analyze extracts the correlation statistics of a 2D field — the
// rank-2 view of AnalyzeField.
func Analyze(g *grid.Grid, opts AnalysisOptions) (Statistics, error) {
	return AnalyzeField(field.FromGrid(g), opts)
}

// AnalyzeField extracts the correlation statistics of a field of any
// rank (H×H windows for grids, H×H×H windows for volumes; the SVD
// statistic unfolds higher-rank windows along their first extent). The
// three statistics are independent and run concurrently on the shared
// worker pool; each windowed statistic additionally fans its windows
// out over the same pool. Error precedence is fixed (global, then
// local variogram, then local SVD) so failures are reported
// identically at any worker count.
func AnalyzeField(f *field.Field, opts AnalysisOptions) (Statistics, error) {
	return AnalyzeFieldCtx(context.Background(), f, opts)
}

// AnalyzeFieldCtx is AnalyzeField with cooperative cancellation
// threaded through every statistic: the variogram scans check ctx per
// offset (direct) or per transform stage (FFT), and both windowed
// statistics check it per window, so a long-running analysis stops
// within roughly one unit of work of the cancel and returns ctx.Err().
// Cancellation dominates the fixed statistic error precedence — once
// the context is dead the per-statistic errors are all cancellations
// anyway, and reporting ctx.Err() keeps the outcome deterministic.
func AnalyzeFieldCtx(ctx context.Context, f *field.Field, opts AnalysisOptions) (Statistics, error) {
	o := opts.withDefaults()
	vOpts := o.VariogramOpts
	if vOpts.Workers == 0 {
		vOpts.Workers = o.Workers
	}
	if o.VariogramFFT {
		vOpts.FFT = true
	}
	var s Statistics
	if o.SkipLocal {
		m, err := variogram.GlobalRangeFieldCtx(ctx, f, vOpts)
		if err != nil {
			return s, fmt.Errorf("core: global variogram: %w", err)
		}
		s.GlobalRange = m.Range
		s.GlobalSill = m.Sill
		return s, nil
	}
	var (
		model                 variogram.Model
		gErr, localErr, svErr error
	)
	parallel.Do(o.Workers,
		func() { model, gErr = variogram.GlobalRangeFieldCtx(ctx, f, vOpts) },
		func() { s.LocalRangeStd, localErr = variogram.LocalRangeStdFieldCtx(ctx, f, o.Window, vOpts) },
		func() {
			s.LocalSVDStd, svErr = svdstat.LocalStdFieldCtx(ctx, f, o.Window, svdstat.Options{
				Frac: o.VarianceFraction, Workers: o.Workers, Gram: o.SVDGram,
			})
		},
	)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Statistics{}, err
		}
	}
	if gErr != nil {
		return Statistics{}, fmt.Errorf("core: global variogram: %w", gErr)
	}
	if localErr != nil {
		return Statistics{}, fmt.Errorf("core: local variogram: %w", localErr)
	}
	if svErr != nil {
		return Statistics{}, fmt.Errorf("core: local svd: %w", svErr)
	}
	s.GlobalRange = model.Range
	s.GlobalSill = model.Sill
	return s, nil
}

// DefaultRegistry returns the compressors of the study: the paper's
// three 2D codecs plus their 3D extensions, dispatched by field rank.
func DefaultRegistry() *compress.Registry {
	r := compress.NewRegistry()
	// Registration of the built-in codecs cannot collide.
	_ = r.Register(szlike.Compressor{})
	_ = r.Register(zfplike.Compressor{})
	_ = r.Register(mgardlike.Compressor{})
	_ = r.RegisterVolume(szlike.Compressor3D{})
	_ = r.RegisterVolume(zfplike.Compressor3D{})
	return r
}

// Measurement couples one field's statistics with its compression
// results across compressors and error bounds. The JSON field names
// are the service layer's wire contract.
type Measurement struct {
	Dataset string            `json:"dataset"`
	Index   int               `json:"index"` // field index within the dataset
	Label   float64           `json:"label"` // generating parameter when known (e.g. true range)
	Stats   Statistics        `json:"stats"`
	Results []compress.Result `json:"results"`
}

// MeasureOptions configures MeasureFields.
type MeasureOptions struct {
	Analysis    AnalysisOptions
	ErrorBounds []float64 // nil means compress.PaperErrorBounds
	// Workers bounds the field-level fan-out (and, unless
	// Analysis.Workers overrides it, the per-field statistic fan-out).
	// 0 means GOMAXPROCS; 1 forces serial measurement.
	Workers int
}

// MeasureFields analyzes and compresses every 2D field — the rank-2
// view of MeasureFieldSet.
func MeasureFields(name string, fields []*grid.Grid, labels []float64,
	reg *compress.Registry, opts MeasureOptions) ([]Measurement, error) {

	fs := make([]*field.Field, len(fields))
	for i, g := range fields {
		fs[i] = field.FromGrid(g)
	}
	return MeasureFieldSet(name, fs, labels, reg, opts)
}

// MeasureFieldSet analyzes and compresses every field with every
// registered compressor accepting its rank, at every error bound,
// fanning fields out over the shared worker pool. Grids and volumes
// can be mixed in one set — each field sweeps the codecs of its own
// rank. Results keep the input field order; on failure the error of
// the lowest-indexed failing field is returned, independent of
// scheduling.
func MeasureFieldSet(name string, fields []*field.Field, labels []float64,
	reg *compress.Registry, opts MeasureOptions) ([]Measurement, error) {
	return MeasureFieldSetCtx(context.Background(), name, fields, labels, reg, opts)
}

// MeasureFieldSetCtx is MeasureFieldSet with cooperative cancellation:
// the field fan-out, each field's statistics, and the per-codec sweep
// all check ctx, so a dead context abandons the batch within one
// codec run or statistic unit and returns ctx.Err().
func MeasureFieldSetCtx(ctx context.Context, name string, fields []*field.Field, labels []float64,
	reg *compress.Registry, opts MeasureOptions) ([]Measurement, error) {

	ebs := opts.ErrorBounds
	if ebs == nil {
		ebs = compress.PaperErrorBounds
	}
	aOpts := opts.Analysis
	if aOpts.Workers == 0 {
		aOpts.Workers = opts.Workers
	}
	out := make([]Measurement, len(fields))
	err := parallel.ForErrCtx(ctx, len(fields), opts.Workers, func(i int) error {
		var err error
		out[i], err = measureOne(ctx, name, i, fields[i], labels, reg, ebs, aOpts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func measureOne(ctx context.Context, name string, i int, f *field.Field, labels []float64,
	reg *compress.Registry, ebs []float64, aOpts AnalysisOptions) (Measurement, error) {

	m := Measurement{Dataset: name, Index: i}
	if i < len(labels) {
		m.Label = labels[i]
	}
	var err error
	m.Stats, err = AnalyzeFieldCtx(ctx, f, aOpts)
	if err != nil {
		return m, err
	}
	codecs := reg.AllFor(f.NDim())
	if len(codecs) == 0 {
		return m, fmt.Errorf("core: field %d: no compressors registered for rank %d", i, f.NDim())
	}
	for _, c := range codecs {
		for _, eb := range ebs {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return m, err
				}
			}
			res, err := compress.RunField(c, f, eb)
			if err != nil {
				return m, fmt.Errorf("core: field %d: %w", i, err)
			}
			if !res.BoundOK {
				return m, fmt.Errorf("core: field %d: %s violated bound %g (max err %g)",
					i, c.Name(), eb, res.MaxAbsError)
			}
			m.Results = append(m.Results, res)
		}
	}
	return m, nil
}
