package core

import (
	"testing"

	"lossycorr/internal/field"
	"lossycorr/internal/xrand"
)

// TestAnalyzeFieldAllocs pins the windowed statistics' allocation
// profile: with window extraction pooled, the exact scan's offset
// enumeration cached, and scanOffset's odometer hoisted, a serial
// 96×96 analysis sits under 1200 allocations. The pre-pooling pipeline
// spent ~12000 on the same field (fresh window storage and offset
// tables per tile), so the bound has wide headroom yet catches any
// return to per-window allocation.
func TestAnalyzeFieldAllocs(t *testing.T) {
	rng := xrand.New(3)
	f := field.New(96, 96)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	opts := AnalysisOptions{Workers: 1}
	if _, err := AnalyzeField(f, opts); err != nil { // warm pools and caches
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := AnalyzeField(f, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1200 {
		t.Fatalf("AnalyzeField allocates %v per op, want <= 1200", allocs)
	}
}
