package core

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"lossycorr/internal/compress"
	"lossycorr/internal/field"
)

// TestSelectCompressorNonPositiveStat pins the bugfix: a non-positive
// statistic used to fall through the per-model continue and be
// misreported as "no models at eb", hiding the real cause.
func TestSelectCompressorNonPositiveStat(t *testing.T) {
	p, err := TrainPredictor(syntheticMeasurements(), XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.SelectCompressor(1e-3, Statistics{StatGlobalRange: 0})
	if err == nil {
		t.Fatal("non-positive statistic must error")
	}
	if !strings.Contains(err.Error(), "non-positive") {
		t.Fatalf("error %q should name the non-positive statistic", err)
	}
	if strings.Contains(err.Error(), "no models") {
		t.Fatalf("error %q misattributes the failure to missing models", err)
	}
	// A genuinely unknown bound still reports missing models.
	_, err = p.SelectCompressor(42, Statistics{StatGlobalRange: 5})
	if err == nil || !strings.Contains(err.Error(), "no models") {
		t.Fatalf("unknown bound error %v", err)
	}
}

// TestModelsCloseBounds pins the %g fix: two trained bounds only 1.4×
// apart must stay distinguishable in the listing (%.0e rendered both
// 1e-3 and 1.4e-3 as "1e-03").
func TestModelsCloseBounds(t *testing.T) {
	var ms []Measurement
	for _, x := range []float64{2, 4, 8, 16} {
		ms = append(ms, Measurement{
			Stats: Statistics{StatGlobalRange: x},
			Results: []compress.Result{
				{Compressor: "fast", ErrorBound: 1e-3, Ratio: 1 + 2*math.Log(x)},
				{Compressor: "fast", ErrorBound: 1.4e-3, Ratio: 2 + 2*math.Log(x)},
			},
		})
	}
	p, err := TrainPredictor(ms, XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	models := p.Models()
	if len(models) != 2 {
		t.Fatalf("models %v, want two entries", models)
	}
	if models[0] == models[1] {
		t.Fatalf("close bounds collapsed to one display string: %v", models)
	}
	want := []string{"fast@0.001", "fast@0.0014"}
	if !reflect.DeepEqual(models, want) {
		t.Fatalf("models %v want %v", models, want)
	}
}

func TestTrainPredictorZeroFittableSeries(t *testing.T) {
	// Every x is non-positive, so the log-model filter leaves < 2 points
	// in every series and no fit succeeds.
	var ms []Measurement
	for i := 0; i < 4; i++ {
		ms = append(ms, Measurement{
			Stats:   Statistics{StatGlobalRange: -1},
			Results: []compress.Result{{Compressor: "fast", ErrorBound: 1e-3, Ratio: 2}},
		})
	}
	if _, err := TrainPredictor(ms, XGlobalRange); err == nil {
		t.Fatal("zero fittable series must error")
	}
}

func TestTrainPredictorCVDiagnostics(t *testing.T) {
	p, err := TrainPredictor(syntheticMeasurements(), XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := p.CV("fast", 1e-3)
	if !ok {
		t.Fatal("default training must attach CV diagnostics")
	}
	if cv.Folds != 5 || cv.N != 6 {
		t.Fatalf("cv %+v, want 5 folds over 6 points", cv)
	}
	// The synthetic series is exactly log-linear, so out-of-sample R²
	// must be essentially perfect.
	if cv.R2 < 0.999 {
		t.Fatalf("out-of-sample R²=%v on noiseless data", cv.R2)
	}
	// Negative folds disable CV.
	p2, err := TrainPredictorOpts(syntheticMeasurements(), XGlobalRange, TrainOptions{Folds: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p2.CV("fast", 1e-3); ok {
		t.Fatal("Folds<0 must disable CV")
	}
}

func TestPredictRatioInterval(t *testing.T) {
	p, err := TrainPredictor(syntheticMeasurements(), XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := p.PredictRatioInterval("fast", 1e-3, Statistics{StatGlobalRange: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Level != DefaultIntervalLevel {
		t.Fatalf("level %v want default %v", pred.Level, DefaultIntervalLevel)
	}
	if !(pred.Lo <= pred.Ratio && pred.Ratio <= pred.Hi) {
		t.Fatalf("interval [%v, %v] does not bracket %v", pred.Lo, pred.Hi, pred.Ratio)
	}
	point, err := p.PredictRatio("fast", 1e-3, Statistics{StatGlobalRange: 10})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Ratio != point {
		t.Fatalf("interval point %v diverges from PredictRatio %v", pred.Ratio, point)
	}
	if _, err := p.PredictRatioInterval("nope", 1e-3, Statistics{StatGlobalRange: 10}, 0); err == nil {
		t.Fatal("unknown compressor must error")
	}
	if _, err := p.PredictRatioInterval("fast", 7, Statistics{StatGlobalRange: 10}, 0); err == nil {
		t.Fatal("unknown bound must error")
	}
	if _, err := p.PredictRatioInterval("fast", 1e-3, Statistics{}, 0); err == nil {
		t.Fatal("non-positive statistic must error")
	}
}

// TestSaveLoadBitEquality checks the persistence round trip: a reloaded
// predictor produces bit-identical point predictions (encoding/json
// round-trips float64 exactly), its CV diagnostics survive, and saving
// twice is byte-stable.
func TestSaveLoadBitEquality(t *testing.T) {
	p, err := TrainPredictor(syntheticMeasurements(), XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePredictor(&buf, p); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	q, err := LoadPredictor(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if q.Selector() != p.Selector() {
		t.Fatalf("selector %v want %v", q.Selector(), p.Selector())
	}
	if !reflect.DeepEqual(q.Models(), p.Models()) {
		t.Fatalf("models %v want %v", q.Models(), p.Models())
	}
	for _, comp := range []string{"fast", "tight"} {
		for _, x := range []float64{1.5, math.E, 7.25, 33.3, 1e4} {
			st := Statistics{StatGlobalRange: x}
			want, err := p.PredictRatio(comp, 1e-3, st)
			if err != nil {
				t.Fatal(err)
			}
			got, err := q.PredictRatio(comp, 1e-3, st)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s x=%v: reloaded %v != original %v (bit-exactness broken)", comp, x, got, want)
			}
			wp, err := p.PredictRatioInterval(comp, 1e-3, st, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			gp, err := q.PredictRatioInterval(comp, 1e-3, st, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			if gp != wp {
				t.Fatalf("%s x=%v: reloaded interval %+v != original %+v", comp, x, gp, wp)
			}
		}
	}
	cvP, okP := p.CV("fast", 1e-3)
	cvQ, okQ := q.CV("fast", 1e-3)
	if !okP || !okQ || !reflect.DeepEqual(cvP, cvQ) {
		t.Fatalf("CV diagnostics lost in round trip: %+v vs %+v", cvP, cvQ)
	}
	if q.Provenance().Source != "file" {
		t.Fatalf("loaded provenance source %q want \"file\"", q.Provenance().Source)
	}
	if q.Provenance().Measurements != len(syntheticMeasurements()) {
		t.Fatalf("provenance measurements %d", q.Provenance().Measurements)
	}
	// Re-saving the loaded predictor is byte-stable apart from the
	// provenance source rewrite.
	q.SetProvenance(p.Provenance())
	var buf2 bytes.Buffer
	if err := SavePredictor(&buf2, q); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatalf("re-save not byte-identical:\n%s\nvs\n%s", buf2.String(), first)
	}
}

func TestLoadPredictorRejectsBadFiles(t *testing.T) {
	p, err := TrainPredictor(syntheticMeasurements(), XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePredictor(&buf, p); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	// Forward-compat: a future schema version must be rejected, not
	// half-interpreted.
	v2 := strings.Replace(good, "lossycorr-model/v1", "lossycorr-model/v2", 1)
	if _, err := LoadPredictor(strings.NewReader(v2)); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Fatalf("future schema version accepted: %v", err)
	}
	// Unknown selector name.
	badSel := strings.Replace(good, "global-range", "quantum-flux", 1)
	if _, err := LoadPredictor(strings.NewReader(badSel)); err == nil ||
		!strings.Contains(err.Error(), "selector") {
		t.Fatalf("unknown selector accepted: %v", err)
	}
	// Not JSON at all.
	if _, err := LoadPredictor(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage input accepted")
	}
	// Empty model list.
	if _, err := LoadPredictor(strings.NewReader(
		`{"schema":"lossycorr-model/v1","selector":"global-range","models":[]}`)); err == nil {
		t.Fatal("empty model list accepted")
	}
	// Non-positive error bound.
	if _, err := LoadPredictor(strings.NewReader(
		`{"schema":"lossycorr-model/v1","selector":"global-range","models":[{"compressor":"a","errorBound":0,"fit":{}}]}`)); err == nil {
		t.Fatal("non-positive bound accepted")
	}
}

func TestParseStatSelectorRoundTrip(t *testing.T) {
	for _, sel := range []StatSelector{XGlobalRange, XLocalRangeStd, XLocalSVDStd} {
		got, err := ParseStatSelector(sel.Key())
		if err != nil {
			t.Fatal(err)
		}
		if got != sel {
			t.Fatalf("round trip %v -> %q -> %v", sel, sel.Key(), got)
		}
		// WithValue must invert Value for the selected statistic.
		if v := sel.Value(sel.WithValue(3.25)); v != 3.25 {
			t.Fatalf("WithValue round trip %v: got %v", sel, v)
		}
	}
	if _, err := ParseStatSelector("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestCVDeterministicAcrossWorkers checks the acceptance criterion:
// k-fold diagnostics depend only on (series, folds, seed), and the
// measurement pipeline is bit-identical at any worker count, so the CV
// numbers attached to a trained predictor must match exactly whether
// measurement ran serial or parallel.
func TestCVDeterministicAcrossWorkers(t *testing.T) {
	train := func(workers int) *Predictor {
		var fields []*field.Field
		for i, rang := range []float64{3, 5, 8, 12, 20, 32} {
			g := smallField(t, rang, uint64(40+i))
			fields = append(fields, field.FromGrid(g))
		}
		ms, err := MeasureFieldSet("cvdet", fields, nil, DefaultRegistry(), MeasureOptions{
			Analysis:    AnalysisOptions{SkipLocal: true},
			ErrorBounds: []float64{1e-3},
			Workers:     workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		p, err := TrainPredictorOpts(ms, XGlobalRange, TrainOptions{Folds: 3, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	serial, parallel := train(1), train(4)
	if !reflect.DeepEqual(serial.Models(), parallel.Models()) {
		t.Fatalf("model sets differ: %v vs %v", serial.Models(), parallel.Models())
	}
	for _, eb := range serial.ErrorBounds() {
		for _, name := range []string{"sz-like", "zfp-like", "mgard-like"} {
			cvS, okS := serial.CV(name, eb)
			cvP, okP := parallel.CV(name, eb)
			if okS != okP {
				t.Fatalf("%s@%g CV presence differs (%v vs %v)", name, eb, okS, okP)
			}
			if okS && !reflect.DeepEqual(cvS, cvP) {
				t.Fatalf("%s@%g CV differs across worker counts:\n%+v\n%+v", name, eb, cvS, cvP)
			}
		}
	}
}
