package core

// Golden bit-identity suite for the kernel-engine refactor. The
// expected bits below were captured from the pre-refactor pipeline
// (the per-statistic variant matrix of AnalyzeField / AnalyzeField32 /
// AnalyzeReaderCtx entry points, before internal/stat existed) on the
// exact fields reproduced here. Every case must match bit for bit at
// every worker count — the engine owns lanes, streaming, and fan-out
// now, and this suite is the proof that none of that moved a single
// ULP. If a case fails, the engine changed arithmetic or fold order;
// do not regenerate the values, fix the engine.

import (
	"context"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"lossycorr/internal/field"
	"lossycorr/internal/gaussian"
)

// goldenCase pins one (field, lane, source) combination of the
// pre-refactor pipeline. The bits are IEEE-754 float64 payloads of the
// four built-in statistics.
type goldenCase struct {
	name   string
	rank3  bool  // 3D volume instead of 2D grid
	lane32 bool  // float32 lane (Narrow()ed field / float32 file)
	vfft   bool  // FFT exact engine for the global variogram
	budget int64 // stream with this MemBudget; 0 = in-RAM

	globalRangeBits   uint64
	globalSillBits    uint64
	localRangeStdBits uint64
	localSVDStdBits   uint64
}

var goldenCases = []goldenCase{
	{name: "r2/f64/ram", globalRangeBits: 0x4027785b5e547ba1, globalSillBits: 0x3fe9017a08e46eec, localRangeStdBits: 0x3ffaf506d8fed1b9, localSVDStdBits: 0x3fe795bb2e369bbd},
	{name: "r2/f64/ram/vfft", vfft: true, globalRangeBits: 0x4027b42ea6ca88e5, globalSillBits: 0x3fe8e190bda2e93e, localRangeStdBits: 0x3ffaf506d8fed1b9, localSVDStdBits: 0x3fe795bb2e369bbd},
	{name: "r2/f32/ram", lane32: true, globalRangeBits: 0x4027785b5e547ba1, globalSillBits: 0x3fe9017a08ed947b, localRangeStdBits: 0x3ffaf506d8fed1b9, localSVDStdBits: 0x3fe795bb2e369bbd},
	{name: "r2/f32/ram/vfft", lane32: true, vfft: true, globalRangeBits: 0x4027b42ea6ca88e5, globalSillBits: 0x3fe8e190c2934eeb, localRangeStdBits: 0x3ffaf506d8fed1b9, localSVDStdBits: 0x3fe795bb2e369bbd},
	{name: "r3/f64/ram", rank3: true, globalRangeBits: 0x401675e64529911e, globalSillBits: 0x3ff049ab3f624a38, localRangeStdBits: 0x3fef18d925f43518, localSVDStdBits: 0x3fdd7b29f9c442a9},
	{name: "r3/f64/ram/vfft", rank3: true, vfft: true, globalRangeBits: 0x401675e64529911e, globalSillBits: 0x3ff049ab3f624a64, localRangeStdBits: 0x3fef18d925f43518, localSVDStdBits: 0x3fdd7b29f9c442a9},
	{name: "r3/f32/ram", rank3: true, lane32: true, globalRangeBits: 0x401675e64529911e, globalSillBits: 0x3ff049ab3f0cfe04, localRangeStdBits: 0x3fef18d925f43518, localSVDStdBits: 0x3fdd7b29f9c442a9},
	{name: "r2/f64/stream40k", budget: 40960, globalRangeBits: 0x4027785b5e547ba1, globalSillBits: 0x3fe9017a08e46eec, localRangeStdBits: 0x3ffaf506d8fed1b9, localSVDStdBits: 0x3fe795bb2e369bbd},
	{name: "r2/f64/stream24k", budget: 24576, globalRangeBits: 0x4027785b5e547ba1, globalSillBits: 0x3fe9017a08e46eec, localRangeStdBits: 0x3ffaf506d8fed1b9, localSVDStdBits: 0x3fe795bb2e369bbd},
	{name: "r2/f32/stream16k", lane32: true, budget: 16384, globalRangeBits: 0x4027785b5e547ba1, globalSillBits: 0x3fe9017a08ed947b, localRangeStdBits: 0x3ffaf506d8fed1b9, localSVDStdBits: 0x3fe795bb2e369bbd},
	{name: "r3/f64/stream64k", rank3: true, budget: 65536, globalRangeBits: 0x401675e64529911e, globalSillBits: 0x3ff049ab3f624a38, localRangeStdBits: 0x3fef18d925f43518, localSVDStdBits: 0x3fdd7b29f9c442a9},
	{name: "r3/f64/stream36k", rank3: true, budget: 36864, globalRangeBits: 0x401675e64529911e, globalSillBits: 0x3ff049ab3f624a38, localRangeStdBits: 0x3fef18d925f43518, localSVDStdBits: 0x3fdd7b29f9c442a9},
	{name: "r3/f32/stream28k", rank3: true, lane32: true, budget: 28672, globalRangeBits: 0x401675e64529911e, globalSillBits: 0x3ff049ab3f0cfe04, localRangeStdBits: 0x3fef18d925f43518, localSVDStdBits: 0x3fdd7b29f9c442a9},
}

// goldenField reproduces the exact field the golden bits were captured
// on: a 96×80 grid (range 12, seed 7) or a 28×24×20 volume (range 6,
// seed 3).
func goldenField(t testing.TB, rank3 bool) *field.Field {
	t.Helper()
	if rank3 {
		v, err := gaussian.Generate3D(gaussian.Params3D{Nz: 28, Ny: 24, Nx: 20, Range: 6, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return field.FromVolume(v)
	}
	g, err := gaussian.Generate(gaussian.Params{Rows: 96, Cols: 80, Range: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return field.FromGrid(g)
}

// goldenReader writes the field's lane to a temp file and opens it as
// a TileReader, reproducing the dataset-backed golden runs.
func goldenReader(t testing.TB, write func(io.Writer) error) *field.TileReader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "golden.bin")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := write(fh); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := field.OpenTileReader(path, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func (c goldenCase) window() int {
	if c.rank3 {
		return 8
	}
	return 32
}

func (c goldenCase) run(t *testing.T, workers int) Statistics {
	t.Helper()
	f := goldenField(t, c.rank3)
	opts := AnalysisOptions{Window: c.window(), Workers: workers, VariogramFFT: c.vfft, MemBudget: c.budget}
	switch {
	case c.budget > 0:
		var tr *field.TileReader
		if c.lane32 {
			tr = goldenReader(t, f.Narrow().WriteBinary)
		} else {
			tr = goldenReader(t, f.WriteBinary)
		}
		s, err := AnalyzeReaderCtx(context.Background(), tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	case c.lane32:
		s, err := AnalyzeField32Ctx(context.Background(), f.Narrow(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	default:
		s, err := AnalyzeFieldCtx(context.Background(), f, opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func (c goldenCase) check(t *testing.T, s Statistics) {
	t.Helper()
	got := [4]uint64{
		math.Float64bits(s.GlobalRange()),
		math.Float64bits(s.GlobalSill()),
		math.Float64bits(s.LocalRangeStd()),
		math.Float64bits(s.LocalSVDStd()),
	}
	want := [4]uint64{c.globalRangeBits, c.globalSillBits, c.localRangeStdBits, c.localSVDStdBits}
	names := [4]string{StatGlobalRange, StatGlobalSill, StatLocalRangeStd, StatLocalSVDStd}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: %#016x (%v) != golden %#016x (%v)",
				names[i], got[i], math.Float64frombits(got[i]), want[i], math.Float64frombits(want[i]))
		}
	}
}

// TestGoldenBitIdentity pins the engine's results to the pre-refactor
// pipeline, across ranks, lanes, the FFT variogram, and in-RAM versus
// streamed sources at several budgets — each at worker counts 1, 4,
// and 8. This is the refactor's acceptance gate: any drift from the
// historical bits fails, at any combination.
func TestGoldenBitIdentity(t *testing.T) {
	for _, c := range goldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for _, workers := range []int{1, 4, 8} {
				c.check(t, c.run(t, workers))
			}
		})
	}
}

// TestGoldenSelectionSubset runs the golden field through a statistic
// subset: the selected statistics must carry exactly the golden bits,
// and the deselected ones must be absent from the result set (not
// zero), which is what keeps the JSON wire format honest.
func TestGoldenSelectionSubset(t *testing.T) {
	c := goldenCases[0] // r2/f64/ram
	f := goldenField(t, c.rank3)
	s, err := AnalyzeFieldCtx(context.Background(), f,
		AnalysisOptions{Window: c.window(), Stats: []string{"variogram", "svd"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64bits(s.GlobalRange()); got != c.globalRangeBits {
		t.Errorf("globalRange %#016x != golden %#016x", got, c.globalRangeBits)
	}
	if got := math.Float64bits(s.LocalSVDStd()); got != c.localSVDStdBits {
		t.Errorf("localSVDStd %#016x != golden %#016x", got, c.localSVDStdBits)
	}
	if s.Has(StatLocalRangeStd) {
		t.Errorf("deselected localrange present in %v", s)
	}
	if len(s) != 3 {
		t.Errorf("want exactly globalRange, globalSill, localSVDStd; got %v", s)
	}
}
