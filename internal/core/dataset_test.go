package core

import (
	"testing"
)

func TestGenerateSingleRange(t *testing.T) {
	ds, err := GenerateSingleRange(SingleRangeConfig{
		Rows: 32, Cols: 32, Ranges: []float64{2, 8}, Replicates: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "gaussian-single" {
		t.Fatalf("name %q", ds.Name)
	}
	if len(ds.Fields) != 6 || len(ds.Labels) != 6 {
		t.Fatalf("got %d fields %d labels", len(ds.Fields), len(ds.Labels))
	}
	if ds.Labels[0] != 2 || ds.Labels[3] != 8 {
		t.Fatalf("labels %v", ds.Labels)
	}
	// replicates with the same range must differ
	if d, _ := ds.Fields[0].MaxAbsDiff(ds.Fields[1]); d == 0 {
		t.Fatal("replicates identical")
	}
}

func TestGenerateSingleRangeValidation(t *testing.T) {
	if _, err := GenerateSingleRange(SingleRangeConfig{Rows: 8, Cols: 8}); err == nil {
		t.Fatal("expected no-ranges error")
	}
}

func TestGenerateSingleRangeDeterminism(t *testing.T) {
	cfg := SingleRangeConfig{Rows: 16, Cols: 16, Ranges: []float64{4}, Seed: 9}
	a, err := GenerateSingleRange(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSingleRange(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := a.Fields[0].MaxAbsDiff(b.Fields[0]); d != 0 {
		t.Fatalf("seeded dataset not deterministic: %v", d)
	}
}

func TestGenerateMultiRange(t *testing.T) {
	ds, err := GenerateMultiRange(MultiRangeConfig{
		Rows: 32, Cols: 32, RangePairs: [][2]float64{{2, 8}, {4, 16}}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Fields) != 2 {
		t.Fatalf("fields %d", len(ds.Fields))
	}
	if ds.Labels[0] != 4 { // geometric mean of 2 and 8
		t.Fatalf("label %v want 4", ds.Labels[0])
	}
	if _, err := GenerateMultiRange(MultiRangeConfig{Rows: 8, Cols: 8}); err == nil {
		t.Fatal("expected no-pairs error")
	}
}

func TestGenerateMiranda(t *testing.T) {
	ds, err := GenerateMiranda(MirandaConfig{Size: 32, Slices: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "miranda-velocityx" {
		t.Fatalf("name %q", ds.Name)
	}
	if len(ds.Fields) != 2 {
		t.Fatalf("fields %d", len(ds.Fields))
	}
	if ds.Labels[0] >= ds.Labels[1] {
		t.Fatalf("snapshot times not increasing: %v", ds.Labels)
	}
	if _, err := GenerateMiranda(MirandaConfig{Size: 0}); err == nil {
		t.Fatal("expected size error")
	}
}

func TestPaperSweepsNonEmpty(t *testing.T) {
	if len(PaperRanges) < 4 {
		t.Fatal("PaperRanges too small")
	}
	for i := 1; i < len(PaperRanges); i++ {
		if PaperRanges[i] <= PaperRanges[i-1] {
			t.Fatalf("PaperRanges not increasing: %v", PaperRanges)
		}
	}
	for _, p := range PaperRangePairs {
		if p[0] >= p[1] {
			t.Fatalf("pair %v not ordered", p)
		}
	}
}
