package core

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"lossycorr/internal/compress"
	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
)

func smallField(t *testing.T, rang float64, seed uint64) *grid.Grid {
	t.Helper()
	f, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: rang, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAnalyzeProducesAllStatistics(t *testing.T) {
	f := smallField(t, 8, 1)
	s, err := Analyze(f, AnalysisOptions{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	if s.GlobalRange() <= 0 || s.GlobalSill() <= 0 {
		t.Fatalf("global stats %+v", s)
	}
	if s.LocalRangeStd() < 0 || s.LocalSVDStd() < 0 {
		t.Fatalf("local stats %+v", s)
	}
	if s.GlobalRange() < 4 || s.GlobalRange() > 16 {
		t.Fatalf("estimated range %v far from 8", s.GlobalRange())
	}
}

func TestAnalyzeSkipLocal(t *testing.T) {
	f := smallField(t, 4, 2)
	s, err := Analyze(f, AnalysisOptions{SkipLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.LocalRangeStd() != 0 || s.LocalSVDStd() != 0 {
		t.Fatalf("local stats computed despite SkipLocal: %+v", s)
	}
}

func TestDefaultRegistryHasAllThree(t *testing.T) {
	names := DefaultRegistry().Names()
	want := []string{"mgard-like", "sz-like", "zfp-like"}
	if len(names) != 3 {
		t.Fatalf("names %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names %v want %v", names, want)
		}
	}
}

func TestMeasureFieldsEndToEnd(t *testing.T) {
	fields := []*grid.Grid{smallField(t, 4, 3), smallField(t, 16, 4)}
	labels := []float64{4, 16}
	ms, err := MeasureFields("test", fields, labels, DefaultRegistry(), MeasureOptions{
		Analysis:    AnalysisOptions{Window: 16},
		ErrorBounds: []float64{1e-3},
		Workers:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements", len(ms))
	}
	for i, m := range ms {
		if m.Dataset != "test" || m.Index != i || m.Label != labels[i] {
			t.Fatalf("metadata wrong: %+v", m)
		}
		if len(m.Results) != 3 {
			t.Fatalf("want 3 results, got %d", len(m.Results))
		}
		for _, r := range m.Results {
			if !r.BoundOK || r.Ratio <= 1 {
				t.Fatalf("bad result %+v", r)
			}
		}
	}
	// the longer-range field must have a larger estimated range and a
	// better sz-like ratio
	if ms[0].Stats.GlobalRange() >= ms[1].Stats.GlobalRange() {
		t.Fatalf("ranges not ordered: %v vs %v", ms[0].Stats.GlobalRange(), ms[1].Stats.GlobalRange())
	}
	szCR := func(m Measurement) float64 {
		for _, r := range m.Results {
			if r.Compressor == "sz-like" {
				return r.Ratio
			}
		}
		return 0
	}
	if szCR(ms[0]) >= szCR(ms[1]) {
		t.Fatalf("sz CR not increasing with range: %v vs %v", szCR(ms[0]), szCR(ms[1]))
	}
}

func TestMeasureFieldsDeterministicAcrossWorkerCounts(t *testing.T) {
	fields := []*grid.Grid{smallField(t, 4, 5), smallField(t, 8, 6), smallField(t, 12, 7)}
	opts := func(w int) MeasureOptions {
		return MeasureOptions{
			Analysis:    AnalysisOptions{SkipLocal: true},
			ErrorBounds: []float64{1e-3},
			Workers:     w,
		}
	}
	a, err := MeasureFields("d", fields, nil, DefaultRegistry(), opts(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureFields("d", fields, nil, DefaultRegistry(), opts(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Stats.Equal(b[i].Stats) {
			t.Fatalf("worker count changed stats at %d", i)
		}
		for j := range a[i].Results {
			if a[i].Results[j] != b[i].Results[j] {
				t.Fatalf("worker count changed results at %d/%d", i, j)
			}
		}
	}
}

func TestBuildSeriesGrouping(t *testing.T) {
	ms := []Measurement{
		{
			Stats: Statistics{StatGlobalRange: 4},
			Results: []compress.Result{
				{Compressor: "a", ErrorBound: 1e-3, Ratio: 10},
				{Compressor: "b", ErrorBound: 1e-3, Ratio: 5},
			},
		},
		{
			Stats: Statistics{StatGlobalRange: 16},
			Results: []compress.Result{
				{Compressor: "a", ErrorBound: 1e-3, Ratio: 20},
				{Compressor: "b", ErrorBound: 1e-3, Ratio: 6},
			},
		},
	}
	series := BuildSeries(ms, XGlobalRange)
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	if series[0].Compressor != "a" || series[1].Compressor != "b" {
		t.Fatalf("series order %v %v", series[0].Compressor, series[1].Compressor)
	}
	if len(series[0].X) != 2 || series[0].X[0] != 4 || series[0].X[1] != 16 {
		t.Fatalf("series X %v", series[0].X)
	}
	if !series[0].FitOK {
		t.Fatal("fit failed")
	}
	// series a: CR 10 -> 20 over x 4 -> 16: β = 10/ln(4)
	wantBeta := 10 / math.Log(4)
	if math.Abs(series[0].Fit.Beta-wantBeta) > 1e-9 {
		t.Fatalf("beta %v want %v", series[0].Fit.Beta, wantBeta)
	}
}

func TestStatSelectorValueAndString(t *testing.T) {
	s := Statistics{StatGlobalRange: 1, StatLocalRangeStd: 2, StatLocalSVDStd: 3}
	if XGlobalRange.Value(s) != 1 || XLocalRangeStd.Value(s) != 2 || XLocalSVDStd.Value(s) != 3 {
		t.Fatal("selector values wrong")
	}
	if !strings.Contains(XGlobalRange.String(), "global variogram") {
		t.Fatalf("label %q", XGlobalRange.String())
	}
	if !strings.Contains(XLocalSVDStd.String(), "SVD") {
		t.Fatalf("label %q", XLocalSVDStd.String())
	}
}

func TestPanelsByCompressorFilter(t *testing.T) {
	ms := []Measurement{{
		Stats: Statistics{StatGlobalRange: 4},
		Results: []compress.Result{
			{Compressor: "a", ErrorBound: 1e-3, Ratio: 10},
			{Compressor: "a", ErrorBound: 1e-2, Ratio: 30},
		},
	}, {
		Stats: Statistics{StatGlobalRange: 9},
		Results: []compress.Result{
			{Compressor: "a", ErrorBound: 1e-3, Ratio: 12},
			{Compressor: "a", ErrorBound: 1e-2, Ratio: 40},
		},
	}}
	all := PanelsByCompressor(ms, XGlobalRange, -1)
	if len(all) != 1 || len(all[0].Series) != 2 {
		t.Fatalf("panels %+v", all)
	}
	filtered := PanelsByCompressor(ms, XGlobalRange, 1e-2)
	if len(filtered) != 1 || len(filtered[0].Series) != 1 {
		t.Fatalf("filtered panels %+v", filtered)
	}
	if filtered[0].Series[0].ErrorBound != 1e-3 {
		t.Fatalf("wrong series survived filter")
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		ID:    "figX",
		Title: "test",
		Panels: []Panel{{
			Title:  "p",
			XLabel: "x",
			Series: []Series{{Compressor: "a", ErrorBound: 1e-3, X: []float64{1, 2}, Y: []float64{3, 4}}},
		}},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "panel: p", "eb=1e-03", "CR="} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	err := Summarize(&buf, []Series{{Compressor: "c", ErrorBound: 1e-4, Y: []float64{2, 8}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CR∈[2.00, 8.00]") {
		t.Fatalf("summary %q", buf.String())
	}
}

// TestStatisticsMarshalClampsNonFinite pins the wire contract the
// service layer relies on: degenerate fields can yield NaN/Inf
// statistics, which encoding/json rejects, so Statistics marshals them
// clamped to the same sentinels compress.Result uses for PSNR.
func TestStatisticsMarshalClampsNonFinite(t *testing.T) {
	s := Statistics{
		StatGlobalRange:   math.Inf(1),
		StatGlobalSill:    math.Inf(-1),
		StatLocalRangeStd: math.NaN(),
		StatLocalSVDStd:   1.5,
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("non-finite statistics must still marshal: %v", err)
	}
	var got map[string]float64
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("round trip of %q: %v", data, err)
	}
	want := map[string]float64{
		"globalRange": 1e308, "globalSill": -1e308, "localRangeStd": 0, "localSVDStd": 1.5,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %v, want %v", k, got[k], w)
		}
	}

	// Finite statistics must be unaffected by the clamping marshaller.
	fin := Statistics{StatGlobalRange: 12.5, StatGlobalSill: 1, StatLocalRangeStd: 0.25, StatLocalSVDStd: 3}
	data, err = json.Marshal(fin)
	if err != nil {
		t.Fatal(err)
	}
	var back Statistics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(fin) {
		t.Fatalf("finite stats round trip: %+v != %+v", back, fin)
	}
}
