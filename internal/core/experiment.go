package core

import (
	"fmt"
	"io"
	"sort"

	"lossycorr/internal/regression"
)

// StatSelector picks the x-axis statistic of a figure.
type StatSelector int

const (
	// XGlobalRange plots against the estimated global variogram range
	// (Figures 3 and 4).
	XGlobalRange StatSelector = iota
	// XLocalRangeStd plots against the std of local variogram ranges
	// (Figure 5 and Figure 7 left).
	XLocalRangeStd
	// XLocalSVDStd plots against the std of local SVD truncation levels
	// (Figure 6 and Figure 7 right).
	XLocalSVDStd
)

// String names the selector as the paper's axis labels do.
func (s StatSelector) String() string {
	switch s {
	case XGlobalRange:
		return "Estimated global variogram range"
	case XLocalRangeStd:
		return fmt.Sprintf("Std estimated of local variogram range (H=%d)", DefaultWindow)
	case XLocalSVDStd:
		return fmt.Sprintf("Std of truncation level of local SVD (H=%d)", DefaultWindow)
	default:
		return "unknown statistic"
	}
}

// StatKey is the Statistics map key of the selected statistic (Key is
// the selector's persistence name — a different namespace).
func (s StatSelector) StatKey() string {
	switch s {
	case XGlobalRange:
		return StatGlobalRange
	case XLocalRangeStd:
		return StatLocalRangeStd
	default:
		return StatLocalSVDStd
	}
}

// Value extracts the selected statistic.
func (s StatSelector) Value(st Statistics) float64 {
	return st[s.StatKey()]
}

// WithValue returns a Statistics carrying x as the selected statistic —
// the inverse of Value, for callers holding the statistic alone (e.g.
// corrcompd's stats-only predict path, where the client sends a cached
// statistic instead of a field).
func (s StatSelector) WithValue(x float64) Statistics {
	return Statistics{s.StatKey(): x}
}

// Metric selects the y quantity of a series.
type Metric int

const (
	// YRatio plots compression ratios (the paper's evaluation).
	YRatio Metric = iota
	// YPSNR plots reconstruction PSNR in dB (the paper's future-work
	// quality metric).
	YPSNR
)

// String names the metric.
func (m Metric) String() string {
	if m == YPSNR {
		return "PSNR (dB)"
	}
	return "Compression ratio"
}

// Series is one curve of a figure panel: a compression metric of one
// compressor at one error bound against one statistic, plus the fitted
// logarithmic regression y = α + β·log(x).
type Series struct {
	Compressor string
	ErrorBound float64
	X, Y       []float64
	Fit        regression.LogFit
	FitOK      bool
}

// Panel is one subplot: all series of one compressor (or dataset
// pairing) against one x statistic.
type Panel struct {
	Title  string
	XLabel string
	Series []Series
}

// Figure is an ordered set of panels with the paper's figure number.
type Figure struct {
	ID     string // "fig3", ...
	Title  string
	Panels []Panel
}

// BuildSeries groups measurements by (compressor, error bound) and
// fits the paper's logarithmic regression per group, with compression
// ratio on the y axis.
func BuildSeries(ms []Measurement, sel StatSelector) []Series {
	return BuildMetricSeries(ms, sel, YRatio)
}

// BuildMetricSeries is BuildSeries with a selectable y metric.
func BuildMetricSeries(ms []Measurement, sel StatSelector, metric Metric) []Series {
	type key struct {
		comp string
		eb   float64
	}
	groups := make(map[key]*Series)
	var order []key
	for _, m := range ms {
		x := sel.Value(m.Stats)
		for _, r := range m.Results {
			k := key{r.Compressor, r.ErrorBound}
			s, ok := groups[k]
			if !ok {
				s = &Series{Compressor: r.Compressor, ErrorBound: r.ErrorBound}
				groups[k] = s
				order = append(order, k)
			}
			s.X = append(s.X, x)
			y := r.Ratio
			if metric == YPSNR {
				y = r.PSNR
			}
			s.Y = append(s.Y, y)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].comp != order[j].comp {
			return order[i].comp < order[j].comp
		}
		return order[i].eb < order[j].eb
	})
	out := make([]Series, 0, len(order))
	for _, k := range order {
		s := groups[k]
		if fit, err := regression.FitLog(s.X, s.Y); err == nil {
			s.Fit = fit
			s.FitOK = true
		}
		out = append(out, *s)
	}
	return out
}

// PanelsByCompressor splits series into one panel per compressor, the
// layout of the paper's figures (SZ panel, ZFP panel, MGARD panel).
// maxEB < 0 keeps everything; otherwise series with ErrorBound >= maxEB
// are dropped (the paper's "error bounds strictly below 1E-2" panels).
func PanelsByCompressor(ms []Measurement, sel StatSelector, maxEB float64) []Panel {
	series := BuildSeries(ms, sel)
	byComp := make(map[string][]Series)
	var names []string
	for _, s := range series {
		if maxEB >= 0 && s.ErrorBound >= maxEB {
			continue
		}
		if _, ok := byComp[s.Compressor]; !ok {
			names = append(names, s.Compressor)
		}
		byComp[s.Compressor] = append(byComp[s.Compressor], s)
	}
	sort.Strings(names)
	panels := make([]Panel, 0, len(names))
	for _, n := range names {
		panels = append(panels, Panel{Title: n, XLabel: sel.String(), Series: byComp[n]})
	}
	return panels
}

// Render writes a figure as aligned text tables, one block per panel
// and one row per datapoint, with fit coefficients in the legend line —
// the textual equivalent of the paper's plots.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, p := range f.Panels {
		if _, err := fmt.Fprintf(w, "\n-- panel: %s  (x = %s) --\n", p.Title, p.XLabel); err != nil {
			return err
		}
		for _, s := range p.Series {
			legend := "fit unavailable"
			if s.FitOK {
				legend = s.Fit.String()
			}
			if _, err := fmt.Fprintf(w, "series %s eb=%.0e  %s\n", s.Compressor, s.ErrorBound, legend); err != nil {
				return err
			}
			for i := range s.X {
				if _, err := fmt.Fprintf(w, "  x=%12.5f  CR=%10.3f\n", s.X[i], s.Y[i]); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Summarize prints one line per series (compressor, bound, fit, CR
// span) — the compact form used by benchmarks.
func Summarize(w io.Writer, series []Series) error {
	for _, s := range series {
		minY, maxY := minMax(s.Y)
		legend := "fit n/a"
		if s.FitOK {
			legend = s.Fit.String()
		}
		if _, err := fmt.Fprintf(w, "%-11s eb=%.0e CR∈[%.2f, %.2f] %s\n",
			s.Compressor, s.ErrorBound, minY, maxY, legend); err != nil {
			return err
		}
	}
	return nil
}

func minMax(x []float64) (float64, float64) {
	if len(x) == 0 {
		return 0, 0
	}
	mn, mx := x[0], x[0]
	for _, v := range x[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}
