package core

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps the full figure pipeline fast enough for unit tests.
func tinyConfig() FigureConfig {
	return FigureConfig{
		Size:          64,
		Replicates:    1,
		MirandaSlices: 2,
		Seed:          5,
		ErrorBounds:   []float64{1e-3},
	}
}

func TestConfigDefaults(t *testing.T) {
	c := FigureConfig{}.withDefaults()
	if c.Size != 256 || c.Replicates != 2 || c.MirandaSlices != 6 {
		t.Fatalf("defaults %+v", c)
	}
	if len(c.ErrorBounds) != 4 {
		t.Fatalf("default bounds %v", c.ErrorBounds)
	}
}

func TestScaledRanges(t *testing.T) {
	c := FigureConfig{Size: 128}.withDefaults()
	rs := c.scaledRanges()
	if rs[0] != PaperRanges[0]/2 {
		t.Fatalf("scaling wrong: %v", rs)
	}
	ps := c.scaledPairs()
	if ps[0][1] != PaperRangePairs[0][1]/2 {
		t.Fatalf("pair scaling wrong: %v", ps)
	}
}

func TestSuiteFigure1(t *testing.T) {
	s := NewSuite(tinyConfig())
	var buf bytes.Buffer
	if err := s.Figure1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig1", "fitted range", "empirical", "theoretical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig1 missing %q", want)
		}
	}
	if len(strings.Split(out, "\n")) < 10 {
		t.Fatalf("fig1 too short:\n%s", out)
	}
}

func TestSuiteFigure2(t *testing.T) {
	s := NewSuite(tinyConfig())
	var buf bytes.Buffer
	if err := s.Figure2(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"gaussian-range", "miranda-velocityx", "var="} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 missing %q:\n%s", want, out)
		}
	}
}

func TestSuiteFigures3Through7(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure pipeline in -short mode")
	}
	s := NewSuite(tinyConfig())
	for n := 3; n <= 7; n++ {
		fig, err := s.Figure(n)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		if len(fig.Panels) == 0 {
			t.Fatalf("figure %d has no panels", n)
		}
		for _, p := range fig.Panels {
			if len(p.Series) == 0 {
				t.Fatalf("figure %d panel %q empty", n, p.Title)
			}
			for _, sr := range p.Series {
				if len(sr.X) != len(sr.Y) || len(sr.X) == 0 {
					t.Fatalf("figure %d: series with %d/%d points", n, len(sr.X), len(sr.Y))
				}
			}
		}
		var buf bytes.Buffer
		if err := fig.Render(&buf); err != nil {
			t.Fatalf("figure %d render: %v", n, err)
		}
	}
	// figure 6 and 7 must not include mgard panels (paper omits it)
	fig6, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig6.Panels {
		if strings.Contains(p.Title, "mgard") {
			t.Fatalf("figure 6 contains mgard panel %q", p.Title)
		}
	}
	// figure 4 must include the reduced sz panel
	fig4, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range fig4.Panels {
		if strings.Contains(p.Title, "eb < 1e-2") {
			found = true
		}
	}
	if !found {
		t.Fatal("figure 4 missing reduced sz panel")
	}
}

func TestSuiteCachesMeasurements(t *testing.T) {
	s := NewSuite(tinyConfig())
	a, err := s.SingleRangeMeasurements()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SingleRangeMeasurements()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("measurements recomputed instead of cached")
	}
}

func TestFigureUnknownNumber(t *testing.T) {
	s := NewSuite(tinyConfig())
	if _, err := s.Figure(1); err == nil {
		t.Fatal("figure 1 must direct to the textual API")
	}
	if _, err := s.Figure(99); err == nil {
		t.Fatal("unknown figure must error")
	}
}
