package core

import (
	"math"
	"testing"

	"lossycorr/internal/field"
	"lossycorr/internal/gaussian"
	"lossycorr/internal/variogram"
)

// laneField returns a Gaussian field in both lanes: the float32 field
// and its exact float64 widening, so the two pipelines see
// exactly-corresponding values.
func laneField(t *testing.T, rang float64, seed uint64) (*field.Field32, *field.Field) {
	t.Helper()
	g, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: rang, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	wide := field.FromGrid(g)
	f32 := wide.Narrow()
	return f32, f32.Widen()
}

// TestAnalyzeField32MatchesOracle pins the lane-equivalence contract:
// with the direct (non-FFT) scan the float32 statistics are bitwise
// identical to the float64 pipeline over the widened field — the
// windowed statistics widen per window, and the direct scans
// accumulate in float64 either way.
func TestAnalyzeField32MatchesOracle(t *testing.T) {
	f32, f64 := laneField(t, 12, 5)
	opts := AnalysisOptions{VariogramOpts: variogram.Options{Exact: true}, Workers: 3}
	ex, err := AnalyzeField(f64, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeField32(f32, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ex) {
		t.Fatalf("float32 lane stats diverge:\n got %+v\nwant %+v", got, ex)
	}
}

// TestAnalyzeField32FFT pins the FFT engine lane: pair counts are
// exact, so the fitted range tracks the oracle within float32
// transform tolerance.
func TestAnalyzeField32FFT(t *testing.T) {
	f32, f64 := laneField(t, 10, 9)
	ex, err := AnalyzeField(f64, AnalysisOptions{VariogramFFT: true, SkipLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeField32(f32, AnalysisOptions{VariogramFFT: true, SkipLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.GlobalRange()-ex.GlobalRange()) / ex.GlobalRange(); rel > 1e-3 {
		t.Fatalf("FFT lane range %v vs oracle %v (rel %g)", got.GlobalRange(), ex.GlobalRange(), rel)
	}
}

// TestMeasureFieldSet32EndToEnd runs the full measurement sweep on the
// float32 lane: every codec of the registry (native float32 lanes for
// sz-like and zfp-like, widen→narrow fallback for mgard-like) must
// hold its bound on float32 values at every paper error bound.
func TestMeasureFieldSet32EndToEnd(t *testing.T) {
	f32, _ := laneField(t, 16, 11)
	ms, err := MeasureFieldSet32("lane32", []*field.Field32{f32}, []float64{16},
		DefaultRegistry(), MeasureOptions{
			Analysis:    AnalysisOptions{VariogramOpts: variogram.Options{Exact: true}},
			ErrorBounds: []float64{1e-2, 1e-4},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("got %d measurements", len(ms))
	}
	if len(ms[0].Results) != 3*2 {
		t.Fatalf("got %d results, want 6", len(ms[0].Results))
	}
	for _, r := range ms[0].Results {
		if !r.BoundOK {
			t.Fatalf("%s violated bound %g: max err %g", r.Compressor, r.ErrorBound, r.MaxAbsError)
		}
		if r.OriginalSize != 64*64*4 {
			t.Fatalf("%s: original size %d, want float32 bytes %d", r.Compressor, r.OriginalSize, 64*64*4)
		}
	}
}

// TestPredictField32 pins the forward application on the compute lane:
// a predictor trained on float64 measurements predicts from float32
// statistics, and with the direct scan the prediction is bitwise the
// float64 prediction.
func TestPredictField32(t *testing.T) {
	var fields []*field.Field
	var f32s []*field.Field32
	labels := []float64{4, 10, 18}
	for i, rng := range labels {
		f32, f64 := laneField(t, rng, uint64(20+i))
		fields = append(fields, f64)
		f32s = append(f32s, f32)
	}
	opts := MeasureOptions{
		Analysis:    AnalysisOptions{VariogramOpts: variogram.Options{Exact: true}},
		ErrorBounds: []float64{1e-3},
	}
	ms, err := MeasureFieldSet("train", fields, labels, DefaultRegistry(), opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := TrainPredictor(ms, XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := p.PredictField(fields[0], "sz-like", 1e-3, opts.Analysis)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.PredictField32(f32s[0], "sz-like", 1e-3, opts.Analysis)
	if err != nil {
		t.Fatal(err)
	}
	if got != ex {
		t.Fatalf("float32 lane prediction %v != oracle %v", got, ex)
	}
}
