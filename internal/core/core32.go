package core

// Float32 compute lane of the analysis and measurement pipeline —
// thin delegates into the shared engine. Analysis hands the stat
// engine a float32 source (windowed statistics widen each window into
// oracle precision during extraction, bit-identical to the float64
// path on the widened field; the direct variogram scans accumulate in
// float64; the FFT exact engine runs the half-bandwidth float32 plane
// pipeline). Measurement runs codecs through their native float32
// lanes when they have one (compress.Lane32Compressor) and through
// the widen→narrow fallback otherwise — either way the bound is
// checked on float32 values.

import (
	"context"

	"lossycorr/internal/compress"
	"lossycorr/internal/field"
	"lossycorr/internal/stat"
)

// AnalyzeField32 extracts the correlation statistics of a float32
// field — the compute-lane mirror of AnalyzeField, with the same
// statistic set, worker semantics, and error precedence.
func AnalyzeField32(f *field.Field32, opts AnalysisOptions) (Statistics, error) {
	return AnalyzeField32Ctx(context.Background(), f, opts)
}

// AnalyzeField32Ctx is AnalyzeField32 with cooperative cancellation
// threaded through every statistic, mirroring AnalyzeFieldCtx.
func AnalyzeField32Ctx(ctx context.Context, f *field.Field32, opts AnalysisOptions) (Statistics, error) {
	return analyzeSource(ctx, stat.Source{F32: f}, opts)
}

// MeasureFieldSet32 analyzes and compresses every float32 field with
// every registered compressor accepting its rank — the compute-lane
// mirror of MeasureFieldSet.
func MeasureFieldSet32(name string, fields []*field.Field32, labels []float64,
	reg *compress.Registry, opts MeasureOptions) ([]Measurement, error) {
	return MeasureFieldSet32Ctx(context.Background(), name, fields, labels, reg, opts)
}

// MeasureFieldSet32Ctx is MeasureFieldSet32 with cooperative
// cancellation, with the same ordering and error-precedence contract
// as the float64 pipeline.
func MeasureFieldSet32Ctx(ctx context.Context, name string, fields []*field.Field32, labels []float64,
	reg *compress.Registry, opts MeasureOptions) ([]Measurement, error) {
	return measureSet(ctx, name, fields, labels, reg, opts, AnalyzeField32Ctx, compress.RunField32)
}

// PredictField32 analyzes a float32 field and predicts its CR for a
// compressor and bound in one call — the compute-lane mirror of
// PredictField.
func (p *Predictor) PredictField32(f *field.Field32, compressor string, eb float64, opts AnalysisOptions) (float64, error) {
	return p.PredictField32Ctx(context.Background(), f, compressor, eb, opts)
}

// PredictField32Ctx is PredictField32 with cooperative cancellation of
// the underlying analysis.
func (p *Predictor) PredictField32Ctx(ctx context.Context, f *field.Field32, compressor string, eb float64, opts AnalysisOptions) (float64, error) {
	stats, err := AnalyzeField32Ctx(ctx, f, opts)
	if err != nil {
		return 0, err
	}
	return p.PredictRatio(compressor, eb, stats)
}
