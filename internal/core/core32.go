package core

// Float32 compute lane of the analysis and measurement pipeline. The
// statistics mirror AnalyzeFieldCtx exactly: windowed statistics widen
// each window into oracle precision during extraction (bit-identical
// to the float64 path on the widened field), the direct variogram
// scans accumulate in float64 (also bit-identical), and the FFT exact
// engine runs the half-bandwidth float32 plane pipeline. Measurement
// runs codecs through their native float32 lanes when they have one
// (compress.Lane32Compressor) and through the widen→narrow fallback
// otherwise — either way the bound is checked on float32 values.

import (
	"context"
	"fmt"

	"lossycorr/internal/compress"
	"lossycorr/internal/field"
	"lossycorr/internal/parallel"
	"lossycorr/internal/svdstat"
	"lossycorr/internal/variogram"
)

// AnalyzeField32 extracts the correlation statistics of a float32
// field — the compute-lane mirror of AnalyzeField, with the same
// statistic set, worker semantics, and error precedence.
func AnalyzeField32(f *field.Field32, opts AnalysisOptions) (Statistics, error) {
	return AnalyzeField32Ctx(context.Background(), f, opts)
}

// AnalyzeField32Ctx is AnalyzeField32 with cooperative cancellation
// threaded through every statistic, mirroring AnalyzeFieldCtx.
func AnalyzeField32Ctx(ctx context.Context, f *field.Field32, opts AnalysisOptions) (Statistics, error) {
	o := opts.withDefaults()
	vOpts := o.VariogramOpts
	if vOpts.Workers == 0 {
		vOpts.Workers = o.Workers
	}
	if o.VariogramFFT {
		vOpts.FFT = true
	}
	var s Statistics
	if o.SkipLocal {
		m, err := variogram.GlobalRangeField32Ctx(ctx, f, vOpts)
		if err != nil {
			return s, fmt.Errorf("core: global variogram: %w", err)
		}
		s.GlobalRange = m.Range
		s.GlobalSill = m.Sill
		return s, nil
	}
	var (
		model                 variogram.Model
		gErr, localErr, svErr error
	)
	parallel.Do(o.Workers,
		func() { model, gErr = variogram.GlobalRangeField32Ctx(ctx, f, vOpts) },
		func() { s.LocalRangeStd, localErr = variogram.LocalRangeStdField32Ctx(ctx, f, o.Window, vOpts) },
		func() {
			s.LocalSVDStd, svErr = svdstat.LocalStdField32Ctx(ctx, f, o.Window, svdstat.Options{
				Frac: o.VarianceFraction, Workers: o.Workers, Gram: o.SVDGram,
			})
		},
	)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Statistics{}, err
		}
	}
	if gErr != nil {
		return Statistics{}, fmt.Errorf("core: global variogram: %w", gErr)
	}
	if localErr != nil {
		return Statistics{}, fmt.Errorf("core: local variogram: %w", localErr)
	}
	if svErr != nil {
		return Statistics{}, fmt.Errorf("core: local svd: %w", svErr)
	}
	s.GlobalRange = model.Range
	s.GlobalSill = model.Sill
	return s, nil
}

// MeasureFieldSet32 analyzes and compresses every float32 field with
// every registered compressor accepting its rank — the compute-lane
// mirror of MeasureFieldSet.
func MeasureFieldSet32(name string, fields []*field.Field32, labels []float64,
	reg *compress.Registry, opts MeasureOptions) ([]Measurement, error) {
	return MeasureFieldSet32Ctx(context.Background(), name, fields, labels, reg, opts)
}

// MeasureFieldSet32Ctx is MeasureFieldSet32 with cooperative
// cancellation, with the same ordering and error-precedence contract
// as the float64 pipeline.
func MeasureFieldSet32Ctx(ctx context.Context, name string, fields []*field.Field32, labels []float64,
	reg *compress.Registry, opts MeasureOptions) ([]Measurement, error) {

	ebs := opts.ErrorBounds
	if ebs == nil {
		ebs = compress.PaperErrorBounds
	}
	aOpts := opts.Analysis
	if aOpts.Workers == 0 {
		aOpts.Workers = opts.Workers
	}
	out := make([]Measurement, len(fields))
	err := parallel.ForErrCtx(ctx, len(fields), opts.Workers, func(i int) error {
		var err error
		out[i], err = measureOne32(ctx, name, i, fields[i], labels, reg, ebs, aOpts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func measureOne32(ctx context.Context, name string, i int, f *field.Field32, labels []float64,
	reg *compress.Registry, ebs []float64, aOpts AnalysisOptions) (Measurement, error) {

	m := Measurement{Dataset: name, Index: i}
	if i < len(labels) {
		m.Label = labels[i]
	}
	var err error
	m.Stats, err = AnalyzeField32Ctx(ctx, f, aOpts)
	if err != nil {
		return m, err
	}
	codecs := reg.AllFor(f.NDim())
	if len(codecs) == 0 {
		return m, fmt.Errorf("core: field %d: no compressors registered for rank %d", i, f.NDim())
	}
	for _, c := range codecs {
		for _, eb := range ebs {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return m, err
				}
			}
			res, err := compress.RunField32(c, f, eb)
			if err != nil {
				return m, fmt.Errorf("core: field %d: %w", i, err)
			}
			if !res.BoundOK {
				return m, fmt.Errorf("core: field %d: %s violated bound %g (max err %g)",
					i, c.Name(), eb, res.MaxAbsError)
			}
			m.Results = append(m.Results, res)
		}
	}
	return m, nil
}

// PredictField32 analyzes a float32 field and predicts its CR for a
// compressor and bound in one call — the compute-lane mirror of
// PredictField.
func (p *Predictor) PredictField32(f *field.Field32, compressor string, eb float64, opts AnalysisOptions) (float64, error) {
	return p.PredictField32Ctx(context.Background(), f, compressor, eb, opts)
}

// PredictField32Ctx is PredictField32 with cooperative cancellation of
// the underlying analysis.
func (p *Predictor) PredictField32Ctx(ctx context.Context, f *field.Field32, compressor string, eb float64, opts AnalysisOptions) (float64, error) {
	stats, err := AnalyzeField32Ctx(ctx, f, opts)
	if err != nil {
		return 0, err
	}
	return p.PredictRatio(compressor, eb, stats)
}
