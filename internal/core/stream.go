package core

// Dataset-backed analysis under a memory budget. AnalyzeReaderCtx is
// the out-of-core sibling of AnalyzeFieldCtx: when the field (plus the
// spectral engine's padded planes, if requested) fits
// AnalysisOptions.MemBudget it slurps the file and delegates to the
// in-RAM pipeline on the stored lane; otherwise it streams every
// statistic through the TileReader. The streaming statistics run
// sequentially — the transform-pool budget bounds PEAK bytes, and
// running the three stats concurrently would sum their working sets —
// and their error wrapping follows the same fixed precedence as the
// in-RAM path (global variogram, local variogram, local SVD), so
// failures are reported identically either way.

import (
	"context"
	"fmt"

	"lossycorr/internal/fft"
	"lossycorr/internal/field"
	"lossycorr/internal/stat"
)

// inRAMBytes estimates the working set of an in-RAM analysis of the
// reader's field: the stored lane itself, plus the full-field spectral
// engine's padded correlation planes when the FFT variogram is on
// (~four real planes of the FastLen-padded size, the documented
// footprint of the half-spectrum engine).
func inRAMBytes(tr *field.TileReader, o AnalysisOptions) int64 {
	est := int64(tr.Len()) * int64(tr.ElemBytes())
	if o.VariogramFFT {
		lag := o.VariogramOpts.MaxLag
		if lag <= 0 {
			lag = tr.MinDim() / 2
			if lag < 1 {
				lag = 1
			}
		}
		total := int64(1)
		for _, d := range tr.Shape() {
			total *= int64(fft.FastLen(d + lag))
		}
		est += 4 * 8 * total
	}
	return est
}

// AnalyzeReader is AnalyzeReaderCtx without cancellation.
func AnalyzeReader(tr *field.TileReader, opts AnalysisOptions) (Statistics, error) {
	return AnalyzeReaderCtx(context.Background(), tr, opts)
}

// AnalyzeReaderCtx extracts the correlation statistics of a
// dataset-backed field under opts.MemBudget. Fits-in-budget files (and
// every file when the budget is <= 0) take the in-RAM path on their
// stored lane, bit-identical to opening the field directly. Larger
// files stream: the windowed statistics are bit-identical to in-RAM at
// any tile size, halo, and worker count; the global variogram is
// bit-identical on its sampled lane and exact-in-counts /
// tolerance-equivalent-in-Gamma on its sharded spectral lane.
func AnalyzeReaderCtx(ctx context.Context, tr *field.TileReader, opts AnalysisOptions) (Statistics, error) {
	o := opts.withDefaults()
	if o.MemBudget <= 0 || inRAMBytes(tr, o) <= o.MemBudget {
		f64, f32, err := tr.ReadAll()
		if err != nil {
			return Statistics{}, fmt.Errorf("core: read field: %w", err)
		}
		if f32 != nil {
			return AnalyzeField32Ctx(ctx, f32, o)
		}
		return AnalyzeFieldCtx(ctx, f64, o)
	}
	return analyzeSource(ctx, stat.Source{
		Reader: tr,
		Stream: field.StreamOptions{BudgetBytes: o.MemBudget},
	}, o)
}
