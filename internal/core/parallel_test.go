package core

import (
	"testing"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
)

// TestAnalyzeSerialParallelIdentical asserts the orchestration-layer
// determinism contract: Analyze at Workers 1 and Workers N produces
// bit-identical statistics on a seeded field.
func TestAnalyzeSerialParallelIdentical(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 96, Cols: 96, Range: 10, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Analyze(f, AnalysisOptions{Window: 16, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := Analyze(f, AnalysisOptions{Window: 16, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !par.Equal(serial) {
			t.Fatalf("workers=%d: %+v != serial %+v", workers, par, serial)
		}
	}
}

func TestAnalyzeSkipLocalHonorsWorkers(t *testing.T) {
	f, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Analyze(f, AnalysisOptions{SkipLocal: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Analyze(f, AnalysisOptions{SkipLocal: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(serial) {
		t.Fatalf("SkipLocal results differ: %+v vs %+v", par, serial)
	}
}

// TestMeasureFieldsSerialParallelIdentical runs the full
// analyze+compress pipeline over several fields and requires identical
// measurements from the serial and parallel pools.
func TestMeasureFieldsSerialParallelIdentical(t *testing.T) {
	var fields []*grid.Grid
	var labels []float64
	for i, rang := range []float64{4, 8, 16} {
		f, err := gaussian.Generate(gaussian.Params{Rows: 64, Cols: 64, Range: rang, Seed: uint64(50 + i)})
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
		labels = append(labels, rang)
	}
	reg := DefaultRegistry()
	opts := MeasureOptions{
		Analysis:    AnalysisOptions{Window: 16},
		ErrorBounds: []float64{1e-3},
	}
	optsSerial := opts
	optsSerial.Workers = 1
	serial, err := MeasureFields("eq", fields, labels, reg, optsSerial)
	if err != nil {
		t.Fatal(err)
	}
	optsPar := opts
	optsPar.Workers = 8
	par, err := MeasureFields("eq", fields, labels, reg, optsPar)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("length mismatch %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if !serial[i].Stats.Equal(par[i].Stats) {
			t.Fatalf("field %d stats differ: %+v vs %+v", i, serial[i].Stats, par[i].Stats)
		}
		if len(serial[i].Results) != len(par[i].Results) {
			t.Fatalf("field %d result count differs", i)
		}
		for j := range serial[i].Results {
			if serial[i].Results[j] != par[i].Results[j] {
				t.Fatalf("field %d result %d differs: %+v vs %+v",
					i, j, serial[i].Results[j], par[i].Results[j])
			}
		}
	}
}

// TestMeasureFieldsErrorDeterministic: with several failing fields the
// reported error must belong to the lowest index at any worker count.
func TestMeasureFieldsErrorDeterministic(t *testing.T) {
	// Constant fields make Analyze fail (no usable windows).
	fields := []*grid.Grid{grid.New(64, 64), grid.New(64, 64), grid.New(64, 64)}
	reg := DefaultRegistry()
	var msgs []string
	for _, workers := range []int{1, 4} {
		_, err := MeasureFields("bad", fields, nil, reg, MeasureOptions{
			Analysis: AnalysisOptions{Window: 16},
			Workers:  workers,
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error on constant fields", workers)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("error not deterministic across worker counts: %q vs %q", msgs[0], msgs[1])
	}
}
