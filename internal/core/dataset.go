package core

import (
	"fmt"
	"math"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/hydro"
	"lossycorr/internal/xrand"
)

// Dataset is a named collection of 2D fields with optional generating
// labels (true correlation range for synthetic fields, snapshot time
// for hydro slices).
type Dataset struct {
	Name   string
	Fields []*grid.Grid
	Labels []float64
}

// SingleRangeConfig generates the paper's first dataset: single
// correlation range Gaussian fields, one or more replicates per range.
type SingleRangeConfig struct {
	Rows, Cols int
	Ranges     []float64 // generating correlation ranges
	Replicates int       // fields per range; 0 means 1
	Seed       uint64
}

// PaperRanges is a representative sweep of correlation ranges relative
// to a field size of ~256; scaled copies are used for other sizes.
var PaperRanges = []float64{2, 4, 8, 12, 16, 24, 32, 48}

// GenerateSingleRange draws the single-range Gaussian dataset.
func GenerateSingleRange(cfg SingleRangeConfig) (*Dataset, error) {
	if len(cfg.Ranges) == 0 {
		return nil, fmt.Errorf("core: no ranges configured")
	}
	reps := cfg.Replicates
	if reps <= 0 {
		reps = 1
	}
	rng := xrand.New(cfg.Seed)
	ds := &Dataset{Name: "gaussian-single"}
	for _, a := range cfg.Ranges {
		s, err := gaussian.NewSampler(gaussian.Params{Rows: cfg.Rows, Cols: cfg.Cols, Range: a})
		if err != nil {
			return nil, err
		}
		for r := 0; r < reps; r++ {
			f, err := s.Sample(rng.Split())
			if err != nil {
				return nil, err
			}
			ds.Fields = append(ds.Fields, f)
			ds.Labels = append(ds.Labels, a)
		}
	}
	return ds, nil
}

// MultiRangeConfig generates the multi-range dataset: pairs of distinct
// ranges contributing equally (the paper's increased-complexity case).
type MultiRangeConfig struct {
	Rows, Cols int
	RangePairs [][2]float64
	Replicates int
	Seed       uint64
}

// PaperRangePairs pairs a short and a long range, equal contribution.
var PaperRangePairs = [][2]float64{
	{2, 8}, {2, 16}, {4, 16}, {4, 32}, {8, 32}, {8, 48}, {12, 48}, {16, 48},
}

// GenerateMultiRange draws the multi-range Gaussian dataset. Labels
// carry the geometric mean of each pair (a scalar summary used only
// for bookkeeping; the statistics on the fields are what the analysis
// uses).
func GenerateMultiRange(cfg MultiRangeConfig) (*Dataset, error) {
	if len(cfg.RangePairs) == 0 {
		return nil, fmt.Errorf("core: no range pairs configured")
	}
	reps := cfg.Replicates
	if reps <= 0 {
		reps = 1
	}
	rng := xrand.New(cfg.Seed)
	ds := &Dataset{Name: "gaussian-multi"}
	for _, pair := range cfg.RangePairs {
		for r := 0; r < reps; r++ {
			f, err := gaussian.GenerateMulti(gaussian.MultiParams{
				Rows: cfg.Rows, Cols: cfg.Cols,
				Ranges: pair[:],
				Seed:   rng.Uint64(),
			})
			if err != nil {
				return nil, err
			}
			ds.Fields = append(ds.Fields, f)
			ds.Labels = append(ds.Labels, geoMean(pair[0], pair[1]))
		}
	}
	return ds, nil
}

func geoMean(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Sqrt(a * b)
}

// MirandaConfig generates the Miranda-substitute dataset: velocityx
// snapshots of a Kelvin–Helmholtz run (see internal/hydro and
// DESIGN.md for the substitution rationale).
type MirandaConfig struct {
	Size   int     // square field edge
	Slices int     // number of snapshots
	TEnd   float64 // final simulation time; 0 means 1.6
	Seed   uint64
}

// GenerateMiranda runs the hydro solver and collects slices.
func GenerateMiranda(cfg MirandaConfig) (*Dataset, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("core: non-positive size %d", cfg.Size)
	}
	set, err := hydro.GenerateSlices(cfg.Size, cfg.Slices, cfg.TEnd, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{Name: "miranda-velocityx"}
	ds.Fields = set.Slices
	ds.Labels = set.Times
	return ds, nil
}
