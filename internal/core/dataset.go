package core

import (
	"fmt"
	"math"

	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/hydro"
	"lossycorr/internal/parallel"
	"lossycorr/internal/xrand"
)

// Dataset is a named collection of 2D fields with optional generating
// labels (true correlation range for synthetic fields, snapshot time
// for hydro slices).
type Dataset struct {
	Name   string
	Fields []*grid.Grid
	Labels []float64
}

// SingleRangeConfig generates the paper's first dataset: single
// correlation range Gaussian fields, one or more replicates per range.
type SingleRangeConfig struct {
	Rows, Cols int
	Ranges     []float64 // generating correlation ranges
	Replicates int       // fields per range; 0 means 1
	Seed       uint64
	// Workers bounds the goroutines of the generation fan-out (sampler
	// embeddings per range, then one field per replicate, each with a
	// pre-drawn seed). 0 means GOMAXPROCS; results are bit-identical
	// at any worker count.
	Workers int
}

// PaperRanges is a representative sweep of correlation ranges relative
// to a field size of ~256; scaled copies are used for other sizes.
var PaperRanges = []float64{2, 4, 8, 12, 16, 24, 32, 48}

// GenerateSingleRange draws the single-range Gaussian dataset.
// Per-replicate generators are split off the config seed serially (in
// the historical order), then sampler embeddings and field draws fan
// out over the shared worker pool — the dataset is bit-identical to
// the legacy serial construction at any worker count.
func GenerateSingleRange(cfg SingleRangeConfig) (*Dataset, error) {
	if len(cfg.Ranges) == 0 {
		return nil, fmt.Errorf("core: no ranges configured")
	}
	reps := cfg.Replicates
	if reps <= 0 {
		reps = 1
	}
	rng := xrand.New(cfg.Seed)
	total := len(cfg.Ranges) * reps
	rngs := make([]*xrand.Rand, total)
	for i := range rngs {
		rngs[i] = rng.Split()
	}
	samplers := make([]*gaussian.Sampler, len(cfg.Ranges))
	if err := parallel.ForErr(len(cfg.Ranges), cfg.Workers, func(k int) error {
		s, err := gaussian.NewSampler(gaussian.Params{Rows: cfg.Rows, Cols: cfg.Cols, Range: cfg.Ranges[k]})
		if err != nil {
			return err
		}
		samplers[k] = s
		return nil
	}); err != nil {
		return nil, err
	}
	ds := &Dataset{Name: "gaussian-single",
		Fields: make([]*grid.Grid, total), Labels: make([]float64, total)}
	if err := parallel.ForErr(total, cfg.Workers, func(i int) error {
		k := i / reps
		f, err := samplers[k].Sample(rngs[i])
		if err != nil {
			return err
		}
		ds.Fields[i] = f
		ds.Labels[i] = cfg.Ranges[k]
		return nil
	}); err != nil {
		return nil, err
	}
	return ds, nil
}

// MultiRangeConfig generates the multi-range dataset: pairs of distinct
// ranges contributing equally (the paper's increased-complexity case).
type MultiRangeConfig struct {
	Rows, Cols int
	RangePairs [][2]float64
	Replicates int
	Seed       uint64
	// Workers bounds the generation fan-out; 0 means GOMAXPROCS.
	// Results are bit-identical at any worker count.
	Workers int
}

// PaperRangePairs pairs a short and a long range, equal contribution.
var PaperRangePairs = [][2]float64{
	{2, 8}, {2, 16}, {4, 16}, {4, 32}, {8, 32}, {8, 48}, {12, 48}, {16, 48},
}

// GenerateMultiRange draws the multi-range Gaussian dataset. Labels
// carry the geometric mean of each pair (a scalar summary used only
// for bookkeeping; the statistics on the fields are what the analysis
// uses).
func GenerateMultiRange(cfg MultiRangeConfig) (*Dataset, error) {
	if len(cfg.RangePairs) == 0 {
		return nil, fmt.Errorf("core: no range pairs configured")
	}
	reps := cfg.Replicates
	if reps <= 0 {
		reps = 1
	}
	rng := xrand.New(cfg.Seed)
	total := len(cfg.RangePairs) * reps
	seeds := make([]uint64, total)
	for i := range seeds { // drawn serially, in the historical order
		seeds[i] = rng.Uint64()
	}
	ds := &Dataset{Name: "gaussian-multi",
		Fields: make([]*grid.Grid, total), Labels: make([]float64, total)}
	if err := parallel.ForErr(total, cfg.Workers, func(i int) error {
		pair := cfg.RangePairs[i/reps]
		f, err := gaussian.GenerateMulti(gaussian.MultiParams{
			Rows: cfg.Rows, Cols: cfg.Cols,
			Ranges: pair[:],
			Seed:   seeds[i],
		})
		if err != nil {
			return err
		}
		ds.Fields[i] = f
		ds.Labels[i] = geoMean(pair[0], pair[1])
		return nil
	}); err != nil {
		return nil, err
	}
	return ds, nil
}

func geoMean(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Sqrt(a * b)
}

// MirandaConfig generates the Miranda-substitute dataset: velocityx
// snapshots of a Kelvin–Helmholtz run (see internal/hydro and
// DESIGN.md for the substitution rationale).
type MirandaConfig struct {
	Size   int     // square field edge
	Slices int     // number of snapshots
	TEnd   float64 // final simulation time; 0 means 1.6
	Seed   uint64
	// Workers bounds the per-slice simulation fan-out (each slice is an
	// independent run with its own seed); 0 means GOMAXPROCS. Results
	// are bit-identical at any worker count.
	Workers int
}

// GenerateMiranda runs the hydro solver and collects slices, fanning
// the independent per-slice simulations out over the worker pool.
func GenerateMiranda(cfg MirandaConfig) (*Dataset, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("core: non-positive size %d", cfg.Size)
	}
	set, err := hydro.GenerateSlicesWith(cfg.Size, cfg.Slices, cfg.TEnd, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{Name: "miranda-velocityx"}
	ds.Fields = set.Slices
	ds.Labels = set.Times
	return ds, nil
}
