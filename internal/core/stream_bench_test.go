package core

import (
	"os"
	"path/filepath"
	"testing"

	"lossycorr/internal/fft"
	"lossycorr/internal/field"
	"lossycorr/internal/xrand"
)

// BenchmarkAnalyzeReaderStream measures the out-of-core analysis
// pipeline on a volume more than 4× its memory budget — the PR's
// acceptance shape. MB/s rates the full widened volume per pass;
// fftPeakMB is the transform pool's actual peak, which the budget
// bounds, and budgetMB the bound it had to stay under.
func BenchmarkAnalyzeReaderStream(b *testing.B) {
	shape := []int{40, 64, 64}
	rng := xrand.New(4242)
	f := field.New(shape...)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	path := filepath.Join(b.TempDir(), "field.lcf")
	out, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := f.WriteBinary(out); err != nil {
		b.Fatal(err)
	}
	if err := out.Close(); err != nil {
		b.Fatal(err)
	}
	tr, err := field.OpenTileReader(path, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()

	const budget = int64(300 << 10)
	opts := AnalysisOptions{Window: 16, MemBudget: budget}
	b.SetBytes(int64(tr.Len()) * 8)
	fft.ResetPeakBytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeReader(tr, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fft.PeakBytes())/(1<<20), "fftPeakMB")
	b.ReportMetric(float64(budget)/(1<<20), "budgetMB")
}

// BenchmarkAnalyzeReaderSlurp is the in-RAM control: the same file and
// options with the budget lifted, so the streamed variant's cost shows
// as the delta between the two names.
func BenchmarkAnalyzeReaderSlurp(b *testing.B) {
	shape := []int{40, 64, 64}
	rng := xrand.New(4242)
	f := field.New(shape...)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	path := filepath.Join(b.TempDir(), "field.lcf")
	out, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := f.WriteBinary(out); err != nil {
		b.Fatal(err)
	}
	if err := out.Close(); err != nil {
		b.Fatal(err)
	}
	tr, err := field.OpenTileReader(path, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()

	opts := AnalysisOptions{Window: 16}
	b.SetBytes(int64(tr.Len()) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeReader(tr, opts); err != nil {
			b.Fatal(err)
		}
	}
}
