package quant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeWithinBound(t *testing.T) {
	q := New(1e-3)
	for _, diff := range []float64{0, 1e-4, -1e-4, 0.5, -0.5, 32.76, -32.76} {
		sym, delta, ok := q.Encode(diff)
		if !ok {
			t.Fatalf("diff %v escaped unexpectedly", diff)
		}
		if sym == Escape {
			t.Fatalf("non-escape diff produced escape symbol")
		}
		if math.Abs(diff-delta) > 1e-3 {
			t.Fatalf("diff %v delta %v error %v > eb", diff, delta, math.Abs(diff-delta))
		}
		if got := q.Decode(sym); got != delta {
			t.Fatalf("Decode(%d)=%v want %v", sym, got, delta)
		}
	}
}

func TestEscapeOnLargeDiff(t *testing.T) {
	q := New(1e-3)
	// representable range is ±(Radius−1)·2eb ≈ ±65.5
	for _, diff := range []float64{100, -100, 1e12} {
		if sym, _, ok := q.Encode(diff); ok || sym != Escape {
			t.Fatalf("diff %v should escape", diff)
		}
	}
}

func TestEscapeOnNonFinite(t *testing.T) {
	q := New(1)
	for _, diff := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, _, ok := q.Encode(diff); ok {
			t.Fatalf("non-finite %v should escape", diff)
		}
	}
}

func TestBoundaryCodes(t *testing.T) {
	q := New(0.5)
	// code Radius−1 = 32767 → diff 32767·1.0
	diff := float64(Radius-1) * 1.0
	sym, delta, ok := q.Encode(diff)
	if !ok {
		t.Fatalf("max representable diff escaped")
	}
	if math.Abs(diff-delta) > 0.5 {
		t.Fatalf("boundary error %v", math.Abs(diff-delta))
	}
	if sym != 2*Radius-1 {
		t.Fatalf("boundary symbol %d", sym)
	}
	// one step beyond must escape
	if _, _, ok := q.Encode(float64(Radius) * 1.0); ok {
		t.Fatal("overflow code did not escape")
	}
}

func TestQuickErrorBound(t *testing.T) {
	f := func(diffRaw float64, ebRaw uint16) bool {
		eb := 1e-6 + float64(ebRaw)/1000 // (0, ~65.5]
		q := New(eb)
		diff := math.Mod(diffRaw, 1e6)
		if math.IsNaN(diff) {
			return true
		}
		sym, delta, ok := q.Encode(diff)
		if !ok {
			return sym == Escape
		}
		return math.Abs(diff-delta) <= eb && q.Decode(sym) == delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorBoundAccessor(t *testing.T) {
	if New(0.25).ErrorBound() != 0.25 {
		t.Fatal("ErrorBound accessor broken")
	}
}
