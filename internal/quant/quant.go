// Package quant implements the linear error-bounded quantizer shared by
// the SZ-like and MGARD-like compressors: prediction residuals are
// mapped to integer codes of width 2·eb so that reconstruction error is
// at most eb, with a reserved escape symbol for residuals outside the
// representable code range (stored exactly out of band).
package quant

import (
	"math"
)

// Radius is the code offset; codes live in [−Radius+1, Radius−1] and
// map to symbols [1, 2·Radius−1]. Symbol 0 (Escape) marks values stored
// exactly.
const Radius = 32768

// Escape is the reserved symbol for unpredictable values.
const Escape uint16 = 0

// Quantizer maps residuals to symbols under an absolute error bound.
type Quantizer struct {
	eb   float64
	step float64 // 2*eb
}

// New returns a quantizer for the given absolute error bound (> 0).
func New(eb float64) Quantizer {
	return Quantizer{eb: eb, step: 2 * eb}
}

// ErrorBound returns the configured bound.
func (q Quantizer) ErrorBound() float64 { return q.eb }

// Encode quantizes the residual diff = value − prediction. If the
// residual is representable it returns (symbol, delta, true) where
// delta = code·2eb is the reconstruction increment satisfying
// |diff − delta| <= eb; otherwise it returns (Escape, 0, false) and the
// caller must store the value exactly.
func (q Quantizer) Encode(diff float64) (sym uint16, delta float64, ok bool) {
	if math.IsNaN(diff) || math.IsInf(diff, 0) {
		return Escape, 0, false
	}
	codeF := math.Round(diff / q.step)
	if codeF >= Radius || codeF <= -Radius {
		return Escape, 0, false
	}
	code := int32(codeF)
	delta = float64(code) * q.step
	if math.Abs(diff-delta) > q.eb {
		// guards rounding pathologies near the representable edge
		return Escape, 0, false
	}
	return uint16(code + Radius), delta, true
}

// Decode maps a non-escape symbol back to its reconstruction increment.
func (q Quantizer) Decode(sym uint16) float64 {
	return float64(int32(sym)-Radius) * q.step
}
