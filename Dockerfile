# corrcompd: the analysis-as-a-service daemon, built static on the
# stdlib-only module so the runtime stage is a bare scratch image.
FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/corrcompd ./cmd/corrcompd

FROM scratch
COPY --from=build /out/corrcompd /corrcompd
# Configuration is entirely CORRCOMPD_* environment variables; see
# internal/service/config.go and the README quickstart.
ENV CORRCOMPD_ADDR=:8080
EXPOSE 8080
ENTRYPOINT ["/corrcompd"]
