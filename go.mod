module lossycorr

go 1.24
