package lossycorr

import (
	"math"
	"testing"
)

// TestQuickstart mirrors the README quickstart: generate, analyze,
// compress, predict.
func TestQuickstart(t *testing.T) {
	field, err := GenerateGaussian(GaussianParams{Rows: 64, Cols: 64, Range: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Analyze(field, AnalysisOptions{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.GlobalRange() <= 0 {
		t.Fatalf("stats %+v", stats)
	}
	res, err := Measure("sz-like", field, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BoundOK || res.Ratio <= 1 {
		t.Fatalf("result %+v", res)
	}
}

func TestMeasureRelative(t *testing.T) {
	field, err := GenerateGaussian(GaussianParams{Rows: 32, Cols: 32, Range: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureRelative("zfp-like", field, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BoundOK {
		t.Fatalf("relative bound violated: %+v", res)
	}
	vr := field.Summary().ValueRange
	if math.Abs(res.ErrorBound-1e-3*vr) > 1e-15 {
		t.Fatalf("bound %v want %v", res.ErrorBound, 1e-3*vr)
	}
	if _, err := MeasureRelative("nope", field, 1e-3); err == nil {
		t.Fatal("unknown compressor must error")
	}
}

func TestCompressorsRegistry(t *testing.T) {
	names := Compressors().Names()
	if len(names) != 3 {
		t.Fatalf("names %v", names)
	}
	if _, err := Measure("not-a-codec", NewGrid(4, 4), 1e-3); err == nil {
		t.Fatal("unknown compressor must error")
	}
}

func TestGridHelpers(t *testing.T) {
	g, err := GridFromData(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.At(1, 1) != 4 {
		t.Fatal("GridFromData broken")
	}
}

func TestMultiGaussianAndLocalStats(t *testing.T) {
	f, err := GenerateMultiGaussian(MultiGaussianParams{
		Rows: 64, Cols: 64, Ranges: []float64{2, 16}, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := EstimateVariogramRange(f, VariogramOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Range <= 0 {
		t.Fatalf("range %v", m.Range)
	}
	lrs, err := LocalVariogramRangeStd(f, 16, VariogramOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svd, err := LocalSVDStd(f, 16, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if lrs < 0 || svd < 0 {
		t.Fatalf("local stats %v %v", lrs, svd)
	}
}

func TestTurbulenceSlices(t *testing.T) {
	slices, times, err := TurbulenceSlices(32, 2, 0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != 2 || len(times) != 2 {
		t.Fatalf("%d slices %d times", len(slices), len(times))
	}
}

func Test3DFacade(t *testing.T) {
	vol, err := GenerateGaussian3D(Gaussian3DParams{Nz: 16, Ny: 16, Nx: 16, Range: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := EstimateVariogramRange3D(vol, VariogramOptions{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Range < 1 || m.Range > 9 {
		t.Fatalf("3D range %v far from 3", m.Range)
	}
	ratio, maxErr, err := Measure3D(vol, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 1 {
		t.Fatalf("3D ratio %v", ratio)
	}
	if maxErr > 1e-3*(1+1e-12) {
		t.Fatalf("3D bound violated: %v", maxErr)
	}
}

func TestSamplingAndEntropyFacade(t *testing.T) {
	f, err := GenerateGaussian(GaussianParams{Rows: 96, Cols: 96, Range: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	h, err := QuantizedEntropy(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 || EstimateEntropyRatio(h) <= 1 {
		t.Fatalf("entropy %v ratio %v", h, EstimateEntropyRatio(h))
	}
	if _, err := SampledLocalRangeStd(f, 32, SamplingOptions{Fraction: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := SampledLocalSVDStd(f, 32, 0.99, SamplingOptions{Fraction: 0.5}); err != nil {
		t.Fatal(err)
	}
	points, err := SweepSamplingFractions(f, 32, "range", []float64{0.5, 1}, SamplingOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[1].RelError > 1e-9 {
		t.Fatalf("sweep %+v", points)
	}
}

func TestFitLogFacade(t *testing.T) {
	fit, err := FitLog([]float64{1, math.E, math.E * math.E}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Beta-1) > 1e-9 || math.Abs(fit.Alpha-1) > 1e-9 {
		t.Fatalf("fit %+v", fit)
	}
}

func TestMeasureFieldsAndPredictorFacade(t *testing.T) {
	var fields []*Grid
	var labels []float64
	for i, rang := range []float64{4, 10, 24} {
		f, err := GenerateGaussian(GaussianParams{Rows: 64, Cols: 64, Range: rang, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
		labels = append(labels, rang)
	}
	ms, err := MeasureFields("facade", fields, labels, MeasureOptions{
		Analysis:    AnalysisOptions{SkipLocal: true},
		ErrorBounds: []float64{1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	series := BuildSeries(ms, XGlobalRange)
	if len(series) != 3 {
		t.Fatalf("series count %d", len(series))
	}
	// sz-like CR must increase with range: positive β
	for _, s := range series {
		if s.Compressor == "sz-like" {
			if !s.FitOK || s.Fit.Beta <= 0 {
				t.Fatalf("sz-like fit %+v", s.Fit)
			}
		}
	}
	p, err := TrainPredictor(ms, XGlobalRange)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := p.SelectCompressor(1e-3, ms[2].Stats)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Compressor == "" || sel.Predicted <= 0 {
		t.Fatalf("selection %+v", sel)
	}
}

func TestSuiteFacade(t *testing.T) {
	s := NewSuite(FigureConfig{Size: 64, Replicates: 1, MirandaSlices: 2, ErrorBounds: []float64{1e-3}})
	if s.Config().Size != 64 {
		t.Fatalf("config %+v", s.Config())
	}
}
